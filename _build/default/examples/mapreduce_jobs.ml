(* MapReduce as a formal model (Section 3): jobs (µ, ρ), programs as job
   sequences, and the observation that every MapReduce program is an MPC
   algorithm (map = communication phase, reduce = computation phase).

     dune exec examples/mapreduce_jobs.exe *)

open Lamp

let line fmt = Fmt.pr (fmt ^^ "@.")

let () =
  let rng = Random.State.make [| 12 |] in
  let data = Mpc.Workload.triangle_skew_free ~rng ~m:400 ~domain:60 in
  line "input: %d facts over R, S, T" (Relational.Instance.cardinal data);
  line "";

  (* One job: the repartition join of Example 3.1(1a). *)
  let join_result = Mapreduce.Job.run_job Mapreduce.Jobs.repartition_join data in
  line "repartition join (1 job):  %d result facts"
    (Relational.Instance.cardinal join_result);

  (* Two jobs: the cascaded triangle of Example 3.1(2). *)
  let tri_seq = Mapreduce.Job.run Mapreduce.Jobs.triangle_program data in
  line "triangle program (2 jobs): %d triangles"
    (Relational.Instance.cardinal tri_seq);

  (* The same program as an MPC algorithm: one round per job, with load
     accounting. *)
  let tri_mpc, stats = Mapreduce.Job.run_mpc ~p:8 Mapreduce.Jobs.triangle_program data in
  line "on the MPC simulator:      %d triangles, %a"
    (Relational.Instance.cardinal tri_mpc)
    Mpc.Stats.pp stats;
  line "sequential = distributed:  %b"
    (Relational.Instance.equal tri_seq tri_mpc);
  line "";

  (* A degree-counting job — the distributed heavy-hitter detector. *)
  let degrees =
    Mapreduce.Job.run_job (Mapreduce.Jobs.degree_count ~rel:"R" ~pos:1) data
  in
  let heaviest =
    Relational.Instance.fold
      (fun f acc ->
        match (Relational.Fact.args f).(1) with
        | Relational.Value.Int d -> max acc d
        | Relational.Value.Str _ -> acc)
      degrees 0
  in
  line "degree-count job: %d distinct join values; heaviest degree %d"
    (Relational.Instance.cardinal degrees)
    heaviest;

  (* Relational algebra compiled to MapReduce ([47]): a semi-join
     reduction runs as a sequence of jobs. *)
  let open Ra in
  let expr =
    Algebra.Semijoin
      (Algebra.Base ("R", [ "a"; "b" ]), Algebra.Base ("S", [ "b"; "c" ]))
  in
  line "";
  line "algebra %a compiles to %d MapReduce jobs" Algebra.pp expr
    (To_mapreduce.job_count expr);
  line "result: %d of %d R-tuples survive the semi-join"
    (Relation.cardinal (To_mapreduce.run data expr))
    (Relational.Instance.cardinal
       (Relational.Instance.filter
          (fun f -> Relational.Fact.rel f = "R")
          data))
