(* The Section 3 load story on one workload: repartition join vs grid
   join on skewed data, and one-round HyperCube vs the two-round
   cascade and the skew-resilient plan for the triangle query.

     dune exec examples/hypercube_triangles.exe *)

open Lamp

let line fmt = Fmt.pr (fmt ^^ "@.")

let () =
  let m = 5000 in
  let p = 16 in

  line "== Binary join: R(x,y) ⋈ S(y,z), m = %d per relation, p = %d ==" m p;
  let report name (stats : Mpc.Stats.t) total =
    line "  %-18s max load %6d   total comm %7d   eps %.2f" name
      (Mpc.Stats.max_load stats)
      (Mpc.Stats.total_communication stats)
      (Mpc.Stats.epsilon ~m:total stats)
  in
  let skew_free = Mpc.Workload.join_skew_free ~m in
  let skewed = Mpc.Workload.join_skewed ~m in
  let _, s1 = Mpc.Repartition_join.run ~p skew_free in
  report "repartition/free" s1 (Relational.Instance.cardinal skew_free);
  (* materialize:false: the skewed join output is quadratic, and only
     the communication loads are of interest here. *)
  let _, s2 = Mpc.Repartition_join.run ~materialize:false ~p skewed in
  report "repartition/skew" s2 (Relational.Instance.cardinal skewed);
  let _, s3 = Mpc.Grid_join.run ~p skew_free in
  report "grid/free" s3 (Relational.Instance.cardinal skew_free);
  let _, s4 = Mpc.Grid_join.run ~materialize:false ~p skewed in
  report "grid/skew" s4 (Relational.Instance.cardinal skewed);

  line "";
  line "== Triangle query, m = %d per relation, p = %d ==" m p;
  let rng = Random.State.make [| 7 |] in
  let free = Mpc.Workload.triangle_skew_free ~rng ~m ~domain:m in
  let skewed =
    Mpc.Workload.triangle_y_skew ~rng ~m ~domain:m ~heavy_fraction:0.6
  in
  let total i = Relational.Instance.cardinal i in
  let _, hc_free, shares = Mpc.Hypercube.run ~p Cq.Examples.q2_triangle free in
  line "  HyperCube shares: %a"
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string int))
    shares;
  report "hypercube/free" hc_free (total free);
  let _, hc_skew, _ =
    Mpc.Hypercube.run ~materialize:false ~p Cq.Examples.q2_triangle skewed
  in
  report "hypercube/skew" hc_skew (total skewed);
  let _, casc = Mpc.Multi_round.cascade_triangle ~p free in
  report "cascade/free" casc (total free);
  let _, resilient, heavy = Mpc.Multi_round.skew_resilient_triangle ~p skewed in
  report "2-round/skew" resilient (total skewed);
  line "  (skew-resilient plan detected %d heavy hitters)" heavy;

  line "";
  line "Theory: skew-free join m/p = %d; grid join m/sqrt(p) = %.0f;" (m / p)
    (float_of_int m /. sqrt (float_of_int p));
  line "        triangle m/p^(2/3) = %.0f; one-round skewed >= m/sqrt(p) = %.0f."
    (float_of_int (3 * m) /. Float.pow (float_of_int p) (2. /. 3.))
    (float_of_int m /. sqrt (float_of_int p))
