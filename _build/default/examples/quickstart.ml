(* Quickstart: parse a conjunctive query, evaluate it, check
   parallel-correctness of a distribution policy, and run the query
   through the one-round HyperCube algorithm.

     dune exec examples/quickstart.exe *)

open Lamp

let () =
  (* 1. Parse a query and an instance, and evaluate. *)
  let q = Cq.Parser.query "H(x,z) <- R(x,y), S(y,z)" in
  let i = Relational.Instance.of_string "R(1,2). R(7,8). S(2,3). S(2,4)" in
  let answer = Cq.Eval.eval q i in
  Fmt.pr "Q = %a@.Q(I) = %a@.@." Cq.Ast.pp q Relational.Instance.pp answer;

  (* 2. A distribution policy: hash R on its second column and S on its
     first, so joining tuples meet (the repartition join of Example
     3.1(1a)). *)
  let policy =
    Distribution.Policy.hash_by_position
      ~universe:(Relational.Instance.adom i)
      ~name:"repartition" ~p:4
      [ ("R", 1); ("S", 0) ]
  in
  (match Correctness.Parallel_correctness.decide q policy with
  | Ok () -> Fmt.pr "The repartition policy is parallel-correct for Q.@."
  | Error v ->
    Fmt.pr "Not parallel-correct: %a@." Correctness.Saturation.pp_violation v);

  (* ... whereas separating R from S entirely is not: *)
  let bad =
    Distribution.Policy.make
      ~universe:(Relational.Instance.adom i)
      ~name:"split" ~nodes:[ 0; 1 ]
      (fun node f ->
        match Relational.Fact.rel f with
        | "R" -> node = 0
        | "S" -> node = 1
        | _ -> false)
  in
  (match Correctness.Parallel_correctness.decide q bad with
  | Ok () -> Fmt.pr "Unexpectedly parallel-correct?@."
  | Error v ->
    Fmt.pr "Splitting R from S is not parallel-correct:@.  %a@."
      Correctness.Saturation.pp_violation v);

  (* 3. The triangle query through HyperCube on 8 simulated servers. *)
  let triangle = Cq.Examples.q2_triangle in
  let rng = Random.State.make [| 1 |] in
  let workload = Mpc.Workload.triangle_skew_free ~rng ~m:2000 ~domain:500 in
  let result, stats, shares = Mpc.Hypercube.run ~p:8 triangle workload in
  Fmt.pr "@.HyperCube on %d facts, p = 8:@." (Relational.Instance.cardinal workload);
  Fmt.pr "  shares      = %a@."
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string int))
    shares;
  Fmt.pr "  triangles   = %d@." (Relational.Instance.cardinal result);
  Fmt.pr "  max load    = %d (m/p^(2/3) would be %.0f)@."
    (Mpc.Stats.max_load stats)
    (float_of_int (Relational.Instance.cardinal workload)
    /. Float.pow 8.0 (2.0 /. 3.0));
  Fmt.pr "  tau* of the triangle query = %.2f@."
    (Cq.Hypergraph.tau_star triangle)
