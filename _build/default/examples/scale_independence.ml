(* Scale independence (Section 6 / Fan–Geerts–Libkin): with access
   constraints, a covered query touches a bounded number of facts no
   matter how large the database grows.

     dune exec examples/scale_independence.exe *)

open Lamp
open Cq

let line fmt = Fmt.pr (fmt ^^ "@.")

(* A social network: everyone follows at most 3 accounts (access on the
   follower column), profiles are keyed by user. *)
let accesses =
  [
    Scale.access ~rel:"Follows" ~inputs:[ 0 ] ~bound:3;
    Scale.access ~rel:"Profile" ~inputs:[ 0 ] ~bound:1;
  ]

let network ~users =
  let rng = Random.State.make [| users |] in
  let follows =
    List.concat_map
      (fun u ->
        List.init 3 (fun _ ->
            Relational.Fact.of_ints "Follows" [ u; Random.State.int rng users ]))
      (List.init users (fun u -> u))
  in
  let profiles =
    List.map
      (fun u -> Relational.Fact.of_ints "Profile" [ u; u + 1_000_000 ])
      (List.init users (fun u -> u))
  in
  Relational.Instance.of_facts (follows @ profiles)

let () =
  let q =
    Parser.query "H(z,p) <- Follows(7,y), Follows(y,z), Profile(z,p)"
  in
  line "query: %a" Ast.pp q;
  line "access schema: Follows(in,out) with fan-out <= 3; Profile keyed.";
  (match Scale.plan ~accesses q with
  | None -> line "not boundedly evaluable!"
  | Some p ->
    line "covered: yes — plan touches at most %d facts on ANY instance."
      (Scale.fetch_cap p);
    line "";
    line "  %-12s %-14s %-14s %-10s" "users" "|instance|" "facts fetched"
      "|answer|";
    List.iter
      (fun users ->
        let i = network ~users in
        let answer, fetched = Scale.eval p i in
        line "  %-12d %-14d %-14d %-10d" users
          (Relational.Instance.cardinal i)
          fetched
          (Relational.Instance.cardinal answer))
      [ 100; 1_000; 10_000; 100_000 ]);
  line "";
  (* The same query without a seed constant is not covered. *)
  let unbounded = Parser.query "H(x,z) <- Follows(x,y), Follows(y,z)" in
  line "query: %a" Ast.pp unbounded;
  line "covered: %b — no constant seeds the access chain."
    (Scale.is_boundedly_evaluable ~accesses unbounded)
