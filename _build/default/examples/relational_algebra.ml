(* Relational algebra on MapReduce (Section 3 / [47]): build the
   semi-join reduction of Yannakakis' algorithm as an algebra
   expression, check it stays in the semi-join fragment, and run it both
   directly and as a compiled MapReduce program on the MPC simulator.

     dune exec examples/relational_algebra.exe *)

open Lamp
open Ra

let line fmt = Fmt.pr (fmt ^^ "@.")

let () =
  (* A three-relation chain R(a,b) — S(b,c) — T(c,d) with dangling
     tuples everywhere. *)
  let i =
    Relational.Instance.of_string
      "R(1,2). R(9,9). S(2,3). S(2,4). S(7,7). T(3,5). T(4,6). T(8,8)"
  in
  let r = Algebra.Base ("R", [ "a"; "b" ])
  and s = Algebra.Base ("S", [ "b"; "c" ])
  and t = Algebra.Base ("T", [ "c"; "d" ]) in

  line "Input: %a@." Relational.Instance.pp i;

  (* Full reducer as semi-join algebra: bottom-up then top-down. *)
  let s_up = Algebra.Semijoin (s, t) in
  let r_reduced = Algebra.Semijoin (r, s_up) in
  let s_reduced = Algebra.Semijoin (s_up, r_reduced) in
  let t_reduced = Algebra.Semijoin (t, s_reduced) in
  List.iter
    (fun (name, e) ->
      line "%-10s %a" name Relation.pp (Algebra.eval i e);
      assert (Algebra.in_semijoin_algebra e))
    [ ("R reduced", r_reduced); ("S reduced", s_reduced); ("T reduced", t_reduced) ];
  line "(all three expressions stay in the semi-join fragment of [47])@.";

  (* The full chain join, beyond the fragment, still compiles to
     MapReduce — one job per operator. *)
  let chain = Algebra.Join (Algebra.Join (r_reduced, s_reduced), t_reduced) in
  line "chain join %a" Algebra.pp chain;
  line "  in semi-join fragment: %b" (Algebra.in_semijoin_algebra chain);
  line "  compiled MapReduce jobs (= MPC rounds): %d"
    (To_mapreduce.job_count chain);
  let direct = Algebra.eval i chain in
  let via_mr = To_mapreduce.run i chain in
  let via_mpc = To_mapreduce.run ~p:4 i chain in
  line "  direct evaluation:  %a" Relation.pp direct;
  line "  MapReduce (seq):    %a" Relation.pp via_mr;
  line "  MapReduce (p=4):    %a" Relation.pp via_mpc;
  line "  all agree: %b"
    (Relation.equal direct via_mr && Relation.equal direct via_mpc);

  (* Difference and antijoin: the non-monotone operators that force
     coordination in Section 5's asynchronous world. *)
  let missing_links =
    Algebra.Antijoin
      (Algebra.Project ([ "b" ], r), Algebra.Project ([ "b" ], Algebra.Semijoin (s, t)))
  in
  line "@.R-endpoints with no surviving S-link: %a" Relation.pp
    (Algebra.eval i missing_links)
