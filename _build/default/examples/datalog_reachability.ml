(* Section 5.3 walkthrough: the Datalog programs of the paper —
   transitive closure, its complement (semi-connected), the no-triangle
   query (not semi-connected), and win-move under the well-founded
   semantics — with their syntactic classification.

     dune exec examples/datalog_reachability.exe *)

open Lamp

let line fmt = Fmt.pr (fmt ^^ "@.")

let describe name program =
  line "%s:" name;
  line "%a" Datalog.Program.pp program;
  let tag label holds = line "  %-18s %s" label (if holds then "yes" else "no") in
  tag "positive" (Datalog.Program.is_positive program);
  tag "semi-positive" (Datalog.Program.is_semi_positive program);
  tag "stratifiable" (Datalog.Stratify.is_stratifiable program);
  tag "connected" (Datalog.Connectivity.program_connected program);
  tag "semi-connected" (Datalog.Connectivity.is_semi_connected program);
  line ""

let () =
  let graph = Relational.Instance.of_string "E(a,b). E(b,c). E(d,d)" in
  line "Input: %a" Relational.Instance.pp graph;
  line "";

  describe "Transitive closure" Datalog.Canned.transitive_closure;
  line "  TC = %a" Relational.Instance.pp
    (Datalog.Eval.query Datalog.Canned.transitive_closure ~output:"TC" graph);
  line "";

  describe "Complement of TC (Example 5.13)" Datalog.Canned.complement_tc;
  line "  OUT = %a" Relational.Instance.pp
    (Datalog.Eval.query Datalog.Canned.complement_tc ~output:"OUT" graph);
  line "";

  describe "No-triangle query QNT (Example 5.13)" Datalog.Canned.no_triangle;
  let tri = Relational.Instance.of_string "E(a,b). E(b,c). E(c,a)" in
  line "  QNT(%a) = %a" Relational.Instance.pp graph Relational.Instance.pp
    (Datalog.Eval.query Datalog.Canned.no_triangle ~output:"OUT" graph);
  line "  QNT(%a) = %a" Relational.Instance.pp tri Relational.Instance.pp
    (Datalog.Eval.query Datalog.Canned.no_triangle ~output:"OUT" tri);
  line "";

  describe "Win-move (well-founded)" Datalog.Canned.win_move;
  let game =
    Relational.Instance.of_string "Move(a,b). Move(b,a). Move(b,c). Move(d,e)"
  in
  let wins, drawn = Datalog.Wellfounded.query Datalog.Canned.win_move ~output:"Win" game in
  line "  game  = %a" Relational.Instance.pp game;
  line "  wins  = %a" Relational.Instance.pp wins;
  line "  drawn = %a" Relational.Instance.pp drawn;
  line "";

  (* Monotonicity classes, with the paper's witnesses. *)
  line "Monotonicity classification (Examples 5.6 and 5.10 witnesses):";
  let rng = Random.State.make [| 11 |] in
  let pairs =
    Datalog.Classify.random_pairs ~rng
      ~schema:(Relational.Schema.of_list [ ("E", 2) ])
      ~count:50 ~size:5 ~domain:4
    @ [
        ( Relational.Instance.of_string "E(1,2). E(2,3)",
          Relational.Instance.of_string "E(3,1)" );
        ( Relational.Instance.of_string "E(a,a). E(b,b)",
          Relational.Instance.of_string "E(a,c). E(c,b)" );
        ( Relational.Instance.of_string "E(a,a). E(b,b)",
          Relational.Instance.of_string "E(c,d). E(d,e). E(e,c)" );
      ]
  in
  List.iter
    (fun q ->
      line "  %-16s -> %s" q.Datalog.Classify.name
        (Datalog.Classify.class_name (Datalog.Classify.classify q ~pairs)))
    [
      Datalog.Classify.of_cq ~name:"triangles" Cq.Examples.triangles_distinct;
      Datalog.Classify.of_cq ~name:"open triangle" Cq.Examples.open_triangle;
      Datalog.Classify.of_program ~name:"¬TC" ~output:"OUT" Datalog.Canned.complement_tc;
      Datalog.Classify.of_program ~name:"QNT" ~output:"OUT" Datalog.Canned.no_triangle;
    ]
