(* Section 5 walkthrough: coordination-free computation on relational
   transducer networks. Runs the paper's Example 5.1 programs (triangles
   by naive broadcast, open triangles with and without coordination),
   the policy-aware variant of Example 5.4, and the domain-guided ¬TC
   program, reporting eventual consistency and coordination-freeness.

     dune exec examples/coordination_free.exe *)

open Lamp
module T = Transducer

let line fmt = Fmt.pr (fmt ^^ "@.")

let graph =
  Relational.Instance.of_string
    "E(1,2). E(2,3). E(3,1). E(3,4). E(4,5). E(5,3). E(1,4)"

let report name result =
  match result with
  | Ok () -> line "  %-50s OK" name
  | Error f -> line "  %-50s FAILED: %a" name T.Calm.pp_failure f

let () =
  let p = 3 in
  let triangles = Cq.Eval.eval Cq.Examples.triangles_distinct in
  let open_triangles = Cq.Eval.eval Cq.Examples.open_triangle in
  let distributions =
    [
      T.Horizontal.round_robin ~p graph;
      T.Horizontal.full_replication ~p graph;
      T.Horizontal.random_split ~rng:(Random.State.make [| 5 |]) ~p graph;
    ]
  in
  line "Input graph: %a" Relational.Instance.pp graph;
  line "";

  line "Example 5.1(1): triangles by naive broadcast (monotone, F0)";
  let tri_prog = T.Programs.monotone_broadcast ~name:"triangles" ~eval:triangles in
  report "eventual consistency on 3 distributions x 5 schedules"
    (T.Calm.consistent
       ~make:(fun d -> T.Network.create tri_prog d)
       ~expected:(triangles graph) distributions);
  report "coordination-free (silent run on ideal distribution)"
    (T.Calm.coordination_free
       ~make:(fun d -> T.Network.create tri_prog d)
       ~expected:(triangles graph)
       (T.Horizontal.full_replication ~p graph));
  line "";

  line "Example 5.1(2): open triangles (non-monotone)";
  let naive = T.Programs.monotone_broadcast ~name:"naive" ~eval:open_triangles in
  report "naive broadcast (must fail: premature outputs)"
    (T.Calm.consistent
       ~make:(fun d -> T.Network.create naive d)
       ~expected:(open_triangles graph)
       [ T.Horizontal.round_robin ~p graph ]);
  let coord = T.Programs.coordinated ~name:"coordinated" ~eval:open_triangles in
  report "coordination protocol (correct everywhere)"
    (T.Calm.consistent
       ~make:(fun d -> T.Network.create coord d)
       ~expected:(open_triangles graph) distributions);
  report "coordination protocol coordination-free? (must fail)"
    (T.Calm.coordination_free
       ~make:(fun d -> T.Network.create coord d)
       ~expected:(open_triangles graph)
       (T.Horizontal.full_replication ~p graph));
  line "";

  line "Example 5.4: open triangles on a policy-aware network (F1)";
  let policy =
    Distribution.Policy.make
      ~universe:(Relational.Instance.adom graph)
      ~name:"hash-facts" ~nodes:(Distribution.Node.range p)
      (fun n f -> Relational.Fact.hash f mod p = n)
  in
  let aware = T.Programs.open_triangle_policy_aware ~name:"aware" in
  report "eventual consistency under the fact-hash policy"
    (T.Calm.consistent
       ~make:(fun d -> T.Network.create ~policy aware d)
       ~expected:(open_triangles graph)
       [ T.Horizontal.by_policy policy graph ]);
  let ideal_policy =
    Distribution.Policy.broadcast_all
      ~universe:(Relational.Instance.adom graph)
      ~name:"bc" ~p ()
  in
  report "coordination-free"
    (T.Calm.coordination_free
       ~make:(fun d -> T.Network.create ~policy:ideal_policy aware d)
       ~expected:(open_triangles graph)
       (T.Horizontal.full_replication ~p graph));
  line "";

  line "Theorem 5.12: complement of transitive closure (Mdisjoint, F2)";
  let comp_tc i = Datalog.Eval.query Datalog.Canned.complement_tc ~output:"OUT" i in
  let two_comp = Relational.Instance.of_string "E(a,b). E(b,c). E(x,y). E(y,x)" in
  let assignment v =
    Distribution.Node.Set.singleton (Relational.Value.hash v mod p)
  in
  let dg_policy =
    Distribution.Policy.domain_guided
      ~universe:(Relational.Instance.adom two_comp)
      ~name:"dg" ~nodes:(Distribution.Node.range p) assignment
  in
  let dg = T.Programs.domain_guided_disjoint ~name:"¬TC" ~eval:comp_tc in
  report "eventual consistency under a domain-guided policy"
    (T.Calm.consistent
       ~make:(fun d -> T.Network.create ~assignment dg d)
       ~expected:(comp_tc two_comp)
       [ T.Horizontal.by_policy dg_policy two_comp ]);
  let everyone _ = Distribution.Node.Set.of_list (Distribution.Node.range p) in
  report "coordination-free"
    (T.Calm.coordination_free
       ~make:(fun d -> T.Network.create ~assignment:everyone dg d)
       ~expected:(comp_tc two_comp)
       (T.Horizontal.full_replication ~p two_comp))
