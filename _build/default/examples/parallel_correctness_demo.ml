(* Section 4 walkthrough: Example 4.1 (parallel-correctness under two
   policies), Example 4.3 (PC0 vs PC1), and the Figure 1 lattices of
   parallel-correctness transfer vs containment.

     dune exec examples/parallel_correctness_demo.exe *)

open Lamp

let line fmt = Fmt.pr (fmt ^^ "@.")

let () =
  (* Example 4.1. *)
  let qe = Cq.Examples.qe_example_4_1 in
  let ie =
    Relational.Instance.of_string "R(a,b). R(b,a). R(b,c). S(a,a). S(c,a)"
  in
  line "Example 4.1:  Qe = %a" Cq.Ast.pp qe;
  line "  Ie = %a" Relational.Instance.pp ie;
  line "  Qe(Ie) = %a" Relational.Instance.pp (Cq.Eval.eval qe ie);
  let universe = Relational.Instance.adom ie in
  let p1 =
    Distribution.Policy.make ~universe ~name:"P1" ~nodes:[ 0; 1 ]
      (fun node f ->
        match Relational.Fact.rel f with
        | "R" -> true
        | "S" ->
          let args = Relational.Fact.args f in
          if Relational.Value.equal args.(0) args.(1) then node = 0 else node = 1
        | _ -> false)
  in
  let p2 =
    Distribution.Policy.make ~universe ~name:"P2" ~nodes:[ 0; 1 ]
      (fun node f ->
        match Relational.Fact.rel f with
        | "R" -> node = 0
        | "S" -> node = 1
        | _ -> false)
  in
  List.iter
    (fun (name, p) ->
      line "  [Qe,%s](Ie) = %a" name Relational.Instance.pp
        (Distribution.Distributed.eval qe p ie);
      match Correctness.Parallel_correctness.decide qe p with
      | Ok () -> line "  %s is parallel-correct for Qe" name
      | Error v ->
        line "  %s is NOT parallel-correct: %a" name
          Correctness.Saturation.pp_violation v)
    [ ("P1", p1); ("P2", p2) ];

  (* Example 4.3: strong saturation fails, saturation holds. *)
  line "";
  let q43 = Cq.Examples.q_example_4_3 in
  line "Example 4.3:  Q = %a" Cq.Ast.pp q43;
  let a = Relational.Value.str "a" and b = Relational.Value.str "b" in
  let p43 =
    Distribution.Policy.make
      ~universe:(Relational.Value.set_of_list [ a; b ])
      ~name:"P" ~nodes:[ 0; 1 ]
      (fun node f ->
        match node with
        | 0 -> not (Relational.Fact.equal f (Relational.Fact.of_list "R" [ a; b ]))
        | _ -> not (Relational.Fact.equal f (Relational.Fact.of_list "R" [ b; a ])))
  in
  (match Correctness.Saturation.strongly_saturates p43 q43 with
  | Ok () -> line "  P strongly saturates Q (unexpected!)"
  | Error v ->
    line "  (PC0) fails: %a" Correctness.Saturation.pp_violation v);
  (match Correctness.Saturation.saturates p43 q43 with
  | Ok () ->
    line "  (PC1) holds: every minimal valuation meets; Q is parallel-correct."
  | Error _ -> line "  (PC1) fails (unexpected!)");

  (* Figure 1. *)
  line "";
  line "Figure 1: transfer (left) and containment (right) over";
  let queries =
    [
      ("Q1", Cq.Examples.q1_example_4_11);
      ("Q2", Cq.Examples.q2_example_4_11);
      ("Q3", Cq.Examples.q3_example_4_11);
      ("Q4", Cq.Examples.q4_example_4_11);
    ]
  in
  List.iter (fun (n, q) -> line "  %s: %a" n Cq.Ast.pp q) queries;
  line "";
  let names = List.map fst queries in
  let qs = List.map snd queries in
  let transfer = Correctness.Transfer.transfer_matrix qs in
  let containment =
    List.map (fun q -> List.map (fun q' -> Cq.Containment.contained q q') qs) qs
  in
  let print_matrix title matrix rel =
    line "  %s" title;
    line "        %s" (String.concat "    " names);
    List.iteri
      (fun i row ->
        let cells =
          List.map (fun b -> if b then " yes " else "  -  ") row
        in
        line "  %s  %s" (List.nth names i) (String.concat "" cells))
      matrix;
    line "  (row %s column)" rel
  in
  print_matrix "Parallel-correctness transfer:" transfer "pc-transfers-to";
  line "";
  print_matrix "Containment:" containment "is-contained-in";

  (* The Section 4.2 motivation: a multi-query workload can skip
     reshuffles when transfer holds. *)
  line "";
  line "Workload planning (evaluate in order, reuse distributions):";
  let plan = Correctness.Transfer.plan_workload qs in
  List.iter
    (fun step ->
      let name i = List.nth names i in
      match step.Correctness.Transfer.reuse_of with
      | Some j ->
        line "  %s: reuse the distribution installed for %s"
          (name step.Correctness.Transfer.query_index)
          (name j)
      | None ->
        line "  %s: fresh reshuffle" (name step.Correctness.Transfer.query_index))
    plan;
  line "  total reshuffles: %d of %d queries"
    (Correctness.Transfer.reshuffles plan)
    (List.length qs)
