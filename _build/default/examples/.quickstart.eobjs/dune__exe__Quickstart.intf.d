examples/quickstart.mli:
