examples/relational_algebra.ml: Algebra Fmt Lamp List Ra Relation Relational To_mapreduce
