examples/quickstart.ml: Correctness Cq Distribution Float Fmt Lamp Mpc Random Relational
