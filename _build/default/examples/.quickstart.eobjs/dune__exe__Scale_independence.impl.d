examples/scale_independence.ml: Ast Cq Fmt Lamp List Parser Random Relational Scale
