examples/relational_algebra.mli:
