examples/datalog_reachability.ml: Cq Datalog Fmt Lamp List Random Relational
