examples/hypercube_triangles.ml: Cq Float Fmt Lamp Mpc Random Relational
