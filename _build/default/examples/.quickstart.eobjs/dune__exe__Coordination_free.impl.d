examples/coordination_free.ml: Cq Datalog Distribution Fmt Lamp Random Relational Transducer
