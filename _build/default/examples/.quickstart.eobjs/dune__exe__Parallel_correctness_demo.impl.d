examples/parallel_correctness_demo.ml: Array Correctness Cq Distribution Fmt Lamp List Relational String
