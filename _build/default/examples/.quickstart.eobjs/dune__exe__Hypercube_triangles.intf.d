examples/hypercube_triangles.mli:
