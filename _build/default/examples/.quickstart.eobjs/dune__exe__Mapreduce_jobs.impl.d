examples/mapreduce_jobs.ml: Algebra Array Fmt Lamp Mapreduce Mpc Ra Random Relation Relational To_mapreduce
