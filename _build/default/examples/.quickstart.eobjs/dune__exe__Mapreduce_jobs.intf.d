examples/mapreduce_jobs.mli:
