examples/scale_independence.mli:
