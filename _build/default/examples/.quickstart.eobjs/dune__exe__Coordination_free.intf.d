examples/coordination_free.mli:
