open Lamp_relational
open Lamp_datalog

let instance = Alcotest.testable Instance.pp Instance.equal
let inst = Instance.of_string

(* ------------------------------------------------------------------ *)
(* Parsing and structure                                               *)

let test_parse_invention () =
  let p = Invention.parse "P(n,x,y) <- E(x,y)" in
  Alcotest.(check bool) "has invention" true (Invention.has_invention p);
  match Invention.rules p with
  | [ r ] -> Alcotest.(check (list string)) "invented n" [ "n" ] r.Invention.invented
  | _ -> Alcotest.fail "one rule expected"

let test_parse_plain_rule () =
  let p = Invention.parse "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), E(z,y)" in
  Alcotest.(check bool) "no invention" false (Invention.has_invention p);
  Alcotest.(check (list string)) "idb" [ "TC" ] (Invention.idb p)

let test_unsafe_negation_rejected () =
  Alcotest.check_raises "unsafe negated var" (Invention.Unsafe "")
    (fun () ->
      try ignore (Invention.parse "H(x) <- E(x,x), !F(y)")
      with Invention.Unsafe _ -> raise (Invention.Unsafe ""))

(* ------------------------------------------------------------------ *)
(* Semantics of invention                                              *)

let test_fresh_value_per_edge () =
  let p = Invention.parse "P(n,x,y) <- E(x,y)" in
  let out = Invention.query p ~output:"P" (inst "E(1,2). E(3,4)") in
  Alcotest.(check int) "one P fact per edge" 2 (Instance.cardinal out);
  let invented =
    Instance.fold
      (fun f acc -> Value.Set.add (Fact.args f).(0) acc)
      out Value.Set.empty
  in
  Alcotest.(check int) "two distinct invented values" 2
    (Value.Set.cardinal invented);
  Value.Set.iter
    (fun v ->
      Alcotest.(check bool) "marked as invented" true
        (Invention.is_invented_value v))
    invented

let test_invention_functional () =
  (* Two rules deriving P from the same body valuation: ILOG semantics
     reuses the Skolem value inside one rule, and the fixpoint
     terminates even though P feeds itself. *)
  let p = Invention.parse "P(n,x) <- E(x,y)\nQ(n,x) <- P(n,x)" in
  let out1 = Invention.query p ~output:"P" (inst "E(1,2)") in
  let out2 = Invention.query p ~output:"Q" (inst "E(1,2)") in
  Alcotest.(check int) "single P" 1 (Instance.cardinal out1);
  Alcotest.(check int) "single Q" 1 (Instance.cardinal out2);
  (* Q carries the same invented value. *)
  let v1 = (Fact.args (List.hd (Instance.facts out1))).(0) in
  let v2 = (Fact.args (List.hd (Instance.facts out2))).(0) in
  Alcotest.(check bool) "same Skolem value" true (Value.equal v1 v2)

let test_divergence_guard () =
  (* Nat(n) <- Nat(x): every round invents a value from the new fact —
     the classic non-terminating wILOG program. *)
  let p = Invention.parse "Nat(n) <- Nat(x)" in
  Alcotest.check_raises "diverges" (Invention.Diverged "")
    (fun () ->
      try
        ignore
          (Invention.run ~max_facts:500 ~max_rounds:200 p (inst "Nat(0)"))
      with Invention.Diverged _ -> raise (Invention.Diverged ""))

let test_plain_program_agrees_with_datalog () =
  let text = "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), E(z,y)" in
  let via_invention = Invention.parse text in
  let via_datalog = Program.parse text in
  let g = inst "E(1,2). E(2,3). E(3,4)" in
  Alcotest.check instance "same closure"
    (Eval.query via_datalog ~output:"TC" g)
    (Invention.query via_invention ~output:"TC" g)

let test_semi_positive_invention () =
  (* SP-wILOG: negation on EDB only, plus invention: tag each non-edge
     with a fresh witness value. *)
  let p = Invention.parse "W(n,x,y) <- ADom(x), ADom(y), !E(x,y)" in
  Alcotest.(check bool) "semi-positive" true (Invention.is_semi_positive p);
  let out = Invention.query p ~output:"W" (inst "E(a,b)") in
  (* Non-edges over {a,b}: (a,a), (b,a), (b,b). *)
  Alcotest.(check int) "three witnesses" 3 (Instance.cardinal out)

let test_stratified_invention () =
  let p =
    Invention.parse
      "P(n,x) <- E(x,y)\nBig(x) <- E(x,y), !Small(x)\nSmall(x) <- E(x,x)"
  in
  let out = Invention.query p ~output:"Big" (inst "E(1,2). E(3,3)") in
  Alcotest.check instance "stratified negation with invention"
    (inst "Big(1)") out

let test_connectivity () =
  let connected = Invention.parse "P(n,x,y) <- E(x,y), F(y,z)" in
  let disconnected = Invention.parse "P(n,x,y) <- E(x,x), F(y,y)" in
  Alcotest.(check bool) "connected" true (Invention.program_connected connected);
  Alcotest.(check bool) "disconnected" false
    (Invention.program_connected disconnected)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let graph_arb =
  QCheck.make
    ~print:(Fmt.str "%a" Instance.pp)
    QCheck.Gen.(
      let* seed = int_range 0 100_000 in
      let rng = Random.State.make [| seed |] in
      let* edges = int_range 0 10 in
      return (Generate.random_graph ~rng ~nodes:5 ~edges ()))

let prop_invention_count =
  QCheck.Test.make ~name:"one invented value per derivation" ~count:50
    graph_arb
    (fun g ->
      let p = Invention.parse "P(n,x,y) <- E(x,y)" in
      Instance.cardinal (Invention.query p ~output:"P" g) = Instance.cardinal g)

let prop_invention_deterministic =
  QCheck.Test.make ~name:"invention is deterministic" ~count:50 graph_arb
    (fun g ->
      let p = Invention.parse "P(n,x,y) <- E(x,y)" in
      Instance.equal
        (Invention.query p ~output:"P" g)
        (Invention.query p ~output:"P" g))

let prop_plain_rules_agree =
  QCheck.Test.make ~name:"invention-free programs = Datalog" ~count:50
    graph_arb
    (fun g ->
      let text = "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), TC(z,y)" in
      Instance.equal
        (Eval.query (Program.parse text) ~output:"TC" g)
        (Invention.query (Invention.parse text) ~output:"TC" g))

let () =
  Alcotest.run "lamp_invention"
    [
      ( "structure",
        [
          Alcotest.test_case "parse invention" `Quick test_parse_invention;
          Alcotest.test_case "plain rules" `Quick test_parse_plain_rule;
          Alcotest.test_case "unsafe negation" `Quick test_unsafe_negation_rejected;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "fresh per edge" `Quick test_fresh_value_per_edge;
          Alcotest.test_case "functional" `Quick test_invention_functional;
          Alcotest.test_case "divergence guard" `Quick test_divergence_guard;
          Alcotest.test_case "agrees with Datalog" `Quick
            test_plain_program_agrees_with_datalog;
          Alcotest.test_case "SP-wILOG" `Quick test_semi_positive_invention;
          Alcotest.test_case "stratified" `Quick test_stratified_invention;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_invention_count;
            prop_invention_deterministic;
            prop_plain_rules_agree;
          ] );
    ]
