open Lamp_relational
open Lamp_cq

let instance = Alcotest.testable Instance.pp Instance.equal
let inst = Instance.of_string
let parse = Parser.query

(* Follows(x,y): each user follows at most 3 others (access on input
   position 0). Profile(x,p): key access on position 0. *)
let follows_access = Scale.access ~rel:"Follows" ~inputs:[ 0 ] ~bound:3
let profile_access = Scale.access ~rel:"Profile" ~inputs:[ 0 ] ~bound:1
let accesses = [ follows_access; profile_access ]

let test_satisfies () =
  let ok = inst "Follows(1,2). Follows(1,3). Follows(2,1)" in
  Alcotest.(check bool) "conforming" true (Scale.satisfies ok follows_access);
  let bad = inst "Follows(1,2). Follows(1,3). Follows(1,4). Follows(1,5)" in
  Alcotest.(check bool) "violating" false (Scale.satisfies bad follows_access);
  Alcotest.(check int) "violations listed" 1
    (List.length (Scale.violations bad accesses))

let test_plan_exists_with_constant () =
  (* Friends-of-friends of a fixed user: every atom reachable through
     the bounded accesses. *)
  let q = parse "H(z,p) <- Follows(1,y), Follows(y,z), Profile(z,p)" in
  (match Scale.plan ~accesses q with
  | Some p ->
    Alcotest.(check int) "three steps" 3 (List.length p.Scale.order);
    (* Cap: 3 + 3·3 + 9·1 = 21 facts, whatever the instance size. *)
    Alcotest.(check int) "fetch cap" 21 (Scale.fetch_cap p)
  | None -> Alcotest.fail "expected a plan")

let test_plan_missing_seed () =
  (* Without a constant seed, no access has its inputs bound. *)
  let q = parse "H(x,z) <- Follows(x,y), Follows(y,z)" in
  Alcotest.(check bool) "not boundedly evaluable" false
    (Scale.is_boundedly_evaluable ~accesses q)

let test_plan_wrong_direction () =
  (* Only forward accesses exist: a query needing reverse lookup on
     Follows' second column is not covered. *)
  let q = parse "H(x) <- Follows(x, 1)" in
  Alcotest.(check bool) "reverse lookup not covered" false
    (Scale.is_boundedly_evaluable ~accesses q);
  (* Adding a reverse access makes it covered. *)
  let with_reverse =
    Scale.access ~rel:"Follows" ~inputs:[ 1 ] ~bound:5 :: accesses
  in
  Alcotest.(check bool) "covered with reverse access" true
    (Scale.is_boundedly_evaluable ~accesses:with_reverse q)

let social_instance ~users =
  (* Everyone follows their 2 successors; one profile per user. *)
  let follows =
    List.concat_map
      (fun u ->
        [
          Fact.of_ints "Follows" [ u; (u + 1) mod users ];
          Fact.of_ints "Follows" [ u; (u + 2) mod users ];
        ])
      (List.init users (fun u -> u))
  in
  let profiles =
    List.map (fun u -> Fact.of_ints "Profile" [ u; u + 1000 ]) (List.init users (fun u -> u))
  in
  Instance.of_facts (follows @ profiles)

let test_eval_matches_full_evaluation () =
  let q = parse "H(z,p) <- Follows(1,y), Follows(y,z), Profile(z,p)" in
  let i = social_instance ~users:50 in
  match Scale.plan ~accesses q with
  | None -> Alcotest.fail "plan expected"
  | Some p ->
    let result, fetched = Scale.eval p i in
    Alcotest.check instance "same answer" (Eval.eval q i) result;
    Alcotest.(check bool) "fetched within cap" true
      (fetched <= Scale.fetch_cap p)

let test_scale_independence () =
  (* The fetched-fact count does not grow with the instance. *)
  let q = parse "H(z,p) <- Follows(1,y), Follows(y,z), Profile(z,p)" in
  match Scale.plan ~accesses q with
  | None -> Alcotest.fail "plan expected"
  | Some p ->
    let _, fetched_small = Scale.eval p (social_instance ~users:20) in
    let _, fetched_large = Scale.eval p (social_instance ~users:2000) in
    Alcotest.(check int) "identical access cost" fetched_small fetched_large;
    Alcotest.(check bool) "touches a tiny fraction" true
      (fetched_large * 20 < Instance.cardinal (social_instance ~users:2000))

let test_enforcement () =
  let q = parse "H(y) <- Follows(1,y)" in
  let violating =
    Instance.of_facts
      (List.init 10 (fun k -> Fact.of_ints "Follows" [ 1; k + 2 ]))
  in
  match Scale.plan ~accesses q with
  | None -> Alcotest.fail "plan expected"
  | Some p ->
    Alcotest.check_raises "schema violation" (Invalid_argument "")
      (fun () ->
        try ignore (Scale.eval p violating)
        with Scale.Schema_violation _ -> raise (Invalid_argument ""));
    let result, _ = Scale.eval ~enforce:false p violating in
    Alcotest.check instance "unenforced still correct" (Eval.eval q violating) result

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let social_arb =
  QCheck.make
    ~print:(Fmt.str "%a" Instance.pp)
    QCheck.Gen.(
      let* users = int_range 3 40 in
      return (social_instance ~users))

let bounded_queries =
  [
    parse "H(y) <- Follows(1,y)";
    parse "H(z) <- Follows(0,y), Follows(y,z)";
    parse "H(z,p) <- Follows(1,y), Follows(y,z), Profile(z,p)";
    parse "H(p) <- Profile(2,p)";
  ]

let prop_bounded_eval_correct =
  QCheck.Test.make ~name:"bounded plans compute Q(I)" ~count:60
    (QCheck.pair social_arb (QCheck.make (QCheck.Gen.oneofl bounded_queries)))
    (fun (i, q) ->
      match Scale.plan ~accesses q with
      | None -> false
      | Some p ->
        let result, fetched = Scale.eval p i in
        Instance.equal result (Eval.eval q i) && fetched <= Scale.fetch_cap p)

let prop_conforming_generator =
  QCheck.Test.make ~name:"social workload respects the access schema"
    ~count:60 social_arb
    (fun i -> Scale.violations i accesses = [])

let () =
  Alcotest.run "lamp_scale"
    [
      ( "schema",
        [
          Alcotest.test_case "satisfies" `Quick test_satisfies;
          Alcotest.test_case "enforcement" `Quick test_enforcement;
        ] );
      ( "planning",
        [
          Alcotest.test_case "constant seed" `Quick test_plan_exists_with_constant;
          Alcotest.test_case "missing seed" `Quick test_plan_missing_seed;
          Alcotest.test_case "access direction" `Quick test_plan_wrong_direction;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "matches full evaluation" `Quick
            test_eval_matches_full_evaluation;
          Alcotest.test_case "scale independence" `Quick test_scale_independence;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_bounded_eval_correct; prop_conforming_generator ] );
    ]
