open Lamp_relational
open Lamp_cq
open Lamp_mpc

let instance = Alcotest.testable Instance.pp Instance.equal
let parse = Parser.query
let rng () = Random.State.make [| 77 |]

let check_valid q d =
  match Decomposition.validate q d with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid decomposition: %s" msg

let four_cycle = parse "H(x,y,z,w) <- R(x,y), S(y,z), T(z,w), U(w,x)"
let chain = parse "H(x0,x3) <- R1(x0,x1), R2(x1,x2), R3(x2,x3)"

(* ------------------------------------------------------------------ *)
(* Decomposition construction and validity                             *)

let test_singleton_valid () =
  check_valid Examples.q2_triangle (Decomposition.singleton Examples.q2_triangle);
  Alcotest.(check int) "width = all atoms" 3
    (Decomposition.width (Decomposition.singleton Examples.q2_triangle))

let test_of_join_forest_valid () =
  match Hypergraph.gyo chain with
  | None -> Alcotest.fail "chain is acyclic"
  | Some forest ->
    let d = Decomposition.of_join_forest forest in
    check_valid chain d;
    Alcotest.(check int) "width 1" 1 (Decomposition.width d)

let test_min_fill_triangle () =
  let d = Decomposition.min_fill Examples.q2_triangle in
  check_valid Examples.q2_triangle d;
  (* The triangle has no tree decomposition of primal width < 3, so one
     bag holds all three atoms. *)
  Alcotest.(check int) "width 3" 3 (Decomposition.width d)

let test_min_fill_four_cycle () =
  let d = Decomposition.min_fill four_cycle in
  check_valid four_cycle d;
  Alcotest.(check bool) "width <= 3" true (Decomposition.width d <= 3);
  Alcotest.(check bool) "width >= 2" true (Decomposition.width d >= 2)

let test_min_fill_acyclic () =
  let d = Decomposition.min_fill chain in
  check_valid chain d

let test_validate_missing_atom () =
  (* A decomposition covering only two of the triangle's atoms. *)
  let bad =
    [
      {
        Decomposition.bag =
          {
            Decomposition.vars = Decomposition.Sset.of_list [ "x"; "y"; "z" ];
            atoms = [ Ast.atom "R" [ Ast.Var "x"; Ast.Var "y" ] ];
          };
        children = [];
      };
    ]
  in
  match Decomposition.validate Examples.q2_triangle bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "must reject missing atoms"

let test_validate_running_intersection () =
  (* Two sibling bags sharing y under a root without y. *)
  let bag vars atoms = { Decomposition.vars = Decomposition.Sset.of_list vars; atoms } in
  let r = Ast.atom "R" [ Ast.Var "x"; Ast.Var "y" ] in
  let s = Ast.atom "S" [ Ast.Var "y"; Ast.Var "z" ] in
  let q = parse "H(x) <- R(x,y), S(y,z)" in
  let broken =
    [
      {
        Decomposition.bag = bag [ "x" ] [];
        children =
          [
            { Decomposition.bag = bag [ "x"; "y" ] [ r ]; children = [] };
            { Decomposition.bag = bag [ "y"; "z" ] [ s ]; children = [] };
          ];
      };
    ]
  in
  match Decomposition.validate q broken with
  | Error msg ->
    Alcotest.(check bool) "mentions running intersection" true
      (String.length msg > 0)
  | Ok () -> Alcotest.fail "must reject broken running intersection"

(* ------------------------------------------------------------------ *)
(* GYM over decompositions                                             *)

let triangle_instance () =
  Workload.triangle_skew_free ~rng:(rng ()) ~m:80 ~domain:15

let test_gym_ghd_triangle () =
  let i = triangle_instance () in
  let result, stats, width =
    Gym_ghd.run ~p:8 Examples.q2_triangle i
  in
  Alcotest.check instance "triangle via GHD"
    (Lamp_cq.Eval.eval Examples.q2_triangle i)
    result;
  Alcotest.(check int) "single bag" 3 width;
  Alcotest.(check bool) "at least one round" true (Stats.rounds stats >= 1)

let test_gym_ghd_four_cycle () =
  let rng = rng () in
  let i =
    List.fold_left
      (fun acc rel ->
        Instance.union acc
          (Generate.random_relation ~rng ~rel ~arity:2 ~size:60 ~domain:10 ()))
      Instance.empty [ "R"; "S"; "T"; "U" ]
  in
  let result, stats, width = Gym_ghd.run ~p:8 four_cycle i in
  Alcotest.check instance "4-cycle via GHD" (Lamp_cq.Eval.eval four_cycle i) result;
  Alcotest.(check bool) "bags joined over tree" true (Stats.rounds stats >= 2);
  Alcotest.(check bool) "nontrivial width" true (width >= 2)

let test_gym_ghd_acyclic_default () =
  let rng = rng () in
  let i =
    Workload.acyclic_chain ~rng ~m:60 ~domain:10 ~rels:[ "R1"; "R2"; "R3" ]
  in
  let result, _, width = Gym_ghd.run ~p:4 chain i in
  Alcotest.check instance "chain via GHD" (Lamp_cq.Eval.eval chain i) result;
  Alcotest.(check int) "per-atom bags" 1 width

let test_gym_ghd_explicit_decomposition () =
  let i = triangle_instance () in
  let d = Decomposition.singleton Examples.q2_triangle in
  let result, _, _ =
    Gym_ghd.run ~decomposition:d ~p:8 Examples.q2_triangle i
  in
  Alcotest.check instance "explicit singleton"
    (Lamp_cq.Eval.eval Examples.q2_triangle i)
    result

let test_gym_ghd_rejects_invalid () =
  let bad =
    [
      {
        Decomposition.bag =
          {
            Decomposition.vars = Decomposition.Sset.of_list [ "x"; "y" ];
            atoms = [ Ast.atom "R" [ Ast.Var "x"; Ast.Var "y" ] ];
          };
        children = [];
      };
    ]
  in
  Alcotest.check_raises "invalid decomposition" (Invalid_argument "")
    (fun () ->
      try
        ignore
          (Gym_ghd.run ~decomposition:bad ~p:4 Examples.q2_triangle
             Instance.empty)
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let cyclic_queries =
  [
    Examples.q2_triangle;
    four_cycle;
    parse "H(x,y,z) <- R(x,y), S(y,z), T(z,x), U(x,z)";
  ]

let acyclic_queries =
  [ chain; parse "H(x) <- R1(x,y), R2(x,z)"; parse "H(x,y) <- R1(x,y)" ]

let prop_min_fill_valid =
  QCheck.Test.make ~name:"min-fill decompositions are valid" ~count:50
    (QCheck.make (QCheck.Gen.oneofl (cyclic_queries @ acyclic_queries)))
    (fun q -> Result.is_ok (Decomposition.validate q (Decomposition.min_fill q)))

let workload_for q =
  let rng = Random.State.make [| 1234 |] in
  List.fold_left
    (fun acc (a : Ast.atom) ->
      Instance.union acc
        (Generate.random_relation ~rng ~rel:a.Ast.rel ~arity:(List.length a.Ast.terms)
           ~size:40 ~domain:8 ()))
    Instance.empty (Ast.body q)

let prop_gym_ghd_matches_eval =
  QCheck.Test.make ~name:"GYM over GHD = naive evaluation" ~count:30
    (QCheck.pair
       (QCheck.make (QCheck.Gen.oneofl (cyclic_queries @ acyclic_queries)))
       (QCheck.make QCheck.Gen.(int_range 1 16)))
    (fun (q, p) ->
      let i = workload_for q in
      let result, _, _ = Gym_ghd.run ~p q i in
      Instance.equal result (Lamp_cq.Eval.eval q i))

let () =
  Alcotest.run "lamp_decomposition"
    [
      ( "decomposition",
        [
          Alcotest.test_case "singleton" `Quick test_singleton_valid;
          Alcotest.test_case "of join forest" `Quick test_of_join_forest_valid;
          Alcotest.test_case "min-fill triangle" `Quick test_min_fill_triangle;
          Alcotest.test_case "min-fill 4-cycle" `Quick test_min_fill_four_cycle;
          Alcotest.test_case "min-fill acyclic" `Quick test_min_fill_acyclic;
          Alcotest.test_case "rejects missing atom" `Quick test_validate_missing_atom;
          Alcotest.test_case "rejects broken intersection" `Quick
            test_validate_running_intersection;
        ] );
      ( "gym over ghd",
        [
          Alcotest.test_case "triangle" `Quick test_gym_ghd_triangle;
          Alcotest.test_case "4-cycle" `Quick test_gym_ghd_four_cycle;
          Alcotest.test_case "acyclic default" `Quick test_gym_ghd_acyclic_default;
          Alcotest.test_case "explicit decomposition" `Quick
            test_gym_ghd_explicit_decomposition;
          Alcotest.test_case "rejects invalid" `Quick test_gym_ghd_rejects_invalid;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_min_fill_valid; prop_gym_ghd_matches_eval ] );
    ]
