open Lamp_relational

let value = Alcotest.testable Value.pp Value.equal
let instance = Alcotest.testable Instance.pp Instance.equal
let fact = Alcotest.testable Fact.pp Fact.equal

(* ------------------------------------------------------------------ *)
(* Value                                                               *)

let test_value_order () =
  Alcotest.(check bool) "Int < Str" true (Value.compare (Value.int 5) (Value.str "a") < 0);
  Alcotest.(check bool) "Int order" true (Value.compare (Value.int 1) (Value.int 2) < 0);
  Alcotest.(check bool) "Str order" true (Value.compare (Value.str "a") (Value.str "b") < 0);
  Alcotest.(check int) "refl" 0 (Value.compare (Value.str "x") (Value.str "x"))

let test_value_of_string () =
  Alcotest.check value "int literal" (Value.int 42) (Value.of_string "42");
  Alcotest.check value "negative int" (Value.int (-7)) (Value.of_string "-7");
  Alcotest.check value "symbol" (Value.str "abc") (Value.of_string "abc")

let test_value_roundtrip () =
  let vs = [ Value.int 0; Value.int (-3); Value.str "hello" ] in
  List.iter
    (fun v -> Alcotest.check value "roundtrip" v (Value.of_string (Value.to_string v)))
    vs

(* ------------------------------------------------------------------ *)
(* Tuple                                                               *)

let test_tuple_compare () =
  let t1 = Tuple.of_ints [ 1; 2 ] and t2 = Tuple.of_ints [ 1; 3 ] in
  Alcotest.(check bool) "lex" true (Tuple.compare t1 t2 < 0);
  Alcotest.(check bool) "length first" true
    (Tuple.compare (Tuple.of_ints [ 9 ]) (Tuple.of_ints [ 1; 1 ]) < 0);
  Alcotest.(check int) "equal" 0 (Tuple.compare t1 (Tuple.of_ints [ 1; 2 ]))

(* ------------------------------------------------------------------ *)
(* Fact                                                                *)

let test_fact_parse () =
  let f = Fact.of_string "R(a, 1, b)" in
  Alcotest.(check string) "rel" "R" (Fact.rel f);
  Alcotest.(check int) "arity" 3 (Fact.arity f);
  Alcotest.check fact "value" (Fact.of_list "R" [ Value.str "a"; Value.int 1; Value.str "b" ]) f

let test_fact_parse_nullary () =
  let f = Fact.of_string "H()" in
  Alcotest.(check int) "arity 0" 0 (Fact.arity f)

let test_fact_parse_errors () =
  List.iter
    (fun s ->
      Alcotest.check_raises ("malformed " ^ s) (Invalid_argument "")
        (fun () ->
          try ignore (Fact.of_string s)
          with Invalid_argument _ -> raise (Invalid_argument "")))
    [ "R(a"; "Rab"; "(a,b)" ]

let test_fact_adom () =
  let f = Fact.of_string "R(a,b,a)" in
  Alcotest.(check int) "two distinct values" 2 (Value.Set.cardinal (Fact.adom f))

let test_fact_roundtrip () =
  let f = Fact.of_ints "Edge" [ 3; 4 ] in
  Alcotest.check fact "roundtrip" f (Fact.of_string (Fact.to_string f))

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)

let test_schema_basic () =
  let s = Schema.of_list [ ("R", 2); ("S", 3) ] in
  Alcotest.(check (option int)) "R arity" (Some 2) (Schema.arity s "R");
  Alcotest.(check (option int)) "missing" None (Schema.arity s "T");
  Alcotest.(check bool) "conforms" true (Schema.conforms s (Fact.of_ints "R" [ 1; 2 ]));
  Alcotest.(check bool) "wrong arity" false (Schema.conforms s (Fact.of_ints "R" [ 1 ]))

let test_schema_conflict () =
  Alcotest.check_raises "arity conflict" (Invalid_argument "")
    (fun () ->
      try ignore (Schema.of_list [ ("R", 2); ("R", 3) ])
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* Instance                                                            *)

let inst_e = Instance.of_string "R(a,b). R(b,a). R(b,c). S(a,a). S(c,a)"

let test_instance_parse () =
  Alcotest.(check int) "5 facts" 5 (Instance.cardinal inst_e);
  Alcotest.(check (list string)) "relations" [ "R"; "S" ] (Instance.relations inst_e);
  Alcotest.(check bool) "mem" true (Instance.mem (Fact.of_string "S(c,a)") inst_e)

let test_instance_dedup () =
  let i = Instance.of_string "R(1,2). R(1,2). R(1,2)" in
  Alcotest.(check int) "set semantics" 1 (Instance.cardinal i)

let test_instance_set_ops () =
  let i1 = Instance.of_string "R(1,2). R(2,3)"
  and i2 = Instance.of_string "R(2,3). R(3,4)" in
  Alcotest.(check int) "union" 3 (Instance.cardinal (Instance.union i1 i2));
  Alcotest.(check int) "inter" 1 (Instance.cardinal (Instance.inter i1 i2));
  Alcotest.(check int) "diff" 1 (Instance.cardinal (Instance.diff i1 i2));
  Alcotest.(check bool) "subset" true (Instance.subset (Instance.inter i1 i2) i1)

let test_instance_remove () =
  let f = Fact.of_string "R(a,b)" in
  let i = Instance.remove f inst_e in
  Alcotest.(check int) "one less" 4 (Instance.cardinal i);
  Alcotest.(check bool) "gone" false (Instance.mem f i);
  Alcotest.check instance "remove absent is id" inst_e
    (Instance.remove (Fact.of_string "T(1)") inst_e)

let test_instance_adom () =
  let expected = Value.set_of_list [ Value.str "a"; Value.str "b"; Value.str "c" ] in
  Alcotest.(check bool) "adom" true (Value.Set.equal expected (Instance.adom inst_e))

let test_instance_restrict () =
  let c = Value.set_of_list [ Value.str "a"; Value.str "b" ] in
  let r = Instance.restrict c inst_e in
  Alcotest.check instance "restrict" (Instance.of_string "R(a,b). R(b,a). S(a,a)") r

let test_instance_schema () =
  let s = Instance.schema inst_e in
  Alcotest.(check (option int)) "R/2" (Some 2) (Schema.arity s "R")

(* ------------------------------------------------------------------ *)
(* Adom: distinctness, disjointness, components                        *)

let test_domain_distinct () =
  let i = Instance.of_string "E(a,b)" in
  Alcotest.(check bool) "distinct" true
    (Adom.fact_domain_distinct_from (Fact.of_string "E(b,c)") i);
  Alcotest.(check bool) "not distinct" false
    (Adom.fact_domain_distinct_from (Fact.of_string "E(b,a)") i)

let test_domain_disjoint () =
  let i = Instance.of_string "E(a,b)" in
  Alcotest.(check bool) "disjoint" true
    (Adom.fact_domain_disjoint_from (Fact.of_string "E(c,d)") i);
  Alcotest.(check bool) "shares b" false
    (Adom.fact_domain_disjoint_from (Fact.of_string "E(b,c)") i);
  Alcotest.(check bool) "instance disjoint" true
    (Adom.domain_disjoint_from (Instance.of_string "E(c,d). E(d,c)") i)

let test_components () =
  let i = Instance.of_string "E(a,b). E(b,c). E(x,y). F(z,z)" in
  let comps = Adom.components i in
  Alcotest.(check int) "three components" 3 (List.length comps);
  List.iter
    (fun c -> Alcotest.(check bool) "component of i" true (Adom.is_component c i))
    comps;
  let union = List.fold_left Instance.union Instance.empty comps in
  Alcotest.check instance "partition" i union

let test_components_single () =
  let i = Instance.of_string "E(a,b). E(b,c). E(c,a)" in
  Alcotest.(check int) "connected" 1 (List.length (Adom.components i))

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let test_matching_skew_free () =
  let i = Generate.matching ~size:100 ~offset:0 () in
  Alcotest.(check int) "size" 100 (Instance.cardinal i);
  (* Every domain value occurs exactly once. *)
  let counts = Hashtbl.create 64 in
  Instance.iter
    (fun f ->
      Array.iter
        (fun v ->
          let c = Option.value ~default:0 (Hashtbl.find_opt counts v) in
          Hashtbl.replace counts v (c + 1))
        (Fact.args f))
    i;
  Hashtbl.iter (fun _ c -> Alcotest.(check int) "occurs once" 1 c) counts

let test_skewed_star () =
  let i = Generate.skewed_star ~hub:0 ~size:50 ~offset:1 () in
  Alcotest.(check int) "size" 50 (Instance.cardinal i);
  Instance.iter
    (fun f -> Alcotest.check value "hub first" (Value.int 0) (Fact.args f).(0))
    i

let test_zipf_sampler_heavy () =
  let rng = Random.State.make [| 7 |] in
  let sample = Generate.zipf_sampler ~rng ~n:1000 ~s:1.2 in
  let n = 10_000 in
  let ones = ref 0 in
  for _ = 1 to n do
    if sample () = 1 then incr ones
  done;
  (* Rank 1 of Zipf(1.2) over 1000 values carries >10% of the mass. *)
  Alcotest.(check bool) "rank 1 is heavy" true (!ones > n / 10)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let fact_gen =
  let open QCheck.Gen in
  let value_gen =
    oneof [ map Value.int (int_range 0 5); map Value.str (oneofl [ "a"; "b"; "c" ]) ]
  in
  let* rel = oneofl [ "R"; "S"; "T" ] in
  let* args = list_size (int_range 1 3) value_gen in
  return (Fact.of_list rel args)

let instance_gen =
  QCheck.Gen.(map Instance.of_facts (list_size (int_range 0 12) fact_gen))

let instance_arb = QCheck.make ~print:(Fmt.str "%a" Instance.pp) instance_gen

let prop_union_commutative =
  QCheck.Test.make ~name:"instance union commutes" ~count:200
    (QCheck.pair instance_arb instance_arb)
    (fun (i1, i2) -> Instance.equal (Instance.union i1 i2) (Instance.union i2 i1))

let prop_diff_union =
  QCheck.Test.make ~name:"(i1 - i2) ∪ (i1 ∩ i2) = i1" ~count:200
    (QCheck.pair instance_arb instance_arb)
    (fun (i1, i2) ->
      Instance.equal
        (Instance.union (Instance.diff i1 i2) (Instance.inter i1 i2))
        i1)

let prop_components_partition =
  QCheck.Test.make ~name:"components partition the instance" ~count:200
    instance_arb
    (fun i ->
      let comps = Adom.components i in
      let union = List.fold_left Instance.union Instance.empty comps in
      Instance.equal union i
      && List.for_all
           (fun c ->
             Adom.domain_disjoint_from c (Instance.diff i c)
             && not (Instance.is_empty c))
           comps)

let prop_restrict_subset =
  QCheck.Test.make ~name:"restrict yields a subinstance" ~count:200
    instance_arb
    (fun i ->
      let c =
        Value.Set.filter
          (fun v -> Value.hash v mod 2 = 0)
          (Instance.adom i)
      in
      Instance.subset (Instance.restrict c i) i)

let prop_parse_roundtrip =
  QCheck.Test.make ~name:"instance pp/parse roundtrip" ~count:200 instance_arb
    (fun i ->
      let s =
        String.concat ". " (List.map Fact.to_string (Instance.facts i))
      in
      Instance.equal i (Instance.of_string s))

let () =
  Alcotest.run "lamp_relational"
    [
      ( "value",
        [
          Alcotest.test_case "order" `Quick test_value_order;
          Alcotest.test_case "of_string" `Quick test_value_of_string;
          Alcotest.test_case "roundtrip" `Quick test_value_roundtrip;
        ] );
      ("tuple", [ Alcotest.test_case "compare" `Quick test_tuple_compare ]);
      ( "fact",
        [
          Alcotest.test_case "parse" `Quick test_fact_parse;
          Alcotest.test_case "parse nullary" `Quick test_fact_parse_nullary;
          Alcotest.test_case "parse errors" `Quick test_fact_parse_errors;
          Alcotest.test_case "adom" `Quick test_fact_adom;
          Alcotest.test_case "roundtrip" `Quick test_fact_roundtrip;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basic" `Quick test_schema_basic;
          Alcotest.test_case "conflict" `Quick test_schema_conflict;
        ] );
      ( "instance",
        [
          Alcotest.test_case "parse" `Quick test_instance_parse;
          Alcotest.test_case "dedup" `Quick test_instance_dedup;
          Alcotest.test_case "set ops" `Quick test_instance_set_ops;
          Alcotest.test_case "remove" `Quick test_instance_remove;
          Alcotest.test_case "adom" `Quick test_instance_adom;
          Alcotest.test_case "restrict" `Quick test_instance_restrict;
          Alcotest.test_case "schema" `Quick test_instance_schema;
        ] );
      ( "adom",
        [
          Alcotest.test_case "domain distinct" `Quick test_domain_distinct;
          Alcotest.test_case "domain disjoint" `Quick test_domain_disjoint;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "connected graph" `Quick test_components_single;
        ] );
      ( "generate",
        [
          Alcotest.test_case "matching is skew free" `Quick test_matching_skew_free;
          Alcotest.test_case "skewed star" `Quick test_skewed_star;
          Alcotest.test_case "zipf heavy hitter" `Quick test_zipf_sampler_heavy;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_union_commutative;
            prop_diff_union;
            prop_components_partition;
            prop_restrict_subset;
            prop_parse_roundtrip;
          ] );
    ]
