open Lamp_relational
open Lamp_cq
open Lamp_distribution
open Lamp_correctness

let inst = Instance.of_string
let parse = Parser.query
let va = Value.str "a"
let vb = Value.str "b"
let universe_ab = Value.set_of_list [ va; vb ]

let check_ok msg = function
  | Ok () -> ()
  | Error _ -> Alcotest.failf "%s: expected Ok" msg

let check_error msg = function
  | Ok () -> Alcotest.failf "%s: expected Error" msg
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Example 4.3: PC0 fails, PC1 holds                                   *)

(* κ0 is responsible for every fact except R(a,b); κ1 for every fact
   except R(b,a). *)
let policy_4_3 =
  Policy.make ~universe:universe_ab ~name:"example 4.3" ~nodes:[ 0; 1 ]
    (fun node f ->
      match node with
      | 0 -> not (Fact.equal f (Fact.of_list "R" [ va; vb ]))
      | _ -> not (Fact.equal f (Fact.of_list "R" [ vb; va ])))

let q_4_3 = Examples.q_example_4_3

let test_example_4_3_pc0_fails () =
  check_error "PC0" (Saturation.strongly_saturates policy_4_3 q_4_3)

let test_example_4_3_pc1_holds () =
  check_ok "PC1" (Saturation.saturates policy_4_3 q_4_3)

let test_example_4_3_decide () =
  check_ok "decide" (Parallel_correctness.decide q_4_3 policy_4_3)

let test_example_4_3_search_agrees () =
  match Parallel_correctness.decide_by_search q_4_3 policy_4_3 with
  | Ok () -> ()
  | Error i -> Alcotest.failf "unexpected counterexample %s" (Fmt.str "%a" Instance.pp i)

(* ------------------------------------------------------------------ *)
(* Example 4.1 policies                                                *)

let qe = Examples.qe_example_4_1
let universe_abc = Value.set_of_list [ va; vb; Value.str "c" ]

let p1 =
  Policy.make ~universe:universe_abc ~name:"P1" ~nodes:[ 0; 1 ] (fun node f ->
      match Fact.rel f with
      | "R" -> true
      | "S" ->
        let args = Fact.args f in
        if Value.equal args.(0) args.(1) then node = 0 else node = 1
      | _ -> false)

let p2 =
  Policy.make ~universe:universe_abc ~name:"P2" ~nodes:[ 0; 1 ] (fun node f ->
      match Fact.rel f with "R" -> node = 0 | "S" -> node = 1 | _ -> false)

let test_p1_parallel_correct () =
  check_ok "P1 saturates Qe" (Parallel_correctness.decide qe p1)

let test_p2_not_parallel_correct () =
  check_error "P2 violates PC" (Parallel_correctness.decide qe p2);
  (* And the violation is real: the brute-force oracle finds a
     counterexample instance. *)
  match Parallel_correctness.decide_by_search ~max_facts:20 qe p2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "oracle disagrees with decide"

let test_pci_example () =
  let ie = inst "R(a,b). R(b,a). R(b,c). S(a,a). S(c,a)" in
  check_ok "P1 on Ie" (Parallel_correctness.on_instance qe p1 ie);
  match Parallel_correctness.on_instance qe p2 ie with
  | Ok () -> Alcotest.fail "P2 must fail on Ie"
  | Error v ->
    Alcotest.(check int) "two facts missing" 2
      (Instance.cardinal v.Parallel_correctness.missing);
    Alcotest.(check int) "nothing extra" 0
      (Instance.cardinal v.Parallel_correctness.extra)

(* ------------------------------------------------------------------ *)
(* HyperCube strongly saturates                                        *)

let test_hypercube_strongly_saturates () =
  let universe = Value.set_of_list (List.init 3 Value.int) in
  List.iter
    (fun seed ->
      let policy, _ =
        Policy.hypercube ~seed ~universe ~name:"hc" ~query:Examples.q2_triangle
          ~shares:[ ("x", 2); ("y", 2); ("z", 2) ] ()
      in
      check_ok
        (Printf.sprintf "hypercube seed %d" seed)
        (Saturation.strongly_saturates policy Examples.q2_triangle))
    [ 0; 1; 17; 123 ]

let test_hypercube_saturates_self_join () =
  let universe = Value.set_of_list (List.init 3 Value.int) in
  let policy, _ =
    Policy.hypercube ~universe ~name:"hc" ~query:Examples.full_triangle_e
      ~shares:[ ("x", 2); ("y", 2); ("z", 2) ] ()
  in
  check_ok "self-join hypercube PC0"
    (Saturation.strongly_saturates policy Examples.full_triangle_e);
  check_ok "decide" (Parallel_correctness.decide Examples.full_triangle_e policy)

(* ------------------------------------------------------------------ *)
(* Queries with inequalities                                           *)

let test_diseq_pc () =
  (* Only off-diagonal R facts are assigned anywhere; the diagonal is
     irrelevant to the query thanks to x != y. *)
  let q = parse "H(x,y) <- R(x,y), x != y" in
  let policy =
    Policy.make ~universe:universe_ab ~name:"offdiag" ~nodes:[ 0 ]
      (fun _ f ->
        let args = Fact.args f in
        Fact.rel f = "R" && not (Value.equal args.(0) args.(1)))
  in
  check_ok "diseq PC" (Parallel_correctness.decide q policy);
  (* Dropping the inequality makes the diagonal matter. *)
  let q' = parse "H(x,y) <- R(x,y)" in
  check_error "without diseq" (Parallel_correctness.decide q' policy)

(* ------------------------------------------------------------------ *)
(* UCQ                                                                 *)

let test_ucq_minimality () =
  (* In the union [H() ← R(x,y)] ∪ [H() ← R(x,x)], a valuation of the
     first disjunct touching the diagonal is dominated by the second
     disjunct's singleton requirement. *)
  let qs = Parser.ucq "H() <- R(x,y); H() <- R(x,x)" in
  let images =
    Parallel_correctness.ucq_minimal_images qs ~universe:[ va; vb ]
  in
  List.iter
    (fun (_, required) ->
      Alcotest.(check int) "singleton requirements" 1 (Instance.cardinal required))
    images

let test_ucq_decide () =
  (* Each disjunct reads a different relation; a policy scattering them
     across nodes is still parallel-correct for the union. *)
  let qs = Parser.ucq "H(x) <- R(x,y); H(x) <- T(x)" in
  let policy =
    Policy.make ~universe:universe_ab ~name:"split" ~nodes:[ 0; 1 ]
      (fun node f ->
        match Fact.rel f with "R" -> node = 0 | "T" -> node = 1 | _ -> false)
  in
  check_ok "ucq split" (Parallel_correctness.ucq_decide qs policy);
  (* Breaking R across nodes per-fact loses joint valuations? R-atoms
     are single: still fine. But hiding R entirely is not. *)
  let blind =
    Policy.make ~universe:universe_ab ~name:"blind" ~nodes:[ 0 ]
      (fun _ f -> Fact.rel f = "T")
  in
  check_error "missing R" (Parallel_correctness.ucq_decide qs blind)

(* ------------------------------------------------------------------ *)
(* Transfer: Figure 1(a)                                               *)

let q1 = Examples.q1_example_4_11
let q2 = Examples.q2_example_4_11
let q3 = Examples.q3_example_4_11
let q4 = Examples.q4_example_4_11

let test_figure_1a () =
  let expected =
    (* rows = source, cols = target, order Q1 Q2 Q3 Q4 *)
    [
      [ true; true; false; false ];
      [ false; true; false; false ];
      [ true; true; true; true ];
      [ false; true; false; true ];
    ]
  in
  let actual = Transfer.transfer_matrix [ q1; q2; q3; q4 ] in
  List.iteri
    (fun i row ->
      List.iteri
        (fun j cell ->
          Alcotest.(check bool)
            (Printf.sprintf "transfer Q%d -> Q%d" (i + 1) (j + 1))
            (List.nth (List.nth expected i) j)
            cell)
        row)
    actual

let test_transfer_orthogonal_to_containment () =
  (* The paper's Figure 1 point: Q3 → Q2 transfers but Q3 ⊄ Q2, while
     Q1 ⊆ Q4 holds but transfer Q1 → Q4 fails. *)
  Alcotest.(check bool) "Q3 pc-> Q2" true (Transfer.transfers q3 q2);
  Alcotest.(check bool) "Q3 ⊄ Q2" false (Containment.contained q3 q2);
  Alcotest.(check bool) "Q1 ⊆ Q4" true (Containment.contained q1 q4);
  Alcotest.(check bool) "no transfer Q1 -> Q4" false (Transfer.transfers q1 q4)

let test_transfer_reflexive () =
  List.iter
    (fun q -> Alcotest.(check bool) "reflexive" true (Transfer.transfers q q))
    [ q1; q2; q3; q4; Examples.q2_triangle; Examples.q_example_4_3 ]

let test_covers_violation_witness () =
  match Transfer.covers_result q1 q3 with
  | Ok () -> Alcotest.fail "Q1 must not cover Q3"
  | Error v ->
    (* The witness is a minimal valuation image of Q3 that Q1 cannot
       dominate: it contains an off-diagonal R fact. *)
    Alcotest.(check bool) "witness has R fact" true
      (Instance.facts v.Transfer.required
      |> List.exists (fun f -> Fact.rel f = "R"))

(* ------------------------------------------------------------------ *)
(* Workload reshuffling plan (Section 4.2 motivation)                  *)

let test_plan_workload () =
  (* Q3 transfers to everything (Figure 1a): evaluating Q3 first lets
     the whole workload reuse one distribution. *)
  let plan = Transfer.plan_workload [ q3; q1; q2; q4 ] in
  Alcotest.(check int) "one reshuffle" 1 (Transfer.reshuffles plan);
  List.iteri
    (fun i step ->
      if i > 0 then
        Alcotest.(check bool) "reuses an earlier distribution" true
          (step.Transfer.reuse_of <> None))
    plan;
  (* The reverse order cannot reuse anything except Q2 after Q1/Q4. *)
  let plan' = Transfer.plan_workload [ q4; q3; q2; q1 ] in
  Alcotest.(check bool) "more reshuffles in a bad order" true
    (Transfer.reshuffles plan' > 1)

(* ------------------------------------------------------------------ *)
(* UCQ transfer ([15])                                                 *)

let test_ucq_transfer_union_helps () =
  (* Q2 does not transfer to Q1 alone, but transfers to the union
     {Q1; Q2}: Q1's minimal valuations are dominated by Q2's inside the
     union, so nothing of Q1 needs covering. *)
  Alcotest.(check bool) "no pairwise transfer" false (Transfer.transfers q2 q1);
  Alcotest.(check bool) "transfer to the union" true
    (Transfer.ucq_transfers [ q2 ] [ q1; q2 ])

let test_ucq_transfer_violation () =
  match Transfer.ucq_covers_result [ q2 ] [ q3 ] with
  | Ok () -> Alcotest.fail "Q2 must not cover Q3"
  | Error v ->
    Alcotest.(check bool) "S fact uncovered" true
      (Instance.facts v.Transfer.required
      |> List.exists (fun f -> Fact.rel f = "S"))

let prop_ucq_transfer_generalizes_cq =
  (* On singleton unions the UCQ decision agrees with the CQ one. *)
  QCheck.Test.make ~name:"singleton UCQ transfer = CQ transfer" ~count:30
    (QCheck.pair
       (QCheck.make (QCheck.Gen.oneofl [ q1; q2; q3; q4 ]))
       (QCheck.make (QCheck.Gen.oneofl [ q1; q2; q3; q4 ])))
    (fun (a, b) ->
      Bool.equal (Transfer.transfers a b) (Transfer.ucq_transfers [ a ] [ b ]))

(* ------------------------------------------------------------------ *)
(* Negation                                                            *)

let test_negation_broadcast_correct () =
  let q = parse "H(x) <- R(x), !S(x)" in
  let bc = Policy.broadcast_all ~universe:universe_ab ~name:"bc" ~p:2 () in
  let v = Negation.decide q bc in
  Alcotest.(check bool) "broadcast correct" true (Negation.is_correct v)

let test_negation_split_unsound () =
  (* R on κ0, S on κ1: κ0 never sees S(a) and wrongly derives H(a). *)
  let q = parse "H(x) <- R(x), !S(x)" in
  let split =
    Policy.make ~universe:universe_ab ~name:"split" ~nodes:[ 0; 1 ]
      (fun node f ->
        match Fact.rel f with "R" -> node = 0 | "S" -> node = 1 | _ -> false)
  in
  let v = Negation.decide q split in
  (match v.Negation.sound with
  | Error i ->
    (* The counterexample indeed breaks soundness. *)
    let local = Distributed.eval q split i and global = Eval.eval q i in
    Alcotest.(check bool) "witness is real" false (Instance.subset local global)
  | Ok () -> Alcotest.fail "expected unsoundness");
  Alcotest.(check bool) "not correct" false (Negation.is_correct v)

let test_negation_incomplete () =
  (* Nobody is responsible for R facts: completeness fails, soundness
     holds (local evaluation sees nothing). *)
  let q = parse "H(x) <- R(x), !S(x)" in
  let empty_policy =
    Policy.make ~universe:universe_ab ~name:"empty" ~nodes:[ 0 ]
      (fun _ _ -> false)
  in
  let v = Negation.decide q empty_policy in
  check_ok "sound" v.Negation.sound;
  check_error "incomplete" v.Negation.complete

let test_ucq_negation () =
  (* UCQ¬: union of a positive and a negated disjunct. Broadcast is
     correct; splitting the relations breaks soundness of the negated
     disjunct. *)
  let qs = Parser.ucq "H(x) <- R(x), !S(x); H(x) <- T(x)" in
  let bc = Policy.broadcast_all ~universe:universe_ab ~name:"bc" ~p:2 () in
  Alcotest.(check bool) "broadcast correct" true
    (Negation.is_correct (Negation.ucq_decide qs bc));
  let split =
    Policy.make ~universe:universe_ab ~name:"split" ~nodes:[ 0; 1 ]
      (fun node f ->
        match Fact.rel f with
        | "R" -> node = 0
        | "S" -> node = 1
        | "T" -> node = 0
        | _ -> false)
  in
  let v = Negation.ucq_decide qs split in
  check_error "unsound when S is hidden from R's node" v.Negation.sound

let test_negation_cap () =
  let q = parse "H(x) <- R(x,y,z), !S(x)" in
  let policy =
    Policy.broadcast_all
      ~universe:(Value.set_of_list (List.init 4 Value.int))
      ~name:"bc" ~p:2 ()
  in
  Alcotest.check_raises "fact space too large" (Invalid_argument "")
    (fun () ->
      try ignore (Negation.decide q policy)
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* Properties: decide vs brute-force oracle                            *)

let queries_for_props =
  [
    parse "H(x) <- R(x,y)";
    parse "H(x,z) <- R(x,y), R(y,z)";
    Examples.q_example_4_3;
    parse "H() <- R(x,x), S(x)";
    parse "H(x,y) <- R(x,y), x != y";
    parse "H(x) <- R(x,y), S(y)";
  ]

(* Random explicit policy over universe {a, b} for schema R/2, S/1. *)
let policy_gen =
  let open QCheck.Gen in
  let all_facts =
    List.concat_map
      (fun v1 ->
        Fact.of_list "S" [ v1 ]
        :: List.map (fun v2 -> Fact.of_list "R" [ v1; v2 ]) [ va; vb ])
      [ va; vb ]
  in
  let* assignments =
    list_repeat (List.length all_facts) (int_range 0 3)
  in
  let node_facts node =
    List.filteri
      (fun i _ ->
        let a = List.nth assignments i in
        (* 0: κ0 only, 1: κ1 only, 2: both, 3: neither *)
        match node with
        | 0 -> a = 0 || a = 2
        | _ -> a = 1 || a = 2)
      all_facts
  in
  return
    (Policy.explicit ~universe:universe_ab ~name:"random"
       [ (0, node_facts 0); (1, node_facts 1) ])

let policy_arb =
  QCheck.make
    ~print:(fun p ->
      String.concat "; "
        (List.map
           (fun n ->
             Fmt.str "κ%d: %a" n Instance.pp
               (Policy.loc_inst p
                  (inst "R(a,a). R(a,b). R(b,a). R(b,b). S(a). S(b)")
                  n))
           (Policy.nodes p)))
    policy_gen

let prop_decide_matches_oracle =
  QCheck.Test.make ~name:"Proposition 4.6: PC1 iff parallel-correct" ~count:60
    (QCheck.pair policy_arb (QCheck.make (QCheck.Gen.oneofl queries_for_props)))
    (fun (policy, q) ->
      let by_saturation = Result.is_ok (Parallel_correctness.decide q policy) in
      let by_search =
        Result.is_ok (Parallel_correctness.decide_by_search q policy)
      in
      Bool.equal by_saturation by_search)

let prop_transfer_sound =
  QCheck.Test.make
    ~name:"transfer: target PC under every policy making source PC" ~count:40
    policy_arb
    (fun policy ->
      (* Over the R/2, S/1 vocabulary. *)
      let source = parse "H(x) <- R(x,y), S(y)" in
      let targets =
        [ parse "H(x) <- R(x,x), S(x)"; parse "H() <- R(x,y), S(y)" ]
      in
      List.for_all
        (fun target ->
          (not (Transfer.transfers source target))
          || (not (Result.is_ok (Parallel_correctness.decide source policy)))
          || Result.is_ok (Parallel_correctness.decide target policy))
        targets)

let prop_strong_saturation_implies_saturation =
  QCheck.Test.make ~name:"PC0 implies PC1" ~count:60
    (QCheck.pair policy_arb (QCheck.make (QCheck.Gen.oneofl queries_for_props)))
    (fun (policy, q) ->
      (not (Result.is_ok (Saturation.strongly_saturates policy q)))
      || Result.is_ok (Saturation.saturates policy q))

let prop_pc_implies_pci =
  QCheck.Test.make ~name:"PC implies PCI on random instances" ~count:60
    (QCheck.triple policy_arb
       (QCheck.make (QCheck.Gen.oneofl queries_for_props))
       (QCheck.make
          QCheck.Gen.(
            let fact_gen =
              oneof
                [
                  (let* v1 = oneofl [ va; vb ] and* v2 = oneofl [ va; vb ] in
                   return (Fact.of_list "R" [ v1; v2 ]));
                  (let* v = oneofl [ va; vb ] in
                   return (Fact.of_list "S" [ v ]));
                ]
            in
            map Instance.of_facts (list_size (int_range 0 6) fact_gen))))
    (fun (policy, q, i) ->
      (not (Result.is_ok (Parallel_correctness.decide q policy)))
      || Result.is_ok (Parallel_correctness.on_instance q policy i))

(* Random small full CQs over R/2, S/1 with random shares: every
   HyperCube policy strongly saturates its query, whatever the shares
   and seed (the remark after Definition 4.7). *)
let full_cq_gen =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "z" ] in
  let atom_gen =
    oneof
      [
        (let* v1 = var and* v2 = var in
         return (Ast.atom "R" [ Ast.Var v1; Ast.Var v2 ]));
        (let* v = var in
         return (Ast.atom "S" [ Ast.Var v ]));
      ]
  in
  let* body = list_size (int_range 1 3) atom_gen in
  let body_vars =
    List.concat_map Ast.atom_vars body |> List.sort_uniq String.compare
  in
  return
    (Ast.make
       ~head:(Ast.atom "H" (List.map (fun v -> Ast.Var v) body_vars))
       ~body ())

let prop_hypercube_strongly_saturates_random =
  QCheck.Test.make ~name:"every HyperCube policy strongly saturates its query"
    ~count:40
    (QCheck.triple
       (QCheck.make ~print:Ast.to_string full_cq_gen)
       (QCheck.make QCheck.Gen.(int_range 0 500))
       (QCheck.make QCheck.Gen.(int_range 1 3)))
    (fun (q, seed, share) ->
      let shares = List.map (fun v -> (v, share)) (Ast.body_vars q) in
      let policy, _ =
        Policy.hypercube ~seed ~universe:universe_ab ~name:"hc" ~query:q
          ~shares ()
      in
      Result.is_ok (Saturation.strongly_saturates policy q))

let prop_negation_module_agrees_on_positive =
  (* For plain CQs, the exhaustive soundness/completeness decision of the
     Negation module coincides with the minimal-valuation decision. *)
  QCheck.Test.make ~name:"Negation.decide = decide on positive CQs" ~count:30
    (QCheck.pair policy_arb (QCheck.make (QCheck.Gen.oneofl queries_for_props)))
    (fun (policy, q) ->
      let via_negation = Negation.is_correct (Negation.decide q policy) in
      let via_minimal = Result.is_ok (Parallel_correctness.decide q policy) in
      Bool.equal via_negation via_minimal)

let () =
  Alcotest.run "lamp_correctness"
    [
      ( "example 4.3",
        [
          Alcotest.test_case "PC0 fails" `Quick test_example_4_3_pc0_fails;
          Alcotest.test_case "PC1 holds" `Quick test_example_4_3_pc1_holds;
          Alcotest.test_case "decide" `Quick test_example_4_3_decide;
          Alcotest.test_case "oracle agrees" `Quick test_example_4_3_search_agrees;
        ] );
      ( "example 4.1",
        [
          Alcotest.test_case "P1 correct" `Quick test_p1_parallel_correct;
          Alcotest.test_case "P2 incorrect" `Quick test_p2_not_parallel_correct;
          Alcotest.test_case "PCI on Ie" `Quick test_pci_example;
        ] );
      ( "hypercube",
        [
          Alcotest.test_case "strongly saturates" `Quick
            test_hypercube_strongly_saturates;
          Alcotest.test_case "self join" `Quick test_hypercube_saturates_self_join;
        ] );
      ( "inequalities",
        [ Alcotest.test_case "diseq-aware PC" `Quick test_diseq_pc ] );
      ( "ucq",
        [
          Alcotest.test_case "union minimality" `Quick test_ucq_minimality;
          Alcotest.test_case "decide" `Quick test_ucq_decide;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "figure 1(a)" `Quick test_figure_1a;
          Alcotest.test_case "orthogonal to containment" `Quick
            test_transfer_orthogonal_to_containment;
          Alcotest.test_case "reflexive" `Quick test_transfer_reflexive;
          Alcotest.test_case "violation witness" `Quick test_covers_violation_witness;
          Alcotest.test_case "workload plan" `Quick test_plan_workload;
          Alcotest.test_case "ucq: union helps" `Quick test_ucq_transfer_union_helps;
          Alcotest.test_case "ucq: violation" `Quick test_ucq_transfer_violation;
        ] );
      ( "negation",
        [
          Alcotest.test_case "broadcast correct" `Quick
            test_negation_broadcast_correct;
          Alcotest.test_case "split unsound" `Quick test_negation_split_unsound;
          Alcotest.test_case "incomplete" `Quick test_negation_incomplete;
          Alcotest.test_case "ucq negation" `Quick test_ucq_negation;
          Alcotest.test_case "cap" `Quick test_negation_cap;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_decide_matches_oracle;
            prop_transfer_sound;
            prop_strong_saturation_implies_saturation;
            prop_ucq_transfer_generalizes_cq;
            prop_hypercube_strongly_saturates_random;
            prop_negation_module_agrees_on_positive;
            prop_pc_implies_pci;
          ] );
    ]
