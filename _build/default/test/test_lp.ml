open Lamp_lp

let close ?(eps = 1e-6) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %f, got %f)" msg expected actual)
    true
    (Float.abs (expected -. actual) < eps)

(* ------------------------------------------------------------------ *)
(* Simplex                                                             *)

let test_simplex_basic () =
  (* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18: classic optimum
     36 at (2, 6). *)
  let p =
    Simplex.make ~objective:[| 3.0; 5.0 |]
      ~constraints:
        [
          ([| 1.0; 0.0 |], 4.0);
          ([| 0.0; 2.0 |], 12.0);
          ([| 3.0; 2.0 |], 18.0);
        ]
  in
  let s = Simplex.maximize_exn p in
  close "objective" 36.0 s.Simplex.value;
  close "x" 2.0 s.Simplex.primal.(0);
  close "y" 6.0 s.Simplex.primal.(1)

let test_simplex_unbounded () =
  let p = Simplex.make ~objective:[| 1.0 |] ~constraints:[ ([| -1.0 |], 1.0) ] in
  match Simplex.maximize p with
  | Simplex.Unbounded -> ()
  | Simplex.Optimal _ -> Alcotest.fail "expected unbounded"

let test_simplex_degenerate () =
  (* Degenerate vertex (b = 0 rows); Bland's rule must still terminate. *)
  let p =
    Simplex.make ~objective:[| 1.0; 1.0 |]
      ~constraints:
        [
          ([| 1.0; -1.0 |], 0.0);
          ([| -1.0; 1.0 |], 0.0);
          ([| 1.0; 1.0 |], 2.0);
        ]
  in
  let s = Simplex.maximize_exn p in
  close "objective" 2.0 s.Simplex.value

let test_simplex_duals () =
  (* Strong duality: c·x* = b·y*. *)
  let constraints =
    [ ([| 2.0; 1.0 |], 10.0); ([| 1.0; 3.0 |], 15.0) ]
  in
  let p = Simplex.make ~objective:[| 4.0; 5.0 |] ~constraints in
  let s = Simplex.maximize_exn p in
  let dual_value =
    List.fold_left2
      (fun acc (_, b) y -> acc +. (b *. y))
      0.0 constraints
      (Array.to_list s.Simplex.dual)
  in
  close "strong duality" s.Simplex.value dual_value

let test_simplex_rejects_negative_rhs () =
  Alcotest.check_raises "negative rhs" (Invalid_argument "")
    (fun () ->
      try ignore (Simplex.make ~objective:[| 1.0 |] ~constraints:[ ([| 1.0 |], -1.0) ])
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* Packings: the paper's worked values                                 *)

(* Triangle query Q2: vars x,y,z; edges R(x,y), S(y,z), T(z,x). *)
let triangle = [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]

let test_triangle_tau () =
  let r = Packing.edge_packing ~vertices:3 ~edges:triangle in
  (* τ* = 3/2 for the triangle (Section 3.1 of the paper). *)
  close "tau* = 3/2" 1.5 r.Packing.value

let test_triangle_exponents () =
  let t, e = Packing.hypercube_exponents ~vertices:3 ~edges:triangle in
  (* 1/τ* = 2/3, shares p^(1/3) each: the load bound m/p^(2/3). *)
  close "t = 2/3" (2.0 /. 3.0) t;
  Array.iter (fun ev -> close "share exponent 1/3" (1.0 /. 3.0) ev) e

let test_binary_join_tau () =
  (* Q1: R(x,y), S(y,z). τ* = 1 because y is in both atoms... in fact
     packing y: R + S ≤ 1 on y; optimum picks both edges at weight 1/2
     on y? No: R covers {x,y}, S covers {y,z}; constraint on y is
     y_R + y_S ≤ 1, on x is y_R ≤ 1, on z is y_S ≤ 1, so max total = 1.
     Load m/p^(1/1) = m/p: a join of two relations is maximally
     parallelizable without skew. *)
  let r = Packing.edge_packing ~vertices:3 ~edges:[ [ 0; 1 ]; [ 1; 2 ] ] in
  close "tau* = 1" 1.0 r.Packing.value

let test_cartesian_product_tau () =
  (* R(x), S(y): disjoint edges pack independently, τ* = 2, load
     m/p^(1/2) — the grid join of Example 3.1(1b). *)
  let r = Packing.edge_packing ~vertices:2 ~edges:[ [ 0 ]; [ 1 ] ] in
  close "tau* = 2" 2.0 r.Packing.value;
  let t, e = Packing.hypercube_exponents ~vertices:2 ~edges:[ [ 0 ]; [ 1 ] ] in
  close "t = 1/2" 0.5 t;
  close "ex = 1/2" 0.5 e.(0);
  close "ey = 1/2" 0.5 e.(1)

let test_star_query_tau () =
  (* Star: R1(x0,x1), R2(x0,x2), R3(x0,x3); center x0 limits packing of
     any two edges but leaves ends free: τ* = ... each edge uses x0, so
     Σ y_i ≤ 1 from x0: τ* = 1. *)
  let r =
    Packing.edge_packing ~vertices:4 ~edges:[ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ] ]
  in
  close "tau* = 1" 1.0 r.Packing.value

let test_path4_tau () =
  (* Path of 4 vars / 3 edges: edges 1 and 3 are disjoint → τ* = 2. *)
  let r =
    Packing.edge_packing ~vertices:4 ~edges:[ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ]
  in
  close "tau* = 2" 2.0 r.Packing.value

let test_triangle_edge_cover () =
  (* Fractional edge cover of the triangle: ρ* = 3/2 (AGM bound
     m^(3/2) for triangle counting). *)
  let r = Packing.edge_cover ~vertices:3 ~edges:triangle in
  close "rho* = 3/2" 1.5 r.Packing.value;
  (* The weights are a valid cover: every vertex covered to >= 1. *)
  List.iteri
    (fun v _ ->
      let total =
        List.fold_left2
          (fun acc e w -> if List.mem v e then acc +. w else acc)
          0.0 triangle
          (Array.to_list r.Packing.weights)
      in
      Alcotest.(check bool) "covered" true (total >= 1.0 -. 1e-6))
    [ 0; 1; 2 ]

let test_vertex_cover_equals_packing () =
  let p = Packing.edge_packing ~vertices:3 ~edges:triangle in
  let c = Packing.vertex_cover ~vertices:3 ~edges:triangle in
  close "LP duality" p.Packing.value c.Packing.value

let test_edge_cover_uncovered_vertex () =
  Alcotest.check_raises "uncovered vertex" (Invalid_argument "")
    (fun () ->
      try ignore (Packing.edge_cover ~vertices:2 ~edges:[ [ 0 ] ])
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let hypergraph_gen =
  let open QCheck.Gen in
  let* vertices = int_range 1 6 in
  let* nedges = int_range 1 6 in
  let* edges =
    list_repeat nedges
      (let* size = int_range 1 (min 3 vertices) in
       list_repeat size (int_range 0 (vertices - 1)))
  in
  return (vertices, edges)

let hypergraph_arb =
  QCheck.make
    ~print:(fun (v, es) ->
      Printf.sprintf "vertices=%d edges=%s" v
        (String.concat ";"
           (List.map (fun e -> String.concat "," (List.map string_of_int e)) es)))
    hypergraph_gen

let prop_packing_feasible =
  QCheck.Test.make ~name:"edge packing weights are feasible" ~count:200
    hypergraph_arb
    (fun (vertices, edges) ->
      let r = Packing.edge_packing ~vertices ~edges in
      let ok = ref true in
      for v = 0 to vertices - 1 do
        let total =
          List.fold_left2
            (fun acc e w ->
              if List.mem v (List.sort_uniq Int.compare e) then acc +. w
              else acc)
            0.0 edges
            (Array.to_list r.Packing.weights)
        in
        if total > 1.0 +. 1e-6 then ok := false
      done;
      !ok && r.Packing.value >= -.1e-9)

let prop_duality =
  QCheck.Test.make ~name:"packing value = vertex cover value (duality)"
    ~count:200 hypergraph_arb
    (fun (vertices, edges) ->
      let p = Packing.edge_packing ~vertices ~edges in
      let c = Packing.vertex_cover ~vertices ~edges in
      Float.abs (p.Packing.value -. c.Packing.value) < 1e-6)

let prop_hypercube_t_vs_tau =
  QCheck.Test.make ~name:"hypercube exponent t = 1/tau*" ~count:200
    hypergraph_arb
    (fun (vertices, edges) ->
      let p = Packing.edge_packing ~vertices ~edges in
      let t, _ = Packing.hypercube_exponents ~vertices ~edges in
      p.Packing.value < 1e-9 || Float.abs (t -. (1.0 /. p.Packing.value)) < 1e-6)

let () =
  Alcotest.run "lamp_lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "textbook optimum" `Quick test_simplex_basic;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "strong duality" `Quick test_simplex_duals;
          Alcotest.test_case "rejects negative rhs" `Quick
            test_simplex_rejects_negative_rhs;
        ] );
      ( "packing",
        [
          Alcotest.test_case "triangle tau*" `Quick test_triangle_tau;
          Alcotest.test_case "triangle exponents" `Quick test_triangle_exponents;
          Alcotest.test_case "binary join tau*" `Quick test_binary_join_tau;
          Alcotest.test_case "cartesian product tau*" `Quick
            test_cartesian_product_tau;
          Alcotest.test_case "star tau*" `Quick test_star_query_tau;
          Alcotest.test_case "path tau*" `Quick test_path4_tau;
          Alcotest.test_case "triangle edge cover" `Quick test_triangle_edge_cover;
          Alcotest.test_case "cover = packing (duality)" `Quick
            test_vertex_cover_equals_packing;
          Alcotest.test_case "uncovered vertex rejected" `Quick
            test_edge_cover_uncovered_vertex;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_packing_feasible; prop_duality; prop_hypercube_t_vs_tau ] );
    ]
