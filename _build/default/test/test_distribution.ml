open Lamp_relational
open Lamp_cq
open Lamp_distribution

let instance = Alcotest.testable Instance.pp Instance.equal
let inst = Instance.of_string
let parse = Parser.query

(* ------------------------------------------------------------------ *)
(* Grid                                                                *)

let test_grid_roundtrip () =
  let g = Grid.make [| 2; 3; 4 |] in
  Alcotest.(check int) "size" 24 (Grid.size g);
  for n = 0 to 23 do
    Alcotest.(check int) "roundtrip" n (Grid.encode g (Grid.decode g n))
  done

let test_grid_matching () =
  let g = Grid.make [| 2; 3; 4 |] in
  let count partial =
    let c = ref 0 in
    Grid.matching g partial (fun _ -> incr c);
    !c
  in
  Alcotest.(check int) "all free" 24 (count [| None; None; None |]);
  Alcotest.(check int) "one pinned" 12 (count [| Some 1; None; None |]);
  Alcotest.(check int) "two pinned" 4 (count [| Some 0; Some 2; None |]);
  Alcotest.(check int) "all pinned" 1 (count [| Some 1; Some 2; Some 3 |])

let test_grid_errors () =
  Alcotest.check_raises "empty dims" (Invalid_argument "")
    (fun () ->
      try ignore (Grid.make [||]) with Invalid_argument _ -> raise (Invalid_argument ""));
  let g = Grid.make [| 2; 2 |] in
  Alcotest.check_raises "bad coord" (Invalid_argument "")
    (fun () ->
      try ignore (Grid.encode g [| 2; 0 |])
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* Example 4.1                                                         *)

let ie = inst "R(a,b). R(b,a). R(b,c). S(a,a). S(c,a)"
let qe = Examples.qe_example_4_1

(* P1: all R-facts to both nodes; S(d1,d2) to κ0 if d1 = d2 else κ1. *)
let p1 =
  let universe = Value.set_of_list [ Value.str "a"; Value.str "b"; Value.str "c" ] in
  Policy.make ~universe ~name:"P1" ~nodes:[ 0; 1 ] (fun node f ->
      match Fact.rel f with
      | "R" -> true
      | "S" ->
        let args = Fact.args f in
        if Value.equal args.(0) args.(1) then node = 0 else node = 1
      | _ -> false)

(* P2: all R-facts to κ0, all S-facts to κ1. *)
let p2 =
  Policy.make ~name:"P2" ~nodes:[ 0; 1 ] (fun node f ->
      match Fact.rel f with
      | "R" -> node = 0
      | "S" -> node = 1
      | _ -> false)

let test_example_4_1_loc_inst () =
  Alcotest.check instance "loc κ0"
    (inst "R(a,b). R(b,a). R(b,c). S(a,a)")
    (Policy.loc_inst p1 ie 0);
  Alcotest.check instance "loc κ1"
    (inst "R(a,b). R(b,a). R(b,c). S(c,a)")
    (Policy.loc_inst p1 ie 1)

let test_example_4_1_distributed_eval () =
  (* [Qe,P1](Ie) = Qe(Ie): H(a,a) from κ0 and H(a,c) from κ1. *)
  Alcotest.check instance "P1 correct here" (Eval.eval qe ie)
    (Distributed.eval qe p1 ie);
  (* P2 separates R from S entirely: nothing can be derived. *)
  Alcotest.check instance "P2 yields empty" Instance.empty
    (Distributed.eval qe p2 ie)

(* ------------------------------------------------------------------ *)
(* Hash policies                                                       *)

let test_hash_policy_partition () =
  (* Repartition join policy: every listed fact goes to exactly one
     node. *)
  let p =
    Policy.hash_by_position ~name:"repartition" ~p:4 [ ("R", 1); ("S", 0) ]
  in
  let i = inst "R(1,2). R(3,4). S(2,9). S(4,7)" in
  Instance.iter
    (fun f ->
      Alcotest.(check int) "exactly one node" 1
        (List.length (Policy.responsible_nodes p f)))
    i;
  (* R(x,y) and S(y,z) with equal join key meet at the same node. *)
  let r_nodes = Policy.responsible_nodes p (Fact.of_ints "R" [ 1; 2 ])
  and s_nodes = Policy.responsible_nodes p (Fact.of_ints "S" [ 2; 9 ]) in
  Alcotest.(check (list int)) "co-located" r_nodes s_nodes

let test_hash_policy_unlisted () =
  let drop = Policy.hash_by_position ~name:"d" ~p:2 [ ("R", 0) ] in
  let bcast =
    Policy.hash_by_position ~unlisted:Policy.Broadcast ~name:"b" ~p:2
      [ ("R", 0) ]
  in
  let t = Fact.of_ints "T" [ 1 ] in
  Alcotest.(check int) "dropped" 0 (List.length (Policy.responsible_nodes drop t));
  Alcotest.(check int) "broadcast" 2 (List.length (Policy.responsible_nodes bcast t))

let test_hash_policy_join_correct () =
  (* The repartition join computes the join correctly on this skew-free
     instance. *)
  let p =
    Policy.hash_by_position ~name:"repartition" ~p:3 [ ("R", 1); ("S", 0) ]
  in
  let i = inst "R(1,2). R(3,4). R(5,6). S(2,10). S(4,11). S(9,12)" in
  Alcotest.check instance "join" (Eval.eval Examples.q1_join i)
    (Distributed.eval Examples.q1_join p i)

(* ------------------------------------------------------------------ *)
(* HyperCube policy                                                    *)

let triangle_shares = [ ("x", 2); ("y", 2); ("z", 2) ]

let test_hypercube_size () =
  let _, grid =
    Policy.hypercube ~name:"hc" ~query:Examples.q2_triangle
      ~shares:triangle_shares ()
  in
  Alcotest.(check int) "8 nodes" 8 (Grid.size grid)

let test_hypercube_replication () =
  (* Each R(a,b) tuple pins x and y, leaving z free: replicated α_z
     times (Example 3.2). *)
  Alcotest.(check int) "R replication" 2
    (Policy.hypercube_replication ~query:Examples.q2_triangle
       ~shares:triangle_shares (Fact.of_ints "R" [ 1; 2 ]));
  Alcotest.(check int) "S replication" 2
    (Policy.hypercube_replication ~query:Examples.q2_triangle
       ~shares:triangle_shares (Fact.of_ints "S" [ 1; 2 ]))

let test_hypercube_valuations_meet () =
  (* Strong saturation on concrete data: for every valuation, the three
     required facts share a node. *)
  let policy, _ =
    Policy.hypercube ~name:"hc" ~query:Examples.q2_triangle
      ~shares:[ ("x", 2); ("y", 3); ("z", 2) ] ()
  in
  let values = List.init 4 Value.int in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              let facts =
                [
                  Fact.of_list "R" [ a; b ];
                  Fact.of_list "S" [ b; c ];
                  Fact.of_list "T" [ c; a ];
                ]
              in
              let meet =
                List.filter
                  (fun n ->
                    List.for_all (fun f -> Policy.responsible policy n f) facts)
                  (Policy.nodes policy)
              in
              Alcotest.(check bool) "valuation meets" true (meet <> []))
            values)
        values)
    values

let test_hypercube_eval_correct () =
  let rng = Random.State.make [| 42 |] in
  let r = Generate.random_relation ~rng ~rel:"R" ~arity:2 ~size:60 ~domain:10 ()
  and s = Generate.random_relation ~rng ~rel:"S" ~arity:2 ~size:60 ~domain:10 ()
  and t = Generate.random_relation ~rng ~rel:"T" ~arity:2 ~size:60 ~domain:10 () in
  let i = Instance.union r (Instance.union s t) in
  let policy, _ =
    Policy.hypercube ~name:"hc" ~query:Examples.q2_triangle
      ~shares:triangle_shares ()
  in
  Alcotest.check instance "hypercube computes the triangle query"
    (Eval.eval Examples.q2_triangle i)
    (Distributed.eval Examples.q2_triangle policy i)

let test_hypercube_self_join () =
  (* Triangle over a single relation: every E-fact must serve all three
     atom roles. *)
  let q = Examples.full_triangle_e in
  let policy, _ =
    Policy.hypercube ~name:"hc" ~query:q ~shares:triangle_shares ()
  in
  let rng = Random.State.make [| 7 |] in
  let i = Generate.random_graph ~rng ~nodes:8 ~edges:60 () in
  Alcotest.check instance "self-join triangle" (Eval.eval q i)
    (Distributed.eval q policy i)

let test_hypercube_constants () =
  let q = parse "H(x,y) <- R(x,y), S(y, 1)" in
  let policy, _ =
    Policy.hypercube ~name:"hc" ~query:q ~shares:[ ("x", 2); ("y", 2) ] ()
  in
  let i = inst "R(5,6). S(6,1). S(6,2). R(7,8). S(8,1)" in
  Alcotest.check instance "constants respected" (Eval.eval q i)
    (Distributed.eval q policy i);
  (* A fact contradicting the constant belongs nowhere. *)
  Alcotest.(check int) "S(6,2) dropped" 0
    (List.length (Policy.responsible_nodes policy (Fact.of_ints "S" [ 6; 2 ])))

let test_hypercube_rejects_bad_shares () =
  Alcotest.check_raises "missing share" (Invalid_argument "")
    (fun () ->
      try
        ignore
          (Policy.hypercube ~name:"hc" ~query:Examples.q2_triangle
             ~shares:[ ("x", 2) ] ())
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* Range partitioning (the paper's Customer example)                   *)

let test_range_policy () =
  (* Customers partitioned by a threshold on the area code (first
     column): codes < 500 on node 0, the rest on node 1. *)
  let policy =
    Policy.range ~name:"customer-ranges" ~rel:"Customer" ~pos:0
      [ Value.int 500 ]
  in
  Alcotest.(check int) "two nodes" 2 (List.length (Policy.nodes policy));
  Alcotest.(check (list int)) "low code on node 0" [ 0 ]
    (Policy.responsible_nodes policy (Fact.of_ints "Customer" [ 123; 7 ]));
  Alcotest.(check (list int)) "high code on node 1" [ 1 ]
    (Policy.responsible_nodes policy (Fact.of_ints "Customer" [ 900; 8 ]));
  Alcotest.(check int) "other relations dropped" 0
    (List.length (Policy.responsible_nodes policy (Fact.of_ints "Order" [ 1 ])))

let test_range_policy_multiple_thresholds () =
  let policy =
    Policy.range ~name:"r" ~rel:"R" ~pos:0 [ Value.int 10; Value.int 20 ]
  in
  Alcotest.(check int) "three nodes" 3 (List.length (Policy.nodes policy));
  let node v =
    match Policy.responsible_nodes policy (Fact.of_ints "R" [ v ]) with
    | [ n ] -> n
    | _ -> Alcotest.fail "expected exactly one node"
  in
  Alcotest.(check int) "below" 0 (node 5);
  Alcotest.(check int) "middle" 1 (node 15);
  Alcotest.(check int) "boundary goes up" 2 (node 20);
  Alcotest.(check int) "above" 2 (node 99)

let test_range_policy_covers_instance () =
  (* Every Customer fact lands on exactly one node: the partition is a
     primary horizontal fragmentation. *)
  let policy =
    Policy.range ~name:"r" ~rel:"Customer" ~pos:0 [ Value.int 50 ]
  in
  let i =
    Instance.of_facts (List.init 40 (fun k -> Fact.of_ints "Customer" [ k * 3; k ]))
  in
  Instance.iter
    (fun f ->
      Alcotest.(check int) "exactly one node" 1
        (List.length (Policy.responsible_nodes policy f)))
    i;
  Alcotest.(check int) "no replication" (Instance.cardinal i)
    (Distributed.total_load policy i)

(* ------------------------------------------------------------------ *)
(* Domain-guided policies                                              *)

let test_domain_guided () =
  let assignment v =
    match v with
    | Value.Int i -> Node.Set.singleton (i mod 3)
    | Value.Str _ -> Node.Set.singleton 0
  in
  let p = Policy.domain_guided ~name:"dg" ~nodes:[ 0; 1; 2 ] assignment in
  (* R(1,2) contains 1 and 2: nodes α(1) ∪ α(2) = {1, 2}. *)
  Alcotest.(check (list int)) "union of assignments" [ 1; 2 ]
    (Policy.responsible_nodes p (Fact.of_ints "R" [ 1; 2 ]));
  (* Every fact with value a is wholly present on each node of α(a). *)
  let i = inst "R(1,2). R(1,4). R(4,7). S(2,2)" in
  let node1 = Policy.loc_inst p i 1 in
  Instance.iter
    (fun f ->
      if Value.Set.mem (Value.int 1) (Fact.adom f) then
        Alcotest.(check bool) "facts of 1 on κ1" true (Instance.mem f node1))
    i

let test_broadcast_all () =
  let p = Policy.broadcast_all ~name:"bc" ~p:3 () in
  let i = inst "R(1,2). S(3,4)" in
  List.iter
    (fun n -> Alcotest.check instance "full copy" i (Policy.loc_inst p i n))
    (Policy.nodes p)

(* ------------------------------------------------------------------ *)
(* Loads                                                               *)

let test_loads () =
  let p =
    Policy.hash_by_position ~name:"h" ~p:2 [ ("R", 0) ]
  in
  let i = inst "R(0,1). R(2,3). R(4,5). R(6,7)" in
  Alcotest.(check int) "total load = m (no replication)" 4
    (Distributed.total_load p i);
  Alcotest.(check bool) "max load >= m/p" true (Distributed.max_load p i >= 2)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let graph_arb =
  QCheck.make
    ~print:(Fmt.str "%a" Instance.pp)
    QCheck.Gen.(
      let* seed = int_range 0 10_000 in
      let rng = Random.State.make [| seed |] in
      return
        (Instance.union
           (Generate.random_relation ~rng ~rel:"R" ~arity:2 ~size:20 ~domain:6 ())
           (Instance.union
              (Generate.random_relation ~rng ~rel:"S" ~arity:2 ~size:20 ~domain:6 ())
              (Generate.random_relation ~rng ~rel:"T" ~arity:2 ~size:20 ~domain:6 ()))))

let prop_distributed_subset =
  (* Soundness of one-round evaluation for monotone queries: local
     results never contain facts outside Q(I). *)
  QCheck.Test.make ~name:"[Q,P](I) ⊆ Q(I) for CQs" ~count:50 graph_arb
    (fun i ->
      let policy, _ =
        Policy.hypercube ~name:"hc" ~query:Examples.q2_triangle
          ~shares:triangle_shares ()
      in
      Instance.subset
        (Distributed.eval Examples.q2_triangle policy i)
        (Eval.eval Examples.q2_triangle i))

let prop_hypercube_correct_any_seed =
  QCheck.Test.make ~name:"hypercube correct under any hash seed" ~count:50
    (QCheck.pair graph_arb (QCheck.make QCheck.Gen.(int_range 0 1000)))
    (fun (i, seed) ->
      let policy, _ =
        Policy.hypercube ~seed ~name:"hc" ~query:Examples.q2_triangle
          ~shares:[ ("x", 2); ("y", 2); ("z", 3) ] ()
      in
      Instance.equal
        (Distributed.eval Examples.q2_triangle policy i)
        (Eval.eval Examples.q2_triangle i))

let prop_broadcast_always_correct =
  QCheck.Test.make ~name:"broadcast-all policy is parallel-correct" ~count:50
    graph_arb
    (fun i ->
      let p = Policy.broadcast_all ~name:"bc" ~p:3 () in
      Instance.equal
        (Distributed.eval Examples.qe_example_4_1 p i)
        (Eval.eval Examples.qe_example_4_1 i))

let () =
  Alcotest.run "lamp_distribution"
    [
      ( "grid",
        [
          Alcotest.test_case "roundtrip" `Quick test_grid_roundtrip;
          Alcotest.test_case "matching" `Quick test_grid_matching;
          Alcotest.test_case "errors" `Quick test_grid_errors;
        ] );
      ( "example 4.1",
        [
          Alcotest.test_case "loc-inst" `Quick test_example_4_1_loc_inst;
          Alcotest.test_case "distributed eval" `Quick
            test_example_4_1_distributed_eval;
        ] );
      ( "hash",
        [
          Alcotest.test_case "partition" `Quick test_hash_policy_partition;
          Alcotest.test_case "unlisted" `Quick test_hash_policy_unlisted;
          Alcotest.test_case "join correct" `Quick test_hash_policy_join_correct;
        ] );
      ( "hypercube",
        [
          Alcotest.test_case "grid size" `Quick test_hypercube_size;
          Alcotest.test_case "replication" `Quick test_hypercube_replication;
          Alcotest.test_case "valuations meet" `Quick test_hypercube_valuations_meet;
          Alcotest.test_case "eval correct" `Quick test_hypercube_eval_correct;
          Alcotest.test_case "self join" `Quick test_hypercube_self_join;
          Alcotest.test_case "constants" `Quick test_hypercube_constants;
          Alcotest.test_case "bad shares" `Quick test_hypercube_rejects_bad_shares;
        ] );
      ( "range",
        [
          Alcotest.test_case "customer example" `Quick test_range_policy;
          Alcotest.test_case "multiple thresholds" `Quick
            test_range_policy_multiple_thresholds;
          Alcotest.test_case "covers instance" `Quick
            test_range_policy_covers_instance;
        ] );
      ( "domain guided",
        [
          Alcotest.test_case "assignment union" `Quick test_domain_guided;
          Alcotest.test_case "broadcast all" `Quick test_broadcast_all;
        ] );
      ("loads", [ Alcotest.test_case "loads" `Quick test_loads ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_distributed_subset;
            prop_hypercube_correct_any_seed;
            prop_broadcast_always_correct;
          ] );
    ]
