open Lamp_relational
open Lamp_ra

let inst = Instance.of_string
let relation = Alcotest.testable Relation.pp Relation.equal

let r_ab rows = Relation.create ~cols:[ "a"; "b" ] (List.map Tuple.of_ints rows)

(* ------------------------------------------------------------------ *)
(* Relation operators                                                  *)

let test_select () =
  let r = r_ab [ [ 1; 1 ]; [ 1; 2 ]; [ 2; 2 ] ] in
  Alcotest.check relation "diagonal"
    (r_ab [ [ 1; 1 ]; [ 2; 2 ] ])
    (Relation.select (Relation.Eq (Relation.Col "a", Relation.Col "b")) r);
  Alcotest.check relation "constant"
    (r_ab [ [ 1; 1 ]; [ 1; 2 ] ])
    (Relation.select (Relation.Eq (Relation.Col "a", Relation.Const (Value.int 1))) r)

let test_select_boolean_preds () =
  let r = r_ab [ [ 1; 1 ]; [ 1; 2 ]; [ 2; 1 ] ] in
  let p =
    Relation.And
      ( Relation.Neq (Relation.Col "a", Relation.Col "b"),
        Relation.Not (Relation.Eq (Relation.Col "a", Relation.Const (Value.int 2))) )
  in
  Alcotest.check relation "and/not" (r_ab [ [ 1; 2 ] ]) (Relation.select p r)

let test_project () =
  let r = r_ab [ [ 1; 2 ]; [ 1; 3 ] ] in
  let p = Relation.project [ "a" ] r in
  Alcotest.(check int) "dedup" 1 (Relation.cardinal p);
  Alcotest.(check (list string)) "cols" [ "a" ] (Relation.cols p)

let test_rename () =
  let r = r_ab [ [ 1; 2 ] ] in
  let r' = Relation.rename [ ("b", "c") ] r in
  Alcotest.(check (list string)) "renamed" [ "a"; "c" ] (Relation.cols r');
  Alcotest.check_raises "clash" (Invalid_argument "")
    (fun () ->
      try ignore (Relation.rename [ ("b", "a") ] r)
      with Invalid_argument _ -> raise (Invalid_argument ""))

let test_union_column_order () =
  let r1 = r_ab [ [ 1; 2 ] ] in
  let r2 =
    Relation.create ~cols:[ "b"; "a" ] [ Tuple.of_ints [ 9; 8 ] ]
  in
  (* Union reorders r2 into (a,b) order: (8,9). *)
  Alcotest.check relation "reordered union"
    (r_ab [ [ 1; 2 ]; [ 8; 9 ] ])
    (Relation.union r1 r2)

let test_join () =
  let r = Relation.create ~cols:[ "a"; "b" ] [ Tuple.of_ints [ 1; 2 ]; Tuple.of_ints [ 5; 6 ] ] in
  let s = Relation.create ~cols:[ "b"; "c" ] [ Tuple.of_ints [ 2; 3 ]; Tuple.of_ints [ 2; 4 ] ] in
  let j = Relation.join r s in
  Alcotest.(check (list string)) "cols" [ "a"; "b"; "c" ] (Relation.cols j);
  Alcotest.(check int) "two results" 2 (Relation.cardinal j)

let test_semijoin_antijoin () =
  let r = Relation.create ~cols:[ "a"; "b" ] [ Tuple.of_ints [ 1; 2 ]; Tuple.of_ints [ 5; 6 ] ] in
  let s = Relation.create ~cols:[ "b"; "c" ] [ Tuple.of_ints [ 2; 3 ] ] in
  Alcotest.check relation "semijoin" (r_ab [ [ 1; 2 ] ]) (Relation.semijoin r s);
  Alcotest.check relation "antijoin" (r_ab [ [ 5; 6 ] ]) (Relation.antijoin r s)

let test_product () =
  let r = Relation.create ~cols:[ "a" ] [ Tuple.of_ints [ 1 ]; Tuple.of_ints [ 2 ] ] in
  let s = Relation.create ~cols:[ "b" ] [ Tuple.of_ints [ 3 ] ] in
  Alcotest.(check int) "2x1" 2 (Relation.cardinal (Relation.product r s));
  Alcotest.check_raises "shared col" (Invalid_argument "")
    (fun () ->
      try ignore (Relation.product r r)
      with Invalid_argument _ -> raise (Invalid_argument ""))

let test_instance_roundtrip () =
  let i = inst "R(1,2). R(3,4)" in
  let r = Relation.of_instance i ~rel:"R" ~cols:[ "a"; "b" ] in
  Alcotest.(check bool) "roundtrip" true
    (Instance.equal i (Relation.to_instance r ~rel:"R"))

(* ------------------------------------------------------------------ *)
(* Algebra expressions                                                 *)

let base_r = Algebra.Base ("R", [ "a"; "b" ])
let base_s = Algebra.Base ("S", [ "b"; "c" ])

let test_eval_join_expr () =
  let i = inst "R(1,2). R(5,6). S(2,3). S(2,4)" in
  let j = Algebra.eval i (Algebra.Join (base_r, base_s)) in
  Alcotest.(check int) "join size" 2 (Relation.cardinal j)

let test_signature () =
  Alcotest.(check (list string)) "join signature" [ "a"; "b"; "c" ]
    (Algebra.signature (Algebra.Join (base_r, base_s)));
  Alcotest.(check (list string)) "project signature" [ "c" ]
    (Algebra.signature (Algebra.Project ([ "c" ], Algebra.Join (base_r, base_s))))

let test_semijoin_fragment () =
  Alcotest.(check bool) "semijoin algebra" true
    (Algebra.in_semijoin_algebra
       (Algebra.Antijoin (Algebra.Semijoin (base_r, base_s), base_s)));
  Alcotest.(check bool) "join escapes fragment" false
    (Algebra.in_semijoin_algebra (Algebra.Join (base_r, base_s)))

(* Semi-join algebra identities (classical): R ⋉ S = π_R(R ⋈ S) and
   R ▷ S = R − (R ⋉ S). *)
let test_semijoin_identities () =
  let i = inst "R(1,2). R(5,6). R(7,2). S(2,3). S(9,9)" in
  let semi = Algebra.eval i (Algebra.Semijoin (base_r, base_s)) in
  let via_join =
    Algebra.eval i (Algebra.Project ([ "a"; "b" ], Algebra.Join (base_r, base_s)))
  in
  Alcotest.check relation "semijoin = project join" via_join semi;
  let anti = Algebra.eval i (Algebra.Antijoin (base_r, base_s)) in
  let via_diff =
    Algebra.eval i (Algebra.Diff (base_r, Algebra.Semijoin (base_r, base_s)))
  in
  Alcotest.check relation "antijoin = diff semijoin" via_diff anti

(* ------------------------------------------------------------------ *)
(* MapReduce translation                                               *)

let exprs_under_test =
  [
    ("base", base_r);
    ("select", Algebra.Select (Relation.Eq (Relation.Col "a", Relation.Col "b"), base_r));
    ("project", Algebra.Project ([ "b" ], base_r));
    ("rename-join",
     Algebra.Join (base_r, Algebra.Rename ([ ("a", "b"); ("b", "c") ], base_r)));
    ("join", Algebra.Join (base_r, base_s));
    ("semijoin", Algebra.Semijoin (base_r, base_s));
    ("antijoin", Algebra.Antijoin (base_r, base_s));
    ("union",
     Algebra.Union (base_r, Algebra.Rename ([ ("b", "a"); ("c", "b") ], base_s)));
    ("diff",
     Algebra.Diff (base_r, Algebra.Rename ([ ("b", "a"); ("c", "b") ], base_s)));
    ("product",
     Algebra.Product (Algebra.Project ([ "a" ], base_r), Algebra.Project ([ "c" ], base_s)));
    ("nested",
     Algebra.Project
       ( [ "a" ],
         Algebra.Antijoin
           ( Algebra.Join (base_r, base_s),
             Algebra.Select
               (Relation.Eq (Relation.Col "c", Relation.Const (Value.int 3)), base_s) ) ));
  ]

let mk_instance seed =
  let rng = Random.State.make [| seed |] in
  Instance.union
    (Generate.random_relation ~rng ~rel:"R" ~arity:2 ~size:25 ~domain:6 ())
    (Generate.random_relation ~rng ~rel:"S" ~arity:2 ~size:25 ~domain:6 ())

let test_mr_matches_direct () =
  let i = mk_instance 42 in
  List.iter
    (fun (name, e) ->
      let direct = Algebra.eval i e in
      let via_mr = To_mapreduce.run i e in
      Alcotest.check relation (name ^ " sequential MR") direct via_mr;
      let via_mpc = To_mapreduce.run ~p:4 i e in
      Alcotest.check relation (name ^ " MPC MR") direct via_mpc)
    exprs_under_test

let test_job_counts () =
  (* One job per operator node (leaves included). *)
  Alcotest.(check int) "base" 1 (To_mapreduce.job_count base_r);
  Alcotest.(check int) "join" 3
    (To_mapreduce.job_count (Algebra.Join (base_r, base_s)));
  (* Project + Antijoin + Join + three leaf copies. *)
  Alcotest.(check int) "nested" 6
    (To_mapreduce.job_count
       (Algebra.Project
          ([ "a" ], Algebra.Antijoin (Algebra.Join (base_r, base_s), base_s))))

let test_self_join_distinct_roles () =
  (* E ⋈ (E renamed): the two leaf copies must not be conflated. *)
  let e1 = Algebra.Base ("E", [ "x"; "y" ]) in
  let e2 = Algebra.Rename ([ ("x", "y"); ("y", "z") ], Algebra.Base ("E", [ "x"; "y" ])) in
  let expr = Algebra.Join (e1, e2) in
  let i = inst "E(1,2). E(2,3). E(3,4)" in
  Alcotest.check relation "two-hop paths" (Algebra.eval i expr)
    (To_mapreduce.run i expr)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let instance_arb =
  QCheck.make
    ~print:(Fmt.str "%a" Instance.pp)
    QCheck.Gen.(map mk_instance (int_range 0 100_000))

let expr_arb =
  QCheck.make
    ~print:(fun (n, _) -> n)
    QCheck.Gen.(oneofl exprs_under_test)

let prop_mr_equals_direct =
  QCheck.Test.make ~name:"MapReduce translation = direct evaluation" ~count:60
    (QCheck.pair instance_arb expr_arb)
    (fun (i, (_, e)) -> Relation.equal (Algebra.eval i e) (To_mapreduce.run i e))

let prop_mpc_equals_direct =
  QCheck.Test.make ~name:"MR-on-MPC = direct evaluation" ~count:30
    (QCheck.triple instance_arb expr_arb (QCheck.make QCheck.Gen.(int_range 1 8)))
    (fun (i, (_, e), p) ->
      Relation.equal (Algebra.eval i e) (To_mapreduce.run ~p i e))

let prop_select_distributes_union =
  QCheck.Test.make ~name:"σ(R ∪ R') = σR ∪ σR'" ~count:60 instance_arb
    (fun i ->
      let r' = Algebra.Rename ([ ("b", "a"); ("c", "b") ], base_s) in
      let p = Relation.Eq (Relation.Col "a", Relation.Col "b") in
      Relation.equal
        (Algebra.eval i (Algebra.Select (p, Algebra.Union (base_r, r'))))
        (Algebra.eval i
           (Algebra.Union (Algebra.Select (p, base_r), Algebra.Select (p, r')))))

let prop_join_commutes =
  QCheck.Test.make ~name:"R ⋈ S = S ⋈ R (up to column order)" ~count:60
    instance_arb
    (fun i ->
      Relation.equal
        (Algebra.eval i (Algebra.Join (base_r, base_s)))
        (Algebra.eval i (Algebra.Join (base_s, base_r))))

let () =
  Alcotest.run "lamp_ra"
    [
      ( "relation",
        [
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "boolean predicates" `Quick test_select_boolean_preds;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "union order" `Quick test_union_column_order;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "semi/anti join" `Quick test_semijoin_antijoin;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "instance roundtrip" `Quick test_instance_roundtrip;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "join expr" `Quick test_eval_join_expr;
          Alcotest.test_case "signature" `Quick test_signature;
          Alcotest.test_case "semijoin fragment" `Quick test_semijoin_fragment;
          Alcotest.test_case "semijoin identities" `Quick test_semijoin_identities;
        ] );
      ( "mapreduce",
        [
          Alcotest.test_case "matches direct" `Quick test_mr_matches_direct;
          Alcotest.test_case "job counts" `Quick test_job_counts;
          Alcotest.test_case "self join" `Quick test_self_join_distinct_roles;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mr_equals_direct;
            prop_mpc_equals_direct;
            prop_select_distributes_union;
            prop_join_commutes;
          ] );
    ]
