open Lamp_relational
open Lamp_cq
open Lamp_mpc
open Lamp_mapreduce

let instance = Alcotest.testable Instance.pp Instance.equal
let inst = Instance.of_string
let rng () = Random.State.make [| 99 |]

let test_encode_decode () =
  let pair = ([ Value.int 3; Value.str "k" ], Fact.of_ints "R" [ 1; 2 ]) in
  let k, v = Job.decode_pair (Job.encode_pair pair) in
  Alcotest.(check bool) "key" true (List.equal Value.equal (fst pair) k);
  Alcotest.(check bool) "value" true (Fact.equal (snd pair) v)

let test_encode_decode_nullary () =
  let pair = ([], Fact.of_list "H" []) in
  let k, v = Job.decode_pair (Job.encode_pair pair) in
  Alcotest.(check int) "empty key" 0 (List.length k);
  Alcotest.(check int) "nullary fact" 0 (Fact.arity v)

let test_join_job () =
  let i = inst "R(1,2). R(3,4). S(2,5). S(4,6). S(9,9)" in
  Alcotest.check instance "join via MR"
    (Eval.eval Examples.q1_join i)
    (Job.run_job Jobs.repartition_join i)

let test_triangle_program () =
  let i = Workload.triangle_skew_free ~rng:(rng ()) ~m:60 ~domain:12 in
  let expected =
    Workload.rename_relation ~from_rel:"K" ~to_rel:"H"
      (Eval.eval Examples.q2_triangle i)
  in
  Alcotest.check instance "triangle via MR program" expected
    (Job.run Jobs.triangle_program i)

let test_degree_count () =
  let i = inst "R(1,7). R(2,7). R(3,8)" in
  let result = Job.run_job (Jobs.degree_count ~rel:"R" ~pos:1) i in
  Alcotest.check instance "degrees" (inst "Degree(7,2). Degree(8,1)") result

let test_mpc_translation_matches () =
  let i = Workload.triangle_skew_free ~rng:(rng ()) ~m:50 ~domain:10 in
  let sequential = Job.run Jobs.triangle_program i in
  let distributed, stats = Job.run_mpc ~p:5 Jobs.triangle_program i in
  Alcotest.check instance "MPC = sequential" sequential distributed;
  Alcotest.(check int) "one round per job" 2 (Stats.rounds stats)

let test_mpc_join_loads () =
  let i = Workload.join_skew_free ~m:200 in
  let _, stats = Job.run_mpc ~p:8 [ Jobs.repartition_join ] i in
  (* No replication: the shuffle ships each fact once. *)
  Alcotest.(check int) "total = m" (Instance.cardinal i)
    (Stats.total_communication stats)

(* ------------------------------------------------------------------ *)
(* Recursive Datalog in MapReduce ([5, 10])                            *)

let path_graph n =
  Instance.of_facts (List.init n (fun i -> Fact.of_ints "E" [ i; i + 1 ]))

let test_tc_linear () =
  let g = path_graph 8 in
  let closure, jobs = Recursive.transitive_closure ~strategy:Recursive.Linear ~edges:"E" g in
  (* Path of length 8: 8·9/2 = 36 closure pairs; linear needs ~diameter
     jobs. *)
  Alcotest.(check int) "closure size" 36 (Instance.cardinal closure);
  Alcotest.(check bool) "about diameter many jobs" true (jobs >= 8)

let test_tc_doubling () =
  let g = path_graph 8 in
  let closure, jobs =
    Recursive.transitive_closure ~strategy:Recursive.Doubling ~edges:"E" g
  in
  Alcotest.(check int) "closure size" 36 (Instance.cardinal closure);
  (* Doubling converges in ~log2(8) + verification = far fewer jobs. *)
  Alcotest.(check bool)
    (Printf.sprintf "log-many jobs (%d)" jobs)
    true (jobs <= 6)

let test_tc_matches_datalog_cycle () =
  let g = Instance.of_string "E(0,1). E(1,2). E(2,0). E(5,6)" in
  let closure, _ = Recursive.transitive_closure ~edges:"E" g in
  Alcotest.(check int) "cycle closure" 10 (Instance.cardinal closure);
  Alcotest.(check bool) "0 reaches itself" true
    (Instance.mem (Fact.of_ints "TC" [ 0; 0 ]) closure)

let prop_tc_strategies_agree =
  QCheck.Test.make ~name:"linear TC = doubling TC" ~count:40
    (QCheck.make
       ~print:(Fmt.str "%a" Instance.pp)
       QCheck.Gen.(
         let* seed = int_range 0 100_000 in
         let rng = Random.State.make [| seed |] in
         let* edges = int_range 0 12 in
         return (Generate.random_graph ~rng ~rel:"E" ~nodes:6 ~edges ())))
    (fun g ->
      let c1, _ = Recursive.transitive_closure ~strategy:Recursive.Linear ~edges:"E" g in
      let c2, _ = Recursive.transitive_closure ~strategy:Recursive.Doubling ~edges:"E" g in
      Instance.equal c1 c2)

let prop_mpc_equals_sequential =
  QCheck.Test.make ~name:"MPC translation = sequential semantics" ~count:40
    (QCheck.pair
       (QCheck.make
          QCheck.Gen.(
            let* seed = int_range 0 100_000 in
            let rng = Random.State.make [| seed |] in
            return (Workload.triangle_skew_free ~rng ~m:30 ~domain:8)))
       (QCheck.make QCheck.Gen.(int_range 1 12)))
    (fun (i, p) ->
      let sequential = Job.run Jobs.triangle_program i in
      let distributed, _ = Job.run_mpc ~p Jobs.triangle_program i in
      Instance.equal sequential distributed)

let prop_degree_job_matches_skew_module =
  QCheck.Test.make ~name:"degree job agrees with Skew.degrees" ~count:40
    (QCheck.make
       QCheck.Gen.(
         let* seed = int_range 0 100_000 in
         let rng = Random.State.make [| seed |] in
         return (Generate.random_relation ~rng ~rel:"R" ~arity:2 ~size:30 ~domain:6 ())))
    (fun i ->
      let via_job = Job.run_job (Jobs.degree_count ~rel:"R" ~pos:0) i in
      let via_skew = Skew.degrees i ~rel:"R" ~pos:0 in
      Value.Map.for_all
        (fun v d -> Instance.mem (Fact.of_list "Degree" [ v; Value.int d ]) via_job)
        via_skew
      && Instance.cardinal via_job = Value.Map.cardinal via_skew)

let () =
  Alcotest.run "lamp_mapreduce"
    [
      ( "encoding",
        [
          Alcotest.test_case "roundtrip" `Quick test_encode_decode;
          Alcotest.test_case "nullary" `Quick test_encode_decode_nullary;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "join" `Quick test_join_job;
          Alcotest.test_case "triangle program" `Quick test_triangle_program;
          Alcotest.test_case "degree count" `Quick test_degree_count;
        ] );
      ( "recursive",
        [
          Alcotest.test_case "linear TC" `Quick test_tc_linear;
          Alcotest.test_case "doubling TC" `Quick test_tc_doubling;
          Alcotest.test_case "cycle" `Quick test_tc_matches_datalog_cycle;
        ] );
      ( "mpc translation",
        [
          Alcotest.test_case "matches sequential" `Quick test_mpc_translation_matches;
          Alcotest.test_case "join loads" `Quick test_mpc_join_loads;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mpc_equals_sequential;
            prop_degree_job_matches_skew_module;
            prop_tc_strategies_agree;
          ] );
    ]
