open Lamp_relational
open Lamp_datalog

let instance = Alcotest.testable Instance.pp Instance.equal
let inst = Instance.of_string

(* Renames every fact of an instance to the given relation. *)
let rename_all to_rel i =
  Instance.fold
    (fun f acc -> Instance.add (Fact.make to_rel (Fact.args f)) acc)
    i Instance.empty

(* ------------------------------------------------------------------ *)
(* Program structure                                                   *)

let test_parse_program () =
  let p = Canned.complement_tc in
  Alcotest.(check (list string)) "idb" [ "OUT"; "TC" ] (Program.idb p);
  Alcotest.(check (list string)) "edb" [ "ADom"; "E" ] (Program.edb p);
  Alcotest.(check bool) "uses adom" true (Program.uses_adom p);
  Alcotest.(check bool) "has negation" true (Program.has_negation p)

let test_semi_positive () =
  Alcotest.(check bool) "non_edges semi-positive" true
    (Program.is_semi_positive Canned.non_edges);
  Alcotest.(check bool) "complement_tc negates IDB" false
    (Program.is_semi_positive Canned.complement_tc);
  Alcotest.(check bool) "TC positive" true (Program.is_positive Canned.transitive_closure)

let test_parse_comments () =
  let p = Program.parse "# transitive closure\nTC(x,y) <- E(x,y)\n\nTC(x,y) <- TC(x,z), E(z,y)" in
  Alcotest.(check int) "two rules" 2 (List.length (Program.rules p))

(* ------------------------------------------------------------------ *)
(* Stratification                                                      *)

let test_strata () =
  let s = Stratify.strata Canned.complement_tc in
  Alcotest.(check (option int)) "TC stratum 0" (Some 0)
    (Stratify.Smap.find_opt "TC" s);
  Alcotest.(check (option int)) "OUT stratum 1" (Some 1)
    (Stratify.Smap.find_opt "OUT" s)

let test_not_stratifiable () =
  Alcotest.(check bool) "win-move not stratifiable" false
    (Stratify.is_stratifiable Canned.win_move);
  Alcotest.(check bool) "TC stratifiable" true
    (Stratify.is_stratifiable Canned.transitive_closure)

let test_layers () =
  let layers = Stratify.layers Canned.complement_tc in
  Alcotest.(check int) "two layers" 2 (List.length layers)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

let path_graph n =
  Instance.of_facts (List.init n (fun i -> Fact.of_ints "E" [ i; i + 1 ]))

let test_tc_path () =
  let i = path_graph 4 in
  let tc = Eval.query Canned.transitive_closure ~output:"TC" i in
  (* Pairs (i,j) with i < j <= 4: 10 of them. *)
  Alcotest.(check int) "closure size" 10 (Instance.cardinal tc);
  Alcotest.(check bool) "0 reaches 4" true
    (Instance.mem (Fact.of_ints "TC" [ 0; 4 ]) tc)

let test_tc_cycle () =
  let i = inst "E(0,1). E(1,2). E(2,0)" in
  let tc = Eval.query Canned.transitive_closure ~output:"TC" i in
  Alcotest.(check int) "full closure" 9 (Instance.cardinal tc)

let test_complement_tc () =
  let i = inst "E(a,b). E(c,c)" in
  let out = Eval.query Canned.complement_tc ~output:"OUT" i in
  (* Not reachable: everything except a->b and c->c. 9 pairs - 2. *)
  Alcotest.(check int) "complement size" 7 (Instance.cardinal out);
  Alcotest.(check bool) "b cannot reach a" true
    (Instance.mem (Fact.of_string "OUT(b,a)") out);
  Alcotest.(check bool) "a reaches b" false
    (Instance.mem (Fact.of_string "OUT(a,b)") out)

let test_no_triangle () =
  let no_tri = inst "E(a,b). E(b,a)" in
  Alcotest.check instance "returns E" (rename_all "OUT" no_tri)
    (Eval.query Canned.no_triangle ~output:"OUT" no_tri);
  let with_tri = inst "E(a,b). E(b,c). E(c,a)" in
  Alcotest.check instance "empty when a triangle exists" Instance.empty
    (Eval.query Canned.no_triangle ~output:"OUT" with_tri)

let test_same_generation () =
  let i = inst "Up(a,u). Up(b,u). Flat(u,u). Down(u,x). Down(u,y)" in
  let sg = Eval.query Canned.same_generation ~output:"SG" i in
  (* One Flat fact plus the four {a,b} × {x,y} combinations. *)
  Alcotest.check instance "same generation"
    (inst "SG(u,u). SG(a,x). SG(a,y). SG(b,x). SG(b,y)")
    sg

let test_semi_positive_eval () =
  let i = inst "E(a,b)" in
  let out = Eval.query Canned.non_edges ~output:"OUT" i in
  Alcotest.check instance "complement of E"
    (inst "OUT(a,a). OUT(b,a). OUT(b,b)")
    out

let test_naive_equals_seminaive_canned () =
  let i = path_graph 6 in
  List.iter
    (fun p ->
      Alcotest.check instance "strategies agree"
        (Eval.run ~strategy:Eval.Naive p i)
        (Eval.run ~strategy:Eval.Seminaive p i))
    [ Canned.transitive_closure; Canned.complement_tc ]

(* ------------------------------------------------------------------ *)
(* Well-founded semantics                                              *)

let test_win_move_chain () =
  (* a -> b -> c: c lost (no moves), b wins (move to the lost c), a lost
     (its only move reaches the winning b). *)
  let i = inst "Move(a,b). Move(b,c)" in
  let true_facts, undefined = Wellfounded.query Canned.win_move ~output:"Win" i in
  Alcotest.check instance "wins" (inst "Win(b)") true_facts;
  Alcotest.check instance "no undefined" Instance.empty undefined

let test_win_move_cycle () =
  (* a -> b -> a: both positions drawn (undefined). *)
  let i = inst "Move(a,b). Move(b,a)" in
  let true_facts, undefined = Wellfounded.query Canned.win_move ~output:"Win" i in
  Alcotest.check instance "no definite win" Instance.empty true_facts;
  Alcotest.check instance "both drawn" (inst "Win(a). Win(b)") undefined

let test_win_move_mixed () =
  (* Cycle a<->b plus an escape b -> c (c lost): b can win by moving to
     c; a's only move goes to the winning b, so a is lost. *)
  let i = inst "Move(a,b). Move(b,a). Move(b,c)" in
  let true_facts, undefined = Wellfounded.query Canned.win_move ~output:"Win" i in
  Alcotest.check instance "b wins" (inst "Win(b)") true_facts;
  Alcotest.check instance "nothing drawn" Instance.empty undefined

let test_wellfounded_agrees_on_stratified () =
  (* On stratified programs the well-founded model is total and agrees
     with the stratified evaluation. *)
  let i = inst "E(a,b). E(b,c)" in
  let wf_true, wf_undef =
    Wellfounded.query Canned.complement_tc ~output:"OUT" i
  in
  Alcotest.check instance "wf = stratified"
    (Eval.query Canned.complement_tc ~output:"OUT" i)
    wf_true;
  Alcotest.check instance "total" Instance.empty wf_undef

(* ------------------------------------------------------------------ *)
(* Connectivity                                                        *)

let test_connectivity () =
  Alcotest.(check bool) "complement_tc semi-connected" true
    (Connectivity.is_semi_connected Canned.complement_tc);
  Alcotest.(check bool) "no_triangle not semi-connected" false
    (Connectivity.is_semi_connected Canned.no_triangle);
  Alcotest.(check bool) "win_move connected" true
    (Connectivity.program_connected Canned.win_move);
  Alcotest.(check int) "one disconnected rule" 1
    (List.length (Connectivity.disconnected_rules Canned.no_triangle))

let test_rule_connected () =
  Alcotest.(check bool) "triangle rule" true
    (Connectivity.rule_connected Lamp_cq.Examples.q2_triangle);
  Alcotest.(check bool) "cartesian rule" false
    (Connectivity.rule_connected (Lamp_cq.Parser.query "H(x,y) <- R(x), S(y)"))

(* ------------------------------------------------------------------ *)
(* Monotonicity classes (Examples 5.6, 5.10)                           *)

let open_triangle_q = Classify.of_cq ~name:"open triangle" Lamp_cq.Examples.open_triangle
let comp_tc_q = Classify.of_program ~name:"¬TC" ~output:"OUT" Canned.complement_tc
let no_tri_q = Classify.of_program ~name:"QNT" ~output:"OUT" Canned.no_triangle
let triangle_q = Classify.of_cq ~name:"triangles" Lamp_cq.Examples.triangles_distinct

let test_open_triangle_not_monotone () =
  let i = inst "E(1,2). E(2,3)" and j = inst "E(3,1)" in
  match Classify.check_pair open_triangle_q (i, j) with
  | Error r -> Alcotest.(check int) "loses the open triangle" 1 (Instance.cardinal r.Classify.lost)
  | Ok () -> Alcotest.fail "expected refutation"

let test_open_triangle_distinct_monotone_example () =
  (* Example 5.6: extensions that are domain distinct cannot close an
     open triangle. *)
  let i = inst "E(1,2). E(2,3)" in
  let j = inst "E(3,4). E(4,1)" in
  Alcotest.(check bool) "domain distinct" true (Adom.domain_distinct_from j i);
  match Classify.check_pair open_triangle_q (i, j) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "distinct extension must preserve output"

let test_comp_tc_not_distinct_monotone () =
  (* Example 5.6: ¬TC is not domain-distinct-monotone. *)
  let i = inst "E(a,a). E(b,b)" in
  let j = inst "E(a,c). E(c,b)" in
  Alcotest.(check bool) "distinct" true (Adom.domain_distinct_from j i);
  (match Classify.check_pair comp_tc_q (i, j) with
  | Error r ->
    Alcotest.(check bool) "loses OUT(a,b)" true
      (Instance.mem (Fact.of_string "OUT(a,b)") r.Classify.lost)
  | Ok () -> Alcotest.fail "expected refutation")

let test_comp_tc_disjoint_monotone_example () =
  (* Example 5.10: domain-disjoint extensions preserve ¬TC. *)
  let i = inst "E(a,a). E(b,b)" in
  let j = inst "E(c,d). E(d,c)" in
  Alcotest.(check bool) "disjoint" true (Adom.domain_disjoint_from j i);
  match Classify.check_pair comp_tc_q (i, j) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "disjoint extension must preserve ¬TC"

let test_qnt_not_disjoint_monotone () =
  (* Example 5.10: QNT loses everything when a disjoint triangle
     appears. *)
  let i = inst "E(a,a). E(b,b)" in
  let j = inst "E(c,d). E(d,e). E(e,c)" in
  Alcotest.(check bool) "disjoint" true (Adom.domain_disjoint_from j i);
  match Classify.check_pair no_tri_q (i, j) with
  | Error r -> Alcotest.(check int) "loses both edges" 2 (Instance.cardinal r.Classify.lost)
  | Ok () -> Alcotest.fail "expected refutation"

let test_class_names () =
  let rng = Random.State.make [| 5 |] in
  let schema = Schema.of_list [ ("E", 2) ] in
  let pairs =
    Classify.random_pairs ~rng ~schema ~count:60 ~size:6 ~domain:4
    @ [
        (inst "E(1,2). E(2,3)", inst "E(3,1)");
        (inst "E(a,a). E(b,b)", inst "E(a,c). E(c,b)");
        (inst "E(a,a). E(b,b)", inst "E(c,d). E(d,e). E(e,c)");
      ]
  in
  Alcotest.(check string) "triangles in M" "M"
    (Classify.class_name (Classify.classify triangle_q ~pairs));
  Alcotest.(check string) "open triangle in Mdistinct \\ M" "Mdistinct \\ M"
    (Classify.class_name (Classify.classify open_triangle_q ~pairs));
  Alcotest.(check string) "¬TC in Mdisjoint \\ Mdistinct" "Mdisjoint \\ Mdistinct"
    (Classify.class_name (Classify.classify comp_tc_q ~pairs));
  Alcotest.(check string) "QNT outside Mdisjoint" "not Mdisjoint"
    (Classify.class_name (Classify.classify no_tri_q ~pairs))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let graph_arb =
  QCheck.make
    ~print:(Fmt.str "%a" Instance.pp)
    QCheck.Gen.(
      let* seed = int_range 0 100_000 in
      let rng = Random.State.make [| seed |] in
      let* edges = int_range 0 15 in
      return (Generate.random_graph ~rng ~nodes:6 ~edges ()))

let prop_naive_equals_seminaive =
  QCheck.Test.make ~name:"naive = semi-naive" ~count:60 graph_arb
    (fun g ->
      List.for_all
        (fun p ->
          Instance.equal
            (Eval.run ~strategy:Eval.Naive p g)
            (Eval.run ~strategy:Eval.Seminaive p g))
        [ Canned.transitive_closure; Canned.complement_tc ])

let prop_tc_is_transitive =
  QCheck.Test.make ~name:"TC is transitively closed" ~count:60 graph_arb
    (fun g ->
      let tc = Eval.query Canned.transitive_closure ~output:"TC" g in
      Instance.fold
        (fun f1 acc ->
          acc
          && Instance.fold
               (fun f2 acc ->
                 acc
                 &&
                 let a1 = Fact.args f1 and a2 = Fact.args f2 in
                 (not (Value.equal a1.(1) a2.(0)))
                 || Instance.mem (Fact.of_list "TC" [ a1.(0); a2.(1) ]) tc)
               tc true)
        tc true)

let prop_datalog_monotone =
  QCheck.Test.make ~name:"positive Datalog is monotone" ~count:60
    (QCheck.pair graph_arb graph_arb)
    (fun (g1, g2) ->
      let q = Classify.of_program ~name:"tc" ~output:"TC" Canned.transitive_closure in
      Result.is_ok (Classify.check_pair q (g1, g2)))

let prop_wellfounded_three_valued =
  QCheck.Test.make ~name:"win-move partitions positions" ~count:60
    (QCheck.make
       ~print:(Fmt.str "%a" Instance.pp)
       QCheck.Gen.(
         let* seed = int_range 0 100_000 in
         let rng = Random.State.make [| seed |] in
         let* edges = int_range 0 12 in
         return
           (rename_all "Move" (Generate.random_graph ~rng ~nodes:5 ~edges ()))))
    (fun g ->
      let true_facts, undefined = Wellfounded.query Canned.win_move ~output:"Win" g in
      (* True and undefined are disjoint, and a position with no moves
         is never winning. *)
      Instance.is_empty (Instance.inter true_facts undefined)
      &&
      let sources =
        Instance.fold
          (fun f acc -> Value.Set.add (Fact.args f).(0) acc)
          g Value.Set.empty
      in
      Instance.fold
        (fun f acc ->
          acc && Value.Set.mem (Fact.args f).(0) sources)
        true_facts true)

let () =
  Alcotest.run "lamp_datalog"
    [
      ( "program",
        [
          Alcotest.test_case "parse" `Quick test_parse_program;
          Alcotest.test_case "semi-positive" `Quick test_semi_positive;
          Alcotest.test_case "comments" `Quick test_parse_comments;
        ] );
      ( "stratify",
        [
          Alcotest.test_case "strata" `Quick test_strata;
          Alcotest.test_case "not stratifiable" `Quick test_not_stratifiable;
          Alcotest.test_case "layers" `Quick test_layers;
        ] );
      ( "eval",
        [
          Alcotest.test_case "tc path" `Quick test_tc_path;
          Alcotest.test_case "tc cycle" `Quick test_tc_cycle;
          Alcotest.test_case "complement tc" `Quick test_complement_tc;
          Alcotest.test_case "no triangle" `Quick test_no_triangle;
          Alcotest.test_case "same generation" `Quick test_same_generation;
          Alcotest.test_case "semi-positive" `Quick test_semi_positive_eval;
          Alcotest.test_case "strategies agree" `Quick test_naive_equals_seminaive_canned;
        ] );
      ( "well-founded",
        [
          Alcotest.test_case "chain" `Quick test_win_move_chain;
          Alcotest.test_case "cycle" `Quick test_win_move_cycle;
          Alcotest.test_case "mixed" `Quick test_win_move_mixed;
          Alcotest.test_case "stratified agreement" `Quick
            test_wellfounded_agrees_on_stratified;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "programs" `Quick test_connectivity;
          Alcotest.test_case "rules" `Quick test_rule_connected;
        ] );
      ( "classes",
        [
          Alcotest.test_case "open triangle not monotone" `Quick
            test_open_triangle_not_monotone;
          Alcotest.test_case "open triangle distinct-monotone" `Quick
            test_open_triangle_distinct_monotone_example;
          Alcotest.test_case "¬TC not distinct-monotone" `Quick
            test_comp_tc_not_distinct_monotone;
          Alcotest.test_case "¬TC disjoint-monotone" `Quick
            test_comp_tc_disjoint_monotone_example;
          Alcotest.test_case "QNT not disjoint-monotone" `Quick
            test_qnt_not_disjoint_monotone;
          Alcotest.test_case "class names" `Quick test_class_names;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_naive_equals_seminaive;
            prop_tc_is_transitive;
            prop_datalog_monotone;
            prop_wellfounded_three_valued;
          ] );
    ]
