open Lamp_relational

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type token =
  | Ident of string
  | Int_lit of int
  | Quoted of string
  | Lparen
  | Rparen
  | Comma
  | Arrow
  | Bang
  | Neq
  | Eof

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' | '.' -> go (i + 1)
      | '(' ->
        push Lparen;
        go (i + 1)
      | ')' ->
        push Rparen;
        go (i + 1)
      | ',' ->
        push Comma;
        go (i + 1)
      | '<' when i + 1 < n && s.[i + 1] = '-' ->
        push Arrow;
        go (i + 2)
      | ':' when i + 1 < n && s.[i + 1] = '-' ->
        push Arrow;
        go (i + 2)
      | '!' when i + 1 < n && s.[i + 1] = '=' ->
        push Neq;
        go (i + 2)
      | '!' ->
        push Bang;
        go (i + 1)
      | '\'' ->
        let close =
          match String.index_from_opt s (i + 1) '\'' with
          | Some j -> j
          | None -> fail "unterminated quote at offset %d" i
        in
        push (Quoted (String.sub s (i + 1) (close - i - 1)));
        go (close + 1)
      | '-' | '0' .. '9' ->
        let j = ref (i + 1) in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        let lit = String.sub s i (!j - i) in
        (match int_of_string_opt lit with
        | Some v -> push (Int_lit v)
        | None -> fail "malformed number %S" lit);
        go !j
      | c when is_ident_char c ->
        let j = ref (i + 1) in
        while !j < n && is_ident_char s.[!j] do
          incr j
        done;
        push (Ident (String.sub s i (!j - i)));
        go !j
      | c -> fail "unexpected character %C at offset %d" c i
  in
  go 0;
  List.rev (Eof :: !toks)

(* Recursive-descent parser over the token list. Variables are plain
   identifiers; constants are integer literals or quoted symbols. *)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> Eof | t :: _ -> t

let advance st =
  match st.toks with
  | [] -> ()
  | _ :: rest -> st.toks <- rest

let expect st tok what =
  if peek st = tok then advance st else fail "expected %s" what

let parse_term st =
  match peek st with
  | Ident v ->
    advance st;
    Ast.Var v
  | Int_lit i ->
    advance st;
    Ast.Const (Value.int i)
  | Quoted q ->
    advance st;
    Ast.Const (Value.str q)
  | _ -> fail "expected a term"

let parse_atom_with_name st name =
  expect st Lparen "'('";
  let rec terms acc =
    match peek st with
    | Rparen ->
      advance st;
      List.rev acc
    | _ ->
      let t = parse_term st in
      (match peek st with
      | Comma ->
        advance st;
        terms (t :: acc)
      | Rparen ->
        advance st;
        List.rev (t :: acc)
      | _ -> fail "expected ',' or ')' in atom %s" name)
  in
  Ast.atom name (terms [])

let parse_atom st =
  match peek st with
  | Ident name ->
    advance st;
    parse_atom_with_name st name
  | _ -> fail "expected an atom"

type body_item =
  | Positive of Ast.atom
  | Negative of Ast.atom
  | Inequality of Ast.term * Ast.term

let parse_body_item st =
  match peek st with
  | Bang ->
    advance st;
    Negative (parse_atom st)
  | Ident "not" ->
    (* "not" is a keyword only when followed by an atom opening. *)
    (match st.toks with
    | Ident "not" :: Ident _ :: Lparen :: _ ->
      advance st;
      Negative (parse_atom st)
    | _ ->
      let t = parse_term st in
      (match peek st with
      | Neq ->
        advance st;
        Inequality (t, parse_term st)
      | _ -> fail "expected '!=' after bare term"))
  | Ident name -> (
    advance st;
    match peek st with
    | Lparen -> Positive (parse_atom_with_name st name)
    | Neq ->
      advance st;
      Inequality (Ast.Var name, parse_term st)
    | _ -> fail "expected '(' or '!=' after %s" name)
  | Int_lit _ | Quoted _ ->
    let t = parse_term st in
    expect st Neq "'!='";
    Inequality (t, parse_term st)
  | _ -> fail "expected a body item"

type clause = {
  head : Ast.atom;
  body : Ast.atom list;
  negated : Ast.atom list;
  diseq : (Ast.term * Ast.term) list;
}

let clause s =
  let st = { toks = tokenize s } in
  let head = parse_atom st in
  expect st Arrow "'<-'";
  let rec items acc =
    let item = parse_body_item st in
    match peek st with
    | Comma ->
      advance st;
      items (item :: acc)
    | Eof -> List.rev (item :: acc)
    | _ -> fail "expected ',' or end of input"
  in
  let all =
    match peek st with
    | Eof -> []
    | _ -> items []
  in
  let body =
    List.filter_map (function Positive a -> Some a | _ -> None) all
  and negated =
    List.filter_map (function Negative a -> Some a | _ -> None) all
  and diseq =
    List.filter_map (function Inequality (a, b) -> Some (a, b) | _ -> None) all
  in
  { head; body; negated; diseq }

let atom s =
  let st = { toks = tokenize s } in
  let a = parse_atom st in
  match peek st with
  | Eof -> a
  | _ -> fail "trailing input after atom"

let query s =
  let { head; body; negated; diseq } = clause s in
  try Ast.make ~negated ~diseq ~head ~body ()
  with Ast.Unsafe msg -> fail "unsafe query: %s" msg

let ucq s =
  s
  |> String.split_on_char ';'
  |> List.map String.trim
  |> List.filter (fun part -> part <> "")
  |> List.map query
