(** Tree decompositions of (possibly cyclic) conjunctive queries.

    The GYM algorithm of Section 3.2 takes a tree decomposition of a
    possibly cyclic query, evaluates the atoms grouped in each bag with
    the Shares/HyperCube algorithm, and runs Yannakakis over the
    resulting tree; the shape of the decomposition (depth, bag width)
    trades rounds against communication. This module provides the
    decompositions: the trivial single bag, the per-atom decomposition
    of acyclic queries, and a min-fill variable-elimination heuristic
    for the general case — plus a complete validity checker. *)

module Sset = Hypergraph.Sset

type bag = {
  vars : Sset.t;
  atoms : Ast.atom list;  (** Query atoms evaluated jointly in the bag. *)
}

type t = {
  bag : bag;
  children : t list;
}

val bags : t -> bag list
val depth : t -> int

val width : t list -> int
(** Largest number of atoms in a bag (the hypertree-width-style measure
    driving the bag-join cost). *)

val validate : Ast.t -> t list -> (unit, string) result
(** Checks the decomposition: every positive body atom covered by some
    bag, bag atoms within bag variables, and the running-intersection
    property for every variable. *)

val singleton : Ast.t -> t list
(** The trivial decomposition: one bag holding the whole body. *)

val of_join_forest : Hypergraph.join_tree list -> t list
(** One bag per atom, from a GYO join forest (acyclic queries). *)

val min_fill : Ast.t -> t list
(** Tree decomposition by min-fill variable elimination on the query's
    primal graph; each bag holds every atom its variables cover. Always
    valid (the test suite checks this by property); bag width is
    heuristic, not optimal. *)

val pp_bag : bag Fmt.t
val pp : t Fmt.t
