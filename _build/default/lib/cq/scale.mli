(** Scale independence / bounded query evaluation (Section 6 of the
    paper; Fan–Geerts–Libkin [31] and the bounded-CQ line [25, 29, 30,
    32]).

    An access constraint [(rel, inputs, N)] promises that for every
    binding of the input positions at most [N] tuples of [rel] match,
    and that they can be fetched by index. A CQ is {e boundedly
    evaluable} (in the "covered" sense implemented here) when its atoms
    admit an ordering in which each atom is reached through an access
    whose inputs are already bound — then the answer is computable
    touching a number of facts bounded by the access constants alone,
    independent of the instance size. *)

open Lamp_relational

type access = private {
  rel : string;
  inputs : int list;
  bound : int;
}

val access : rel:string -> inputs:int list -> bound:int -> access
(** @raise Invalid_argument on negative bounds or positions. *)

val satisfies : Instance.t -> access -> bool
(** Whether the instance respects the constraint. *)

val violations : Instance.t -> access list -> access list

type plan = private {
  query : Ast.t;
  order : (Ast.atom * access) list;
}

val plan : accesses:access list -> Ast.t -> plan option
(** An executable atom ordering, when one exists.
    @raise Invalid_argument on non-positive queries. *)

val is_boundedly_evaluable : accesses:access list -> Ast.t -> bool

val fetch_cap : plan -> int
(** Data-independent upper bound on the number of facts {!eval}
    touches — the essence of scale independence. *)

exception Schema_violation of access

val eval : ?enforce:bool -> plan -> Instance.t -> Instance.t * int
(** Index-nested-loop execution of the plan; returns the query answer
    and the number of facts actually fetched (≤ {!fetch_cap} on
    conforming instances). With [enforce] (default), an access returning
    more than its bound raises {!Schema_violation}; with
    [enforce:false] the evaluation proceeds (useful for measuring how
    non-conforming data degrades). *)
