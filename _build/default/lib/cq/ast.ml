open Lamp_relational

type term =
  | Var of string
  | Const of Value.t

let term_compare t1 t2 =
  match t1, t2 with
  | Var v1, Var v2 -> String.compare v1 v2
  | Const c1, Const c2 -> Value.compare c1 c2
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let term_equal t1 t2 = term_compare t1 t2 = 0

let pp_term ppf = function
  | Var v -> Fmt.string ppf v
  | Const (Value.Int i) -> Fmt.int ppf i
  | Const (Value.Str s) -> Fmt.pf ppf "'%s'" s

type atom = {
  rel : string;
  terms : term list;
}

let atom rel terms = { rel; terms }

let atom_vars a =
  List.filter_map (function Var v -> Some v | Const _ -> None) a.terms

let atom_compare a1 a2 =
  let c = String.compare a1.rel a2.rel in
  if c <> 0 then c else List.compare term_compare a1.terms a2.terms

let atom_equal a1 a2 = atom_compare a1 a2 = 0

let pp_atom ppf a =
  Fmt.pf ppf "%s(%a)" a.rel Fmt.(list ~sep:(any ",") pp_term) a.terms

type t = {
  head : atom;
  body : atom list;
  negated : atom list;
  diseq : (term * term) list;
}

exception Unsafe of string

let check_safe q =
  let module Sset = Set.Make (String) in
  let body_vars =
    List.fold_left
      (fun acc a -> Sset.union acc (Sset.of_list (atom_vars a)))
      Sset.empty q.body
  in
  let check_covered what vars =
    List.iter
      (fun v ->
        if not (Sset.mem v body_vars) then
          raise
            (Unsafe
               (Fmt.str "variable %s of %s does not occur in a positive body atom"
                  v what)))
      vars
  in
  check_covered "the head" (atom_vars q.head);
  List.iter (fun a -> check_covered "a negated atom" (atom_vars a)) q.negated;
  List.iter
    (fun (t1, t2) ->
      check_covered "an inequality"
        (List.filter_map (function Var v -> Some v | Const _ -> None) [ t1; t2 ]))
    q.diseq

let make ?(negated = []) ?(diseq = []) ~head ~body () =
  let q = { head; body; negated; diseq } in
  check_safe q;
  q

let head q = q.head
let body q = q.body
let negated q = q.negated
let diseq q = q.diseq

let is_positive q = q.negated = [] && q.diseq = []
let has_negation q = q.negated <> []

let vars q =
  let module Sset = Set.Make (String) in
  let add_atom acc a = Sset.union acc (Sset.of_list (atom_vars a)) in
  let acc = List.fold_left add_atom Sset.empty (q.head :: q.body) in
  let acc = List.fold_left add_atom acc q.negated in
  let acc =
    List.fold_left
      (fun acc (t1, t2) ->
        List.fold_left
          (fun acc t -> match t with Var v -> Sset.add v acc | Const _ -> acc)
          acc [ t1; t2 ])
      acc q.diseq
  in
  Sset.elements acc

let body_vars q =
  let module Sset = Set.Make (String) in
  List.fold_left
    (fun acc a -> Sset.union acc (Sset.of_list (atom_vars a)))
    Sset.empty q.body
  |> Sset.elements

let constants q =
  let add_atom acc a =
    List.fold_left
      (fun acc t -> match t with Const c -> Value.Set.add c acc | Var _ -> acc)
      acc a.terms
  in
  let acc = List.fold_left add_atom Value.Set.empty (q.head :: q.body) in
  let acc = List.fold_left add_atom acc q.negated in
  List.fold_left
    (fun acc (t1, t2) ->
      List.fold_left
        (fun acc t -> match t with Const c -> Value.Set.add c acc | Var _ -> acc)
        acc [ t1; t2 ])
    acc q.diseq

let is_full q =
  let module Sset = Set.Make (String) in
  let head_vars = Sset.of_list (atom_vars q.head) in
  Sset.equal head_vars (Sset.of_list (body_vars q))

let has_self_join q =
  let rels = List.map (fun a -> a.rel) q.body in
  List.length rels <> List.length (List.sort_uniq String.compare rels)

let is_boolean q = q.head.terms = []

let body_schema q =
  List.fold_left
    (fun acc a ->
      let arity = List.length a.terms in
      match Schema.arity acc a.rel with
      | Some a' when a' = arity -> acc
      | Some _ ->
        invalid_arg
          (Fmt.str "Ast.body_schema: %s used with two different arities" a.rel)
      | None -> Schema.add a.rel ~arity acc)
    Schema.empty (q.body @ q.negated)

let pp ppf q =
  let pp_body ppf () =
    let items =
      List.map (fun a -> Fmt.str "%a" pp_atom a) q.body
      @ List.map (fun a -> Fmt.str "!%a" pp_atom a) q.negated
      @ List.map (fun (t1, t2) -> Fmt.str "%a != %a" pp_term t1 pp_term t2) q.diseq
    in
    Fmt.string ppf (String.concat ", " items)
  in
  Fmt.pf ppf "%a <- %a" pp_atom q.head pp_body ()

let to_string q = Fmt.str "%a" pp q

let compare q1 q2 =
  let c = atom_compare q1.head q2.head in
  if c <> 0 then c
  else
    let c = List.compare atom_compare q1.body q2.body in
    if c <> 0 then c
    else
      let c = List.compare atom_compare q1.negated q2.negated in
      if c <> 0 then c
      else
        List.compare
          (fun (a1, b1) (a2, b2) ->
            let c = term_compare a1 a2 in
            if c <> 0 then c else term_compare b1 b2)
          q1.diseq q2.diseq

let equal q1 q2 = compare q1 q2 = 0
