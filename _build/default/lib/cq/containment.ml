open Lamp_relational

(* Frozen constants for canonical databases. The prefix cannot clash
   with user constants produced by the parser (quoted strings cannot
   start with \001). *)
let freeze_prefix = "\001"

let freeze_term = function
  | Ast.Var v -> Ast.Const (Value.str (freeze_prefix ^ v))
  | Ast.Const _ as t -> t

let freeze_atom (a : Ast.atom) =
  let frozen = List.map freeze_term a.Ast.terms in
  let values =
    List.map (function Ast.Const c -> c | Ast.Var _ -> assert false) frozen
  in
  Fact.of_list a.Ast.rel values

let canonical_instance q =
  List.fold_left
    (fun acc a -> Instance.add (freeze_atom a) acc)
    Instance.empty (Ast.body q)

let canonical_head q = freeze_atom (Ast.head q)

let require_positive what q =
  if not (Ast.is_positive q) then
    invalid_arg
      (Fmt.str
         "Containment.%s: exact containment is implemented for positive CQs \
          (use refute for CQ¬ / inequalities)"
         what)

let contained q1 q2 =
  require_positive "contained" q1;
  require_positive "contained" q2;
  List.length (Ast.head q1).Ast.terms = List.length (Ast.head q2).Ast.terms
  && Eval.derives q2 (canonical_instance q1) (canonical_head q1)

let equivalent q1 q2 = contained q1 q2 && contained q2 q1

let ucq_contained qs1 qs2 =
  List.for_all (fun q1 -> List.exists (fun q2 -> contained q1 q2) qs2) qs1

let ucq_equivalent qs1 qs2 = ucq_contained qs1 qs2 && ucq_contained qs2 qs1

(* Core computation: repeatedly drop a body atom when the smaller query
   remains contained in the original (the reverse containment is
   automatic because dropping atoms relaxes the query). *)
let minimize q =
  require_positive "minimize" q;
  let rec shrink q =
    let body = Ast.body q in
    let try_drop a =
      let body' = List.filter (fun b -> b != a) body in
      if body' = [] then None
      else
        match Ast.make ~head:(Ast.head q) ~body:body' () with
        | q' -> if contained q' q then Some q' else None
        | exception Ast.Unsafe _ -> None
    in
    match List.find_map try_drop body with
    | Some q' -> shrink q'
    | None -> q
  in
  shrink q

type verdict =
  | No_counterexample_found
  | Counterexample of Instance.t

(* Bounded counterexample search for containment of queries with
   negation or inequalities. All facts over the body schema and the
   given universe are enumerated and their subsets searched (smallest
   first). Sound for refutation; completeness holds only up to the
   bound — faithful to the coNEXPTIME lower bound of Theorem 4.9, which
   shows exponential-size counterexamples are unavoidable. *)
let refute ?(max_facts = 14) ~universe q1 q2 =
  let schema = Schema.union (Ast.body_schema q1) (Ast.body_schema q2) in
  let universe =
    Value.Set.elements
      (Value.Set.union
         (Value.Set.of_list universe)
         (Value.Set.union (Ast.constants q1) (Ast.constants q2)))
  in
  let rec tuples arity =
    if arity = 0 then [ [] ]
    else
      let rest = tuples (arity - 1) in
      List.concat_map (fun v -> List.map (fun t -> v :: t) rest) universe
  in
  let all_facts =
    List.concat_map
      (fun (rel, arity) -> List.map (Fact.of_list rel) (tuples arity))
      (Schema.to_list schema)
  in
  let all_facts = Array.of_list all_facts in
  let n = Array.length all_facts in
  if n > max_facts then
    invalid_arg
      (Fmt.str
         "Containment.refute: %d candidate facts exceed max_facts = %d; \
          shrink the universe or raise the bound"
         n max_facts);
  let is_counterexample i =
    let r1 = Eval.eval q1 i and r2 = Eval.eval q2 i in
    not (Instance.subset r1 r2)
  in
  (* Enumerate subsets in order of increasing popcount so the returned
     counterexample is minimal in size. *)
  let masks = List.init (1 lsl n) (fun m -> m) in
  let popcount m =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go m 0
  in
  let sorted = List.sort (fun a b -> Int.compare (popcount a) (popcount b)) masks in
  let instance_of_mask m =
    let rec go i acc =
      if i >= n then acc
      else if m land (1 lsl i) <> 0 then go (i + 1) (Instance.add all_facts.(i) acc)
      else go (i + 1) acc
    in
    go 0 Instance.empty
  in
  let rec search = function
    | [] -> No_counterexample_found
    | m :: rest ->
      let i = instance_of_mask m in
      if is_counterexample i then Counterexample i else search rest
  in
  search sorted
