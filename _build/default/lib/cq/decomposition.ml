module Sset = Hypergraph.Sset

type bag = {
  vars : Sset.t;
  atoms : Ast.atom list;
}

type t = {
  bag : bag;
  children : t list;
}

let rec bags t = t.bag :: List.concat_map bags t.children

let rec depth t =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 t.children

let width forest =
  List.fold_left
    (fun acc t ->
      List.fold_left
        (fun acc b -> max acc (List.length b.atoms))
        acc (bags t))
    0 forest

let rec atoms_of t =
  t.bag.atoms @ List.concat_map atoms_of t.children

(* Validity of a (generalized hypertree-style) decomposition:
   1. every positive body atom occurs in some bag whose vars cover it;
   2. every bag's atoms are covered by the bag's variables;
   3. running intersection: for every variable, the bags containing it
      form a connected subtree. *)
let validate q forest =
  let all_bags = List.concat_map bags forest in
  let covered (a : Ast.atom) =
    List.exists
      (fun b ->
        List.exists (Ast.atom_equal a) b.atoms
        && Sset.subset (Sset.of_list (Ast.atom_vars a)) b.vars)
      all_bags
  in
  let missing = List.filter (fun a -> not (covered a)) (Ast.body q) in
  if missing <> [] then
    Error
      (Fmt.str "atoms not covered by any bag: %a"
         Fmt.(list ~sep:(any ", ") Ast.pp_atom)
         missing)
  else begin
    let ill_formed =
      List.exists
        (fun b ->
          List.exists
            (fun a -> not (Sset.subset (Sset.of_list (Ast.atom_vars a)) b.vars))
            b.atoms)
        all_bags
    in
    if ill_formed then Error "some bag contains an atom outside its variables"
    else begin
      (* Running intersection: for each variable, the bags containing it
         must form one connected region, counted by DFS. *)
      let region_count v t =
        let rec go t inside =
          let here = Sset.mem v t.bag.vars in
          let new_region = here && not inside in
          List.fold_left
            (fun acc c -> acc + go c here)
            (if new_region then 1 else 0)
            t.children
        in
        go t false
      in
      let vars_of_forest =
        List.fold_left
          (fun acc t ->
            List.fold_left (fun acc b -> Sset.union acc b.vars) acc (bags t))
          Sset.empty forest
      in
      let violating =
        Sset.filter
          (fun v ->
            let regions =
              List.fold_left (fun acc t -> acc + region_count v t) 0 forest
            in
            regions > 1)
          vars_of_forest
      in
      if Sset.is_empty violating then Ok ()
      else
        Error
          (Fmt.str "running intersection violated for: %s"
             (String.concat ", " (Sset.elements violating)))
    end
  end

(* The trivial decomposition: one bag holding the whole body. *)
let singleton q =
  [
    {
      bag =
        {
          vars = Sset.of_list (Ast.body_vars q);
          atoms = Ast.body q;
        };
      children = [];
    };
  ]

(* Decomposition of an acyclic query from its GYO join forest: one bag
   per atom. *)
let of_join_forest forest =
  let rec conv (t : Hypergraph.join_tree) =
    {
      bag = { vars = t.Hypergraph.vars; atoms = [ t.Hypergraph.atom ] };
      children = List.map conv t.Hypergraph.children;
    }
  in
  List.map conv forest

(* Tree decomposition by variable elimination with the min-fill
   heuristic on the primal graph, then atoms assigned to every bag
   covering them, and atomless bags contracted into their parents. *)
let min_fill q =
  let body = Ast.body q in
  let vars = Ast.body_vars q in
  if vars = [] then singleton q
  else begin
    (* Primal graph as adjacency sets. *)
    let adj = Hashtbl.create 16 in
    let ensure v =
      if not (Hashtbl.mem adj v) then Hashtbl.add adj v Sset.empty
    in
    List.iter ensure vars;
    let connect v1 v2 =
      if v1 <> v2 then begin
        Hashtbl.replace adj v1 (Sset.add v2 (Hashtbl.find adj v1));
        Hashtbl.replace adj v2 (Sset.add v1 (Hashtbl.find adj v2))
      end
    in
    List.iter
      (fun a ->
        let avs = List.sort_uniq String.compare (Ast.atom_vars a) in
        List.iter (fun v1 -> List.iter (connect v1) avs) avs)
      body;
    let alive = ref (Sset.of_list vars) in
    let neighbors v = Sset.inter (Hashtbl.find adj v) !alive in
    let fill_cost v =
      let ns = Sset.elements (neighbors v) in
      let missing = ref 0 in
      List.iter
        (fun n1 ->
          List.iter
            (fun n2 ->
              if String.compare n1 n2 < 0 && not (Sset.mem n2 (Hashtbl.find adj n1))
              then incr missing)
            ns)
        ns;
      !missing
    in
    (* Eliminate all variables, recording (eliminated var, bag vars). *)
    let order = ref [] in
    while not (Sset.is_empty !alive) do
      let v =
        Sset.fold
          (fun v best ->
            match best with
            | None -> Some v
            | Some b -> if fill_cost v < fill_cost b then Some v else best)
          !alive None
        |> Option.get
      in
      let bag_vars = Sset.add v (neighbors v) in
      order := (v, bag_vars) :: !order;
      let ns = Sset.elements (neighbors v) in
      List.iter (fun n1 -> List.iter (fun n2 -> connect n1 n2) ns) ns;
      alive := Sset.remove v !alive
    done;
    let order = List.rev !order in
    (* Build the tree: the parent of bag_i is the bag of the earliest
       variable of bag_i \ {v_i} eliminated after v_i. *)
    let n = List.length order in
    let arr = Array.of_list order in
    let index_of v =
      let rec go i = if fst arr.(i) = v then i else go (i + 1) in
      go 0
    in
    let parent = Array.make n (-1) in
    Array.iteri
      (fun i (v, bag_vars) ->
        let rest = Sset.remove v bag_vars in
        if not (Sset.is_empty rest) then begin
          let j =
            Sset.fold (fun u acc -> min acc (index_of u)) rest max_int
          in
          if j > i && j < n then parent.(i) <- j
        end)
      arr;
    (* Assign every atom to every bag covering it (maximal filtering
       keeps bag joins as selective as possible). *)
    let bag_atoms i =
      let _, bag_vars = arr.(i) in
      List.filter
        (fun a -> Sset.subset (Sset.of_list (Ast.atom_vars a)) bag_vars)
        body
    in
    let children = Array.make n [] in
    Array.iteri
      (fun i p -> if p >= 0 then children.(p) <- i :: children.(p))
      parent;
    let rec build i =
      {
        bag = { vars = snd arr.(i); atoms = bag_atoms i };
        children = List.map build children.(i);
      }
    in
    let roots =
      List.filteri (fun i _ -> parent.(i) < 0) (Array.to_list arr)
      |> List.map (fun (v, _) -> build (index_of v))
    in
    (* Contract atomless bags into their parents: the parent absorbs the
       child's variables and adopts its children. Running intersection
       is preserved because an absorbed child's region becomes part of
       the parent's. *)
    let rec contract t =
      let children = List.map contract t.children in
      let absorbed, kept = List.partition (fun c -> c.bag.atoms = []) children in
      let vars =
        List.fold_left
          (fun acc c -> Sset.union acc c.bag.vars)
          t.bag.vars absorbed
      in
      {
        bag = { t.bag with vars };
        children = kept @ List.concat_map (fun c -> c.children) absorbed;
      }
    in
    (* An atomless root is merged with its first child (merging adjacent
       bags preserves running intersection). *)
    let rec fix_root t =
      if t.bag.atoms <> [] then t
      else
        match t.children with
        | [] -> t
        | c :: rest ->
          fix_root
            {
              bag = { c.bag with vars = Sset.union c.bag.vars t.bag.vars };
              children = c.children @ rest;
            }
    in
    let roots = List.map (fun t -> fix_root (contract t)) roots in
    List.filter (fun t -> atoms_of t <> []) roots
  end

let pp_bag ppf b =
  Fmt.pf ppf "{%s | %a}"
    (String.concat "," (Sset.elements b.vars))
    Fmt.(list ~sep:(any ", ") Ast.pp_atom)
    b.atoms

let rec pp ppf t =
  if t.children = [] then pp_bag ppf t.bag
  else
    Fmt.pf ppf "%a -> [%a]" pp_bag t.bag Fmt.(list ~sep:(any "; ") pp) t.children
