(** Textual syntax for conjunctive queries.

    Grammar (whitespace-insensitive):
    {v
      query  ::= atom '<-' item (',' item)*    (':-' also accepted)
      item   ::= atom                          positive atom
               | '!' atom | 'not' atom         negated atom
               | term '!=' term                inequality
      atom   ::= name '(' term (',' term)* ')' | name '(' ')'
      term   ::= identifier                    a variable
               | integer | 'quoted'            a constant
    v}

    Example: ["H(x,z) <- R(x,y), R(y,z), S(z,x), x != y, !T(z)"]. *)

exception Parse_error of string

val query : string -> Ast.t
(** @raise Parse_error on malformed or unsafe input. *)

type clause = {
  head : Ast.atom;
  body : Ast.atom list;
  negated : Ast.atom list;
  diseq : (Ast.term * Ast.term) list;
}

val clause : string -> clause
(** Parses a rule without the safety check — the entry point for
    formalisms with relaxed safety, like value invention (wILOG).
    @raise Parse_error on malformed input. *)

val atom : string -> Ast.atom
(** Parses a single atom.
    @raise Parse_error on malformed input. *)

val ucq : string -> Ast.t list
(** Parses a union of conjunctive queries: disjuncts separated by
    [';']. *)
