open Lamp_relational
module Smap = Map.Make (String)

type t = Value.t Smap.t

let empty = Smap.empty
let bind var value t = Smap.add var value t
let find var t = Smap.find_opt var t
let mem var t = Smap.mem var t
let of_list l = List.fold_left (fun t (v, value) -> bind v value t) empty l
let to_list t = Smap.bindings t

exception Unbound of string

let term t = function
  | Ast.Const c -> c
  | Ast.Var v -> (
    match find v t with
    | Some value -> value
    | None -> raise (Unbound v))

let atom t (a : Ast.atom) =
  Fact.of_list a.Ast.rel (List.map (term t) a.Ast.terms)

let body_facts t q =
  List.fold_left (fun acc a -> Instance.add (atom t a) acc) Instance.empty
    (Ast.body q)

let head_fact t q = atom t (Ast.head q)

let satisfies_diseq t q =
  List.for_all
    (fun (t1, t2) -> not (Value.equal (term t t1) (term t t2)))
    (Ast.diseq q)

let satisfies_negation t q instance =
  List.for_all (fun a -> not (Instance.mem (atom t a) instance)) (Ast.negated q)

let satisfies t q instance =
  (try Instance.subset (body_facts t q) instance
   with Unbound _ -> false)
  && satisfies_diseq t q
  && satisfies_negation t q instance

let compare = Smap.compare Value.compare
let equal t1 t2 = compare t1 t2 = 0

let pp ppf t =
  let pp_binding ppf (v, value) = Fmt.pf ppf "%s↦%a" v Value.pp value in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_binding) (Smap.bindings t)

let enumerate ~vars ~universe f =
  let universe = Array.of_list universe in
  let n = Array.length universe in
  if n = 0 then (if vars = [] then f empty)
  else
    let rec go acc = function
      | [] -> f acc
      | v :: rest ->
        for i = 0 to n - 1 do
          go (bind v universe.(i) acc) rest
        done
    in
    go empty vars
