lib/cq/index.ml: Array Instance Int Lamp_relational Map Option String Tuple Value
