lib/cq/containment.mli: Ast Fact Instance Lamp_relational Value
