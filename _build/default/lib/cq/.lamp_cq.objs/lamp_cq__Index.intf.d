lib/cq/index.mli: Instance Lamp_relational Tuple Value
