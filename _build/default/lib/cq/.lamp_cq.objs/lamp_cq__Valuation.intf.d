lib/cq/valuation.mli: Ast Fact Fmt Instance Lamp_relational Value
