lib/cq/valuation.ml: Array Ast Fact Fmt Instance Lamp_relational List Map String Value
