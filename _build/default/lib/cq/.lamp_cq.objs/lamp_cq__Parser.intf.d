lib/cq/parser.mli: Ast
