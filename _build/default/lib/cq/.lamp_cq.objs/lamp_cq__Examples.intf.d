lib/cq/examples.mli: Ast
