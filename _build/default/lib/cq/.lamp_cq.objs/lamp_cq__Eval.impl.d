lib/cq/eval.ml: Array Ast Fact Index Instance Lamp_relational List Set String Tuple Valuation Value
