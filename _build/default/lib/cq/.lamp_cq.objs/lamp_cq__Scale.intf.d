lib/cq/scale.mli: Ast Instance Lamp_relational
