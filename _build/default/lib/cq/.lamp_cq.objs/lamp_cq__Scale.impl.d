lib/cq/scale.ml: Array Ast Hashtbl Index Instance Int Lamp_relational List Option Set String Tuple Valuation Value
