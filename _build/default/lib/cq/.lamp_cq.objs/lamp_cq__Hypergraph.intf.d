lib/cq/hypergraph.mli: Ast Set
