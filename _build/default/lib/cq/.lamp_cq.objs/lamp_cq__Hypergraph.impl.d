lib/cq/hypergraph.ml: Array Ast Hashtbl Int Lamp_lp List Option Packing Set String
