lib/cq/generic_join.mli: Ast Index Instance Lamp_relational Valuation
