lib/cq/ast.ml: Fmt Lamp_relational List Schema Set String Value
