lib/cq/decomposition.ml: Array Ast Fmt Hashtbl Hypergraph List Option String
