lib/cq/decomposition.mli: Ast Fmt Hypergraph
