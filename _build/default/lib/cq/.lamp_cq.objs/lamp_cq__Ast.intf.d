lib/cq/ast.mli: Fmt Lamp_relational Schema Value
