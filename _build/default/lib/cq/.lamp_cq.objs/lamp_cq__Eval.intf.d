lib/cq/eval.mli: Ast Fact Index Instance Lamp_relational Valuation
