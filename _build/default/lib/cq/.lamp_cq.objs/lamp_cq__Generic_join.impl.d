lib/cq/generic_join.ml: Array Ast Index Instance Int Lamp_relational List Set String Tuple Valuation Value
