lib/cq/examples.ml: Parser
