lib/cq/minimal.ml: Ast Eval Fact Instance Lamp_relational List Set Valuation
