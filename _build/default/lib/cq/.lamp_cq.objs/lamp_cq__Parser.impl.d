lib/cq/parser.ml: Ast Fmt Lamp_relational List String Value
