lib/cq/minimal.mli: Ast Fact Instance Lamp_relational Valuation Value
