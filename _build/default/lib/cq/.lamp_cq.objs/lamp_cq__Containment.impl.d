lib/cq/containment.ml: Array Ast Eval Fact Fmt Instance Int Lamp_relational List Schema Value
