(** Minimal valuations (Definition 4.4 of the paper).

    A valuation [V] for a CQ [Q] is minimal when no valuation [V'] derives
    the same head fact from a strict subset of [V]'s required facts.
    Minimal valuations characterize parallel-correctness (Proposition
    4.6); the functions here are the Σᵖ₂-flavoured enumeration kernels
    behind the checks in [Lamp_correctness].

    All functions support plain CQs and CQs with inequalities (where a
    candidate [V'] must itself satisfy the inequalities, following the
    journal version of the work), and reject CQ¬.
    @raise Invalid_argument on queries with negated atoms. *)

open Lamp_relational

val is_minimal : Ast.t -> Valuation.t -> bool
(** Whether the valuation is minimal for the query. Decidable without
    reference to a wider universe: any dominating valuation maps into the
    active domain of [V(body_Q)]. *)

val minimal_valuations : Ast.t -> universe:Value.t list -> Valuation.t list
(** All minimal valuations of the query's variables over the universe
    (filtered to those satisfying the query's inequalities). *)

val minimal_images :
  Ast.t -> universe:Value.t list -> (Fact.t * Instance.t) list
(** Deduplicated images [(V(head_Q), V(body_Q))] of the minimal
    valuations over the universe. Two valuations with equal images are
    interchangeable for parallel-correctness, so consumers iterate over
    this smaller list. *)
