open Lamp_relational

(* Greedy join order: start from the smallest relation, then repeatedly
   pick an atom sharing a variable with the already-bound set (preferring
   small relations), falling back to the smallest unconnected atom for
   cartesian products. *)
let order_atoms idx atoms =
  let module Sset = Set.Make (String) in
  let size a = Index.count idx ~rel:a.Ast.rel in
  let rec pick bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let connected, rest =
        List.partition
          (fun a ->
            List.exists (fun v -> Sset.mem v bound) (Ast.atom_vars a)
            || Ast.atom_vars a = [])
          remaining
      in
      let pool = if connected <> [] then connected else rest in
      let best =
        List.fold_left
          (fun best a ->
            match best with
            | None -> Some a
            | Some b -> if size a < size b then Some a else best)
          None pool
      in
      (match best with
      | None -> List.rev acc
      | Some a ->
        let bound =
          List.fold_left (fun s v -> Sset.add v s) bound (Ast.atom_vars a)
        in
        let remaining = List.filter (fun a' -> a' != a) remaining in
        pick bound remaining (a :: acc))
  in
  pick Sset.empty atoms []

(* Unify a tuple with an atom under a partial valuation. *)
let match_tuple valuation (a : Ast.atom) tuple =
  if Tuple.arity tuple <> List.length a.Ast.terms then None
  else
    let rec go i terms valuation =
      match terms with
      | [] -> Some valuation
      | Ast.Const c :: rest ->
        if Value.equal c tuple.(i) then go (i + 1) rest valuation else None
      | Ast.Var v :: rest -> (
        match Valuation.find v valuation with
        | Some value ->
          if Value.equal value tuple.(i) then go (i + 1) rest valuation
          else None
        | None -> go (i + 1) rest (Valuation.bind v tuple.(i) valuation))
    in
    go 0 a.Ast.terms valuation

(* Candidate tuples for an atom: probe the index on the first bound
   position, scan the relation when nothing is bound. *)
let candidates idx valuation (a : Ast.atom) =
  let rec bound_pos i = function
    | [] -> None
    | Ast.Const c :: _ -> Some (i, c)
    | Ast.Var v :: rest -> (
      match Valuation.find v valuation with
      | Some value -> Some (i, value)
      | None -> bound_pos (i + 1) rest)
  in
  match bound_pos 0 a.Ast.terms with
  | Some (pos, value) -> Index.lookup idx ~rel:a.Ast.rel ~pos ~value
  | None -> Index.all idx ~rel:a.Ast.rel

let fold_valuations_idx q idx f init =
  let ordered = order_atoms idx (Ast.body q) in
  let instance = Index.instance idx in
  let rec go valuation atoms acc =
    match atoms with
    | [] ->
      if
        Valuation.satisfies_diseq valuation q
        && Valuation.satisfies_negation valuation q instance
      then f valuation acc
      else acc
    | a :: rest ->
      List.fold_left
        (fun acc tuple ->
          match match_tuple valuation a tuple with
          | Some valuation -> go valuation rest acc
          | None -> acc)
        acc (candidates idx valuation a)
  in
  go Valuation.empty ordered init

let fold_valuations q instance f init =
  fold_valuations_idx q (Index.create instance) f init

let valuations q instance =
  List.rev (fold_valuations q instance (fun v acc -> v :: acc) [])

let eval_idx q idx =
  fold_valuations_idx q idx
    (fun v acc -> Instance.add (Valuation.head_fact v q) acc)
    Instance.empty

let eval q instance = eval_idx q (Index.create instance)

let eval_ucq qs instance =
  let idx = Index.create instance in
  List.fold_left (fun acc q -> Instance.union acc (eval_idx q idx)) Instance.empty qs

let holds q instance =
  let exception Found in
  try
    fold_valuations q instance (fun _ () -> raise Found) ();
    false
  with Found -> true

let derives q instance fact =
  let exception Found in
  try
    fold_valuations q instance
      (fun v () ->
        if Fact.equal (Valuation.head_fact v q) fact then raise Found)
      ();
    false
  with Found -> true
