let q1_join = Parser.query "H(x,y,z) <- R(x,y), S(y,z)"

let q2_triangle = Parser.query "H(x,y,z) <- R(x,y), S(y,z), T(z,x)"

let qe_example_4_1 = Parser.query "H(x1,x3) <- R(x1,x2), R(x2,x3), S(x3,x1)"

let q_example_4_3 = Parser.query "H(x,z) <- R(x,y), R(y,z), R(x,x)"

let q1_example_4_11 = Parser.query "H() <- S(x), R(x,x), T(x)"
let q2_example_4_11 = Parser.query "H() <- R(x,x), T(x)"
let q3_example_4_11 = Parser.query "H() <- S(x), R(x,y), T(y)"
let q4_example_4_11 = Parser.query "H() <- R(x,y), T(y)"

let triangles_distinct =
  Parser.query
    "H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, z != x"

let open_triangle = Parser.query "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)"

let two_path = Parser.query "H(x,z) <- E(x,y), E(y,z)"

let full_triangle_e = Parser.query "H(x,y,z) <- E(x,y), E(y,z), E(z,x)"
