(** Abstract syntax of conjunctive queries.

    A conjunctive query (CQ, Section 2 of the paper) is a rule
    [H(x̄) ← R₁(ȳ₁), …, Rₘ(ȳₘ)]. This module also carries the two
    extensions used in Sections 4–5: negated body atoms (the class CQ¬)
    and inequalities between terms (CQ with ≠). A query with neither is a
    plain CQ. *)

open Lamp_relational

type term =
  | Var of string
  | Const of Value.t

val term_compare : term -> term -> int
val term_equal : term -> term -> bool
val pp_term : term Fmt.t

type atom = {
  rel : string;
  terms : term list;
}

val atom : string -> term list -> atom
val atom_vars : atom -> string list
(** Variables of an atom, in order of occurrence (with duplicates). *)

val atom_compare : atom -> atom -> int
val atom_equal : atom -> atom -> bool
val pp_atom : atom Fmt.t

type t = private {
  head : atom;
  body : atom list;  (** Positive body atoms. *)
  negated : atom list;  (** Negated body atoms (CQ¬). *)
  diseq : (term * term) list;  (** Inequalities (CQ with ≠). *)
}

exception Unsafe of string

val make :
  ?negated:atom list ->
  ?diseq:(term * term) list ->
  head:atom ->
  body:atom list ->
  unit ->
  t
(** Builds a query and enforces safety: every variable of the head, of a
    negated atom, and of an inequality must occur in some positive body
    atom.
    @raise Unsafe otherwise. *)

val head : t -> atom
val body : t -> atom list
val negated : t -> atom list
val diseq : t -> (term * term) list

val is_positive : t -> bool
(** No negated atoms and no inequalities: a plain CQ. *)

val has_negation : t -> bool

val vars : t -> string list
(** All variables, sorted. *)

val body_vars : t -> string list
val constants : t -> Value.Set.t

val is_full : t -> bool
(** A full CQ outputs all body variables (the class for which HyperCube
    is defined and transfer drops to NP). *)

val has_self_join : t -> bool
(** Some relation name occurs twice in the positive body. *)

val is_boolean : t -> bool

val body_schema : t -> Schema.t
(** Schema of the (positive and negated) body atoms.
    @raise Invalid_argument if a relation occurs with two arities. *)

val pp : t Fmt.t
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
