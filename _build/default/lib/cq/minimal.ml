open Lamp_relational

let check_supported q =
  if Ast.has_negation q then
    invalid_arg
      "Minimal: minimal valuations are defined for CQs (possibly with \
       inequalities), not for CQ¬"

(* V is minimal iff no valuation V' deriving the same head fact requires
   a strict subset of V's body facts (Definition 4.4). Any such V' maps
   the body into V(body_Q), so enumerating the satisfying valuations of Q
   on the instance V(body_Q) is exhaustive.

   Fast path: for a full CQ the head fact determines the whole
   valuation, so no distinct competitor can derive the same head — every
   valuation is minimal. This is what drops the complexity of the
   Section 4 problems for full queries (the NP cases of [14, 15]). *)
let is_minimal q v =
  check_supported q;
  if Ast.is_full q then true
  else
  let required = Valuation.body_facts v q in
  let head = Valuation.head_fact v q in
  let exception Smaller in
  try
    Eval.fold_valuations q required
      (fun v' () ->
        let required' = Valuation.body_facts v' q in
        if
          Fact.equal (Valuation.head_fact v' q) head
          && Instance.subset required' required
          && not (Instance.equal required' required)
        then raise Smaller)
      ();
    true
  with Smaller -> false

let fold_valuations_over q ~universe f init =
  check_supported q;
  let acc = ref init in
  Valuation.enumerate ~vars:(Ast.vars q) ~universe (fun v ->
      if Valuation.satisfies_diseq v q then acc := f v !acc);
  !acc

let minimal_valuations q ~universe =
  fold_valuations_over q ~universe
    (fun v acc -> if is_minimal q v then v :: acc else acc)
    []
  |> List.rev

(* For the parallel-correctness tests only the pair (head fact, required
   facts) of a minimal valuation matters; deduplicating those images cuts
   the node checks sharply. *)
module Image = struct
  type t = Fact.t * Instance.t

  let compare (h1, b1) (h2, b2) =
    let c = Fact.compare h1 h2 in
    if c <> 0 then c else Instance.compare b1 b2
end

module Image_set = Set.Make (Image)

let minimal_images q ~universe =
  let images =
    fold_valuations_over q ~universe
      (fun v acc ->
        if is_minimal q v then
          Image_set.add (Valuation.head_fact v q, Valuation.body_facts v q) acc
        else acc)
      Image_set.empty
  in
  Image_set.elements images
