(** Query containment.

    For positive CQs, containment [Q ⊆ Q'] is decided exactly by the
    classical homomorphism theorem: [Q ⊆ Q'] iff [Q'] derives the frozen
    head on the canonical (frozen) database of [Q]. For queries with
    negation or inequalities — where the problem jumps to
    coNEXPTIME-complete (Theorem 4.9 / [33]) — a bounded counterexample
    search is provided instead. *)

open Lamp_relational

val canonical_instance : Ast.t -> Instance.t
(** The canonical database of the query: its body atoms with every
    variable frozen to a fresh constant. *)

val canonical_head : Ast.t -> Fact.t

val contained : Ast.t -> Ast.t -> bool
(** [contained q1 q2] decides [q1 ⊆ q2] (NP-complete in query size).
    @raise Invalid_argument unless both queries are positive CQs. *)

val equivalent : Ast.t -> Ast.t -> bool

val ucq_contained : Ast.t list -> Ast.t list -> bool
(** UCQ containment: every disjunct of the left side is contained in some
    disjunct of the right side (sound and complete for unions of positive
    CQs). *)

val ucq_equivalent : Ast.t list -> Ast.t list -> bool

val minimize : Ast.t -> Ast.t
(** The core of the query: drops body atoms while the query stays
    equivalent. The result is a minimal equivalent CQ.
    @raise Invalid_argument on non-positive queries. *)

type verdict =
  | No_counterexample_found
  | Counterexample of Instance.t

val refute :
  ?max_facts:int -> universe:Value.t list -> Ast.t -> Ast.t -> verdict
(** [refute ~universe q1 q2] searches instances over the body schema and
    the universe (plus both queries' constants) for a witness of
    [q1 ⊄ q2], trying smaller instances first. Sound for refutation;
    complete only up to the bound, reflecting the exponential
    counterexamples behind Theorem 4.9.
    @raise Invalid_argument when the candidate fact space exceeds
    [max_facts] (default 14, i.e. 2¹⁴ subsets). *)
