(** Evaluation of conjunctive queries (with optional negation and
    inequalities) over instances.

    The evaluator enumerates satisfying valuations by backtracking over a
    greedily ordered body, probing lazy hash indexes ({!Index}) on bound
    positions. Negated atoms and inequalities are checked once all body
    variables are bound (safety guarantees they are). *)

open Lamp_relational

val fold_valuations :
  Ast.t -> Instance.t -> (Valuation.t -> 'a -> 'a) -> 'a -> 'a
(** Folds over all satisfying valuations of the query. *)

val fold_valuations_idx :
  Ast.t -> Index.t -> (Valuation.t -> 'a -> 'a) -> 'a -> 'a
(** As {!fold_valuations} over a pre-built index, allowing index reuse
    across queries on the same instance. *)

val valuations : Ast.t -> Instance.t -> Valuation.t list
(** All satisfying valuations of [q] on the instance. *)

val eval : Ast.t -> Instance.t -> Instance.t
(** [eval q i] is [Q(I)]: the set of facts derived by satisfying
    valuations. *)

val eval_idx : Ast.t -> Index.t -> Instance.t

val eval_ucq : Ast.t list -> Instance.t -> Instance.t
(** Union of the results of the disjuncts. *)

val holds : Ast.t -> Instance.t -> bool
(** Whether at least one satisfying valuation exists (boolean-query
    semantics). *)

val derives : Ast.t -> Instance.t -> Fact.t -> bool
(** Whether the given head fact is derived on the instance. *)
