(** Query hypergraphs: fractional edge packings/covers and acyclicity.

    The hypergraph of a CQ has the body variables as vertices and one
    hyperedge per body atom. Its optimal fractional edge packing value
    τ* governs the HyperCube load bound (Section 3.1); GYO ear removal
    decides acyclicity and produces the join trees consumed by the
    Yannakakis and GYM algorithms (Section 3.2). *)

module Sset : Set.S with type elt = string

type t = {
  vertices : string list;
  edges : (Ast.atom * Sset.t) list;
}

val of_query : Ast.t -> t

val tau_star : Ast.t -> float
(** Optimal fractional edge packing value τ* of the query's hypergraph.
    The skew-free one-round load bound is [m / p**(1/tau)]; e.g. 3/2 for
    the triangle query. *)

val rho_star : Ast.t -> float
(** Optimal fractional edge cover value ρ* (the AGM exponent). *)

val share_exponents : Ast.t -> float * (string * float) list
(** [(t, exponents)] where assigning variable [v] the share [p**e_v]
    gives every atom a replication-weighted load of [m / p**t], with
    [t = 1/τ*]. These drive {!Lamp_mpc.Hypercube}. *)

type join_tree = {
  atom : Ast.atom;
  vars : Sset.t;
  children : join_tree list;
}

val join_tree_atoms : join_tree -> Ast.atom list
val join_tree_size : join_tree -> int
val join_tree_depth : join_tree -> int

val gyo : Ast.t -> join_tree list option
(** GYO ear removal. Returns a join forest (one tree per connected
    component of the hypergraph) when the query is acyclic, [None]
    otherwise. The forest satisfies the running-intersection property. *)

val is_acyclic : Ast.t -> bool
