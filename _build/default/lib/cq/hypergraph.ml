open Lamp_lp
module Sset = Set.Make (String)

type t = {
  vertices : string list;
  edges : (Ast.atom * Sset.t) list;
}

let of_query q =
  let edges =
    List.map (fun a -> (a, Sset.of_list (Ast.atom_vars a))) (Ast.body q)
  in
  let vertices =
    List.fold_left (fun acc (_, vs) -> Sset.union acc vs) Sset.empty edges
    |> Sset.elements
  in
  { vertices; edges }

let vertex_index hg =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace tbl v i) hg.vertices;
  tbl

let int_edges hg =
  let tbl = vertex_index hg in
  List.map
    (fun (_, vs) -> List.map (Hashtbl.find tbl) (Sset.elements vs))
    hg.edges

(* Atoms without variables contribute empty hyperedges, which the LP
   layer rejects; they are irrelevant to packings and shares. *)
let nonempty_int_edges hg = List.filter (fun e -> e <> []) (int_edges hg)

let tau_star q =
  let hg = of_query q in
  match nonempty_int_edges hg with
  | [] -> 0.0
  | edges ->
    (Packing.edge_packing ~vertices:(List.length hg.vertices) ~edges)
      .Packing.value

let rho_star q =
  let hg = of_query q in
  match nonempty_int_edges hg with
  | [] -> 0.0
  | edges ->
    (Packing.edge_cover ~vertices:(List.length hg.vertices) ~edges)
      .Packing.value

let share_exponents q =
  let hg = of_query q in
  match nonempty_int_edges hg with
  | [] -> (1.0, [])
  | edges ->
    let t, exps =
      Packing.hypercube_exponents ~vertices:(List.length hg.vertices) ~edges
    in
    (t, List.mapi (fun i v -> (v, exps.(i))) hg.vertices)

(* ------------------------------------------------------------------ *)
(* GYO ear removal and join trees                                      *)

type join_tree = {
  atom : Ast.atom;
  vars : Sset.t;
  children : join_tree list;
}

let rec join_tree_atoms t =
  t.atom :: List.concat_map join_tree_atoms t.children

let rec join_tree_size t =
  1 + List.fold_left (fun acc c -> acc + join_tree_size c) 0 t.children

let rec join_tree_depth t =
  1 + List.fold_left (fun acc c -> max acc (join_tree_depth c)) 0 t.children

(* GYO: repeatedly find an "ear" — an edge e with a witness edge w such
   that every vertex of e shared with the rest of the hypergraph also
   lies in w — remove the ear and attach it below the witness. A
   hypergraph is acyclic iff this reduces it to a single edge (per
   connected component). *)
let gyo q =
  let hg = of_query q in
  let nodes =
    List.mapi
      (fun i (atom, vars) -> (i, atom, vars, ref ([] : int list)))
      hg.edges
  in
  let alive = Hashtbl.create 16 in
  List.iter (fun (i, _, _, _) -> Hashtbl.replace alive i ()) nodes;
  let get i = List.find (fun (j, _, _, _) -> j = i) nodes in
  let living () =
    List.filter (fun (i, _, _, _) -> Hashtbl.mem alive i) nodes
  in
  let find_ear () =
    let live = living () in
    let rest_vars except =
      List.fold_left
        (fun acc (j, _, vs, _) -> if j = except then acc else Sset.union acc vs)
        Sset.empty live
    in
    let is_witness shared (_, _, wvars, _) = Sset.subset shared wvars in
    List.find_map
      (fun (i, _, vs, _) ->
        if List.length live <= 1 then None
        else
          let shared = Sset.inter vs (rest_vars i) in
          (* An edge sharing nothing with the rest is a fully reduced
             component: keep it as a root instead of attaching it to an
             unrelated witness. *)
          if Sset.is_empty shared then None
          else
          match
            List.find_opt
              (fun ((j, _, _, _) as w) -> j <> i && is_witness shared w)
              live
          with
          | Some (j, _, _, _) -> Some (i, j)
          | None -> None)
      live
  in
  let rec reduce () =
    match find_ear () with
    | Some (ear, witness) ->
      Hashtbl.remove alive ear;
      let _, _, _, children = get witness in
      children := ear :: !children;
      reduce ()
    | None -> ()
  in
  reduce ();
  let live = living () in
  (* Acyclic iff one edge per connected component survives; components
     of the *query* hypergraph are counted on the original edges. *)
  let rec build i =
    let _, atom, vars, children = get i in
    { atom; vars; children = List.map build !children }
  in
  let component_count =
    (* Union-find over edges sharing variables. *)
    let parent = Array.init (List.length hg.edges) (fun i -> i) in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    let union i j =
      let ri = find i and rj = find j in
      if ri <> rj then parent.(ri) <- rj
    in
    List.iteri
      (fun i (_, vi) ->
        List.iteri
          (fun j (_, vj) ->
            if i < j && not (Sset.is_empty (Sset.inter vi vj)) then union i j)
          hg.edges)
      hg.edges;
    List.length
      (List.sort_uniq Int.compare
         (List.mapi (fun i _ -> find i) hg.edges))
  in
  if List.length live = component_count then
    Some (List.map (fun (i, _, _, _) -> build i) live)
  else None

let is_acyclic q = Option.is_some (gyo q)
