open Lamp_relational
module Sset = Set.Make (String)

type access = {
  rel : string;
  inputs : int list;
  bound : int;
}

let access ~rel ~inputs ~bound =
  if bound < 0 then invalid_arg "Scale.access: negative bound";
  if List.exists (fun i -> i < 0) inputs then
    invalid_arg "Scale.access: negative position";
  { rel; inputs = List.sort_uniq Int.compare inputs; bound }

(* Does the instance respect an access constraint? For every binding of
   the input positions, at most [bound] tuples match. *)
let satisfies instance a =
  let counts = Hashtbl.create 64 in
  Tuple.Set.iter
    (fun tup ->
      if List.for_all (fun i -> i < Tuple.arity tup) a.inputs then begin
        let key = List.map (fun i -> tup.(i)) a.inputs in
        Hashtbl.replace counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
      end)
    (Instance.tuples instance a.rel);
  Hashtbl.fold (fun _ c acc -> acc && c <= a.bound) counts true

let violations instance accesses =
  List.filter (fun a -> not (satisfies instance a)) accesses

type plan = {
  query : Ast.t;
  order : (Ast.atom * access) list;
}

(* An atom is fetchable when some access constraint on its relation has
   all input positions held by constants or already-bound variables. *)
let fetchable bound_vars accesses (a : Ast.atom) =
  List.find_opt
    (fun acc ->
      acc.rel = a.Ast.rel
      && List.for_all
           (fun i ->
             match List.nth_opt a.Ast.terms i with
             | Some (Ast.Const _) -> true
             | Some (Ast.Var v) -> Sset.mem v bound_vars
             | None -> false)
           acc.inputs)
    accesses

(* Backtracking search for an executable atom order: the "covered"
   condition under which the query is boundedly evaluable — every atom
   reached through an access whose inputs are already known, so the
   total number of facts touched is bounded by the access bounds alone,
   independently of the instance size (scale independence, [31]). *)
let plan ~accesses q =
  if not (Ast.is_positive q) then
    invalid_arg "Scale.plan: defined for positive CQs";
  let rec search bound_vars remaining acc_order =
    match remaining with
    | [] -> Some { query = q; order = List.rev acc_order }
    | _ ->
      let candidates =
        List.filter_map
          (fun a ->
            match fetchable bound_vars accesses a with
            | Some access -> Some (a, access)
            | None -> None)
          remaining
      in
      let rec try_candidates = function
        | [] -> None
        | (a, access) :: rest -> (
          let bound_vars' =
            List.fold_left
              (fun s v -> Sset.add v s)
              bound_vars (Ast.atom_vars a)
          in
          let remaining' = List.filter (fun b -> b != a) remaining in
          match search bound_vars' remaining' ((a, access) :: acc_order) with
          | Some p -> Some p
          | None -> try_candidates rest)
      in
      try_candidates candidates
  in
  search Sset.empty (Ast.body q) []

let is_boundedly_evaluable ~accesses q = Option.is_some (plan ~accesses q)

(* Data-independent cap on the number of facts fetched: at stage k there
   are at most Π_{i<k} bound_i partial valuations, each fetching at most
   bound_k tuples. *)
let fetch_cap p =
  let _, total =
    List.fold_left
      (fun (prefix, total) (_, access) ->
        (prefix * access.bound, total + (prefix * access.bound)))
      (1, 0) p.order
  in
  total

exception Schema_violation of access

(* Index-nested-loop execution along the plan, counting fetched facts.
   Matches the semantics of the full evaluator on schema-conforming
   instances, touching at most [fetch_cap] facts. *)
let eval ?(enforce = true) p instance =
  let idx = Index.create instance in
  let fetched = ref 0 in
  let candidates valuation ((a : Ast.atom), access) =
    let bound_positions =
      List.filter_map
        (fun i ->
          match List.nth_opt a.Ast.terms i with
          | Some (Ast.Const c) -> Some (i, c)
          | Some (Ast.Var v) -> (
            match Valuation.find v valuation with
            | Some value -> Some (i, value)
            | None -> None)
          | None -> None)
        access.inputs
    in
    let initial =
      match bound_positions with
      | [] -> Index.all idx ~rel:a.Ast.rel
      | (pos, value) :: _ -> Index.lookup idx ~rel:a.Ast.rel ~pos ~value
    in
    let matching =
      List.filter
        (fun tup ->
          List.for_all
            (fun (i, v) -> i < Tuple.arity tup && Value.equal tup.(i) v)
            bound_positions)
        initial
    in
    if enforce && List.length matching > access.bound then
      raise (Schema_violation access);
    fetched := !fetched + List.length matching;
    matching
  in
  let match_tuple valuation (a : Ast.atom) tup =
    if Tuple.arity tup <> List.length a.Ast.terms then None
    else
      let rec go i terms valuation =
        match terms with
        | [] -> Some valuation
        | Ast.Const c :: rest ->
          if Value.equal c tup.(i) then go (i + 1) rest valuation else None
        | Ast.Var v :: rest -> (
          match Valuation.find v valuation with
          | Some value ->
            if Value.equal value tup.(i) then go (i + 1) rest valuation else None
          | None -> go (i + 1) rest (Valuation.bind v tup.(i) valuation))
      in
      go 0 a.Ast.terms valuation
  in
  let rec go valuation order acc =
    match order with
    | [] ->
      if Valuation.satisfies_diseq valuation p.query then
        Instance.add (Valuation.head_fact valuation p.query) acc
      else acc
    | ((a, _) as step) :: rest ->
      List.fold_left
        (fun acc tup ->
          match match_tuple valuation a tup with
          | Some valuation -> go valuation rest acc
          | None -> acc)
        acc
        (candidates valuation step)
  in
  let result = go Valuation.empty p.order Instance.empty in
  (result, !fetched)
