(** Valuations: total functions from query variables to domain values
    (Section 2 of the paper). *)

open Lamp_relational

type t

val empty : t
val bind : string -> Value.t -> t -> t
val find : string -> t -> Value.t option
val mem : string -> t -> bool
val of_list : (string * Value.t) list -> t
val to_list : t -> (string * Value.t) list

exception Unbound of string

val term : t -> Ast.term -> Value.t
(** @raise Unbound when the term is a variable outside the valuation's
    domain. *)

val atom : t -> Ast.atom -> Fact.t
(** Applies the valuation to an atom, producing a fact.
    @raise Unbound as {!term}. *)

val body_facts : t -> Ast.t -> Instance.t
(** [body_facts v q] is [V(body_Q)]: the facts required by [v]. *)

val head_fact : t -> Ast.t -> Fact.t
(** The fact derived by the valuation. *)

val satisfies_diseq : t -> Ast.t -> bool
val satisfies_negation : t -> Ast.t -> Instance.t -> bool

val satisfies : t -> Ast.t -> Instance.t -> bool
(** [satisfies v q i]: all required facts are in [i], no negated atom is
    in [i], and all inequalities hold. Returns [false] (rather than
    raising) when [v] does not bind all body variables. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t

val enumerate :
  vars:string list -> universe:Value.t list -> (t -> unit) -> unit
(** Calls the continuation on every total valuation of [vars] into
    [universe] — the brute-force enumeration at the heart of the Πᵖ₂
    checks of Section 4. With an empty universe and nonempty [vars],
    there is no valuation and the continuation is never called. *)
