(** Horizontal distributions: assignments of the global database to the
    nodes whose union recovers the whole input (Section 5.1). *)

open Lamp_relational
open Lamp_distribution

val round_robin : p:int -> Instance.t -> Instance.t array
val full_replication : p:int -> Instance.t -> Instance.t array
(** The "ideal" distribution used in the coordination-freeness proofs. *)

val random_split : rng:Random.State.t -> p:int -> Instance.t -> Instance.t array

val by_policy : Policy.t -> Instance.t -> Instance.t array
(** The distribution induced by a policy's responsibility function.
    @raise Invalid_argument when some fact of the instance belongs to no
    node (a horizontal distribution must cover the input). *)
