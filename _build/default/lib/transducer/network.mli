(** Relational transducer networks (Section 5.1 of the paper).

    Every node runs the same program over its share of a horizontally
    distributed database, holds a working memory and a write-only output
    relation, and communicates by broadcasting facts whose delivery may
    be delayed arbitrarily (modelled by letting the scheduler pick any
    buffered message). Messages are never lost. *)

open Lamp_relational
open Lamp_distribution

type node_state = {
  ctx : Program.context;
  local : Instance.t;  (** The node's share of the input (immutable). *)
  mutable memory : Instance.t;
  mutable output : Instance.t;  (** Write-only: only ever grows. *)
  mutable inbox : Fact.t list;
}

type t

val create :
  ?policy:Policy.t ->
  ?assignment:(Value.t -> Node.Set.t) ->
  ?oblivious:bool ->
  Program.t ->
  Instance.t array ->
  t
(** A network with one node per element of the distribution array.
    [policy] enables policy-aware contexts (F1), [assignment] enables
    domain-guided value queries (F2), and [oblivious:true] removes the
    [All] relation (the classes A0/A1/A2).
    @raise Invalid_argument when an [All]-dependent program is run
    obliviously, or on an empty network. *)

val size : t -> int
val node : t -> int -> node_state

val output : t -> Instance.t
(** The union of all nodes' outputs — the network's (partial) answer. *)

val messages_in_flight : t -> int
val deliveries : t -> int

val data_deliveries : t -> int
(** Deliveries of plain data facts, excluding the programs' bookkeeping
    (protocol) messages — the transmission metric of the economical
    broadcasting comparison. *)

val heartbeats : t -> int

val deliver : t -> int -> int -> unit
(** [deliver t i k] lets node [i] read the [k]-th message in its buffer
    (the scheduler's choice models arbitrary delay). *)

val heartbeat : t -> int -> unit
(** A transition in which the node reads no message. *)
