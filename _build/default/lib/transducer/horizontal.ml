open Lamp_relational
open Lamp_distribution

let round_robin ~p instance =
  if p < 1 then invalid_arg "Horizontal.round_robin: p < 1";
  let locals = Array.make p Instance.empty in
  List.iteri
    (fun k f -> locals.(k mod p) <- Instance.add f locals.(k mod p))
    (Instance.facts instance);
  locals

let full_replication ~p instance =
  if p < 1 then invalid_arg "Horizontal.full_replication: p < 1";
  Array.make p instance

let random_split ~rng ~p instance =
  if p < 1 then invalid_arg "Horizontal.random_split: p < 1";
  let locals = Array.make p Instance.empty in
  Instance.iter
    (fun f ->
      let i = Random.State.int rng p in
      locals.(i) <- Instance.add f locals.(i))
    instance;
  locals

let by_policy policy instance =
  let nodes = Policy.nodes policy in
  let locals =
    Array.of_list (List.map (Policy.loc_inst policy instance) nodes)
  in
  let union = Array.fold_left Instance.union Instance.empty locals in
  if not (Instance.equal union instance) then
    invalid_arg
      "Horizontal.by_policy: the policy does not cover the instance (some \
       fact belongs to no node)";
  locals
