open Lamp_relational

let sent_marker = Program.meta "sent" []

let with_message memory = function
  | Program.Message f -> Instance.add f memory
  | Program.Heartbeat -> memory

(* Broadcast the local database once, then raise nothing but outputs.
   Shared first phase of most strategies below. *)
let broadcast_local_once ~local ~memory =
  if Instance.mem sent_marker memory then (memory, [])
  else
    (Instance.add sent_marker memory, Instance.facts (Program.data_part local))

(* Example 5.1(1): the naive broadcast strategy, correct exactly for
   monotone queries (Theorem 5.3): output Q over everything known so
   far; new facts can only extend the output. *)
let monotone_broadcast ~name ~eval =
  {
    Program.name;
    needs_all = false;
    init = (fun _ local -> local);
    step =
      (fun _ ~local ~memory event ->
        let memory = with_message memory event in
        let memory, broadcast = broadcast_local_once ~local ~memory in
        let output = Instance.facts (eval (Program.data_part memory)) in
        { Program.memory; output; broadcast });
  }

(* Example 5.1(2): a coordination protocol for arbitrary queries. Every
   node broadcasts its data tagged with its name plus a count; a node
   that has, for every network node, as many tagged facts as announced
   knows the complete database and outputs Q(I). Requires All. *)
let coordinated ~name ~eval =
  let data_tag = "data" and done_tag = "done" in
  let encode self f =
    Program.meta data_tag
      (Value.int self :: Value.str (Fact.rel f) :: Array.to_list (Fact.args f))
  in
  let decode f =
    match Array.to_list (Fact.args f) with
    | _ :: Value.Str rel :: args -> Fact.of_list rel args
    | _ -> invalid_arg "coordinated: malformed data message"
  in
  {
    Program.name;
    needs_all = true;
    init = (fun _ local -> local);
    step =
      (fun ctx ~local ~memory event ->
        let memory = with_message memory event in
        let memory, broadcast =
          if Instance.mem sent_marker memory then (memory, [])
          else
            let data = Instance.facts (Program.data_part local) in
            ( Instance.add sent_marker memory,
              List.map (encode ctx.Program.self) data
              @ [
                  Program.meta done_tag
                    [ Value.int ctx.Program.self; Value.int (List.length data) ];
                ] )
        in
        let all = Option.value ~default:[] ctx.Program.all in
        let counts = Hashtbl.create 8 in
        let announced = Hashtbl.create 8 in
        Instance.iter
          (fun f ->
            if Program.is_meta_rel data_tag f then begin
              match (Fact.args f).(0) with
              | Value.Int sender ->
                Hashtbl.replace counts sender
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts sender))
              | Value.Str _ -> ()
            end
            else if Program.is_meta_rel done_tag f then begin
              match (Fact.args f).(0), (Fact.args f).(1) with
              | Value.Int sender, Value.Int n -> Hashtbl.replace announced sender n
              | _ -> ()
            end)
          memory;
        let complete =
          List.for_all
            (fun k ->
              k = ctx.Program.self
              ||
              match Hashtbl.find_opt announced k with
              | Some n -> Option.value ~default:0 (Hashtbl.find_opt counts k) = n
              | None -> false)
            all
        in
        let output =
          if complete then begin
            let global =
              Instance.fold
                (fun f acc ->
                  if Program.is_meta_rel data_tag f then Instance.add (decode f) acc
                  else acc)
                memory
                (Program.data_part local)
            in
            Instance.facts (eval global)
          end
          else []
        in
        { Program.memory; output; broadcast });
  }

(* The generic Mdistinct strategy (Theorem 5.8): policy-aware nodes can
   decide membership of any fact over their known values that they are
   responsible for, so they output Q restricted to a distinct-complete
   value set: one where every candidate fact over the set is either
   known present or known absent. *)
let policy_aware_distinct ~name ~schema ~eval =
  let candidate_facts values =
    let values = Value.Set.elements values in
    let rec tuples arity =
      if arity = 0 then [ [] ]
      else
        let rest = tuples (arity - 1) in
        List.concat_map (fun v -> List.map (fun t -> v :: t) rest) values
    in
    List.concat_map
      (fun (rel, arity) -> List.map (Fact.of_list rel) (tuples arity))
      (Schema.to_list schema)
  in
  let largest_complete_set ~known ~responsible =
    let status f =
      if Instance.mem f known then `Present
      else if responsible f then `Absent
      else `Unknown
    in
    let rec shrink values =
      let unknown =
        List.find_opt
          (fun f -> status f = `Unknown)
          (candidate_facts values)
      in
      match unknown with
      | None -> values
      | Some f -> (
        match Value.Set.max_elt_opt (Fact.adom f) with
        | Some v -> shrink (Value.Set.remove v values)
        | None -> values)
    in
    shrink (Instance.adom known)
  in
  {
    Program.name;
    needs_all = false;
    init = (fun _ local -> local);
    step =
      (fun ctx ~local ~memory event ->
        let memory = with_message memory event in
        let memory, broadcast = broadcast_local_once ~local ~memory in
        let responsible =
          Option.value ~default:(fun _ -> false) ctx.Program.responsible
        in
        let known = Program.data_part memory in
        let c = largest_complete_set ~known ~responsible in
        let output = Instance.facts (eval (Instance.restrict c known)) in
        { Program.memory; output; broadcast });
  }

(* Example 5.4: the open-triangle query on a policy-aware network.
   Unlike the generic distinct-complete strategy, this per-query program
   is complete under any covering policy: the node responsible for the
   would-be closing edge E(c,a) certifies its absence. *)
let open_triangle_policy_aware ~name =
  let q = Lamp_cq.Parser.query "H2(x,y,z) <- E(x,y), E(y,z)" in
  {
    Program.name;
    needs_all = false;
    init = (fun _ local -> local);
    step =
      (fun ctx ~local ~memory event ->
        let memory = with_message memory event in
        let memory, broadcast = broadcast_local_once ~local ~memory in
        let responsible =
          Option.value ~default:(fun _ -> false) ctx.Program.responsible
        in
        let known = Program.data_part memory in
        let output =
          Instance.fold
            (fun f acc ->
              let args = Fact.args f in
              let closing = Fact.of_list "E" [ args.(2); args.(0) ] in
              (* κ ∈ P_H(E(c,a)) means E(c,a) ∈ I iff it is local. *)
              if responsible closing && not (Instance.mem closing local) then
                Fact.of_list "H" (Array.to_list args) :: acc
              else acc)
            (Lamp_cq.Eval.eval q known)
            []
        in
        { Program.memory; output; broadcast });
  }

(* Economical broadcasting for full CQs without self-joins
   (Ketsman–Neven [37], Section 6): instead of shipping all data, nodes
   first broadcast only the join-variable projections of their facts,
   and then ship a full fact only when every other atom of the query has
   a compatible projection somewhere in the network. Facts that cannot
   participate in any valuation are never transmitted.

   Correct for monotone evaluation: if a valuation V is satisfied by the
   global instance, each of its facts sees compatible projections of the
   others, so all of V's facts are eventually broadcast and every node
   derives V's head. *)
let semijoin_broadcast ~name ~query =
  if not (Lamp_cq.Ast.is_positive query) then
    invalid_arg "semijoin_broadcast: defined for positive CQs";
  if Lamp_cq.Ast.has_self_join query then
    invalid_arg "semijoin_broadcast: defined for queries without self-joins";
  let atoms = Array.of_list (Lamp_cq.Ast.body query) in
  let atom_vars i =
    List.sort_uniq String.compare (Lamp_cq.Ast.atom_vars atoms.(i))
  in
  let shared i j =
    List.filter (fun v -> List.mem v (atom_vars j)) (atom_vars i)
  in
  (* Match a fact against atom i, returning the variable binding. *)
  let match_atom i f =
    let a = atoms.(i) in
    if a.Lamp_cq.Ast.rel <> Fact.rel f then None
    else if List.length a.Lamp_cq.Ast.terms <> Fact.arity f then None
    else begin
      let args = Fact.args f in
      let binding = Hashtbl.create 4 in
      let ok = ref true in
      List.iteri
        (fun k term ->
          match term with
          | Lamp_cq.Ast.Const c ->
            if not (Value.equal c args.(k)) then ok := false
          | Lamp_cq.Ast.Var v -> (
            match Hashtbl.find_opt binding v with
            | Some prev -> if not (Value.equal prev args.(k)) then ok := false
            | None -> Hashtbl.add binding v args.(k)))
        a.Lamp_cq.Ast.terms;
      if !ok then Some binding else None
    end
  in
  (* Projection message of atom i's fact onto its variables, in sorted
     variable order. *)
  let projection i binding =
    Program.meta "proj"
      (Value.int i :: List.map (Hashtbl.find binding) (atom_vars i))
  in
  let sent_fact f =
    Program.meta "shipped" (Value.str (Fact.rel f) :: Array.to_list (Fact.args f))
  in
  {
    Program.name;
    needs_all = false;
    init = (fun _ local -> local);
    step =
      (fun _ ~local ~memory event ->
        let memory = with_message memory event in
        (* Phase 1: projections of all local facts, once. *)
        let memory, phase1 =
          if Instance.mem sent_marker memory then (memory, [])
          else
            ( Instance.add sent_marker memory,
              Instance.fold
                (fun f acc ->
                  List.concat
                    (List.init (Array.length atoms) (fun i ->
                         match match_atom i f with
                         | Some binding -> [ projection i binding ]
                         | None -> []))
                  @ acc)
                (Program.data_part local) [] )
        in
        (* A node's own projections count as known: store them in memory
           alongside the received ones. *)
        let memory =
          List.fold_left (fun m p -> Instance.add p m) memory phase1
        in
        (* Phase 2: ship a local fact for atom i once every other atom
           has a compatible projection among the known ones. *)
        let projections i =
          Instance.fold
            (fun f acc ->
              if
                Program.is_meta_rel "proj" f
                && Value.equal (Fact.args f).(0) (Value.int i)
              then Array.to_list (Array.sub (Fact.args f) 1 (Fact.arity f - 1)) :: acc
              else acc)
            memory []
        in
        let compatible i binding j =
          (* Some projection of atom j agrees with atom i's binding on
             their shared variables. *)
          let vars_j = atom_vars j in
          List.exists
            (fun proj ->
              List.for_all2
                (fun v value ->
                  if List.mem v (shared i j) then
                    Value.equal value (Hashtbl.find binding v)
                  else true)
                vars_j proj)
            (projections j)
        in
        let to_ship = ref [] in
        let memory = ref memory in
        Instance.iter
          (fun f ->
            if not (Instance.mem (sent_fact f) !memory) then begin
              let ship =
                List.exists
                  (fun i ->
                    match match_atom i f with
                    | None -> false
                    | Some binding ->
                      List.for_all
                        (fun j -> j = i || compatible i binding j)
                        (List.init (Array.length atoms) (fun j -> j)))
                  (List.init (Array.length atoms) (fun i -> i))
              in
              if ship then begin
                to_ship := f :: !to_ship;
                memory := Instance.add (sent_fact f) !memory
              end
            end)
          (Program.data_part local);
        let known = Program.data_part !memory in
        let output = Instance.facts (Lamp_cq.Eval.eval query known) in
        { Program.memory = !memory; output; broadcast = phase1 @ !to_ship });
  }

(* The Mdisjoint strategy for domain-guided distributions (Theorem
   5.12): a node of α(a) holds every fact containing a, announces a as
   complete, and ships those facts. A connected component of the known
   facts all of whose values are complete is a true component of the
   global instance; Q may be evaluated on unions of settled
   components. *)
let domain_guided_disjoint ~name ~eval =
  let complete_tag = "complete" in
  {
    Program.name;
    needs_all = false;
    init = (fun _ local -> local);
    step =
      (fun ctx ~local ~memory event ->
        let memory = with_message memory event in
        let responsible_value =
          Option.value ~default:(fun _ -> false) ctx.Program.responsible_value
        in
        let facts_containing i v =
          Instance.filter (fun f -> Value.Set.mem v (Fact.adom f)) i
        in
        let memory, broadcast =
          if Instance.mem sent_marker memory then (memory, [])
          else begin
            let data = Instance.facts (Program.data_part local) in
            (* The marker carries the number of facts containing the
               value: a receiver may only treat the value as complete
               once that many facts have actually arrived, since the
               marker can overtake the data under arbitrary delay. *)
            let markers =
              Value.Set.fold
                (fun v acc ->
                  if responsible_value v then
                    Program.meta complete_tag
                      [
                        v;
                        Value.int
                          (Instance.cardinal
                             (facts_containing (Program.data_part local) v));
                      ]
                    :: acc
                  else acc)
                (Instance.adom (Program.data_part local))
                []
            in
            (Instance.add sent_marker memory, data @ markers)
          end
        in
        let known = Program.data_part memory in
        let complete v =
          responsible_value v
          || Instance.mem
               (Program.meta complete_tag
                  [ v; Value.int (Instance.cardinal (facts_containing known v)) ])
               memory
        in
        let settled =
          List.filter
            (fun comp -> Value.Set.for_all complete (Instance.adom comp))
            (Adom.components known)
        in
        let settled_union =
          List.fold_left Instance.union Instance.empty settled
        in
        let output = Instance.facts (eval settled_union) in
        { Program.memory; output; broadcast });
  }
