(** Schedulers for transducer networks.

    A run is an infinite fair sequence of transitions; finitely many of
    them matter because computations are generic and inputs finite, so
    the schedulers below run to {e quiescence}: no messages in flight
    and a full heartbeat sweep changing nothing. Randomized and
    adversarial (FIFO/LIFO) message orders realize the model's arbitrary
    message delay. *)

open Lamp_relational

type schedule =
  | Random_fair of int  (** Seeded random node and message choice. *)
  | Fifo  (** Round-robin nodes, oldest message first. *)
  | Lifo  (** Round-robin nodes, newest message first. *)

exception Did_not_quiesce

val heartbeat_sweep : Network.t -> bool
(** Heartbeats every node once; true when any memory, output, or buffer
    changed. *)

val drain :
  ?schedule:schedule -> ?max_transitions:int -> Network.t -> Instance.t
(** Runs the network to quiescence and returns the union of outputs —
    the eventually consistent answer of the run.
    @raise Did_not_quiesce beyond [max_transitions] (default 200000). *)

val run_silent : ?max_sweeps:int -> Network.t -> Instance.t
(** Heartbeat-only run: no node ever reads its buffer. The
    coordination-freeness witness: a program is coordination-free on an
    ideal distribution when this equals the query answer. *)
