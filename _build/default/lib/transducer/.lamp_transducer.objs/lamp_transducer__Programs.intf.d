lib/transducer/programs.mli: Instance Lamp_cq Lamp_relational Program Schema
