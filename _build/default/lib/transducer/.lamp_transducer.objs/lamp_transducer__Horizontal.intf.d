lib/transducer/horizontal.mli: Instance Lamp_distribution Lamp_relational Policy Random
