lib/transducer/network.mli: Fact Instance Lamp_distribution Lamp_relational Node Policy Program Value
