lib/transducer/programs.ml: Adom Array Fact Hashtbl Instance Lamp_cq Lamp_relational List Option Program Schema String Value
