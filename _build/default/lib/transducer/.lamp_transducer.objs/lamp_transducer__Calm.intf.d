lib/transducer/calm.mli: Fmt Instance Lamp_relational Network Scheduler
