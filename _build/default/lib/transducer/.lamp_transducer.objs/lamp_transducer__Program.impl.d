lib/transducer/program.ml: Fact Instance Lamp_distribution Lamp_relational Node String Value
