lib/transducer/scheduler.ml: Array Instance Lamp_relational List Network Random
