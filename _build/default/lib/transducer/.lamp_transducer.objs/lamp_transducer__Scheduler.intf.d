lib/transducer/scheduler.mli: Instance Lamp_relational Network
