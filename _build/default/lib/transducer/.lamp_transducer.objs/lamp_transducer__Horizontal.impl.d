lib/transducer/horizontal.ml: Array Instance Lamp_distribution Lamp_relational List Policy Random
