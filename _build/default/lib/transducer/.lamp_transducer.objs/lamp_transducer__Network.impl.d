lib/transducer/network.ml: Array Fact Fmt Instance Lamp_distribution Lamp_relational List Node Option Policy Program
