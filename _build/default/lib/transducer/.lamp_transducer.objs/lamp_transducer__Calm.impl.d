lib/transducer/calm.ml: Fmt Instance Lamp_relational Scheduler
