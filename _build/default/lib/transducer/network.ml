open Lamp_relational
open Lamp_distribution

type node_state = {
  ctx : Program.context;
  local : Instance.t;
  mutable memory : Instance.t;
  mutable output : Instance.t;
  mutable inbox : Fact.t list;
}

type t = {
  program : Program.t;
  nodes : node_state array;
  mutable deliveries : int;
  mutable data_deliveries : int;
  mutable heartbeats : int;
}

let create ?policy ?assignment ?(oblivious = false) program locals =
  let p = Array.length locals in
  if p = 0 then invalid_arg "Network.create: empty network";
  if program.Program.needs_all && oblivious then
    invalid_arg
      (Fmt.str "Network.create: program %s needs the All relation"
         program.Program.name);
  let make_node i =
    let ctx =
      {
        Program.self = i;
        all = (if oblivious then None else Some (Node.range p));
        responsible =
          Option.map (fun pol -> fun f -> Policy.responsible pol i f) policy;
        responsible_value =
          Option.map (fun a -> fun v -> Node.Set.mem i (a v)) assignment;
      }
    in
    {
      ctx;
      local = locals.(i);
      memory = program.Program.init ctx locals.(i);
      output = Instance.empty;
      inbox = [];
    }
  in
  {
    program;
    nodes = Array.init p make_node;
    deliveries = 0;
    data_deliveries = 0;
    heartbeats = 0;
  }

let size t = Array.length t.nodes
let node t i = t.nodes.(i)

let output t =
  Array.fold_left
    (fun acc n -> Instance.union acc n.output)
    Instance.empty t.nodes

let messages_in_flight t =
  Array.fold_left (fun acc n -> acc + List.length n.inbox) 0 t.nodes

let deliveries t = t.deliveries
let data_deliveries t = t.data_deliveries
let heartbeats t = t.heartbeats

let apply t i event =
  let n = t.nodes.(i) in
  let action =
    t.program.Program.step n.ctx ~local:n.local ~memory:n.memory event
  in
  n.memory <- action.Program.memory;
  n.output <-
    List.fold_left (fun acc f -> Instance.add f acc) n.output
      action.Program.output;
  if action.Program.broadcast <> [] then
    Array.iteri
      (fun j other ->
        if j <> i then
          other.inbox <- other.inbox @ action.Program.broadcast)
      t.nodes;
  (match event with
  | Program.Message m ->
    t.deliveries <- t.deliveries + 1;
    if not (Program.is_meta m) then
      t.data_deliveries <- t.data_deliveries + 1
  | Program.Heartbeat -> t.heartbeats <- t.heartbeats + 1)

(* Deliver the [k]-th buffered message of node [i] (arbitrary-delay
   semantics: the scheduler chooses any buffered message). *)
let deliver t i k =
  let n = t.nodes.(i) in
  match List.nth_opt n.inbox k with
  | None -> invalid_arg "Network.deliver: no such message"
  | Some msg ->
    n.inbox <- List.filteri (fun j _ -> j <> k) n.inbox;
    apply t i (Program.Message msg)

let heartbeat t i = apply t i Program.Heartbeat
