(** The transducer programs of Section 5, one per class of the CALM
    hierarchy.

    Each program is parameterized by the query it computes, supplied as
    a generic evaluation function [Instance.t -> Instance.t] — the model
    allows arbitrary computable, generic local computation. *)

open Lamp_relational

val monotone_broadcast :
  name:string -> eval:(Instance.t -> Instance.t) -> Program.t
(** Example 5.1(1): broadcast the local data once and output the query
    over everything known. Computes exactly the monotone queries
    (Theorem 5.3, F0 = A0 = M); needs neither [All] nor the policy. *)

val coordinated : name:string -> eval:(Instance.t -> Instance.t) -> Program.t
(** Example 5.1(2): a coordination protocol correct for {e any} query —
    nodes announce how many facts they will send and everyone waits for
    full counts from every network member before outputting. Needs
    [All]; deliberately {e not} coordination-free. *)

val policy_aware_distinct :
  name:string -> schema:Schema.t -> eval:(Instance.t -> Instance.t) ->
  Program.t
(** The generic strategy for domain-distinct-monotone queries on
    policy-aware networks (Theorem 5.8, F1 = A1 = Mdistinct): output the
    query restricted to a distinct-complete set of values — one over
    which every candidate fact of [schema] is either known present or,
    by responsibility, known absent.

    Always sound; complete when the policy co-locates value
    neighbourhoods (e.g. one node responsible for all facts over a value
    set, or full responsibility everywhere). Under policies scattering
    absent-fact responsibility, no single node accumulates a useful
    distinct-complete set and per-query programs such as
    {!open_triangle_policy_aware} — the route taken by the full proof of
    Theorem 5.8 — are needed. *)

val open_triangle_policy_aware : name:string -> Program.t
(** Example 5.4 verbatim: outputs H(a,b,c) when E(a,b) and E(b,c) are
    known and this node is responsible for the absent closing edge
    E(c,a). Complete under every covering policy; coordination-free. *)

val semijoin_broadcast : name:string -> query:Lamp_cq.Ast.t -> Program.t
(** Economical broadcasting for full CQs without self-joins
    (Ketsman–Neven [37], discussed in Section 6): nodes first broadcast
    only join-variable projections of their facts and ship a full fact
    only once every other atom of the query has a compatible projection
    in the network — facts that cannot join are never transmitted.
    Computes the query like {!monotone_broadcast} but with fewer data
    messages on selective inputs.
    @raise Invalid_argument on non-positive queries or self-joins. *)

val domain_guided_disjoint :
  name:string -> eval:(Instance.t -> Instance.t) -> Program.t
(** The strategy for domain-disjoint-monotone queries under
    domain-guided distributions (Theorem 5.12, F2 = A2 = Mdisjoint):
    nodes announce the values they are responsible for as complete and
    ship their facts; the query runs on unions of settled connected
    components. *)
