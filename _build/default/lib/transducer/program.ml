open Lamp_relational
open Lamp_distribution

type context = {
  self : Node.t;  (** This node's name. *)
  all : Node.t list option;
      (** The [All] relation: names of every node in the network; [None]
          for oblivious networks (the classes A0/A1/A2). *)
  responsible : (Fact.t -> bool) option;
      (** Policy-awareness: whether this node is responsible for a fact
          under the distribution policy; [None] for policy-oblivious
          networks (F0). *)
  responsible_value : (Value.t -> bool) option;
      (** Domain-guided policy-awareness: whether this node is in α(a)
          for a value (F2 networks). *)
}

type event =
  | Message of Fact.t
  | Heartbeat

type action = {
  memory : Instance.t;  (** Replaces the node's working memory. *)
  output : Fact.t list;  (** Appended to the write-only output. *)
  broadcast : Fact.t list;  (** Sent to every other node's buffer. *)
}

type t = {
  name : string;
  needs_all : bool;
      (** Whether the program reads the [All] relation; programs with
          [needs_all = false] witness membership in the oblivious
          classes. *)
  init : context -> Instance.t -> Instance.t;
      (** Initial memory from the local database. *)
  step : context -> local:Instance.t -> memory:Instance.t -> event -> action;
}

(* Reserved relation prefix for bookkeeping facts a program stores in
   its memory or sends as protocol messages; they are never part of a
   query's input or output. *)
let meta_prefix = "\005"

let is_meta f = String.length (Fact.rel f) > 0 && (Fact.rel f).[0] = '\005'
let data_part i = Instance.filter (fun f -> not (is_meta f)) i
let meta rel args = Fact.of_list (meta_prefix ^ rel) args
let is_meta_rel rel f = Fact.rel f = meta_prefix ^ rel
