open Lamp_cq
module Smap = Map.Make (String)
module Sset = Set.Make (String)

exception Not_stratifiable of string

(* Stratum numbers by fixpoint: a head predicate sits at least as high
   as every positive IDB body predicate and strictly higher than every
   negated IDB body predicate. Divergence beyond the predicate count
   witnesses a negative cycle. *)
let strata program =
  let idb = Sset.of_list (Program.idb program) in
  let n = Sset.cardinal idb in
  let stratum = ref (Sset.fold (fun p acc -> Smap.add p 0 acc) idb Smap.empty) in
  let get p = Option.value ~default:0 (Smap.find_opt p !stratum) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        let head = (Ast.head r).Ast.rel in
        let bump target =
          if target > get head then begin
            if target > n then
              raise
                (Not_stratifiable
                   (Fmt.str "cycle through negation involving %s" head));
            stratum := Smap.add head target !stratum;
            changed := true
          end
        in
        List.iter
          (fun (a : Ast.atom) ->
            if Sset.mem a.Ast.rel idb then bump (get a.Ast.rel))
          (Ast.body r);
        List.iter
          (fun (a : Ast.atom) ->
            if Sset.mem a.Ast.rel idb then bump (get a.Ast.rel + 1))
          (Ast.negated r))
      (Program.rules program)
  done;
  !stratum

let is_stratifiable program =
  match strata program with
  | _ -> true
  | exception Not_stratifiable _ -> false

(* Rules grouped by the stratum of their head, in evaluation order. *)
let layers program =
  let stratum = strata program in
  let get p = Option.value ~default:0 (Smap.find_opt p stratum) in
  let max_stratum =
    Smap.fold (fun _ s acc -> max s acc) stratum 0
  in
  List.init (max_stratum + 1) (fun level ->
      List.filter
        (fun r -> get (Ast.head r).Ast.rel = level)
        (Program.rules program))
  |> List.filter (fun rules -> rules <> [])

let stratum_of program pred =
  Smap.find_opt pred (strata program)
