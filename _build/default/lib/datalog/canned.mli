(** The Datalog programs discussed in the paper, ready to run. *)

val transitive_closure : Program.t
(** Positive TC over an edge relation [E]; output [TC]. *)

val complement_tc : Program.t
(** Example 5.13: Q¬TC — the complement of transitive closure; output
    [OUT]. Semi-connected stratified, hence in Mdisjoint (Figure 2). *)

val no_triangle : Program.t
(** Example 5.13: QNT — returns [E] when the graph has no three-node
    triangle; output [OUT]. Stratified but {e not} semi-connected (the
    [S] rule is disconnected below the top stratum); not in
    Mdisjoint. *)

val win_move : Program.t
(** Win–move under the well-founded semantics; output [Win]. *)

val non_edges : Program.t
(** Semi-positive example: the complement of [E] on the active domain;
    output [OUT]. In Mdistinct. *)

val same_generation : Program.t
(** Classic recursive benchmark over [Flat]/[Up]/[Down]; output [SG]. *)
