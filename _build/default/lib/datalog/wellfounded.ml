open Lamp_relational
module Datalog_eval = Eval
open Lamp_cq
module Sset = Set.Make (String)

let neg_prefix = "\004assumed_"

type result = {
  true_facts : Instance.t;
  undefined : Instance.t;
}

(* Least fixpoint of the program where every negated IDB atom ¬R(t̄) is
   tested against a fixed assumed set: ¬R(t̄) holds iff R(t̄) ∉ assumed.
   Negations over EDB relations keep their usual meaning. With the
   assumed set fixed, the transformed program is monotone in its IDB, so
   the naive fixpoint applies. *)
let lfp_against program instance assumed =
  let idb = Sset.of_list (Program.idb program) in
  let transform r =
    let negated_idb, negated_edb =
      List.partition
        (fun (a : Ast.atom) -> Sset.mem a.Ast.rel idb)
        (Ast.negated r)
    in
    let renamed =
      List.map
        (fun (a : Ast.atom) -> Ast.atom (neg_prefix ^ a.Ast.rel) a.Ast.terms)
        negated_idb
    in
    Ast.make
      ~negated:(negated_edb @ renamed)
      ~diseq:(Ast.diseq r) ~head:(Ast.head r) ~body:(Ast.body r) ()
  in
  let rules = List.map transform (Program.rules program) in
  let assumed_renamed =
    Instance.fold
      (fun f acc ->
        if Sset.mem (Fact.rel f) idb then
          Instance.add (Fact.make (neg_prefix ^ Fact.rel f) (Fact.args f)) acc
        else acc)
      assumed Instance.empty
  in
  let db = Instance.union instance assumed_renamed in
  let rec iterate db =
    let additions =
      List.fold_left
        (fun acc r -> Instance.union acc (Lamp_cq.Eval.eval r db))
        Instance.empty rules
    in
    if Instance.subset additions db then db
    else iterate (Instance.union db additions)
  in
  let final = iterate db in
  (* Keep only genuine facts: drop the assumed-set bookkeeping. *)
  Instance.filter
    (fun f -> not (String.length (Fact.rel f) > 0 && (Fact.rel f).[0] = '\004'))
    final

(* Alternating fixpoint: underestimates and overestimates converge to
   the well-founded model. *)
let well_founded program instance =
  let instance =
    if Program.uses_adom program then Datalog_eval.materialize_adom instance
    else instance
  in
  let idb = Sset.of_list (Program.idb program) in
  let idb_part i = Instance.filter (fun f -> Sset.mem (Fact.rel f) idb) i in
  let rec alternate under =
    let over = lfp_against program instance under in
    let under' = lfp_against program instance over in
    if Instance.equal (idb_part under') (idb_part under) then (under', over)
    else alternate under'
  in
  let under, over = alternate Instance.empty in
  {
    true_facts = under;
    undefined = Instance.diff (idb_part over) (idb_part under);
  }

let query program ~output instance =
  let r = well_founded program instance in
  ( Instance.filter (fun f -> Fact.rel f = output) r.true_facts,
    Instance.filter (fun f -> Fact.rel f = output) r.undefined )
