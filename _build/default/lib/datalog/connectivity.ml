open Lamp_cq
module Sset = Set.Make (String)

(* Connectedness of a rule: the graph whose nodes are the positive body
   atoms, with an edge between atoms sharing a variable, is connected. *)
let rule_connected r =
  match Ast.body r with
  | [] -> true
  | first :: _ as atoms ->
    let vars a = Sset.of_list (Ast.atom_vars a) in
    let rec reach seen frontier =
      let next =
        List.filter
          (fun a ->
            (not (List.memq a seen))
            && List.exists
                 (fun b -> not (Sset.disjoint (vars a) (vars b)))
                 frontier)
          atoms
      in
      if next = [] then seen else reach (next @ seen) next
    in
    let reached = reach [ first ] [ first ] in
    List.length reached = List.length atoms

let program_connected program =
  List.for_all rule_connected (Program.rules program)

(* Semi-connected (Section 5.3): stratified, and every stratum except
   possibly the last consists of connected rules. *)
let is_semi_connected program =
  match Stratify.layers program with
  | exception Stratify.Not_stratifiable _ -> false
  | layers ->
    let rec check = function
      | [] | [ _ ] -> true
      | layer :: rest -> List.for_all rule_connected layer && check rest
    in
    check layers

let disconnected_rules program =
  List.filter (fun r -> not (rule_connected r)) (Program.rules program)
