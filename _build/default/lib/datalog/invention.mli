(** Datalog with value invention — the wILOG family of Figure 2.

    A rule may use head variables that do not occur in its body; each
    such variable denotes an {e invented} value, functional in the rule
    and the body valuation (ILOG semantics: re-deriving the same body
    re-uses the same value). Cabibbo showed Datalog(≠) with invention
    captures the monotone queries, semi-positive wILOG captures
    Mdistinct, and [18] that semi-connected wILOG captures Mdisjoint —
    the three left-column entries of Figure 2.

    Invention makes programs Turing-expressive, so evaluation is capped
    and raises {!Diverged} past the limits. *)

open Lamp_relational
open Lamp_cq

type rule = private {
  head : Ast.atom;
  body : Ast.atom list;
  negated : Ast.atom list;
  diseq : (Ast.term * Ast.term) list;
  invented : string list;  (** Head variables not bound by the body. *)
  tag : string;  (** Skolem tag; distinct per rule. *)
}

exception Unsafe of string

val rule :
  ?negated:Ast.atom list ->
  ?diseq:(Ast.term * Ast.term) list ->
  tag:string ->
  head:Ast.atom ->
  body:Ast.atom list ->
  unit ->
  rule
(** Safety here only requires negated atoms and inequalities to be
    bound by the positive body; unbound {e head} variables become
    invented.
    @raise Unsafe otherwise. *)

type t

val make : rule list -> t
val parse : string -> t
(** Same line-based syntax as [Program.parse], safety relaxed to allow
    invention. *)

val rules : t -> rule list
val idb : t -> string list
val edb : t -> string list
val has_invention : t -> bool
val is_semi_positive : t -> bool
val rule_connected : rule -> bool
val program_connected : t -> bool

val is_invented_value : Value.t -> bool
(** Whether a value was minted by invention (Skolem values live in a
    reserved namespace). *)

exception Diverged of string

val run : ?max_facts:int -> ?max_rounds:int -> t -> Instance.t -> Instance.t
(** Stratified naive fixpoint with functional invention.
    @raise Diverged past the caps (defaults: 100000 facts, 10000
    rounds).
    @raise Stratify.Not_stratifiable on negative cycles. *)

val query :
  ?max_facts:int -> ?max_rounds:int -> t -> output:string -> Instance.t ->
  Instance.t
