open Lamp_relational

type query = {
  name : string;
  eval : Instance.t -> Instance.t;
}

let of_cq ?name cq =
  {
    name = (match name with Some n -> n | None -> Lamp_cq.Ast.to_string cq);
    eval = Lamp_cq.Eval.eval cq;
  }

let of_program ~name ~output program =
  { name; eval = (fun i -> Eval.query program ~output i) }

let of_wellfounded ~name ~output program =
  { name; eval = (fun i -> fst (Wellfounded.query program ~output i)) }

(* One observation of (a failure of) a monotonicity property. *)
type refutation = {
  base : Instance.t;
  extension : Instance.t;
  lost : Instance.t;
}

let check_pair q (i, j) =
  let before = q.eval i and after = q.eval (Instance.union i j) in
  if Instance.subset before after then Ok ()
  else Error { base = i; extension = j; lost = Instance.diff before after }

let monotone_on q pairs =
  let rec go = function
    | [] -> Ok ()
    | pair :: rest -> (
      match check_pair q pair with
      | Ok () -> go rest
      | Error r -> Error r)
  in
  go pairs

let distinct_monotone_on q pairs =
  monotone_on q
    (List.filter (fun (i, j) -> Adom.domain_distinct_from j i) pairs)

let disjoint_monotone_on q pairs =
  monotone_on q
    (List.filter (fun (i, j) -> Adom.domain_disjoint_from j i) pairs)

type verdict = {
  monotone : (unit, refutation) result;
  distinct_monotone : (unit, refutation) result;
  disjoint_monotone : (unit, refutation) result;
}

let classify q ~pairs =
  {
    monotone = monotone_on q pairs;
    distinct_monotone = distinct_monotone_on q pairs;
    disjoint_monotone = disjoint_monotone_on q pairs;
  }

let random_pairs ~rng ~schema ~count ~size ~domain =
  List.init count (fun _ ->
      let i = Generate.random_instance ~rng ~schema ~size ~domain () in
      let j =
        Generate.random_instance ~rng ~schema ~size ~domain:(2 * domain) ()
      in
      (i, j))

let class_name v =
  match v.monotone, v.distinct_monotone, v.disjoint_monotone with
  | Ok (), _, _ -> "M"
  | Error _, Ok (), _ -> "Mdistinct \\ M"
  | Error _, Error _, Ok () -> "Mdisjoint \\ Mdistinct"
  | Error _, Error _, Error _ -> "not Mdisjoint"
