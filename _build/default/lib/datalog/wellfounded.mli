(** Well-founded semantics by the alternating fixpoint.

    For programs whose negation is not stratified — the paper's win–move
    game [Win(x) ← Move(x,y), ¬Win(y)] is the canonical example — the
    well-founded model assigns each fact one of three values: true,
    false, or undefined (e.g. positions in a drawn cycle). Ameloot et
    al. [17] show semi-connected programs stay domain-disjoint-monotone
    under this semantics, which is how win–move lands in F2 (Section
    5.3). *)

open Lamp_relational

type result = {
  true_facts : Instance.t;  (** Input, derived, and [ADom] facts. *)
  undefined : Instance.t;  (** IDB facts with undefined truth value. *)
}

val well_founded : Program.t -> Instance.t -> result
(** Computes the well-founded model by alternating under- and
    overestimates; always terminates. *)

val query : Program.t -> output:string -> Instance.t -> Instance.t * Instance.t
(** [(true, undefined)] facts of one output relation. *)
