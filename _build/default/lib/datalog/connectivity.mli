(** Connectedness analysis (Section 5.3 / Figure 2).

    A rule is connected when the graph formed by its positive body atoms
    (sharing a variable = an edge) is connected; a stratified program is
    semi-connected when every stratum except possibly the last consists
    of connected rules. Semi-connected stratified Datalog captures the
    domain-disjoint-monotone queries, so this syntactic test is the
    membership check for the paper's largest coordination-free class. *)

val rule_connected : Program.rule -> bool

val program_connected : Program.t -> bool
(** All rules connected. *)

val is_semi_connected : Program.t -> bool
(** Stratifiable and connected in all strata but the last. Returns
    [false] (rather than raising) on non-stratifiable programs. *)

val disconnected_rules : Program.t -> Program.rule list
