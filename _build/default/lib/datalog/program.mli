(** Datalog programs (Section 5.3 of the paper).

    A rule is a safe conjunctive query — possibly with negated atoms and
    inequalities — whose head relation becomes intensional (IDB). The
    textual format is one rule per line, in the CQ syntax of
    [Lamp_cq.Parser]:
    {v
      TC(x,y) <- E(x,y)
      TC(x,y) <- TC(x,z), TC(z,y)
      OUT(x,y) <- ADom(x), ADom(y), !TC(x,y)
    v}
    The distinguished EDB relation [ADom] (the active domain) is
    materialized automatically by the evaluator when a program mentions
    it. *)

type rule = Lamp_cq.Ast.t

type t

val make : rule list -> t
(** @raise Invalid_argument on the empty program. *)

val rules : t -> rule list

val parse : string -> t
(** One rule per line; blank lines and lines starting with ['#'] are
    skipped.
    @raise Lamp_cq.Parser.Parse_error on malformed rules. *)

val idb : t -> string list
(** Relations defined by some rule head, sorted. *)

val edb : t -> string list
(** Relations read but never defined, sorted (includes [ADom] when
    used). *)

val uses_adom : t -> bool
val has_negation : t -> bool
val is_positive : t -> bool

val is_semi_positive : t -> bool
(** Negation applies to EDB relations only — the fragment shown in [4]
    to be domain-distinct-monotone (Figure 2). *)

val pp : t Fmt.t
