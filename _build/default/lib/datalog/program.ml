open Lamp_cq

(* A Datalog rule is exactly a safe CQ with optional negated atoms and
   inequalities, so rules reuse the CQ AST and its parser. *)
type rule = Ast.t

type t = {
  rules : rule list;
}

module Sset = Set.Make (String)

let make rules =
  if rules = [] then invalid_arg "Program.make: empty program";
  { rules }

let rules t = t.rules

let parse text =
  let lines =
    text
    |> String.split_on_char '\n'
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l >= 1 && l.[0] = '#'))
  in
  make (List.map Parser.query lines)

let idb t =
  List.fold_left
    (fun acc r -> Sset.add (Ast.head r).Ast.rel acc)
    Sset.empty t.rules
  |> Sset.elements

let edb t =
  let idb_set = Sset.of_list (idb t) in
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc (a : Ast.atom) ->
          if Sset.mem a.Ast.rel idb_set then acc else Sset.add a.Ast.rel acc)
        acc
        (Ast.body r @ Ast.negated r))
    Sset.empty t.rules
  |> Sset.elements

let uses_adom t = List.mem "ADom" (edb t)

let has_negation t = List.exists Ast.has_negation t.rules

let is_positive t =
  List.for_all (fun r -> Ast.negated r = []) t.rules

(* Semi-positive: negation only over EDB relations. *)
let is_semi_positive t =
  let idb_set = Sset.of_list (idb t) in
  List.for_all
    (fun r ->
      List.for_all
        (fun (a : Ast.atom) -> not (Sset.mem a.Ast.rel idb_set))
        (Ast.negated r))
    t.rules

let pp ppf t =
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any "@.") Ast.pp) t.rules
