let transitive_closure =
  Program.parse
    "TC(x,y) <- E(x,y)\n\
     TC(x,y) <- TC(x,z), TC(z,y)"

(* Example 5.13: the complement of transitive closure — semi-connected
   stratified (the OUT rule is disconnected, but it is the last
   stratum). *)
let complement_tc =
  Program.parse
    "TC(x,y) <- E(x,y)\n\
     TC(x,y) <- TC(x,z), TC(z,y)\n\
     OUT(x,y) <- ADom(x), ADom(y), !TC(x,y)"

(* Example 5.13, second program: QNT returns the edge relation when the
   graph has no (pairwise-distinct) triangle. The S rule is disconnected
   and sits below the last stratum, so the program is NOT
   semi-connected. *)
let no_triangle =
  Program.parse
    "T(x,y,z) <- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z\n\
     S(x) <- ADom(x), T(u,v,w)\n\
     OUT(x,y) <- E(x,y), !S(x)"

(* Win–move (Section 5.3 / [59]): a position wins when some move leads
   to a lost position. Not stratifiable; evaluated under the
   well-founded semantics. Connected. *)
let win_move = Program.parse "Win(x) <- Move(x,y), !Win(y)"

(* Semi-positive: negation over the EDB only. *)
let non_edges = Program.parse "OUT(x,y) <- ADom(x), ADom(y), !E(x,y)"

let same_generation =
  Program.parse
    "SG(x,y) <- Flat(x,y)\n\
     SG(x,y) <- Up(x,u), SG(u,v), Down(v,y)"
