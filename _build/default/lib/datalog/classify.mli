(** Empirical classification of queries into the paper's monotonicity
    hierarchy M ⊊ Mdistinct ⊊ Mdisjoint (Section 5.2).

    The classes are semantic (and undecidable in general), so the tools
    here are testers: a query is {e refuted} for a class by a witness
    pair of instances, and supported by surviving all supplied pairs.
    The paper's own witnesses (Examples 5.6 and 5.10) appear in
    [Canned]; the Figure 2 reproduction combines these testers with the
    syntactic checks of [Connectivity] and [Program]. *)

open Lamp_relational

type query = {
  name : string;
  eval : Instance.t -> Instance.t;
}

val of_cq : ?name:string -> Lamp_cq.Ast.t -> query
val of_program : name:string -> output:string -> Program.t -> query

val of_wellfounded : name:string -> output:string -> Program.t -> query
(** The query returning the {e true} facts of the well-founded model. *)

type refutation = {
  base : Instance.t;  (** The instance I. *)
  extension : Instance.t;  (** The added facts J. *)
  lost : Instance.t;  (** Facts of Q(I) missing from Q(I ∪ J). *)
}

val check_pair : query -> Instance.t * Instance.t -> (unit, refutation) result

val monotone_on :
  query -> (Instance.t * Instance.t) list -> (unit, refutation) result
(** Tests [Q(I) ⊆ Q(I ∪ J)] over the supplied pairs. *)

val distinct_monotone_on :
  query -> (Instance.t * Instance.t) list -> (unit, refutation) result
(** As {!monotone_on}, restricted to pairs where J is domain distinct
    from I (Definition 5.5). *)

val disjoint_monotone_on :
  query -> (Instance.t * Instance.t) list -> (unit, refutation) result
(** As {!monotone_on}, restricted to pairs where J is domain disjoint
    from I (Definition 5.9). *)

type verdict = {
  monotone : (unit, refutation) result;
  distinct_monotone : (unit, refutation) result;
  disjoint_monotone : (unit, refutation) result;
}

val classify : query -> pairs:(Instance.t * Instance.t) list -> verdict

val random_pairs :
  rng:Random.State.t ->
  schema:Schema.t ->
  count:int ->
  size:int ->
  domain:int ->
  (Instance.t * Instance.t) list

val class_name : verdict -> string
(** The smallest class of the hierarchy the verdict is consistent with,
    e.g. ["Mdistinct \\ M"]. *)
