(** Stratification of Datalog programs with negation.

    A program is stratified when its predicates can be layered so that
    recursion never passes through negation; stratified programs are
    evaluated stratum by stratum, treating lower strata as extensional. *)

module Smap : Map.S with type key = string

exception Not_stratifiable of string

val strata : Program.t -> int Smap.t
(** Minimal stratum number per IDB predicate.
    @raise Not_stratifiable on a negative cycle. *)

val is_stratifiable : Program.t -> bool

val layers : Program.t -> Program.rule list list
(** The program's rules grouped by head stratum, lowest first, empty
    layers removed.
    @raise Not_stratifiable on a negative cycle. *)

val stratum_of : Program.t -> string -> int option
