open Lamp_relational
open Lamp_cq
module Sset = Set.Make (String)

let delta_prefix = "\003delta_"

let materialize_adom instance =
  Value.Set.fold
    (fun v acc -> Instance.add (Fact.of_list "ADom" [ v ]) acc)
    (Instance.adom instance)
    instance

(* One naive fixpoint over a set of rules evaluated jointly: suitable
   for a single stratum (negation in these rules must refer to relations
   not defined by them, which stratification guarantees). *)
let naive_fixpoint rules db =
  let rec iterate db =
    let additions =
      List.fold_left
        (fun acc r -> Instance.union acc (Eval.eval r db))
        Instance.empty rules
    in
    if Instance.subset additions db then db
    else iterate (Instance.union db additions)
  in
  iterate db

(* Semi-naive fixpoint: each iteration evaluates, for every rule and
   every occurrence of a recursive predicate in its positive body, a
   variant where that occurrence reads only the last iteration's delta.
   Deltas are materialized under reserved relation names. *)
let seminaive_fixpoint rules db =
  let recursive =
    List.fold_left
      (fun acc r -> Sset.add (Ast.head r).Ast.rel acc)
      Sset.empty rules
  in
  let variants r =
    let body = Ast.body r in
    let rec_positions =
      List.filteri
        (fun _ (a : Ast.atom) -> Sset.mem a.Ast.rel recursive)
        body
      |> List.length
    in
    if rec_positions = 0 then []
    else
      List.concat
        (List.mapi
           (fun i (a : Ast.atom) ->
             if not (Sset.mem a.Ast.rel recursive) then []
             else
               [
                 Ast.make ~negated:(Ast.negated r) ~diseq:(Ast.diseq r)
                   ~head:(Ast.head r)
                   ~body:
                     (List.mapi
                        (fun j (b : Ast.atom) ->
                          if i = j then
                            Ast.atom (delta_prefix ^ b.Ast.rel) b.Ast.terms
                          else b)
                        body)
                   ();
               ])
           body)
  in
  let rule_variants = List.map (fun r -> (r, variants r)) rules in
  let rename_delta delta =
    Instance.fold
      (fun f acc ->
        Instance.add (Fact.make (delta_prefix ^ Fact.rel f) (Fact.args f)) acc)
      delta Instance.empty
  in
  (* First iteration: full evaluation. *)
  let initial =
    List.fold_left
      (fun acc r -> Instance.union acc (Eval.eval r db))
      Instance.empty rules
  in
  let rec iterate total delta =
    if Instance.is_empty delta then total
    else begin
      let view = Instance.union total (rename_delta delta) in
      let additions =
        List.fold_left
          (fun acc (_, vs) ->
            List.fold_left
              (fun acc v -> Instance.union acc (Eval.eval v view))
              acc vs)
          Instance.empty rule_variants
      in
      let fresh = Instance.diff additions total in
      iterate (Instance.union total fresh) fresh
    end
  in
  iterate (Instance.union db initial) (Instance.diff initial db)

type strategy =
  | Naive
  | Seminaive

let run ?(strategy = Seminaive) program instance =
  let db = if Program.uses_adom program then materialize_adom instance else instance in
  let layers = Stratify.layers program in
  let fixpoint =
    match strategy with
    | Naive -> naive_fixpoint
    | Seminaive -> seminaive_fixpoint
  in
  List.fold_left (fun db rules -> fixpoint rules db) db layers

let query ?strategy program ~output instance =
  let db = run ?strategy program instance in
  Instance.filter (fun f -> Fact.rel f = output) db
