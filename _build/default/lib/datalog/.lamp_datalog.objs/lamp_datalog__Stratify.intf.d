lib/datalog/stratify.mli: Map Program
