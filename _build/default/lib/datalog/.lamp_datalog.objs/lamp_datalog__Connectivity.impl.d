lib/datalog/connectivity.ml: Ast Lamp_cq List Program Set Stratify String
