lib/datalog/classify.ml: Adom Eval Generate Instance Lamp_cq Lamp_relational List Wellfounded
