lib/datalog/eval.ml: Ast Eval Fact Instance Lamp_cq Lamp_relational List Program Set Stratify String Value
