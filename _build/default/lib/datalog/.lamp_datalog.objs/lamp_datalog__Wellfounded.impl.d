lib/datalog/wellfounded.ml: Ast Eval Fact Instance Lamp_cq Lamp_relational List Program Set String
