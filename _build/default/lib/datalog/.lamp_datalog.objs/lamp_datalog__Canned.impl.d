lib/datalog/canned.ml: Program
