lib/datalog/wellfounded.mli: Instance Lamp_relational Program
