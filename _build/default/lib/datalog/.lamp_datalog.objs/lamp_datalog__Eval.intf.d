lib/datalog/eval.mli: Instance Lamp_relational Program
