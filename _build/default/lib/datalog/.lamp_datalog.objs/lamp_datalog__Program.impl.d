lib/datalog/program.ml: Ast Fmt Lamp_cq List Parser Set String
