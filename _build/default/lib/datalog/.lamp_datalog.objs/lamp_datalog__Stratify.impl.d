lib/datalog/stratify.ml: Ast Fmt Lamp_cq List Map Option Program Set String
