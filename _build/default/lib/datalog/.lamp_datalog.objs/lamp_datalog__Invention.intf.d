lib/datalog/invention.mli: Ast Instance Lamp_cq Lamp_relational Value
