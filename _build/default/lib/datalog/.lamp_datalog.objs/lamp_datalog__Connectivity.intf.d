lib/datalog/connectivity.mli: Program
