lib/datalog/program.mli: Fmt Lamp_cq
