lib/datalog/classify.mli: Instance Lamp_cq Lamp_relational Program Random Schema
