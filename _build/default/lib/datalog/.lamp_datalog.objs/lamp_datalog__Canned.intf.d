lib/datalog/canned.mli: Program
