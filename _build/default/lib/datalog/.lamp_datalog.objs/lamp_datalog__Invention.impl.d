lib/datalog/invention.ml: Ast Connectivity Eval Fact Fmt Instance Lamp_cq Lamp_relational List Map Option Parser Set Stratify String Valuation Value
