open Lamp_relational
module Datalog_eval = Eval
open Lamp_cq
module Sset = Set.Make (String)
module Smap = Map.Make (String)

type rule = {
  head : Ast.atom;
  body : Ast.atom list;
  negated : Ast.atom list;
  diseq : (Ast.term * Ast.term) list;
  invented : string list;
  tag : string;
}

exception Unsafe of string

let rule ?(negated = []) ?(diseq = []) ~tag ~head ~body () =
  let body_vars =
    List.fold_left
      (fun acc a -> Sset.union acc (Sset.of_list (Ast.atom_vars a)))
      Sset.empty body
  in
  let check_covered what atoms =
    List.iter
      (fun (a : Ast.atom) ->
        List.iter
          (fun v ->
            if not (Sset.mem v body_vars) then
              raise
                (Unsafe
                   (Fmt.str "variable %s of %s not bound by a positive atom" v
                      what)))
          (Ast.atom_vars a))
      atoms
  in
  check_covered "a negated atom" negated;
  List.iter
    (fun (t1, t2) ->
      List.iter
        (function
          | Ast.Var v when not (Sset.mem v body_vars) ->
            raise (Unsafe (Fmt.str "inequality variable %s unbound" v))
          | _ -> ())
        [ t1; t2 ])
    diseq;
  let invented =
    List.filter
      (fun v -> not (Sset.mem v body_vars))
      (List.sort_uniq String.compare (Ast.atom_vars head))
  in
  { head; body; negated; diseq; invented; tag }

type t = {
  rules : rule list;
}

let make rules =
  if rules = [] then invalid_arg "Invention.make: empty program";
  { rules }

let rules t = t.rules

let parse text =
  let lines =
    text
    |> String.split_on_char '\n'
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  make
    (List.mapi
       (fun i l ->
         let c = Parser.clause l in
         rule ~negated:c.Parser.negated ~diseq:c.Parser.diseq
           ~tag:(Fmt.str "r%d" i) ~head:c.Parser.head ~body:c.Parser.body ())
       lines)

let idb t =
  List.fold_left
    (fun acc r -> Sset.add r.head.Ast.rel acc)
    Sset.empty t.rules
  |> Sset.elements

let edb t =
  let idb_set = Sset.of_list (idb t) in
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc (a : Ast.atom) ->
          if Sset.mem a.Ast.rel idb_set then acc else Sset.add a.Ast.rel acc)
        acc (r.body @ r.negated))
    Sset.empty t.rules
  |> Sset.elements

let has_invention t = List.exists (fun r -> r.invented <> []) t.rules

let is_semi_positive t =
  let idb_set = Sset.of_list (idb t) in
  List.for_all
    (fun r ->
      List.for_all
        (fun (a : Ast.atom) -> not (Sset.mem a.Ast.rel idb_set))
        r.negated)
    t.rules

let rule_connected r =
  match r.body with
  | [] -> true
  | _ ->
    (* Reuse the CQ connectivity check through a safe proxy rule. *)
    Connectivity.rule_connected
      (Ast.make ~head:(Ast.atom "H" []) ~body:r.body ())

let program_connected t = List.for_all rule_connected t.rules

(* Invented values are Skolem terms: deterministic in the rule tag, the
   invented variable, and the body valuation — the functional semantics
   of ILOG, under which re-deriving the same body does not mint a new
   value, which is what makes fixpoints meaningful. *)
let invention_prefix = "\007"

let skolem ~tag ~var binding =
  Value.str
    (Fmt.str "%s%s.%s(%s)" invention_prefix tag var
       (String.concat ","
          (List.map
             (fun (v, value) -> v ^ "=" ^ Value.to_string value)
             binding)))

let is_invented_value = function
  | Value.Str s -> String.length s > 0 && s.[0] = '\007'
  | Value.Int _ -> false

exception Diverged of string

(* One application of a rule: all satisfying valuations of the body
   (negation checked against [db]), extended with Skolem values for the
   invented head variables. *)
let apply_rule db r =
  let body_vars =
    List.fold_left
      (fun acc a -> Sset.union acc (Sset.of_list (Ast.atom_vars a)))
      Sset.empty r.body
    |> Sset.elements
  in
  let proxy =
    Ast.make ~negated:r.negated ~diseq:r.diseq
      ~head:(Ast.atom "\007proxy" (List.map (fun v -> Ast.Var v) body_vars))
      ~body:r.body ()
  in
  Eval.fold_valuations proxy db
    (fun valuation acc ->
      let binding =
        List.map
          (fun v -> (v, Option.get (Valuation.find v valuation)))
          body_vars
      in
      let extended =
        List.fold_left
          (fun val_acc var ->
            Valuation.bind var (skolem ~tag:r.tag ~var binding) val_acc)
          valuation r.invented
      in
      Instance.add (Valuation.atom extended r.head) acc)
    Instance.empty

(* Naive stratified fixpoint with a divergence guard: invention can
   produce infinitely many values (wILOG expresses non-terminating
   computations), so the evaluation is capped. *)
let run ?(max_facts = 100_000) ?(max_rounds = 10_000) t instance =
  let instance =
    if List.mem "ADom" (edb t) then Datalog_eval.materialize_adom instance
    else instance
  in
  (* Stratify on the predicate level, as for plain Datalog. *)
  let idb_set = Sset.of_list (idb t) in
  let n = Sset.cardinal idb_set in
  let stratum = ref Smap.empty in
  let get p = Option.value ~default:0 (Smap.find_opt p !stratum) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        let bump target =
          if target > get r.head.Ast.rel then begin
            if target > n then
              raise (Stratify.Not_stratifiable r.head.Ast.rel);
            stratum := Smap.add r.head.Ast.rel target !stratum;
            changed := true
          end
        in
        List.iter
          (fun (a : Ast.atom) ->
            if Sset.mem a.Ast.rel idb_set then bump (get a.Ast.rel))
          r.body;
        List.iter
          (fun (a : Ast.atom) ->
            if Sset.mem a.Ast.rel idb_set then bump (get a.Ast.rel + 1))
          r.negated)
      t.rules
  done;
  let max_stratum = Smap.fold (fun _ s acc -> max s acc) !stratum 0 in
  let layers =
    List.init (max_stratum + 1) (fun level ->
        List.filter (fun r -> get r.head.Ast.rel = level) t.rules)
  in
  let eval_layer db rules =
    let rec iterate db round =
      if round > max_rounds then raise (Diverged "round limit exceeded");
      if Instance.cardinal db > max_facts then
        raise (Diverged "fact limit exceeded");
      let additions =
        List.fold_left
          (fun acc r -> Instance.union acc (apply_rule db r))
          Instance.empty rules
      in
      if Instance.subset additions db then db
      else iterate (Instance.union db additions) (round + 1)
    in
    iterate db 0
  in
  List.fold_left eval_layer instance layers

let query ?max_facts ?max_rounds t ~output instance =
  Instance.filter
    (fun f -> Fact.rel f = output)
    (run ?max_facts ?max_rounds t instance)
