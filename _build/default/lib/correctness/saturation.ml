open Lamp_relational
open Lamp_cq
open Lamp_distribution

type violation = {
  head : Fact.t;
  required : Instance.t;
}

let pp_violation ppf v =
  Fmt.pf ppf "valuation deriving %a from %a meets at no node" Fact.pp v.head
    Instance.pp v.required

let universe_exn policy =
  match Policy.universe policy with
  | Some u -> Value.Set.elements u
  | None ->
    invalid_arg
      "Saturation: the policy must carry a finite universe (use \
       Policy.with_universe)"

let meets policy required =
  List.exists
    (fun node ->
      Instance.subset required (Policy.loc_inst policy required node))
    (Policy.nodes policy)

(* PC0: every valuation over the universe meets at some node. *)
let strongly_saturates policy q =
  let universe = universe_exn policy in
  let result = ref (Ok ()) in
  (try
     Valuation.enumerate ~vars:(Ast.vars q) ~universe (fun v ->
         if Valuation.satisfies_diseq v q then begin
           let required = Valuation.body_facts v q in
           if not (meets policy required) then begin
             result := Error { head = Valuation.head_fact v q; required };
             raise Exit
           end
         end)
   with Exit -> ());
  !result

(* PC1: every *minimal* valuation over the universe meets at some node
   (Proposition 4.6). *)
let saturates policy q =
  let universe = universe_exn policy in
  let images = Minimal.minimal_images q ~universe in
  let rec go = function
    | [] -> Ok ()
    | (head, required) :: rest ->
      if meets policy required then go rest else Error { head; required }
  in
  go images
