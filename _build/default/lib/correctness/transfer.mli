(** Parallel-correctness transfer (Section 4.2).

    Transfer from [Q] to [Q'] means [Q'] is parallel-correct under every
    policy under which [Q] is (Definition 4.10) — the static guarantee
    that lets an optimizer evaluate [Q'] on [Q]'s data distribution
    without reshuffling. Proposition 4.13 characterizes transfer by the
    [covers] relation on minimal valuations, which this module decides
    exactly; the problem is Πᵖ₃-complete (Theorem 4.14), and the
    implementation is correspondingly exponential in query size. *)

open Lamp_relational

type violation = {
  head : Fact.t;
  required : Instance.t;
      (** Required facts of a minimal valuation of the target covered by
          no minimal valuation of the source. *)
}

val pp_violation : violation Fmt.t

val covers_result : Lamp_cq.Ast.t -> Lamp_cq.Ast.t -> (unit, violation) result
(** [covers_result source target] decides Definition 4.12: every minimal
    valuation of [target] is dominated by a minimal valuation of
    [source].
    @raise Invalid_argument on CQ¬. *)

val covers : Lamp_cq.Ast.t -> Lamp_cq.Ast.t -> bool

val transfers : Lamp_cq.Ast.t -> Lamp_cq.Ast.t -> bool
(** [transfers q q'] iff parallel-correctness transfers from [q] to
    [q'], i.e. [covers q q'] (Proposition 4.13). *)

val transfer_matrix : Lamp_cq.Ast.t list -> bool list list
(** [transfer_matrix qs] tabulates [transfers qi qj] — row [i], column
    [j] — reproducing Figure 1(a) when applied to the queries of Example
    4.11. *)

val ucq_covers_result :
  Lamp_cq.Ast.t list -> Lamp_cq.Ast.t list -> (unit, violation) result
(** Transfer between unions of CQs ([15]): the covers characterization
    with the union-aware minimal valuations — a target disjunct's
    valuation dominated by another disjunct does not need covering,
    which can make transfer to a union hold where transfer to a member
    fails. *)

val ucq_transfers : Lamp_cq.Ast.t list -> Lamp_cq.Ast.t list -> bool

type plan_step = {
  query_index : int;
  reuse_of : int option;
      (** Index of the earlier query whose distribution this one can
          reuse; [None] means a fresh reshuffle is needed. *)
}

val plan_workload : Lamp_cq.Ast.t list -> plan_step list
(** The multi-query scenario motivating Section 4.2: for each query of a
    workload (in evaluation order), find the most recent earlier query
    from which parallel-correctness transfers — its distribution can be
    reused, skipping the reshuffle. *)

val reshuffles : plan_step list -> int
(** Number of reshuffles the planned workload performs. *)
