lib/correctness/transfer.ml: Array Ast Eval Fact Fmt Instance Lamp_cq Lamp_relational List Minimal Parallel_correctness Valuation Value
