lib/correctness/parallel_correctness.mli: Ast Fact Instance Lamp_cq Lamp_distribution Lamp_relational Policy Saturation Value
