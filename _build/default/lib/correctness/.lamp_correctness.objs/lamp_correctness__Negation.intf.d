lib/correctness/negation.mli: Ast Instance Lamp_cq Lamp_distribution Lamp_relational Policy
