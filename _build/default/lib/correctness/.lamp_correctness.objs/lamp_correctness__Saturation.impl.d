lib/correctness/saturation.ml: Ast Fact Fmt Instance Lamp_cq Lamp_distribution Lamp_relational List Minimal Policy Valuation Value
