lib/correctness/saturation.mli: Ast Fact Fmt Instance Lamp_cq Lamp_distribution Lamp_relational Policy
