lib/correctness/negation.ml: Array Ast Distributed Eval Fact Fmt Instance Lamp_cq Lamp_distribution Lamp_relational List Policy Result Schema Value
