lib/correctness/transfer.mli: Fact Fmt Instance Lamp_cq Lamp_relational
