lib/correctness/parallel_correctness.ml: Array Ast Distributed Eval Fact Fmt Instance Lamp_cq Lamp_distribution Lamp_relational List Policy Saturation Schema Set Valuation Value
