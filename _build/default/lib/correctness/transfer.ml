open Lamp_relational
open Lamp_cq

type violation = {
  head : Fact.t;
  required : Instance.t;
}

let pp_violation ppf v =
  Fmt.pf ppf
    "minimal valuation of the target deriving %a from %a is covered by no \
     minimal valuation of the source"
    Fact.pp v.head Instance.pp v.required

(* Fresh values for canonical universes; the prefix cannot clash with
   parser-produced constants. *)
let fresh_values n = List.init n (fun i -> Value.str (Fmt.str "\002f%d" i))

let check_cq what q =
  if Ast.has_negation q then
    invalid_arg
      (Fmt.str "Transfer.%s: defined for CQs (with inequalities), not CQ¬" what)

(* covers (Definition 4.12): for every minimal valuation V' for [target]
   there is a minimal valuation V for [source] with
   V'(body_target) ⊆ V(body_source).

   Both quantifiers range over all of dom, but the property is invariant
   under injective renamings fixing the constants of both queries, so it
   suffices to let V' range over the constants plus |vars target| fresh
   values, and V over adom(V'(body)) plus the constants plus
   |vars source| more fresh values. This realizes the Πᵖ₃ procedure of
   Theorem 4.14. *)
let covers_result source target =
  check_cq "covers" source;
  check_cq "covers" target;
  let constants =
    Value.Set.union (Ast.constants source) (Ast.constants target)
  in
  let target_universe =
    Value.Set.elements constants
    @ fresh_values (List.length (Ast.vars target))
  in
  let extra =
    (* Values beyond the target image that V may use, disjoint from
       target_universe by construction of fresh_values counts. *)
    List.init
      (List.length (Ast.vars source))
      (fun i ->
        Value.str (Fmt.str "\002g%d" i))
  in
  let target_images = Minimal.minimal_images target ~universe:target_universe in
  let covered (_, required') =
    let source_universe =
      Value.Set.elements
        (Value.Set.union (Instance.adom required') constants)
      @ extra
    in
    let exception Found in
    try
      Valuation.enumerate ~vars:(Ast.vars source) ~universe:source_universe
        (fun v ->
          if
            Valuation.satisfies_diseq v source
            && Instance.subset required' (Valuation.body_facts v source)
            && Minimal.is_minimal source v
          then raise Found);
      false
    with Found -> true
  in
  let rec go = function
    | [] -> Ok ()
    | ((head, required) as img) :: rest ->
      if covered img then go rest else Error { head; required }
  in
  go target_images

let covers source target =
  match covers_result source target with Ok () -> true | Error _ -> false

let transfers source target = covers source target

let transfer_matrix queries =
  List.map
    (fun source -> List.map (fun target -> transfers source target) queries)
    queries

(* Transfer for unions of CQs ([15]): the same characterization with the
   union-aware notion of minimality — a valuation of a disjunct is
   minimal when no valuation of any disjunct derives the same head fact
   from strictly fewer facts. *)
let ucq_covers_result sources targets =
  List.iter (check_cq "ucq_covers") sources;
  List.iter (check_cq "ucq_covers") targets;
  let constants =
    List.fold_left
      (fun acc q -> Value.Set.union acc (Ast.constants q))
      Value.Set.empty (sources @ targets)
  in
  let max_target_vars =
    List.fold_left (fun acc q -> max acc (List.length (Ast.vars q))) 0 targets
  in
  let target_universe =
    Value.Set.elements constants @ fresh_values max_target_vars
  in
  let target_images =
    Parallel_correctness.ucq_minimal_images targets ~universe:target_universe
  in
  (* Union-aware minimality of a candidate source valuation: no disjunct
     derives the same head from strictly fewer of its required facts. *)
  let source_minimal head required =
    not
      (List.exists
         (fun q ->
           Eval.fold_valuations q required
             (fun v acc ->
               acc
               || Fact.equal (Valuation.head_fact v q) head
                  &&
                  let req' = Valuation.body_facts v q in
                  Instance.subset req' required
                  && not (Instance.equal req' required))
             false)
         sources)
  in
  let covered (_, required') =
    let exception Found in
    try
      List.iter
        (fun q ->
          let source_universe =
            Value.Set.elements
              (Value.Set.union (Instance.adom required') constants)
            @ List.init
                (List.length (Ast.vars q))
                (fun i -> Value.str (Fmt.str "\002g%d" i))
          in
          Valuation.enumerate ~vars:(Ast.vars q) ~universe:source_universe
            (fun v ->
              if
                Valuation.satisfies_diseq v q
                && Instance.subset required' (Valuation.body_facts v q)
                && source_minimal (Valuation.head_fact v q)
                     (Valuation.body_facts v q)
              then raise Found))
        sources;
      false
    with Found -> true
  in
  let rec go = function
    | [] -> Ok ()
    | ((head, required) as img) :: rest ->
      if covered img then go rest else Error { head; required }
  in
  go target_images

let ucq_transfers sources targets =
  match ucq_covers_result sources targets with
  | Ok () -> true
  | Error _ -> false

(* Workload planning (the Section 4.2 motivation): given a sequence of
   queries evaluated in order, each query may reuse the data
   distribution installed for an earlier query when parallel-correctness
   transfers from that query; otherwise it needs a fresh reshuffle. The
   greedy plan reuses the most recent admissible distribution. *)
type plan_step = {
  query_index : int;
  reuse_of : int option;
}

let plan_workload queries =
  let arr = Array.of_list queries in
  List.mapi
    (fun i q ->
      let rec find_source j =
        if j < 0 then None
        else if transfers arr.(j) q then Some j
        else find_source (j - 1)
      in
      { query_index = i; reuse_of = (if i = 0 then None else find_source (i - 1)) })
    queries

let reshuffles plan =
  List.length (List.filter (fun s -> s.reuse_of = None) plan)
