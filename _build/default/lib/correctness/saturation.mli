(** Saturation of queries by distribution policies (Definition 4.7).

    A policy [P] {e strongly saturates} a query [Q] when every valuation
    over the policy's universe finds its required facts together on some
    node (Condition PC0) and {e saturates} [Q] when every {e minimal}
    valuation does (Condition PC1). PC1 characterizes
    parallel-correctness for CQs (Proposition 4.6); PC0 is sufficient but
    not necessary (Example 4.3).

    Both checks realize the paper's Πᵖ₂ decision procedures for policies
    with a finite universe and therefore run in time exponential in the
    number of query variables. Queries may carry inequalities; CQ¬ is
    handled in [Negation]. *)

open Lamp_relational
open Lamp_cq
open Lamp_distribution

type violation = {
  head : Fact.t;  (** The fact the uncovered valuation derives. *)
  required : Instance.t;  (** Its required facts, meeting at no node. *)
}

val pp_violation : violation Fmt.t

val strongly_saturates : Policy.t -> Ast.t -> (unit, violation) result
(** Condition (PC0).
    @raise Invalid_argument when the policy lacks a finite universe. *)

val saturates : Policy.t -> Ast.t -> (unit, violation) result
(** Condition (PC1).
    @raise Invalid_argument when the policy lacks a finite universe, or
    on CQ¬ (minimal valuations are a CQ notion). *)
