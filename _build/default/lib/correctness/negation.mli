(** Parallel-correctness for conjunctive queries with negation
    (Theorem 4.9 / [33]).

    CQ¬ is not monotone, so correctness splits into {e
    parallel-soundness} ([⟦Q,P⟧(I) ⊆ Q(I)]: no node derives a fact the
    global instance refutes) and {e parallel-completeness}
    ([Q(I) ⊆ ⟦Q,P⟧(I)]). Both are decided by exhaustive search over the
    instances above the policy's universe, matching the problem's
    coNEXPTIME-complete nature — the cap on the explored fact space is
    explicit. *)

open Lamp_relational
open Lamp_cq
open Lamp_distribution

type verdict = {
  sound : (unit, Instance.t) result;
      (** [Error i]: instance on which a node derives a wrong fact. *)
  complete : (unit, Instance.t) result;
      (** [Error i]: instance on which a result fact is lost. *)
}

val is_correct : verdict -> bool

val decide : ?max_facts:int -> Ast.t -> Policy.t -> verdict
(** Decides parallel-soundness and -completeness of a CQ¬ (or any CQ)
    under the policy by enumerating all instances over the policy's
    universe and the query's body schema.
    @raise Invalid_argument when the policy lacks a finite universe or
    the fact space exceeds [max_facts] (default 16). *)

val ucq_decide : ?max_facts:int -> Ast.t list -> Policy.t -> verdict
(** The same decision for a union of queries (UCQ¬), comparing the
    union's global and one-round-distributed results.
    @raise Invalid_argument as {!decide}, or on an empty union. *)
