open Lamp_relational
open Lamp_cq
open Lamp_distribution

type verdict = {
  sound : (unit, Instance.t) result;
  complete : (unit, Instance.t) result;
}

let is_correct v = Result.is_ok v.sound && Result.is_ok v.complete

let fact_space q policy =
  let universe =
    match Policy.universe policy with
    | Some u -> Value.Set.elements u
    | None -> invalid_arg "Negation: policy without a finite universe"
  in
  let schema = Ast.body_schema q in
  let rec tuples arity =
    if arity = 0 then [ [] ]
    else
      let rest = tuples (arity - 1) in
      List.concat_map (fun v -> List.map (fun t -> v :: t) rest) universe
  in
  List.concat_map
    (fun (rel, arity) -> List.map (Fact.of_list rel) (tuples arity))
    (Schema.to_list schema)

(* Exhaustive search over all instances over the policy universe. The
   general problem is coNEXPTIME-complete (Theorem 4.9): counterexamples
   of size exponential in the schema arity may be required, which is
   exactly what this enumeration explores — hence the explicit cap. *)
let decide_generic ~max_facts ~fact_space ~expected ~actual =
  let facts = Array.of_list fact_space in
  let n = Array.length facts in
  if n > max_facts then
    invalid_arg
      (Fmt.str "Negation.decide: %d candidate facts exceed max_facts = %d" n
         max_facts);
  let sound = ref (Ok ()) and complete = ref (Ok ()) in
  (try
     for mask = 0 to (1 lsl n) - 1 do
       let i =
         let rec go k acc =
           if k >= n then acc
           else if mask land (1 lsl k) <> 0 then go (k + 1) (Instance.add facts.(k) acc)
           else go (k + 1) acc
         in
         go 0 Instance.empty
       in
       let want = expected i in
       let got = actual i in
       if Result.is_ok !sound && not (Instance.subset got want) then
         sound := Error i;
       if Result.is_ok !complete && not (Instance.subset want got) then
         complete := Error i;
       if Result.is_error !sound && Result.is_error !complete then raise Exit
     done
   with Exit -> ());
  { sound = !sound; complete = !complete }

let decide ?(max_facts = 16) q policy =
  decide_generic ~max_facts ~fact_space:(fact_space q policy)
    ~expected:(Eval.eval q)
    ~actual:(fun i -> Distributed.eval q policy i)

(* UCQ¬ (Theorem 4.9 covers unions as well): the union's result on each
   side of the comparison. *)
let ucq_decide ?(max_facts = 16) qs policy =
  if qs = [] then invalid_arg "Negation.ucq_decide: empty union";
  let space =
    List.sort_uniq Fact.compare
      (List.concat_map (fun q -> fact_space q policy) qs)
  in
  decide_generic ~max_facts ~fact_space:space
    ~expected:(fun i -> Eval.eval_ucq qs i)
    ~actual:(fun i -> Distributed.eval_ucq qs policy i)
