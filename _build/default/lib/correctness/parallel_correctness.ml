open Lamp_relational
open Lamp_cq
open Lamp_distribution

type instance_verdict = {
  missing : Instance.t;
  extra : Instance.t;
}

let on_instance q policy i =
  let expected = Eval.eval q i in
  let actual = Distributed.eval q policy i in
  if Instance.equal expected actual then Ok ()
  else
    Error
      {
        missing = Instance.diff expected actual;
        extra = Instance.diff actual expected;
      }

let ucq_on_instance qs policy i =
  let expected = Eval.eval_ucq qs i in
  let actual = Distributed.eval_ucq qs policy i in
  if Instance.equal expected actual then Ok ()
  else
    Error
      {
        missing = Instance.diff expected actual;
        extra = Instance.diff actual expected;
      }

let decide q policy =
  if Ast.has_negation q then
    invalid_arg
      "Parallel_correctness.decide: CQ¬ requires both soundness and \
       completeness; use the Negation module"
  else Saturation.saturates policy q

(* Minimal valuations for a UCQ (footnote to Theorem 4.8 / [33]): a
   valuation V for a disjunct Q_i is minimal for the union when no
   valuation V' for any disjunct derives the same head fact from a
   strict subset of V's required facts. *)
let ucq_minimal_images qs ~universe =
  let module Image = struct
    type t = Fact.t * Instance.t

    let compare (h1, b1) (h2, b2) =
      let c = Fact.compare h1 h2 in
      if c <> 0 then c else Instance.compare b1 b2
  end in
  let module Iset = Set.Make (Image) in
  let candidates = ref Iset.empty in
  List.iter
    (fun q ->
      Valuation.enumerate ~vars:(Ast.vars q) ~universe (fun v ->
          if Valuation.satisfies_diseq v q then
            candidates :=
              Iset.add (Valuation.head_fact v q, Valuation.body_facts v q)
                !candidates))
    qs;
  let dominated (head, required) =
    (* Some disjunct derives [head] on [required] from strictly fewer
       facts. *)
    List.exists
      (fun q ->
        Eval.fold_valuations q required
          (fun v acc ->
            acc
            || Fact.equal (Valuation.head_fact v q) head
               &&
               let req' = Valuation.body_facts v q in
               Instance.subset req' required
               && not (Instance.equal req' required))
          false)
      qs
  in
  Iset.elements (Iset.filter (fun img -> not (dominated img)) !candidates)

let ucq_decide qs policy =
  List.iter
    (fun q ->
      if Ast.has_negation q then
        invalid_arg "Parallel_correctness.ucq_decide: use Negation for UCQ¬")
    qs;
  let universe =
    match Policy.universe policy with
    | Some u -> Value.Set.elements u
    | None ->
      invalid_arg "Parallel_correctness.ucq_decide: policy without universe"
  in
  let images = ucq_minimal_images qs ~universe in
  let meets required =
    List.exists
      (fun node ->
        Instance.subset required (Policy.loc_inst policy required node))
      (Policy.nodes policy)
  in
  let rec go = function
    | [] -> Ok ()
    | (head, required) :: rest ->
      if meets required then go rest
      else Error { Saturation.head; required }
  in
  go images

(* Brute-force oracle: enumerate all instances over the policy universe
   and the query's body schema, checking PCI on each. Exponential — used
   to cross-validate [decide] in tests and to exhibit counterexample
   instances. *)
let decide_by_search ?(max_facts = 16) q policy =
  let universe =
    match Policy.universe policy with
    | Some u -> Value.Set.elements u
    | None ->
      invalid_arg "Parallel_correctness.decide_by_search: policy without universe"
  in
  let schema = Ast.body_schema q in
  let rec tuples arity =
    if arity = 0 then [ [] ]
    else
      let rest = tuples (arity - 1) in
      List.concat_map (fun v -> List.map (fun t -> v :: t) rest) universe
  in
  let all_facts =
    List.concat_map
      (fun (rel, arity) -> List.map (Fact.of_list rel) (tuples arity))
      (Schema.to_list schema)
    |> Array.of_list
  in
  let n = Array.length all_facts in
  if n > max_facts then
    invalid_arg
      (Fmt.str "Parallel_correctness.decide_by_search: %d facts > %d" n
         max_facts);
  let rec search mask =
    if mask >= 1 lsl n then Ok ()
    else begin
      let i =
        let rec go k acc =
          if k >= n then acc
          else if mask land (1 lsl k) <> 0 then
            go (k + 1) (Instance.add all_facts.(k) acc)
          else go (k + 1) acc
        in
        go 0 Instance.empty
      in
      match on_instance q policy i with
      | Ok () -> search (mask + 1)
      | Error _ -> Error i
    end
  in
  search 0
