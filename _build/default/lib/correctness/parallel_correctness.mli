(** Parallel-correctness of one-round evaluation (Definition 4.2,
    Proposition 4.6, Theorem 4.8).

    A query [Q] is parallel-correct on instance [I] under policy [P]
    when [Q(I) = ⟦Q,P⟧(I)], and parallel-correct under [P] when this
    holds for every instance over the policy's universe. For (unions of)
    CQs with inequalities the problem is characterized by saturation and
    decided here exactly; its Πᵖ₂-completeness shows in the running time,
    which is exponential in the number of query variables. *)

open Lamp_relational
open Lamp_cq
open Lamp_distribution

type instance_verdict = {
  missing : Instance.t;  (** Facts of [Q(I)] lost by distribution. *)
  extra : Instance.t;
      (** Facts produced distributively but absent from [Q(I)] — possible
          only for non-monotone queries. *)
}

val on_instance :
  Ast.t -> Policy.t -> Instance.t -> (unit, instance_verdict) result
(** The PCI problem: parallel-correctness on one given instance. Works
    for any query, including CQ¬. *)

val ucq_on_instance :
  Ast.t list -> Policy.t -> Instance.t -> (unit, instance_verdict) result

val decide : Ast.t -> Policy.t -> (unit, Saturation.violation) result
(** The PC problem for CQs (with inequalities), decided through
    Condition (PC1).
    @raise Invalid_argument on CQ¬ or when the policy lacks a finite
    universe. *)

val ucq_decide : Ast.t list -> Policy.t -> (unit, Saturation.violation) result
(** PC for unions of CQs, using the union-aware notion of minimal
    valuation from [33]: a valuation of a disjunct is minimal when no
    valuation of {e any} disjunct derives the same fact from strictly
    fewer facts. *)

val ucq_minimal_images :
  Ast.t list -> universe:Value.t list -> (Fact.t * Instance.t) list

val decide_by_search :
  ?max_facts:int -> Ast.t -> Policy.t -> (unit, Instance.t) result
(** Brute-force oracle for PC: enumerates every instance over the
    policy's universe and the query's body schema and checks PCI on
    each; on failure returns a counterexample instance. Used to
    cross-validate {!decide}.
    @raise Invalid_argument when the fact space exceeds [max_facts]
    (default 16). *)
