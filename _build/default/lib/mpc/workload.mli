(** Synthetic MPC workloads, parameterized the way the paper's load
    bounds are: input size m, skew presence, and domain size.

    These stand in for the cluster workloads of the cited experimental
    work; see DESIGN.md for the substitution argument. *)

open Lamp_relational

val rename_relation :
  from_rel:string -> to_rel:string -> Instance.t -> Instance.t

val join_skew_free : m:int -> Instance.t
(** R and S of m tuples each where every domain value occurs exactly
    once — the paper's "absence of skew" assumption in Example
    3.1(1a). *)

val join_skewed : m:int -> Instance.t
(** Worst-case join skew: a single join value carries all 2m tuples. *)

val triangle_skew_free :
  rng:Random.State.t -> m:int -> domain:int -> Instance.t
(** R, S, T uniform over a domain sized to keep every degree near m /
    domain — skew-free in the sense of the HyperCube analysis when the
    domain is large. *)

val triangle_from_graph : Instance.t -> Instance.t
(** Copies an edge relation E into R, S and T, so the triangle query
    over three relations counts the directed triangles of the graph. *)

val triangle_y_skew :
  rng:Random.State.t -> m:int -> domain:int -> heavy_fraction:float ->
  Instance.t
(** Triangle input with a heavy hitter in the join attribute y: a
    [heavy_fraction] of R's y-values and S's y-values collapse onto one
    hub value, while x and z stay uniform — the scenario of the paper's
    Section 3.2 skew discussion. *)

val acyclic_chain :
  rng:Random.State.t -> m:int -> domain:int -> rels:string list -> Instance.t
(** One uniform binary relation per name, for chain queries
    [H(...) ← R1(x0,x1), R2(x1,x2), …]. *)
