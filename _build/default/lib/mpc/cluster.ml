open Lamp_relational

type t = {
  p : int;
  mutable locals : Instance.t array;
  mutable round_stats : Stats.round_stats list;
  initial_max : int;
}

type round = {
  communicate : int -> Instance.t -> (int * Fact.t) list;
  compute : int -> received:Instance.t -> previous:Instance.t -> Instance.t;
}

let check_p p = if p < 1 then invalid_arg "Cluster: p must be >= 1"

let create_with locals =
  check_p (Array.length locals);
  let initial_max =
    Array.fold_left (fun acc i -> max acc (Instance.cardinal i)) 0 locals
  in
  {
    p = Array.length locals;
    locals = Array.copy locals;
    round_stats = [];
    initial_max;
  }

(* Round-robin partitioning: every server receives ⌈m/p⌉ or ⌊m/p⌋ facts,
   the model's "1/p-th of the data" assumption. *)
let create ~p instance =
  check_p p;
  let locals = Array.make p Instance.empty in
  List.iteri
    (fun k f -> locals.(k mod p) <- Instance.add f locals.(k mod p))
    (Instance.facts instance);
  create_with locals

let p t = t.p
let locals t = Array.copy t.locals
let local t i = t.locals.(i)

let union_all t =
  Array.fold_left Instance.union Instance.empty t.locals

let run_round t round =
  let inboxes = Array.make t.p [] in
  Array.iteri
    (fun src local ->
      List.iter
        (fun (dst, fact) ->
          if dst < 0 || dst >= t.p then
            invalid_arg (Fmt.str "Cluster.run_round: destination %d out of range" dst)
          else inboxes.(dst) <- fact :: inboxes.(dst))
        (round.communicate src local))
    t.locals;
  let received = Array.map Instance.of_facts inboxes in
  let max_received =
    Array.fold_left (fun acc i -> max acc (Instance.cardinal i)) 0 received
  in
  let total_received =
    Array.fold_left (fun acc i -> acc + Instance.cardinal i) 0 received
  in
  t.round_stats <-
    { Stats.max_received; total_received } :: t.round_stats;
  t.locals <-
    Array.mapi
      (fun i prev -> round.compute i ~received:received.(i) ~previous:prev)
      t.locals

let stats t =
  {
    Stats.p = t.p;
    initial_max = t.initial_max;
    rounds = List.rev t.round_stats;
  }

(* Common communication phases. *)

let route_by f = fun _src local ->
  Instance.fold
    (fun fact acc ->
      List.fold_left (fun acc dst -> (dst, fact) :: acc) acc (f fact))
    local []

(* Common computation phases. *)

let keep_received = fun _ ~received ~previous:_ -> received

let eval_query q = fun _ ~received ~previous:_ -> Lamp_cq.Eval.eval q received
