lib/mpc/stats.ml: Fmt List
