lib/mpc/repartition_join.ml: Array Cluster Fact Instance Lamp_cq Lamp_distribution Lamp_relational Policy
