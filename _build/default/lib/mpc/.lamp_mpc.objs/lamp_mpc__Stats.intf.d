lib/mpc/stats.mli: Fmt
