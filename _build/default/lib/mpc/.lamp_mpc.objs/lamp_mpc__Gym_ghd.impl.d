lib/mpc/gym_ghd.ml: Array Ast Decomposition Fmt Hypercube Hypergraph Instance Lamp_cq Lamp_relational List Shares Stats Tuple Yannakakis
