lib/mpc/workload.ml: Fact Generate Instance Lamp_relational List Random
