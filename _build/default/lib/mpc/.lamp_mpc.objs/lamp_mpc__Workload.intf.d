lib/mpc/workload.mli: Instance Lamp_relational Random
