lib/mpc/skew.ml: Array Fact Instance Lamp_relational Option Tuple Value
