lib/mpc/yannakakis.ml: Array Ast Fact Fmt Hashtbl Hypergraph Instance Lamp_cq Lamp_relational List Option Stats String Tuple Value
