lib/mpc/grid_join.mli: Instance Lamp_cq Lamp_relational Stats
