lib/mpc/multi_round.mli: Instance Lamp_relational Stats
