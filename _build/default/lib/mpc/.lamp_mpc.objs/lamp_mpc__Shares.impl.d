lib/mpc/shares.ml: Array Ast Float Hypergraph Lamp_cq List String
