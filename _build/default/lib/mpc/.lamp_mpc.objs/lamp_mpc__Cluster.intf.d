lib/mpc/cluster.mli: Fact Instance Lamp_cq Lamp_relational Stats
