lib/mpc/skew.mli: Instance Lamp_relational Value
