lib/mpc/shares.mli: Ast Lamp_cq
