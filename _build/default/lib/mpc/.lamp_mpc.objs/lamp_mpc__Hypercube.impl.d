lib/mpc/hypercube.ml: Ast Cluster Grid Instance Lamp_cq Lamp_distribution Lamp_relational Policy Shares Tuple
