lib/mpc/hypercube.mli: Instance Lamp_cq Lamp_relational Stats
