lib/mpc/multi_round.ml: Array Ast Cluster Eval Examples Fact Float Instance Lamp_cq Lamp_distribution Lamp_relational List Parser Policy Shares Skew Tuple Value
