lib/mpc/cluster.ml: Array Fact Fmt Instance Lamp_cq Lamp_relational List Stats
