lib/mpc/grid_join.ml: Cluster Fact Hashtbl Instance Lamp_cq Lamp_relational List
