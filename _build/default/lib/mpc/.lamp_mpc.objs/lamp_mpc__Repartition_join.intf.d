lib/mpc/repartition_join.mli: Instance Lamp_cq Lamp_relational Stats
