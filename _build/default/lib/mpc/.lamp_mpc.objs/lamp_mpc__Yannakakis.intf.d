lib/mpc/yannakakis.mli: Instance Lamp_cq Lamp_relational Stats
