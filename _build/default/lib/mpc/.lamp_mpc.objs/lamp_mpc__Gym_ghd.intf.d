lib/mpc/gym_ghd.mli: Instance Lamp_cq Lamp_relational Stats
