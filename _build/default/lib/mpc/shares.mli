(** Share allocation for one-round multiway joins.

    The Shares algorithm of Afrati–Ullman assigns each query variable a
    {e share} — a dimension of the server grid — and replicates each atom
    across the dimensions it does not mention. Afrati–Ullman optimize
    {e total communication}; Beame–Koutris–Suciu's HyperCube instead
    minimizes the {e maximum per-server load}, which their lower bound
    shows optimal. Both objectives are available here, decided exactly by
    exhaustive enumeration of integer share vectors (the queries of the
    paper have ≤ 4 variables) alongside the LP-guided rounding used for
    larger p. *)

open Lamp_cq

val enumerate_share_vectors :
  p:int -> string list -> ((string * int) list -> unit) -> unit
(** All integer share vectors over the variables with product ≤ p. *)

val product : (string * int) list -> int

val atom_replication : shares:(string * int) list -> Ast.atom -> int
(** Number of copies of each tuple of the atom's relation: the product
    of the shares of the variables the atom does not mention. *)

val communication_cost :
  shares:(string * int) list -> sizes:(Ast.atom -> int) -> Ast.t -> float
(** Afrati–Ullman's objective: Σ_atoms size(atom) · replication(atom). *)

val predicted_max_load :
  shares:(string * int) list -> sizes:(Ast.atom -> int) -> Ast.t -> float
(** Skew-free expected per-server load: Σ_atoms size(atom) / Π_{v ∈ atom}
    share(v). *)

type objective =
  | Total_communication  (** Afrati–Ullman Shares. *)
  | Max_load  (** Beame–Koutris–Suciu HyperCube. *)

val optimize :
  ?objective:objective ->
  p:int ->
  sizes:(Ast.atom -> int) ->
  Ast.t ->
  (string * int) list * float
(** Optimal integer shares for the chosen objective and their predicted
    cost.
    @raise Invalid_argument on non-positive queries. *)

val lp_rounded : p:int -> Ast.t -> (string * int) list
(** Integer shares obtained by rounding the fractional LP exponents
    [p**e_v] and repairing the budget — the practical choice when
    exhaustive enumeration is too slow. *)
