(** The MPC cluster simulator (Section 3 of the paper).

    Computation proceeds in rounds, each a communication phase — every
    server emits (destination, fact) messages from its local data —
    followed by a computation phase local to each server. The simulator
    delivers all messages, records per-round load statistics, and updates
    the servers' local instances. At the end of an execution, the output
    is the union of the servers' local data. *)

open Lamp_relational

type t

type round = {
  communicate : int -> Instance.t -> (int * Fact.t) list;
      (** [communicate src local]: the messages server [src] sends. *)
  compute : int -> received:Instance.t -> previous:Instance.t -> Instance.t;
      (** [compute i ~received ~previous]: server [i]'s new local
          instance from what it received this round and what it held
          before. *)
}

val create : p:int -> Instance.t -> t
(** Round-robin initial partitioning: every server holds 1/p-th of the
    input, matching the model's assumption-free initial distribution. *)

val create_with : Instance.t array -> t
(** Start from an explicit initial partitioning (one instance per
    server). *)

val p : t -> int
val locals : t -> Instance.t array
val local : t -> int -> Instance.t

val union_all : t -> Instance.t
(** The output of the algorithm: the union over all servers. *)

val run_round : t -> round -> unit
(** Executes one round and records its load.
    @raise Invalid_argument on a message to a nonexistent server. *)

val stats : t -> Stats.t

(** {1 Phase combinators} *)

val route_by : (Fact.t -> int list) -> int -> Instance.t -> (int * Fact.t) list
(** Communication phase sending every local fact to the servers chosen
    by the routing function (possibly several: replication). *)

val keep_received : int -> received:Instance.t -> previous:Instance.t -> Instance.t
(** Computation phase that replaces local data with the received facts —
    a pure reshuffle. *)

val eval_query :
  Lamp_cq.Ast.t -> int -> received:Instance.t -> previous:Instance.t -> Instance.t
(** Computation phase evaluating a query over the received facts; the
    local instance becomes the local result. *)
