open Lamp_cq

(* Enumerates all integer share vectors (one share >= 1 per variable)
   whose product is at most p, calling [f] on each. Exponential in the
   number of variables but cheap for the query sizes of the paper. *)
let enumerate_share_vectors ~p vars f =
  let n = List.length vars in
  let shares = Array.make n 1 in
  let rec go i budget =
    if i >= n then f (List.combine vars (Array.to_list shares))
    else
      let rec each s =
        if s > budget then ()
        else begin
          shares.(i) <- s;
          go (i + 1) (budget / s);
          each (s + 1)
        end
      in
      each 1
  in
  if n = 0 then f [] else go 0 p

let product shares = List.fold_left (fun acc (_, s) -> acc * s) 1 shares

let atom_replication ~shares (a : Ast.atom) =
  let atom_vars = List.sort_uniq String.compare (Ast.atom_vars a) in
  List.fold_left
    (fun acc (v, s) -> if List.mem v atom_vars then acc else acc * s)
    1 shares

let atom_load ~shares ~size (a : Ast.atom) =
  let atom_vars = List.sort_uniq String.compare (Ast.atom_vars a) in
  let denom =
    List.fold_left
      (fun acc (v, s) -> if List.mem v atom_vars then acc * s else acc)
      1 shares
  in
  float_of_int size /. float_of_int denom

(* Predicted communication cost (the objective of Afrati–Ullman Shares):
   every atom's relation is replicated once per grid cell of the
   dimensions it does not pin. *)
let communication_cost ~shares ~sizes q =
  List.fold_left
    (fun acc a -> acc +. float_of_int (sizes a * atom_replication ~shares a))
    0.0 (Ast.body q)

(* Predicted maximum per-server load (the objective of HyperCube /
   Beame–Koutris–Suciu): the skew-free expectation of the largest
   per-atom delivery. *)
let predicted_max_load ~shares ~sizes q =
  List.fold_left
    (fun acc a -> acc +. atom_load ~shares ~size:(sizes a) a)
    0.0 (Ast.body q)

type objective =
  | Total_communication
  | Max_load

let optimize ?(objective = Max_load) ~p ~sizes q =
  if not (Ast.is_positive q) then
    invalid_arg "Shares.optimize: defined for positive CQs";
  let vars = Ast.body_vars q in
  let cost shares =
    match objective with
    | Total_communication -> communication_cost ~shares ~sizes q
    | Max_load -> predicted_max_load ~shares ~sizes q
  in
  (* Minimizing communication with a slack budget degenerates to a
     single server (replication 1); Afrati–Ullman fix the number of
     reducers, so that objective requires the budget to be spent
     exactly. Load minimization only improves with more servers, so any
     product ≤ p is admissible there. *)
  let admissible shares =
    match objective with
    | Total_communication -> product shares = p
    | Max_load -> true
  in
  let best = ref None in
  enumerate_share_vectors ~p vars (fun shares ->
      if admissible shares then begin
        let c = cost shares in
        match !best with
        | Some (_, c') when c' <= c -> ()
        | _ -> best := Some (shares, c)
      end);
  match !best with
  | Some (shares, cost) -> (shares, cost)
  | None -> ([], 0.0)

(* LP-guided rounding: start from the fractional exponents p^e_v and
   repair the integer vector to respect the budget. *)
let lp_rounded ~p q =
  if p < 1 then invalid_arg "Shares.lp_rounded: p < 1";
  let _, exponents = Hypergraph.share_exponents q in
  let shares =
    List.map
      (fun (v, e) ->
        (v, max 1 (int_of_float (Float.round (Float.pow (float_of_int p) e)))))
      exponents
  in
  (* Shrink the largest share while over budget. *)
  let rec repair shares =
    if product shares <= p then shares
    else
      let vmax, smax =
        List.fold_left
          (fun (bv, bs) (v, s) -> if s > bs then (v, s) else (bv, bs))
          ("", 1) shares
      in
      if smax <= 1 then shares
      else
        repair
          (List.map (fun (v, s) -> if v = vmax then (v, s - 1) else (v, s)) shares)
  in
  repair shares
