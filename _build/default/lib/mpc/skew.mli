(** Heavy hitters (Section 3 of the paper).

    Skew refers to values whose frequency in a column greatly exceeds a
    threshold; the paper's one-round lower bounds worsen exactly when
    such heavy hitters exist, and the skew-resilient algorithms start by
    splitting the data around them. *)

open Lamp_relational

val degrees : Instance.t -> rel:string -> pos:int -> int Value.Map.t
(** Frequency of every value in the given column. *)

val heavy_hitters :
  Instance.t -> rel:string -> pos:int -> threshold:int -> Value.Set.t
(** Values with frequency strictly above the threshold. *)

val max_degree : Instance.t -> rel:string -> pos:int -> int

val split :
  Instance.t -> rel:string -> pos:int -> heavy:Value.Set.t ->
  Instance.t * Instance.t
(** [(light, heavy_part)]: facts of [rel] carrying a heavy value at
    [pos] go to the second component; everything else stays in the
    first. *)

val default_threshold : m:int -> p:int -> int
(** The customary [m/p] threshold: above it a single value's tuples
    already exceed a server's fair share. *)
