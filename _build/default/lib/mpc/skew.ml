open Lamp_relational

let degrees instance ~rel ~pos =
  Tuple.Set.fold
    (fun tup acc ->
      if pos >= Tuple.arity tup then acc
      else
        let v = tup.(pos) in
        let d = Option.value ~default:0 (Value.Map.find_opt v acc) in
        Value.Map.add v (d + 1) acc)
    (Instance.tuples instance rel)
    Value.Map.empty

let heavy_hitters instance ~rel ~pos ~threshold =
  Value.Map.fold
    (fun v d acc -> if d > threshold then Value.Set.add v acc else acc)
    (degrees instance ~rel ~pos)
    Value.Set.empty

let max_degree instance ~rel ~pos =
  Value.Map.fold (fun _ d acc -> max acc d) (degrees instance ~rel ~pos) 0

let split instance ~rel ~pos ~heavy =
  let is_heavy f =
    Fact.rel f = rel
    && pos < Fact.arity f
    && Value.Set.mem (Fact.args f).(pos) heavy
  in
  ( Instance.filter (fun f -> not (is_heavy f)) instance,
    Instance.filter is_heavy instance )

let default_threshold ~m ~p = max 1 (m / p)
