lib/lp/simplex.mli:
