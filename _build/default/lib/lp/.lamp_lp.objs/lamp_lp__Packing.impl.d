lib/lp/packing.ml: Array Int List Simplex
