lib/lp/packing.mli:
