(** Fractional packings and covers of hypergraphs.

    A hypergraph is given by a vertex count and a list of hyperedges,
    each a list of vertex indices in [0, vertices). These programs drive
    the HyperCube algorithm: the optimal fractional edge packing value
    τ* determines the skew-free load bound [m / p**(1/tau)] of
    Beame–Koutris–Suciu, and the dual exponents are the HyperCube
    shares. *)

type result = {
  value : float;  (** Optimal objective value. *)
  weights : float array;  (** Optimal weights (per edge or per vertex). *)
}

val edge_packing : vertices:int -> edges:int list list -> result
(** Maximum fractional edge packing: maximize Σ yₑ subject to
    Σ_{e ∋ v} yₑ ≤ 1 for every vertex. [result.value] is τ*. *)

val edge_cover : vertices:int -> edges:int list list -> result
(** Minimum fractional edge cover: minimize Σ yₑ subject to
    Σ_{e ∋ v} yₑ ≥ 1 for every vertex; solved through its LP dual.
    [result.value] is ρ* (the AGM exponent).
    @raise Invalid_argument when some vertex lies in no edge. *)

val vertex_cover : vertices:int -> edges:int list list -> result
(** Minimum fractional vertex cover, the LP dual of {!edge_packing};
    its value equals τ*. *)

val hypercube_exponents : vertices:int -> edges:int list list -> float * float array
(** [hypercube_exponents ~vertices ~edges] maximizes [t] such that every
    hyperedge satisfies Σ_{v ∈ e} xᵥ ≥ t with Σ xᵥ ≤ 1, x ≥ 0. The
    optimal [t] equals 1/τ* and the xᵥ are the share exponents: giving
    variable [v] the share [p^xᵥ] yields per-atom load [m/p^t] on
    skew-free data. *)
