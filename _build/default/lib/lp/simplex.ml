type problem = {
  objective : float array;
  constraints : (float array * float) list;
}

type solution = {
  value : float;
  primal : float array;
  dual : float array;
}

type outcome =
  | Optimal of solution
  | Unbounded

let epsilon = 1e-9

let make ~objective ~constraints =
  let n = Array.length objective in
  List.iter
    (fun (row, b) ->
      if Array.length row <> n then
        invalid_arg "Simplex.make: constraint row of wrong dimension";
      if b < -.epsilon then
        invalid_arg "Simplex.make: negative right-hand side unsupported")
    constraints;
  { objective; constraints }

(* Dense tableau simplex, phase II only. The origin is feasible because
   every right-hand side is nonnegative. Bland's rule guarantees
   termination. Tableau layout: m rows of [n structural | m slack | rhs],
   plus an objective row storing reduced costs (negated, so we pivot
   while some entry is < -eps). *)
let maximize problem =
  let n = Array.length problem.objective in
  let rows = Array.of_list problem.constraints in
  let m = Array.length rows in
  let width = n + m + 1 in
  let tab = Array.make_matrix (m + 1) width 0.0 in
  Array.iteri
    (fun i (row, b) ->
      Array.blit row 0 tab.(i) 0 n;
      tab.(i).(n + i) <- 1.0;
      tab.(i).(width - 1) <- b)
    rows;
  for j = 0 to n - 1 do
    tab.(m).(j) <- -.problem.objective.(j)
  done;
  let basis = Array.init m (fun i -> n + i) in
  let rec iterate () =
    (* Bland: entering variable = smallest index with negative reduced
       cost. *)
    let entering = ref (-1) in
    (try
       for j = 0 to n + m - 1 do
         if tab.(m).(j) < -.epsilon then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let e = !entering in
      (* Leaving variable: minimum ratio, ties broken by smallest basis
         index (Bland). *)
      let leaving = ref (-1) in
      let best = ref infinity in
      for i = 0 to m - 1 do
        if tab.(i).(e) > epsilon then begin
          let ratio = tab.(i).(width - 1) /. tab.(i).(e) in
          if
            ratio < !best -. epsilon
            || (ratio < !best +. epsilon
               && (!leaving < 0 || basis.(i) < basis.(!leaving)))
          then begin
            best := ratio;
            leaving := i
          end
        end
      done;
      if !leaving < 0 then `Unbounded
      else begin
        let l = !leaving in
        let pivot = tab.(l).(e) in
        for j = 0 to width - 1 do
          tab.(l).(j) <- tab.(l).(j) /. pivot
        done;
        for i = 0 to m do
          if i <> l then begin
            let factor = tab.(i).(e) in
            if Float.abs factor > 0.0 then
              for j = 0 to width - 1 do
                tab.(i).(j) <- tab.(i).(j) -. (factor *. tab.(l).(j))
              done
          end
        done;
        basis.(l) <- e;
        iterate ()
      end
    end
  in
  match iterate () with
  | `Unbounded -> Unbounded
  | `Optimal ->
    let primal = Array.make n 0.0 in
    Array.iteri
      (fun i v -> if v < n then primal.(v) <- tab.(i).(width - 1))
      basis;
    (* The dual value of constraint i is the reduced cost of its slack
       column in the final tableau. *)
    let dual = Array.init m (fun i -> tab.(m).(n + i)) in
    Optimal { value = tab.(m).(width - 1); primal; dual }

let maximize_exn problem =
  match maximize problem with
  | Optimal s -> s
  | Unbounded -> invalid_arg "Simplex.maximize_exn: unbounded problem"
