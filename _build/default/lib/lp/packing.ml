type result = {
  value : float;
  weights : float array;
}

let check_edges ~vertices edges =
  List.iter
    (fun e ->
      if e = [] then invalid_arg "Packing: empty hyperedge";
      List.iter
        (fun v ->
          if v < 0 || v >= vertices then
            invalid_arg "Packing: vertex index out of range")
        e)
    edges

let incidence ~vertices edges =
  let nedges = List.length edges in
  let inc = Array.make_matrix vertices nedges 0.0 in
  List.iteri
    (fun j e -> List.iter (fun v -> inc.(v).(j) <- 1.0) (List.sort_uniq Int.compare e))
    edges;
  inc

let edge_packing ~vertices ~edges =
  check_edges ~vertices edges;
  let nedges = List.length edges in
  if nedges = 0 then { value = 0.0; weights = [||] }
  else begin
    let inc = incidence ~vertices edges in
    let constraints =
      List.init vertices (fun v -> (inc.(v), 1.0))
    in
    let problem =
      Simplex.make ~objective:(Array.make nedges 1.0) ~constraints
    in
    let s = Simplex.maximize_exn problem in
    { value = s.Simplex.value; weights = s.Simplex.primal }
  end

let edge_cover ~vertices ~edges =
  check_edges ~vertices edges;
  let nedges = List.length edges in
  let covered = Array.make vertices false in
  List.iter (fun e -> List.iter (fun v -> covered.(v) <- true) e) edges;
  if Array.exists not covered then
    invalid_arg "Packing.edge_cover: some vertex lies in no edge";
  if vertices = 0 then { value = 0.0; weights = Array.make nedges 0.0 }
  else begin
    (* Solve the dual program max Σ x_v s.t. Σ_{v∈e} x_v ≤ 1 per edge;
       its optimal value is ρ* and the duals of the edge rows are the
       cover weights. *)
    let rows =
      List.map
        (fun e ->
          let row = Array.make vertices 0.0 in
          List.iter (fun v -> row.(v) <- 1.0) e;
          (row, 1.0))
        edges
    in
    let problem =
      Simplex.make ~objective:(Array.make vertices 1.0) ~constraints:rows
    in
    let s = Simplex.maximize_exn problem in
    { value = s.Simplex.value; weights = s.Simplex.dual }
  end

let vertex_cover ~vertices ~edges =
  check_edges ~vertices edges;
  if vertices = 0 then { value = 0.0; weights = [||] }
  else begin
    (* The dual of the edge-packing program: its optimal value is τ* and
       the duals of the vertex rows are the vertex-cover weights. *)
    let nedges = List.length edges in
    if nedges = 0 then { value = 0.0; weights = Array.make vertices 0.0 }
    else begin
      let inc = incidence ~vertices edges in
      let constraints = List.init vertices (fun v -> (inc.(v), 1.0)) in
      let problem =
        Simplex.make ~objective:(Array.make nedges 1.0) ~constraints
      in
      let s = Simplex.maximize_exn problem in
      { value = s.Simplex.value; weights = s.Simplex.dual }
    end
  end

let hypercube_exponents ~vertices ~edges =
  check_edges ~vertices edges;
  if vertices = 0 || edges = [] then (1.0, Array.make vertices 0.0)
  else begin
    (* Variables: e_0 .. e_{vertices-1}, then t.
       maximize t
       s.t.  t - Σ_{v ∈ edge} e_v ≤ 0   for every edge
             Σ_v e_v ≤ 1. *)
    let n = vertices + 1 in
    let objective = Array.make n 0.0 in
    objective.(vertices) <- 1.0;
    let edge_rows =
      List.map
        (fun e ->
          let row = Array.make n 0.0 in
          List.iter (fun v -> row.(v) <- -1.0) (List.sort_uniq Int.compare e);
          row.(vertices) <- 1.0;
          (row, 0.0))
        edges
    in
    let budget =
      let row = Array.make n 0.0 in
      for v = 0 to vertices - 1 do
        row.(v) <- 1.0
      done;
      (row, 1.0)
    in
    let problem =
      Simplex.make ~objective ~constraints:(edge_rows @ [ budget ])
    in
    let s = Simplex.maximize_exn problem in
    (s.Simplex.value, Array.sub s.Simplex.primal 0 vertices)
  end
