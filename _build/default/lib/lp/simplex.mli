(** A small dense simplex solver.

    Solves [maximize c·x subject to A x ≤ b, x ≥ 0] with [b ≥ 0], which
    makes the origin feasible and removes the need for a phase-I
    procedure. Every linear program in this repository (fractional edge
    packings and covers via duality, HyperCube share exponents) has this
    shape. Bland's anti-cycling rule is used, so the solver terminates on
    all inputs. *)

type problem

type solution = {
  value : float;  (** Optimal objective value. *)
  primal : float array;  (** Optimal assignment of the variables. *)
  dual : float array;
      (** Optimal dual values, one per constraint; used to read off
          fractional edge covers from vertex-packing programs. *)
}

type outcome =
  | Optimal of solution
  | Unbounded

val make :
  objective:float array -> constraints:(float array * float) list -> problem
(** [make ~objective ~constraints] builds the program
    [maximize objective·x s.t. row·x ≤ b for each (row, b), x ≥ 0].
    @raise Invalid_argument on dimension mismatch or a negative
    right-hand side. *)

val maximize : problem -> outcome

val maximize_exn : problem -> solution
(** @raise Invalid_argument when the program is unbounded. *)
