(** MapReduce jobs and programs (the formalization of Section 3).

    A job is a pair (µ, ρ): the map function turns each input fact into
    key-value pairs, pairs are grouped by key, and the reduce function
    turns each group into output facts. A program is a sequence of jobs.
    Values are facts, which is fully general here — arbitrary payloads
    can be tagged through relation names.

    As the paper observes, every MapReduce program is an MPC algorithm:
    map runs during the communication phase, the shuffle is the
    communication, and reduce is the computation phase. {!run_mpc}
    realizes that translation on the simulator, one round per job, and
    agrees with the sequential semantics {!run}. *)

open Lamp_relational

type key = Value.t list

type t = {
  map : Fact.t -> (key * Fact.t) list;
  reduce : key -> Instance.t -> Fact.t list;
}

type program = t list

val run_job : t -> Instance.t -> Instance.t
(** Sequential semantics of a single job. *)

val run : program -> Instance.t -> Instance.t
(** Sequential semantics of a program: each job consumes the previous
    job's output. *)

val run_job_mpc : ?seed:int -> p:int -> t -> Lamp_mpc.Cluster.t -> unit
(** Executes one job as one MPC round on an existing cluster: reducers
    are servers chosen by hashing the key. *)

val run_mpc :
  ?seed:int -> p:int -> program -> Instance.t -> Instance.t * Lamp_mpc.Stats.t
(** Runs a whole program on [p] servers and reports load statistics
    (one round per job). *)

(**/**)

val encode_pair : key * Fact.t -> Fact.t
val decode_pair : Fact.t -> key * Fact.t
