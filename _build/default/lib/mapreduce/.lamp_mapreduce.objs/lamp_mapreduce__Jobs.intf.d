lib/mapreduce/jobs.mli: Job
