lib/mapreduce/job.mli: Fact Instance Lamp_mpc Lamp_relational Value
