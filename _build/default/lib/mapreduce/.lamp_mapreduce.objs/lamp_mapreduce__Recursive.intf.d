lib/mapreduce/recursive.mli: Instance Lamp_relational
