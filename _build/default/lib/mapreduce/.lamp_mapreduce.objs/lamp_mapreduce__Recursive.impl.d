lib/mapreduce/recursive.ml: Array Fact Instance Job Lamp_relational Value
