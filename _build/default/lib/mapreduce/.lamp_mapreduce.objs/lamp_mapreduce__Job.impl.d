lib/mapreduce/job.ml: Array Fact Hashtbl Instance Lamp_mpc Lamp_relational List Map Option String Value
