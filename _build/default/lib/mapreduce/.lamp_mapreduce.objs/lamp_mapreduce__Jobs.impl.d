lib/mapreduce/jobs.ml: Array Fact Instance Job Lamp_cq Lamp_relational Value
