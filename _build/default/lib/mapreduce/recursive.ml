open Lamp_relational

(* Transitive closure in MapReduce (Afrati–Ullman [5, 10], cited in
   Section 3.2): each iteration is a join job plus the union with the
   previous closure. The naive (linear) iteration joins the closure with
   the base edges and needs as many jobs as the longest path; recursive
   doubling joins the closure with itself, halving the rounds to
   ⌈log₂ diameter⌉ — the round/communication trade-off the paper's
   multi-round discussion is about. *)

let join_closure_job ~with_rel =
  (* TC(x,y), with_rel(y,z) → TC(x,z), keyed on y; TC facts also pass
     through so the closure accumulates. *)
  {
    Job.map =
      (fun f ->
        let args = Fact.args f in
        match Fact.rel f with
        | "TC" ->
          (* Left operand keyed on its second column; in the doubling
             strategy the same closure also serves as the right operand,
             keyed on its first column. *)
          ([ Value.str "j"; args.(1) ], f)
          :: ([ Value.str "id"; args.(0); args.(1) ], f)
          ::
          (if with_rel = "TC" then [ ([ Value.str "j"; args.(0) ], f) ] else [])
        | r when r = with_rel && with_rel <> "TC" ->
          [ ([ Value.str "j"; args.(0) ], f) ]
        | _ -> []);
    reduce =
      (fun key group ->
        match key with
        | Value.Str "id" :: _ -> Instance.facts group
        | Value.Str "j" :: _ ->
          let tc = Instance.filter (fun f -> Fact.rel f = "TC") group in
          let right =
            if with_rel = "TC" then tc
            else Instance.filter (fun f -> Fact.rel f = with_rel) group
          in
          Instance.fold
            (fun f1 acc ->
              Instance.fold
                (fun f2 acc ->
                  (* f1 = TC(x,y); f2 = rel(y,z): key guarantees
                     f1.(1) = f2.(0) only for the join side, so check. *)
                  if Value.equal (Fact.args f1).(1) (Fact.args f2).(0) then
                    Fact.of_list "TC"
                      [ (Fact.args f1).(0); (Fact.args f2).(1) ]
                    :: acc
                  else acc)
                right acc)
            tc []
          @ Instance.facts tc
        | _ -> [])
  }

let seed_job ~edges =
  {
    Job.map =
      (fun f ->
        if Fact.rel f = edges && Fact.arity f = 2 then
          [ (Value.str "s" :: Array.to_list (Fact.args f), f) ]
        else []);
    reduce =
      (fun _ group ->
        Instance.fold
          (fun f acc -> Fact.make "TC" (Fact.args f) :: acc)
          group []);
  }

type strategy =
  | Linear  (** TC ← TC ⋈ E each round: diameter-many joins. *)
  | Doubling  (** TC ← TC ⋈ TC each round: ⌈log₂ diameter⌉ joins. *)

let transitive_closure ?(strategy = Doubling) ?(max_jobs = 64) ~edges instance =
  let tc_of i = Instance.filter (fun f -> Fact.rel f = "TC") i in
  let state = ref (Job.run_job (seed_job ~edges) instance) in
  (* The edge relation must stay visible to the linear iteration. *)
  let base = Instance.filter (fun f -> Fact.rel f = edges) instance in
  let jobs = ref 1 in
  let rec iterate () =
    if !jobs > max_jobs then
      invalid_arg "Recursive.transitive_closure: job limit exceeded";
    let join =
      match strategy with
      | Linear -> join_closure_job ~with_rel:edges
      | Doubling -> join_closure_job ~with_rel:"TC"
    in
    let next = Job.run_job join (Instance.union !state base) in
    incr jobs;
    if Instance.subset (tc_of next) (tc_of !state) then ()
    else begin
      state := next;
      iterate ()
    end
  in
  iterate ();
  (tc_of !state, !jobs)
