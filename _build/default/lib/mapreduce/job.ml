open Lamp_relational

type key = Value.t list

type t = {
  map : Fact.t -> (key * Fact.t) list;
  reduce : key -> Instance.t -> Fact.t list;
}

type program = t list

module Kmap = Map.Make (struct
  type t = key

  let compare = List.compare Value.compare
end)

let group pairs =
  List.fold_left
    (fun acc (k, v) ->
      let prev = Option.value ~default:Instance.empty (Kmap.find_opt k acc) in
      Kmap.add k (Instance.add v prev) acc)
    Kmap.empty pairs

(* Sequential semantics: map every fact, group by key, reduce every
   group, output the union. *)
let run_job job instance =
  let pairs =
    Instance.fold (fun f acc -> List.rev_append (job.map f) acc) instance []
  in
  Kmap.fold
    (fun k group acc ->
      List.fold_left (fun acc f -> Instance.add f acc) acc (job.reduce k group))
    (group pairs) Instance.empty

let run program instance =
  List.fold_left (fun data job -> run_job job data) instance program

(* ------------------------------------------------------------------ *)
(* MPC translation: one MPC round per job. The map phase runs at each
   server during the communication phase, pairs travel to the reducer
   hashed from their key, and the reduce phase is the computation
   phase. Keys are materialized as an extra column so a server can
   regroup what it received. *)

let key_hash ~seed ~p (k : key) =
  Hashtbl.seeded_hash (seed land max_int)
    (String.concat "\000" (List.map Value.to_string k))
  mod p

(* A key-value pair in transit is encoded as a fact
   [__kv(arity_of_key, key..., rel_of_value, value...)]. *)
let encode_pair (k, v) =
  Fact.of_list "__kv"
    ((Value.int (List.length k) :: k)
    @ (Value.str (Fact.rel v) :: Array.to_list (Fact.args v)))

let decode_pair f =
  match Array.to_list (Fact.args f) with
  | Value.Int klen :: rest ->
    let rec split i acc rest =
      if i = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> invalid_arg "Job.decode_pair: truncated key"
        | v :: rest -> split (i - 1) (v :: acc) rest
    in
    let key, rest = split klen [] rest in
    (match rest with
    | Value.Str rel :: args -> (key, Fact.of_list rel args)
    | _ -> invalid_arg "Job.decode_pair: malformed value")
  | _ -> invalid_arg "Job.decode_pair: malformed key length"

let run_job_mpc ?(seed = 0) ~p job cluster =
  Lamp_mpc.Cluster.run_round cluster
    {
      Lamp_mpc.Cluster.communicate =
        (fun _src local ->
          Instance.fold
            (fun f acc ->
              List.fold_left
                (fun acc (k, v) ->
                  (key_hash ~seed ~p k, encode_pair (k, v)) :: acc)
                acc (job.map f))
            local []);
      compute =
        (fun _ ~received ~previous:_ ->
          let pairs =
            Instance.fold (fun f acc -> decode_pair f :: acc) received []
          in
          Kmap.fold
            (fun k g acc ->
              List.fold_left
                (fun acc f -> Instance.add f acc)
                acc (job.reduce k g))
            (group pairs) Instance.empty);
    }

let run_mpc ?(seed = 0) ~p program instance =
  let cluster = Lamp_mpc.Cluster.create ~p instance in
  List.iter (fun job -> run_job_mpc ~seed ~p job cluster) program;
  (Lamp_mpc.Cluster.union_all cluster, Lamp_mpc.Cluster.stats cluster)
