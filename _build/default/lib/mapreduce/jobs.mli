(** Ready-made MapReduce jobs for the paper's examples. *)

val repartition_join : Job.t
(** Example 3.1(1a) as one job: both relations keyed on the join
    attribute, each reducer joins its group. *)

val triangle_program : Job.program
(** Example 3.1(2) as a two-job program computing the triangle query by
    a cascade of binary joins (output relation [H]). *)

val degree_count : rel:string -> pos:int -> Job.t
(** Emits [Degree(v, n)] for every value [v] occurring [n] times in the
    given column — the distributed heavy-hitter detector. *)
