(** Recursive queries in MapReduce: transitive closure (Afrati–Ullman
    [5, 10], cited in Section 3.2).

    Each iteration is one MapReduce job (hence one MPC round). The
    linear strategy joins the growing closure with the base edges and
    needs about diameter-many jobs; recursive doubling joins the closure
    with itself and converges in about ⌈log₂ diameter⌉ + 1 jobs at the
    price of larger intermediate joins — a rounds-vs-work trade-off in
    the spirit of the paper's multi-round discussion. *)

open Lamp_relational

type strategy =
  | Linear
  | Doubling

val transitive_closure :
  ?strategy:strategy ->
  ?max_jobs:int ->
  edges:string ->
  Instance.t ->
  Instance.t * int
(** [(closure, jobs)] of the binary relation [edges]; [jobs] counts the
    MapReduce jobs executed (seed job included).
    @raise Invalid_argument past [max_jobs] (default 64). *)
