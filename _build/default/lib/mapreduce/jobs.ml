open Lamp_relational

(* The repartition join (Example 3.1(1a)) as a single MapReduce job:
   R(a,b) maps to ⟨b : R(a,b)⟩, S(c,d) to ⟨c : S(c,d)⟩; each reducer
   joins its group. *)
let repartition_join =
  {
    Job.map =
      (fun f ->
        let args = Fact.args f in
        match Fact.rel f with
        | "R" when Array.length args = 2 -> [ ([ args.(1) ], f) ]
        | "S" when Array.length args = 2 -> [ ([ args.(0) ], f) ]
        | _ -> []);
    reduce =
      (fun _key group ->
        Instance.facts (Lamp_cq.Eval.eval Lamp_cq.Examples.q1_join group));
  }

(* The two-round triangle (Example 3.1(2)) as a two-job program: job 1
   joins R and S on y into K and forwards T untouched (mapped to a key
   private to each T fact so it passes through); job 2 joins K and T on
   the pair (x, z). *)
let triangle_program =
  let job1 =
    {
      Job.map =
        (fun f ->
          let args = Fact.args f in
          match Fact.rel f with
          | "R" -> [ ([ args.(1) ], f) ]
          | "S" -> [ ([ args.(0) ], f) ]
          | "T" -> [ (Value.str "t" :: Array.to_list args, f) ]
          | _ -> []);
      reduce =
        (fun _key group ->
          Instance.facts
            (Lamp_cq.Eval.eval
               (Lamp_cq.Parser.query "K(x,y,z) <- R(x,y), S(y,z)")
               group)
          @ Instance.facts (Instance.filter (fun f -> Fact.rel f = "T") group));
    }
  in
  let job2 =
    {
      Job.map =
        (fun f ->
          let args = Fact.args f in
          match Fact.rel f with
          | "K" -> [ ([ args.(0); args.(2) ], f) ]
          | "T" -> [ ([ args.(1); args.(0) ], f) ]
          | _ -> []);
      reduce =
        (fun _key group ->
          Instance.facts
            (Lamp_cq.Eval.eval
               (Lamp_cq.Parser.query "H(x,y,z) <- K(x,y,z), T(z,x)")
               group));
    }
  in
  [ job1; job2 ]

(* Per-value frequency of a column — the heavy-hitter detector as a
   MapReduce job. *)
let degree_count ~rel ~pos =
  {
    Job.map =
      (fun f ->
        if Fact.rel f = rel && pos < Fact.arity f then
          [ ([ (Fact.args f).(pos) ], f) ]
        else []);
    reduce =
      (fun key group ->
        match key with
        | [ v ] -> [ Fact.of_list "Degree" [ v; Value.int (Instance.cardinal group) ] ]
        | _ -> []);
  }
