type t = Value.t array

let compare t1 t2 =
  let len1 = Array.length t1 and len2 = Array.length t2 in
  if len1 <> len2 then Int.compare len1 len2
  else
    let rec go i =
      if i >= len1 then 0
      else
        let c = Value.compare t1.(i) t2.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal t1 t2 = compare t1 t2 = 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let arity = Array.length
let of_list = Array.of_list
let to_list = Array.to_list

let of_ints is = Array.of_list (List.map Value.int is)

let pp ppf t =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ",") Value.pp) t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
