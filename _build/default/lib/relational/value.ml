type t =
  | Int of int
  | Str of string

let compare v1 v2 =
  match v1, v2 with
  | Int i1, Int i2 -> Int.compare i1 i2
  | Str s1, Str s2 -> String.compare s1 s2
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let equal v1 v2 = compare v1 v2 = 0

let hash = function
  | Int i -> Hashtbl.hash (0, i)
  | Str s -> Hashtbl.hash (1, s)

let int i = Int i
let str s = Str s

let to_string = function
  | Int i -> string_of_int i
  | Str s -> s

let pp ppf v = Fmt.string ppf (to_string v)

(* Parses an integer literal when possible, a symbol otherwise; the
   textual formats of facts and queries rely on this. *)
let of_string s =
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> Str s

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let set_of_list vs = Set.of_list vs

let pp_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp) (Set.elements s)
