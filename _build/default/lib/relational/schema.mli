(** Database schemas: relation names with associated arities. *)

type t

val empty : t

val add : string -> arity:int -> t -> t
(** @raise Invalid_argument if the relation was already declared with a
    different arity, or if [arity] is negative. *)

val of_list : (string * int) list -> t

val arity : t -> string -> int option
val mem : t -> string -> bool
val relations : t -> string list
val to_list : t -> (string * int) list

val conforms : t -> Fact.t -> bool
(** [conforms t f] holds when [f]'s relation is declared in [t] with
    matching arity. *)

val union : t -> t -> t
(** @raise Invalid_argument on conflicting arities. *)

val of_instance_facts : Fact.t list -> t
(** Infers the schema of a list of facts.
    @raise Invalid_argument if the same relation occurs with two
    different arities. *)

val pp : t Fmt.t
