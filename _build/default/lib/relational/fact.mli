(** Facts: a relation name applied to a tuple of domain values.

    A database instance is a finite set of facts (Section 2 of the
    paper). *)

type t = private {
  rel : string;
  args : Tuple.t;
}

val make : string -> Tuple.t -> t
val of_list : string -> Value.t list -> t

val of_ints : string -> int list -> t
(** [of_ints "R" [1; 2]] is the fact [R(1,2)]. *)

val rel : t -> string
val args : t -> Tuple.t
val arity : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val adom : t -> Value.Set.t
(** [adom f] is the set of domain values occurring in [f]. *)

val pp : t Fmt.t
val to_string : t -> string

val of_string : string -> t
(** Parses the textual format [R(a,1,b)].
    @raise Invalid_argument on malformed input. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val pp_set : Set.t Fmt.t
