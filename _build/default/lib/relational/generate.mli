(** Synthetic instance generators.

    These stand in for the big-data workloads of the paper's cited
    experiments: skew-free ("matching") databases as used in the lower
    bounds of Beame–Koutris–Suciu, Zipf-skewed relations exhibiting heavy
    hitters, and random graphs for the triangle queries. All randomized
    generators take an explicit [Random.State.t] so that experiments are
    reproducible. *)

val random_graph :
  ?rel:string -> rng:Random.State.t -> nodes:int -> edges:int -> unit ->
  Instance.t
(** Uniform random directed graph ([edges] samples with replacement, so
    the result may contain slightly fewer distinct facts). *)

val matching : ?rel:string -> size:int -> offset:int -> unit -> Instance.t
(** Skew-free relation in which every domain value occurs exactly once:
    facts [rel(offset+i, offset+size+i)] for [i < size]. This realizes
    the "matching databases" of the paper's Section 3.2. *)

val zipf_sampler : rng:Random.State.t -> n:int -> s:float -> unit -> int
(** Zipf(s) sampler over [1..n]; rank 1 is the heaviest hitter. *)

val zipf_relation :
  ?rel:string -> rng:Random.State.t -> size:int -> domain:int -> s:float ->
  unit -> Instance.t
(** Binary relation with both columns Zipf-distributed; [s] around 1.0
    and beyond produces pronounced heavy hitters. *)

val skewed_star :
  ?rel:string -> hub:int -> size:int -> offset:int -> unit -> Instance.t
(** Worst-case skew: all facts share the join value [hub], i.e.
    [rel(hub, offset+i)]. *)

val random_relation :
  rng:Random.State.t -> rel:string -> arity:int -> size:int -> domain:int ->
  unit -> Instance.t

val random_instance :
  rng:Random.State.t -> schema:Schema.t -> size:int -> domain:int -> unit ->
  Instance.t
(** Random instance over a schema, used by property-based tests. *)
