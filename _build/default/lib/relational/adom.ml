let fact_domain_distinct_from fact instance =
  not (Value.Set.subset (Fact.adom fact) (Instance.adom instance))

let domain_distinct_from j i =
  let adom_i = Instance.adom i in
  Instance.facts j
  |> List.for_all (fun f ->
         not (Value.Set.subset (Fact.adom f) adom_i))

let fact_domain_disjoint_from fact instance =
  Value.Set.disjoint (Fact.adom fact) (Instance.adom instance)

let domain_disjoint_from j i =
  let adom_i = Instance.adom i in
  Instance.facts j
  |> List.for_all (fun f -> Value.Set.disjoint (Fact.adom f) adom_i)

(* Union-find over the active domain; two values are linked when they
   co-occur in a fact, so classes are the connected components. *)
module Uf = struct
  type t = (Value.t, Value.t) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec find t v =
    match Hashtbl.find_opt t v with
    | None ->
      Hashtbl.add t v v;
      v
    | Some p when Value.equal p v -> v
    | Some p ->
      let r = find t p in
      Hashtbl.replace t v r;
      r

  let union t v1 v2 =
    let r1 = find t v1 and r2 = find t v2 in
    if not (Value.equal r1 r2) then Hashtbl.replace t r1 r2
end

let components instance =
  let uf = Uf.create () in
  Instance.iter
    (fun f ->
      let vs = Value.Set.elements (Fact.adom f) in
      match vs with
      | [] -> ()
      | v0 :: rest ->
        ignore (Uf.find uf v0);
        List.iter (fun v -> Uf.union uf v0 v) rest)
    instance;
  let by_root = Hashtbl.create 16 in
  Instance.iter
    (fun f ->
      match Value.Set.choose_opt (Fact.adom f) with
      | None ->
        (* Nullary facts have no domain values: each forms a component of
           its own per the minimality clause of the definition. *)
        Hashtbl.add by_root (Value.str (Fact.to_string f)) (Instance.singleton f)
      | Some v ->
        let root = Uf.find uf v in
        let prev =
          match Hashtbl.find_opt by_root root with
          | Some i -> i
          | None -> Instance.empty
        in
        Hashtbl.replace by_root root (Instance.add f prev))
    instance;
  Hashtbl.fold (fun _ comp acc -> comp :: acc) by_root []
  |> List.sort Instance.compare

let is_component j i =
  (not (Instance.is_empty j))
  && Instance.subset j i
  && List.exists (Instance.equal j) (components i)
