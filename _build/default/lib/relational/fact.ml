type t = {
  rel : string;
  args : Tuple.t;
}

let make rel args = { rel; args }
let of_list rel args = { rel; args = Tuple.of_list args }
let of_ints rel is = { rel; args = Tuple.of_ints is }

let rel f = f.rel
let args f = f.args
let arity f = Tuple.arity f.args

let compare f1 f2 =
  let c = String.compare f1.rel f2.rel in
  if c <> 0 then c else Tuple.compare f1.args f2.args

let equal f1 f2 = compare f1 f2 = 0
let hash f = Hashtbl.hash f.rel + (31 * Tuple.hash f.args)

let adom f =
  Array.fold_left (fun acc v -> Value.Set.add v acc) Value.Set.empty f.args

let pp ppf f =
  Fmt.pf ppf "%s(%a)" f.rel Fmt.(array ~sep:(any ",") Value.pp) f.args

let to_string f = Fmt.str "%a" pp f

(* Textual format: R(a, 1, b). Whitespace around arguments is ignored. *)
let of_string s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None -> invalid_arg (Fmt.str "Fact.of_string: missing '(' in %S" s)
  | Some i ->
    if String.length s = 0 || s.[String.length s - 1] <> ')' then
      invalid_arg (Fmt.str "Fact.of_string: missing ')' in %S" s)
    else
      let rel = String.trim (String.sub s 0 i) in
      let inner = String.sub s (i + 1) (String.length s - i - 2) in
      let parts =
        if String.trim inner = "" then []
        else String.split_on_char ',' inner
      in
      let args = List.map (fun p -> Value.of_string (String.trim p)) parts in
      if rel = "" then invalid_arg "Fact.of_string: empty relation name"
      else of_list rel args

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let pp_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp) (Set.elements s)
