(** Tuples of domain values.

    A tuple is an immutable array of {!Value.t}; callers must not mutate
    tuples handed to the instance structures. *)

type t = Value.t array

val compare : t -> t -> int
(** Shorter tuples precede longer ones; same-length tuples compare
    lexicographically. *)

val equal : t -> t -> bool
val hash : t -> int

val arity : t -> int
val of_list : Value.t list -> t
val to_list : t -> Value.t list

val of_ints : int list -> t
(** [of_ints [1; 2]] is the tuple [(Int 1, Int 2)]; convenient in tests
    and workload generators. *)

val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
