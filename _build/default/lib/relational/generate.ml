let random_graph ?(rel = "E") ~rng ~nodes ~edges () =
  let rec add i acc =
    if i >= edges then acc
    else
      let a = Random.State.int rng nodes
      and b = Random.State.int rng nodes in
      add (i + 1) (Instance.add (Fact.of_ints rel [ a; b ]) acc)
  in
  add 0 Instance.empty

let matching ?(rel = "R") ~size ~offset () =
  let rec add i acc =
    if i >= size then acc
    else
      add (i + 1)
        (Instance.add (Fact.of_ints rel [ offset + i; offset + size + i ]) acc)
  in
  add 0 Instance.empty

(* Inverse-CDF sampling of a Zipf(s) law over [1, n]: heavy hitters are
   the small ranks. The CDF is precomputed once. *)
let zipf_sampler ~rng ~n ~s =
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  Array.iteri
    (fun i w ->
      total := !total +. w;
      cdf.(i) <- !total)
    weights;
  let total = !total in
  fun () ->
    let x = Random.State.float rng total in
    (* Binary search for the first index with cdf >= x. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) >= x then search lo mid else search (mid + 1) hi
    in
    1 + search 0 (n - 1)

let zipf_relation ?(rel = "R") ~rng ~size ~domain ~s () =
  let sample = zipf_sampler ~rng ~n:domain ~s in
  let rec add i acc =
    if i >= size then acc
    else add (i + 1) (Instance.add (Fact.of_ints rel [ sample (); sample () ]) acc)
  in
  add 0 Instance.empty

let skewed_star ?(rel = "R") ~hub ~size ~offset () =
  let rec add i acc =
    if i >= size then acc
    else add (i + 1) (Instance.add (Fact.of_ints rel [ hub; offset + i ]) acc)
  in
  add 0 Instance.empty

let random_relation ~rng ~rel ~arity ~size ~domain () =
  let rec add i acc =
    if i >= size then acc
    else
      let args = List.init arity (fun _ -> Random.State.int rng domain) in
      add (i + 1) (Instance.add (Fact.of_ints rel args) acc)
  in
  add 0 Instance.empty

let random_instance ~rng ~schema ~size ~domain () =
  let rels = Schema.to_list schema in
  match rels with
  | [] -> Instance.empty
  | _ ->
    let nrels = List.length rels in
    let rec add i acc =
      if i >= size then acc
      else
        let rel, arity = List.nth rels (Random.State.int rng nrels) in
        let args = List.init arity (fun _ -> Random.State.int rng domain) in
        add (i + 1) (Instance.add (Fact.of_ints rel args) acc)
    in
    add 0 Instance.empty
