(** Domain values.

    The infinite domain [dom] of the paper is represented by the disjoint
    union of integers and strings. Integers give cheap dense domains for
    generated workloads; strings give readable constants in examples and
    parsed programs. *)

type t =
  | Int of int
  | Str of string

val compare : t -> t -> int
(** Total order: all [Int] values precede all [Str] values. *)

val equal : t -> t -> bool
val hash : t -> int

val int : int -> t
(** [int i] is the domain value [Int i]. *)

val str : string -> t
(** [str s] is the domain value [Str s]. *)

val to_string : t -> string

val of_string : string -> t
(** [of_string s] parses an integer literal when possible and falls back
    to a string symbol otherwise. *)

val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
val pp_set : Set.t Fmt.t
