(** Active-domain relations between facts and instances (Section 5.2 of
    the paper): domain distinctness, domain disjointness, and connected
    components. *)

val fact_domain_distinct_from : Fact.t -> Instance.t -> bool
(** [fact_domain_distinct_from f i] holds when [adom f \ adom i ≠ ∅],
    i.e. [f] contains at least one value not occurring in [i]. *)

val domain_distinct_from : Instance.t -> Instance.t -> bool
(** [domain_distinct_from j i]: every fact of [j] is domain distinct from
    [i]. Used to define the class [Mdistinct]. *)

val fact_domain_disjoint_from : Fact.t -> Instance.t -> bool
(** [fact_domain_disjoint_from f i] holds when [adom f ∩ adom i = ∅]. *)

val domain_disjoint_from : Instance.t -> Instance.t -> bool
(** [domain_disjoint_from j i]: every fact of [j] is domain disjoint from
    [i]. Used to define the class [Mdisjoint]. *)

val components : Instance.t -> Instance.t list
(** The connected components of an instance: minimal nonempty
    subinstances [J ⊆ I] with [adom J ∩ adom (I \ J) = ∅]. Facts are
    connected when they share a domain value. Nullary facts form
    singleton components. The result partitions the instance and is
    sorted for determinism. *)

val is_component : Instance.t -> Instance.t -> bool
(** [is_component j i] holds when [j] is one of [components i]. *)
