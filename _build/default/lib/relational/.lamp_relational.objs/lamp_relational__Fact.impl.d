lib/relational/fact.ml: Array Fmt Hashtbl List Map Set String Tuple Value
