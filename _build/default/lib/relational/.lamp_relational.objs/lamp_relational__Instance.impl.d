lib/relational/instance.ml: Buffer Fact Fmt List Map Schema String Tuple Value
