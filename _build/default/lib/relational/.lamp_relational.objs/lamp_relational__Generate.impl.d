lib/relational/generate.ml: Array Fact Float Instance List Random Schema
