lib/relational/instance.mli: Fact Fmt Schema Tuple Value
