lib/relational/generate.mli: Instance Random Schema
