lib/relational/adom.ml: Fact Hashtbl Instance List Value
