lib/relational/adom.mli: Fact Instance
