lib/relational/schema.ml: Fact Fmt List Map String
