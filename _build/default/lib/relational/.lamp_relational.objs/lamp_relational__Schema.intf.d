lib/relational/schema.mli: Fact Fmt
