lib/relational/fact.mli: Fmt Map Set Tuple Value
