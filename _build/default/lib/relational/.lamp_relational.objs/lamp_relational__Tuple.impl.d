lib/relational/tuple.ml: Array Fmt Int List Map Set Value
