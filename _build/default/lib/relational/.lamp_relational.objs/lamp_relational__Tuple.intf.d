lib/relational/tuple.mli: Fmt Map Set Value
