module Smap = Map.Make (String)

type t = int Smap.t

let empty = Smap.empty

let add name ~arity t =
  if arity < 0 then invalid_arg "Schema.add: negative arity"
  else
    match Smap.find_opt name t with
    | Some a when a <> arity ->
      invalid_arg
        (Fmt.str "Schema.add: %s redeclared with arity %d (was %d)" name arity
           a)
    | _ -> Smap.add name arity t

let of_list l =
  List.fold_left (fun t (name, arity) -> add name ~arity t) empty l

let arity t name = Smap.find_opt name t
let mem t name = Smap.mem name t
let relations t = List.map fst (Smap.bindings t)
let to_list t = Smap.bindings t

let conforms t fact =
  match arity t (Fact.rel fact) with
  | Some a -> a = Fact.arity fact
  | None -> false

let union t1 t2 =
  Smap.union
    (fun name a1 a2 ->
      if a1 = a2 then Some a1
      else
        invalid_arg
          (Fmt.str "Schema.union: %s has arities %d and %d" name a1 a2))
    t1 t2

let of_instance_facts facts =
  List.fold_left
    (fun t f ->
      let name = Fact.rel f and arity = Fact.arity f in
      add name ~arity t)
    empty facts

let pp ppf t =
  let pp_rel ppf (name, arity) = Fmt.pf ppf "%s/%d" name arity in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_rel) (Smap.bindings t)
