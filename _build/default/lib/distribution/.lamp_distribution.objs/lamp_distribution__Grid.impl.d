lib/distribution/grid.ml: Array
