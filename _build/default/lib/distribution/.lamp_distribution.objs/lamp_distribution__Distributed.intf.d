lib/distribution/distributed.mli: Ast Instance Lamp_cq Lamp_relational Node Policy
