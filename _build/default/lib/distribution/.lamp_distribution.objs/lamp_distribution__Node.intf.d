lib/distribution/node.mli: Fmt Map Set
