lib/distribution/grid.mli:
