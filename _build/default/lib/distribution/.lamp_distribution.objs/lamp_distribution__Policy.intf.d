lib/distribution/policy.mli: Ast Fact Fmt Grid Instance Lamp_cq Lamp_relational Node Value
