lib/distribution/node.ml: Fmt Hashtbl Int List Map Set
