lib/distribution/distributed.ml: Eval Instance Lamp_cq Lamp_relational List Policy
