lib/distribution/policy.ml: Array Ast Fact Fmt Grid Hashtbl Instance Lamp_cq Lamp_relational List Node Option Value
