(** Coordinate grids for HyperCube-style policies (Example 3.2).

    A grid with dimension vector [α₁ × … × αₖ] identifies each of the
    [α₁·…·αₖ] nodes with a coordinate vector; the HyperCube algorithm
    sends a fact to all nodes matching its hashed partial coordinate. *)

type t

val make : int array -> t
(** @raise Invalid_argument on an empty vector or a dimension < 1. *)

val size : t -> int
(** Total number of nodes (the product of the dimensions). *)

val dims : t -> int array

val encode : t -> int array -> int
(** Row-major encoding of a full coordinate.
    @raise Invalid_argument when out of range. *)

val decode : t -> int -> int array

val matching : t -> int option array -> (int -> unit) -> unit
(** [matching t partial f] calls [f] on every node whose coordinate
    agrees with the pinned positions of [partial]; [None] positions
    range over their whole dimension. *)
