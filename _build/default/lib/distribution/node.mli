(** Network nodes. A network is a nonempty finite set of node names
    (Section 4.1); nodes are dense integers so they double as MPC server
    identifiers. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : t Fmt.t
(** Prints as the paper's κ-notation, e.g. [κ0]. *)

val range : int -> t list
(** [range p] is the network [{κ0, …, κ(p-1)}]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
