type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash

let pp ppf n = Fmt.pf ppf "κ%d" n

let range p = List.init p (fun i -> i)

module Set = Set.Make (Int)
module Map = Map.Make (Int)
