(** Distribution policies (Section 4.1 of the paper).

    A distribution policy [P = (U, rfacts_P)] pairs an optional finite
    universe with a responsibility relation between nodes and facts. Any
    mapping from facts to node sets can be expressed; the constructors
    below cover the families the paper discusses: explicitly enumerated
    policies (the class Pfin), hash-based repartitionings, HyperCube
    grids, and the domain-guided policies of Section 5.2.2. *)

open Lamp_relational
open Lamp_cq

type kind =
  | Explicit
  | Hash
  | Hypercube
  | Domain_guided
  | Custom

type t

val make :
  ?kind:kind ->
  ?universe:Value.Set.t ->
  name:string ->
  nodes:Node.t list ->
  (Node.t -> Fact.t -> bool) ->
  t
(** Wraps an arbitrary responsibility predicate.
    @raise Invalid_argument on an empty network. *)

val name : t -> string
val kind : t -> kind
val nodes : t -> Node.t list

val universe : t -> Value.Set.t option
(** The policy's universe, when finite and known. The
    parallel-correctness deciders require it. *)

val responsible : t -> Node.t -> Fact.t -> bool
(** [responsible t κ f]: whether node [κ] is responsible for fact [f],
    i.e. [f ∈ rfacts_P(κ)]. *)

val responsible_nodes : t -> Fact.t -> Node.t list

val loc_inst : t -> Instance.t -> Node.t -> Instance.t
(** [loc_inst t i κ] is the local instance [I ∩ rfacts_P(κ)]. *)

val with_universe : Value.Set.t -> t -> t
val pp : t Fmt.t

(** {1 Constructors} *)

val explicit :
  ?universe:Value.Set.t -> name:string -> (Node.t * Fact.t list) list -> t
(** A policy of class Pfin: all (node, fact) responsibility pairs listed
    explicitly. The universe defaults to the values occurring in the
    listed facts. *)

val hash_value : seed:int -> buckets:int -> Value.t -> int
(** The seeded hash family used by hash and HyperCube policies. *)

type unlisted =
  | Drop  (** Relations without a listed column belong to no node. *)
  | Broadcast  (** Such relations are everyone's responsibility. *)

val hash_by_position :
  ?universe:Value.Set.t ->
  ?seed:int ->
  ?unlisted:unlisted ->
  name:string ->
  p:int ->
  (string * int) list ->
  t
(** Repartition policy (Example 3.1(1a)): a fact of relation [r] with
    listed column [c] is the responsibility of the node its [c]-th value
    hashes to. *)

val hypercube :
  ?universe:Value.Set.t ->
  ?seed:int ->
  name:string ->
  query:Ast.t ->
  shares:(string * int) list ->
  unit ->
  t * Grid.t
(** The HyperCube policy of a positive CQ (Example 3.2): nodes form a
    grid with one dimension of size [shares v] per body variable; a fact
    matching a body atom is the responsibility of every node agreeing
    with the hashed coordinates of the atom's variables. Facts that
    cannot instantiate any atom (e.g. mismatching a repeated variable or
    a constant) belong to no node. Every HyperCube policy strongly
    saturates its query, whatever the shares and hash seeds.
    @raise Invalid_argument on non-positive queries, missing shares, or
    shares < 1. *)

val hypercube_replication :
  query:Ast.t -> shares:(string * int) list -> Fact.t -> int
(** Number of nodes a fact is replicated to under the HyperCube policy. *)

val range :
  ?universe:Value.Set.t ->
  ?unlisted:unlisted ->
  name:string ->
  rel:string ->
  pos:int ->
  Value.t list ->
  t
(** Primary horizontal fragmentation by range — the paper's Section 4.1
    example of a Customer relation partitioned by a threshold on the
    area code. [k] thresholds split the value order into [k+1] ranges,
    one node each; facts of [rel] go to the node owning the range of
    their [pos]-th value.
    @raise Invalid_argument on an empty threshold list. *)

val domain_guided :
  ?universe:Value.Set.t ->
  name:string ->
  nodes:Node.t list ->
  (Value.t -> Node.Set.t) ->
  t
(** The domain-guided policy [P_α] induced by a domain assignment [α]
    (Section 5.2.2): every node of [α(a)] is responsible for every fact
    containing [a]. *)

val broadcast_all : ?universe:Value.Set.t -> name:string -> p:int -> unit -> t
(** Every node is responsible for every fact — the "ideal distribution"
    witnessing coordination-freeness in Theorem 5.3. *)
