type t = {
  dims : int array;
  size : int;
}

let make dims =
  if Array.length dims = 0 then invalid_arg "Grid.make: empty dimension vector";
  Array.iter
    (fun d -> if d < 1 then invalid_arg "Grid.make: dimensions must be >= 1")
    dims;
  { dims; size = Array.fold_left ( * ) 1 dims }

let size t = t.size
let dims t = Array.copy t.dims

let encode t coord =
  if Array.length coord <> Array.length t.dims then
    invalid_arg "Grid.encode: wrong coordinate dimension";
  let node = ref 0 in
  Array.iteri
    (fun i c ->
      if c < 0 || c >= t.dims.(i) then
        invalid_arg "Grid.encode: coordinate out of range";
      node := (!node * t.dims.(i)) + c)
    coord;
  !node

let decode t node =
  if node < 0 || node >= t.size then invalid_arg "Grid.decode: node out of range";
  let coord = Array.make (Array.length t.dims) 0 in
  let rest = ref node in
  for i = Array.length t.dims - 1 downto 0 do
    coord.(i) <- !rest mod t.dims.(i);
    rest := !rest / t.dims.(i)
  done;
  coord

(* Enumerate all nodes matching a partial coordinate: fixed positions
   pinned, [None] positions free. *)
let matching t partial f =
  if Array.length partial <> Array.length t.dims then
    invalid_arg "Grid.matching: wrong coordinate dimension";
  let n = Array.length t.dims in
  let coord = Array.make n 0 in
  let rec go i =
    if i >= n then f (encode t coord)
    else
      match partial.(i) with
      | Some c ->
        coord.(i) <- c;
        go (i + 1)
      | None ->
        for c = 0 to t.dims.(i) - 1 do
          coord.(i) <- c;
          go (i + 1)
        done
  in
  go 0
