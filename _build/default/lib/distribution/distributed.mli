(** One-round distributed evaluation under a distribution policy.

    [eval q p i] is the paper's [⟦Q, P⟧(I) = ⋃_κ Q(loc-inst_{P,I}(κ))]:
    reshuffle the data according to the policy, evaluate the query
    locally everywhere, and take the union. Parallel-correctness asks
    when this equals [Q(I)]. *)

open Lamp_relational
open Lamp_cq

val eval : Ast.t -> Policy.t -> Instance.t -> Instance.t
(** The one-round result [⟦Q, P⟧(I)]. *)

val eval_ucq : Ast.t list -> Policy.t -> Instance.t -> Instance.t

val local_results : Ast.t -> Policy.t -> Instance.t -> (Node.t * Instance.t) list
(** Per-node local results, before the union. *)

val max_load : Policy.t -> Instance.t -> int
(** Largest local instance over the network — the quantity the MPC load
    bounds of Section 3 are about. *)

val total_load : Policy.t -> Instance.t -> int
(** Sum of the local instance sizes (the "communication cost" of the
    Shares literature; counts replication). *)
