open Lamp_relational
open Lamp_cq

let eval query policy instance =
  List.fold_left
    (fun acc node ->
      Instance.union acc (Eval.eval query (Policy.loc_inst policy instance node)))
    Instance.empty (Policy.nodes policy)

let eval_ucq queries policy instance =
  List.fold_left
    (fun acc node ->
      Instance.union acc
        (Eval.eval_ucq queries (Policy.loc_inst policy instance node)))
    Instance.empty (Policy.nodes policy)

let local_results query policy instance =
  List.map
    (fun node ->
      (node, Eval.eval query (Policy.loc_inst policy instance node)))
    (Policy.nodes policy)

let max_load policy instance =
  List.fold_left
    (fun acc node ->
      max acc (Instance.cardinal (Policy.loc_inst policy instance node)))
    0 (Policy.nodes policy)

let total_load policy instance =
  List.fold_left
    (fun acc node ->
      acc + Instance.cardinal (Policy.loc_inst policy instance node))
    0 (Policy.nodes policy)
