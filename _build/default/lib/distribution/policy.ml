open Lamp_relational
open Lamp_cq

type kind =
  | Explicit
  | Hash
  | Hypercube
  | Domain_guided
  | Custom

type t = {
  name : string;
  kind : kind;
  nodes : Node.t list;
  universe : Value.Set.t option;
  responsible : Node.t -> Fact.t -> bool;
}

let make ?(kind = Custom) ?universe ~name ~nodes responsible =
  if nodes = [] then invalid_arg "Policy.make: empty network";
  { name; kind; nodes; universe; responsible }

let name t = t.name
let kind t = t.kind
let nodes t = t.nodes
let universe t = t.universe
let responsible t node fact = t.responsible node fact

let responsible_nodes t fact =
  List.filter (fun n -> t.responsible n fact) t.nodes

let loc_inst t instance node =
  Instance.filter (fun f -> t.responsible node f) instance

let with_universe u t = { t with universe = Some u }

let pp ppf t =
  Fmt.pf ppf "%s (%d nodes)" t.name (List.length t.nodes)

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)

let explicit ?universe ~name assignments =
  if assignments = [] then invalid_arg "Policy.explicit: empty network";
  let table =
    List.fold_left
      (fun acc (node, facts) ->
        let prev = Option.value ~default:Fact.Set.empty (Node.Map.find_opt node acc) in
        Node.Map.add node (Fact.Set.union prev (Fact.Set.of_list facts)) acc)
      Node.Map.empty assignments
  in
  let universe =
    match universe with
    | Some u -> u
    | None ->
      Node.Map.fold
        (fun _ facts acc ->
          Fact.Set.fold (fun f acc -> Value.Set.union (Fact.adom f) acc) facts acc)
        table Value.Set.empty
  in
  let nodes = List.map fst (Node.Map.bindings table) in
  let responsible node fact =
    match Node.Map.find_opt node table with
    | Some facts -> Fact.Set.mem fact facts
    | None -> false
  in
  make ~kind:Explicit ~universe ~name ~nodes responsible

let hash_value ~seed ~buckets v =
  if buckets < 1 then invalid_arg "Policy.hash_value: buckets < 1"
  else Hashtbl.seeded_hash (seed land max_int) (Value.to_string v) mod buckets

type unlisted =
  | Drop
  | Broadcast

let hash_by_position ?universe ?(seed = 0) ?(unlisted = Drop) ~name ~p positions
    =
  if p < 1 then invalid_arg "Policy.hash_by_position: p < 1";
  let find rel = List.assoc_opt rel positions in
  let responsible node fact =
    match find (Fact.rel fact) with
    | Some pos ->
      let args = Fact.args fact in
      pos < Array.length args
      && hash_value ~seed ~buckets:p args.(pos) = node
    | None -> ( match unlisted with Drop -> false | Broadcast -> true)
  in
  make ~kind:Hash ?universe ~name ~nodes:(Node.range p) responsible

let hypercube ?universe ?(seed = 0) ~name ~query ~shares () =
  if not (Ast.is_positive query) then
    invalid_arg "Policy.hypercube: defined for positive CQs";
  let vars = Ast.body_vars query in
  let share_of v =
    match List.assoc_opt v shares with
    | Some s when s >= 1 -> s
    | Some _ -> invalid_arg "Policy.hypercube: shares must be >= 1"
    | None -> invalid_arg (Fmt.str "Policy.hypercube: no share for variable %s" v)
  in
  let dims = Array.of_list (List.map share_of vars) in
  let grid = Grid.make dims in
  let var_index = List.mapi (fun i v -> (v, i)) vars in
  let hash_var v value =
    let i = List.assoc v var_index in
    hash_value ~seed:(seed + (31 * i)) ~buckets:dims.(i) value
  in
  (* The partial coordinate pinned by matching a fact against an atom:
     every variable of the atom is hashed on the fact's value at its
     position; [None] when the fact cannot instantiate the atom. *)
  let partial_of_atom (a : Ast.atom) fact =
    let args = Fact.args fact in
    if List.length a.Ast.terms <> Array.length args then None
    else begin
      let partial = Array.make (List.length vars) None in
      let ok = ref true in
      List.iteri
        (fun j term ->
          match term with
          | Ast.Const c -> if not (Value.equal c args.(j)) then ok := false
          | Ast.Var v -> (
            let i = List.assoc v var_index in
            let bucket = hash_var v args.(j) in
            match partial.(i) with
            | Some b when b <> bucket -> ok := false
            | _ -> partial.(i) <- Some bucket))
        a.Ast.terms;
      if !ok then Some partial else None
    end
  in
  let responsible node fact =
    List.exists
      (fun a ->
        a.Ast.rel = Fact.rel fact
        &&
        match partial_of_atom a fact with
        | None -> false
        | Some partial ->
          let found = ref false in
          Grid.matching grid partial (fun n -> if n = node then found := true);
          !found)
      (Ast.body query)
  in
  let t =
    make ~kind:Hypercube ?universe ~name ~nodes:(Node.range (Grid.size grid))
      responsible
  in
  (t, grid)

let hypercube_replication ~query ~shares fact =
  (* Replication factor of a fact: number of grid nodes it reaches. *)
  let t, _ = hypercube ~name:"tmp" ~query ~shares () in
  List.length (responsible_nodes t fact)

(* Primary horizontal fragmentation by range (the paper's Customer /
   area-code example in Section 4.1): facts of the listed relation go to
   the node owning the range their key column falls into; thresholds
   split the value order into |thresholds| + 1 ranges. *)
let range ?universe ?(unlisted = Drop) ~name ~rel ~pos thresholds =
  if thresholds = [] then invalid_arg "Policy.range: no thresholds";
  let sorted = List.sort Value.compare thresholds in
  let p = List.length sorted + 1 in
  let node_of v =
    let rec go i = function
      | [] -> i
      | t :: rest -> if Value.compare v t < 0 then i else go (i + 1) rest
    in
    go 0 sorted
  in
  let responsible node fact =
    if Fact.rel fact = rel then
      pos < Fact.arity fact && node_of (Fact.args fact).(pos) = node
    else match unlisted with Drop -> false | Broadcast -> true
  in
  make ~kind:Hash ?universe ~name ~nodes:(Node.range p) responsible

let domain_guided ?universe ~name ~nodes assignment =
  if nodes = [] then invalid_arg "Policy.domain_guided: empty network";
  let responsible node fact =
    Value.Set.exists
      (fun v -> Node.Set.mem node (assignment v))
      (Fact.adom fact)
  in
  make ~kind:Domain_guided ?universe ~name ~nodes responsible

let broadcast_all ?universe ~name ~p () =
  if p < 1 then invalid_arg "Policy.broadcast_all: p < 1";
  make ~kind:Custom ?universe ~name ~nodes:(Node.range p) (fun _ _ -> true)
