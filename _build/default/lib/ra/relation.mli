(** Named-column relations: the carrier of the relational algebra.

    Columns are attribute names; equality is up to column order. *)

open Lamp_relational

type t

val create : cols:string list -> Tuple.t list -> t
(** @raise Invalid_argument on duplicate columns or arity mismatch. *)

val empty : cols:string list -> t
val cols : t -> string list
val cardinal : t -> int
val rows : t -> Tuple.t list

val of_instance : Instance.t -> rel:string -> cols:string list -> t
(** Tuples of the relation whose arity matches [cols]; columns are
    positional. *)

val to_instance : t -> rel:string -> Instance.t

val equal : t -> t -> bool
(** Up to column order.
    @raise Invalid_argument when the column sets differ. *)

type operand =
  | Col of string
  | Const of Value.t

type pred =
  | Eq of operand * operand
  | Neq of operand * operand
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

val select : pred -> t -> t
val project : string list -> t -> t
(** @raise Invalid_argument on unknown columns. *)

val rename : (string * string) list -> t -> t
(** [(old, new)] pairs; unmentioned columns keep their names. *)

val union : t -> t -> t
val diff : t -> t -> t
val inter : t -> t -> t
(** @raise Invalid_argument when column sets differ. *)

val join : t -> t -> t
(** Natural join on the shared columns (cartesian product when none). *)

val semijoin : t -> t -> t
(** [semijoin r s] = tuples of [r] joining with some tuple of [s]. *)

val antijoin : t -> t -> t
(** [antijoin r s] = tuples of [r] joining with no tuple of [s]. *)

val product : t -> t -> t
(** @raise Invalid_argument on shared columns. *)

val pp : t Fmt.t
