open Lamp_relational
open Lamp_mapreduce

(* Compilation of relational algebra expressions to MapReduce programs:
   one job per operator, evaluated bottom-up. Every job forwards all
   facts it does not consume (under a singleton key), so base relations
   and earlier intermediates remain available to later operators; the
   operator itself groups its operands' facts by the appropriate key and
   lets the reducer emit the result under a fresh intermediate relation
   name. *)

let tmp i = Fmt.str "\010t%d" i

let fwd_key f =
  Value.str "f" :: Value.str (Fact.rel f) :: Array.to_list (Fact.args f)

let forward f = (fwd_key f, f)

let positions cols sub =
  List.map
    (fun c ->
      match List.find_index (String.equal c) cols with
      | Some i -> i
      | None -> invalid_arg (Fmt.str "To_mapreduce: unknown column %s" c))
    sub

let key_values positions (f : Fact.t) =
  List.map (fun i -> (Fact.args f).(i)) positions

(* A generic operator job: group the facts of the sources by [key_of]
   (everything else is forwarded) and produce the outputs of a group
   with [combine]. *)
let op_job ~sources ~key_of ~combine =
  {
    Job.map =
      (fun f ->
        let base = [ forward f ] in
        if List.mem (Fact.rel f) sources then
          (Value.str "o" :: key_of f, f) :: base
        else base);
    reduce =
      (fun key group ->
        match key with
        | Value.Str "o" :: _ -> combine group
        | _ -> Instance.facts group);
  }

(* Map-only transformations (select, project, rename, union arms) are
   expressed as jobs whose map emits the transformed fact under a
   forward key. *)
let map_job ~transform =
  {
    Job.map =
      (fun f ->
        let extra =
          match transform f with
          | Some f' -> [ forward f' ]
          | None -> []
        in
        forward f :: extra);
    reduce = (fun _ group -> Instance.facts group);
  }

let rec compile counter expr =
  let fresh () =
    let i = !counter in
    incr counter;
    tmp i
  in
  match expr with
  | Algebra.Base (rel, cols) ->
    (* Leaves are copied to a fresh name so that two occurrences of the
       same base relation (a self-join under different column names)
       stay distinguishable in downstream reducers. *)
    let dst = fresh () in
    let arity = List.length cols in
    let job =
      map_job ~transform:(fun f ->
          if Fact.rel f = rel && Fact.arity f = arity then
            Some (Fact.make dst (Fact.args f))
          else None)
    in
    (dst, cols, [ job ])
  | Algebra.Select (pred, e) ->
    let src, cols, jobs = compile counter e in
    let dst = fresh () in
    let relation_view row = Relation.create ~cols [ row ] in
    let job =
      map_job ~transform:(fun f ->
          if Fact.rel f = src then begin
            let r = relation_view (Fact.args f) in
            if Relation.cardinal (Relation.select pred r) = 1 then
              Some (Fact.make dst (Fact.args f))
            else None
          end
          else None)
    in
    (dst, cols, jobs @ [ job ])
  | Algebra.Project (sub, e) ->
    let src, cols, jobs = compile counter e in
    let dst = fresh () in
    let pos = positions cols sub in
    let job =
      map_job ~transform:(fun f ->
          if Fact.rel f = src then
            Some (Fact.of_list dst (key_values pos f))
          else None)
    in
    (dst, sub, jobs @ [ job ])
  | Algebra.Rename (mapping, e) ->
    let src, cols, jobs = compile counter e in
    let dst = fresh () in
    let cols' =
      List.map
        (fun c -> match List.assoc_opt c mapping with Some c' -> c' | None -> c)
        cols
    in
    let job =
      map_job ~transform:(fun f ->
          if Fact.rel f = src then Some (Fact.make dst (Fact.args f)) else None)
    in
    (dst, cols', jobs @ [ job ])
  | Algebra.Union (e1, e2) ->
    let src1, cols1, jobs1 = compile counter e1 in
    let src2, cols2, jobs2 = compile counter e2 in
    let dst = fresh () in
    let perm = positions cols2 cols1 in
    let job =
      map_job ~transform:(fun f ->
          if Fact.rel f = src1 then Some (Fact.make dst (Fact.args f))
          else if Fact.rel f = src2 then
            Some (Fact.of_list dst (key_values perm f))
          else None)
    in
    (dst, cols1, jobs1 @ jobs2 @ [ job ])
  | Algebra.Diff (e1, e2) ->
    let src1, cols1, jobs1 = compile counter e1 in
    let src2, cols2, jobs2 = compile counter e2 in
    let dst = fresh () in
    let perm = positions cols2 cols1 in
    let key_of f =
      if Fact.rel f = src1 then Array.to_list (Fact.args f)
      else key_values perm f
    in
    let combine group =
      let left =
        Instance.facts (Instance.filter (fun f -> Fact.rel f = src1) group)
      in
      let right_present =
        not (Instance.is_empty (Instance.filter (fun f -> Fact.rel f = src2) group))
      in
      if right_present then []
      else List.map (fun f -> Fact.make dst (Fact.args f)) left
    in
    (dst, cols1, jobs1 @ jobs2 @ [ op_job ~sources:[ src1; src2 ] ~key_of ~combine ])
  | Algebra.Join (e1, e2) | Algebra.Product (e1, e2) ->
    let src1, cols1, jobs1 = compile counter e1 in
    let src2, cols2, jobs2 = compile counter e2 in
    let dst = fresh () in
    let shared = List.filter (fun c -> List.mem c cols2) cols1 in
    (match expr with
    | Algebra.Product _ when shared <> [] ->
      invalid_arg "To_mapreduce: product with shared columns"
    | _ -> ());
    let extra = List.filter (fun c -> not (List.mem c cols1)) cols2 in
    let pos1 = positions cols1 shared
    and pos2 = positions cols2 shared
    and pos_extra = positions cols2 extra in
    let key_of f =
      if Fact.rel f = src1 then key_values pos1 f else key_values pos2 f
    in
    let combine group =
      let left = Instance.filter (fun f -> Fact.rel f = src1) group in
      let right = Instance.filter (fun f -> Fact.rel f = src2) group in
      Instance.fold
        (fun f1 acc ->
          Instance.fold
            (fun f2 acc ->
              Fact.of_list dst
                (Array.to_list (Fact.args f1) @ key_values pos_extra f2)
              :: acc)
            right acc)
        left []
    in
    ( dst,
      cols1 @ extra,
      jobs1 @ jobs2 @ [ op_job ~sources:[ src1; src2 ] ~key_of ~combine ] )
  | Algebra.Semijoin (e1, e2) | Algebra.Antijoin (e1, e2) ->
    let src1, cols1, jobs1 = compile counter e1 in
    let src2, cols2, jobs2 = compile counter e2 in
    let dst = fresh () in
    let shared = List.filter (fun c -> List.mem c cols2) cols1 in
    let pos1 = positions cols1 shared and pos2 = positions cols2 shared in
    let key_of f =
      if Fact.rel f = src1 then key_values pos1 f else key_values pos2 f
    in
    let keep_if_present =
      match expr with Algebra.Semijoin _ -> true | _ -> false
    in
    let combine group =
      let left = Instance.filter (fun f -> Fact.rel f = src1) group in
      let right_present =
        not (Instance.is_empty (Instance.filter (fun f -> Fact.rel f = src2) group))
      in
      if right_present = keep_if_present then
        List.map (fun f -> Fact.make dst (Fact.args f)) (Instance.facts left)
      else []
    in
    ( dst,
      cols1,
      jobs1 @ jobs2 @ [ op_job ~sources:[ src1; src2 ] ~key_of ~combine ] )

let compile expr =
  let counter = ref 0 in
  let name, cols, jobs = compile counter expr in
  (jobs, name, cols)

let run ?p instance expr =
  let program, name, cols = compile expr in
  let output =
    match p with
    | None -> Job.run program instance
    | Some p -> fst (Job.run_mpc ~p program instance)
  in
  Relation.of_instance output ~rel:name ~cols

let job_count expr =
  let program, _, _ = compile expr in
  List.length program
