(** The relational algebra over named-column relations.

    The paper (Section 3.2, [47]) discusses MapReduce fragments
    expressing the semi-join algebra and the complete relational
    algebra; this module supplies the algebra itself — expressions, a
    direct evaluator, and the semi-join-fragment test — and
    [To_mapreduce] compiles expressions to MapReduce programs. *)

open Lamp_relational

type expr =
  | Base of string * string list
      (** Base relation with positional column names. *)
  | Select of Relation.pred * expr
  | Project of string list * expr
  | Rename of (string * string) list * expr
  | Join of expr * expr  (** Natural join. *)
  | Semijoin of expr * expr
  | Antijoin of expr * expr
  | Union of expr * expr
  | Diff of expr * expr
  | Product of expr * expr

val eval : Instance.t -> expr -> Relation.t
(** Direct (single-site) evaluation.
    @raise Invalid_argument on ill-typed expressions (column clashes,
    arity mismatches). *)

val signature : expr -> string list
(** The expression's output columns. *)

val in_semijoin_algebra : expr -> bool
(** Whether the expression avoids tuple-growing operators (joins and
    products) — the fragment computable with bounded-memory reducers
    per [47]. *)

val size : expr -> int
val pp : expr Fmt.t
