lib/ra/algebra.ml: Fmt List Relation String
