lib/ra/relation.mli: Fmt Instance Lamp_relational Tuple Value
