lib/ra/to_mapreduce.ml: Algebra Array Fact Fmt Instance Job Lamp_mapreduce Lamp_relational List Relation String Value
