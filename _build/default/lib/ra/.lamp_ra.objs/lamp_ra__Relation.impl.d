lib/ra/relation.ml: Array Fact Fmt Hashtbl Instance Lamp_relational List Option String Tuple Value
