lib/ra/to_mapreduce.mli: Algebra Instance Lamp_mapreduce Lamp_relational Relation
