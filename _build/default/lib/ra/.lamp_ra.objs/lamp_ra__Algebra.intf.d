lib/ra/algebra.mli: Fmt Instance Lamp_relational Relation
