type expr =
  | Base of string * string list
  | Select of Relation.pred * expr
  | Project of string list * expr
  | Rename of (string * string) list * expr
  | Join of expr * expr
  | Semijoin of expr * expr
  | Antijoin of expr * expr
  | Union of expr * expr
  | Diff of expr * expr
  | Product of expr * expr

let rec eval instance = function
  | Base (rel, cols) -> Relation.of_instance instance ~rel ~cols
  | Select (p, e) -> Relation.select p (eval instance e)
  | Project (cols, e) -> Relation.project cols (eval instance e)
  | Rename (mapping, e) -> Relation.rename mapping (eval instance e)
  | Join (e1, e2) -> Relation.join (eval instance e1) (eval instance e2)
  | Semijoin (e1, e2) -> Relation.semijoin (eval instance e1) (eval instance e2)
  | Antijoin (e1, e2) -> Relation.antijoin (eval instance e1) (eval instance e2)
  | Union (e1, e2) -> Relation.union (eval instance e1) (eval instance e2)
  | Diff (e1, e2) -> Relation.diff (eval instance e1) (eval instance e2)
  | Product (e1, e2) -> Relation.product (eval instance e1) (eval instance e2)

(* Static column signature of an expression. *)
let rec signature = function
  | Base (_, cols) -> cols
  | Select (_, e) -> signature e
  | Project (cols, _) -> cols
  | Rename (mapping, e) ->
    List.map
      (fun c -> match List.assoc_opt c mapping with Some c' -> c' | None -> c)
      (signature e)
  | Join (e1, e2) ->
    let c1 = signature e1 in
    c1 @ List.filter (fun c -> not (List.mem c c1)) (signature e2)
  | Semijoin (e, _) | Antijoin (e, _) -> signature e
  | Union (e, _) | Diff (e, _) -> signature e
  | Product (e1, e2) -> signature e1 @ signature e2

(* Membership in the semi-join algebra: no operator that can grow a
   tuple beyond a base relation's — the fragment of [47] expressible by
   MapReduce with bounded-memory reducers. *)
let rec in_semijoin_algebra = function
  | Base _ -> true
  | Select (_, e) | Project (_, e) | Rename (_, e) -> in_semijoin_algebra e
  | Semijoin (e1, e2) | Antijoin (e1, e2) | Union (e1, e2) | Diff (e1, e2) ->
    in_semijoin_algebra e1 && in_semijoin_algebra e2
  | Join _ | Product _ -> false

let rec size = function
  | Base _ -> 1
  | Select (_, e) | Project (_, e) | Rename (_, e) -> 1 + size e
  | Join (e1, e2)
  | Semijoin (e1, e2)
  | Antijoin (e1, e2)
  | Union (e1, e2)
  | Diff (e1, e2)
  | Product (e1, e2) -> 1 + size e1 + size e2

let rec pp ppf = function
  | Base (r, cols) -> Fmt.pf ppf "%s(%s)" r (String.concat "," cols)
  | Select (_, e) -> Fmt.pf ppf "σ(%a)" pp e
  | Project (cols, e) -> Fmt.pf ppf "π_%s(%a)" (String.concat "," cols) pp e
  | Rename (_, e) -> Fmt.pf ppf "ρ(%a)" pp e
  | Join (e1, e2) -> Fmt.pf ppf "(%a ⋈ %a)" pp e1 pp e2
  | Semijoin (e1, e2) -> Fmt.pf ppf "(%a ⋉ %a)" pp e1 pp e2
  | Antijoin (e1, e2) -> Fmt.pf ppf "(%a ▷ %a)" pp e1 pp e2
  | Union (e1, e2) -> Fmt.pf ppf "(%a ∪ %a)" pp e1 pp e2
  | Diff (e1, e2) -> Fmt.pf ppf "(%a − %a)" pp e1 pp e2
  | Product (e1, e2) -> Fmt.pf ppf "(%a × %a)" pp e1 pp e2
