(** Compilation of relational algebra to MapReduce programs.

    One job per operator: map-only jobs for selections, projections,
    renamings and unions; a grouping job for joins, semi-joins,
    anti-joins and differences (the operands meet at the reducer of
    their key). Every job forwards the facts it does not consume, so
    base relations stay available to later operators. The translation
    realizes the observation of Section 3.1 — MapReduce programs are
    MPC algorithms — together with the relational-algebra fragment
    results of [47]: the compiled program computes the same relation as
    the direct evaluator on every instance, which the test suite checks
    by property, both sequentially and through the MPC execution. *)

open Lamp_relational

val compile : Algebra.expr -> Lamp_mapreduce.Job.program * string * string list
(** [(program, result_relation, columns)]. *)

val run : ?p:int -> Instance.t -> Algebra.expr -> Relation.t
(** Executes the compiled program — sequentially, or on a simulated
    [p]-server MPC cluster when [p] is given — and reads the result. *)

val job_count : Algebra.expr -> int
(** Number of jobs (= MPC rounds) of the compiled program. *)
