open Lamp_relational
open Lamp_cq

let instance = Alcotest.testable Instance.pp Instance.equal
let query = Alcotest.testable Ast.pp Ast.equal

let parse = Parser.query
let inst = Instance.of_string

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let test_parse_basic () =
  let q = parse "H(x,z) <- R(x,y), R(y,z)" in
  Alcotest.(check string) "head rel" "H" (Ast.head q).Ast.rel;
  Alcotest.(check int) "two atoms" 2 (List.length (Ast.body q));
  Alcotest.(check (list string)) "vars" [ "x"; "y"; "z" ] (Ast.vars q)

let test_parse_constants () =
  let q = parse "H(x) <- R(x, 42), S(x, 'a')" in
  match Ast.body q with
  | [ r; s ] ->
    Alcotest.(check bool) "int const" true
      (Ast.term_equal (List.nth r.Ast.terms 1) (Ast.Const (Value.int 42)));
    Alcotest.(check bool) "str const" true
      (Ast.term_equal (List.nth s.Ast.terms 1) (Ast.Const (Value.str "a")))
  | _ -> Alcotest.fail "expected two atoms"

let test_parse_negation_diseq () =
  let q = parse "H(x,y,z) <- E(x,y), E(y,z), !E(z,x), x != y" in
  Alcotest.(check int) "negated" 1 (List.length (Ast.negated q));
  Alcotest.(check int) "diseq" 1 (List.length (Ast.diseq q));
  let q' = parse "H(x,y,z) <- E(x,y), E(y,z), not E(z,x), x != y" in
  Alcotest.check query "! and not agree" q q'

let test_parse_boolean_head () =
  let q = parse "H() <- R(x,x), T(x)" in
  Alcotest.(check bool) "boolean" true (Ast.is_boolean q)

let test_parse_arrow_variants () =
  Alcotest.check query "<- vs :-" (parse "H(x) <- R(x)") (parse "H(x) :- R(x)")

let test_parse_errors () =
  List.iter
    (fun s ->
      match parse s with
      | _ -> Alcotest.failf "expected parse error for %S" s
      | exception Parser.Parse_error _ -> ())
    [
      "H(x)";                  (* no arrow *)
      "H(x) <- R(x,";          (* unclosed atom *)
      "H(x) <- R(x) extra";    (* trailing garbage *)
      "H(x,y) <- R(x)";        (* unsafe: y not in body *)
      "H(x) <- !R(x)";         (* unsafe: x only in negated atom *)
      "H() <- R(x), y != z";   (* unsafe inequality *)
    ]

let test_parse_roundtrip_examples () =
  List.iter
    (fun q -> Alcotest.check query "roundtrip" q (parse (Ast.to_string q)))
    [
      Examples.q2_triangle;
      Examples.open_triangle;
      Examples.triangles_distinct;
      Examples.q1_example_4_11;
      parse "H(x) <- R(x, 7), S(x, 'abc')";
    ]

let test_ucq_parse () =
  let qs = Parser.ucq "H(x) <- R(x); H(x) <- S(x)" in
  Alcotest.(check int) "two disjuncts" 2 (List.length qs)

(* ------------------------------------------------------------------ *)
(* AST classification                                                  *)

let test_is_full () =
  Alcotest.(check bool) "triangle is full" true (Ast.is_full Examples.q2_triangle);
  Alcotest.(check bool) "projection is not" false
    (Ast.is_full (parse "H(x) <- R(x,y)"))

let test_self_join () =
  Alcotest.(check bool) "self join" true
    (Ast.has_self_join Examples.qe_example_4_1);
  Alcotest.(check bool) "no self join" false
    (Ast.has_self_join Examples.q2_triangle)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

let test_eval_join () =
  let i = inst "R(1,2). R(3,4). S(2,5). S(2,6)" in
  let r = Eval.eval Examples.q1_join i in
  Alcotest.check instance "join result" (inst "H(1,2,5). H(1,2,6)") r

let test_eval_triangle () =
  let i = inst "R(1,2). S(2,3). T(3,1). R(2,3). S(9,9)" in
  Alcotest.check instance "one triangle" (inst "H(1,2,3)")
    (Eval.eval Examples.q2_triangle i)

let test_eval_example_4_1 () =
  (* Qe on Ie; the paper's Example 4.1 (the text's H(a,b) is H(a,a):
     deriving H(a,b) would need the absent fact S(b,a)). *)
  let ie = inst "R(a,b). R(b,a). R(b,c). S(a,a). S(c,a)" in
  Alcotest.check instance "Qe(Ie)" (inst "H(a,a). H(a,c)")
    (Eval.eval Examples.qe_example_4_1 ie)

let test_eval_self_join_repeated_var () =
  let q = parse "H(x) <- R(x,x)" in
  let i = inst "R(1,1). R(1,2). R(2,2)" in
  Alcotest.check instance "diagonal" (inst "H(1). H(2)") (Eval.eval q i)

let test_eval_constants () =
  let q = parse "H(x) <- R(x, 2)" in
  let i = inst "R(1,2). R(3,4). R(5,2)" in
  Alcotest.check instance "const filter" (inst "H(1). H(5)") (Eval.eval q i)

let test_eval_diseq () =
  let i = inst "E(1,2). E(2,1). E(1,1)" in
  let with_diseq = parse "H(x,y) <- E(x,y), x != y" in
  Alcotest.check instance "filters loop" (inst "H(1,2). H(2,1)")
    (Eval.eval with_diseq i)

let test_eval_negation () =
  (* Open triangles: E(1,2), E(2,3) with E(3,1) absent. *)
  let i = inst "E(1,2). E(2,3). E(3,4)" in
  let r = Eval.eval Examples.open_triangle i in
  Alcotest.(check bool) "contains (1,2,3)" true
    (Instance.mem (Fact.of_ints "H" [ 1; 2; 3 ]) r);
  let closed = inst "E(1,2). E(2,3). E(3,1)" in
  Alcotest.(check bool) "closed triangle excluded" false
    (Instance.mem (Fact.of_ints "H" [ 1; 2; 3 ])
       (Eval.eval Examples.open_triangle closed))

let test_eval_cartesian () =
  let q = parse "H(x,y) <- R(x), S(y)" in
  let i = inst "R(1). R(2). S(3). S(4)" in
  Alcotest.(check int) "product" 4 (Instance.cardinal (Eval.eval q i))

let test_eval_boolean () =
  let q = Examples.q2_example_4_11 in
  Alcotest.(check bool) "holds" true (Eval.holds q (inst "R(1,1). T(1)"));
  Alcotest.(check bool) "fails" false (Eval.holds q (inst "R(1,2). T(2)"));
  Alcotest.check instance "derives H()" (inst "H()")
    (Eval.eval q (inst "R(1,1). T(1)"))

let test_eval_empty_relation () =
  Alcotest.check instance "empty input" Instance.empty
    (Eval.eval Examples.q1_join Instance.empty)

let test_eval_larger_join () =
  (* Chain join on a path graph: H(x,w) <- E(x,y),E(y,z),E(z,w). *)
  let q = parse "H(x,w) <- E(x,y), E(y,z), E(z,w)" in
  let n = 50 in
  let i =
    List.init n (fun k -> Fact.of_ints "E" [ k; k + 1 ]) |> Instance.of_facts
  in
  Alcotest.(check int) "path count" (n - 2) (Instance.cardinal (Eval.eval q i))

(* ------------------------------------------------------------------ *)
(* Generic (worst-case optimal) join                                   *)

let test_generic_triangle () =
  let i = inst "R(1,2). S(2,3). T(3,1). R(2,3). S(9,9)" in
  Alcotest.check instance "triangle" (Eval.eval Examples.q2_triangle i)
    (Generic_join.eval Examples.q2_triangle i)

let test_generic_constants_repeated () =
  let q = parse "H(x) <- R(x,x), S(x, 7)" in
  let i = inst "R(1,1). R(2,3). R(4,4). S(1,7). S(4,8)" in
  Alcotest.check instance "constants + repeated vars" (Eval.eval q i)
    (Generic_join.eval q i)

let test_generic_diseq () =
  let q = parse "H(x,y) <- E(x,y), x != y" in
  let i = inst "E(1,1). E(1,2). E(2,1)" in
  Alcotest.check instance "inequalities" (Eval.eval q i) (Generic_join.eval q i)

let test_generic_custom_order () =
  let i = inst "R(1,2). S(2,3). T(3,1)" in
  List.iter
    (fun order ->
      Alcotest.check instance "any order works"
        (Eval.eval Examples.q2_triangle i)
        (Generic_join.eval ~order Examples.q2_triangle i))
    [ [ "x"; "y"; "z" ]; [ "z"; "y"; "x" ]; [ "y"; "z"; "x" ] ]

let test_generic_bad_order () =
  Alcotest.check_raises "incomplete order" (Invalid_argument "")
    (fun () ->
      try
        ignore
          (Generic_join.eval ~order:[ "x" ] Examples.q2_triangle Instance.empty)
      with Invalid_argument _ -> raise (Invalid_argument ""))

let test_generic_rejects_negation () =
  Alcotest.check_raises "CQ-neg rejected" (Invalid_argument "")
    (fun () ->
      try ignore (Generic_join.eval Examples.open_triangle Instance.empty)
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* Cyclic example queries (4-cycle, k-clique)                          *)

let test_four_cycle_query () =
  let q = Examples.q_four_cycle in
  Alcotest.(check int) "four atoms" 4 (List.length (Ast.body q));
  (* One directed 4-cycle 1→2→3→4→1, plus a chord that closes nothing. *)
  let i =
    inst "R(1,2). S(2,3). T(3,4). U(4,1). R(2,3). S(1,4)"
  in
  let out = Eval.eval q i in
  Alcotest.(check int) "one cycle" 1 (Instance.cardinal out);
  Alcotest.check instance "wcoj agrees"
    out
    (Eval.eval ~strategy:Eval.Wcoj q i)

let test_clique_query () =
  Alcotest.(check (list string)) "triangle rels" [ "E12"; "E13"; "E23" ]
    (Examples.clique_rels 3);
  Alcotest.(check int) "k=4 has C(4,2) atoms" 6
    (List.length (Ast.body (Examples.q_clique 4)));
  Alcotest.(check int) "rels match atoms" 6
    (List.length (Examples.clique_rels 4));
  (* K4 on nodes 1..4 (directed both ways in every edge relation) plus
     an extra vertex attached by a single edge. *)
  let edges =
    [ (1, 2); (1, 3); (1, 4); (2, 3); (2, 4); (3, 4); (4, 5) ]
  in
  let facts =
    List.concat_map
      (fun r ->
        List.concat_map
          (fun (a, b) -> [ Fact.of_ints r [ a; b ]; Fact.of_ints r [ b; a ] ])
          edges)
      (Examples.clique_rels 4)
  in
  let i = Instance.of_facts facts in
  let out = Eval.eval (Examples.q_clique 4) i in
  (* The single K4 appears once per vertex ordering: 4! = 24. *)
  Alcotest.(check int) "K4 orderings" 24 (Instance.cardinal out);
  Alcotest.check instance "wcoj agrees" out
    (Eval.eval ~strategy:Eval.Wcoj (Examples.q_clique 4) i)

(* ------------------------------------------------------------------ *)
(* Minimal valuations                                                  *)

let test_minimal_example_4_5 () =
  let q = Examples.q_example_4_3 in
  let a = Value.str "a" and b = Value.str "b" in
  let v1 = Valuation.of_list [ ("x", a); ("y", b); ("z", a) ] in
  let v2 = Valuation.of_list [ ("x", a); ("y", a); ("z", a) ] in
  Alcotest.(check bool) "V1 not minimal" false (Minimal.is_minimal q v1);
  Alcotest.(check bool) "V2 minimal" true (Minimal.is_minimal q v2)

let test_minimal_plain_join () =
  (* Queries without self-joins: every valuation is minimal. *)
  let q = Examples.q1_join in
  let v =
    Valuation.of_list
      [ ("x", Value.int 1); ("y", Value.int 2); ("z", Value.int 3) ]
  in
  Alcotest.(check bool) "minimal" true (Minimal.is_minimal q v)

let test_minimal_valuations_count () =
  let q = Examples.q_example_4_3 in
  let universe = [ Value.str "a"; Value.str "b" ] in
  let minimal = Minimal.minimal_valuations q ~universe in
  (* Minimal valuations over {a,b}: those avoiding the Example 4.5
     pattern. All 8 valuations (x,y,z) ∈ {a,b}³; V minimal unless its
     facts strictly include those of a same-head smaller valuation. *)
  List.iter
    (fun v ->
      Alcotest.(check bool) "reported minimal" true (Minimal.is_minimal q v))
    minimal;
  Alcotest.(check bool) "some valuation is non-minimal" true
    (List.length minimal < 8)

let test_minimal_rejects_negation () =
  Alcotest.check_raises "CQ¬ rejected" (Invalid_argument "")
    (fun () ->
      try
        ignore
          (Minimal.is_minimal Examples.open_triangle
             (Valuation.of_list
                [ ("x", Value.int 1); ("y", Value.int 2); ("z", Value.int 3) ]))
      with Invalid_argument _ -> raise (Invalid_argument ""))

let test_minimal_images_dedup () =
  let q = Examples.q_example_4_3 in
  let universe = [ Value.str "a"; Value.str "b" ] in
  let images = Minimal.minimal_images q ~universe in
  let vals = Minimal.minimal_valuations q ~universe in
  Alcotest.(check bool) "images <= valuations" true
    (List.length images <= List.length vals)

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)

let test_containment_fig1b () =
  let q1 = Examples.q1_example_4_11
  and q2 = Examples.q2_example_4_11
  and q3 = Examples.q3_example_4_11
  and q4 = Examples.q4_example_4_11 in
  (* Figure 1(b): Q1 ⊆ Q2 ⊆ Q4 and Q1 ⊆ Q3 ⊆ Q4, no reverse. *)
  Alcotest.(check bool) "Q1 ⊆ Q2" true (Containment.contained q1 q2);
  Alcotest.(check bool) "Q2 ⊆ Q4" true (Containment.contained q2 q4);
  Alcotest.(check bool) "Q1 ⊆ Q3" true (Containment.contained q1 q3);
  Alcotest.(check bool) "Q3 ⊆ Q4" true (Containment.contained q3 q4);
  Alcotest.(check bool) "Q4 ⊄ Q2" false (Containment.contained q4 q2);
  Alcotest.(check bool) "Q2 ⊄ Q1" false (Containment.contained q2 q1);
  Alcotest.(check bool) "Q4 ⊄ Q3" false (Containment.contained q4 q3);
  Alcotest.(check bool) "Q2 ⊄ Q3" false (Containment.contained q2 q3);
  Alcotest.(check bool) "Q3 ⊄ Q2" false (Containment.contained q3 q2)

let test_containment_head_mismatch () =
  Alcotest.(check bool) "different head arity" false
    (Containment.contained (parse "H(x) <- R(x,y)") (parse "H(x,y) <- R(x,y)"))

let test_containment_with_constants () =
  let specific = parse "H(x) <- R(x, 1)" in
  let general = parse "H(x) <- R(x, y)" in
  Alcotest.(check bool) "specific ⊆ general" true
    (Containment.contained specific general);
  Alcotest.(check bool) "general ⊄ specific" false
    (Containment.contained general specific)

let test_minimize () =
  let q = parse "H(x) <- R(x,y), R(x,z)" in
  let m = Containment.minimize q in
  Alcotest.(check int) "one atom" 1 (List.length (Ast.body m));
  Alcotest.(check bool) "equivalent" true (Containment.equivalent q m);
  (* A core query stays put. *)
  Alcotest.check query "triangle is a core" Examples.q2_triangle
    (Containment.minimize Examples.q2_triangle)

let test_ucq_containment () =
  let left = Parser.ucq "H(x) <- R(x,x); H(x) <- R(x,y), S(y)" in
  let right = Parser.ucq "H(x) <- R(x,y)" in
  Alcotest.(check bool) "each disjunct contained" true
    (Containment.ucq_contained left right);
  Alcotest.(check bool) "reverse fails" false
    (Containment.ucq_contained right left)

let test_refute_negation () =
  let q1 = parse "H(x) <- E(x,y), !E(y,x)" in
  let q2 = parse "H(x) <- E(x,x)" in
  let universe = [ Value.str "a"; Value.str "b" ] in
  (match Containment.refute ~universe q1 q2 with
  | Containment.Counterexample i ->
    Alcotest.(check bool) "witnesses non-containment" true
      (not (Instance.subset (Eval.eval q1 i) (Eval.eval q2 i)))
  | Containment.No_counterexample_found -> Alcotest.fail "expected refutation");
  (* Contained direction: no counterexample exists at all. *)
  let q3 = parse "H(x) <- E(x,y), E(y,x), !E(x,x)" in
  let q4 = parse "H(x) <- E(x,y)" in
  match Containment.refute ~universe q3 q4 with
  | Containment.No_counterexample_found -> ()
  | Containment.Counterexample _ -> Alcotest.fail "q3 ⊆ q4 must hold"

let test_refute_bound () =
  Alcotest.check_raises "fact space too large" (Invalid_argument "")
    (fun () ->
      try
        ignore
          (Containment.refute
             ~universe:(List.init 10 Value.int)
             (parse "H(x) <- E(x,y), !E(y,x)")
             (parse "H(x) <- E(x,x)"))
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* Hypergraph                                                          *)

let close msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %f, got %f)" msg expected actual)
    true
    (Float.abs (expected -. actual) < 1e-6)

let test_tau_star () =
  close "triangle" 1.5 (Hypergraph.tau_star Examples.q2_triangle);
  close "join" 1.0 (Hypergraph.tau_star Examples.q1_join);
  close "product" 2.0 (Hypergraph.tau_star (parse "H(x,y) <- R(x), S(y)"))

let test_rho_star () =
  close "triangle AGM" 1.5 (Hypergraph.rho_star Examples.q2_triangle);
  close "join" 2.0 (Hypergraph.rho_star Examples.q1_join)

let test_share_exponents () =
  let t, exps = Hypergraph.share_exponents Examples.q2_triangle in
  close "t" (2.0 /. 3.0) t;
  List.iter (fun (_, e) -> close "exponent" (1.0 /. 3.0) e) exps

let test_acyclicity () =
  Alcotest.(check bool) "join acyclic" true (Hypergraph.is_acyclic Examples.q1_join);
  Alcotest.(check bool) "triangle cyclic" false
    (Hypergraph.is_acyclic Examples.q2_triangle);
  Alcotest.(check bool) "path acyclic" true
    (Hypergraph.is_acyclic (parse "H(x,w) <- E(x,y), F(y,z), G(z,w)"));
  Alcotest.(check bool) "star acyclic" true
    (Hypergraph.is_acyclic (parse "H(x) <- R(x,a), S(x,b), T(x,c)"));
  Alcotest.(check bool) "4-cycle cyclic" false
    (Hypergraph.is_acyclic (parse "H(x) <- R(x,y), S(y,z), T(z,w), U(w,x)"))

let test_join_tree () =
  let q = parse "H(x,w) <- E(x,y), F(y,z), G(z,w)" in
  match Hypergraph.gyo q with
  | None -> Alcotest.fail "path must be acyclic"
  | Some forest ->
    let atoms = List.concat_map Hypergraph.join_tree_atoms forest in
    Alcotest.(check int) "all atoms in forest" 3 (List.length atoms);
    Alcotest.(check int) "single tree" 1 (List.length forest)

let test_join_forest_components () =
  let q = parse "H(x,y) <- R(x), S(y)" in
  match Hypergraph.gyo q with
  | None -> Alcotest.fail "disconnected acyclic"
  | Some forest -> Alcotest.(check int) "two trees" 2 (List.length forest)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let small_value_gen =
  QCheck.Gen.(oneof [ map Value.int (int_range 0 3) ])

let small_instance_gen =
  let open QCheck.Gen in
  let fact_gen =
    let* rel = oneofl [ "R"; "S" ] in
    let arity = if rel = "S" then 1 else 2 in
    let* args = list_repeat arity small_value_gen in
    return (Fact.of_list rel args)
  in
  map Instance.of_facts (list_size (int_range 0 10) fact_gen)

let small_instance_arb =
  QCheck.make ~print:(Fmt.str "%a" Instance.pp) small_instance_gen

(* Random positive CQ over R/2 and S/1 with safe head. *)
let cq_gen =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "z" ] in
  let atom_gen =
    oneof
      [
        (let* v1 = var and* v2 = var in
         return (Ast.atom "R" [ Ast.Var v1; Ast.Var v2 ]));
        (let* v = var in
         return (Ast.atom "S" [ Ast.Var v ]));
      ]
  in
  let* body = list_size (int_range 1 3) atom_gen in
  let body_vars =
    List.concat_map Ast.atom_vars body |> List.sort_uniq String.compare
  in
  let* keep = list_repeat (List.length body_vars) bool in
  let head_vars =
    List.filteri (fun i _ -> List.nth keep i) body_vars
  in
  return
    (Ast.make
       ~head:(Ast.atom "H" (List.map (fun v -> Ast.Var v) head_vars))
       ~body ())

let cq_arb = QCheck.make ~print:Ast.to_string cq_gen

let prop_eval_monotone =
  QCheck.Test.make ~name:"positive CQs are monotone" ~count:200
    (QCheck.triple cq_arb small_instance_arb small_instance_arb)
    (fun (q, i, j) ->
      Instance.subset (Eval.eval q i) (Eval.eval q (Instance.union i j)))

let prop_containment_reflexive =
  QCheck.Test.make ~name:"containment is reflexive" ~count:100 cq_arb
    (fun q -> Containment.contained q q)

let prop_containment_sound =
  QCheck.Test.make ~name:"containment implies result inclusion" ~count:100
    (QCheck.triple cq_arb cq_arb small_instance_arb)
    (fun (q1, q2, i) ->
      QCheck.assume
        (List.length (Ast.head q1).Ast.terms
        = List.length (Ast.head q2).Ast.terms);
      (not (Containment.contained q1 q2))
      || Instance.subset (Eval.eval q1 i) (Eval.eval q2 i))

let prop_minimize_equivalent =
  QCheck.Test.make ~name:"minimize preserves semantics" ~count:100
    (QCheck.pair cq_arb small_instance_arb)
    (fun (q, i) ->
      Instance.equal (Eval.eval q i) (Eval.eval (Containment.minimize q) i))

let prop_minimal_valuations_cover =
  (* Proposition 4.6's engine: every derived fact is derived by a
     minimal valuation. *)
  QCheck.Test.make ~name:"every output fact has a minimal derivation"
    ~count:100
    (QCheck.pair cq_arb small_instance_arb)
    (fun (q, i) ->
      let universe = Value.Set.elements (Instance.adom i) in
      let minimal = Minimal.minimal_valuations q ~universe in
      Instance.facts (Eval.eval q i)
      |> List.for_all (fun f ->
             List.exists
               (fun v ->
                 Fact.equal (Valuation.head_fact v q) f
                 && Instance.subset (Valuation.body_facts v q) i)
               minimal))

let prop_full_query_valuations_minimal =
  (* For full CQs the head pins every variable, so all valuations are
     minimal (the fast path behind the paper's NP cases). *)
  QCheck.Test.make ~name:"full CQs: every valuation is minimal" ~count:100
    cq_arb
    (fun q ->
      (* Rebuild with a full head. *)
      let full =
        Ast.make
          ~head:(Ast.atom "H" (List.map (fun v -> Ast.Var v) (Ast.body_vars q)))
          ~body:(Ast.body q) ()
      in
      let universe = [ Value.int 0; Value.int 1 ] in
      let count_all = ref 0 in
      Valuation.enumerate ~vars:(Ast.vars full) ~universe (fun _ ->
          incr count_all);
      List.length (Minimal.minimal_valuations full ~universe) = !count_all)

let prop_generic_join_matches_eval =
  QCheck.Test.make ~name:"generic join = backtracking evaluation" ~count:150
    (QCheck.pair cq_arb small_instance_arb)
    (fun (q, i) ->
      Instance.equal (Eval.eval q i) (Generic_join.eval q i))

let prop_eval_parse_roundtrip =
  QCheck.Test.make ~name:"pp/parse roundtrip preserves evaluation" ~count:100
    (QCheck.pair cq_arb small_instance_arb)
    (fun (q, i) ->
      let q' = Parser.query (Ast.to_string q) in
      Instance.equal (Eval.eval q i) (Eval.eval q' i))

let () =
  Alcotest.run "lamp_cq"
    [
      ( "parser",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "constants" `Quick test_parse_constants;
          Alcotest.test_case "negation and diseq" `Quick test_parse_negation_diseq;
          Alcotest.test_case "boolean head" `Quick test_parse_boolean_head;
          Alcotest.test_case "arrow variants" `Quick test_parse_arrow_variants;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip_examples;
          Alcotest.test_case "ucq" `Quick test_ucq_parse;
        ] );
      ( "ast",
        [
          Alcotest.test_case "is_full" `Quick test_is_full;
          Alcotest.test_case "self join" `Quick test_self_join;
        ] );
      ( "eval",
        [
          Alcotest.test_case "join" `Quick test_eval_join;
          Alcotest.test_case "triangle" `Quick test_eval_triangle;
          Alcotest.test_case "example 4.1" `Quick test_eval_example_4_1;
          Alcotest.test_case "repeated var" `Quick test_eval_self_join_repeated_var;
          Alcotest.test_case "constants" `Quick test_eval_constants;
          Alcotest.test_case "inequalities" `Quick test_eval_diseq;
          Alcotest.test_case "negation" `Quick test_eval_negation;
          Alcotest.test_case "cartesian" `Quick test_eval_cartesian;
          Alcotest.test_case "boolean" `Quick test_eval_boolean;
          Alcotest.test_case "empty" `Quick test_eval_empty_relation;
          Alcotest.test_case "chain join" `Quick test_eval_larger_join;
        ] );
      ( "generic join",
        [
          Alcotest.test_case "triangle" `Quick test_generic_triangle;
          Alcotest.test_case "constants/repeated" `Quick
            test_generic_constants_repeated;
          Alcotest.test_case "inequalities" `Quick test_generic_diseq;
          Alcotest.test_case "custom orders" `Quick test_generic_custom_order;
          Alcotest.test_case "bad order" `Quick test_generic_bad_order;
          Alcotest.test_case "rejects negation" `Quick test_generic_rejects_negation;
        ] );
      ( "cyclic examples",
        [
          Alcotest.test_case "4-cycle" `Quick test_four_cycle_query;
          Alcotest.test_case "k-clique" `Quick test_clique_query;
        ] );
      ( "minimal",
        [
          Alcotest.test_case "example 4.5" `Quick test_minimal_example_4_5;
          Alcotest.test_case "no self join" `Quick test_minimal_plain_join;
          Alcotest.test_case "enumeration" `Quick test_minimal_valuations_count;
          Alcotest.test_case "rejects negation" `Quick test_minimal_rejects_negation;
          Alcotest.test_case "image dedup" `Quick test_minimal_images_dedup;
        ] );
      ( "containment",
        [
          Alcotest.test_case "figure 1(b)" `Quick test_containment_fig1b;
          Alcotest.test_case "head mismatch" `Quick test_containment_head_mismatch;
          Alcotest.test_case "constants" `Quick test_containment_with_constants;
          Alcotest.test_case "minimize" `Quick test_minimize;
          Alcotest.test_case "ucq" `Quick test_ucq_containment;
          Alcotest.test_case "refute with negation" `Quick test_refute_negation;
          Alcotest.test_case "refute bound" `Quick test_refute_bound;
        ] );
      ( "hypergraph",
        [
          Alcotest.test_case "tau*" `Quick test_tau_star;
          Alcotest.test_case "rho*" `Quick test_rho_star;
          Alcotest.test_case "share exponents" `Quick test_share_exponents;
          Alcotest.test_case "acyclicity" `Quick test_acyclicity;
          Alcotest.test_case "join tree" `Quick test_join_tree;
          Alcotest.test_case "join forest" `Quick test_join_forest_components;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_eval_monotone;
            prop_containment_reflexive;
            prop_containment_sound;
            prop_minimize_equivalent;
            prop_minimal_valuations_cover;
            prop_full_query_valuations_minimal;
            prop_generic_join_matches_eval;
            prop_eval_parse_roundtrip;
          ] );
    ]
