(* Randomized equivalence suite for the interned-value engine: the
   compiled-plan CQ evaluator against both the pre-interning reference
   evaluator and an independent brute-force oracle, and the incremental
   Datalog fixpoint against the instance-based reference engine —
   across negation, disequalities, constants and duplicate atoms. *)

open Lamp_relational
open Lamp_cq
module Dl = Lamp_datalog

let instance = Alcotest.testable Instance.pp Instance.equal
let parse = Parser.query

(* ------------------------------------------------------------------ *)
(* Interner                                                            *)

let test_intern_roundtrip () =
  let values =
    [
      Value.int 0; Value.int (-7); Value.int max_int;
      Value.str ""; Value.str "a"; Value.str "\003delta_";
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool) "roundtrip" true
        (Value.equal v (Intern.value (Intern.id v))))
    values;
  List.iter
    (fun v -> Alcotest.(check int) "stable" (Intern.id v) (Intern.id v))
    values

let test_intern_density () =
  (* Fresh values get consecutive ids: the compiled engine's packed
     keys and bitset rows rely on density. *)
  let base = Intern.size () in
  let ids =
    List.init 64 (fun i -> Intern.id (Value.str (Fmt.str "density-%d" i)))
  in
  List.iteri
    (fun i id -> Alcotest.(check int) "dense" (base + i) id)
    ids

let test_intern_tuple () =
  let t = [| Value.int 3; Value.str "x"; Value.int 3 |] in
  let ids = Intern.tuple t in
  Alcotest.(check bool) "untuple" true
    (Tuple.equal t (Intern.untuple ids));
  Alcotest.(check int) "componentwise" ids.(0) (Intern.id (Value.int 3))

(* ------------------------------------------------------------------ *)
(* Instance batch constructors                                         *)

let test_of_facts_equiv () =
  let facts =
    [
      Fact.of_list "R" [ Value.int 1; Value.int 2 ];
      Fact.of_list "R" [ Value.int 1; Value.int 2 ];
      Fact.of_list "S" [ Value.str "a" ];
      Fact.of_list "R" [ Value.int 2; Value.int 1 ];
    ]
  in
  let one_by_one = List.fold_left (fun i f -> Instance.add f i) Instance.empty facts in
  Alcotest.check instance "of_facts" one_by_one (Instance.of_facts facts);
  let ts = Tuple.Set.of_list (Instance.tuple_list one_by_one "R") in
  Alcotest.check instance "of_tuple_set"
    (Instance.filter (fun f -> Fact.rel f = "R") one_by_one)
    (Instance.of_tuple_set "R" ts)

(* ------------------------------------------------------------------ *)
(* Brute-force CQ oracle                                               *)

(* Independent of both engines: enumerate every assignment of the
   query's variables to active-domain values. Exponential — only for
   tiny random instances. *)
let brute_force q db =
  let adom = Value.Set.elements (Instance.adom db) in
  let vars = Ast.vars q in
  let term_val env = function
    | Ast.Const c -> c
    | Ast.Var v -> List.assoc v env
  in
  let atom_holds env (a : Ast.atom) =
    Instance.mem (Fact.of_list a.Ast.rel (List.map (term_val env) a.Ast.terms)) db
  in
  let satisfies env =
    List.for_all (atom_holds env) (Ast.body q)
    && (not (List.exists (atom_holds env) (Ast.negated q)))
    && List.for_all
         (fun (t1, t2) -> not (Value.equal (term_val env t1) (term_val env t2)))
         (Ast.diseq q)
  in
  let rec assignments env = function
    | [] -> if satisfies env then [ env ] else []
    | v :: rest ->
      List.concat_map (fun c -> assignments ((v, c) :: env) rest) adom
  in
  let head = Ast.head q in
  Instance.of_facts
    (List.map
       (fun env -> Fact.of_list head.Ast.rel (List.map (term_val env) head.Ast.terms))
       (assignments [] vars))

(* ------------------------------------------------------------------ *)
(* Random CQs (negation, diseq, constants) and instances               *)

let small_value_gen = QCheck.Gen.(map Value.int (int_range 0 4))

let small_instance_gen =
  let open QCheck.Gen in
  let fact_gen =
    let* rel = oneofl [ "R"; "S"; "T" ] in
    let arity = if rel = "T" then 1 else 2 in
    let* args = list_repeat arity small_value_gen in
    return (Fact.of_list rel args)
  in
  map Instance.of_facts (list_size (int_range 0 14) fact_gen)

(* A safe random query: a positive body over a small variable pool
   (so every head / negated / disequal variable can be drawn from it),
   then optional negated atoms, disequalities and constants. *)
let cq_gen =
  let open QCheck.Gen in
  let term_gen vars =
    frequency
      [ (4, map (fun v -> Ast.Var v) (oneofl vars));
        (1, map (fun c -> Ast.Const c) small_value_gen);
      ]
  in
  let atom_gen vars =
    let* rel = oneofl [ "R"; "S"; "T" ] in
    let arity = if rel = "T" then 1 else 2 in
    let* terms = list_repeat arity (term_gen vars) in
    return (Ast.atom rel terms)
  in
  let* vars = oneofl [ [ "x"; "y" ]; [ "x"; "y"; "z" ] ] in
  let* body = list_size (int_range 1 3) (atom_gen vars) in
  let body_vars =
    List.sort_uniq compare (List.concat_map Ast.atom_vars body)
  in
  (* Ensure at least one variable is positively bound. *)
  let* body, body_vars =
    if body_vars <> [] then return (body, body_vars)
    else return (Ast.atom "T" [ Ast.Var "x" ] :: body, [ "x" ])
  in
  let* negated =
    frequency
      [ (2, return []);
        (1, map (fun a -> [ a ]) (atom_gen body_vars));
      ]
  in
  (* Negated atoms must only use positively bound variables — true by
     construction since they draw from [body_vars]. *)
  let* diseq =
    if List.length body_vars < 2 then return []
    else
      frequency
        [ (2, return []);
          ( 1,
            let* v1 = oneofl body_vars in
            let* v2 = oneofl body_vars in
            return (if v1 = v2 then [] else [ (Ast.Var v1, Ast.Var v2) ]) );
        ]
  in
  let* head_vars =
    oneof [ return body_vars; map (fun v -> [ v ]) (oneofl body_vars) ]
  in
  return
    (Ast.make ~negated ~diseq
       ~head:(Ast.atom "H" (List.map (fun v -> Ast.Var v) head_vars))
       ~body ())

let cq_arb = QCheck.make ~print:Ast.to_string cq_gen

let small_instance_arb =
  QCheck.make ~print:(Fmt.str "%a" Instance.pp) small_instance_gen

let prop_compiled_matches_reference =
  QCheck.Test.make ~name:"compiled CQ eval = reference eval" ~count:400
    (QCheck.pair cq_arb small_instance_arb)
    (fun (q, db) -> Instance.equal (Eval.eval q db) (Eval.Reference.eval q db))

let prop_compiled_matches_brute_force =
  QCheck.Test.make ~name:"compiled CQ eval = brute force" ~count:200
    (QCheck.pair cq_arb small_instance_arb)
    (fun (q, db) -> Instance.equal (Eval.eval q db) (brute_force q db))

let prop_valuations_match =
  QCheck.Test.make ~name:"compiled valuations = reference valuations" ~count:200
    (QCheck.pair cq_arb small_instance_arb)
    (fun (q, db) ->
      let sort vs = List.sort Valuation.compare vs in
      let via_fold fold =
        let idx = Index.create db in
        sort (fold q idx (fun v acc -> v :: acc) [])
      in
      List.equal
        (fun a b -> Valuation.compare a b = 0)
        (via_fold Eval.fold_valuations_idx)
        (via_fold Eval.Reference.fold_valuations_idx))

(* ------------------------------------------------------------------ *)
(* Worst-case-optimal backend: Wcoj ≡ binary ≡ Generic_join            *)

let prop_wcoj_matches_binary =
  QCheck.Test.make ~name:"wcoj eval = binary eval (full CQ with neg/diseq)"
    ~count:400
    (QCheck.pair cq_arb small_instance_arb)
    (fun (q, db) ->
      Instance.equal (Eval.eval ~strategy:Eval.Wcoj q db) (Eval.eval q db))

let prop_wcoj_matches_generic_join =
  (* Generic_join is the value-level oracle; it only accepts positive
     bodies, so CQ¬ samples pass trivially. *)
  QCheck.Test.make ~name:"wcoj eval = Generic_join oracle (positive CQ)"
    ~count:400
    (QCheck.pair cq_arb small_instance_arb)
    (fun (q, db) ->
      match Ast.negated q with
      | _ :: _ -> true
      | [] ->
          Instance.equal
            (Eval.eval ~strategy:Eval.Wcoj q db)
            (Generic_join.eval q db))

let prop_wcoj_valuations_match =
  QCheck.Test.make ~name:"wcoj valuations = binary valuations" ~count:200
    (QCheck.pair cq_arb small_instance_arb)
    (fun (q, db) ->
      let sort vs = List.sort Valuation.compare vs in
      let via strategy =
        let idx = Index.create db in
        sort
          (Eval.fold_valuations_idx ~strategy q idx (fun v acc -> v :: acc) [])
      in
      List.equal
        (fun a b -> Valuation.compare a b = 0)
        (via Eval.Wcoj) (via Eval.Binary))

let prop_wcoj_trace_invariant =
  (* Enabling lamp.obs tracing must never change results — both
     backends, same instance, trace on vs off. *)
  QCheck.Test.make ~name:"wcoj eval unchanged by tracing" ~count:100
    (QCheck.pair cq_arb small_instance_arb)
    (fun (q, db) ->
      let off = Eval.eval ~strategy:Eval.Wcoj q db in
      Lamp_obs.Trace.set_enabled true;
      let on =
        Fun.protect
          ~finally:(fun () -> Lamp_obs.Trace.set_enabled false)
          (fun () -> Eval.eval ~strategy:Eval.Wcoj q db)
      in
      Instance.equal off on)

let test_wcoj_counters_tick () =
  (* The lamp.obs counters on the WCOJ path record work while tracing
     is on and stay frozen while it is off. *)
  let db = Instance.of_string "R(1,2). R(2,3). R(3,1). S(1,2). S(2,3). S(3,1). T(1,2). T(2,3). T(3,1)." in
  let q = parse "H(x,y,z) <- R(x,y), S(y,z), T(z,x)" in
  let probes = Lamp_obs.Trace.counter "cq.wcoj_probes" in
  let emitted = Lamp_obs.Trace.counter "cq.wcoj_emitted" in
  Lamp_obs.Trace.set_enabled false;
  let p0 = Lamp_obs.Trace.value probes in
  ignore (Eval.eval ~strategy:Eval.Wcoj q db);
  Alcotest.(check int) "frozen while off" p0 (Lamp_obs.Trace.value probes);
  Lamp_obs.Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Lamp_obs.Trace.set_enabled false)
    (fun () ->
      let out = Eval.eval ~strategy:Eval.Wcoj q db in
      Alcotest.(check int) "triangle count" 3 (Instance.cardinal out);
      Alcotest.(check bool) "probes tick" true
        (Lamp_obs.Trace.value probes > p0);
      Alcotest.(check bool) "emitted ticks" true
        (Lamp_obs.Trace.value emitted > 0))

let test_default_order_deterministic () =
  (* Most-constrained-first with name tie-breaks: a pure function of
     the query, identical across calls and across atom orderings that
     keep the coverage counts. *)
  let q = parse "H(x,y,z) <- R(x,y), S(y,z), T(z,x)" in
  let o1 = Generic_join.default_order q in
  let o2 = Generic_join.default_order q in
  Alcotest.(check (list string)) "stable" o1 o2;
  Alcotest.(check (list string)) "name ties ascending" [ "x"; "y"; "z" ] o1;
  let q' = parse "H(x,y,z) <- T(z,x), R(x,y), S(y,z)" in
  Alcotest.(check (list string))
    "atom order irrelevant" o1
    (Generic_join.default_order q');
  (* w is covered once, the cycle vars twice: w must come last. *)
  let q2 = parse "H(x,w) <- R(x,y), S(y,x), T(x,w)" in
  Alcotest.(check (list string))
    "coverage before names" [ "x"; "y"; "w" ]
    (Generic_join.default_order q2)

(* ------------------------------------------------------------------ *)
(* Duplicate-atom regression                                           *)

(* order_atoms used to remove the chosen atom with [List.filter (!=)]:
   a body containing the same atom twice — physically shared, as a
   generated query easily produces — lost all duplicates in one step,
   silently dropping join steps from the plan. *)
let test_duplicate_atom_plan () =
  let a = Ast.atom "R" [ Ast.Var "x"; Ast.Var "y" ] in
  let q =
    Ast.make ~head:(Ast.atom "H" [ Ast.Var "x"; Ast.Var "y" ]) ~body:[ a; a ] ()
  in
  Alcotest.(check int) "both duplicates kept" 2 (Plan.atom_count (Plan.make q));
  let db = Instance.of_string "R(1,2). R(2,3)." in
  Alcotest.check instance "duplicate-atom eval"
    (Eval.Reference.eval q db) (Eval.eval q db)

let test_duplicate_atom_distinct_vars () =
  (* Same relation twice with different variables must survive too. *)
  let q = parse "H(x,z) <- R(x,y), R(y,z)" in
  Alcotest.(check int) "two steps" 2 (Plan.atom_count (Plan.make q));
  let db = Instance.of_string "R(1,2). R(2,3). R(3,1)." in
  Alcotest.check instance "composition"
    (Eval.Reference.eval q db) (Eval.eval q db)

(* ------------------------------------------------------------------ *)
(* Datalog: incremental engine vs reference engine                     *)

let check_program ?(strategies = [ Dl.Eval.Naive; Dl.Eval.Seminaive ]) program db
    =
  let expect = Dl.Eval.run_reference program db in
  List.iter
    (fun strategy ->
      Alcotest.check instance "vs reference"
        expect
        (Dl.Eval.run ~strategy program db))
    strategies

let test_datalog_canned () =
  let rng = Random.State.make [| 7 |] in
  let g = Generate.random_graph ~rng ~nodes:18 ~edges:40 () in
  check_program Dl.Canned.transitive_closure g;
  check_program (Dl.Program.parse "P(x,y) <- E(x,y)\nP(x,y) <- P(x,z), E(z,y)") g

let test_datalog_negation_strata () =
  let rng = Random.State.make [| 8 |] in
  let g = Generate.random_graph ~rng ~nodes:12 ~edges:25 () in
  (* Unreachable pairs: negation over a recursively computed stratum. *)
  let p =
    Dl.Program.parse
      "TC(x,y) <- E(x,y)\n\
       TC(x,y) <- TC(x,z), E(z,y)\n\
       Node(x) <- E(x,y)\n\
       Node(y) <- E(x,y)\n\
       Sep(x,y) <- Node(x), Node(y), !TC(x,y), x != y"
  in
  check_program p g

(* Random two-stratum programs: a randomly shaped recursive first
   stratum, then a rule with negation and/or a disequality over it. *)
let stratified_case_gen =
  let open QCheck.Gen in
  let* recursive =
    oneofl
      [
        "P(x,y) <- P(x,z), E(z,y)";    (* left-linear *)
        "P(x,y) <- E(x,z), P(z,y)";    (* right-linear *)
        "P(x,y) <- P(x,z), P(z,y)";    (* nonlinear *)
      ]
  in
  let* second =
    oneofl
      [
        "Q(x,y) <- P(x,y), !E(x,y)";
        "Q(x,y) <- P(x,y), !E(y,x), x != y";
        "Q(x) <- P(x,x)";
      ]
  in
  let* seed = int_range 0 10_000 in
  let* nodes = int_range 4 12 in
  let* edges = int_range 4 30 in
  return (Fmt.str "P(x,y) <- E(x,y)\n%s\n%s" recursive second, seed, nodes, edges)

let prop_datalog_random_stratified =
  QCheck.Test.make ~name:"datalog run = run_reference (random stratified)"
    ~count:60
    (QCheck.make
       ~print:(fun (p, s, n, e) -> Fmt.str "%s [seed=%d n=%d e=%d]" p s n e)
       stratified_case_gen)
    (fun (text, seed, nodes, edges) ->
      let program = Dl.Program.parse text in
      let rng = Random.State.make [| seed |] in
      let g = Generate.random_graph ~rng ~nodes ~edges () in
      let expect = Dl.Eval.run_reference program g in
      Instance.equal expect (Dl.Eval.run ~strategy:Dl.Eval.Naive program g)
      && Instance.equal expect
           (Dl.Eval.run ~strategy:Dl.Eval.Seminaive program g))

let prop_datalog_seminaive_matches_naive =
  QCheck.Test.make ~name:"seminaive = naive (random graphs)" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 2 14))
    (fun (seed, nodes) ->
      let rng = Random.State.make [| seed |] in
      let g = Generate.random_graph ~rng ~nodes ~edges:(2 * nodes) () in
      let p = Dl.Canned.transitive_closure in
      Instance.equal
        (Dl.Eval.run ~strategy:Dl.Eval.Naive p g)
        (Dl.Eval.run ~strategy:Dl.Eval.Seminaive p g))

let () =
  Alcotest.run "lamp_engine"
    [
      ( "intern",
        [
          Alcotest.test_case "roundtrip" `Quick test_intern_roundtrip;
          Alcotest.test_case "density" `Quick test_intern_density;
          Alcotest.test_case "tuple" `Quick test_intern_tuple;
        ] );
      ( "instance",
        [ Alcotest.test_case "batch constructors" `Quick test_of_facts_equiv ] );
      ( "plans",
        [
          Alcotest.test_case "duplicate shared atom" `Quick
            test_duplicate_atom_plan;
          Alcotest.test_case "duplicate rel, distinct vars" `Quick
            test_duplicate_atom_distinct_vars;
        ] );
      ( "wcoj",
        [
          Alcotest.test_case "obs counters tick" `Quick test_wcoj_counters_tick;
          Alcotest.test_case "default_order deterministic" `Quick
            test_default_order_deterministic;
        ] );
      ( "datalog",
        [
          Alcotest.test_case "canned vs reference" `Quick test_datalog_canned;
          Alcotest.test_case "negation strata" `Quick
            test_datalog_negation_strata;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_compiled_matches_reference;
            prop_compiled_matches_brute_force;
            prop_valuations_match;
            prop_wcoj_matches_binary;
            prop_wcoj_matches_generic_join;
            prop_wcoj_valuations_match;
            prop_wcoj_trace_invariant;
            prop_datalog_random_stratified;
            prop_datalog_seminaive_matches_naive;
          ] );
    ]
