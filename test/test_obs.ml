open Lamp_relational
open Lamp_runtime
module Trace = Lamp_obs.Trace
module Export = Lamp_obs.Export

let instance = Alcotest.testable Instance.pp Instance.equal

(* Every test starts from a quiet collector and leaves it disabled, so
   test order never matters. *)
let clean f () =
  Trace.set_enabled false;
  Trace.reset ();
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) f

let span_names () =
  List.filter_map
    (function Trace.Span { name; _ } -> Some name | _ -> None)
    (Trace.events ())

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let test_span_disabled_is_silent () =
  let r = Trace.span "quiet" (fun () -> 41 + 1) in
  Alcotest.(check int) "result through" 42 r;
  Alcotest.(check (list string)) "no events" [] (span_names ())

let test_span_nesting () =
  Trace.set_enabled true;
  let r =
    Trace.span "outer" (fun () ->
        Trace.span "inner" (fun () -> Unix.sleepf 0.002) |> ignore;
        Trace.span "inner" (fun () -> ()) |> ignore;
        7)
  in
  Alcotest.(check int) "result through" 7 r;
  (* Completion order: both inners close before the outer. *)
  Alcotest.(check (list string))
    "nesting recorded" [ "inner"; "inner"; "outer" ] (span_names ());
  let find name =
    List.find_map
      (function
        | Trace.Span { name = n; t; dur; _ } when n = name -> Some (t, dur)
        | _ -> None)
      (Trace.events ())
  in
  match (find "outer", find "inner") with
  | Some (t_out, d_out), Some (t_in, d_in) ->
    Alcotest.(check bool) "outer starts first" true (t_out <= t_in);
    Alcotest.(check bool) "outer covers inner" true (d_out >= d_in);
    Alcotest.(check bool) "inner slept" true (d_in >= 0.002)
  | _ -> Alcotest.fail "spans missing"

let test_span_records_on_raise () =
  Trace.set_enabled true;
  Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
      Trace.span "doomed" (fun () -> failwith "boom"));
  Alcotest.(check (list string)) "span still recorded" [ "doomed" ] (span_names ())

(* ------------------------------------------------------------------ *)
(* Counters and histograms under the pool backend                      *)

let test_counter_disabled_is_noop () =
  let c = Trace.counter "test.off" in
  Trace.incr c;
  Trace.add c 10;
  Alcotest.(check int) "stays zero while disabled" 0 (Trace.value c)

let test_counter_pool_aggregation () =
  Trace.set_enabled true;
  let c = Trace.counter "test.pool" in
  let h = Trace.histogram "test.pool_hist" in
  let pool = Pool.create ~domains:4 () in
  let ex = Executor.pool pool in
  Executor.parallel_for ex ~n:64 (fun ~worker:_ k ->
      for _ = 1 to 1000 do
        Trace.incr c
      done;
      Trace.observe h k);
  Pool.shutdown pool;
  Alcotest.(check int) "no increment lost across domains" 64_000 (Trace.value c);
  let s = Trace.histogram_snapshot h in
  Alcotest.(check int) "observations" 64 s.Trace.count;
  Alcotest.(check int) "sum 0..63" (63 * 64 / 2) s.Trace.sum;
  Alcotest.(check int) "max" 63 s.Trace.max_value

let test_histogram_buckets () =
  Trace.set_enabled true;
  let h = Trace.histogram "test.buckets" in
  List.iter (Trace.observe h) [ 0; 1; 2; 3; 8 ];
  let s = Trace.histogram_snapshot h in
  Alcotest.(check int) "count" 5 s.Trace.count;
  Alcotest.(check int) "sum" 14 s.Trace.sum;
  Alcotest.(check int) "max" 8 s.Trace.max_value;
  (* Power-of-two buckets, inclusive upper bounds: 0 -> [0], 1 -> [1],
     {2,3} -> [3], 8 -> [15]. *)
  Alcotest.(check (list (pair int int)))
    "buckets" [ (0, 1); (1, 1); (3, 2); (15, 1) ] s.Trace.buckets

let test_percentiles () =
  Trace.set_enabled true;
  let snap values =
    let h = Trace.histogram "test.percentiles" in
    List.iter (Trace.observe h) values;
    Trace.histogram_snapshot h
  in
  (* Empty histogram: every quantile is 0. *)
  let empty = snap [] in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Trace.percentile empty 0.5);
  (* A single value: all quantiles land on (an estimate of) it; q = 1
     is exact by the max_value clamp. *)
  Trace.reset ();
  let one = snap [ 100 ] in
  Alcotest.(check (float 0.0)) "single value, q=1" 100.0
    (Trace.percentile one 1.0);
  let p50 = Trace.percentile one 0.5 in
  Alcotest.(check bool) "single value, q=0.5 within bucket" true
    (p50 >= 64.0 && p50 <= 100.0);
  (* Monotonicity across quantiles, upper clamp at max_value. *)
  Trace.reset ();
  let s = snap (List.init 1000 (fun i -> i)) in
  let p50 = Trace.percentile s 0.50 in
  let p95 = Trace.percentile s 0.95 in
  let p99 = Trace.percentile s 0.99 in
  Alcotest.(check bool) "p50 <= p95 <= p99" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check bool) "p99 <= max" true
    (p99 <= float_of_int s.Trace.max_value);
  Alcotest.(check (float 0.0)) "q=1 is the max" 999.0 (Trace.percentile s 1.0);
  (* Power-of-two resolution: the estimate stays within a factor of 2
     of the true quantile (true p50 of 0..999 is ~500). *)
  Alcotest.(check bool) "p50 within a bucket of truth" true
    (p50 >= 250.0 && p50 <= 1000.0);
  (* Out-of-range quantiles clamp instead of raising. *)
  Alcotest.(check (float 0.0)) "q>1 clamps" 999.0 (Trace.percentile s 1.5)

let test_reset_clears () =
  Trace.set_enabled true;
  let c = Trace.counter "test.reset" in
  Trace.incr c;
  Trace.instant "blip";
  Trace.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Trace.value c);
  Alcotest.(check int) "events cleared" 0 (List.length (Trace.events ()));
  (* The handle stays live after a reset. *)
  Trace.incr c;
  Alcotest.(check int) "handle survives reset" 1 (Trace.value c)

(* ------------------------------------------------------------------ *)
(* Metrics shim                                                        *)

let test_metrics_multidomain () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    (fun () ->
      let pool = Pool.create ~domains:4 () in
      let ex = Executor.pool pool in
      Executor.parallel_for ex ~n:32 (fun ~worker:_ k ->
          Metrics.record
            {
              Metrics.label = Printf.sprintf "t%d" k;
              wall_s = 0.001;
              tasks = 1;
              steals = 0;
            });
      Pool.shutdown pool;
      let s = Metrics.summary () in
      Alcotest.(check int) "records from worker domains kept" 32 s.Metrics.rounds;
      Alcotest.(check int) "tasks summed" 32 s.Metrics.total_tasks)

let test_metrics_forwards_to_trace () =
  Trace.set_enabled true;
  Alcotest.(check bool)
    "tracing alone turns metering on" true (Metrics.is_enabled ());
  Metrics.record
    { Metrics.label = "fwd"; wall_s = 0.001; tasks = 3; steals = 1 };
  Alcotest.(check (list string)) "forwarded as a span" [ "fwd" ] (span_names ());
  Alcotest.(check int)
    "summary store untouched (own flag off)" 0 (Metrics.summary ()).Metrics.rounds

(* ------------------------------------------------------------------ *)
(* Determinism: tracing may never change results or statistics         *)

let tri_workload () =
  let rng = Random.State.make [| 42 |] in
  Lamp_mpc.Workload.triangle_skew_free ~rng ~m:300 ~domain:200

let run_hc executor =
  let r, s, _ =
    Lamp_mpc.Hypercube.run ~executor ~p:8 Lamp_cq.Examples.q2_triangle
      (tri_workload ())
  in
  (r, s)

let check_trace_invariance run =
  let r_off, s_off = run () in
  Trace.set_enabled true;
  let r_on, s_on = run () in
  Trace.set_enabled false;
  Alcotest.check instance "results identical with tracing on" r_off r_on;
  Alcotest.(check bool) "stats bit-identical with tracing on" true (s_off = s_on);
  Alcotest.(check bool) "trace captured events" true (Trace.events () <> [])

let test_determinism_seq () =
  check_trace_invariance (fun () -> run_hc Executor.sequential)

let test_determinism_pool () =
  check_trace_invariance (fun () ->
      let pool = Pool.create ~domains:4 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> run_hc (Executor.pool pool)))

let test_determinism_datalog () =
  let rng = Random.State.make [| 7 |] in
  let graph = Generate.random_graph ~rng ~nodes:60 ~edges:150 () in
  let tc = Lamp_datalog.Canned.transitive_closure in
  let run () = Lamp_datalog.Eval.run tc graph in
  let off = run () in
  Trace.set_enabled true;
  let on = run () in
  Trace.set_enabled false;
  Alcotest.check instance "datalog result identical with tracing on" off on;
  Alcotest.(check bool)
    "stratum spans and iteration events present" true
    (List.mem "datalog.stratum" (span_names ())
    && List.exists
         (function
           | Trace.Instant { name = "datalog.iteration"; _ } -> true
           | _ -> false)
         (Trace.events ()))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_export_jsonl () =
  Trace.set_enabled true;
  ignore (run_hc Executor.sequential);
  Trace.set_enabled false;
  let path = Filename.temp_file "lamp_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.write_jsonl path;
      let lines =
        String.split_on_char '\n' (read_file path)
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check bool) "non-empty" true (lines <> []);
      List.iter
        (fun l ->
          Alcotest.(check bool) "line is a JSON object" true
            (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}');
          Alcotest.(check bool) "has type field" true (contains l "\"type\"");
          Alcotest.(check bool) "has name field" true (contains l "\"name\""))
        lines;
      Alcotest.(check bool) "mpc events present" true
        (List.exists (fun l -> contains l "mpc.server") lines);
      Alcotest.(check bool) "counter lines present" true
        (List.exists (fun l -> contains l "\"type\":\"counter\"") lines))

let test_export_chrome () =
  Trace.set_enabled true;
  ignore (run_hc Executor.sequential);
  Trace.set_enabled false;
  let path = Filename.temp_file "lamp_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.write_chrome path;
      let s = read_file path in
      Alcotest.(check bool) "trace_event envelope" true
        (String.starts_with ~prefix:"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[" s);
      Alcotest.(check bool) "complete spans" true (contains s "\"ph\":\"X\"");
      Alcotest.(check bool) "instants" true (contains s "\"ph\":\"i\"");
      Alcotest.(check bool) "counter tracks" true (contains s "\"ph\":\"C\"");
      Alcotest.(check bool) "closed envelope" true
        (String.length s >= 3 && String.sub s (String.length s - 3) 3 = "]}\n"))

(* ------------------------------------------------------------------ *)
(* Live metrics registry (lamp.obs v2)                                 *)

module Live = Lamp_obs.Metrics
module Sketch = Lamp_obs.Sketch

let test_registry_all_flag () =
  let c = Trace.counter "test.zero_counter" in
  let _h = Trace.histogram "test.zero_hist" in
  ignore c;
  Alcotest.(check bool)
    "zero counter hidden by default" false
    (List.mem_assoc "test.zero_counter" (Trace.counters ()));
  Alcotest.(check (option int))
    "~all:true exposes it as 0" (Some 0)
    (List.assoc_opt "test.zero_counter" (Trace.counters ~all:true ()));
  Alcotest.(check bool)
    "empty histogram hidden by default" false
    (List.mem_assoc "test.zero_hist" (Trace.histograms ()));
  Alcotest.(check bool)
    "~all:true exposes the empty histogram" true
    (List.mem_assoc "test.zero_hist" (Trace.histograms ~all:true ()))

let test_gauges () =
  (* Settable gauges are not gated on tracing: a scrape must see
     current state even on a quiet server. *)
  let g = Live.gauge "test.g" in
  Live.set g 7;
  Alcotest.(check int) "set/get while disabled" 7 (Live.gauge_value g);
  Live.register_callback "test.cb" (fun () -> 2.5);
  Live.register_callback "test.cb_raise" (fun () -> failwith "scrape me not");
  Fun.protect
    ~finally:(fun () ->
      Live.unregister_callback "test.cb";
      Live.unregister_callback "test.cb_raise")
    (fun () ->
      let gs = Live.gauges () in
      Alcotest.(check (option (float 0.0)))
        "settable exposed" (Some 7.0)
        (List.assoc_opt "test.g" gs);
      Alcotest.(check (option (float 0.0)))
        "callback evaluated at scrape" (Some 2.5)
        (List.assoc_opt "test.cb" gs);
      Alcotest.(check bool)
        "raising callback reads as nan, scrape survives" true
        (match List.assoc_opt "test.cb_raise" gs with
        | Some v -> Float.is_nan v
        | None -> false));
  Alcotest.(check bool)
    "unregistered callback gone" false
    (List.mem_assoc "test.cb" (Live.gauges ()))

let test_labeled_family () =
  Trace.set_enabled true;
  let fam = Live.counter_family ~help:"ops by kind" "test.fam" in
  let a = Live.cell fam [ ("op", "get") ] in
  let b = Live.cell fam [ ("op", "put") ] in
  Trace.incr a;
  Trace.incr a;
  Trace.incr b;
  Alcotest.(check int) "cells count independently" 2 (Trace.value a);
  Alcotest.(check int) "second cell untouched" 1 (Trace.value b);
  (* Get-or-create: the same label values yield the same cell. *)
  Trace.incr (Live.cell fam [ ("op", "get") ]);
  Alcotest.(check int) "same labels, same cell" 3 (Trace.value a);
  Alcotest.(check string)
    "rendered name carries the labels" "test.fam{op=\"get\"}"
    (Live.render_labels "test.fam" [ ("op", "get") ]);
  Alcotest.(check (pair string string))
    "split_labels inverts render" ("test.fam", "{op=\"get\"}")
    (Live.split_labels "test.fam{op=\"get\"}");
  Alcotest.(check (option string))
    "family help registered on the base name" (Some "ops by kind")
    (Live.help "test.fam")

let test_snapshot_diff () =
  Trace.set_enabled true;
  let h = Trace.histogram "test.diff" in
  List.iter (Trace.observe h) [ 1; 2 ];
  let older = Trace.histogram_snapshot h in
  Trace.observe h 8;
  let newer = Trace.histogram_snapshot h in
  let d = Live.snapshot_diff ~newer ~older in
  Alcotest.(check int) "one observation in between" 1 d.Trace.count;
  Alcotest.(check int) "its sum" 8 d.Trace.sum;
  Alcotest.(check int)
    "its bucket" 1
    (List.fold_left (fun acc (_, c) -> acc + c) 0 d.Trace.buckets);
  (* Reversed arguments model a reset in between: clamp, don't go
     negative. *)
  let z = Live.snapshot_diff ~newer:older ~older:newer in
  Alcotest.(check int) "negative diffs clamp to zero" 0 z.Trace.count

let test_window_arithmetic () =
  Trace.set_enabled true;
  let c = Trace.counter "test.win_c" in
  let h = Trace.histogram "test.win_h" in
  let w = Live.window ~slots:3 () in
  ignore (Live.tick w);
  Alcotest.(check int) "delta is 0 with one capture" 0 (Live.delta w "test.win_c");
  Alcotest.(check (float 0.0)) "rate is 0 with one capture" 0.0
    (Live.rate w "test.win_c");
  Trace.add c 10;
  Trace.observe h 4;
  Unix.sleepf 0.002;
  ignore (Live.tick w);
  Alcotest.(check int) "delta across the window" 10 (Live.delta w "test.win_c");
  Alcotest.(check bool) "span is the capture gap" true (Live.span w > 0.0);
  Alcotest.(check (float 1e-6))
    "rate * span = delta" 10.0
    (Live.rate w "test.win_c" *. Live.span w);
  Alcotest.(check (float 0.0))
    "windowed q=1 is the window's max" 4.0
    (Live.quantile w "test.win_h" 1.0);
  Trace.add c 5;
  ignore (Live.tick w);
  Alcotest.(check int) "full ring covers oldest..newest" 15
    (Live.delta w "test.win_c");
  Trace.add c 1;
  ignore (Live.tick w);
  (* The fourth tick evicted the first capture: the window now starts
     at the counter = 10 snapshot. *)
  Alcotest.(check int) "eviction slides the window" 6
    (Live.delta w "test.win_c");
  Alcotest.(check int) "ring holds its slots" 3 (Live.length w)

(* A scrape racing live observers: every mid-flight capture must be
   sane (monotone, never negative), and once the observers land the
   aggregates must be exact — nothing lost, nothing double-counted. *)
let test_concurrent_scrape () =
  Trace.set_enabled true;
  let c = Trace.counter "test.live_c" in
  let h = Trace.histogram "test.live_h" in
  let per = 20_000 and workers = 3 in
  let ds =
    List.init workers (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              Trace.incr c;
              Trace.observe h (i land 255)
            done))
  in
  let monotone = ref true and prev_c = ref 0 and prev_n = ref 0 in
  for _ = 1 to 200 do
    let s = Live.snapshot () in
    (match List.assoc_opt "test.live_c" s.Live.counters with
    | Some v ->
      if v < !prev_c then monotone := false;
      prev_c := v
    | None -> ());
    match List.assoc_opt "test.live_h" s.Live.histograms with
    | Some hs ->
      if hs.Trace.count < !prev_n || hs.Trace.sum < 0 then monotone := false;
      prev_n := hs.Trace.count
    | None -> ()
  done;
  List.iter Domain.join ds;
  Alcotest.(check bool) "mid-flight captures monotone" true !monotone;
  Alcotest.(check int)
    "no increment lost to the scraper" (workers * per) (Trace.value c);
  let s = Trace.histogram_snapshot h in
  Alcotest.(check int) "all observations landed" (workers * per) s.Trace.count;
  Alcotest.(check int)
    "buckets account for every observation" (workers * per)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Trace.buckets)

(* ------------------------------------------------------------------ *)
(* Sketches                                                            *)

let zipf_stream ~seed ~n ~domain ~s =
  let rng = Random.State.make [| seed |] in
  let draw = Generate.zipf_sampler ~rng ~n:domain ~s in
  Array.init n (fun _ -> draw ())

let exact_counts stream =
  let tbl = Hashtbl.create 512 in
  Array.iter
    (fun id ->
      Hashtbl.replace tbl id
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl id)))
    stream;
  tbl

let test_cm_zipf_bound () =
  let stream = zipf_stream ~seed:99 ~n:30_000 ~domain:2000 ~s:1.2 in
  let exact = exact_counts stream in
  let cm = Sketch.Cm.create () in
  Array.iter (Sketch.Cm.add cm) stream;
  let bound = Sketch.Cm.error_bound cm in
  Alcotest.(check int) "total is the stream length" 30_000
    (Sketch.Cm.total cm);
  let over = ref 0 and under = ref false and keys = ref 0 in
  Hashtbl.iter
    (fun id c ->
      incr keys;
      let est = Sketch.Cm.estimate cm id in
      if est < c then under := true;
      if est - c > bound then incr over)
    exact;
  Alcotest.(check bool) "one-sided: never undercounts" false !under;
  Alcotest.(check bool)
    "error within eps*m on >= 99% of keys" true
    (float_of_int !over <= 0.01 *. float_of_int !keys);
  (* The heavy hitters — where the report looks — estimate exactly or
     nearly so. *)
  let top =
    Hashtbl.fold (fun id c acc -> (c, id) :: acc) exact []
    |> List.sort (fun a b -> compare b a)
    |> List.filteri (fun i _ -> i < 10)
  in
  Alcotest.(check bool)
    "true top-10 within the bound" true
    (List.for_all (fun (c, id) -> Sketch.Cm.estimate cm id - c <= bound) top)

let test_topk_and_reservoir () =
  let stream = zipf_stream ~seed:99 ~n:30_000 ~domain:2000 ~s:1.2 in
  let exact = exact_counts stream in
  let topk = Sketch.Topk.create ~capacity:32 () in
  let res = Sketch.Reservoir.create ~capacity:64 () in
  Array.iter
    (fun id ->
      Sketch.Topk.offer topk id;
      Sketch.Reservoir.offer res id)
    stream;
  let truth id = Option.value ~default:0 (Hashtbl.find_opt exact id) in
  let reported = Sketch.Topk.top topk 10 in
  let true_top5 =
    Hashtbl.fold (fun id c acc -> (c, id) :: acc) exact []
    |> List.sort (fun a b -> compare b a)
    |> List.filteri (fun i _ -> i < 5)
    |> List.map snd
  in
  Alcotest.(check bool)
    "space-saving catches the true top-5" true
    (List.for_all
       (fun id -> List.exists (fun (i, _, _) -> i = id) reported)
       true_top5);
  Alcotest.(check bool)
    "est - err <= truth <= est on every entry" true
    (List.for_all
       (fun (id, est, err) ->
         let c = truth id in
         est - err <= c && c <= est)
       reported);
  Alcotest.(check int) "reservoir saw the stream" 30_000
    (Sketch.Reservoir.seen res);
  Alcotest.(check int) "reservoir holds its capacity" 64
    (List.length (Sketch.Reservoir.contents res));
  let res2 = Sketch.Reservoir.create ~capacity:64 () in
  Array.iter (Sketch.Reservoir.offer res2) stream;
  Alcotest.(check (list int))
    "same stream, same sample" (Sketch.Reservoir.contents res)
    (Sketch.Reservoir.contents res2)

(* The per-round skew report rides the MPC rounds: absent while the
   master switch is off, recorded per round while on — and the measured
   Stats.t is bit-identical either way. *)
let test_skew_reports_gated () =
  Sketch.reset ();
  let rng = Random.State.make [| 3 |] in
  let inst =
    Lamp_mpc.Workload.relations_from_pairs ~rels:[ "R"; "S" ]
      (Lamp_mpc.Workload.zipf_pairs ~rng ~m:400 ~domain:100 ~s:1.2)
  in
  let run () = Lamp_mpc.Repartition_join.run ~materialize:false ~p:4 inst in
  let _, s_off = run () in
  Alcotest.(check int) "no report while disabled" 0 (Sketch.report_count ());
  Sketch.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Sketch.set_enabled false;
      Sketch.reset ())
    (fun () ->
      let _, s_on = run () in
      Alcotest.(check int) "one round, one report" 1 (Sketch.report_count ());
      (match Sketch.latest () with
      | None -> Alcotest.fail "report missing"
      | Some r ->
        Alcotest.(check int) "p recorded" 4 r.Sketch.p;
        Alcotest.(check int) "round numbered from 1" 1 r.Sketch.round;
        Alcotest.(check bool) "top keys present" true (r.Sketch.top <> []);
        Alcotest.(check int)
          "max_received is the measured max load"
          (Lamp_mpc.Stats.max_load s_on)
          r.Sketch.max_received);
      Alcotest.(check bool)
        "stats bit-identical with sketches on" true (s_off = s_on))

let test_openmetrics_roundtrip () =
  Trace.set_enabled true;
  let fam = Live.counter_family "test.om" in
  Trace.add (Live.cell fam [ ("op", "scan") ]) 7;
  let h = Trace.histogram "test.om_hist" in
  List.iter (Trace.observe h) [ 1; 2; 3; 300 ];
  let g = Live.gauge "test.om_gauge" in
  Live.set g 5;
  let text = Export.openmetrics () in
  Alcotest.(check bool)
    "exposition ends with # EOF" true
    (String.length text >= 6
    && String.sub text (String.length text - 6) 6 = "# EOF\n");
  let samples = Export.parse_openmetrics text in
  let value ?(labels = []) name =
    List.find_map
      (fun (n, ls, v) ->
        if n = name && List.for_all (fun kv -> List.mem kv ls) labels then
          Some v
        else None)
      samples
  in
  Alcotest.(check (option (float 0.0)))
    "labeled counter scraped back" (Some 7.0)
    (value ~labels:[ ("op", "scan") ] "lamp_test_om_total");
  Alcotest.(check (option (float 0.0)))
    "histogram count" (Some 4.0)
    (value "lamp_test_om_hist_count");
  Alcotest.(check (option (float 0.0)))
    "+Inf bucket equals count" (Some 4.0)
    (value ~labels:[ ("le", "+Inf") ] "lamp_test_om_hist_bucket");
  Alcotest.(check (option (float 0.0)))
    "histogram sum" (Some 306.0)
    (value "lamp_test_om_hist_sum");
  Alcotest.(check (option (float 0.0)))
    "gauge scraped back" (Some 5.0)
    (value "lamp_test_om_gauge")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "disabled is silent" `Quick
            (clean test_span_disabled_is_silent);
          Alcotest.test_case "nesting and overlap" `Quick (clean test_span_nesting);
          Alcotest.test_case "records on raise" `Quick
            (clean test_span_records_on_raise);
        ] );
      ( "counters",
        [
          Alcotest.test_case "disabled is no-op" `Quick
            (clean test_counter_disabled_is_noop);
          Alcotest.test_case "pool aggregation" `Quick
            (clean test_counter_pool_aggregation);
          Alcotest.test_case "histogram buckets" `Quick
            (clean test_histogram_buckets);
          Alcotest.test_case "percentiles" `Quick (clean test_percentiles);
          Alcotest.test_case "reset" `Quick (clean test_reset_clears);
        ] );
      ( "metrics-shim",
        [
          Alcotest.test_case "multi-domain records" `Quick
            (clean test_metrics_multidomain);
          Alcotest.test_case "forwards to trace" `Quick
            (clean test_metrics_forwards_to_trace);
        ] );
      ( "determinism",
        [
          Alcotest.test_case "hypercube seq" `Quick (clean test_determinism_seq);
          Alcotest.test_case "hypercube pool" `Quick (clean test_determinism_pool);
          Alcotest.test_case "datalog" `Quick (clean test_determinism_datalog);
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl" `Quick (clean test_export_jsonl);
          Alcotest.test_case "chrome" `Quick (clean test_export_chrome);
        ] );
      ( "metrics-live",
        [
          Alcotest.test_case "registry ~all flag" `Quick
            (clean test_registry_all_flag);
          Alcotest.test_case "gauges and callbacks" `Quick (clean test_gauges);
          Alcotest.test_case "labeled families" `Quick
            (clean test_labeled_family);
          Alcotest.test_case "snapshot diff" `Quick (clean test_snapshot_diff);
          Alcotest.test_case "window arithmetic" `Quick
            (clean test_window_arithmetic);
          Alcotest.test_case "concurrent scrape" `Quick
            (clean test_concurrent_scrape);
        ] );
      ( "sketch",
        [
          Alcotest.test_case "count-min zipf bound" `Quick
            (clean test_cm_zipf_bound);
          Alcotest.test_case "top-k and reservoir" `Quick
            (clean test_topk_and_reservoir);
          Alcotest.test_case "skew reports gated" `Quick
            (clean test_skew_reports_gated);
          Alcotest.test_case "openmetrics round-trip" `Quick
            (clean test_openmetrics_roundtrip);
        ] );
    ]
