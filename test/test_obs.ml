open Lamp_relational
open Lamp_runtime
module Trace = Lamp_obs.Trace
module Export = Lamp_obs.Export

let instance = Alcotest.testable Instance.pp Instance.equal

(* Every test starts from a quiet collector and leaves it disabled, so
   test order never matters. *)
let clean f () =
  Trace.set_enabled false;
  Trace.reset ();
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) f

let span_names () =
  List.filter_map
    (function Trace.Span { name; _ } -> Some name | _ -> None)
    (Trace.events ())

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let test_span_disabled_is_silent () =
  let r = Trace.span "quiet" (fun () -> 41 + 1) in
  Alcotest.(check int) "result through" 42 r;
  Alcotest.(check (list string)) "no events" [] (span_names ())

let test_span_nesting () =
  Trace.set_enabled true;
  let r =
    Trace.span "outer" (fun () ->
        Trace.span "inner" (fun () -> Unix.sleepf 0.002) |> ignore;
        Trace.span "inner" (fun () -> ()) |> ignore;
        7)
  in
  Alcotest.(check int) "result through" 7 r;
  (* Completion order: both inners close before the outer. *)
  Alcotest.(check (list string))
    "nesting recorded" [ "inner"; "inner"; "outer" ] (span_names ());
  let find name =
    List.find_map
      (function
        | Trace.Span { name = n; t; dur; _ } when n = name -> Some (t, dur)
        | _ -> None)
      (Trace.events ())
  in
  match (find "outer", find "inner") with
  | Some (t_out, d_out), Some (t_in, d_in) ->
    Alcotest.(check bool) "outer starts first" true (t_out <= t_in);
    Alcotest.(check bool) "outer covers inner" true (d_out >= d_in);
    Alcotest.(check bool) "inner slept" true (d_in >= 0.002)
  | _ -> Alcotest.fail "spans missing"

let test_span_records_on_raise () =
  Trace.set_enabled true;
  Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
      Trace.span "doomed" (fun () -> failwith "boom"));
  Alcotest.(check (list string)) "span still recorded" [ "doomed" ] (span_names ())

(* ------------------------------------------------------------------ *)
(* Counters and histograms under the pool backend                      *)

let test_counter_disabled_is_noop () =
  let c = Trace.counter "test.off" in
  Trace.incr c;
  Trace.add c 10;
  Alcotest.(check int) "stays zero while disabled" 0 (Trace.value c)

let test_counter_pool_aggregation () =
  Trace.set_enabled true;
  let c = Trace.counter "test.pool" in
  let h = Trace.histogram "test.pool_hist" in
  let pool = Pool.create ~domains:4 () in
  let ex = Executor.pool pool in
  Executor.parallel_for ex ~n:64 (fun ~worker:_ k ->
      for _ = 1 to 1000 do
        Trace.incr c
      done;
      Trace.observe h k);
  Pool.shutdown pool;
  Alcotest.(check int) "no increment lost across domains" 64_000 (Trace.value c);
  let s = Trace.histogram_snapshot h in
  Alcotest.(check int) "observations" 64 s.Trace.count;
  Alcotest.(check int) "sum 0..63" (63 * 64 / 2) s.Trace.sum;
  Alcotest.(check int) "max" 63 s.Trace.max_value

let test_histogram_buckets () =
  Trace.set_enabled true;
  let h = Trace.histogram "test.buckets" in
  List.iter (Trace.observe h) [ 0; 1; 2; 3; 8 ];
  let s = Trace.histogram_snapshot h in
  Alcotest.(check int) "count" 5 s.Trace.count;
  Alcotest.(check int) "sum" 14 s.Trace.sum;
  Alcotest.(check int) "max" 8 s.Trace.max_value;
  (* Power-of-two buckets, inclusive upper bounds: 0 -> [0], 1 -> [1],
     {2,3} -> [3], 8 -> [15]. *)
  Alcotest.(check (list (pair int int)))
    "buckets" [ (0, 1); (1, 1); (3, 2); (15, 1) ] s.Trace.buckets

let test_percentiles () =
  Trace.set_enabled true;
  let snap values =
    let h = Trace.histogram "test.percentiles" in
    List.iter (Trace.observe h) values;
    Trace.histogram_snapshot h
  in
  (* Empty histogram: every quantile is 0. *)
  let empty = snap [] in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Trace.percentile empty 0.5);
  (* A single value: all quantiles land on (an estimate of) it; q = 1
     is exact by the max_value clamp. *)
  Trace.reset ();
  let one = snap [ 100 ] in
  Alcotest.(check (float 0.0)) "single value, q=1" 100.0
    (Trace.percentile one 1.0);
  let p50 = Trace.percentile one 0.5 in
  Alcotest.(check bool) "single value, q=0.5 within bucket" true
    (p50 >= 64.0 && p50 <= 100.0);
  (* Monotonicity across quantiles, upper clamp at max_value. *)
  Trace.reset ();
  let s = snap (List.init 1000 (fun i -> i)) in
  let p50 = Trace.percentile s 0.50 in
  let p95 = Trace.percentile s 0.95 in
  let p99 = Trace.percentile s 0.99 in
  Alcotest.(check bool) "p50 <= p95 <= p99" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check bool) "p99 <= max" true
    (p99 <= float_of_int s.Trace.max_value);
  Alcotest.(check (float 0.0)) "q=1 is the max" 999.0 (Trace.percentile s 1.0);
  (* Power-of-two resolution: the estimate stays within a factor of 2
     of the true quantile (true p50 of 0..999 is ~500). *)
  Alcotest.(check bool) "p50 within a bucket of truth" true
    (p50 >= 250.0 && p50 <= 1000.0);
  (* Out-of-range quantiles clamp instead of raising. *)
  Alcotest.(check (float 0.0)) "q>1 clamps" 999.0 (Trace.percentile s 1.5)

let test_reset_clears () =
  Trace.set_enabled true;
  let c = Trace.counter "test.reset" in
  Trace.incr c;
  Trace.instant "blip";
  Trace.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Trace.value c);
  Alcotest.(check int) "events cleared" 0 (List.length (Trace.events ()));
  (* The handle stays live after a reset. *)
  Trace.incr c;
  Alcotest.(check int) "handle survives reset" 1 (Trace.value c)

(* ------------------------------------------------------------------ *)
(* Metrics shim                                                        *)

let test_metrics_multidomain () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    (fun () ->
      let pool = Pool.create ~domains:4 () in
      let ex = Executor.pool pool in
      Executor.parallel_for ex ~n:32 (fun ~worker:_ k ->
          Metrics.record
            {
              Metrics.label = Printf.sprintf "t%d" k;
              wall_s = 0.001;
              tasks = 1;
              steals = 0;
            });
      Pool.shutdown pool;
      let s = Metrics.summary () in
      Alcotest.(check int) "records from worker domains kept" 32 s.Metrics.rounds;
      Alcotest.(check int) "tasks summed" 32 s.Metrics.total_tasks)

let test_metrics_forwards_to_trace () =
  Trace.set_enabled true;
  Alcotest.(check bool)
    "tracing alone turns metering on" true (Metrics.is_enabled ());
  Metrics.record
    { Metrics.label = "fwd"; wall_s = 0.001; tasks = 3; steals = 1 };
  Alcotest.(check (list string)) "forwarded as a span" [ "fwd" ] (span_names ());
  Alcotest.(check int)
    "summary store untouched (own flag off)" 0 (Metrics.summary ()).Metrics.rounds

(* ------------------------------------------------------------------ *)
(* Determinism: tracing may never change results or statistics         *)

let tri_workload () =
  let rng = Random.State.make [| 42 |] in
  Lamp_mpc.Workload.triangle_skew_free ~rng ~m:300 ~domain:200

let run_hc executor =
  let r, s, _ =
    Lamp_mpc.Hypercube.run ~executor ~p:8 Lamp_cq.Examples.q2_triangle
      (tri_workload ())
  in
  (r, s)

let check_trace_invariance run =
  let r_off, s_off = run () in
  Trace.set_enabled true;
  let r_on, s_on = run () in
  Trace.set_enabled false;
  Alcotest.check instance "results identical with tracing on" r_off r_on;
  Alcotest.(check bool) "stats bit-identical with tracing on" true (s_off = s_on);
  Alcotest.(check bool) "trace captured events" true (Trace.events () <> [])

let test_determinism_seq () =
  check_trace_invariance (fun () -> run_hc Executor.sequential)

let test_determinism_pool () =
  check_trace_invariance (fun () ->
      let pool = Pool.create ~domains:4 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> run_hc (Executor.pool pool)))

let test_determinism_datalog () =
  let rng = Random.State.make [| 7 |] in
  let graph = Generate.random_graph ~rng ~nodes:60 ~edges:150 () in
  let tc = Lamp_datalog.Canned.transitive_closure in
  let run () = Lamp_datalog.Eval.run tc graph in
  let off = run () in
  Trace.set_enabled true;
  let on = run () in
  Trace.set_enabled false;
  Alcotest.check instance "datalog result identical with tracing on" off on;
  Alcotest.(check bool)
    "stratum spans and iteration events present" true
    (List.mem "datalog.stratum" (span_names ())
    && List.exists
         (function
           | Trace.Instant { name = "datalog.iteration"; _ } -> true
           | _ -> false)
         (Trace.events ()))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_export_jsonl () =
  Trace.set_enabled true;
  ignore (run_hc Executor.sequential);
  Trace.set_enabled false;
  let path = Filename.temp_file "lamp_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.write_jsonl path;
      let lines =
        String.split_on_char '\n' (read_file path)
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check bool) "non-empty" true (lines <> []);
      List.iter
        (fun l ->
          Alcotest.(check bool) "line is a JSON object" true
            (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}');
          Alcotest.(check bool) "has type field" true (contains l "\"type\"");
          Alcotest.(check bool) "has name field" true (contains l "\"name\""))
        lines;
      Alcotest.(check bool) "mpc events present" true
        (List.exists (fun l -> contains l "mpc.server") lines);
      Alcotest.(check bool) "counter lines present" true
        (List.exists (fun l -> contains l "\"type\":\"counter\"") lines))

let test_export_chrome () =
  Trace.set_enabled true;
  ignore (run_hc Executor.sequential);
  Trace.set_enabled false;
  let path = Filename.temp_file "lamp_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.write_chrome path;
      let s = read_file path in
      Alcotest.(check bool) "trace_event envelope" true
        (String.starts_with ~prefix:"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[" s);
      Alcotest.(check bool) "complete spans" true (contains s "\"ph\":\"X\"");
      Alcotest.(check bool) "instants" true (contains s "\"ph\":\"i\"");
      Alcotest.(check bool) "counter tracks" true (contains s "\"ph\":\"C\"");
      Alcotest.(check bool) "closed envelope" true
        (String.length s >= 3 && String.sub s (String.length s - 3) 3 = "]}\n"))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "disabled is silent" `Quick
            (clean test_span_disabled_is_silent);
          Alcotest.test_case "nesting and overlap" `Quick (clean test_span_nesting);
          Alcotest.test_case "records on raise" `Quick
            (clean test_span_records_on_raise);
        ] );
      ( "counters",
        [
          Alcotest.test_case "disabled is no-op" `Quick
            (clean test_counter_disabled_is_noop);
          Alcotest.test_case "pool aggregation" `Quick
            (clean test_counter_pool_aggregation);
          Alcotest.test_case "histogram buckets" `Quick
            (clean test_histogram_buckets);
          Alcotest.test_case "percentiles" `Quick (clean test_percentiles);
          Alcotest.test_case "reset" `Quick (clean test_reset_clears);
        ] );
      ( "metrics-shim",
        [
          Alcotest.test_case "multi-domain records" `Quick
            (clean test_metrics_multidomain);
          Alcotest.test_case "forwards to trace" `Quick
            (clean test_metrics_forwards_to_trace);
        ] );
      ( "determinism",
        [
          Alcotest.test_case "hypercube seq" `Quick (clean test_determinism_seq);
          Alcotest.test_case "hypercube pool" `Quick (clean test_determinism_pool);
          Alcotest.test_case "datalog" `Quick (clean test_determinism_datalog);
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl" `Quick (clean test_export_jsonl);
          Alcotest.test_case "chrome" `Quick (clean test_export_chrome);
        ] );
    ]
