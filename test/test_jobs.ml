(* Job-level robustness: durable checkpoints, kill/resume, speculative
   straggler re-execution and survivor rebalancing.

   The headline property: every multi-round algorithm, killed after any
   round r and resumed from the durable checkpoint, produces output and
   statistics bit-identical to an uninterrupted run — on the sequential
   and pool backends alike, under fault plans or not. *)

open Lamp_relational
open Lamp_cq
open Lamp_mpc
module Codec = Lamp_jobs.Codec
module Store = Lamp_jobs.Store
module Supervisor = Lamp_jobs.Supervisor
module Plan = Lamp_faults.Plan
module Disk = Lamp_faults.Disk
module Io = Lamp_jobs.Io
module Executor = Lamp_runtime.Executor
module Pool = Lamp_runtime.Pool
module Trace = Lamp_obs.Trace

let instance = Alcotest.testable Instance.pp Instance.equal

(* ------------------------------------------------------------------ *)
(* Codec round-trips                                                   *)

let test_codec_roundtrip () =
  let w = Codec.writer () in
  Codec.w_int w 0;
  Codec.w_int w (-42);
  Codec.w_int w max_int;
  Codec.w_bool w true;
  Codec.w_bool w false;
  Codec.w_float w 3.14159;
  Codec.w_float w (-0.0);
  Codec.w_float w infinity;
  Codec.w_string w "";
  Codec.w_string w "hello\000binary\255";
  Codec.w_option w Codec.w_int None;
  Codec.w_option w Codec.w_int (Some 7);
  Codec.w_list w Codec.w_string [ "a"; "b"; "c" ];
  Codec.w_array w Codec.w_int [| 1; 2; 3 |];
  Codec.w_value w (Value.int 99);
  Codec.w_value w (Value.str "xyz");
  Codec.w_fact w (Fact.of_list "R" [ Value.int 1; Value.str "two" ]);
  let r = Codec.reader (Codec.contents w) in
  Alcotest.(check int) "int 0" 0 (Codec.r_int r);
  Alcotest.(check int) "negative int" (-42) (Codec.r_int r);
  Alcotest.(check int) "max_int" max_int (Codec.r_int r);
  Alcotest.(check bool) "true" true (Codec.r_bool r);
  Alcotest.(check bool) "false" false (Codec.r_bool r);
  Alcotest.(check (float 0.0)) "float" 3.14159 (Codec.r_float r);
  Alcotest.(check bool) "-0.0 sign preserved" true
    (1.0 /. Codec.r_float r = neg_infinity);
  Alcotest.(check (float 0.0)) "infinity" infinity (Codec.r_float r);
  Alcotest.(check string) "empty string" "" (Codec.r_string r);
  Alcotest.(check string) "binary string" "hello\000binary\255"
    (Codec.r_string r);
  Alcotest.(check bool) "None" true (Codec.r_option r Codec.r_int = None);
  Alcotest.(check bool) "Some" true (Codec.r_option r Codec.r_int = Some 7);
  Alcotest.(check (list string)) "list" [ "a"; "b"; "c" ]
    (Codec.r_list r Codec.r_string);
  Alcotest.(check (array int)) "array" [| 1; 2; 3 |]
    (Codec.r_array r Codec.r_int);
  Alcotest.(check bool) "int value" true
    (Value.equal (Value.int 99) (Codec.r_value r));
  Alcotest.(check bool) "str value" true
    (Value.equal (Value.str "xyz") (Codec.r_value r));
  Alcotest.(check bool) "fact" true
    (Fact.equal
       (Fact.of_list "R" [ Value.int 1; Value.str "two" ])
       (Codec.r_fact r));
  Codec.r_end r

let test_codec_instance_canonical () =
  let i1 = Instance.of_string "R(1,2). S(2,3). R(4,5)." in
  let i2 = Instance.of_string "S(2,3). R(4,5). R(1,2)." in
  let enc i =
    let w = Codec.writer () in
    Codec.w_instance w i;
    Codec.contents w
  in
  Alcotest.(check string) "equal instances encode identically" (enc i1)
    (enc i2);
  let r = Codec.reader (enc i1) in
  Alcotest.check instance "instance round-trips" i1 (Codec.r_instance r);
  Codec.r_end r

let test_codec_corrupt () =
  let w = Codec.writer () in
  Codec.w_string w "payload";
  let raw = Codec.contents w in
  let truncated = String.sub raw 0 (String.length raw - 2) in
  (try
     ignore (Codec.r_string (Codec.reader truncated));
     Alcotest.fail "truncated input must raise"
   with Codec.Corrupt _ -> ());
  let r = Codec.reader (raw ^ "x") in
  ignore (Codec.r_string r);
  (try
     Codec.r_end r;
     Alcotest.fail "trailing bytes must raise"
   with Codec.Corrupt _ -> ());
  let r = Codec.reader "\000\000\000\000\000\000\000\005bo" in
  try
    ignore (Codec.r_string r);
    Alcotest.fail "overrunning length prefix must raise"
  with Codec.Corrupt _ -> ()

(* ------------------------------------------------------------------ *)
(* Codec hardening: the wire protocol feeds it untrusted bytes, so
   malformed input of any shape must surface as [Corrupt] — never an
   [Invalid_argument] from a missed bound check, never an allocation
   sized by an attacker-controlled length prefix. *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map Value.int (int_range (-1000) 1000);
        map Value.str (string_size ~gen:printable (int_range 0 8));
      ])

let fact_gen =
  QCheck.Gen.(
    oneofl [ "R"; "S"; "T" ] >>= fun rel ->
    list_size (int_range 0 3) value_gen >>= fun args ->
    return (Fact.of_list rel args))

let instance_gen =
  QCheck.Gen.(map Instance.of_facts (list_size (int_range 0 12) fact_gen))

let instance_arb = QCheck.make ~print:(Fmt.to_to_string Instance.pp) instance_gen

let encode_instance i =
  let w = Codec.writer () in
  Codec.w_instance w i;
  Codec.contents w

let decode_instance s =
  let r = Codec.reader s in
  let i = Codec.r_instance r in
  Codec.r_end r;
  i

let qcheck_roundtrip =
  QCheck.Test.make ~name:"random instances round-trip canonically" ~count:200
    instance_arb (fun i ->
      let enc = encode_instance i in
      let dec = decode_instance enc in
      Instance.equal i dec && String.equal enc (encode_instance dec))

let qcheck_truncation =
  (* Every strict prefix of a valid encoding is truncated somewhere, so
     decoding must raise [Corrupt] — a prefix can never silently decode
     (the byte budget of the announced lengths does not fit). *)
  QCheck.Test.make ~name:"every strict prefix raises Corrupt" ~count:50
    instance_arb (fun i ->
      let enc = encode_instance i in
      let ok = ref true in
      for len = 0 to String.length enc - 1 do
        match decode_instance (String.sub enc 0 len) with
        | _ -> ok := false
        | exception Codec.Corrupt _ -> ()
        | exception _ -> ok := false
      done;
      !ok)

let qcheck_byte_flip =
  (* Flipping one byte may still decode (a constant changed) but must
     never escape as anything but [Corrupt]. *)
  QCheck.Test.make ~name:"byte flips: clean decode or Corrupt" ~count:300
    (QCheck.pair instance_arb (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun (i, (pos, bits)) ->
      let enc = encode_instance i in
      QCheck.assume (String.length enc > 0);
      let pos = pos mod String.length enc in
      let flip = 1 + (bits mod 255) in
      let b = Bytes.of_string enc in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor flip));
      match decode_instance (Bytes.unsafe_to_string b) with
      | _ -> true
      | exception Codec.Corrupt _ -> true
      | exception _ -> false)

let test_codec_hostile_lengths () =
  let enc_int n =
    let w = Codec.writer () in
    Codec.w_int w n;
    Codec.contents w
  in
  let expect_corrupt name s read =
    match read (Codec.reader s) with
    | _ -> Alcotest.failf "%s must raise Corrupt" name
    | exception Codec.Corrupt _ -> ()
    | exception e ->
      Alcotest.failf "%s escaped as %s, not Corrupt" name (Printexc.to_string e)
  in
  (* A length prefix near max_int used to overflow [pos + n] past the
     bound check; a merely huge one used to size an allocation. Both
     must die in the length guard, byte-for-byte untouched. *)
  expect_corrupt "max_int list length" (enc_int max_int) (fun r ->
      Codec.r_list r Codec.r_int);
  expect_corrupt "huge array length"
    (enc_int 1_000_000_000)
    (fun r -> Codec.r_array r Codec.r_fact);
  expect_corrupt "negative list length" (enc_int (-1)) (fun r ->
      Codec.r_list r Codec.r_int);
  expect_corrupt "max_int string length" (enc_int max_int) Codec.r_string;
  expect_corrupt "negative string length" (enc_int min_int) Codec.r_string;
  (* The new char primitive behaves like the other fixed-size reads. *)
  let w = Codec.writer () in
  Codec.w_char w 'z';
  let r = Codec.reader (Codec.contents w) in
  Alcotest.(check char) "char round-trips" 'z' (Codec.r_char r);
  Codec.r_end r;
  expect_corrupt "char past the end" "" Codec.r_char

(* ------------------------------------------------------------------ *)
(* Store: memory and disk backends                                     *)

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "lamp_jobs_test_%d_%d" (Unix.getpid ()) !counter)
    in
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    dir

let test_store_memory () =
  let s = Store.in_memory () in
  Alcotest.(check bool) "empty store loads nothing" true
    (Store.load s ~job:"j" = None);
  Store.save s ~job:"j" ~round:1 "one";
  Store.save s ~job:"other" ~round:5 "five";
  Alcotest.(check bool) "latest slot" true
    (Store.load s ~job:"j" = Some (1, "one"));
  Store.save s ~job:"j" ~round:2 "two";
  Alcotest.(check bool) "save supersedes" true
    (Store.load s ~job:"j" = Some (2, "two"));
  Alcotest.(check bool) "jobs are independent" true
    (Store.load s ~job:"other" = Some (5, "five"));
  Store.clear s ~job:"j";
  Alcotest.(check bool) "clear drops the slot" true
    (Store.load s ~job:"j" = None)

let test_store_disk () =
  let dir = temp_dir () in
  let s = Store.on_disk dir in
  Store.save s ~job:"alg/1" ~round:3 "payload\000with\255bytes";
  Alcotest.(check bool) "disk round-trip" true
    (Store.load s ~job:"alg/1" = Some (3, "payload\000with\255bytes"));
  (* A fresh handle on the same directory sees the slot: durability. *)
  let s2 = Store.on_disk dir in
  Alcotest.(check bool) "fresh handle reads the slot" true
    (Store.load s2 ~job:"alg/1" = Some (3, "payload\000with\255bytes"));
  Store.save s ~job:"alg/1" ~round:4 "next";
  (* Atomic writes leave only the slot and its retained previous
     generation behind — never temp files. *)
  let leftovers =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           not
             (Filename.check_suffix f ".ckpt"
             || Filename.check_suffix f ".ckpt.prev"))
  in
  Alcotest.(check (list string)) "no temp files left" [] leftovers;
  Store.clear s ~job:"alg/1";
  Alcotest.(check bool) "clear removes the file" true
    (Store.load s2 ~job:"alg/1" = None)

let test_store_disk_rejects_mismatch () =
  let dir = temp_dir () in
  let s = Store.on_disk dir in
  Store.save s ~job:"a" ~round:1 "data";
  let file j = Filename.concat dir (j ^ ".ckpt") in
  (* A slot copied under another job's name is rejected. *)
  let contents =
    let ic = open_in_bin (file "a") in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin (file "b") in
  output_string oc contents;
  close_out oc;
  (try
     ignore (Store.verify s ~job:"b");
     Alcotest.fail "job-name mismatch must raise"
   with Store.Corrupt _ -> ());
  Alcotest.(check bool) "mismatched slot is never loaded" true
    (Store.load s ~job:"b" = None);
  (* A corrupted magic header is rejected. *)
  let oc = open_out_bin (file "a") in
  output_string oc ("XAMPCKPT" ^ String.sub contents 8 (String.length contents - 8));
  close_out oc;
  (try
     ignore (Store.verify s ~job:"a");
     Alcotest.fail "bad magic must raise"
   with Store.Corrupt _ | Store.Torn _ -> ());
  Alcotest.(check bool) "corrupt slot with no fallback loads nothing" true
    (Store.load s ~job:"a" = None);
  Alcotest.(check int) "both unrecoverable loads are counted" 2 (Store.lost s)

(* In-place file surgery for corruption tests. *)
let rewrite_file path f =
  let ic = open_in_bin path in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let b = Bytes.of_string raw in
  f b;
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let flip_byte path off =
  rewrite_file path (fun b ->
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40)))

let test_store_generations () =
  let dir = temp_dir () in
  let s = Store.on_disk dir in
  Store.save s ~job:"j" ~round:1 "one";
  Store.save s ~job:"j" ~round:2 "two";
  Store.save s ~job:"j" ~round:3 "three";
  let slot = Filename.concat dir "j.ckpt" in
  let prev = Filename.concat dir "j.ckpt.prev" in
  Alcotest.(check bool) "previous generation retained" true
    (Sys.file_exists prev);
  (* Bit-rot the current slot: a fresh handle must refuse it and fall
     back to the previous generation. *)
  flip_byte slot ((Unix.stat slot).Unix.st_size / 2);
  let s2 = Store.on_disk dir in
  Alcotest.(check bool) "load falls back one generation" true
    (Store.load s2 ~job:"j" = Some (2, "two"));
  Alcotest.(check int) "fallback counted" 1 (Store.fallbacks s2);
  (* The fallback promoted the good generation back to the slot name:
     a third handle reads it directly, no fallback needed. *)
  let s3 = Store.on_disk dir in
  Alcotest.(check bool) "promoted slot verifies in place" true
    (match Store.verify s3 ~job:"j" with Some (_, 2) -> true | _ -> false);
  Alcotest.(check bool) "promoted slot loads directly" true
    (Store.load s3 ~job:"j" = Some (2, "two") && Store.fallbacks s3 = 0);
  (* Saving again on the fallen-back state keeps generations monotone:
     damage both generations and the job reports unstarted instead of
     ever returning unverified bytes. *)
  Store.save s3 ~job:"j" ~round:3 "three'";
  flip_byte slot 40;
  flip_byte prev 40;
  let s4 = Store.on_disk dir in
  Alcotest.(check bool) "no verifiable generation loads nothing" true
    (Store.load s4 ~job:"j" = None);
  Alcotest.(check int) "lost counted" 1 (Store.lost s4)

let test_store_sweeps_litter () =
  let dir = temp_dir () in
  let plant n =
    let oc = open_out_bin (Filename.concat dir n) in
    output_string oc "stale";
    close_out oc
  in
  plant "j.ckpt.tmp";
  plant "j.ckpt.tmp.3";
  plant "other.ckpt.tmp.17";
  let s = Store.on_disk dir in
  Alcotest.(check int) "all litter swept on open" 3 (Store.swept s);
  Alcotest.(check (list string)) "directory is clean" []
    (Sys.readdir dir |> Array.to_list)

let test_store_enospc_retry () =
  let dir = temp_dir () in
  let plan = Disk.make ~seed:6 { Disk.zero with enospc = 1.0 } in
  let s = Store.on_disk ~faults:plan dir in
  (* Every save's first attempt dies with ENOSPC; the store's internal
     retry absorbs it and the slot still lands intact. *)
  Store.save s ~job:"j" ~round:1 "one";
  Store.save s ~job:"j" ~round:2 "two";
  Alcotest.(check bool) "saves land despite ENOSPC" true
    (Store.load s ~job:"j" = Some (2, "two"));
  Alcotest.(check bool) "ENOSPC injections recorded" true
    (match List.assoc_opt "enospc" (Store.injected s) with
    | Some n -> n >= 2
    | None -> false)

let crash_points =
  [
    ("torn:0.25", Disk.Torn_write 0.25);
    ("torn:0.75", Disk.Torn_write 0.75);
    ("pre-rename", Disk.Before_rename);
    ("post-rename", Disk.After_rename);
  ]

let test_store_crash_leaves_good_generation () =
  List.iter
    (fun (pname, point) ->
      let dir = temp_dir () in
      let plan = Disk.make ~seed:8 { Disk.zero with crash = Some (2, point) } in
      let s = Store.on_disk ~faults:plan dir in
      Store.save s ~job:"j" ~round:1 "one";
      (match Store.save s ~job:"j" ~round:2 "two" with
      | () -> Alcotest.fail (pname ^ ": crash must fire during the save")
      | exception Io.Crashed { round; _ } ->
        Alcotest.(check int) (pname ^ ": crashed in the round-2 save") 2 round);
      (* Reboot: a clean store on the same directory must recover the
         round-1 checkpoint — never a torn slot. *)
      let s2 = Store.on_disk dir in
      Alcotest.(check bool)
        (pname ^ ": recovery reads the last durable generation")
        true
        (Store.load s2 ~job:"j" = Some (1, "one")))
    crash_points

let test_fsck () =
  let dir = temp_dir () in
  let s = Store.on_disk dir in
  let payload j r = Fmt.str "%s-round-%d-%s" j r (String.make 64 'x') in
  List.iter
    (fun j ->
      Store.save s ~job:j ~round:1 (payload j 1);
      Store.save s ~job:j ~round:2 (payload j 2))
    [ "a"; "b"; "c" ];
  let ok (r : Store.report) =
    match r.verdict with `Ok _ -> true | _ -> false
  in
  let clean = Store.fsck dir in
  Alcotest.(check bool) "clean directory: all ok, zero false positives" true
    (clean <> [] && List.for_all ok clean && Store.healthy clean);
  (* Hand corruption: flipped byte mid-payload, truncated header,
     zeroed generation field, stale tmp litter. *)
  let file j = Filename.concat dir (j ^ ".ckpt") in
  flip_byte (file "a") ((Unix.stat (file "a")).Unix.st_size / 2);
  Unix.truncate (file "b") 10;
  rewrite_file (file "c") (fun bytes -> Bytes.fill bytes 24 8 '\000');
  let oc = open_out_bin (Filename.concat dir "a.ckpt.tmp.3") in
  output_string oc "stale";
  close_out oc;
  let reports = Store.fsck dir in
  let verdict f =
    match List.find_opt (fun (r : Store.report) -> r.file = f) reports with
    | Some r -> r.verdict
    | None -> Alcotest.fail (f ^ " missing from the fsck report")
  in
  Alcotest.(check bool) "flipped byte detected" true
    (match verdict "a.ckpt" with `Ok _ -> false | _ -> true);
  Alcotest.(check bool) "truncated header reported torn" true
    (match verdict "b.ckpt" with `Torn n -> n = 10 | _ -> false);
  Alcotest.(check bool) "zeroed generation reported corrupt" true
    (match verdict "c.ckpt" with `Corrupt _ -> true | _ -> false);
  Alcotest.(check bool) "planted litter reported stale" true
    (verdict "a.ckpt.tmp.3" = `Stale);
  Alcotest.(check bool) "undamaged previous generations stay ok" true
    (List.for_all
       (fun (r : Store.report) ->
         match r.kind with `Previous -> ok r | `Slot | `Tmp -> true)
       reports);
  Alcotest.(check bool) "damage means unhealthy" false (Store.healthy reports);
  (* Repair: sweep the litter, promote the good previous generations
     over the damaged slots, leave the directory verifying clean. *)
  let repaired = Store.fsck ~repair:true dir in
  Alcotest.(check bool) "repair leaves a healthy directory" true
    (Store.healthy repaired);
  Alcotest.(check bool) "post-repair scan is all ok" true
    (List.for_all ok (Store.fsck dir));
  let s2 = Store.on_disk dir in
  Alcotest.(check bool) "repaired slots load a good generation" true
    (List.for_all
       (fun j ->
         match Store.load s2 ~job:j with
         | Some (r, p) -> (r = 1 || r = 2) && p = payload j r
         | None -> false)
       [ "a"; "b"; "c" ])

(* ------------------------------------------------------------------ *)
(* Cluster snapshot/restore                                            *)

let tri_instance =
  Instance.of_string
    "R(1,2). R(2,3). R(4,5). R(7,2). R(8,2). S(2,3). S(3,4). S(5,6). \
     S(2,9). T(3,1). T(4,2). T(6,4). T(9,7). T(9,8)."

let test_cluster_snapshot_roundtrip () =
  let c = Cluster.create ~p:4 tri_instance in
  let snap0 = Cluster.snapshot c in
  let c' = Cluster.restore snap0 in
  Alcotest.(check int) "p restored" 4 (Cluster.p c');
  Alcotest.check instance "locals restored" (Cluster.union_all c)
    (Cluster.union_all c');
  Alcotest.(check bool) "equal states snapshot identically" true
    (Cluster.snapshot c = Cluster.snapshot c');
  (* Run a round on the original and on the restored copy: both end in
     the same state with the same stats. *)
  let round =
    {
      Cluster.communicate =
        Cluster.route_by (fun f ->
            [ Hashtbl.hash (Fact.rel f, (Fact.args f).(0)) mod 4 ]);
      compute = Cluster.keep_received;
    }
  in
  Cluster.run_round c round;
  Cluster.run_round c' round;
  Alcotest.check instance "same output after a round" (Cluster.union_all c)
    (Cluster.union_all c');
  Alcotest.(check bool) "same stats after a round" true
    (Cluster.stats c = Cluster.stats c');
  Alcotest.(check bool) "post-round snapshots identical" true
    (Cluster.snapshot c = Cluster.snapshot c')

let test_cluster_restore_corrupt () =
  let c = Cluster.create ~p:2 tri_instance in
  let snap = Cluster.snapshot c in
  try
    ignore (Cluster.restore (String.sub snap 0 (String.length snap / 2)));
    Alcotest.fail "truncated snapshot must raise"
  with Codec.Corrupt _ -> ()

(* ------------------------------------------------------------------ *)
(* Kill-after-every-round / resume: the bit-identity matrix            *)

let path_query = Parser.query "H(x,w) <- R(x,y), S(y,z), T(z,w)"
let triangle_query = Parser.query "H(x,y,z) <- R(x,y), S(y,z), T(z,x)"

(* Each algorithm as [run ?job ~executor ~faults ()], normalized to the
   result instance and its full statistics (compared structurally:
   stitched checkpoint stats must be bit-identical to an uninterrupted
   run's). *)
type algo =
  ?job:Supervisor.t ->
  executor:Executor.t ->
  faults:Plan.t ->
  unit ->
  Instance.t * Stats.t

let algorithms : (string * algo) list =
  [
    ( "cascade_triangle",
      fun ?job ~executor ~faults () ->
        let r, s =
          Multi_round.cascade_triangle ~seed:1 ~executor ~faults ?job ~p:4
            tri_instance
        in
        (r, s) );
    ( "skew_resilient_triangle",
      fun ?job ~executor ~faults () ->
        let r, s, _ =
          Multi_round.skew_resilient_triangle ~seed:1 ~executor ~faults ?job
            ~p:4 tri_instance
        in
        (r, s) );
    ( "gym",
      fun ?job ~executor ~faults () ->
        Yannakakis.gym ~seed:1 ~executor ~faults ?job ~p:4 path_query
          tri_instance );
    ( "gym_ghd",
      fun ?job ~executor ~faults () ->
        let r, s, _ =
          Gym_ghd.run ~seed:1 ~executor ~faults ?job ~p:4 triangle_query
            tri_instance
        in
        (r, s) );
    ( "hypercube",
      fun ?job ~executor ~faults () ->
        let r, s, _ =
          Hypercube.run ~seed:1 ~executor ~faults ?job ~p:4 triangle_query
            tri_instance
        in
        (r, s) );
    ( "kst",
      (* threshold 1 forces the heavy decomposition even on this small
         instance, so the resumed run replays the staged round too. *)
      fun ?job ~executor ~faults () ->
        let r, s, _ =
          Kst.run ~seed:1 ~threshold:1 ~executor ~faults ?job ~p:4
            triangle_query tri_instance
        in
        (r, s) );
  ]

(* Kill the job after round [r], resume it, and return the final
   result; [None] when the job finished before round [r] was reached
   (the kill never fired). *)
let kill_and_resume ~store ~executor ~faults ~(run : algo) r =
  let job = Supervisor.create ~kill_after_round:r ~store "t" in
  match run ~job ~executor ~faults () with
  | result -> `Finished result
  | exception Supervisor.Killed { round; _ } ->
    Alcotest.(check int) "killed at the requested round" r round;
    let job = Supervisor.create ~resume:true ~store "t" in
    let result = run ~job ~executor ~faults () in
    Alcotest.(check bool) "resumed from the kill round" true
      (job.Supervisor.resumed_from = Some r);
    `Resumed result

let kill_matrix ~executor ~faults name (run : algo) =
  let baseline = run ~executor ~faults () in
  let resumed = ref 0 in
  let r = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    if !r > 50 then Alcotest.fail (name ^ ": kill matrix did not terminate");
    let store = Store.in_memory () in
    (match kill_and_resume ~store ~executor ~faults ~run !r with
    | (`Finished (out, stats) | `Resumed (out, stats)) as tagged ->
      Alcotest.check instance
        (Fmt.str "%s kill=%d output bit-identical" name !r)
        (fst baseline) out;
      Alcotest.(check bool)
        (Fmt.str "%s kill=%d stats bit-identical" name !r)
        true
        (snd baseline = stats);
      (match tagged with
      | `Resumed _ -> incr resumed
      | `Finished _ -> continue_ := false));
    incr r
  done;
  Alcotest.(check bool)
    (Fmt.str "%s: at least one kill round actually fired" name)
    true (!resumed > 0)

let test_kill_resume_seq () =
  List.iter
    (fun (name, run) ->
      kill_matrix ~executor:Executor.sequential ~faults:Plan.none name run)
    algorithms

let test_kill_resume_pool () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let executor = Executor.pool pool in
      List.iter
        (fun (name, run) -> kill_matrix ~executor ~faults:Plan.none name run)
        algorithms)

(* Under an active fault plan the restored run must draw the same
   faults for the remaining rounds: round numbering survives the
   checkpoint. *)
let test_kill_resume_under_faults () =
  let faults =
    Plan.make ~seed:11
      { Plan.zero with crash = 0.3; transient = 0.3; drop = 0.2 }
  in
  List.iter
    (fun (name, run) ->
      kill_matrix ~executor:Executor.sequential ~faults name run)
    algorithms

(* The crash-point matrix: a simulated power cut at every injected I/O
   point of every round's checkpoint save. After each crash a clean
   store on the same directory must resume to output and statistics
   bit-identical to an uninterrupted run. *)
let crash_matrix ~executor name (run : algo) =
  let baseline = run ~executor ~faults:Plan.none () in
  List.iter
    (fun (pname, point) ->
      let r = ref 1 in
      let continue_ = ref true in
      let crashed = ref 0 in
      while !continue_ do
        if !r > 50 then
          Alcotest.fail (name ^ ": crash matrix did not terminate");
        let dir = temp_dir () in
        let plan =
          Disk.make ~seed:5 { Disk.zero with crash = Some (!r, point) }
        in
        let store = Store.on_disk ~faults:plan dir in
        let job = Supervisor.create ~store "t" in
        (match run ~job ~executor ~faults:Plan.none () with
        | out, stats ->
          (* The crash round lies beyond the job's last save: the
             matrix for this point is exhausted. *)
          Alcotest.check instance
            (Fmt.str "%s/%s uncrashed run bit-identical" name pname)
            (fst baseline) out;
          Alcotest.(check bool)
            (Fmt.str "%s/%s uncrashed stats bit-identical" name pname)
            true
            (snd baseline = stats);
          continue_ := false
        | exception Io.Crashed { round; _ } ->
          incr crashed;
          Alcotest.(check int)
            (Fmt.str "%s/%s crashed in the requested save" name pname)
            !r round;
          let store = Store.on_disk dir in
          let job = Supervisor.create ~resume:true ~store "t" in
          let out, stats = run ~job ~executor ~faults:Plan.none () in
          Alcotest.check instance
            (Fmt.str "%s/%s crash=%d output bit-identical" name pname !r)
            (fst baseline) out;
          Alcotest.(check bool)
            (Fmt.str "%s/%s crash=%d stats bit-identical" name pname !r)
            true
            (snd baseline = stats));
        incr r
      done;
      Alcotest.(check bool)
        (Fmt.str "%s/%s: the crash actually fired" name pname)
        true (!crashed > 0))
    crash_points

let test_crash_matrix_seq () =
  List.iter
    (fun (name, run) -> crash_matrix ~executor:Executor.sequential name run)
    algorithms

let test_crash_matrix_pool () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let name, run = List.hd algorithms in
      crash_matrix ~executor:(Executor.pool pool) name run)

(* Satellite: a resume whose freshest checkpoint was damaged on disk
   falls back one generation — re-running one more round — instead of
   crashing or restarting, and still converges bit-identically. *)
let test_resume_falls_back_a_generation () =
  let name, run = List.hd algorithms in
  let executor = Executor.sequential in
  let baseline = run ~executor ~faults:Plan.none () in
  let dir = temp_dir () in
  let store = Store.on_disk dir in
  let job = Supervisor.create ~kill_after_round:2 ~store "t" in
  (try ignore (run ~job ~executor ~faults:Plan.none ())
   with Supervisor.Killed _ -> ());
  let slot = Filename.concat dir "t.ckpt" in
  flip_byte slot ((Unix.stat slot).Unix.st_size / 2);
  let store = Store.on_disk dir in
  let job = Supervisor.create ~resume:true ~store "t" in
  let out, stats = run ~job ~executor ~faults:Plan.none () in
  Alcotest.(check bool)
    (Fmt.str "%s: resumed from the previous generation" name)
    true
    (job.Supervisor.resumed_from = Some 1);
  Alcotest.(check int) "exactly one fallback" 1 (Store.fallbacks store);
  Alcotest.check instance "output bit-identical after fallback"
    (fst baseline) out;
  Alcotest.(check bool) "stats bit-identical after fallback" true
    (snd baseline = stats)

(* A checkpoint written on one backend resumes on the other with
   bit-identical results. *)
let test_resume_across_backends () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let name, run = List.hd algorithms in
      let baseline = run ~executor:Executor.sequential ~faults:Plan.none () in
      let store = Store.in_memory () in
      let job = Supervisor.create ~kill_after_round:1 ~store "t" in
      (try
         ignore (run ~job ~executor:Executor.sequential ~faults:Plan.none ())
       with Supervisor.Killed _ -> ());
      let job = Supervisor.create ~resume:true ~store "t" in
      let out, stats =
        run ~job ~executor:(Executor.pool pool) ~faults:Plan.none ()
      in
      Alcotest.check instance
        (name ^ ": seq checkpoint resumes on pool")
        (fst baseline) out;
      Alcotest.(check bool) "stats bit-identical across backends" true
        (snd baseline = stats))

(* The kill can also come from the fault plan (kill=N in a CLI spec). *)
let test_kill_from_plan () =
  let faults = Plan.make ~seed:0 { Plan.zero with kill_after = Some 1 } in
  let store = Store.in_memory () in
  let job = Supervisor.create ~store "t" in
  (try
     ignore
       (Multi_round.cascade_triangle ~faults ~job ~p:4 tri_instance);
     Alcotest.fail "plan kill must fire"
   with Supervisor.Killed { round; _ } ->
     Alcotest.(check int) "plan kill round honoured" 1 round);
  let job = Supervisor.create ~resume:true ~store "t" in
  let out, _ =
    Multi_round.cascade_triangle ~faults ~job ~p:4 tri_instance
  in
  let clean, _ = Multi_round.cascade_triangle ~p:4 tri_instance in
  Alcotest.check instance "resume after plan kill" clean out

let test_fingerprint_mismatch () =
  let store = Store.in_memory () in
  let faults_a = Plan.make ~seed:1 { Plan.zero with kill_after = Some 1 } in
  let job = Supervisor.create ~store "t" in
  (try
     ignore
       (Multi_round.cascade_triangle ~faults:faults_a ~job ~p:4 tri_instance)
   with Supervisor.Killed _ -> ());
  let faults_b = Plan.make ~seed:2 { Plan.zero with crash = 0.5 } in
  let job = Supervisor.create ~resume:true ~store "t" in
  try
    ignore
      (Multi_round.cascade_triangle ~faults:faults_b ~job ~p:4 tri_instance);
    Alcotest.fail "resume under a different plan must raise"
  with Invalid_argument _ -> ()

(* Resuming a finished job is a no-op returning the same results. *)
let test_resume_finished_job () =
  let store = Store.in_memory () in
  let job = Supervisor.create ~store "t" in
  let first = Multi_round.cascade_triangle ~job ~p:4 tri_instance in
  Alcotest.(check int) "one checkpoint per round" 2
    job.Supervisor.checkpoints;
  let job = Supervisor.create ~resume:true ~store "t" in
  let again = Multi_round.cascade_triangle ~job ~p:4 tri_instance in
  Alcotest.check instance "finished job resumes to the same output"
    (fst first) (fst again);
  Alcotest.(check bool) "stats identical" true (snd first = snd again)

(* Datalog: every fixpoint iteration is a checkpointable step. *)
let test_datalog_kill_resume () =
  let program =
    Lamp_datalog.Program.parse
      "T(x,y) <- E(x,y)\n\
       T(x,z) <- T(x,y), E(y,z)\n\
       NT(x,y) <- ADom(x), ADom(y), not T(x,y)"
  in
  let edges = Instance.of_string "E(1,2). E(2,3). E(3,4). E(5,1)." in
  List.iter
    (fun strategy ->
      let baseline = Lamp_datalog.Eval.run ~strategy program edges in
      let r = ref 0 in
      let continue_ = ref true in
      let resumed = ref 0 in
      while !continue_ do
        if !r > 60 then Alcotest.fail "datalog kill matrix did not terminate";
        let store = Store.in_memory () in
        let job = Supervisor.create ~kill_after_round:!r ~store "dl" in
        (match Lamp_datalog.Eval.run ~strategy ~job program edges with
        | _ -> continue_ := false
        | exception Supervisor.Killed _ ->
          incr resumed;
          let job = Supervisor.create ~resume:true ~store "dl" in
          let out = Lamp_datalog.Eval.run ~strategy ~job program edges in
          Alcotest.check instance
            (Fmt.str "datalog kill=%d model bit-identical" !r)
            baseline out);
        incr r
      done;
      Alcotest.(check bool) "datalog kills fired" true (!resumed > 0))
    [ Lamp_datalog.Eval.Naive; Lamp_datalog.Eval.Seminaive ]

(* Disk-backed end-to-end: kill, reopen the directory, resume. *)
let test_kill_resume_on_disk () =
  let dir = temp_dir () in
  let job =
    Supervisor.create ~kill_after_round:1 ~store:(Store.on_disk dir) "t"
  in
  (try ignore (Multi_round.cascade_triangle ~job ~p:4 tri_instance)
   with Supervisor.Killed _ -> ());
  (* A different store handle — as a fresh process would build. *)
  let job = Supervisor.create ~resume:true ~store:(Store.on_disk dir) "t" in
  let out, stats = Multi_round.cascade_triangle ~job ~p:4 tri_instance in
  let clean_out, clean_stats = Multi_round.cascade_triangle ~p:4 tri_instance in
  Alcotest.check instance "disk resume output" clean_out out;
  Alcotest.(check bool) "disk resume stats" true (clean_stats = stats)

(* ------------------------------------------------------------------ *)
(* Survivor rebalancing: permanent crash-stops                         *)

let test_rebalance () =
  List.iter
    (fun (name, (run : algo)) ->
      let clean_out, _ = run ~executor:Executor.sequential ~faults:Plan.none () in
      let faults = Plan.make ~seed:5 { Plan.zero with perma = Some (2, 1) } in
      let store = Store.in_memory () in
      let job = Supervisor.create ~store "t" in
      let out, stats = run ~job ~executor:Executor.sequential ~faults () in
      Alcotest.check instance
        (name ^ ": output survives a permanent crash")
        clean_out out;
      Alcotest.(check int)
        (name ^ ": cluster shrank to the survivors")
        3 stats.Stats.p;
      Alcotest.(check bool)
        (name ^ ": rebalance recorded exactly one crash")
        true
        (List.exists
           (fun (r : Stats.recovery) -> r.Stats.crashed = 1 && r.replayed > 0)
           stats.Stats.recoveries);
      Alcotest.(check bool)
        (name ^ ": supervisor reports the rebalance")
        true
        (job.Supervisor.rebalanced <> []))
    (List.filter (fun (n, _) -> n <> "hypercube") algorithms)

(* Hypercube's grid is a function of p, so its survivor count is the
   grid size for the re-optimized shares — check output and the crash
   record, not an exact p. *)
let test_rebalance_hypercube () =
  let clean_out, _, _ =
    Hypercube.run ~seed:1 ~p:4 triangle_query tri_instance
  in
  let faults = Plan.make ~seed:5 { Plan.zero with perma = Some (1, 0) } in
  let job = Supervisor.create ~store:(Store.in_memory ()) "t" in
  let out, stats, _ =
    Hypercube.run ~seed:1 ~faults ~job ~p:4 triangle_query tri_instance
  in
  Alcotest.check instance "hypercube output survives a permanent crash"
    clean_out out;
  Alcotest.(check bool) "crash recorded" true
    (List.exists
       (fun (r : Stats.recovery) -> r.Stats.crashed = 1)
       stats.Stats.recoveries)

(* The crash fires once per job, even across a kill/resume boundary
   placed right after the rebalance. *)
let test_rebalance_once_across_resume () =
  let faults = Plan.make ~seed:5 { Plan.zero with perma = Some (1, 2) } in
  let store = Store.in_memory () in
  let job = Supervisor.create ~kill_after_round:1 ~store "t" in
  (try
     ignore
       (Multi_round.cascade_triangle ~faults ~job ~p:4 tri_instance)
   with Supervisor.Killed _ -> ());
  let job = Supervisor.create ~resume:true ~store "t" in
  let out, stats =
    Multi_round.cascade_triangle ~faults ~job ~p:4 tri_instance
  in
  let clean_out, _ = Multi_round.cascade_triangle ~p:4 tri_instance in
  Alcotest.check instance "output correct" clean_out out;
  let crashes =
    List.fold_left
      (fun acc (r : Stats.recovery) -> acc + r.Stats.crashed)
      0 stats.Stats.recoveries
  in
  Alcotest.(check int) "the permanent crash was rebalanced exactly once" 1
    crashes

(* Rebalanced runs agree across backends. *)
let test_rebalance_pool_identical () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let faults = Plan.make ~seed:5 { Plan.zero with perma = Some (2, 0) } in
      let run executor =
        let job = Supervisor.create ~store:(Store.in_memory ()) "t" in
        Multi_round.skew_resilient_triangle ~executor ~faults ~job ~p:4
          tri_instance
      in
      let seq_out, seq_stats, _ = run Executor.sequential in
      let pool_out, pool_stats, _ = run (Executor.pool pool) in
      Alcotest.check instance "rebalanced pool output = seq output" seq_out
        pool_out;
      Alcotest.(check bool) "rebalanced pool stats = seq stats" true
        (seq_stats = pool_stats))

(* ------------------------------------------------------------------ *)
(* Speculative straggler re-execution                                  *)

let test_speculate_primitive () =
  let calls = ref 0 in
  let body ~cancel:_ =
    incr calls;
    42
  in
  let s = Executor.speculate ~deadline:0.002 ~stall:0.001 ~tie:`Backup body in
  Alcotest.(check bool) "primary beats the deadline" true
    (s.Executor.winner = `Primary);
  Alcotest.(check int) "value" 42 s.Executor.value;
  Alcotest.(check bool) "nothing saved on primary" true
    (s.Executor.saved = 0.0);
  let s = Executor.speculate ~deadline:0.001 ~stall:0.003 ~tie:`Primary body in
  Alcotest.(check bool) "straggler loses to the backup" true
    (s.Executor.winner = `Backup);
  Alcotest.(check int) "backup value" 42 s.Executor.value;
  Alcotest.(check bool) "saved = stall - deadline" true
    (abs_float (s.Executor.saved -. 0.002) < 1e-9);
  let tie d = Executor.speculate ~deadline:0.001 ~stall:0.001 ~tie:d body in
  Alcotest.(check bool) "tie to primary" true
    ((tie `Primary).Executor.winner = `Primary);
  Alcotest.(check bool) "tie to backup" true
    ((tie `Backup).Executor.winner = `Backup)

let straggler_plan =
  Plan.make ~seed:7 { Plan.zero with straggle = 1.0; speculate = 0.0005 }

let unmitigated_plan = Plan.make ~seed:7 { Plan.zero with straggle = 1.0 }

let test_speculation_bit_identity () =
  let clean_out, clean_stats =
    Multi_round.cascade_triangle ~p:4 tri_instance
  in
  let out, stats =
    Multi_round.cascade_triangle ~faults:straggler_plan ~p:4 tri_instance
  in
  Alcotest.check instance "speculated output bit-identical" clean_out out;
  Alcotest.(check bool) "loads unchanged by speculation" true
    (Stats.without_recoveries stats = clean_stats);
  Alcotest.(check bool) "speculations recorded" true
    (Stats.speculations stats > 0)

let test_speculation_pool_identical () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let seq =
        Multi_round.cascade_triangle ~faults:straggler_plan ~p:4 tri_instance
      in
      let pooled =
        Multi_round.cascade_triangle
          ~executor:(Executor.pool pool)
          ~faults:straggler_plan ~p:4 tri_instance
      in
      Alcotest.check instance "pool speculation output = seq" (fst seq)
        (fst pooled);
      Alcotest.(check bool) "pool speculation stats = seq" true
        (snd seq = snd pooled))

(* The whole point: mitigation takes the straggler off the critical
   path. Every task stalls 0.1–1 ms; with a 0.5 ms budget the long
   stalls are cut to the budget, so wall-clock must drop. *)
let test_speculation_saves_wallclock () =
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  (* Median of three to shrug off scheduler noise. *)
  let median f =
    let ts = List.sort compare [ time f; time f; time f ] in
    List.nth ts 1
  in
  let run faults () =
    Multi_round.cascade_triangle ~faults ~p:8 tri_instance
  in
  let full = median (run unmitigated_plan) in
  let mitigated = median (run straggler_plan) in
  Alcotest.(check bool)
    (Fmt.str "mitigated %.1fms < unmitigated %.1fms" (mitigated *. 1000.)
       (full *. 1000.))
    true
    (mitigated < full)

(* Satellite: the injected stall is visible in the observability
   samples, and backup wins are marked. *)
let test_straggle_surfaces_in_obs () =
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    (fun () ->
      Trace.reset ();
      ignore
        (Multi_round.cascade_triangle ~faults:straggler_plan ~p:4 tri_instance);
      let events = Trace.events () in
      let samples =
        List.filter
          (function
            | Trace.Sample { name = "fault.straggle_delay_ms"; value; _ } ->
              value > 0.0
            | _ -> false)
          events
      in
      Alcotest.(check bool) "straggle delays sampled" true (samples <> []);
      let speculated =
        List.exists
          (function
            | Trace.Instant { name = "fault.speculate"; _ } -> true
            | _ -> false)
          events
      in
      Alcotest.(check bool) "backup wins marked" true speculated)

(* ------------------------------------------------------------------ *)
(* Retry backoff                                                       *)

let test_exponential_backoff () =
  let d1 = Executor.exponential_backoff ~seed:3 () in
  let d2 = Executor.exponential_backoff ~seed:3 () in
  let d3 = Executor.exponential_backoff ~seed:4 () in
  let differs = ref false in
  for k = 1 to 8 do
    Alcotest.(check (float 0.0))
      (Fmt.str "same seed, same delay for attempt %d" k)
      (d1 k) (d2 k);
    if d1 k <> d3 k then differs := true;
    Alcotest.(check bool) "delay positive" true (d1 k > 0.0);
    (* base 1ms, factor 2, cap 100ms, jitter < 0.5 *)
    Alcotest.(check bool) "delay below jittered cap" true (d1 k <= 0.15)
  done;
  Alcotest.(check bool) "different seeds decorrelate" true !differs;
  Alcotest.(check bool) "growth before the cap" true (d1 3 > d1 1);
  Alcotest.check_raises "negative base rejected"
    (Invalid_argument "Executor.exponential_backoff: negative parameter")
    (fun () ->
      ignore (Executor.exponential_backoff ~base:(-1.0) ~seed:0 () : int -> float))

exception Boom

let test_with_retry_delay_and_budget () =
  (* Transient failure absorbed; delays slept between attempts. *)
  let attempts = ref 0 in
  let slept = ref [] in
  let v =
    Executor.with_retry
      ~delay:(fun k ->
        slept := k :: !slept;
        0.0005)
      ~retryable:(fun e -> e = Boom)
      (fun ~attempt ->
        incr attempts;
        if attempt < 3 then raise Boom else "ok")
  in
  Alcotest.(check string) "eventually succeeds" "ok" v;
  Alcotest.(check int) "three attempts" 3 !attempts;
  Alcotest.(check (list int)) "delay consulted per failed attempt" [ 2; 1 ]
    !slept;
  (* The budget caps cumulative sleep: the retry whose delay would
     exceed it is abandoned and the failure propagates. *)
  let attempts = ref 0 in
  (try
     ignore
       (Executor.with_retry
          ~delay:(fun _ -> 0.002)
          ~budget:0.003
          ~retryable:(fun e -> e = Boom)
          (fun ~attempt:_ ->
            incr attempts;
            raise Boom));
     Alcotest.fail "budget exhaustion must propagate"
   with Boom -> ());
  Alcotest.(check int) "gave up after the budget, before max_attempts" 2
    !attempts;
  (* Non-retryable exceptions propagate immediately, no sleeping. *)
  let attempts = ref 0 in
  (try
     ignore
       (Executor.with_retry
          ~delay:(fun _ -> 10.0)
          ~retryable:(fun _ -> false)
          (fun ~attempt:_ ->
            incr attempts;
            raise Boom));
     Alcotest.fail "non-retryable must propagate"
   with Boom -> ());
  Alcotest.(check int) "single attempt" 1 !attempts

(* Transient faults + backoff delays inside a cluster round stay
   bit-identical to the clean run. *)
let test_retry_backoff_in_cluster () =
  let faults = Plan.make ~seed:9 { Plan.zero with transient = 0.5 } in
  let clean_out, clean_stats = Multi_round.cascade_triangle ~p:4 tri_instance in
  let out, stats =
    Multi_round.cascade_triangle ~faults ~p:4 tri_instance
  in
  Alcotest.check instance "retried output bit-identical" clean_out out;
  Alcotest.(check bool) "clean portion unchanged" true
    (Stats.without_recoveries stats = clean_stats);
  Alcotest.(check bool) "retries recorded" true (Stats.retries stats > 0)

(* ------------------------------------------------------------------ *)

let () =
  let open Alcotest in
  run "lamp.jobs"
    [
      ( "codec",
        [
          test_case "primitive round-trips" `Quick test_codec_roundtrip;
          test_case "canonical instances" `Quick test_codec_instance_canonical;
          test_case "corruption detected" `Quick test_codec_corrupt;
          test_case "hostile length prefixes" `Quick test_codec_hostile_lengths;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ qcheck_roundtrip; qcheck_truncation; qcheck_byte_flip ] );
      ( "store",
        [
          test_case "memory backend" `Quick test_store_memory;
          test_case "disk backend" `Quick test_store_disk;
          test_case "generations and fallback" `Quick test_store_generations;
          test_case "stale tmp litter swept" `Quick test_store_sweeps_litter;
          test_case "ENOSPC absorbed by retry" `Quick test_store_enospc_retry;
          test_case "crash leaves a good generation" `Quick
            test_store_crash_leaves_good_generation;
          test_case "fsck detects and repairs" `Quick test_fsck;
          test_case "disk mismatch rejected" `Quick
            test_store_disk_rejects_mismatch;
        ] );
      ( "cluster",
        [
          test_case "snapshot/restore round-trip" `Quick
            test_cluster_snapshot_roundtrip;
          test_case "corrupt snapshot rejected" `Quick
            test_cluster_restore_corrupt;
        ] );
      ( "kill-resume",
        [
          test_case "matrix (seq)" `Quick test_kill_resume_seq;
          test_case "matrix (pool)" `Quick test_kill_resume_pool;
          test_case "matrix under faults" `Quick test_kill_resume_under_faults;
          test_case "crash-point matrix (seq)" `Quick test_crash_matrix_seq;
          test_case "crash-point matrix (pool)" `Quick test_crash_matrix_pool;
          test_case "falls back a generation" `Quick
            test_resume_falls_back_a_generation;
          test_case "across backends" `Quick test_resume_across_backends;
          test_case "kill from the fault plan" `Quick test_kill_from_plan;
          test_case "fingerprint mismatch rejected" `Quick
            test_fingerprint_mismatch;
          test_case "finished job resumes as no-op" `Quick
            test_resume_finished_job;
          test_case "datalog per-iteration" `Quick test_datalog_kill_resume;
          test_case "disk-backed end to end" `Quick test_kill_resume_on_disk;
        ] );
      ( "rebalance",
        [
          test_case "survivors produce the clean output" `Quick test_rebalance;
          test_case "hypercube replans its grid" `Quick
            test_rebalance_hypercube;
          test_case "fires once across kill/resume" `Quick
            test_rebalance_once_across_resume;
          test_case "backend-independent" `Quick test_rebalance_pool_identical;
        ] );
      ( "speculation",
        [
          test_case "primitive decides deterministically" `Quick
            test_speculate_primitive;
          test_case "bit-identical results" `Quick
            test_speculation_bit_identity;
          test_case "backend-independent" `Quick
            test_speculation_pool_identical;
          test_case "removes stall from the critical path" `Quick
            test_speculation_saves_wallclock;
          test_case "stalls surface in obs" `Quick
            test_straggle_surfaces_in_obs;
        ] );
      ( "retry",
        [
          test_case "exponential backoff deterministic" `Quick
            test_exponential_backoff;
          test_case "delay schedule and budget" `Quick
            test_with_retry_delay_and_budget;
          test_case "bit-identity in cluster rounds" `Quick
            test_retry_backoff_in_cluster;
        ] );
    ]
