open Lamp_relational
open Lamp_runtime

let instance = Alcotest.testable Instance.pp Instance.equal

(* ------------------------------------------------------------------ *)
(* Deque                                                               *)

let test_deque_owner_lifo () =
  let d = Deque.create () in
  List.iter (Deque.push d) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Deque.length d);
  Alcotest.(check (option int)) "pop newest" (Some 3) (Deque.pop d);
  Alcotest.(check (option int)) "then 2" (Some 2) (Deque.pop d);
  Deque.push d 4;
  Alcotest.(check (option int)) "interleaved push" (Some 4) (Deque.pop d);
  Alcotest.(check (option int)) "then 1" (Some 1) (Deque.pop d);
  Alcotest.(check (option int)) "empty" None (Deque.pop d);
  Alcotest.(check bool) "is_empty" true (Deque.is_empty d)

let test_deque_thief_fifo () =
  let d = Deque.create () in
  List.iter (Deque.push d) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "steal oldest" (Some 1) (Deque.steal d);
  Alcotest.(check (option int)) "owner still newest" (Some 3) (Deque.pop d);
  Alcotest.(check (option int)) "steal remaining" (Some 2) (Deque.steal d);
  Alcotest.(check (option int)) "exhausted" None (Deque.steal d)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_runs_every_task () =
  let pool = Pool.create ~domains:4 () in
  Alcotest.(check int) "size" 4 (Pool.size pool);
  let n = 1000 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Pool.run pool ~tasks:n (fun ~worker k ->
      Alcotest.(check bool) "worker in range" true (worker >= 0 && worker < 4);
      Atomic.incr hits.(k));
  Array.iteri
    (fun k c ->
      Alcotest.(check int) (Printf.sprintf "task %d exactly once" k) 1
        (Atomic.get c))
    hits;
  Alcotest.(check int) "tasks counted" n (Pool.tasks_run pool);
  Pool.shutdown pool

let test_pool_propagates_exception () =
  let pool = Pool.create ~domains:3 () in
  let ran_after = Atomic.make 0 in
  Alcotest.check_raises "task failure re-raised" (Failure "boom") (fun () ->
      Pool.run pool ~tasks:64 (fun ~worker:_ k ->
          if k = 5 then failwith "boom" else Atomic.incr ran_after));
  (* The pool must stay usable after a failed batch. *)
  let ok = Atomic.make 0 in
  Pool.run pool ~tasks:16 (fun ~worker:_ _ -> Atomic.incr ok);
  Alcotest.(check int) "pool alive after failure" 16 (Atomic.get ok);
  Pool.shutdown pool

let test_pool_shutdown_joins () =
  let pool = Pool.create ~domains:4 () in
  Pool.run pool ~tasks:8 (fun ~worker:_ _ -> ());
  Pool.shutdown pool;
  (* Idempotent, and the pool refuses further batches. *)
  Pool.shutdown pool;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool has been shut down") (fun () ->
      Pool.run pool ~tasks:1 (fun ~worker:_ _ -> ()))

let test_pool_single_domain () =
  (* domains = 1: no spawned domain, the submitter does everything. *)
  let pool = Pool.create ~domains:1 () in
  let sum = ref 0 in
  Pool.run pool ~tasks:10 (fun ~worker k ->
      Alcotest.(check int) "only worker 0" 0 worker;
      sum := !sum + k);
  Alcotest.(check int) "all tasks" 45 !sum;
  Alcotest.(check int) "no steals" 0 (Pool.steals pool);
  Pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* Executor combinators                                                *)

let with_pool_executor domains f =
  let pool = Pool.create ~domains () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () -> f (Executor.pool pool))

let test_executor_parallel_for () =
  with_pool_executor 4 (fun exec ->
      let n = 501 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Executor.parallel_for exec ~n (fun ~worker:_ i -> Atomic.incr hits.(i));
      Array.iter
        (fun c -> Alcotest.(check int) "exactly once" 1 (Atomic.get c))
        hits)

let test_executor_map_array () =
  let f i = (i * i) - 3 in
  let expected = Array.init 97 f in
  Alcotest.(check (array int))
    "sequential" expected
    (Executor.map_array Executor.sequential ~n:97 f);
  with_pool_executor 3 (fun exec ->
      Alcotest.(check (array int)) "pool" expected (Executor.map_array exec ~n:97 f);
      Alcotest.(check (array int))
        "pool, chunk=1" expected
        (Executor.map_array exec ~chunk:1 ~n:97 f))

let test_executor_map_reduce () =
  let sum_to n = n * (n - 1) / 2 in
  let run exec ?chunk () =
    Executor.map_reduce exec ?chunk ~n:1000 ~map:Fun.id ~combine:( + ) 0
  in
  Alcotest.(check int) "sequential" (sum_to 1000) (run Executor.sequential ());
  with_pool_executor 4 (fun exec ->
      Alcotest.(check int) "pool default chunk" (sum_to 1000) (run exec ());
      Alcotest.(check int) "pool chunk=1" (sum_to 1000) (run exec ~chunk:1 ());
      Alcotest.(check int) "pool chunk>n" (sum_to 1000) (run exec ~chunk:5000 ());
      Alcotest.(check int) "empty range" 7
        (Executor.map_reduce exec ~n:0 ~map:Fun.id ~combine:( + ) 7))

let test_executor_propagates () =
  with_pool_executor 2 (fun exec ->
      Alcotest.check_raises "exception through parallel_for" (Failure "dead")
        (fun () ->
          Executor.parallel_for exec ~n:32 (fun ~worker:_ i ->
              if i = 31 then failwith "dead")))

(* ------------------------------------------------------------------ *)
(* In-flight gauge and pool accessor (admission control / stats feed)  *)

let test_in_flight_gauge () =
  let check_backend name exec =
    Alcotest.(check int) (name ^ " idle at rest") 0 (Executor.in_flight exec);
    let n = 16 in
    let seen = ref [] in
    Executor.parallel_for exec ~chunk:1 ~n (fun ~worker:_ _ ->
        seen := Executor.in_flight exec :: !seen);
    (* Each task observes itself (and possibly peers) still in flight:
       the gauge is >= 1 from inside a task, whatever the backend. *)
    List.iter
      (fun v ->
        if v < 1 || v > n then
          Alcotest.failf "%s mid-batch gauge %d out of [1..%d]" name v n)
      !seen;
    Alcotest.(check int) (name ^ " idle after batch") 0
      (Executor.in_flight exec)
  in
  check_backend "seq" Executor.sequential;
  with_pool_executor 2 (check_backend "pool");
  (* The raw pool gauge agrees and is independently readable. *)
  let pool = Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "pool gauge at rest" 0 (Pool.in_flight pool);
      let inside = ref 0 in
      Pool.run pool ~tasks:8 (fun ~worker:_ _ ->
          inside := max !inside (Pool.in_flight pool));
      Alcotest.(check bool) "pool gauge >= 1 mid-batch" true (!inside >= 1);
      Alcotest.(check int) "pool gauge drained" 0 (Pool.in_flight pool))

let test_in_flight_resets_on_raise () =
  (* A raising batch must not leave the gauge stuck: admission control
     would otherwise believe the executor busy forever. *)
  (try
     Executor.parallel_for Executor.sequential ~n:4 (fun ~worker:_ i ->
         if i = 2 then failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "seq gauge after raise" 0
    (Executor.in_flight Executor.sequential)

let test_backend_pool_accessor () =
  Alcotest.(check bool)
    "sequential has no pool" true
    (Executor.backend_pool Executor.sequential = None);
  with_pool_executor 3 (fun exec ->
      match Executor.backend_pool exec with
      | None -> Alcotest.fail "pool backend must expose its pool"
      | Some p ->
        Alcotest.(check int) "exposed pool has the right size" 3 (Pool.size p);
        Alcotest.(check int)
          "workers agrees with exposed pool" (Executor.workers exec)
          (Pool.size p))

(* ------------------------------------------------------------------ *)
(* Backend equivalence on the MPC simulator                            *)

let stats_equal = Alcotest.of_pp Lamp_mpc.Stats.pp

let check_backend_equivalence ~domains run =
  let seq_result, seq_stats = run Executor.sequential in
  with_pool_executor domains (fun exec ->
      let pool_result, pool_stats = run exec in
      Alcotest.check stats_equal "stats identical" seq_stats pool_stats;
      Alcotest.(check bool)
        "round-by-round stats identical" true
        (seq_stats = pool_stats);
      Alcotest.check instance "results identical" seq_result pool_result)

let triangle_workload =
  lazy
    (let rng = Random.State.make [| 42 |] in
     Lamp_mpc.Workload.triangle_skew_free ~rng ~m:400 ~domain:300)

let test_equiv_hypercube_triangle () =
  (* p = 27 servers over 3 workers: p > domain count. *)
  check_backend_equivalence ~domains:3 (fun executor ->
      let result, stats, _ =
        Lamp_mpc.Hypercube.run ~executor ~p:27 Lamp_cq.Examples.q2_triangle
          (Lazy.force triangle_workload)
      in
      (result, stats))

let test_equiv_repartition_join () =
  let w = Lamp_mpc.Workload.join_skew_free ~m:500 in
  check_backend_equivalence ~domains:4 (fun executor ->
      Lamp_mpc.Repartition_join.run ~executor ~p:8 w);
  (* p = 1: a single server must still work on every backend. *)
  check_backend_equivalence ~domains:2 (fun executor ->
      Lamp_mpc.Repartition_join.run ~executor ~p:1 w)

let test_equiv_multi_round () =
  check_backend_equivalence ~domains:3 (fun executor ->
      Lamp_mpc.Multi_round.cascade_triangle ~executor ~p:9
        (Lazy.force triangle_workload))

let test_equiv_gym () =
  let rng = Random.State.make [| 7 |] in
  let i =
    Lamp_mpc.Workload.acyclic_chain ~rng ~m:400 ~domain:200
      ~rels:[ "R1"; "R2"; "R3" ]
  in
  let q =
    Lamp_cq.Parser.query "H(x0,x3) <- R1(x0,x1), R2(x1,x2), R3(x2,x3)"
  in
  check_backend_equivalence ~domains:4 (fun executor ->
      Lamp_mpc.Yannakakis.gym ~executor ~p:16 q i)

let test_bad_destination_names_source () =
  with_pool_executor 2 (fun executor ->
      let c =
        Lamp_mpc.Cluster.create ~executor ~p:2
          (Instance.of_string "R(1,2). R(3,4). R(5,6)")
      in
      let saw = ref "" in
      (try
         Lamp_mpc.Cluster.run_round c
           {
             Lamp_mpc.Cluster.communicate =
               Lamp_mpc.Cluster.route_by (fun _ -> [ 9 ]);
             compute = Lamp_mpc.Cluster.keep_received;
           }
       with Invalid_argument msg -> saw := msg);
      Alcotest.(check bool)
        "message names the offending source server" true
        (String.length !saw > 0
        && (let has sub =
              let n = String.length !saw and m = String.length sub in
              let rec go i =
                i + m <= n && (String.sub !saw i m = sub || go (i + 1))
              in
              go 0
            in
            has "server 0" && has "destination 9" && has "p = 2"));
      (* The cluster recorded nothing for the aborted round. *)
      Alcotest.(check int) "no round recorded" 0
        (Lamp_mpc.Stats.rounds (Lamp_mpc.Cluster.stats c)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lamp_runtime"
    [
      ( "deque",
        [
          Alcotest.test_case "owner LIFO" `Quick test_deque_owner_lifo;
          Alcotest.test_case "thief FIFO" `Quick test_deque_thief_fifo;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs every task" `Quick test_pool_runs_every_task;
          Alcotest.test_case "exceptions propagate" `Quick
            test_pool_propagates_exception;
          Alcotest.test_case "shutdown joins" `Quick test_pool_shutdown_joins;
          Alcotest.test_case "single domain" `Quick test_pool_single_domain;
        ] );
      ( "executor",
        [
          Alcotest.test_case "parallel_for covers range" `Quick
            test_executor_parallel_for;
          Alcotest.test_case "map_array" `Quick test_executor_map_array;
          Alcotest.test_case "map_reduce" `Quick test_executor_map_reduce;
          Alcotest.test_case "exceptions propagate" `Quick
            test_executor_propagates;
          Alcotest.test_case "in-flight gauge" `Quick test_in_flight_gauge;
          Alcotest.test_case "gauge resets on raise" `Quick
            test_in_flight_resets_on_raise;
          Alcotest.test_case "backend pool accessor" `Quick
            test_backend_pool_accessor;
        ] );
      ( "backend equivalence",
        [
          Alcotest.test_case "hypercube triangle (p > domains)" `Quick
            test_equiv_hypercube_triangle;
          Alcotest.test_case "repartition join (incl. p = 1)" `Quick
            test_equiv_repartition_join;
          Alcotest.test_case "cascade triangle" `Quick test_equiv_multi_round;
          Alcotest.test_case "GYM chain" `Quick test_equiv_gym;
          Alcotest.test_case "bad destination names source" `Quick
            test_bad_destination_names_source;
        ] );
    ]
