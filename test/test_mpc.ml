open Lamp_relational
open Lamp_cq
open Lamp_mpc

let instance = Alcotest.testable Instance.pp Instance.equal
let inst = Instance.of_string
let rng () = Random.State.make [| 2026 |]

(* ------------------------------------------------------------------ *)
(* Cluster                                                             *)

let test_cluster_partition () =
  let i = Generate.matching ~size:100 ~offset:0 () in
  let c = Cluster.create ~p:8 i in
  Array.iter
    (fun local ->
      let n = Instance.cardinal local in
      Alcotest.(check bool) "balanced" true (n = 12 || n = 13))
    (Cluster.locals c);
  Alcotest.check instance "partition preserves data" i (Cluster.union_all c)

let test_cluster_round () =
  let i = inst "R(0,1). R(2,3). R(4,5). R(6,7)" in
  let c = Cluster.create ~p:2 i in
  (* Send every fact to the server given by its first value mod 2. *)
  Cluster.run_round c
    {
      Cluster.communicate =
        Cluster.route_by (fun f ->
            match (Fact.args f).(0) with
            | Value.Int k -> [ k / 2 mod 2 ]
            | Value.Str _ -> [ 0 ]);
      compute = Cluster.keep_received;
    };
  Alcotest.check instance "κ0 data" (inst "R(0,1). R(4,5)") (Cluster.local c 0);
  Alcotest.check instance "κ1 data" (inst "R(2,3). R(6,7)") (Cluster.local c 1);
  let s = Cluster.stats c in
  Alcotest.(check int) "one round" 1 (Stats.rounds s);
  Alcotest.(check int) "total = m" 4 (Stats.total_communication s);
  Alcotest.(check int) "max = 2" 2 (Stats.max_load s)

let test_cluster_bad_destination () =
  let c = Cluster.create ~p:2 (inst "R(1,2)") in
  Alcotest.check_raises "destination out of range" (Invalid_argument "")
    (fun () ->
      try
        Cluster.run_round c
          {
            Cluster.communicate = Cluster.route_by (fun _ -> [ 7 ]);
            compute = Cluster.keep_received;
          }
      with Invalid_argument _ -> raise (Invalid_argument ""))

let test_stats_epsilon () =
  let s =
    {
      Stats.p = 16;
      initial_max = 0;
      rounds = [ { Stats.max_received = 64; total_received = 1024 } ];
      recoveries = [];
    }
  in
  (* m = 1024, load 64 = m/p: ε = 0. *)
  Alcotest.(check bool) "eps 0" true (Float.abs (Stats.epsilon ~m:1024 s) < 1e-9);
  let s1 =
    { s with Stats.rounds = [ { Stats.max_received = 256; total_received = 1024 } ] }
  in
  (* load 256 = m/p^(1/2): ε = 1/2. *)
  Alcotest.(check bool) "eps 1/2" true
    (Float.abs (Stats.epsilon ~m:1024 s1 -. 0.5) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Skew detection                                                      *)

let test_heavy_hitters () =
  let i = Workload.join_skewed ~m:50 in
  let heavy = Skew.heavy_hitters i ~rel:"R" ~pos:1 ~threshold:10 in
  Alcotest.(check int) "one heavy hitter" 1 (Value.Set.cardinal heavy);
  Alcotest.(check bool) "hub detected" true (Value.Set.mem (Value.int 0) heavy);
  let light, heavy_part = Skew.split i ~rel:"R" ~pos:1 ~heavy in
  Alcotest.(check int) "R all heavy" 50 (Instance.cardinal heavy_part);
  Alcotest.(check int) "S untouched" 50 (Instance.cardinal light)

let test_degrees () =
  let i = inst "R(1,5). R(2,5). R(3,6)" in
  let d = Skew.degrees i ~rel:"R" ~pos:1 in
  Alcotest.(check (option int)) "deg 5" (Some 2) (Value.Map.find_opt (Value.int 5) d);
  Alcotest.(check (option int)) "deg 6" (Some 1) (Value.Map.find_opt (Value.int 6) d);
  Alcotest.(check int) "max degree" 2 (Skew.max_degree i ~rel:"R" ~pos:1)

(* ------------------------------------------------------------------ *)
(* Repartition join (E1)                                               *)

let test_repartition_correct () =
  let i = Workload.join_skew_free ~m:200 in
  let result, stats = Repartition_join.run ~p:8 i in
  Alcotest.check instance "join result" (Eval.eval Examples.q1_join i) result;
  Alcotest.(check int) "no replication" (Instance.cardinal i)
    (Stats.total_communication stats)

let test_repartition_skew_free_load () =
  let i = Workload.join_skew_free ~m:400 in
  let _, stats = Repartition_join.run ~p:8 i in
  let m = Instance.cardinal i in
  (* Perfectly balanced up to hashing noise: within 3x of m/p. *)
  Alcotest.(check bool) "load near m/p" true (Stats.max_load stats < 3 * m / 8)

let test_repartition_skewed_load () =
  let i = Workload.join_skewed ~m:200 in
  let _, stats = Repartition_join.run ~p:8 i in
  (* The hub's 2m tuples all land on one server. *)
  Alcotest.(check bool) "load ~ m" true
    (Stats.max_load stats >= Instance.cardinal i)

(* ------------------------------------------------------------------ *)
(* Grid join (E2)                                                      *)

let test_grid_correct () =
  let i = Workload.join_skew_free ~m:150 in
  let result, _ = Grid_join.run ~p:16 i in
  Alcotest.check instance "grid join result" (Eval.eval Examples.q1_join i) result

let test_grid_skew_resilient () =
  let i = Workload.join_skewed ~m:200 in
  let result, stats = Grid_join.run ~p:16 i in
  Alcotest.check instance "correct under skew" (Eval.eval Examples.q1_join i) result;
  let m = Instance.cardinal i in
  (* Load ~ 2 · (m/2) / √p = m/4 here; allow slack for rounding. *)
  Alcotest.(check bool) "load ~ m/sqrt p" true (Stats.max_load stats <= m * 2 / 4);
  (* But replication makes total communication ~ m√p. *)
  Alcotest.(check bool) "replication cost" true
    (Stats.total_communication stats >= 3 * m)

(* ------------------------------------------------------------------ *)
(* Shares / HyperCube (E3, E5)                                         *)

let test_shares_enumeration () =
  let count = ref 0 in
  Shares.enumerate_share_vectors ~p:8 [ "x"; "y" ] (fun _ -> incr count);
  (* Pairs (a,b) with a*b <= 8: a=1:8, 2:4, 3:2, 4:2, 5..8:1 = 20. *)
  Alcotest.(check int) "vectors" 20 !count

let test_shares_replication () =
  let shares = [ ("x", 2); ("y", 3); ("z", 4) ] in
  let atom = Ast.atom "R" [ Ast.Var "x"; Ast.Var "y" ] in
  Alcotest.(check int) "replicated across z" 4
    (Shares.atom_replication ~shares atom)

let test_shares_optimal_triangle () =
  let sizes _ = 1000 in
  let shares, _ =
    Shares.optimize ~objective:Shares.Max_load ~p:8 ~sizes Examples.q2_triangle
  in
  List.iter
    (fun (v, s) -> Alcotest.(check int) (Printf.sprintf "share %s" v) 2 s)
    shares

let test_shares_lp_rounded () =
  let shares = Shares.lp_rounded ~p:64 Examples.q2_triangle in
  Alcotest.(check bool) "budget respected" true (Shares.product shares <= 64);
  List.iter (fun (_, s) -> Alcotest.(check int) "p^(1/3)" 4 s) shares

let test_shares_objectives_differ () =
  (* For the join R(x,y) ⋈ S(y,z) with |R| >> |S|, minimizing the total
     communication favours replicating the small relation; minimizing
     max load must still balance the big one. Both must put their budget
     on y when relations are equal. *)
  let sizes _ = 100 in
  let shares_ml, _ =
    Shares.optimize ~objective:Shares.Max_load ~p:8 ~sizes Examples.q1_join
  in
  let y_share = List.assoc "y" shares_ml in
  Alcotest.(check int) "join budget on y" 8 y_share

let test_hypercube_triangle_correct () =
  let i = Workload.triangle_skew_free ~rng:(rng ()) ~m:150 ~domain:40 in
  let result, _, shares = Hypercube.run ~p:8 Examples.q2_triangle i in
  Alcotest.check instance "hypercube result"
    (Eval.eval Examples.q2_triangle i)
    result;
  Alcotest.(check bool) "shares fit" true (Shares.product shares <= 8)

let test_hypercube_load_bound () =
  let i = Workload.triangle_skew_free ~rng:(rng ()) ~m:2000 ~domain:2000 in
  let m = Instance.cardinal i in
  let _, stats, _ = Hypercube.run ~p:8 Examples.q2_triangle i in
  (* Theory: each server receives ~ 3·(m/3)/p^(2/3) = m/4 here. Allow
     2x hashing slack. *)
  let bound = 2 * m / 4 in
  Alcotest.(check bool)
    (Printf.sprintf "load %d <= %d" (Stats.max_load stats) bound)
    true
    (Stats.max_load stats <= bound)

let test_hypercube_two_atoms () =
  let i = Workload.join_skew_free ~m:100 in
  let result, _, _ = Hypercube.run ~p:4 Examples.q1_join i in
  Alcotest.check instance "join via hypercube" (Eval.eval Examples.q1_join i) result

(* ------------------------------------------------------------------ *)
(* Multi-round (E3, E4)                                                *)

let test_cascade_triangle_correct () =
  let i = Workload.triangle_skew_free ~rng:(rng ()) ~m:120 ~domain:25 in
  let expected =
    Workload.rename_relation ~from_rel:"K" ~to_rel:"H"
      (Eval.eval Examples.q2_triangle i)
  in
  let result, stats = Multi_round.cascade_triangle ~p:8 i in
  Alcotest.check instance "cascade result" expected result;
  Alcotest.(check int) "two rounds" 2 (Stats.rounds stats)

let test_skew_resilient_correct_no_skew () =
  let i = Workload.triangle_skew_free ~rng:(rng ()) ~m:120 ~domain:60 in
  let result, _, heavy = Multi_round.skew_resilient_triangle ~p:8 i in
  Alcotest.check instance "no-skew result" (Eval.eval Examples.q2_triangle i) result;
  Alcotest.(check int) "no heavy hitters" 0 heavy

let test_skew_resilient_correct_skewed () =
  let i =
    Workload.triangle_y_skew ~rng:(rng ()) ~m:300 ~domain:100 ~heavy_fraction:0.5
  in
  let result, _, heavy = Multi_round.skew_resilient_triangle ~p:8 i in
  Alcotest.check instance "skewed result" (Eval.eval Examples.q2_triangle i) result;
  Alcotest.(check bool) "hub detected" true (heavy >= 1)

let test_skew_resilient_beats_one_round () =
  let i =
    Workload.triangle_y_skew ~rng:(rng ()) ~m:3000 ~domain:3000
      ~heavy_fraction:0.8
  in
  let _, stats1, _ = Hypercube.run ~p:27 Examples.q2_triangle i in
  let _, stats2, _ = Multi_round.skew_resilient_triangle ~p:27 i in
  Alcotest.(check bool)
    (Printf.sprintf "two-round %d < one-round %d" (Stats.max_load stats2)
       (Stats.max_load stats1))
    true
    (Stats.max_load stats2 < Stats.max_load stats1)

(* ------------------------------------------------------------------ *)
(* Yannakakis / GYM (E6)                                               *)

let chain3 = Parser.query "H(x0,x3) <- R1(x0,x1), R2(x1,x2), R3(x2,x3)"

let test_yannakakis_matches_eval () =
  let i =
    Workload.acyclic_chain ~rng:(rng ()) ~m:80 ~domain:12
      ~rels:[ "R1"; "R2"; "R3" ]
  in
  Alcotest.check instance "chain query" (Eval.eval chain3 i)
    (Yannakakis.eval_acyclic chain3 i)

let test_yannakakis_cyclic_raises () =
  Alcotest.check_raises "cyclic" Yannakakis.Cyclic (fun () ->
      ignore (Yannakakis.eval_acyclic Examples.q2_triangle Instance.empty))

let test_reduction_report () =
  (* A dangling R1 tuple must be eliminated by the full reducer. *)
  let i = inst "R1(1,2). R1(8,9). R2(2,3). R3(3,4)" in
  let report = Yannakakis.reduction_report chain3 i in
  let r1 =
    List.find (fun ((a : Ast.atom), _, _) -> a.Ast.rel = "R1") report
  in
  let _, before, after = r1 in
  Alcotest.(check int) "before" 2 before;
  Alcotest.(check int) "after" 1 after

let test_gym_correct () =
  let i =
    Workload.acyclic_chain ~rng:(rng ()) ~m:60 ~domain:10
      ~rels:[ "R1"; "R2"; "R3" ]
  in
  let result, stats = Yannakakis.gym ~p:4 chain3 i in
  Alcotest.check instance "gym result" (Eval.eval chain3 i) result;
  Alcotest.(check bool) "multiple rounds" true (Stats.rounds stats >= 3)

let test_gym_star () =
  let q = Parser.query "H(x) <- R1(x,a), R2(x,b), R3(x,c)" in
  let i =
    Workload.acyclic_chain ~rng:(rng ()) ~m:50 ~domain:8
      ~rels:[ "R1"; "R2"; "R3" ]
  in
  let result, _ = Yannakakis.gym ~p:4 q i in
  Alcotest.check instance "gym star" (Eval.eval q i) result

(* ------------------------------------------------------------------ *)
(* KST near-optimal multi-round algorithm                              *)

let kst_check ?threshold ~p q i =
  let expect = Eval.eval q i in
  let got, _, combos = Kst.run ~seed:7 ?threshold ~p q i in
  Alcotest.check instance "kst = sequential" expect got;
  combos

let test_kst_triangle_skew_free () =
  let i = Workload.triangle_skew_free ~rng:(rng ()) ~m:400 ~domain:60 in
  ignore (kst_check ~p:4 Examples.q2_triangle i)

let test_kst_triangle_skewed () =
  let i =
    Workload.triangle_y_skew ~rng:(rng ()) ~m:600 ~domain:80
      ~heavy_fraction:0.3
  in
  (* A low explicit threshold forces the heavy decomposition on. *)
  let combos = kst_check ~threshold:8 ~p:6 Examples.q2_triangle i in
  Alcotest.(check bool) "heavy configurations planned" true (combos > 0)

let test_kst_four_cycle_zipf () =
  let pairs = Workload.zipf_pairs ~rng:(rng ()) ~m:500 ~domain:100 ~s:1.2 in
  let i = Workload.cycle_from_pairs ~rels:[ "R"; "S"; "T"; "U" ] pairs in
  ignore (kst_check ~p:5 Examples.q_four_cycle i);
  ignore (kst_check ~threshold:5 ~p:5 Examples.q_four_cycle i)

let test_kst_clique () =
  let pairs = Workload.zipf_pairs ~rng:(rng ()) ~m:400 ~domain:80 ~s:1.1 in
  let i = Workload.clique_from_pairs ~k:3 pairs in
  ignore (kst_check ~p:4 (Examples.q_clique 3) i)

let test_kst_constants_repeated () =
  let q = Parser.query "H(x,y) <- R(x,x), S(x,y), S(y,0)" in
  let i =
    Instance.of_facts
      (List.concat
         [
           List.init 40 (fun k -> Fact.of_ints "R" [ k mod 7; k mod 7 ]);
           List.init 60 (fun k -> Fact.of_ints "S" [ k mod 7; k mod 11 ]);
           List.init 11 (fun k -> Fact.of_ints "S" [ k; 0 ]);
         ])
  in
  ignore (kst_check ~p:3 q i);
  ignore (kst_check ~threshold:4 ~p:3 q i)

let test_kst_single_server () =
  let i =
    Workload.triangle_y_skew ~rng:(rng ()) ~m:300 ~domain:50
      ~heavy_fraction:0.3
  in
  ignore (kst_check ~p:1 Examples.q2_triangle i);
  ignore (kst_check ~threshold:4 ~p:1 Examples.q2_triangle i)

let test_kst_deterministic () =
  let i =
    Workload.triangle_y_skew ~rng:(rng ()) ~m:400 ~domain:60
      ~heavy_fraction:0.3
  in
  let a, sa, ca = Kst.run ~seed:7 ~threshold:8 ~p:6 Examples.q2_triangle i in
  let b, sb, cb = Kst.run ~seed:7 ~threshold:8 ~p:6 Examples.q2_triangle i in
  Alcotest.check instance "same output" a b;
  Alcotest.(check bool) "bit-identical stats" true (sa = sb);
  Alcotest.(check int) "same configurations" ca cb

let test_kst_load_vs_hypercube () =
  (* On skewed input the KST load must stay within a small constant
     factor of one-round HyperCube's (it is allowed to be better). *)
  let i =
    Workload.triangle_y_skew ~rng:(rng ()) ~m:800 ~domain:100
      ~heavy_fraction:0.3
  in
  let _, hs, _ = Hypercube.run ~seed:7 ~p:6 Examples.q2_triangle i in
  let _, ks, _ = Kst.run ~seed:7 ~threshold:8 ~p:6 Examples.q2_triangle i in
  Alcotest.(check bool) "within 3x of hypercube" true
    (Stats.max_load ks <= 3 * Stats.max_load hs)

let test_hypercube_wcoj_strategy_identical () =
  (* The plan backend changes local evaluation only: same routing, so
     bit-identical stats, and the same output. *)
  let i =
    Workload.triangle_y_skew ~rng:(rng ()) ~m:500 ~domain:70
      ~heavy_fraction:0.2
  in
  let rb, sb, shb = Hypercube.run ~seed:3 ~p:8 Examples.q2_triangle i in
  let rw, sw, shw =
    Hypercube.run ~seed:3 ~strategy:Eval.Wcoj ~p:8 Examples.q2_triangle i
  in
  Alcotest.check instance "same output" rb rw;
  Alcotest.(check bool) "bit-identical stats" true (sb = sw);
  Alcotest.(check bool) "same shares" true (shb = shw)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let graph_workload_arb =
  QCheck.make
    ~print:(Fmt.str "%a" Instance.pp)
    QCheck.Gen.(
      let* seed = int_range 0 100_000 in
      let rng = Random.State.make [| seed |] in
      return (Workload.triangle_skew_free ~rng ~m:40 ~domain:10))

let prop_hypercube_matches_sequential =
  QCheck.Test.make ~name:"hypercube = sequential evaluation" ~count:40
    (QCheck.pair graph_workload_arb (QCheck.make QCheck.Gen.(int_range 1 20)))
    (fun (i, p) ->
      let result, _, _ = Hypercube.run ~p Examples.q2_triangle i in
      Instance.equal result (Eval.eval Examples.q2_triangle i))

let prop_repartition_matches_sequential =
  QCheck.Test.make ~name:"repartition join = sequential" ~count:40
    (QCheck.pair
       (QCheck.make
          QCheck.Gen.(
            let* seed = int_range 0 100_000 in
            let rng = Random.State.make [| seed |] in
            return
              (Instance.union
                 (Generate.random_relation ~rng ~rel:"R" ~arity:2 ~size:30
                    ~domain:8 ())
                 (Generate.random_relation ~rng ~rel:"S" ~arity:2 ~size:30
                    ~domain:8 ()))))
       (QCheck.make QCheck.Gen.(int_range 1 16)))
    (fun (i, p) ->
      let result, _ = Repartition_join.run ~p i in
      Instance.equal result (Eval.eval Examples.q1_join i))

let acyclic_queries =
  [
    chain3;
    Parser.query "H(x1) <- R1(x0,x1), R2(x1,x2)";
    Parser.query "H(x,w) <- R1(x,y), R2(y,z), R3(y,w)";
    Parser.query "H(x) <- R1(x,y)";
  ]

let prop_yannakakis_matches_eval =
  QCheck.Test.make ~name:"Yannakakis = naive evaluation (acyclic)" ~count:40
    (QCheck.pair
       (QCheck.make
          QCheck.Gen.(
            let* seed = int_range 0 100_000 in
            let rng = Random.State.make [| seed |] in
            return
              (Workload.acyclic_chain ~rng ~m:25 ~domain:6
                 ~rels:[ "R1"; "R2"; "R3" ])))
       (QCheck.make (QCheck.Gen.oneofl acyclic_queries)))
    (fun (i, q) ->
      Instance.equal (Yannakakis.eval_acyclic q i) (Eval.eval q i))

let prop_gym_matches_eval =
  QCheck.Test.make ~name:"GYM = naive evaluation (acyclic)" ~count:25
    (QCheck.pair
       (QCheck.make
          QCheck.Gen.(
            let* seed = int_range 0 100_000 in
            let rng = Random.State.make [| seed |] in
            return
              (Workload.acyclic_chain ~rng ~m:25 ~domain:6
                 ~rels:[ "R1"; "R2"; "R3" ])))
       (QCheck.make (QCheck.Gen.oneofl acyclic_queries)))
    (fun (i, q) ->
      let result, _ = Yannakakis.gym ~p:4 q i in
      Instance.equal result (Eval.eval q i))

let prop_skew_resilient_correct =
  QCheck.Test.make ~name:"skew-resilient triangle is correct" ~count:25
    (QCheck.make
       QCheck.Gen.(
         let* seed = int_range 0 100_000 in
         let* fraction = oneofl [ 0.0; 0.3; 0.7 ] in
         let rng = Random.State.make [| seed |] in
         return
           (Workload.triangle_y_skew ~rng ~m:60 ~domain:20
              ~heavy_fraction:fraction)))
    (fun i ->
      let result, _, _ = Multi_round.skew_resilient_triangle ~p:8 i in
      Instance.equal result (Eval.eval Examples.q2_triangle i))

let prop_kst_matches_sequential =
  QCheck.Test.make ~name:"KST = sequential evaluation" ~count:40
    (QCheck.triple
       (QCheck.make
          QCheck.Gen.(
            let* seed = int_range 0 100_000 in
            let* fraction = oneofl [ 0.0; 0.3; 0.7 ] in
            let rng = Random.State.make [| seed |] in
            return
              (Workload.triangle_y_skew ~rng ~m:60 ~domain:20
                 ~heavy_fraction:fraction)))
       (QCheck.make QCheck.Gen.(int_range 1 12))
       (QCheck.make QCheck.Gen.(oneofl [ None; Some 2; Some 6 ])))
    (fun (i, p, threshold) ->
      let result, _, _ = Kst.run ?threshold ~p Examples.q2_triangle i in
      Instance.equal result (Eval.eval Examples.q2_triangle i))

let () =
  Alcotest.run "lamp_mpc"
    [
      ( "cluster",
        [
          Alcotest.test_case "partition" `Quick test_cluster_partition;
          Alcotest.test_case "round" `Quick test_cluster_round;
          Alcotest.test_case "bad destination" `Quick test_cluster_bad_destination;
          Alcotest.test_case "epsilon" `Quick test_stats_epsilon;
        ] );
      ( "skew",
        [
          Alcotest.test_case "heavy hitters" `Quick test_heavy_hitters;
          Alcotest.test_case "degrees" `Quick test_degrees;
        ] );
      ( "repartition join",
        [
          Alcotest.test_case "correct" `Quick test_repartition_correct;
          Alcotest.test_case "skew-free load" `Quick test_repartition_skew_free_load;
          Alcotest.test_case "skewed load" `Quick test_repartition_skewed_load;
        ] );
      ( "grid join",
        [
          Alcotest.test_case "correct" `Quick test_grid_correct;
          Alcotest.test_case "skew resilient" `Quick test_grid_skew_resilient;
        ] );
      ( "shares",
        [
          Alcotest.test_case "enumeration" `Quick test_shares_enumeration;
          Alcotest.test_case "replication" `Quick test_shares_replication;
          Alcotest.test_case "optimal triangle" `Quick test_shares_optimal_triangle;
          Alcotest.test_case "lp rounded" `Quick test_shares_lp_rounded;
          Alcotest.test_case "join budget" `Quick test_shares_objectives_differ;
        ] );
      ( "hypercube",
        [
          Alcotest.test_case "triangle correct" `Quick test_hypercube_triangle_correct;
          Alcotest.test_case "load bound" `Quick test_hypercube_load_bound;
          Alcotest.test_case "two atoms" `Quick test_hypercube_two_atoms;
        ] );
      ( "multi round",
        [
          Alcotest.test_case "cascade correct" `Quick test_cascade_triangle_correct;
          Alcotest.test_case "skew-resilient, no skew" `Quick
            test_skew_resilient_correct_no_skew;
          Alcotest.test_case "skew-resilient, skewed" `Quick
            test_skew_resilient_correct_skewed;
          Alcotest.test_case "beats one round" `Quick
            test_skew_resilient_beats_one_round;
        ] );
      ( "yannakakis",
        [
          Alcotest.test_case "matches eval" `Quick test_yannakakis_matches_eval;
          Alcotest.test_case "cyclic raises" `Quick test_yannakakis_cyclic_raises;
          Alcotest.test_case "reduction report" `Quick test_reduction_report;
          Alcotest.test_case "gym correct" `Quick test_gym_correct;
          Alcotest.test_case "gym star" `Quick test_gym_star;
        ] );
      ( "kst",
        [
          Alcotest.test_case "triangle, skew-free" `Quick
            test_kst_triangle_skew_free;
          Alcotest.test_case "triangle, skewed" `Quick test_kst_triangle_skewed;
          Alcotest.test_case "4-cycle, Zipf" `Quick test_kst_four_cycle_zipf;
          Alcotest.test_case "clique" `Quick test_kst_clique;
          Alcotest.test_case "constants/repeated vars" `Quick
            test_kst_constants_repeated;
          Alcotest.test_case "p = 1" `Quick test_kst_single_server;
          Alcotest.test_case "deterministic" `Quick test_kst_deterministic;
          Alcotest.test_case "load vs hypercube" `Quick
            test_kst_load_vs_hypercube;
          Alcotest.test_case "hypercube wcoj backend identical" `Quick
            test_hypercube_wcoj_strategy_identical;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_hypercube_matches_sequential;
            prop_repartition_matches_sequential;
            prop_yannakakis_matches_eval;
            prop_gym_matches_eval;
            prop_skew_resilient_correct;
            prop_kst_matches_sequential;
          ] );
    ]
