(* lamp.serve: wire codecs, resource pool, quotas, plan cache, and the
   headline property — a loopback server answers every query with
   results (and MPC statistics) bit-identical to the direct library
   call, on both execution backends. *)

open Lamp_relational
module Codec = Lamp_jobs.Codec
module Executor = Lamp_runtime.Executor
module Pool = Lamp_runtime.Pool
module Eval = Lamp_cq.Eval
module Parser = Lamp_cq.Parser
module Stats = Lamp_mpc.Stats
module Wire = Lamp_serve.Wire
module Rpool = Lamp_serve.Rpool
module Quota = Lamp_serve.Quota
module Cache = Lamp_serve.Cache
module Server = Lamp_serve.Server
module Client = Lamp_serve.Client
module Resilient = Lamp_serve.Resilient

let instance = Alcotest.testable Instance.pp Instance.equal
let stats_t = Alcotest.testable Stats.pp (fun (a : Stats.t) b -> a = b)

(* ------------------------------------------------------------------ *)
(* Wire codecs                                                         *)

let sample_stats : Stats.t =
  {
    p = 4;
    initial_max = 7;
    rounds = [ { max_received = 3; total_received = 9 } ];
    recoveries =
      [
        {
          round = 1;
          crashed = 1;
          replayed = 5;
          retransmitted = 2;
          duplicates = 1;
          retries = 0;
          speculated = 1;
        };
      ];
  }

let sample_facts =
  [
    Fact.of_list "R" [ Value.int 1; Value.str "a" ];
    Fact.of_list "S" [];
    Fact.of_list "T" [ Value.str "x\000y" ];
  ]

let sample_requests : Wire.request list =
  [
    Hello { client = "c1"; version = Wire.protocol_version };
    Prepare { instance = "main"; query = "H(x) <- R(x,y)" };
    Execute { instance = "main"; plan = Id 42; mode = Local };
    Execute
      { instance = "m"; plan = Adhoc "H() <- R(x,x)"; mode = Hypercube { p = 8 } };
    Execute { instance = "m"; plan = Id 1; mode = Repartition { p = 3 } };
    Execute { instance = "m"; plan = Id 1; mode = Grid { p = 9 } };
    Ingest { instance = "main"; facts = sample_facts };
    Ingest { instance = "empty"; facts = [] };
    Stats;
    Health;
    Metrics;
    Trace_dump { limit = 128 };
    Traced
      {
        trace = 0x1234;
        span = 7;
        req = Execute { instance = "main"; plan = Id 42; mode = Local };
      };
    Traced { trace = 0; span = 0; req = Health };
    Keyed { key = 17; req = Ingest { instance = "main"; facts = sample_facts } };
    Keyed
      { key = 0; req = Prepare { instance = "m"; query = "H(x) <- R(x,y)" } };
    Traced
      {
        trace = 9;
        span = 1;
        req =
          Keyed
            {
              key = 3;
              req = Execute { instance = "main"; plan = Id 1; mode = Local };
            };
      };
  ]

let sample_server_stats : Wire.server_stats =
  {
    sessions = 3;
    active_requests = 1;
    executor_in_flight = 0;
    pool_workers = 2;
    plan_cache_size = 4;
    plan_cache_hits = 99;
    plan_cache_misses = 1;
    handle_pools = [ ("main", 1, 2) ];
    requests_served = 100;
    rejected = 2;
    throttled = 1;
    uptime_s = 12.5;
    deduped = 4;
    shed = 6;
    reaped = 1;
  }

let sample_responses : Wire.response list =
  [
    Hello_ok { server = "lamp"; version = 1 };
    Prepared { id = 7; cached = true; atoms = 3 };
    Batch sample_facts;
    Batch [];
    Done { facts = 12; stats = None };
    Done { facts = 0; stats = Some sample_stats };
    Ingested { added = 5 };
    Stats_reply sample_server_stats;
    Healthy;
    Error { code = Bad_request; message = "nope" };
    Error { code = Rejected; message = "" };
    Error { code = Throttled; message = "slow down" };
    Error { code = Failed; message = "engine exploded" };
    Error { code = Overloaded { retry_after_s = 0.25 }; message = "busy" };
    Error { code = Corrupt_frame; message = "checksum mismatch" };
    Metrics_reply "# TYPE lamp_serve_requests counter\n# EOF\n";
    Trace_reply
      [
        {
          sp_name = "serve.request";
          sp_cat = "serve";
          sp_tid = 0;
          sp_t = 0.25;
          sp_dur = 0.125;
        };
      ];
    Trace_reply [];
  ]

let test_wire_roundtrip () =
  List.iter
    (fun req ->
      Alcotest.(check bool)
        "request round-trips" true
        (Wire.request_of_string (Wire.request_to_string req) = req))
    sample_requests;
  List.iter
    (fun resp ->
      Alcotest.(check bool)
        "response round-trips" true
        (Wire.response_of_string (Wire.response_to_string resp) = resp))
    sample_responses

let test_wire_hostile () =
  (* Every strict prefix of every encoding must raise Corrupt; so must
     a bad leading tag. Decoders never escape with another exception. *)
  let check_prefixes enc decode =
    for len = 0 to String.length enc - 1 do
      match decode (String.sub enc 0 len) with
      | _ -> Alcotest.failf "prefix of length %d decoded" len
      | exception Codec.Corrupt _ -> ()
      | exception e ->
        Alcotest.failf "prefix of length %d escaped as %s" len
          (Printexc.to_string e)
    done
  in
  List.iter
    (fun req ->
      check_prefixes (Wire.request_to_string req) Wire.request_of_string)
    sample_requests;
  List.iter
    (fun resp ->
      check_prefixes (Wire.response_to_string resp) Wire.response_of_string)
    sample_responses;
  (try
     ignore (Wire.request_of_string "\255garbage");
     Alcotest.fail "bad tag must raise"
   with Codec.Corrupt _ -> ());
  (* Trailing bytes are schema drift, not silence. *)
  (try
     ignore
       (Wire.response_of_string (Wire.response_to_string Wire.Healthy ^ "x"));
     Alcotest.fail "trailing bytes must raise"
   with Codec.Corrupt _ -> ());
  (* The trace envelope must not nest. *)
  (try
     ignore
       (Wire.request_of_string
          (Wire.request_to_string
             (Traced
                {
                  trace = 1;
                  span = 2;
                  req = Traced { trace = 3; span = 4; req = Health };
                })));
     Alcotest.fail "nested Traced must raise"
   with Codec.Corrupt _ -> ());
  (* Neither may the idempotency envelope: the canonical nesting is
     Traced{Keyed{op}}, every other composition is rejected. *)
  let reject name req =
    try
      ignore (Wire.request_of_string (Wire.request_to_string req));
      Alcotest.failf "%s must raise" name
    with Codec.Corrupt _ -> ()
  in
  reject "nested Keyed" (Keyed { key = 1; req = Keyed { key = 2; req = Stats } });
  reject "Traced inside Keyed"
    (Keyed { key = 1; req = Traced { trace = 1; span = 0; req = Stats } });
  reject "Hello inside Keyed"
    (Keyed { key = 1; req = Hello { client = "x"; version = 3 } })

let test_wire_versioning () =
  (* A v1 session's stats layout omits uptime_s: shorter on the wire,
     decoded back with uptime 0. A v2 encoding keeps the float. *)
  let resp : Wire.response = Stats_reply sample_server_stats in
  let v1 = Wire.response_to_string ~version:1 resp in
  let v2 = Wire.response_to_string ~version:2 resp in
  Alcotest.(check bool) "v1 encoding is strictly shorter" true
    (String.length v1 < String.length v2);
  (match Wire.response_of_string ~version:1 v1 with
  | Stats_reply s ->
    Alcotest.(check (float 0.0)) "v1 decode defaults uptime" 0.0 s.uptime_s;
    Alcotest.(check bool) "v1 decode keeps the rest" true
      ({
         s with
         uptime_s = sample_server_stats.uptime_s;
         deduped = sample_server_stats.deduped;
         shed = sample_server_stats.shed;
         reaped = sample_server_stats.reaped;
       }
      = sample_server_stats)
  | _ -> Alcotest.fail "expected Stats_reply");
  (match Wire.response_of_string ~version:2 v2 with
  | Stats_reply s ->
    Alcotest.(check (float 0.0)) "v2 keeps uptime"
      sample_server_stats.uptime_s s.uptime_s
  | _ -> Alcotest.fail "expected Stats_reply");
  (* Decoding with the wrong dialect must fail loudly, not silently
     misread: v2 bytes under a v1 decoder leave the float unconsumed. *)
  (try
     ignore (Wire.response_of_string ~version:1 v2);
     Alcotest.fail "v2 bytes under v1 decoder must raise"
   with Codec.Corrupt _ -> ());
  (try
     ignore (Wire.response_of_string ~version:2 v1);
     Alcotest.fail "v1 bytes under v2 decoder must raise"
   with Codec.Corrupt _ -> ());
  (* v3 stats carry the dedup/shed/reap counters; a v2 encoding drops
     them (decoded back as zero). *)
  let v3 = Wire.response_to_string ~version:3 resp in
  Alcotest.(check bool) "v2 stats encoding is strictly shorter than v3" true
    (String.length v2 < String.length v3);
  (match Wire.response_of_string ~version:3 v3 with
  | Stats_reply s ->
    Alcotest.(check bool) "v3 round-trips the hardening counters" true
      (s = sample_server_stats)
  | _ -> Alcotest.fail "expected Stats_reply");
  (match Wire.response_of_string ~version:2 v2 with
  | Stats_reply s ->
    Alcotest.(check bool) "v2 decode zeroes v3 counters" true
      (s.deduped = 0 && s.shed = 0 && s.reaped = 0)
  | _ -> Alcotest.fail "expected Stats_reply");
  (* The v3-only error codes downgrade for old sessions: Overloaded is
     a capacity refusal like Throttled, Corrupt_frame a Bad_request. *)
  let downgrade code expect =
    let enc =
      Wire.response_to_string ~version:2 (Error { code; message = "m" })
    in
    match Wire.response_of_string ~version:2 enc with
    | Error { code = got; _ } ->
      Alcotest.(check bool) "downgraded code" true (got = expect)
    | _ -> Alcotest.fail "expected Error"
  in
  downgrade (Overloaded { retry_after_s = 0.5 }) Wire.Throttled;
  downgrade Corrupt_frame Wire.Bad_request;
  (* And survive verbatim on a v3 session. *)
  match
    Wire.response_of_string ~version:3
      (Wire.response_to_string ~version:3
         (Error { code = Overloaded { retry_after_s = 0.5 }; message = "m" }))
  with
  | Error { code = Overloaded { retry_after_s }; _ } ->
    Alcotest.(check (float 0.0)) "retry_after survives v3" 0.5 retry_after_s
  | _ -> Alcotest.fail "expected Overloaded error"

(* ------------------------------------------------------------------ *)
(* Checksummed framing                                                 *)

let with_socketpair f =
  let a, b = Unix.socketpair ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let payload = String.init 3000 (fun i -> Char.chr (i mod 256)) in
      Wire.write_frame a payload;
      Alcotest.(check string) "payload round-trips" payload (Wire.read_frame b);
      Wire.write_frame a "";
      Alcotest.(check string) "empty frame round-trips" "" (Wire.read_frame b))

let test_frame_checksum () =
  (* Flip one byte of the payload in flight: the checksum catches it
     and the reader raises Corrupt instead of decoding garbage. *)
  with_socketpair (fun a b ->
      let payload = "hello, hostile network" in
      Wire.write_frame a payload;
      (* Re-read what was sent, corrupt the last byte, re-send. *)
      let frame = Bytes.create (16 + String.length payload) in
      let n = Unix.read b frame 0 (Bytes.length frame) in
      Alcotest.(check int) "whole frame read" (Bytes.length frame) n;
      let j = Bytes.length frame - 1 in
      Bytes.set frame j (Char.chr (Char.code (Bytes.get frame j) lxor 0x20));
      ignore (Unix.write a frame 0 (Bytes.length frame));
      match Wire.read_frame b with
      | _ -> Alcotest.fail "corrupted frame must not decode"
      | exception Codec.Corrupt _ -> ())

let test_frame_too_large () =
  with_socketpair (fun a b ->
      Wire.write_frame a (String.make 100 'x');
      (* The length check fires before any payload allocation. *)
      match Wire.read_frame ~max_len:64 b with
      | _ -> Alcotest.fail "oversized frame must be refused"
      | exception Wire.Too_large { len; limit } ->
        Alcotest.(check int) "reported length" 100 len;
        Alcotest.(check int) "reported limit" 64 limit)

let test_frame_deadline () =
  with_socketpair (fun _a b ->
      let t0 = Unix.gettimeofday () in
      match Wire.read_frame ~deadline:(t0 +. 0.05) b with
      | _ -> Alcotest.fail "nothing was sent"
      | exception Wire.Timed_out ->
        Alcotest.(check bool) "deadline honoured promptly" true
          (Unix.gettimeofday () -. t0 < 2.0))

let test_frame_closed () =
  with_socketpair (fun a b ->
      Unix.close a;
      match Wire.read_frame b with
      | _ -> Alcotest.fail "peer is gone"
      | exception Wire.Closed -> ())

(* ------------------------------------------------------------------ *)
(* Resource pool                                                       *)

let test_rpool_reuse_and_dispose () =
  let live = ref 0 in
  let built = ref 0 in
  let p =
    Rpool.create ~max_size:2
      ~dispose:(fun _ -> decr live)
      (fun () ->
        incr live;
        incr built;
        !built)
  in
  let first = Rpool.use p (fun r -> r) in
  let second = Rpool.use p (fun r -> r) in
  Alcotest.(check int) "sequential uses share one resource" first second;
  Alcotest.(check int) "one allocation" 1 (Rpool.created p);
  Alcotest.(check int) "one idle" 1 (Rpool.idle p);
  (* A raising user poisons its resource: disposed, not reused. *)
  (try Rpool.use p (fun _ -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "poisoned resource disposed" 0 (Rpool.size p);
  Alcotest.(check int) "live tracks dispose" 0 !live;
  let third = Rpool.use p (fun r -> r) in
  Alcotest.(check bool) "fresh resource after poison" true (third > second)

let test_rpool_validation () =
  let version = ref 0 in
  let p =
    Rpool.create ~max_size:2
      ~validate:(fun (v, _) -> v = !version)
      (fun () -> (!version, ()))
  in
  Rpool.use p ignore;
  Alcotest.(check int) "handle pooled" 1 (Rpool.size p);
  incr version;
  Rpool.use p (fun (v, ()) ->
      Alcotest.(check int) "stale handle replaced on checkout" 1 v);
  Alcotest.(check int) "replacement, not accumulation" 1 (Rpool.size p);
  Alcotest.(check int) "two allocations total" 2 (Rpool.created p)

let test_rpool_blocks_at_capacity () =
  let p = Rpool.create ~max_size:1 (fun () -> ()) in
  let order = Queue.create () in
  let m = Mutex.create () in
  let push x = Mutex.protect m (fun () -> Queue.push x order) in
  let holder =
    Thread.create
      (fun () ->
        Rpool.use p (fun () ->
            push `Held;
            Thread.delay 0.05;
            push `Releasing))
      ()
  in
  Thread.delay 0.02;
  Rpool.use p (fun () -> push `Second);
  Thread.join holder;
  Alcotest.(check bool)
    "second use waited for the release" true
    (List.of_seq (Queue.to_seq order) = [ `Held; `Releasing; `Second ])

let test_rpool_trim_and_drain () =
  let live = ref 0 in
  let p =
    Rpool.create ~max_size:4
      ~dispose:(fun _ -> decr live)
      (fun () ->
        incr live;
        ref ())
  in
  (* Force several concurrent checkouts so the pool grows. *)
  let barrier = Mutex.create () in
  Mutex.lock barrier;
  let ts =
    List.init 3 (fun _ ->
        Thread.create
          (fun () ->
            Rpool.use p (fun _ ->
                Mutex.lock barrier;
                Mutex.unlock barrier))
          ())
  in
  while Rpool.in_use p < 3 do
    Thread.delay 0.005
  done;
  Mutex.unlock barrier;
  List.iter Thread.join ts;
  Alcotest.(check int) "pool grew to demand" 3 (Rpool.size p);
  Rpool.trim p ~keep:1;
  Alcotest.(check int) "trim evicts idle beyond keep" 1 (Rpool.size p);
  Alcotest.(check int) "dispose ran on eviction" 1 !live;
  Rpool.drain p;
  Alcotest.(check int) "drain empties the pool" 0 (Rpool.size p);
  Alcotest.(check int) "every resource disposed" 0 !live;
  try
    Rpool.use p ignore;
    Alcotest.fail "use after drain must raise"
  with Rpool.Draining -> ()

let test_rpool_drain_races_checkout () =
  (* Drain while a checkout is in flight: the drain must wait for the
     borrowed resource to come back, then dispose it — never dispose a
     resource out from under its user, never leak it. *)
  let live = ref 0 in
  let p =
    Rpool.create ~max_size:2
      ~dispose:(fun _ -> decr live)
      (fun () ->
        incr live;
        ref ())
  in
  let holding = Semaphore.Binary.make false in
  let release = Semaphore.Binary.make false in
  let user =
    Thread.create
      (fun () ->
        Rpool.use p (fun r ->
            Semaphore.Binary.release holding;
            (* Wait until the main thread has started the drain. *)
            Semaphore.Binary.acquire release;
            (* The resource must still be alive while borrowed. *)
            !r))
      ()
  in
  Semaphore.Binary.acquire holding;
  Alcotest.(check int) "resource checked out" 1 (Rpool.in_use p);
  let drainer = Thread.create (fun () -> Rpool.drain p) () in
  Thread.delay 0.02;
  Semaphore.Binary.release release;
  Thread.join user;
  Thread.join drainer;
  Alcotest.(check int) "drain disposed the returned resource" 0 !live;
  Alcotest.(check int) "nothing in use after the race" 0 (Rpool.in_use p);
  (* A checkout racing the drain loses cleanly: Draining, not a hang. *)
  try
    Rpool.use p ignore;
    Alcotest.fail "post-drain use must raise"
  with Rpool.Draining -> ()

(* ------------------------------------------------------------------ *)
(* Quota                                                               *)

let test_quota_bucket () =
  let now = ref 0.0 in
  let q = Quota.create ~clock:(fun () -> !now) ~rate:1.0 ~burst:2.0 () in
  Alcotest.(check bool) "burst 1" true (Quota.try_take q);
  Alcotest.(check bool) "burst 2" true (Quota.try_take q);
  Alcotest.(check bool) "bucket empty" false (Quota.try_take q);
  now := 0.5;
  Alcotest.(check bool) "half a token is not one" false (Quota.try_take q);
  now := 1.5;
  Alcotest.(check bool) "refilled at rate" true (Quota.try_take q);
  now := 100.0;
  Alcotest.(check (float 0.001)) "refill caps at burst" 2.0 (Quota.tokens q);
  now := 99.0;
  Alcotest.(check bool) "clock going backwards never debits" true
    (Quota.tokens q >= 2.0)

let test_quota_clock_jumps () =
  let now = ref 0.0 in
  let q = Quota.create ~clock:(fun () -> !now) ~rate:1.0 ~burst:4.0 () in
  Alcotest.(check bool) "take" true (Quota.try_take q);
  Alcotest.(check bool) "take" true (Quota.try_take q);
  (* A huge backwards step (ntp slew, VM restore) grants nothing and
     freezes nothing: refills resume from the new mark immediately. *)
  now := -1.0e6;
  Alcotest.(check (float 0.001)) "backwards jump refills nothing" 2.0
    (Quota.tokens q);
  now := -1.0e6 +. 1.0;
  Alcotest.(check (float 0.001)) "refill resumes after resync" 3.0
    (Quota.tokens q);
  (* A huge forward jump clamps at burst — no free burst beyond it,
     no accumulation into a later debit. *)
  now := 1.0e15;
  Alcotest.(check (float 0.001)) "forward jump clamps at burst" 4.0
    (Quota.tokens q);
  for _ = 1 to 4 do
    Alcotest.(check bool) "burst spends" true (Quota.try_take q)
  done;
  Alcotest.(check bool) "nothing beyond burst" false (Quota.try_take q);
  (* Even an infinite clock cannot overflow the bucket, and a nan
     clock neither poisons the mark nor grants tokens. *)
  now := infinity;
  Alcotest.(check (float 0.001)) "infinite clock clamps" 4.0 (Quota.tokens q);
  now := nan;
  let t = Quota.tokens q in
  Alcotest.(check bool) "nan clock yields a finite count" true
    (Float.is_finite t && t <= 4.0)

(* ------------------------------------------------------------------ *)
(* Dedup window                                                        *)

module Dedup = Lamp_serve.Dedup

let test_dedup_replay_and_abort () =
  let d = Dedup.create ~capacity:4 in
  (* First acquire claims the execution; commit records it; the retry
     replays without running. *)
  (match Dedup.acquire d ~client:"c" ~key:1 ~digest:11 with
  | `Run tok -> Dedup.commit d tok [ Wire.Ingested { added = 2 } ]
  | `Replay _ | `Mismatch -> Alcotest.fail "fresh key must run");
  (match Dedup.acquire d ~client:"c" ~key:1 ~digest:11 with
  | `Replay [ Wire.Ingested { added } ] ->
    Alcotest.(check int) "replayed response" 2 added
  | `Replay _ -> Alcotest.fail "wrong recorded responses"
  | `Run _ | `Mismatch -> Alcotest.fail "committed key must replay");
  Alcotest.(check int) "replay counted" 1 (Dedup.hits d);
  (* Same key, different client: a distinct entry. *)
  (match Dedup.acquire d ~client:"other" ~key:1 ~digest:11 with
  | `Run tok -> Dedup.abort d tok
  | `Replay _ | `Mismatch ->
    Alcotest.fail "client names partition the window");
  (* An aborted execution leaves no record: the retry re-executes. *)
  (match Dedup.acquire d ~client:"other" ~key:1 ~digest:11 with
  | `Run tok -> Dedup.commit d tok [ Wire.Healthy ]
  | `Replay _ | `Mismatch -> Alcotest.fail "aborted key must re-run");
  Alcotest.(check int) "two finished entries held" 2 (Dedup.length d)

let test_dedup_digest_mismatch () =
  let d = Dedup.create ~capacity:4 in
  (match Dedup.acquire d ~client:"c" ~key:1 ~digest:100 with
  | `Run tok -> Dedup.commit d tok [ Wire.Ingested { added = 5 } ]
  | `Replay _ | `Mismatch -> Alcotest.fail "fresh key must run");
  (* The same key claimed for different request bytes — a restarted
     client reusing its counter — must never see the recorded answer. *)
  (match Dedup.acquire d ~client:"c" ~key:1 ~digest:200 with
  | `Mismatch -> ()
  | `Replay _ -> Alcotest.fail "foreign request must not replay"
  | `Run _ -> Alcotest.fail "colliding key must not claim the entry");
  (* The mismatch neither evicted nor corrupted the entry: the real
     retry still replays. *)
  (match Dedup.acquire d ~client:"c" ~key:1 ~digest:100 with
  | `Replay [ Wire.Ingested { added = 5 } ] -> ()
  | _ -> Alcotest.fail "original record must survive a mismatch");
  (* A pending entry rejects a different digest without blocking. *)
  match Dedup.acquire d ~client:"c" ~key:2 ~digest:100 with
  | `Run tok -> (
    (match Dedup.acquire d ~client:"c" ~key:2 ~digest:300 with
    | `Mismatch -> ()
    | `Replay _ | `Run _ -> Alcotest.fail "pending mismatch must reject");
    Dedup.abort d tok)
  | `Replay _ | `Mismatch -> Alcotest.fail "fresh key must run"

let test_dedup_eviction () =
  let d = Dedup.create ~capacity:2 in
  let finish key =
    match Dedup.acquire d ~client:"c" ~key ~digest:key with
    | `Run tok -> Dedup.commit d tok [ Wire.Healthy ]
    | `Replay _ | `Mismatch -> Alcotest.fail "fresh key must run"
  in
  finish 1;
  finish 2;
  finish 3;
  Alcotest.(check int) "window bounded" 2 (Dedup.length d);
  (* Key 1 was evicted (oldest finished): a retry re-executes — the
     window is a bounded at-most-once guarantee, not an infinite log. *)
  match Dedup.acquire d ~client:"c" ~key:1 ~digest:1 with
  | `Run tok -> Dedup.abort d tok
  | `Replay _ | `Mismatch -> Alcotest.fail "evicted key must run again"

let test_dedup_concurrent_retry_blocks () =
  let d = Dedup.create ~capacity:4 in
  let first_running = Semaphore.Binary.make false in
  let release = Semaphore.Binary.make false in
  let replayed = ref [] in
  let runner =
    Thread.create
      (fun () ->
        match Dedup.acquire d ~client:"c" ~key:9 ~digest:9 with
        | `Run tok ->
          Semaphore.Binary.release first_running;
          Semaphore.Binary.acquire release;
          Dedup.commit d tok [ Wire.Ingested { added = 7 } ]
        | `Replay _ | `Mismatch -> Alcotest.fail "first acquire must run")
      ()
  in
  Semaphore.Binary.acquire first_running;
  let retrier =
    Thread.create
      (fun () ->
        (* The key is pending: this blocks until the commit, then
           replays — never a second execution. *)
        match Dedup.acquire d ~client:"c" ~key:9 ~digest:9 with
        | `Replay rs -> replayed := rs
        | `Run _ | `Mismatch ->
          Alcotest.fail "concurrent retry must not re-run")
      ()
  in
  Thread.delay 0.02;
  Semaphore.Binary.release release;
  Thread.join runner;
  Thread.join retrier;
  match !replayed with
  | [ Wire.Ingested { added = 7 } ] -> ()
  | _ -> Alcotest.fail "retry saw the committed record"

(* ------------------------------------------------------------------ *)
(* Plan cache (LRU)                                                    *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 () in
  let build v () = v in
  Alcotest.(check (pair int bool)) "miss builds" (1, false)
    (Cache.find_or_add c "a" (build 1));
  Alcotest.(check (pair int bool)) "hit returns cached" (1, true)
    (Cache.find_or_add c "a" (build 99));
  ignore (Cache.find_or_add c "b" (build 2));
  (* Touch "a" so "b" is the LRU entry, then overflow. *)
  ignore (Cache.find c "a");
  ignore (Cache.find_or_add c "c" (build 3));
  Alcotest.(check bool) "LRU entry evicted" true (Cache.find c "b" = None);
  Alcotest.(check bool) "recent entry survives" true (Cache.find c "a" = Some 1);
  Alcotest.(check int) "bounded" 2 (Cache.length c);
  Alcotest.(check int) "evictions counted" 1 (Cache.evictions c);
  let dropped = Cache.remove_if c (fun k -> k = "a") in
  Alcotest.(check int) "remove_if reports drops" 1 dropped;
  Alcotest.(check bool) "invalidated" true (Cache.find c "a" = None);
  Alcotest.(check bool) "hits and misses tracked" true
    (Cache.hits c > 0 && Cache.misses c > 0)

(* ------------------------------------------------------------------ *)
(* Loopback server: equivalence with the library                       *)

(* A seeded instance rich enough for every query family: binary R/S/T
   for the join/triangle queries, E for the single-edge-relation ones,
   and loops R(x,x) so the fig-1 boolean queries are satisfiable. *)
let seed_data =
  let facts = ref [] in
  let add f = facts := f :: !facts in
  for i = 0 to 19 do
    add (Fact.of_list "R" [ Value.int i; Value.int ((i + 1) mod 20) ]);
    add (Fact.of_list "S" [ Value.int i; Value.int ((i + 3) mod 20) ]);
    add (Fact.of_list "T" [ Value.int ((i * 7) mod 20); Value.int i ]);
    add (Fact.of_list "E" [ Value.int i; Value.int ((i + 1) mod 20) ]);
    add (Fact.of_list "E" [ Value.int i; Value.int ((i * 3) mod 20) ]);
    add (Fact.of_list "T" [ Value.int i ]);
    add (Fact.of_list "S" [ Value.int i ])
  done;
  add (Fact.of_list "R" [ Value.int 5; Value.int 5 ]);
  add (Fact.of_list "R" [ Value.int 12; Value.int 12 ]);
  Instance.of_facts !facts

(* fig 1 (Example 4.11) and the e1–e5 query families, as wire text. *)
let fig1_queries =
  [
    ("fig1 q1", "H() <- S(x), R(x,x), T(x)");
    ("fig1 q2", "H() <- R(x,x), T(x)");
    ("fig1 q3", "H() <- S(x), R(x,y), T(y)");
    ("fig1 q4", "H() <- R(x,y), T(y)");
  ]

let engine_queries =
  [
    ("join", "H(x,y,z) <- R(x,y), S(y,z)");
    ("triangle", "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
    ("two-path", "H(x,z) <- E(x,y), E(y,z)");
    ( "distinct triangles",
      "H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, x != z" );
    ("open triangle", "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
  ]

let sock_counter = ref 0

let with_server ?config backend f =
  let executor, cleanup =
    match backend with
    | `Seq -> (Executor.sequential, ignore)
    | `Pool n ->
      let p = Pool.create ~domains:n () in
      (Executor.pool p, fun () -> Pool.shutdown p)
  in
  incr sock_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lamp_serve_%d_%d.sock" (Unix.getpid ()) !sock_counter)
  in
  let server = Server.create ?config ~executor () in
  Server.add_instance server ~name:"main" seed_data;
  Server.listen_unix server ~path;
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      cleanup ();
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f server ~executor ~path)

let with_client path f =
  let c = Client.connect_unix ~path () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let encode_instance i =
  let w = Codec.writer () in
  Codec.w_instance w i;
  Codec.contents w

let check_bit_identical name expected got =
  Alcotest.check instance name expected got;
  Alcotest.(check bool)
    (name ^ ": canonical encodings agree") true
    (String.equal (encode_instance expected) (encode_instance got))

let run_equivalence backend () =
  with_server backend (fun server ~executor ~path ->
      ignore server;
      with_client path (fun c ->
          ignore (Client.hello ~client:"equiv" c);
          (* Local mode against Cq.Eval, ad-hoc and prepared. *)
          List.iter
            (fun (name, qtext) ->
              let expected = Eval.eval (Parser.query qtext) seed_data in
              let got, stats =
                Client.execute c ~instance:"main" (Adhoc qtext)
              in
              check_bit_identical (name ^ " adhoc") expected got;
              Alcotest.(check bool) (name ^ ": local has no MPC stats") true
                (stats = None);
              let prepared = Client.prepare c ~instance:"main" ~query:qtext in
              Alcotest.(check bool)
                (name ^ ": adhoc warmed the plan cache") true prepared.cached;
              let got_id, _ =
                Client.execute c ~instance:"main" (Id prepared.id)
              in
              check_bit_identical (name ^ " by plan id") expected got_id)
            (fig1_queries @ engine_queries);
          (* MPC modes: result and Stats.t equal the library call. *)
          let hypercube_q = "H(x,y,z) <- R(x,y), S(y,z), T(z,x)" in
          let expected, estats, _shares =
            Lamp_mpc.Hypercube.run ~executor ~p:4
              (Parser.query hypercube_q) seed_data
          in
          let got, gstats =
            Client.execute c ~instance:"main" ~mode:(Hypercube { p = 4 })
              (Adhoc hypercube_q)
          in
          check_bit_identical "hypercube result" expected got;
          Alcotest.(check (option stats_t))
            "hypercube stats" (Some estats) gstats;
          let expected, estats =
            Lamp_mpc.Repartition_join.run ~executor ~p:3 seed_data
          in
          let got, gstats =
            Client.execute c ~instance:"main" ~mode:(Repartition { p = 3 })
              (Adhoc "H() <- R(x,y)")
          in
          check_bit_identical "repartition result" expected got;
          Alcotest.(check (option stats_t))
            "repartition stats" (Some estats) gstats;
          let expected, estats =
            Lamp_mpc.Grid_join.run ~executor ~p:4 seed_data
          in
          let got, gstats =
            Client.execute c ~instance:"main" ~mode:(Grid { p = 4 })
              (Adhoc "H() <- R(x,y)")
          in
          check_bit_identical "grid result" expected got;
          Alcotest.(check (option stats_t)) "grid stats" (Some estats) gstats))

let test_equivalence_seq = run_equivalence `Seq
let test_equivalence_pool = run_equivalence (`Pool 2)

let test_prepare_cache_and_ids () =
  with_server `Seq (fun server ~executor:_ ~path ->
      with_client path (fun c ->
          let q = "H(x,z) <- E(x,y), E(y,z)" in
          let p1 = Client.prepare c ~instance:"main" ~query:q in
          Alcotest.(check bool) "first prepare compiles" false p1.cached;
          let p2 = Client.prepare c ~instance:"main" ~query:q in
          Alcotest.(check bool) "second prepare hits" true p2.cached;
          Alcotest.(check int) "same plan id" p1.id p2.id;
          Alcotest.(check int) "two join steps" 2 p1.atoms;
          (* Another connection shares the compiled plan. *)
          with_client path (fun c2 ->
              let p3 = Client.prepare c2 ~instance:"main" ~query:q in
              Alcotest.(check bool) "cache is cross-session" true p3.cached;
              Alcotest.(check int) "same id cross-session" p1.id p3.id);
          let s = Server.stats server in
          Alcotest.(check bool) "stats expose cache traffic" true
            (s.plan_cache_hits >= 2 && s.plan_cache_misses >= 1)))

let test_ingest_invalidation () =
  with_server `Seq (fun _server ~executor:_ ~path ->
      with_client path (fun c ->
          let q = "H(x,y,z) <- R(x,y), S(y,z)" in
          let before, _ = Client.execute c ~instance:"main" (Adhoc q) in
          let fresh =
            [
              Fact.of_list "R" [ Value.int 100; Value.int 101 ];
              Fact.of_list "S" [ Value.int 101; Value.int 102 ];
            ]
          in
          let added = Client.ingest c ~instance:"main" fresh in
          Alcotest.(check int) "both facts were new" 2 added;
          Alcotest.(check int) "re-ingest adds nothing" 0
            (Client.ingest c ~instance:"main" fresh);
          let updated = Instance.union seed_data (Instance.of_facts fresh) in
          let expected = Eval.eval (Parser.query q) updated in
          let got, _ = Client.execute c ~instance:"main" (Adhoc q) in
          check_bit_identical "post-ingest result" expected got;
          Alcotest.(check bool) "ingest reached the result" true
            (Instance.cardinal got > Instance.cardinal before)))

let test_admission_reject () =
  let config = { Server.default_config with max_inflight = 0 } in
  with_server ~config `Seq (fun _server ~executor:_ ~path ->
      with_client path (fun c ->
          (* Health and stats bypass admission; engine work does not. *)
          Alcotest.(check bool) "health is always on" true (Client.health c);
          match Client.execute c ~instance:"main" (Adhoc "H() <- R(x,y)") with
          | _ -> Alcotest.fail "full server must fast-reject"
          | exception Client.Server_error (Rejected, _) -> ()))

let test_quota_throttle () =
  let config = { Server.default_config with quota = Some (0.001, 2.0) } in
  with_server ~config `Seq (fun _server ~executor:_ ~path ->
      with_client path (fun c ->
          ignore (Client.hello ~client:"greedy" c);
          let q = "H() <- R(x,y)" in
          ignore (Client.execute c ~instance:"main" (Adhoc q));
          ignore (Client.execute c ~instance:"main" (Adhoc q));
          (match Client.execute c ~instance:"main" (Adhoc q) with
          | _ -> Alcotest.fail "burst exhausted, must throttle"
          | exception Client.Server_error (Throttled, _) -> ());
          (* Another client identity has its own bucket. *)
          with_client path (fun c2 ->
              ignore (Client.hello ~client:"modest" c2);
              ignore (Client.execute c2 ~instance:"main" (Adhoc q)))))

let test_errors_and_health () =
  with_server `Seq (fun _server ~executor:_ ~path ->
      with_client path (fun c ->
          (match Client.execute c ~instance:"nope" (Adhoc "H() <- R(x,y)") with
          | _ -> Alcotest.fail "unknown instance"
          | exception Client.Server_error (Bad_request, _) -> ());
          (match Client.execute c ~instance:"main" (Adhoc "H( <- R(x") with
          | _ -> Alcotest.fail "parse error"
          | exception Client.Server_error (Bad_request, _) -> ());
          (match Client.execute c ~instance:"main" (Id 424242) with
          | _ -> Alcotest.fail "unknown plan id"
          | exception Client.Server_error (Bad_request, _) -> ());
          (* The session survives every error above. *)
          Alcotest.(check bool) "still healthy" true (Client.health c)))

let test_protocol_negotiation () =
  with_server `Seq (fun _server ~executor:_ ~path ->
      (* An old v1 client: the session settles on 1 and every reply is
         v1-layout — stats still decode, with uptime defaulted. *)
      with_client path (fun c ->
          ignore (Client.hello ~client:"old" ~version:1 c);
          Alcotest.(check int) "negotiated down to 1" 1 (Client.version c);
          let s = Client.stats c in
          Alcotest.(check (float 0.0)) "v1 stats have no uptime" 0.0 s.uptime_s;
          Alcotest.(check bool) "v1 session still works" true (Client.health c));
      (* A futuristic client: the server answers with its own version. *)
      with_client path (fun c ->
          ignore (Client.hello ~client:"new" ~version:99 c);
          Alcotest.(check int) "capped at the server's version"
            Wire.protocol_version (Client.version c);
          let s = Client.stats c in
          Alcotest.(check bool) "v2 stats carry uptime" true (s.uptime_s >= 0.0));
      (* Below the floor: rejected before the session starts. *)
      with_client path (fun c ->
          match Client.hello ~client:"ancient" ~version:0 c with
          | _ -> Alcotest.fail "version 0 must be rejected"
          | exception Client.Server_error (Bad_request, _) -> ()))

(* ------------------------------------------------------------------ *)
(* Hostile-network hardening                                           *)

let test_keyed_ingest_exactly_once () =
  with_server `Seq (fun server ~executor:_ ~path ->
      with_client path (fun c ->
          ignore (Client.hello ~client:"keyed" c);
          Alcotest.(check int) "v3 session" 3 (Client.version c);
          let fresh =
            [
              Fact.of_list "R" [ Value.int 500; Value.int 501 ];
              Fact.of_list "S" [ Value.int 501; Value.int 502 ];
            ]
          in
          let added = Client.ingest ~key:42 c ~instance:"main" fresh in
          Alcotest.(check int) "first keyed ingest applies" 2 added;
          (* The retry path: same client, same key. The server replays
             the recorded response — [added] repeats the original count
             instead of the 0 a re-execution would report. *)
          let again = Client.ingest ~key:42 c ~instance:"main" fresh in
          Alcotest.(check int) "replay repeats the original answer" 2 again;
          let s = Server.stats server in
          Alcotest.(check int) "dedup hit surfaced in stats" 1 s.deduped;
          (* A fresh key really re-executes (and finds nothing new). *)
          Alcotest.(check int) "fresh key re-executes" 0
            (Client.ingest ~key:43 c ~instance:"main" fresh);
          (* Replays survive a reconnect: the window is keyed by the
             hello client name, not the socket. *)
          with_client path (fun c2 ->
              ignore (Client.hello ~client:"keyed" c2);
              Alcotest.(check int) "replay across connections" 2
                (Client.ingest ~key:42 c2 ~instance:"main" fresh);
              (* A key reused for a *different* request — a restarted
                 client whose counter started over — is refused, never
                 answered with the recorded response of the other op. *)
              let other =
                [ Fact.of_list "R" [ Value.int 700; Value.int 701 ] ]
              in
              (match Client.ingest ~key:42 c2 ~instance:"main" other with
              | _ -> Alcotest.fail "key reuse must be refused"
              | exception Client.Server_error (Bad_request, _) -> ());
              (* The refusal applied nothing and kept the session. *)
              Alcotest.(check int) "refused ingest did not apply" 1
                (Client.ingest ~key:44 c2 ~instance:"main" other))))

let test_dedup_byte_cap () =
  (* Recorded dedup entries are size-capped: a keyed execute whose
     result stream encodes past [dedup_max_bytes] completes but is not
     remembered, so its retry re-executes (yielding the same answer —
     execute is read-only) instead of pinning the result set in the
     window. Small ops still replay. *)
  let config = { Server.default_config with dedup_max_bytes = 64 } in
  with_server ~config `Seq (fun server ~executor:_ ~path ->
      with_client path (fun c ->
          ignore (Client.hello ~client:"capped" c);
          let q = "H(x,y) <- E(x,y)" in
          let first, _ = Client.execute ~key:1 c ~instance:"main" (Adhoc q) in
          Alcotest.(check bool) "result is past the cap" true
            (Instance.cardinal first > 0);
          let again, _ = Client.execute ~key:1 c ~instance:"main" (Adhoc q) in
          check_bit_identical "re-execution matches" first again;
          let s = Server.stats server in
          Alcotest.(check int) "oversized entry was not recorded" 0 s.deduped;
          (* A compact keyed op under the same cap still replays. *)
          let fresh = [ Fact.of_list "R" [ Value.int 800; Value.int 801 ] ] in
          Alcotest.(check int) "small ingest applies" 1
            (Client.ingest ~key:2 c ~instance:"main" fresh);
          Alcotest.(check int) "small ingest replays" 1
            (Client.ingest ~key:2 c ~instance:"main" fresh);
          Alcotest.(check int) "replay surfaced in stats" 1
            (Server.stats server).deduped))

(* A hand-rolled wire-speaking server: answers hello at the version it
   is told to, then drops the connection on the first engine op it ever
   sees and serves every later one — the shape of "the request may have
   applied, the answer is gone". *)
let test_resilient_downgrade_refuses_ingest_retry () =
  incr sock_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lamp_fake_%d_%d.sock" (Unix.getpid ()) !sock_counter)
  in
  let srv = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Unix.bind srv (ADDR_UNIX path);
  Unix.listen srv 4;
  let stop = Atomic.make false in
  let ingests_seen = Atomic.make 0 in
  let dropped_once = Atomic.make false in
  let rec strip : Wire.request -> Wire.request = function
    | Traced { req; _ } | Keyed { key = _; req } -> strip req
    | r -> r
  in
  let serve_conn fd =
    let version = ref Wire.protocol_version in
    let rec loop () =
      match Wire.read_request fd with
      | Hello { version = v; _ } ->
        version := min v Wire.protocol_version;
        Wire.write_response ~version:!version fd
          (Hello_ok { server = "fake"; version = !version });
        loop ()
      | req -> (
        match strip req with
        | Ingest _ ->
          Atomic.incr ingests_seen;
          if Atomic.compare_and_set dropped_once false true then
            (* Drop mid-op: the client cannot know whether it applied. *)
            Unix.close fd
          else begin
            Wire.write_response ~version:!version fd (Ingested { added = 1 });
            loop ()
          end
        | _ ->
          Wire.write_response ~version:!version fd Healthy;
          loop ())
    in
    try loop () with
    | Wire.Closed | Unix.Unix_error _ | Lamp_jobs.Codec.Corrupt _ -> (
      try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let acceptor =
    Thread.create
      (fun () ->
        let rec go () =
          if not (Atomic.get stop) then begin
            (match Unix.select [ srv ] [] [] 0.05 with
            | [], _, _ -> ()
            | _ -> (
              match Unix.accept srv with
              | fd, _ -> ignore (Thread.create serve_conn fd)
              | exception Unix.Unix_error _ -> ())
            | exception Unix.Unix_error _ -> ());
            go ()
          end
        in
        go ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join acceptor;
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      let fresh = [ Fact.of_list "R" [ Value.int 1; Value.int 2 ] ] in
      let wrapper version =
        Resilient.create
          ~config:{ Resilient.default_config with max_attempts = 4 }
          ~client:"downgrade" ~hello_version:version (fun () ->
            Client.connect_unix ~timeout_s:2.0 ~path ())
      in
      (* On a v2 session the idempotency key cannot be carried: the
         wrapper must NOT retry the dropped ingest — the typed loss
         propagates and the server saw the op exactly once. *)
      let r2 = wrapper 2 in
      Fun.protect
        ~finally:(fun () -> Resilient.close r2)
        (fun () ->
          (match Resilient.ingest r2 ~instance:"main" fresh with
          | _ -> Alcotest.fail "pre-v3 ingest retry must be refused"
          | exception (Client.Connection_lost _ | Client.Timed_out _) -> ());
          Alcotest.(check int) "no at-least-once double-send" 1
            (Atomic.get ingests_seen);
          Alcotest.(check int) "no retry burned" 0 (Resilient.retries r2));
      (* The same drop on a v3 session is retried (the key makes the
         re-execution safe) and succeeds on the fresh connection. *)
      Atomic.set dropped_once false;
      Atomic.set ingests_seen 0;
      let r3 = wrapper 3 in
      Fun.protect
        ~finally:(fun () -> Resilient.close r3)
        (fun () ->
          Alcotest.(check int) "v3 retry completes the op" 1
            (Resilient.ingest r3 ~instance:"main" fresh);
          Alcotest.(check bool) "the retry really happened" true
            (Resilient.retries r3 >= 1
            && Atomic.get ingests_seen >= 2)))

let test_shedding_overload () =
  (* A negative watermark latches shedding after the first engine op
     (any wait estimate, even 0us on an uncontended engine, exceeds
     it): from then on, engine work is refused with a typed retry hint
     (except the 1-in-8 probe) while the control plane keeps
     answering. *)
  let config =
    {
      Server.default_config with
      shed_queue_us = Some (-1.0);
      shed_retry_after_s = 0.125;
    }
  in
  with_server ~config `Seq (fun server ~executor:_ ~path ->
      with_client path (fun c ->
          ignore (Client.hello ~client:"storm" c);
          let q = "H() <- R(x,y)" in
          ignore (Client.execute c ~instance:"main" (Adhoc q));
          let shed = ref 0 and served = ref 0 in
          for _ = 1 to 16 do
            match Client.execute c ~instance:"main" (Adhoc q) with
            | _ -> incr served
            | exception
                Client.Server_error (Overloaded { retry_after_s }, _) ->
              Alcotest.(check (float 0.0)) "configured retry hint" 0.125
                retry_after_s;
              incr shed
          done;
          Alcotest.(check bool) "most of the storm was shed" true (!shed >= 12);
          Alcotest.(check bool) "probes keep the engine observable" true
            (!served >= 1);
          Alcotest.(check bool) "control plane unaffected" true
            (Client.health c);
          let s = Server.stats server in
          Alcotest.(check int) "shed count surfaced" !shed s.shed))

let test_server_frame_limit () =
  (* A request frame past the server's limit is refused before
     allocation, with a typed reply, then the connection is dropped —
     the framing past an oversized announcement is unknowable. *)
  let config = { Server.default_config with max_frame = 256 } in
  with_server ~config `Seq (fun _server ~executor:_ ~path ->
      with_client path (fun c ->
          let big =
            List.init 64 (fun i ->
                Fact.of_list "R" [ Value.int i; Value.str (String.make 64 'x') ])
          in
          (match Client.ingest c ~instance:"main" big with
          | _ -> Alcotest.fail "oversized frame must be refused"
          | exception Client.Server_error (Corrupt_frame, _) -> ());
          (* The server hung up after the refusal. *)
          match Client.health c with
          | _ -> Alcotest.fail "connection must be gone"
          | exception (Client.Connection_lost _ | Client.Timed_out _) -> ()))

let test_client_typed_errors () =
  (* A peer that accepts and immediately hangs up: the exchange raises
     Connection_lost (never a raw Unix_error) and the client value is
     dead afterwards. *)
  incr sock_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lamp_serve_%d_%d.sock" (Unix.getpid ()) !sock_counter)
  in
  let srv = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Unix.bind srv (ADDR_UNIX path);
  Unix.listen srv 4;
  let mode = ref `Hangup in
  let stop = Atomic.make false in
  let muted = ref [] in
  (* Poll with select so the acceptor can be stopped: a blocked
     accept(2) is not woken by closing the listener from another
     thread. *)
  let acceptor =
    Thread.create
      (fun () ->
        let rec go () =
          if not (Atomic.get stop) then begin
            (match Unix.select [ srv ] [] [] 0.05 with
            | [], _, _ -> ()
            | _ -> (
              match Unix.accept srv with
              | fd, _ -> (
                match !mode with
                | `Hangup -> Unix.close fd
                | `Mute -> muted := fd :: !muted)
              | exception Unix.Unix_error _ -> ())
            | exception Unix.Unix_error _ -> ());
            go ()
          end
        in
        go ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join acceptor;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        !muted;
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      let c = Client.connect_unix ~path () in
      (match Client.health c with
      | _ -> Alcotest.fail "peer hung up"
      | exception Client.Connection_lost _ -> ());
      Alcotest.(check bool) "fatal error closes the client" true
        (Client.closed c);
      (match Client.health c with
      | _ -> Alcotest.fail "closed client must refuse"
      | exception Client.Connection_lost _ -> ());
      (* A peer that accepts and never answers: the per-request
         deadline fires as Timed_out. *)
      mode := `Mute;
      let c = Client.connect_unix ~timeout_s:0.1 ~path () in
      let t0 = Unix.gettimeofday () in
      (match Client.health c with
      | _ -> Alcotest.fail "mute peer cannot answer"
      | exception Client.Timed_out _ -> ());
      Alcotest.(check bool) "deadline honoured promptly" true
        (Unix.gettimeofday () -. t0 < 2.0);
      Alcotest.(check bool) "timeout closes the client" true (Client.closed c);
      (* Nobody listening at all: a typed connect failure. *)
      match Client.connect_unix ~path:(path ^ ".nowhere") () with
      | _ -> Alcotest.fail "nothing listens there"
      | exception Client.Connection_lost _ -> ())

let test_session_reaper () =
  let config =
    {
      Server.default_config with
      reap_after_s = Some 0.1;
      idle_timeout_s = Some 10.0;
    }
  in
  with_server ~config `Seq (fun server ~executor:_ ~path ->
      with_client path (fun c ->
          ignore (Client.hello ~client:"sleepy" c);
          (* Go idle past the reap threshold: the reaper shuts the
             session's socket and the next call finds it gone. *)
          Thread.delay 0.7;
          (match Client.health c with
          | _ -> Alcotest.fail "stalled session must be reaped"
          | exception (Client.Connection_lost _ | Client.Timed_out _) -> ());
          let s = Server.stats server in
          Alcotest.(check bool) "reap surfaced in stats" true (s.reaped >= 1)))

module Net = Lamp_faults.Net

let test_chaos_proxy_resilient () =
  (* The headline robustness property, in miniature: a client talking
     through a hostile proxy — resets, truncations, stalls, corrupted
     bytes, refused connects — still produces answers bit-identical to
     the direct library call, with keyed ingests applied exactly once. *)
  let config =
    { Server.default_config with read_timeout_s = Some 5.0 }
  in
  with_server ~config `Seq (fun server ~executor:_ ~path ->
      ignore server;
      incr sock_counter;
      let proxy_path =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "lamp_chaos_%d_%d.sock" (Unix.getpid ())
             !sock_counter)
      in
      let plan =
        Net.make ~seed:7
          {
            Net.chaos with
            refuse = 0.1;
            reset = 0.15;
            truncate = 0.1;
            flip = 0.15;
            stall = 0.0;
            trickle = 0.0;
          }
      in
      let proxy =
        Net.Proxy.start ~plan
          ~listen:(ADDR_UNIX proxy_path)
          ~upstream:(ADDR_UNIX path) ()
      in
      Fun.protect
        ~finally:(fun () ->
          Net.Proxy.stop proxy;
          try Unix.unlink proxy_path with Unix.Unix_error _ -> ())
        (fun () ->
          let r =
            Resilient.create
              ~config:
                {
                  Resilient.default_config with
                  max_attempts = 12;
                  budget_s = Some 30.0;
                }
              ~client:"chaos" (fun () ->
                Client.connect_unix ~timeout_s:2.0 ~path:proxy_path ())
          in
          Fun.protect
            ~finally:(fun () -> Resilient.close r)
            (fun () ->
              List.iter
                (fun (name, qtext) ->
                  let expected = Eval.eval (Parser.query qtext) seed_data in
                  let got, _ = Resilient.execute r ~instance:"main" (Adhoc qtext) in
                  check_bit_identical ("chaos " ^ name) expected got)
                (fig1_queries @ engine_queries);
              (* Keyed ingest through the same chaos: exactly once. *)
              let fresh =
                [
                  Fact.of_list "R" [ Value.int 900; Value.int 901 ];
                  Fact.of_list "S" [ Value.int 901; Value.int 902 ];
                ]
              in
              let added = Resilient.ingest r ~instance:"main" fresh in
              Alcotest.(check int) "keyed ingest applied exactly once" 2 added;
              (* The proxy really did interfere. *)
              Alcotest.(check bool) "faults were injected" true
                (List.exists (fun (_, n) -> n > 0) (Net.Proxy.injected proxy)))))

let test_live_scrape () =
  Lamp_obs.Trace.set_mode (Ring 4096);
  Lamp_obs.Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Lamp_obs.Trace.set_enabled false;
      Lamp_obs.Trace.set_mode Full;
      Lamp_obs.Trace.reset ())
    (fun () ->
      with_server `Seq (fun _server ~executor:_ ~path ->
          with_client path (fun c ->
              ignore (Client.hello ~client:"scraper" c);
              let q = "H(x,z) <- E(x,y), E(y,z)" in
              for _ = 1 to 5 do
                ignore (Client.execute c ~instance:"main" (Adhoc q))
              done;
              let text = Client.metrics c in
              Alcotest.(check bool) "exposition is terminated" true
                (String.length text >= 6
                && String.sub text (String.length text - 6) 6 = "# EOF\n");
              let samples = Lamp_obs.Export.parse_openmetrics text in
              let value name =
                List.find_map
                  (fun (n, _, v) -> if n = name then Some v else None)
                  samples
              in
              (match value "lamp_serve_requests_total" with
              | Some v ->
                Alcotest.(check bool) "request counter matches load" true
                  (v >= 6.0)
              | None -> Alcotest.fail "lamp_serve_requests_total missing");
              (match value "lamp_serve_sessions" with
              | Some v ->
                Alcotest.(check bool) "sessions gauge sees the scraper" true
                  (v >= 1.0)
              | None -> Alcotest.fail "lamp_serve_sessions gauge missing");
              (match value "lamp_serve_uptime_s" with
              | Some v -> Alcotest.(check bool) "uptime gauge" true (v >= 0.0)
              | None -> Alcotest.fail "lamp_serve_uptime_s gauge missing");
              (* Zero-valued counters must be exposed on a scrape. *)
              (match value "lamp_serve_rejected_total" with
              | Some v -> Alcotest.(check (float 0.0)) "zeros emitted" 0.0 v
              | None -> Alcotest.fail "zero counter hidden from scrape");
              (* The server recorded spans for the traced work; the
                 trace op ships them back. *)
              let spans = Client.trace_dump ~limit:64 c in
              Alcotest.(check bool) "serve spans visible" true
                (List.exists
                   (fun (s : Wire.span_info) -> s.sp_name = "serve.request")
                   spans))))

let test_stop_drains_pools () =
  let executor = Executor.sequential in
  let server = Server.create ~executor () in
  Server.add_instance server ~name:"main" seed_data;
  incr sock_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lamp_serve_%d_%d.sock" (Unix.getpid ()) !sock_counter)
  in
  Server.listen_unix server ~path;
  with_client path (fun c ->
      ignore (Client.execute c ~instance:"main" (Adhoc "H() <- R(x,y)"));
      let s = Client.stats c in
      Alcotest.(check bool) "a handle is pooled while serving" true
        (List.exists (fun (_, _, idle) -> idle > 0) s.handle_pools));
  Server.stop server;
  let s = Server.stats server in
  List.iter
    (fun (name, in_use, idle) ->
      Alcotest.(check int) (name ^ ": no handle in use") 0 in_use;
      Alcotest.(check int) (name ^ ": no idle handle survives") 0 idle)
    s.handle_pools;
  Alcotest.(check int) "no session survives" 0 s.sessions;
  (try Unix.unlink path with Unix.Unix_error _ -> ())

let test_concurrent_clients_match () =
  with_server (`Pool 2) (fun _server ~executor:_ ~path ->
      let q = "H(x,z) <- E(x,y), E(y,z)" in
      let expected = Eval.eval (Parser.query q) seed_data in
      let failures = Atomic.make 0 in
      let ts =
        List.init 16 (fun i ->
            Thread.create
              (fun () ->
                try
                  with_client path (fun c ->
                      ignore (Client.hello ~client:(string_of_int i) c);
                      for _ = 1 to 5 do
                        let got, _ =
                          Client.execute c ~instance:"main" (Adhoc q)
                        in
                        if not (Instance.equal expected got) then
                          Atomic.incr failures
                      done)
                with _ -> Atomic.incr failures)
              ())
      in
      List.iter Thread.join ts;
      Alcotest.(check int) "every concurrent result matched" 0
        (Atomic.get failures))

let () =
  Alcotest.run "lamp.serve"
    [
      ( "wire",
        [
          Alcotest.test_case "round-trips" `Quick test_wire_roundtrip;
          Alcotest.test_case "hostile input" `Quick test_wire_hostile;
          Alcotest.test_case "version dialects" `Quick test_wire_versioning;
        ] );
      ( "framing",
        [
          Alcotest.test_case "round-trips" `Quick test_frame_roundtrip;
          Alcotest.test_case "checksum catches corruption" `Quick
            test_frame_checksum;
          Alcotest.test_case "length limit precedes allocation" `Quick
            test_frame_too_large;
          Alcotest.test_case "read deadline" `Quick test_frame_deadline;
          Alcotest.test_case "peer gone" `Quick test_frame_closed;
        ] );
      ( "rpool",
        [
          Alcotest.test_case "reuse and dispose" `Quick
            test_rpool_reuse_and_dispose;
          Alcotest.test_case "validation retires stale handles" `Quick
            test_rpool_validation;
          Alcotest.test_case "blocks at capacity" `Quick
            test_rpool_blocks_at_capacity;
          Alcotest.test_case "trim and drain" `Quick test_rpool_trim_and_drain;
          Alcotest.test_case "drain races a checkout" `Quick
            test_rpool_drain_races_checkout;
        ] );
      ( "quota",
        [
          Alcotest.test_case "token bucket" `Quick test_quota_bucket;
          Alcotest.test_case "clock jumps" `Quick test_quota_clock_jumps;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "replay and abort" `Quick
            test_dedup_replay_and_abort;
          Alcotest.test_case "digest mismatch rejects" `Quick
            test_dedup_digest_mismatch;
          Alcotest.test_case "bounded window evicts" `Quick test_dedup_eviction;
          Alcotest.test_case "concurrent retry blocks" `Quick
            test_dedup_concurrent_retry_blocks;
        ] );
      ( "cache",
        [ Alcotest.test_case "LRU semantics" `Quick test_cache_lru ] );
      ( "server",
        [
          Alcotest.test_case "library equivalence (seq)" `Quick
            test_equivalence_seq;
          Alcotest.test_case "library equivalence (pool)" `Quick
            test_equivalence_pool;
          Alcotest.test_case "prepared plans are shared" `Quick
            test_prepare_cache_and_ids;
          Alcotest.test_case "ingest invalidates" `Quick
            test_ingest_invalidation;
          Alcotest.test_case "admission fast-reject" `Quick
            test_admission_reject;
          Alcotest.test_case "per-client quotas" `Quick test_quota_throttle;
          Alcotest.test_case "errors keep the session" `Quick
            test_errors_and_health;
          Alcotest.test_case "protocol negotiation" `Quick
            test_protocol_negotiation;
          Alcotest.test_case "live metrics and trace scrape" `Quick
            test_live_scrape;
          Alcotest.test_case "stop drains every pool" `Quick
            test_stop_drains_pools;
          Alcotest.test_case "concurrent clients agree" `Quick
            test_concurrent_clients_match;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "keyed ingest exactly once" `Quick
            test_keyed_ingest_exactly_once;
          Alcotest.test_case "dedup records are size-capped" `Quick
            test_dedup_byte_cap;
          Alcotest.test_case "pre-v3 session refuses unsafe retry" `Quick
            test_resilient_downgrade_refuses_ingest_retry;
          Alcotest.test_case "overload sheds with retry hint" `Quick
            test_shedding_overload;
          Alcotest.test_case "frame limit is typed and fatal" `Quick
            test_server_frame_limit;
          Alcotest.test_case "client failures are typed" `Quick
            test_client_typed_errors;
          Alcotest.test_case "stalled sessions are reaped" `Quick
            test_session_reaper;
          Alcotest.test_case "chaos proxy end-to-end" `Quick
            test_chaos_proxy_resilient;
        ] );
    ]
