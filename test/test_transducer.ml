open Lamp_relational
open Lamp_cq
open Lamp_distribution
open Lamp_transducer

let inst = Instance.of_string

let check_ok what = function
  | Ok () -> ()
  | Error f -> Alcotest.failf "%s: %s" what (Fmt.str "%a" Calm.pp_failure f)

let check_error what = function
  | Ok () -> Alcotest.failf "%s: expected a failure" what
  | Error _ -> ()

let triangles_eval = Eval.eval Examples.triangles_distinct
let open_triangle_eval = Eval.eval Examples.open_triangle

let graph =
  inst "E(1,2). E(2,3). E(3,1). E(3,4). E(4,5). E(5,3). E(1,4)"

let distributions p i =
  [
    Horizontal.round_robin ~p i;
    Horizontal.full_replication ~p i;
    Horizontal.random_split ~rng:(Random.State.make [| 3 |]) ~p i;
  ]

(* ------------------------------------------------------------------ *)
(* Network mechanics                                                   *)

let test_network_basics () =
  let program = Programs.monotone_broadcast ~name:"tri" ~eval:triangles_eval in
  let net = Network.create program (Horizontal.round_robin ~p:3 graph) in
  Alcotest.(check int) "3 nodes" 3 (Network.size net);
  Alcotest.(check int) "no messages yet" 0 (Network.messages_in_flight net);
  (* First heartbeat triggers the broadcast to the other two nodes. *)
  Network.heartbeat net 0;
  let sent = Instance.cardinal (Network.node net 0).Network.local in
  Alcotest.(check int) "local facts broadcast twice" (2 * sent)
    (Network.messages_in_flight net)

let test_oblivious_rejects_all_dependent () =
  let program = Programs.coordinated ~name:"coord" ~eval:triangles_eval in
  Alcotest.check_raises "needs All" (Invalid_argument "")
    (fun () ->
      try
        ignore
          (Network.create ~oblivious:true program
             (Horizontal.round_robin ~p:2 graph))
      with Invalid_argument _ -> raise (Invalid_argument ""))

let test_silent_run_reads_nothing () =
  let program = Programs.monotone_broadcast ~name:"tri" ~eval:triangles_eval in
  let net = Network.create program (Horizontal.full_replication ~p:3 graph) in
  ignore (Scheduler.run_silent net);
  Alcotest.(check int) "no deliveries" 0 (Network.deliveries net)

let test_by_policy_coverage () =
  let policy =
    Policy.make ~name:"r-only" ~nodes:[ 0; 1 ] (fun _ f -> Fact.rel f = "R")
  in
  Alcotest.check_raises "uncovered facts" (Invalid_argument "")
    (fun () ->
      try ignore (Horizontal.by_policy policy (inst "R(1,2). S(3,4)"))
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* Theorem 5.3: monotone queries, broadcast strategy                   *)

let test_monotone_broadcast_consistent () =
  let program = Programs.monotone_broadcast ~name:"tri" ~eval:triangles_eval in
  check_ok "triangles eventually consistent"
    (Calm.consistent
       ~make:(fun dist -> Network.create program dist)
       ~expected:(triangles_eval graph)
       (distributions 3 graph))

let test_monotone_broadcast_coordination_free () =
  let program = Programs.monotone_broadcast ~name:"tri" ~eval:triangles_eval in
  check_ok "coordination-free on full replication"
    (Calm.coordination_free
       ~make:(fun dist -> Network.create program dist)
       ~expected:(triangles_eval graph)
       (Horizontal.full_replication ~p:3 graph))

let test_monotone_broadcast_wrong_for_nonmonotone () =
  (* Example 5.1(2): the naive strategy is unsound for open triangles —
     a node outputs an open triangle that the full database closes. *)
  let program =
    Programs.monotone_broadcast ~name:"open" ~eval:open_triangle_eval
  in
  check_error "open triangles break the naive strategy"
    (Calm.consistent
       ~make:(fun dist -> Network.create program dist)
       ~expected:(open_triangle_eval graph)
       [ Horizontal.round_robin ~p:3 graph ])

(* ------------------------------------------------------------------ *)
(* Example 5.1(2): coordination computes everything                    *)

let test_coordinated_computes_open_triangles () =
  let program = Programs.coordinated ~name:"open" ~eval:open_triangle_eval in
  check_ok "coordination handles non-monotone queries"
    (Calm.consistent
       ~make:(fun dist -> Network.create program dist)
       ~expected:(open_triangle_eval graph)
       (distributions 3 graph))

let test_coordinated_not_coordination_free () =
  let program = Programs.coordinated ~name:"open" ~eval:open_triangle_eval in
  check_error "silent run cannot know completion"
    (Calm.coordination_free
       ~make:(fun dist -> Network.create program dist)
       ~expected:(open_triangle_eval graph)
       (Horizontal.full_replication ~p:3 graph))

(* ------------------------------------------------------------------ *)
(* Theorem 5.8: policy-aware networks and Mdistinct                    *)

let e_schema = Schema.of_list [ ("E", 2) ]

let covering_policy p universe =
  (* Every fact the responsibility of exactly one node, via hashing. *)
  Policy.make ~universe ~name:"hash-facts" ~nodes:(Node.range p) (fun n f ->
      Fact.hash f mod p = n)

let test_policy_aware_open_triangles () =
  (* Example 5.4: the per-query program is complete under any covering
     policy. *)
  let program = Programs.open_triangle_policy_aware ~name:"open" in
  let policy = covering_policy 3 (Instance.adom graph) in
  check_ok "Example 5.4: open triangles, policy-aware"
    (Calm.consistent
       ~make:(fun dist -> Network.create ~policy program dist)
       ~expected:(open_triangle_eval graph)
       [ Horizontal.by_policy policy graph; Horizontal.full_replication ~p:3 graph ])

let test_generic_distinct_strategy () =
  (* The generic distinct-complete strategy completes when one node is
     responsible for every fact (value neighbourhoods co-located). *)
  let program =
    Programs.policy_aware_distinct ~name:"open" ~schema:e_schema
      ~eval:open_triangle_eval
  in
  let policy =
    Policy.make ~universe:(Instance.adom graph) ~name:"owner0" ~nodes:[ 0; 1; 2 ]
      (fun n _ -> n = 0)
  in
  check_ok "single-owner policy"
    (Calm.consistent
       ~make:(fun dist -> Network.create ~policy program dist)
       ~expected:(open_triangle_eval graph)
       [ Horizontal.by_policy policy graph ])

let test_policy_aware_coordination_free () =
  (* Ideal distribution: everyone holds everything and the broadcast-all
     policy makes everyone responsible for everything. Both the
     per-query program and the generic strategy are coordination-free. *)
  let ideal_policy =
    Policy.broadcast_all ~universe:(Instance.adom graph) ~name:"bc" ~p:3 ()
  in
  List.iter
    (fun program ->
      check_ok "F1 witness"
        (Calm.coordination_free
           ~make:(fun dist -> Network.create ~policy:ideal_policy program dist)
           ~expected:(open_triangle_eval graph)
           (Horizontal.full_replication ~p:3 graph)))
    [
      Programs.open_triangle_policy_aware ~name:"open";
      Programs.policy_aware_distinct ~name:"open-generic" ~schema:e_schema
        ~eval:open_triangle_eval;
    ]

(* ------------------------------------------------------------------ *)
(* Theorem 5.12: domain-guided networks and Mdisjoint                  *)

let comp_tc_eval i =
  Lamp_datalog.Eval.query Lamp_datalog.Canned.complement_tc ~output:"OUT" i

let two_components = inst "E(a,b). E(b,c). E(x,y). E(y,x)"

let assignment_hash p v = Node.Set.singleton (Value.hash v mod p)

let test_domain_guided_comp_tc () =
  let program = Programs.domain_guided_disjoint ~name:"¬TC" ~eval:comp_tc_eval in
  let p = 3 in
  let assignment = assignment_hash p in
  let policy =
    Policy.domain_guided ~universe:(Instance.adom two_components)
      ~name:"dg" ~nodes:(Node.range p) assignment
  in
  check_ok "¬TC on domain-guided network"
    (Calm.consistent
       ~make:(fun dist -> Network.create ~assignment program dist)
       ~expected:(comp_tc_eval two_components)
       [
         Horizontal.by_policy policy two_components;
         Horizontal.full_replication ~p two_components;
       ])

let test_domain_guided_coordination_free () =
  let program = Programs.domain_guided_disjoint ~name:"¬TC" ~eval:comp_tc_eval in
  let all_nodes = Node.Set.of_list [ 0; 1; 2 ] in
  check_ok "F2 witness"
    (Calm.coordination_free
       ~make:(fun dist ->
         Network.create ~assignment:(fun _ -> all_nodes) program dist)
       ~expected:(comp_tc_eval two_components)
       (Horizontal.full_replication ~p:3 two_components))

let test_win_move_domain_guided () =
  (* Win–move distributes over components (Section 5.3 / [59, 17]): the
     true facts of its well-founded model are computed coordination-free
     on domain-guided networks. *)
  let eval i =
    fst (Lamp_datalog.Wellfounded.query Lamp_datalog.Canned.win_move ~output:"Win" i)
  in
  let game = inst "Move(a,b). Move(b,a). Move(b,c). Move(x,y)" in
  let program = Programs.domain_guided_disjoint ~name:"win-move" ~eval in
  let p = 2 in
  let assignment = assignment_hash p in
  let policy =
    Policy.domain_guided ~universe:(Instance.adom game) ~name:"dg"
      ~nodes:(Node.range p) assignment
  in
  check_ok "win-move eventually consistent"
    (Calm.consistent
       ~make:(fun dist -> Network.create ~assignment program dist)
       ~expected:(eval game)
       [ Horizontal.by_policy policy game; Horizontal.full_replication ~p game ]);
  let all_nodes = Node.Set.of_list [ 0; 1 ] in
  check_ok "win-move coordination-free"
    (Calm.coordination_free
       ~make:(fun dist ->
         Network.create ~assignment:(fun _ -> all_nodes) program dist)
       ~expected:(eval game)
       (Horizontal.full_replication ~p game))

(* ------------------------------------------------------------------ *)
(* Oblivious networks: the A-classes (Figure 2's Ai = Fi)              *)

let test_oblivious_f0 () =
  (* The F0/F1/F2 programs never read All, so they run unchanged on
     oblivious networks — the content of A0 = F0 etc. *)
  let program = Programs.monotone_broadcast ~name:"tri" ~eval:triangles_eval in
  check_ok "A0: oblivious broadcast"
    (Calm.consistent
       ~make:(fun d -> Network.create ~oblivious:true program d)
       ~expected:(triangles_eval graph)
       (distributions 3 graph))

let test_oblivious_f1 () =
  let program = Programs.open_triangle_policy_aware ~name:"open" in
  let policy = covering_policy 3 (Instance.adom graph) in
  check_ok "A1: oblivious policy-aware"
    (Calm.consistent
       ~make:(fun d -> Network.create ~oblivious:true ~policy program d)
       ~expected:(open_triangle_eval graph)
       [ Horizontal.by_policy policy graph ])

let test_oblivious_f2 () =
  let program = Programs.domain_guided_disjoint ~name:"nTC" ~eval:comp_tc_eval in
  let p = 3 in
  let assignment = assignment_hash p in
  let policy =
    Policy.domain_guided ~universe:(Instance.adom two_components) ~name:"dg"
      ~nodes:(Node.range p) assignment
  in
  check_ok "A2: oblivious domain-guided"
    (Calm.consistent
       ~make:(fun d -> Network.create ~oblivious:true ~assignment program d)
       ~expected:(comp_tc_eval two_components)
       [ Horizontal.by_policy policy two_components ])

(* ------------------------------------------------------------------ *)
(* Economical broadcasting ([37])                                      *)

let triangle_rst = Examples.q2_triangle
let triangle_rst_eval = Eval.eval triangle_rst

let rst_instance =
  (* One real triangle and many facts that join with nothing. *)
  inst
    "R(1,2). S(2,3). T(3,1). R(10,11). R(12,13). S(20,21). S(22,23). T(30,31). \
     T(32,33). R(14,15). S(24,25). T(34,35)"

let test_semijoin_broadcast_correct () =
  let program =
    Programs.semijoin_broadcast ~name:"econ" ~query:triangle_rst
  in
  check_ok "economical broadcast computes the triangle query"
    (Calm.consistent
       ~make:(fun d -> Network.create program d)
       ~expected:(triangle_rst_eval rst_instance)
       [
         Horizontal.round_robin ~p:3 rst_instance;
         Horizontal.random_split ~rng:(Random.State.make [| 4 |]) ~p:3 rst_instance;
       ])

let test_semijoin_broadcast_coordination_free () =
  let program = Programs.semijoin_broadcast ~name:"econ" ~query:triangle_rst in
  check_ok "economical broadcast is coordination-free"
    (Calm.coordination_free
       ~make:(fun d -> Network.create program d)
       ~expected:(triangle_rst_eval rst_instance)
       (Horizontal.full_replication ~p:3 rst_instance))

let test_semijoin_broadcast_economical () =
  let run program =
    let net =
      Network.create program (Horizontal.round_robin ~p:3 rst_instance)
    in
    ignore (Scheduler.drain ~schedule:Scheduler.Fifo net);
    (Network.data_deliveries net, Network.output net)
  in
  let naive_deliveries, naive_out =
    run (Programs.monotone_broadcast ~name:"naive" ~eval:triangle_rst_eval)
  in
  let econ_deliveries, econ_out =
    run (Programs.semijoin_broadcast ~name:"econ" ~query:triangle_rst)
  in
  Alcotest.(check bool) "same output" true (Instance.equal naive_out econ_out);
  (* Of the 12 facts only the 3 forming the triangle are ever shipped as
     data; the projection control messages carry join keys only. *)
  Alcotest.(check bool)
    (Printf.sprintf "economical %d < naive %d data messages" econ_deliveries
       naive_deliveries)
    true
    (econ_deliveries * 2 <= naive_deliveries)

let test_semijoin_broadcast_rejects () =
  Alcotest.check_raises "self-join rejected" (Invalid_argument "")
    (fun () ->
      try
        ignore
          (Programs.semijoin_broadcast ~name:"x" ~query:Examples.full_triangle_e)
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* The delivery adversary: duplication + adversarial reordering         *)

(* Every coordination-free program must agree across Random_fair, Fifo,
   Lifo AND the duplicating/reordering adversary: the adversary never
   drops a message, so it stays within the model's nondeterminism — the
   exact envelope the CALM theorem quantifies over. *)
let adversarial_schedules =
  Calm.default_schedules @ [ Scheduler.adversary 7; Scheduler.adversary 13 ]

let test_adversary_monotone_broadcast () =
  let program = Programs.monotone_broadcast ~name:"tri" ~eval:triangles_eval in
  check_ok "broadcast agrees under duplication and reordering"
    (Calm.consistent ~schedules:adversarial_schedules
       ~make:(fun dist -> Network.create program dist)
       ~expected:(triangles_eval graph)
       (distributions 3 graph))

let test_adversary_policy_aware () =
  let program = Programs.open_triangle_policy_aware ~name:"open" in
  let policy = covering_policy 3 (Instance.adom graph) in
  check_ok "policy-aware program agrees under the adversary"
    (Calm.consistent ~schedules:adversarial_schedules
       ~make:(fun dist -> Network.create ~policy program dist)
       ~expected:(open_triangle_eval graph)
       [ Horizontal.by_policy policy graph; Horizontal.full_replication ~p:3 graph ])

let test_adversary_generic_distinct () =
  let program =
    Programs.policy_aware_distinct ~name:"open" ~schema:e_schema
      ~eval:open_triangle_eval
  in
  let policy =
    Policy.make ~universe:(Instance.adom graph) ~name:"owner0" ~nodes:[ 0; 1; 2 ]
      (fun n _ -> n = 0)
  in
  check_ok "generic distinct strategy agrees under the adversary"
    (Calm.consistent ~schedules:adversarial_schedules
       ~make:(fun dist -> Network.create ~policy program dist)
       ~expected:(open_triangle_eval graph)
       [ Horizontal.by_policy policy graph ])

let test_adversary_domain_guided () =
  let program = Programs.domain_guided_disjoint ~name:"¬TC" ~eval:comp_tc_eval in
  let p = 3 in
  let assignment = assignment_hash p in
  let policy =
    Policy.domain_guided ~universe:(Instance.adom two_components) ~name:"dg"
      ~nodes:(Node.range p) assignment
  in
  check_ok "¬TC agrees under the adversary"
    (Calm.consistent ~schedules:adversarial_schedules
       ~make:(fun dist -> Network.create ~assignment program dist)
       ~expected:(comp_tc_eval two_components)
       [
         Horizontal.by_policy policy two_components;
         Horizontal.full_replication ~p two_components;
       ])

let test_adversary_semijoin_broadcast () =
  let program = Programs.semijoin_broadcast ~name:"econ" ~query:triangle_rst in
  check_ok "economical broadcast agrees under the adversary"
    (Calm.consistent ~schedules:adversarial_schedules
       ~make:(fun d -> Network.create program d)
       ~expected:(triangle_rst_eval rst_instance)
       [ Horizontal.round_robin ~p:3 rst_instance ])

let test_adversary_coordinated () =
  (* Coordination also survives the adversary — eventual delivery still
     holds — it just is not coordination-free, which
     test_coordinated_not_coordination_free flags above. *)
  let program = Programs.coordinated ~name:"open" ~eval:open_triangle_eval in
  check_ok "coordinated program still computes under the adversary"
    (Calm.consistent
       ~schedules:[ Scheduler.adversary 7 ]
       ~make:(fun dist -> Network.create program dist)
       ~expected:(open_triangle_eval graph)
       (distributions 3 graph))

let test_did_not_quiesce_structured () =
  let program = Programs.monotone_broadcast ~name:"tri" ~eval:triangles_eval in
  let net = Network.create program (Horizontal.round_robin ~p:3 graph) in
  match Scheduler.drain ~max_transitions:2 net with
  | _ -> Alcotest.fail "expected Did_not_quiesce"
  | exception Scheduler.Did_not_quiesce { transitions; in_flight } ->
    Alcotest.(check int) "transition budget consumed" 2 transitions;
    Alcotest.(check bool) "in-flight messages reported" true (in_flight > 0)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let graph_arb =
  QCheck.make
    ~print:(Fmt.str "%a" Instance.pp)
    QCheck.Gen.(
      let* seed = int_range 0 100_000 in
      let rng = Random.State.make [| seed |] in
      let* edges = int_range 0 10 in
      return (Generate.random_graph ~rng ~nodes:5 ~edges ()))

let prop_monotone_broadcast_schedule_independent =
  QCheck.Test.make
    ~name:"broadcast output independent of schedule and distribution"
    ~count:25
    (QCheck.pair graph_arb (QCheck.make QCheck.Gen.(int_range 1 4)))
    (fun (g, p) ->
      let program = Programs.monotone_broadcast ~name:"tri" ~eval:triangles_eval in
      Result.is_ok
        (Calm.consistent
           ~make:(fun dist -> Network.create program dist)
           ~expected:(triangles_eval g)
           (distributions p g)))

let prop_coordinated_any_query =
  QCheck.Test.make ~name:"coordination computes open triangles everywhere"
    ~count:20
    (QCheck.pair graph_arb (QCheck.make QCheck.Gen.(int_range 1 3)))
    (fun (g, p) ->
      let program = Programs.coordinated ~name:"open" ~eval:open_triangle_eval in
      Result.is_ok
        (Calm.consistent
           ~schedules:[ Scheduler.Random_fair 7; Scheduler.Lifo ]
           ~make:(fun dist -> Network.create program dist)
           ~expected:(open_triangle_eval g)
           [ Horizontal.round_robin ~p g ]))

let prop_domain_guided_comp_tc =
  QCheck.Test.make ~name:"¬TC under random domain-guided distributions"
    ~count:15 graph_arb
    (fun g ->
      let p = 2 in
      let assignment = assignment_hash p in
      let policy =
        Policy.domain_guided ~universe:(Instance.adom g) ~name:"dg"
          ~nodes:(Node.range p) assignment
      in
      let program = Programs.domain_guided_disjoint ~name:"¬TC" ~eval:comp_tc_eval in
      Result.is_ok
        (Calm.consistent
           ~schedules:[ Scheduler.Random_fair 11; Scheduler.Fifo ]
           ~make:(fun dist -> Network.create ~assignment program dist)
           ~expected:(comp_tc_eval g)
           [ Horizontal.by_policy policy g ]))

let prop_semijoin_broadcast_correct =
  QCheck.Test.make ~name:"economical broadcast = naive on random workloads"
    ~count:20
    (QCheck.make
       QCheck.Gen.(
         let* seed = int_range 0 100_000 in
         let rng = Random.State.make [| seed |] in
         return
           (Instance.union
              (Generate.random_relation ~rng ~rel:"R" ~arity:2 ~size:12 ~domain:6 ())
              (Instance.union
                 (Generate.random_relation ~rng ~rel:"S" ~arity:2 ~size:12
                    ~domain:6 ())
                 (Generate.random_relation ~rng ~rel:"T" ~arity:2 ~size:12
                    ~domain:6 ())))))
    (fun i ->
      let program = Programs.semijoin_broadcast ~name:"econ" ~query:triangle_rst in
      Result.is_ok
        (Calm.consistent
           ~schedules:[ Scheduler.Random_fair 3; Scheduler.Lifo ]
           ~make:(fun d -> Network.create program d)
           ~expected:(triangle_rst_eval i)
           [ Horizontal.round_robin ~p:3 i ]))

let () =
  Alcotest.run "lamp_transducer"
    [
      ( "network",
        [
          Alcotest.test_case "basics" `Quick test_network_basics;
          Alcotest.test_case "oblivious rejects All" `Quick
            test_oblivious_rejects_all_dependent;
          Alcotest.test_case "silent run" `Quick test_silent_run_reads_nothing;
          Alcotest.test_case "policy coverage" `Quick test_by_policy_coverage;
        ] );
      ( "theorem 5.3 (M)",
        [
          Alcotest.test_case "consistent" `Quick test_monotone_broadcast_consistent;
          Alcotest.test_case "coordination-free" `Quick
            test_monotone_broadcast_coordination_free;
          Alcotest.test_case "unsound beyond M" `Quick
            test_monotone_broadcast_wrong_for_nonmonotone;
        ] );
      ( "example 5.1(2) (coordination)",
        [
          Alcotest.test_case "computes open triangles" `Quick
            test_coordinated_computes_open_triangles;
          Alcotest.test_case "not coordination-free" `Quick
            test_coordinated_not_coordination_free;
        ] );
      ( "theorem 5.8 (Mdistinct)",
        [
          Alcotest.test_case "open triangles" `Quick test_policy_aware_open_triangles;
          Alcotest.test_case "generic strategy" `Quick test_generic_distinct_strategy;
          Alcotest.test_case "coordination-free" `Quick
            test_policy_aware_coordination_free;
        ] );
      ( "theorem 5.12 (Mdisjoint)",
        [
          Alcotest.test_case "¬TC" `Quick test_domain_guided_comp_tc;
          Alcotest.test_case "coordination-free" `Quick
            test_domain_guided_coordination_free;
          Alcotest.test_case "win-move" `Quick test_win_move_domain_guided;
        ] );
      ( "oblivious (A-classes)",
        [
          Alcotest.test_case "A0" `Quick test_oblivious_f0;
          Alcotest.test_case "A1" `Quick test_oblivious_f1;
          Alcotest.test_case "A2" `Quick test_oblivious_f2;
        ] );
      ( "economical broadcast",
        [
          Alcotest.test_case "correct" `Quick test_semijoin_broadcast_correct;
          Alcotest.test_case "coordination-free" `Quick
            test_semijoin_broadcast_coordination_free;
          Alcotest.test_case "fewer deliveries" `Quick
            test_semijoin_broadcast_economical;
          Alcotest.test_case "rejects self-joins" `Quick
            test_semijoin_broadcast_rejects;
        ] );
      ( "delivery adversary",
        [
          Alcotest.test_case "monotone broadcast" `Quick
            test_adversary_monotone_broadcast;
          Alcotest.test_case "policy-aware" `Quick test_adversary_policy_aware;
          Alcotest.test_case "generic distinct" `Quick
            test_adversary_generic_distinct;
          Alcotest.test_case "domain-guided" `Quick test_adversary_domain_guided;
          Alcotest.test_case "economical broadcast" `Quick
            test_adversary_semijoin_broadcast;
          Alcotest.test_case "coordinated still computes" `Quick
            test_adversary_coordinated;
          Alcotest.test_case "structured Did_not_quiesce" `Quick
            test_did_not_quiesce_structured;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_monotone_broadcast_schedule_independent;
            prop_coordinated_any_query;
            prop_domain_guided_comp_tc;
            prop_semijoin_broadcast_correct;
          ] );
    ]
