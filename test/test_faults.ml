(* Deterministic fault injection and checkpoint/replay recovery.

   The headline property under test: under any seeded fault plan, every
   MPC algorithm recovers output and fault-free-portion statistics
   bit-identical to a clean run — on the sequential and pool backends
   alike — with all repair traffic accounted separately in
   [Stats.recoveries]. *)

open Lamp_relational
open Lamp_cq
open Lamp_mpc
module Plan = Lamp_faults.Plan
module Executor = Lamp_runtime.Executor
module Pool = Lamp_runtime.Pool

let instance = Alcotest.testable Instance.pp Instance.equal
let rng () = Random.State.make [| 2026 |]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Plan: decisions are pure functions of (seed, coordinates)            *)

let test_plan_determinism () =
  let a = Plan.make ~seed:42 Plan.chaos in
  let b = Plan.make ~seed:42 Plan.chaos in
  for round = 1 to 5 do
    for server = 0 to 15 do
      Alcotest.(check bool) "same crash decision"
        (Plan.crashes a ~round ~server)
        (Plan.crashes b ~round ~server);
      for index = 0 to 3 do
        Alcotest.(check bool) "same message fate" true
          (Plan.fate a ~round ~src:server ~index
          = Plan.fate b ~round ~src:server ~index)
      done;
      Alcotest.(check int) "same transient count"
        (Plan.transient_failures a ~round ~phase:Plan.Compute ~task:server)
        (Plan.transient_failures b ~round ~phase:Plan.Compute ~task:server)
    done
  done

let test_plan_seed_sensitivity () =
  let a = Plan.make ~seed:1 { Plan.zero with crash = 0.5 } in
  let b = Plan.make ~seed:2 { Plan.zero with crash = 0.5 } in
  let differs = ref false in
  for round = 1 to 10 do
    for server = 0 to 19 do
      if Plan.crashes a ~round ~server <> Plan.crashes b ~round ~server then
        differs := true
    done
  done;
  Alcotest.(check bool) "different seeds decide differently" true !differs

let test_plan_extreme_fates () =
  let check_all spec expected name =
    let plan = Plan.make ~seed:3 spec in
    for round = 1 to 3 do
      for src = 0 to 3 do
        for index = 0 to 5 do
          Alcotest.(check bool) name true
            (Plan.fate plan ~round ~src ~index = expected)
        done
      done
    done
  in
  check_all { Plan.zero with drop = 1.0 } Plan.Drop "drop=1 always drops";
  check_all
    { Plan.zero with duplicate = 1.0 }
    Plan.Duplicate "dup=1 always duplicates";
  check_all { Plan.zero with delay = 1.0 } Plan.Delay "delay=1 always delays";
  check_all Plan.zero Plan.Deliver "zero spec always delivers";
  Alcotest.(check bool) "the empty plan never crashes anyone" false
    (Plan.crashes Plan.none ~round:1 ~server:0)

let test_plan_permute () =
  let l = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let id = Plan.permute (Plan.make ~seed:5 Plan.zero) ~round:1 ~lane:0 l in
  Alcotest.(check (list int)) "no reorder: identity" l id;
  let plan = Plan.make ~seed:5 { Plan.zero with reorder = true } in
  let p1 = Plan.permute plan ~round:1 ~lane:0 l in
  let p2 = Plan.permute plan ~round:1 ~lane:0 l in
  Alcotest.(check (list int)) "deterministic shuffle" p1 p2;
  Alcotest.(check (list int)) "a permutation" l (List.sort compare p1)

let test_plan_parse () =
  Alcotest.(check bool) "none" true (Plan.is_none (Plan.of_string "none"));
  Alcotest.(check bool) "empty" true (Plan.is_none (Plan.of_string ""));
  let chaos = Plan.of_string ~seed:9 "chaos" in
  Alcotest.(check bool) "chaos preset" true (Plan.spec chaos = Plan.chaos);
  Alcotest.(check int) "seed kept" 9 (Plan.seed chaos);
  let p = Plan.of_string "crash=0.25,dup=0.1,reorder" in
  let s = Plan.spec p in
  Alcotest.(check (float 1e-9)) "crash" 0.25 s.Plan.crash;
  Alcotest.(check (float 1e-9)) "dup" 0.1 s.Plan.duplicate;
  Alcotest.(check bool) "reorder" true s.Plan.reorder;
  List.iter
    (fun bad ->
      Alcotest.check_raises ("rejects " ^ bad) (Invalid_argument "") (fun () ->
          try ignore (Plan.of_string bad)
          with Invalid_argument _ -> raise (Invalid_argument "")))
    [ "crash=1.5"; "drop=0.5,dup=0.4,delay=0.3"; "bogus=1"; "crash=x" ]

let test_plan_transients_bounded () =
  let plan = Plan.make ~seed:11 { Plan.zero with transient = 0.9 } in
  let saw_failure = ref false in
  for task = 0 to 49 do
    let n = Plan.transient_failures plan ~round:1 ~phase:Plan.Compute ~task in
    Alcotest.(check bool) "0 <= failures < max_attempts" true
      (n >= 0 && n < Plan.max_attempts);
    if n > 0 then saw_failure := true;
    for attempt = 1 to Plan.max_attempts do
      let raised =
        try
          Plan.inject plan ~round:1 ~phase:Plan.Compute ~task ~attempt;
          false
        with Plan.Transient _ -> true
      in
      Alcotest.(check bool) "inject raises exactly on failing attempts"
        (attempt <= n) raised
    done
  done;
  Alcotest.(check bool) "a 0.9 rate does fail somewhere" true !saw_failure

(* ------------------------------------------------------------------ *)
(* Executor.with_retry                                                  *)

let test_with_retry_absorbs () =
  let calls = ref 0 in
  let v =
    Executor.with_retry ~retryable:Plan.is_transient (fun ~attempt ->
        incr calls;
        if attempt <= 2 then raise (Plan.Transient "flaky");
        attempt)
  in
  Alcotest.(check int) "succeeded on the third attempt" 3 v;
  Alcotest.(check int) "three calls" 3 !calls

let test_with_retry_exhausts () =
  let calls = ref 0 in
  Alcotest.check_raises "exhausted budget propagates" (Plan.Transient "always")
    (fun () ->
      Executor.with_retry ~max_attempts:3 ~retryable:Plan.is_transient
        (fun ~attempt:_ ->
          incr calls;
          raise (Plan.Transient "always")));
  Alcotest.(check int) "tried exactly max_attempts times" 3 !calls

let test_with_retry_nonretryable () =
  let calls = ref 0 in
  Alcotest.check_raises "non-retryable propagates immediately" Exit (fun () ->
      Executor.with_retry ~retryable:Plan.is_transient (fun ~attempt:_ ->
          incr calls;
          raise Exit));
  Alcotest.(check int) "not retried" 1 !calls;
  Alcotest.check_raises "max_attempts must be positive" (Invalid_argument "")
    (fun () ->
      try
        ignore
          (Executor.with_retry ~max_attempts:0 ~retryable:Plan.is_transient
             (fun ~attempt -> attempt))
      with Invalid_argument _ -> raise (Invalid_argument ""))

let test_with_retry_backoff () =
  let seen = ref [] in
  Executor.with_retry
    ~backoff:(fun k -> seen := k :: !seen)
    ~retryable:Plan.is_transient
    (fun ~attempt -> if attempt <= 2 then raise (Plan.Transient "x"));
  Alcotest.(check (list int)) "backoff called with each failed attempt" [ 2; 1 ]
    !seen

(* ------------------------------------------------------------------ *)
(* Cluster: destination validation names the offending fact             *)

let bad_round =
  {
    Cluster.communicate = Cluster.route_by (fun _ -> [ 7 ]);
    compute = Cluster.keep_received;
  }

let check_bad_destination_message c =
  match Cluster.run_round c bad_round with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    List.iter
      (fun sub ->
        Alcotest.(check bool)
          (Fmt.str "error %S mentions %S" msg sub)
          true (contains ~sub msg))
      [ "R(1,2)"; "destination 7"; "p = 2" ]

let test_bad_destination_names_fact () =
  check_bad_destination_message (Cluster.create ~p:2 (Instance.of_string "R(1,2)"))

let test_bad_destination_names_fact_faulty_path () =
  check_bad_destination_message
    (Cluster.create
       ~faults:(Plan.make ~seed:1 Plan.zero)
       ~p:2
       (Instance.of_string "R(1,2)"))

(* ------------------------------------------------------------------ *)
(* Bit-identical recovery: every algorithm, several plans, both
   backends                                                             *)

let plans =
  [
    ("chaos@1", Plan.make ~seed:1 Plan.chaos);
    ("chaos@2", Plan.make ~seed:2 Plan.chaos);
    ("crashy@5", Plan.make ~seed:5 { Plan.zero with crash = 0.4 });
    ( "lossy@9",
      Plan.make ~seed:9
        { Plan.zero with drop = 0.2; duplicate = 0.2; delay = 0.2; reorder = true }
    );
    ("flaky@3", Plan.make ~seed:3 { Plan.zero with transient = 0.5 });
  ]

let chain3 = Parser.query "H(x0,x3) <- R1(x0,x1), R2(x1,x2), R3(x2,x3)"

let algorithms =
  [
    ( "repartition",
      fun ~executor ~faults ->
        Repartition_join.run ~executor ~faults ~p:8 (Workload.join_skew_free ~m:120)
    );
    ( "grid",
      fun ~executor ~faults ->
        Grid_join.run ~executor ~faults ~p:9 (Workload.join_skew_free ~m:120) );
    ( "hypercube",
      fun ~executor ~faults ->
        let i = Workload.triangle_skew_free ~rng:(rng ()) ~m:120 ~domain:30 in
        let r, s, _ =
          Hypercube.run ~executor ~faults ~p:8 Examples.q2_triangle i
        in
        (r, s) );
    ( "cascade",
      fun ~executor ~faults ->
        let i = Workload.triangle_skew_free ~rng:(rng ()) ~m:90 ~domain:25 in
        Multi_round.cascade_triangle ~executor ~faults ~p:8 i );
    ( "skew-resilient",
      fun ~executor ~faults ->
        let i =
          Workload.triangle_y_skew ~rng:(rng ()) ~m:120 ~domain:40
            ~heavy_fraction:0.4
        in
        let r, s, _ =
          Multi_round.skew_resilient_triangle ~executor ~faults ~p:8 i
        in
        (r, s) );
    ( "gym",
      fun ~executor ~faults ->
        let i =
          Workload.acyclic_chain ~rng:(rng ()) ~m:100 ~domain:25
            ~rels:[ "R1"; "R2"; "R3" ]
        in
        Yannakakis.gym ~executor ~faults ~p:6 chain3 i );
    ( "gym-ghd",
      fun ~executor ~faults ->
        let i = Workload.triangle_skew_free ~rng:(rng ()) ~m:90 ~domain:25 in
        let r, s, _ = Gym_ghd.run ~executor ~faults ~p:8 Examples.q2_triangle i in
        (r, s) );
    ( "kst",
      fun ~executor ~faults ->
        let i =
          Workload.triangle_y_skew ~rng:(rng ()) ~m:120 ~domain:40
            ~heavy_fraction:0.4
        in
        let r, s, _ =
          Kst.run ~threshold:8 ~executor ~faults ~p:8 Examples.q2_triangle i
        in
        (r, s) );
  ]

let same_clean_portion name pname clean stats =
  Alcotest.(check bool)
    (Fmt.str "%s fault-free portion identical under %s" name pname)
    true
    (stats.Stats.rounds = clean.Stats.rounds
    && stats.Stats.p = clean.Stats.p
    && stats.Stats.initial_max = clean.Stats.initial_max)

let check_recovery name run =
  let clean_out, clean_stats =
    run ~executor:Executor.sequential ~faults:Plan.none
  in
  Alcotest.(check bool) "clean run records no recoveries" true
    (clean_stats.Stats.recoveries = []);
  List.iter
    (fun (pname, plan) ->
      let out, stats = run ~executor:Executor.sequential ~faults:plan in
      Alcotest.check instance
        (Fmt.str "%s output bit-identical under %s" name pname)
        clean_out out;
      same_clean_portion name pname clean_stats stats)
    plans

let pool_plans = [ List.nth plans 0; List.nth plans 3; List.nth plans 4 ]

let test_recovery_pool () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let executor = Executor.pool pool in
      List.iter
        (fun (name, run) ->
          let clean_out, clean_stats =
            run ~executor:Executor.sequential ~faults:Plan.none
          in
          List.iter
            (fun (pname, plan) ->
              let _, seq_stats =
                run ~executor:Executor.sequential ~faults:plan
              in
              let pool_out, pool_stats = run ~executor ~faults:plan in
              Alcotest.check instance
                (Fmt.str "%s pool output = clean output under %s" name pname)
                clean_out pool_out;
              (* The pool draws the same faults and hence the same
                 recoveries: statistics are bit-identical across
                 backends, fault plan or not. *)
              Alcotest.(check bool)
                (Fmt.str "%s pool stats = seq stats under %s" name pname)
                true (pool_stats = seq_stats);
              same_clean_portion name pname clean_stats pool_stats)
            pool_plans)
        algorithms)

(* ------------------------------------------------------------------ *)
(* Zero-fault plans cost nothing; total crashes still recover           *)

let test_zero_fault_plan_noop () =
  let i = Workload.join_skew_free ~m:80 in
  let clean_out, clean_stats = Repartition_join.run ~p:4 i in
  let out, stats =
    Repartition_join.run ~faults:(Plan.make ~seed:123 Plan.zero) ~p:4 i
  in
  Alcotest.check instance "output identical" clean_out out;
  Alcotest.(check bool) "stats structurally identical" true (stats = clean_stats);
  Alcotest.(check string) "rendered stats byte-identical"
    (Fmt.str "%a" Stats.pp clean_stats)
    (Fmt.str "%a" Stats.pp stats);
  Alcotest.(check bool) "no recoveries recorded" true
    (stats.Stats.recoveries = [])

let test_total_crash_recovers () =
  let plan = Plan.make ~seed:4 { Plan.zero with crash = 1.0 } in
  let i = Workload.join_skew_free ~m:60 in
  let clean_out, clean_stats = Repartition_join.run ~p:4 i in
  let out, stats = Repartition_join.run ~faults:plan ~p:4 i in
  Alcotest.check instance "all servers crashing still recovers" clean_out out;
  same_clean_portion "repartition" "crash=1" clean_stats stats;
  Alcotest.(check int) "every server crashed every round"
    (4 * Stats.rounds stats) (Stats.crashes stats);
  Alcotest.(check bool) "recovery load accounted" true
    (Stats.recovery_load stats > 0);
  Alcotest.(check int) "every round needed repair" (Stats.rounds stats)
    (Stats.recovery_rounds stats)

let test_gym_analytic_crash_accounting () =
  let i =
    Workload.acyclic_chain ~rng:(rng ()) ~m:60 ~domain:20
      ~rels:[ "R1"; "R2"; "R3" ]
  in
  let clean_out, clean_stats = Yannakakis.gym ~p:4 chain3 i in
  let plan = Plan.make ~seed:6 { Plan.zero with crash = 1.0 } in
  let out, stats = Yannakakis.gym ~faults:plan ~p:4 chain3 i in
  Alcotest.check instance "gym output unchanged" clean_out out;
  same_clean_portion "gym" "crash=1" clean_stats stats;
  Alcotest.(check int) "analytic crash accounting" (4 * Stats.rounds stats)
    (Stats.crashes stats);
  Alcotest.(check bool) "replayed load accounted" true
    (Stats.recovery_load stats > 0)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Wire-level fault plans (Faults.Net)                                  *)

module Net = Lamp_faults.Net

let test_net_determinism () =
  let plan = Net.make ~seed:11 Net.chaos in
  (* Pure: the same plan yields the same faults for the same ordinal,
     however many times and in whatever order it is asked. *)
  let a = List.init 50 (fun c -> Net.connection plan ~conn:c) in
  let b = List.rev_map (fun c -> Net.connection plan ~conn:c)
            (List.rev (List.init 50 Fun.id)) in
  Alcotest.(check bool) "decisions are a pure function of (seed, conn)" true
    (a = b);
  (* Distinct seeds decorrelate; a different seed must disagree
     somewhere on 50 connections of the chaos profile. *)
  let other = Net.make ~seed:12 Net.chaos in
  Alcotest.(check bool) "seeds decorrelate" true
    (List.exists
       (fun c -> Net.connection plan ~conn:c <> Net.connection other ~conn:c)
       (List.init 50 Fun.id));
  (* The chaos profile actually exercises every fault family within a
     modest number of connections. *)
  let seen p =
    List.exists (fun (f : Net.conn_faults) -> p f)
      (List.init 200 (fun c -> Net.connection plan ~conn:c))
  in
  Alcotest.(check bool) "refusals occur" true (seen (fun f -> f.refused));
  Alcotest.(check bool) "cuts occur" true
    (seen (fun f -> f.c2s.cut <> None || f.s2c.cut <> None));
  Alcotest.(check bool) "flips occur" true
    (seen (fun f -> f.c2s.flip_at <> None || f.s2c.flip_at <> None));
  Alcotest.(check bool) "clean connections occur" true
    (seen (fun f ->
         (not f.refused)
         && f.delay_s = 0.0
         && f.c2s = { Net.cut = None; stall_at = None; flip_at = None;
                      trickle_by = None }
         && f.s2c = { Net.cut = None; stall_at = None; flip_at = None;
                      trickle_by = None }))

let test_net_none_and_validation () =
  Alcotest.(check bool) "none is none" true (Net.is_none Net.none);
  let f = Net.connection (Net.make ~seed:3 Net.zero) ~conn:0 in
  Alcotest.(check bool) "zero spec plans nothing" true
    ((not f.refused) && f.delay_s = 0.0 && f.c2s.cut = None
    && f.s2c.cut = None);
  let reject spec =
    match Net.make spec with
    | _ -> Alcotest.fail "invalid spec must be rejected"
    | exception Invalid_argument _ -> ()
  in
  reject { Net.zero with refuse = 1.5 };
  reject { Net.zero with reset = 0.7; truncate = 0.7 };
  reject { Net.zero with stall_s = -1.0 };
  reject { Net.zero with window = 0 }

let test_net_parse () =
  (* of_string round-trips through pp, and the shorthands work. *)
  let p = Net.of_string ~seed:5 "reset=0.25,flip=0.5,stall=0.1,stall_s=0.2" in
  let s = Net.spec p in
  Alcotest.(check (float 0.0)) "reset parsed" 0.25 s.reset;
  Alcotest.(check (float 0.0)) "flip parsed" 0.5 s.flip;
  Alcotest.(check (float 0.0)) "stall_s parsed" 0.2 s.stall_s;
  Alcotest.(check int) "seed carried" 5 (Net.seed p);
  let echo = Fmt.str "%a" Net.pp p in
  let p2 = Net.of_string ~seed:5 echo in
  Alcotest.(check bool) "pp output parses back to the same plan" true
    (Net.spec p2 = s);
  Alcotest.(check bool) "\"none\" parses" true (Net.is_none (Net.of_string "none"));
  Alcotest.(check bool) "\"chaos\" parses" true
    (Net.spec (Net.of_string "chaos") = Net.chaos);
  match Net.of_string "flip=2.0" with
  | _ -> Alcotest.fail "out-of-range probability must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Disk fault plans (Faults.Disk)                                      *)

module Disk = Lamp_faults.Disk

let test_disk_determinism () =
  let plan = Disk.make ~seed:21 Disk.chaos in
  let coords = List.init 40 (fun i -> (Printf.sprintf "job%d" (i mod 5), i)) in
  (* Pure: the same plan yields the same faults for the same (job,
     round), however many times and in whatever order it is asked. *)
  let draw () =
    List.map (fun (j, r) -> Disk.save plan ~job:j ~round:r) coords
  in
  Alcotest.(check bool) "decisions are a pure function of (seed, job, round)"
    true
    (draw () = draw ());
  let other = Disk.make ~seed:22 Disk.chaos in
  Alcotest.(check bool) "seeds decorrelate" true
    (List.exists
       (fun (j, r) ->
         Disk.save plan ~job:j ~round:r <> Disk.save other ~job:j ~round:r)
       coords);
  Alcotest.(check bool) "jobs decorrelate" true
    (List.exists
       (fun r ->
         Disk.save plan ~job:"alpha" ~round:r
         <> Disk.save plan ~job:"beta" ~round:r)
       (List.init 20 Fun.id));
  (* The chaos profile exercises every fault family — and still leaves
     clean saves — within a modest number of draws. *)
  let many = List.init 200 (fun i -> (Printf.sprintf "j%d" (i mod 17), i)) in
  let seen p =
    List.exists (fun (j, r) -> p (Disk.save plan ~job:j ~round:r)) many
  in
  Alcotest.(check bool) "rot occurs" true (seen (fun f -> f.Disk.rot_at <> None));
  Alcotest.(check bool) "truncation occurs" true
    (seen (fun (f : Disk.save_faults) -> f.truncate_at <> None));
  Alcotest.(check bool) "enospc occurs" true
    (seen (fun (f : Disk.save_faults) -> f.enospc_failures > 0));
  Alcotest.(check bool) "litter occurs" true
    (seen (fun (f : Disk.save_faults) -> f.litter));
  Alcotest.(check bool) "clean saves occur" true
    (seen (fun f -> f = Disk.no_save_faults));
  Alcotest.(check bool) "rot masks non-zero, enospc below the retry budget"
    true
    (List.for_all
       (fun (j, r) ->
         let (f : Disk.save_faults) = Disk.save plan ~job:j ~round:r in
         (match f.rot_at with
         | Some (frac, mask) ->
           frac >= 0.0 && frac < 1.0 && mask >= 1 && mask <= 255
         | None -> true)
         && f.enospc_failures >= 0 && f.enospc_failures <= 2)
       many)

let test_disk_none_and_validation () =
  Alcotest.(check bool) "none is none" true (Disk.is_none Disk.none);
  Alcotest.(check bool) "zero spec plans nothing" true
    (Disk.save (Disk.make ~seed:3 Disk.zero) ~job:"j" ~round:1
    = Disk.no_save_faults);
  let reject spec =
    match Disk.make spec with
    | _ -> Alcotest.fail "invalid spec must be rejected"
    | exception Invalid_argument _ -> ()
  in
  reject { Disk.zero with rot = 1.5 };
  reject { Disk.zero with enospc = -0.1 };
  reject { Disk.zero with crash = Some (2, Disk.Torn_write 1.5) };
  reject { Disk.zero with crash = Some (-1, Disk.Before_rename) };
  (* The one-shot crash fires exactly at its round, for every job. *)
  let p =
    Disk.make ~seed:4 { Disk.zero with crash = Some (3, Disk.After_rename) }
  in
  Alcotest.(check bool) "crash fires only at its round" true
    ((Disk.save p ~job:"j" ~round:3).crash = Some Disk.After_rename
    && (Disk.save p ~job:"j" ~round:2).crash = None
    && (Disk.save p ~job:"j" ~round:4).crash = None
    && (Disk.save p ~job:"other" ~round:3).crash = Some Disk.After_rename)

let test_disk_parse () =
  (* of_string round-trips through pp, including the crash field and
     the @seed suffix. *)
  let p =
    Disk.of_string ~seed:7
      "rot=0.25,truncate=0.1,enospc=0.5,litter=0.75,crash=2:torn:0.5"
  in
  let s = Disk.spec p in
  Alcotest.(check (float 0.0)) "rot parsed" 0.25 s.rot;
  Alcotest.(check (float 0.0)) "litter parsed" 0.75 s.litter;
  Alcotest.(check bool) "crash parsed" true
    (s.crash = Some (2, Disk.Torn_write 0.5));
  Alcotest.(check int) "seed carried" 7 (Disk.seed p);
  let echo = Fmt.str "%a" Disk.pp p in
  let p2 = Disk.of_string echo in
  Alcotest.(check bool)
    "pp output parses back to the identical plan (seed included)" true
    (Disk.spec p2 = s && Disk.seed p2 = 7);
  List.iter
    (fun (str, pt) ->
      Alcotest.(check bool) str true
        ((Disk.spec (Disk.of_string str)).crash = Some (1, pt)))
    [
      ("crash=1:pre-rename", Disk.Before_rename);
      ("crash=1:post-rename", Disk.After_rename);
    ];
  Alcotest.(check bool) "\"none\" parses" true
    (Disk.is_none (Disk.of_string "none"));
  Alcotest.(check bool) "\"chaos\" parses" true
    (Disk.spec (Disk.of_string "chaos") = Disk.chaos);
  (match Disk.of_string "rot=2.0" with
  | _ -> Alcotest.fail "out-of-range probability must be rejected"
  | exception Invalid_argument _ -> ());
  match Disk.of_string "crash=2:sideways" with
  | _ -> Alcotest.fail "unknown crash point must be rejected"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "lamp_faults"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic decisions" `Quick
            test_plan_determinism;
          Alcotest.test_case "seed-sensitive" `Quick test_plan_seed_sensitivity;
          Alcotest.test_case "extreme fates" `Quick test_plan_extreme_fates;
          Alcotest.test_case "permute" `Quick test_plan_permute;
          Alcotest.test_case "of_string" `Quick test_plan_parse;
          Alcotest.test_case "transients bounded by retry budget" `Quick
            test_plan_transients_bounded;
        ] );
      ( "with_retry",
        [
          Alcotest.test_case "absorbs transient faults" `Quick
            test_with_retry_absorbs;
          Alcotest.test_case "exhausts its budget" `Quick test_with_retry_exhausts;
          Alcotest.test_case "non-retryable propagates" `Quick
            test_with_retry_nonretryable;
          Alcotest.test_case "backoff hook" `Quick test_with_retry_backoff;
        ] );
      ( "cluster errors",
        [
          Alcotest.test_case "bad destination names the fact" `Quick
            test_bad_destination_names_fact;
          Alcotest.test_case "bad destination (faulty path)" `Quick
            test_bad_destination_names_fact_faulty_path;
        ] );
      ( "bit-identical recovery (seq)",
        List.map
          (fun (name, run) ->
            Alcotest.test_case name `Quick (fun () -> check_recovery name run))
          algorithms );
      ( "bit-identical recovery (pool)",
        [ Alcotest.test_case "pool = seq = clean" `Quick test_recovery_pool ] );
      ( "accounting",
        [
          Alcotest.test_case "zero-fault plan is a no-op" `Quick
            test_zero_fault_plan_noop;
          Alcotest.test_case "total crash recovers" `Quick
            test_total_crash_recovers;
          Alcotest.test_case "gym analytic crashes" `Quick
            test_gym_analytic_crash_accounting;
        ] );
      ( "net plans",
        [
          Alcotest.test_case "deterministic per (seed, conn)" `Quick
            test_net_determinism;
          Alcotest.test_case "none and validation" `Quick
            test_net_none_and_validation;
          Alcotest.test_case "of_string and pp" `Quick test_net_parse;
        ] );
      ( "disk plans",
        [
          Alcotest.test_case "deterministic per (seed, job, round)" `Quick
            test_disk_determinism;
          Alcotest.test_case "none and validation" `Quick
            test_disk_none_and_validation;
          Alcotest.test_case "of_string and pp" `Quick test_disk_parse;
        ] );
    ]
