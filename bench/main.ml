(* Benchmark and reproduction harness.

   One experiment per figure / quantitative claim of the paper (see
   DESIGN.md's per-experiment index and EXPERIMENTS.md for recorded
   results):

     dune exec bench/main.exe                 run every experiment
     dune exec bench/main.exe -- fig1 e3      run selected experiments
     dune exec bench/main.exe -- --timings    also run Bechamel timings

   The MPC simulator's execution backend is selectable:

     --backend=seq|pool    sequential (default) or the lamp.runtime
                           domain pool — load statistics are identical
                           either way, only wall-clock changes
     --domains=N           pool size (default: recommended domain count)

   Fault injection (e13):

     --fault-seed=N        seed for e13's deterministic fault plans
     --faults=SPEC         the chaos-row plan of e13 (lamp.faults spec,
                           e.g. crash=0.1,drop=0.05,reorder; default
                           "chaos")

   Experiments print the rows/series the paper's claims are about;
   absolute constants differ from the authors' testbeds (the substrate
   here is a simulator) but the shapes — who wins, by what exponent,
   where crossovers fall — are the reproduction target. *)

open Lamp

let line fmt = Fmt.pr (fmt ^^ "@.")
let section title = line "@.=== %s ===" title

(* Execution backend for the MPC simulator, set from the command line
   before any experiment runs. *)
let executor = ref Runtime.Executor.sequential
let exec () = !executor

(* Short size caps for CI smoke runs (--smoke). *)
let smoke = ref false

(* Machine-readable results (--json=FILE): the driver records every
   experiment's wall clock; experiments register named numbers with
   [metric] — loads, timings, speedups — so the perf trajectory across
   PRs is a diffable file, not a terminal scrollback. *)
let current_exp = ref ""
let recorded : (string * (string * float) list ref) list ref = ref []

let metric key value =
  match List.assoc_opt !current_exp !recorded with
  | Some cell -> cell := (key, value) :: !cell
  | None -> ()

(* Every recorded per-p load comes with the model's two derived
   quantities, so the JSON results file carries the paper's axes
   directly: ε (load exponent) and the replication rate. *)
let metric_stats prefix ~m stats =
  metric (prefix ^ "_max_load") (float_of_int (Mpc.Stats.max_load stats));
  metric (prefix ^ "_epsilon") (Mpc.Stats.epsilon ~m stats);
  metric (prefix ^ "_replication_rate") (Mpc.Stats.replication_rate ~m stats)

(* Latency-style summaries: the three tail quantiles every serving
   benchmark reports, estimated from a lamp.obs power-of-two histogram
   (within a factor of 2 — the bucket width). e15 uses this for its
   request latencies; e12–e14 can tag any histogram the same way. *)
let metric_percentiles prefix (s : Obs.Trace.histogram_snapshot) =
  metric (prefix ^ "_p50") (Obs.Trace.percentile s 0.50);
  metric (prefix ^ "_p95") (Obs.Trace.percentile s 0.95);
  metric (prefix ^ "_p99") (Obs.Trace.percentile s 0.99);
  metric (prefix ^ "_count") (float_of_int s.count);
  metric (prefix ^ "_max") (float_of_int s.max_value)

let write_json path =
  Obs.Export.write_metrics_json path
    ~meta:
      [
        ("backend", Obs.Export.Mstr (Runtime.Executor.backend_name (exec ())));
        ("workers", Obs.Export.Mint (Runtime.Executor.workers (exec ())));
        ("smoke", Obs.Export.Mbool !smoke);
      ]
    ~groups:
      (List.rev !recorded |> List.map (fun (name, cell) -> (name, List.rev !cell)));
  line "wrote %s" path

let check label ok =
  line "  %-62s %s" label (if ok then "MATCH" else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* FIG1: transfer vs containment lattices (Figure 1)                   *)

let fig1 () =
  section "FIG1: parallel-correctness transfer vs containment (Figure 1)";
  let names = [ "Q1"; "Q2"; "Q3"; "Q4" ] in
  let qs =
    [
      Cq.Examples.q1_example_4_11;
      Cq.Examples.q2_example_4_11;
      Cq.Examples.q3_example_4_11;
      Cq.Examples.q4_example_4_11;
    ]
  in
  List.iter2 (fun n q -> line "  %s: %a" n Cq.Ast.pp q) names qs;
  let transfer = Correctness.Transfer.transfer_matrix qs in
  let containment =
    List.map (fun q -> List.map (Cq.Containment.contained q) qs) qs
  in
  let print_matrix title m =
    line "  %s (row -> column):" title;
    line "       %s" (String.concat "   " names);
    List.iteri
      (fun i row ->
        line "   %s %s" (List.nth names i)
          (String.concat " "
             (List.map (fun b -> if b then " yes" else "  . ") row)))
      m
  in
  print_matrix "pc-transfer" transfer;
  print_matrix "containment" containment;
  let expected_transfer =
    [
      [ true; true; false; false ];
      [ false; true; false; false ];
      [ true; true; true; true ];
      [ false; true; false; true ];
    ]
  in
  let expected_containment =
    [
      [ true; true; true; true ];
      [ false; true; false; true ];
      [ false; false; true; true ];
      [ false; false; false; true ];
    ]
  in
  check "transfer matrix matches Figure 1(a)" (transfer = expected_transfer);
  check "containment matrix matches Figure 1(b)"
    (containment = expected_containment);
  check "orthogonal: Q3 pc-> Q2 holds, containment Q3 <= Q2 fails"
    (Correctness.Transfer.transfers Cq.Examples.q3_example_4_11
       Cq.Examples.q2_example_4_11
    && not
         (Cq.Containment.contained Cq.Examples.q3_example_4_11
            Cq.Examples.q2_example_4_11));
  check "orthogonal: Q1 <= Q4 holds, transfer Q1 -> Q4 fails"
    (Cq.Containment.contained Cq.Examples.q1_example_4_11
       Cq.Examples.q4_example_4_11
    && not
         (Correctness.Transfer.transfers Cq.Examples.q1_example_4_11
            Cq.Examples.q4_example_4_11))

(* ------------------------------------------------------------------ *)
(* FIG2: Datalog fragments, monotonicity classes, transducer classes   *)

let fig2 () =
  section "FIG2: CALM correspondences (Figure 2)";
  let rng = Random.State.make [| 2016 |] in
  let e_pairs =
    Datalog.Classify.random_pairs ~rng
      ~schema:(Relational.Schema.of_list [ ("E", 2) ])
      ~count:80 ~size:6 ~domain:4
    @ [
        ( Relational.Instance.of_string "E(1,2). E(2,3)",
          Relational.Instance.of_string "E(3,1)" );
        ( Relational.Instance.of_string "E(a,a). E(b,b)",
          Relational.Instance.of_string "E(a,c). E(c,b)" );
        ( Relational.Instance.of_string "E(a,a). E(b,b)",
          Relational.Instance.of_string "E(c,d). E(d,e). E(e,c)" );
      ]
  in
  let move_pairs =
    Datalog.Classify.random_pairs ~rng
      ~schema:(Relational.Schema.of_list [ ("Move", 2) ])
      ~count:80 ~size:6 ~domain:4
  in
  let p = 3 in
  let everyone _ = Distribution.Node.Set.of_list (Distribution.Node.range p) in
  let graph =
    Relational.Instance.of_string "E(1,2). E(2,3). E(3,1). E(3,4). E(4,5). E(5,3)"
  in
  (* Policy-aware runs must pair each policy with distributions
     respecting it ("responsible but absent locally" must mean "absent
     from the global instance"), so each row supplies its own
     consistency runs and its own ideal (silent) run. *)
  let run_class ~consistency ~ideal ~expected =
    List.for_all
      (fun (make, dists) ->
        Result.is_ok (Transducer.Calm.consistent ~make ~expected dists))
      consistency
    &&
    let make, dist = ideal in
    Result.is_ok (Transducer.Calm.coordination_free ~make ~expected dist)
  in
  let bc_policy universe =
    Distribution.Policy.broadcast_all ~universe ~name:"bc" ~p ()
  in
  let fact_policy universe =
    Distribution.Policy.make ~universe ~name:"hash-facts"
      ~nodes:(Distribution.Node.range p)
      (fun n f -> Relational.Fact.hash f mod p = n)
  in
  let hash_assignment v =
    Distribution.Node.Set.singleton (Relational.Value.hash v mod p)
  in
  let dg_policy universe =
    Distribution.Policy.domain_guided ~universe ~name:"dg"
      ~nodes:(Distribution.Node.range p) hash_assignment
  in
  let two_comp = Relational.Instance.of_string "E(a,b). E(b,c). E(x,y). E(y,x)" in
  let game =
    Relational.Instance.of_string "Move(a,b). Move(b,a). Move(b,c). Move(x,y)"
  in
  let rows =
    [
      (let q =
         Datalog.Classify.of_cq ~name:"triangles" Cq.Examples.triangles_distinct
       in
       let program =
         Transducer.Programs.monotone_broadcast ~name:"t"
           ~eval:q.Datalog.Classify.eval
       in
       let make d = Transducer.Network.create program d in
       ( q,
         "Datalog(≠)",
         "F0",
         Some
           (run_class
              ~consistency:
                [
                  ( make,
                    [
                      Transducer.Horizontal.round_robin ~p graph;
                      Transducer.Horizontal.full_replication ~p graph;
                    ] );
                ]
              ~ideal:(make, Transducer.Horizontal.full_replication ~p graph)
              ~expected:(q.Datalog.Classify.eval graph)),
         e_pairs ));
      (let q =
         Datalog.Classify.of_cq ~name:"open triangle" Cq.Examples.open_triangle
       in
       let program = Transducer.Programs.open_triangle_policy_aware ~name:"ot" in
       let universe = Relational.Instance.adom graph in
       let fp = fact_policy universe in
       ( q,
         "SP-Datalog",
         "F1",
         Some
           (run_class
              ~consistency:
                [
                  ( (fun d -> Transducer.Network.create ~policy:fp program d),
                    [ Transducer.Horizontal.by_policy fp graph ] );
                ]
              ~ideal:
                ( (fun d ->
                    Transducer.Network.create ~policy:(bc_policy universe)
                      program d),
                  Transducer.Horizontal.full_replication ~p graph )
              ~expected:(q.Datalog.Classify.eval graph)),
         e_pairs ));
      (let q =
         Datalog.Classify.of_program ~name:"¬TC" ~output:"OUT"
           Datalog.Canned.complement_tc
       in
       let program =
         Transducer.Programs.domain_guided_disjoint ~name:"ctc"
           ~eval:q.Datalog.Classify.eval
       in
       let universe = Relational.Instance.adom two_comp in
       ( q,
         "semicon-Datalog",
         "F2",
         Some
           (run_class
              ~consistency:
                [
                  ( (fun d ->
                      Transducer.Network.create ~assignment:hash_assignment
                        program d),
                    [ Transducer.Horizontal.by_policy (dg_policy universe) two_comp ]
                  );
                ]
              ~ideal:
                ( (fun d ->
                    Transducer.Network.create ~assignment:everyone program d),
                  Transducer.Horizontal.full_replication ~p two_comp )
              ~expected:(q.Datalog.Classify.eval two_comp)),
         e_pairs ));
      (let q =
         Datalog.Classify.of_wellfounded ~name:"win-move" ~output:"Win"
           Datalog.Canned.win_move
       in
       let program =
         Transducer.Programs.domain_guided_disjoint ~name:"wm"
           ~eval:q.Datalog.Classify.eval
       in
       let universe = Relational.Instance.adom game in
       ( q,
         "semicon-Datalog¬ (WFS)",
         "F2",
         Some
           (run_class
              ~consistency:
                [
                  ( (fun d ->
                      Transducer.Network.create ~assignment:hash_assignment
                        program d),
                    [ Transducer.Horizontal.by_policy (dg_policy universe) game ]
                  );
                ]
              ~ideal:
                ( (fun d ->
                    Transducer.Network.create ~assignment:everyone program d),
                  Transducer.Horizontal.full_replication ~p game )
              ~expected:(q.Datalog.Classify.eval game)),
         move_pairs ));
      (let q =
         Datalog.Classify.of_program ~name:"QNT" ~output:"OUT"
           Datalog.Canned.no_triangle
       in
       (q, "Datalog¬ (not semicon)", "—", None, e_pairs));
    ]
  in
  line "  %-16s %-24s %-24s %-6s %s" "query" "fragment" "monotonicity class"
    "class" "transducer run";
  List.iter
    (fun ((q : Datalog.Classify.query), fragment, cls, runs_ok, pairs) ->
      line "  %-16s %-24s %-24s %-6s %s" q.Datalog.Classify.name fragment
        (Datalog.Classify.class_name (Datalog.Classify.classify q ~pairs))
        cls
        (match runs_ok with
        | None -> "n/a"
        | Some true -> "consistent + coordination-free"
        | Some false -> "FAILED"))
    rows;
  check "syntactic: ¬TC is semi-connected stratified"
    (Datalog.Connectivity.is_semi_connected Datalog.Canned.complement_tc);
  check "syntactic: QNT is not semi-connected"
    (not (Datalog.Connectivity.is_semi_connected Datalog.Canned.no_triangle));
  check "syntactic: open triangle is semi-positive"
    (Datalog.Program.is_semi_positive
       (Datalog.Program.parse "OUT(x,y,z) <- E(x,y), E(y,z), !E(z,x)"));
  check "semantic: strict chain M < Mdistinct < Mdisjoint witnessed"
    (let cls q pairs =
       Datalog.Classify.class_name (Datalog.Classify.classify q ~pairs)
     in
     cls (Datalog.Classify.of_cq ~name:"t" Cq.Examples.triangles_distinct) e_pairs
     = "M"
     && cls (Datalog.Classify.of_cq ~name:"o" Cq.Examples.open_triangle) e_pairs
        = "Mdistinct \\ M"
     && cls
          (Datalog.Classify.of_program ~name:"c" ~output:"OUT"
             Datalog.Canned.complement_tc)
          e_pairs
        = "Mdisjoint \\ Mdistinct"
     && cls
          (Datalog.Classify.of_program ~name:"n" ~output:"OUT"
             Datalog.Canned.no_triangle)
          e_pairs
        = "not Mdisjoint");
  check "all transducer rows executed consistently + coordination-free"
    (List.for_all
       (fun (_, _, _, runs_ok, _) ->
         match runs_ok with None -> true | Some ok -> ok)
       rows);
  (* The wILOG column of Figure 2: value invention extends each fragment
     while preserving its monotonicity class — witnessed by a SP-wILOG
     program (fresh witness value per non-edge) landing in Mdistinct. *)
  let sp_wilog =
    Datalog.Invention.parse "W(n,x,y) <- ADom(x), ADom(y), !E(x,y)"
  in
  let wq =
    {
      Datalog.Classify.name = "SP-wILOG witness";
      eval = (fun i -> Datalog.Invention.query sp_wilog ~output:"W" i);
    }
  in
  check "SP-wILOG program (invention) classifies as Mdistinct \\ M"
    (Datalog.Classify.class_name (Datalog.Classify.classify wq ~pairs:e_pairs)
    = "Mdistinct \\ M");
  check "invention-free wILOG coincides with Datalog (TC)"
    (let text = "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), TC(z,y)" in
     Relational.Instance.equal
       (Datalog.Eval.query (Datalog.Program.parse text) ~output:"TC" graph)
       (Datalog.Invention.query (Datalog.Invention.parse text) ~output:"TC"
          graph))

(* ------------------------------------------------------------------ *)
(* E1: repartition join loads (Example 3.1(1a))                        *)

let e1 () =
  section "E1: repartition join — load m/p without skew, m with (Ex. 3.1(1a))";
  let m = 8000 in
  line "  m = %d per relation (2m facts)" m;
  line "  %-6s %-12s %-12s %-8s %-12s" "p" "load(free)" "2m/p thry" "eps"
    "load(skew)";
  List.iter
    (fun p ->
      let free = Mpc.Workload.join_skew_free ~m in
      let skew = Mpc.Workload.join_skewed ~m in
      let _, s_free = Mpc.Repartition_join.run ~materialize:false ~executor:(exec ()) ~p free in
      let _, s_skew = Mpc.Repartition_join.run ~materialize:false ~executor:(exec ()) ~p skew in
      metric
        (Printf.sprintf "load_free_p%d" p)
        (float_of_int (Mpc.Stats.max_load s_free));
      metric
        (Printf.sprintf "load_skew_p%d" p)
        (float_of_int (Mpc.Stats.max_load s_skew));
      metric_stats (Printf.sprintf "free_p%d" p) ~m:(2 * m) s_free;
      metric_stats (Printf.sprintf "skew_p%d" p) ~m:(2 * m) s_skew;
      line "  %-6d %-12d %-12d %-8.2f %-12d" p
        (Mpc.Stats.max_load s_free)
        (2 * m / p)
        (Mpc.Stats.epsilon ~m:(2 * m) s_free)
        (Mpc.Stats.max_load s_skew))
    [ 4; 8; 16; 32; 64 ];
  line "  shape: load(free) tracks 2m/p (eps ~ 0); load(skew) pins at 2m."

(* ------------------------------------------------------------------ *)
(* E2: grid join loads (Example 3.1(1b))                               *)

let e2 () =
  section "E2: grid join — load m/sqrt(p) independent of skew (Ex. 3.1(1b))";
  let m = 8000 in
  line "  m = %d per relation" m;
  line "  %-6s %-12s %-12s %-14s %-12s" "p" "load(free)" "load(skew)"
    "2m/sqrt(p)" "repl. rate";
  List.iter
    (fun p ->
      let free = Mpc.Workload.join_skew_free ~m in
      let skew = Mpc.Workload.join_skewed ~m in
      let _, s_free = Mpc.Grid_join.run ~materialize:false ~executor:(exec ()) ~p free in
      let _, s_skew = Mpc.Grid_join.run ~materialize:false ~executor:(exec ()) ~p skew in
      metric_stats (Printf.sprintf "free_p%d" p) ~m:(2 * m) s_free;
      metric_stats (Printf.sprintf "skew_p%d" p) ~m:(2 * m) s_skew;
      line "  %-6d %-12d %-12d %-14.0f %-12.1f" p
        (Mpc.Stats.max_load s_free)
        (Mpc.Stats.max_load s_skew)
        (2.0 *. float_of_int m /. sqrt (float_of_int p))
        (Mpc.Stats.replication_rate ~m:(2 * m) s_free))
    [ 4; 16; 64 ];
  line "  shape: identical loads with and without skew; replication ~ sqrt(p)."

(* ------------------------------------------------------------------ *)
(* E3: HyperCube triangle (Example 3.2) vs the two-round cascade       *)

let e3 () =
  section "E3: HyperCube triangle — load m/p^(2/3) skew-free (Ex. 3.2)";
  let m = 4000 in
  let rng = Random.State.make [| 3 |] in
  let free = Mpc.Workload.triangle_skew_free ~rng ~m ~domain:m in
  let total = Relational.Instance.cardinal free in
  line "  m = %d per relation (%d facts total)" m total;
  line "  %-6s %-18s %-12s %-14s %-8s" "p" "shares" "load(1rnd)"
    "M/p^(2/3) thry" "eps";
  List.iter
    (fun p ->
      let _, stats, shares =
        Mpc.Hypercube.run ~materialize:false ~executor:(exec ()) ~p Cq.Examples.q2_triangle free
      in
      metric
        (Printf.sprintf "load_p%d" p)
        (float_of_int (Mpc.Stats.max_load stats));
      metric_stats (Printf.sprintf "p%d" p) ~m:total stats;
      line "  %-6d %-18s %-12d %-14.0f %-8.2f" p
        (String.concat ","
           (List.map (fun (v, s) -> Printf.sprintf "%s=%d" v s) shares))
        (Mpc.Stats.max_load stats)
        (float_of_int total /. Float.pow (float_of_int p) (2.0 /. 3.0))
        (Mpc.Stats.epsilon ~m:total stats))
    [ 8; 27; 64 ];
  let p = 27 in
  let _, casc = Mpc.Multi_round.cascade_triangle ~executor:(exec ()) ~p free in
  let _, hc, _ =
    Mpc.Hypercube.run ~materialize:false ~executor:(exec ()) ~p Cq.Examples.q2_triangle free
  in
  line "  at p = %d: cascade (2 rounds) max load %d, total comm %d" p
    (Mpc.Stats.max_load casc)
    (Mpc.Stats.total_communication casc);
  line "            hypercube (1 round) max load %d, total comm %d"
    (Mpc.Stats.max_load hc)
    (Mpc.Stats.total_communication hc);
  line
    "  shape: one-round load tracks M/p^(2/3); the cascade trades a second\n\
    \  synchronization barrier against shipping the intermediate |R join S|."

(* ------------------------------------------------------------------ *)
(* E4: skew (Section 3.2)                                              *)

let e4 () =
  section "E4: skew — one round degrades, two rounds recover (Section 3.2)";
  let m = 4000 in
  let p = 27 in
  let rng = Random.State.make [| 4 |] in
  line "  triangle, m = %d per relation, p = %d, heavy join attribute y:" m p;
  line "  %-10s %-16s %-16s %-10s" "heavy frac" "1-round load" "2-round load"
    "#heavy";
  List.iter
    (fun fraction ->
      let skewed =
        Mpc.Workload.triangle_y_skew ~rng ~m ~domain:m ~heavy_fraction:fraction
      in
      let _, one_round, _ =
        Mpc.Hypercube.run ~materialize:false ~executor:(exec ()) ~p Cq.Examples.q2_triangle skewed
      in
      let _, two_round, heavy =
        Mpc.Multi_round.skew_resilient_triangle ~executor:(exec ()) ~p skewed
      in
      line "  %-10.1f %-16d %-16d %-10d" fraction
        (Mpc.Stats.max_load one_round)
        (Mpc.Stats.max_load two_round)
        heavy)
    [ 0.0; 0.2; 0.5; 0.8 ];
  let total = 3 * m in
  line "  theory: skew-free target M/p^(2/3) = %.0f; one-round skewed floor"
    (float_of_int total /. Float.pow (float_of_int p) (2.0 /. 3.0));
  line "  M/sqrt(p) = %.0f." (float_of_int total /. sqrt (float_of_int p));
  line "";
  line "  binary join under worst-case skew (the m/sqrt(p) floor holds for";
  line "  any number of rounds — Section 3.2):";
  let skewj = Mpc.Workload.join_skewed ~m in
  let _, rep = Mpc.Repartition_join.run ~materialize:false ~executor:(exec ()) ~p skewj in
  let _, grid = Mpc.Grid_join.run ~materialize:false ~executor:(exec ()) ~p skewj in
  line "  repartition: %d;  grid: %d;  2m/sqrt(p) = %.0f"
    (Mpc.Stats.max_load rep) (Mpc.Stats.max_load grid)
    (2.0 *. float_of_int m /. sqrt (float_of_int p))

(* ------------------------------------------------------------------ *)
(* E5: Shares trade-off (Afrati–Ullman vs BKS; [9], [27])              *)

let e5 () =
  section "E5: share allocation — replication vs per-server load ([9],[27])";
  let q = Cq.Examples.q2_triangle in
  let m = 4000 in
  let sizes _ = m in
  line "  triangle query, equal relation sizes m = %d:" m;
  line "  %-6s %-18s %-12s %-18s %-12s" "p" "shares(minload)" "pred.load"
    "shares(mincomm)" "pred.comm";
  List.iter
    (fun p ->
      let s_ml, v_ml =
        Mpc.Shares.optimize ~objective:Mpc.Shares.Max_load ~p ~sizes q
      in
      let s_tc, v_tc =
        Mpc.Shares.optimize ~objective:Mpc.Shares.Total_communication ~p ~sizes q
      in
      let show s =
        String.concat "," (List.map (fun (v, k) -> Printf.sprintf "%s=%d" v k) s)
      in
      line "  %-6d %-18s %-12.0f %-18s %-12.0f" p (show s_ml) v_ml (show s_tc)
        v_tc)
    [ 8; 16; 27; 64 ];
  line "";
  line "  asymmetric sizes (|R| = 1000·|S| = 1000·|T|): both objectives shield";
  line "  the large relation from replication (share 1 on the dimension that";
  line "  would copy it), concentrating the budget on R's own variables:";
  let asym (a : Cq.Ast.atom) = if a.Cq.Ast.rel = "R" then 100 * m else m / 10 in
  line "  %-6s %-18s %-12s %-18s %-12s" "p" "shares(minload)" "pred.load"
    "shares(mincomm)" "pred.comm";
  List.iter
    (fun p ->
      let s_ml, v_ml =
        Mpc.Shares.optimize ~objective:Mpc.Shares.Max_load ~p ~sizes:asym q
      in
      let s_tc, v_tc =
        Mpc.Shares.optimize ~objective:Mpc.Shares.Total_communication ~p
          ~sizes:asym q
      in
      let show s =
        String.concat "," (List.map (fun (v, k) -> Printf.sprintf "%s=%d" v k) s)
      in
      line "  %-6d %-18s %-12.0f %-18s %-12.0f" p (show s_ml) v_ml (show s_tc)
        v_tc)
    [ 16; 64 ];
  line "";
  line "  replication rate r vs reducer size (measured, one-round HyperCube):";
  let rng = Random.State.make [| 5 |] in
  let free = Mpc.Workload.triangle_skew_free ~rng ~m ~domain:m in
  let total = Relational.Instance.cardinal free in
  line "  %-6s %-14s %-16s" "p" "max load q" "replication r";
  List.iter
    (fun p ->
      let _, stats, _ =
        Mpc.Hypercube.run ~materialize:false ~executor:(exec ()) ~p Cq.Examples.q2_triangle free
      in
      line "  %-6d %-14d %-16.2f" p
        (Mpc.Stats.max_load stats)
        (Mpc.Stats.replication_rate ~m:total stats))
    [ 1; 8; 27; 64 ];
  line "  shape: r grows like p^(1/3) while the reducer size shrinks — the";
  line "  trade-off of Das Sarma et al. [27]."

(* ------------------------------------------------------------------ *)
(* E6: GYM / Yannakakis (Section 3.2, [6][58])                         *)

let e6 () =
  section "E6: GYM — rounds vs communication on acyclic queries ([6],[58])";
  let rng = Random.State.make [| 6 |] in
  let m = 3000 in
  let i =
    Mpc.Workload.acyclic_chain ~rng ~m ~domain:(m / 2)
      ~rels:[ "R1"; "R2"; "R3"; "R4" ]
  in
  let chain =
    Cq.Parser.query "H(x0,x4) <- R1(x0,x1), R2(x1,x2), R3(x2,x3), R4(x3,x4)"
  in
  let star = Cq.Parser.query "H(x) <- R1(x,a), R2(x,b), R3(x,c), R4(x,d)" in
  (* GYO happens to build a caterpillar for the star query; a flat tree
     (all atoms under R1) shows GYM's depth/rounds trade-off, the point
     of the tree-decomposition choice in [6]. *)
  let flat_star_forest =
    let leaf name v =
      {
        Cq.Hypergraph.atom = Cq.Ast.atom name [ Cq.Ast.Var "x"; Cq.Ast.Var v ];
        vars = Cq.Hypergraph.Sset.of_list [ "x"; v ];
        children = [];
      }
    in
    [
      {
        Cq.Hypergraph.atom = Cq.Ast.atom "R1" [ Cq.Ast.Var "x"; Cq.Ast.Var "a" ];
        vars = Cq.Hypergraph.Sset.of_list [ "x"; "a" ];
        children = [ leaf "R2" "b"; leaf "R3" "c"; leaf "R4" "d" ];
      };
    ]
  in
  line "  m = %d per relation, p = 16:" m;
  line "  %-26s %-8s %-12s %-12s %s" "plan" "rounds" "max load" "total comm"
    "|output|";
  List.iter
    (fun (name, q, forest) ->
      let result, stats =
        Mpc.Yannakakis.gym ?forest ~executor:(exec ()) ~p:16 q i
      in
      line "  %-26s %-8d %-12d %-12d %d" name
        (Mpc.Stats.rounds stats)
        (Mpc.Stats.max_load stats)
        (Mpc.Stats.total_communication stats)
        (Relational.Instance.cardinal result))
    [
      ("chain of 4 (deep tree)", chain, None);
      ("star of 4 (GYO caterpillar)", star, None);
      ("star of 4 (flat tree)", star, Some flat_star_forest);
    ];
  (* GYM on a *cyclic* query through a tree decomposition: bags are
     joined by HyperCube in round 1, Yannakakis finishes over the bag
     tree. *)
  let rng2 = Random.State.make [| 66 |] in
  let four_cycle =
    Cq.Parser.query "H(x,y,z,w) <- R(x,y), S(y,z), T(z,w), U(w,x)"
  in
  let cyc_input =
    List.fold_left
      (fun acc rel ->
        Relational.Instance.union acc
          (Relational.Generate.random_relation ~rng:rng2 ~rel ~arity:2
             ~size:(m / 2) ~domain:(m / 4) ()))
      Relational.Instance.empty [ "R"; "S"; "T"; "U" ]
  in
  let result, stats, width =
    Mpc.Gym_ghd.run ~executor:(exec ()) ~p:16 four_cycle cyc_input
  in
  line "";
  line "  cyclic 4-cycle query via GHD (min-fill, width %d bags):" width;
  line "  %-26s %-8d %-12d %-12d %d" "GYM over decomposition"
    (Mpc.Stats.rounds stats)
    (Mpc.Stats.max_load stats)
    (Mpc.Stats.total_communication stats)
    (Relational.Instance.cardinal result);
  let dangling =
    Relational.Instance.of_string
      "R1(1,2). R1(8,9). R2(2,3). R2(5,6). R3(3,4). R4(4,7)"
  in
  line "";
  line "  full reducer on a dangling-heavy instance:";
  List.iter
    (fun ((a : Cq.Ast.atom), before, after) ->
      line "    %-4s %d -> %d tuples" a.Cq.Ast.rel before after)
    (Mpc.Yannakakis.reduction_report chain dangling);
  line "  shape: deeper trees need more rounds; flat trees parallelize the";
  line "  semi-joins; reduction removes every dangling tuple."

(* ------------------------------------------------------------------ *)
(* E7: cost of the static analyses (Theorems 4.8 / 4.14)               *)

let e7 () =
  section "E7: static analysis cost growth (Pi^p_2 / Pi^p_3 behaviour)";
  let universe = [ Relational.Value.str "a"; Relational.Value.str "b" ] in
  let policy k =
    Distribution.Policy.make
      ~universe:(Relational.Value.set_of_list universe)
      ~name:"hash" ~nodes:[ 0; 1 ]
      (fun n f -> (Relational.Fact.hash f + k) mod 2 = n)
  in
  let chain k =
    let body =
      List.init k (fun j -> Printf.sprintf "R%d(x%d,x%d)" j j (j + 1))
    in
    Cq.Parser.query
      (Printf.sprintf "H(x0,x%d) <- %s" k (String.concat ", " body))
  in
  line "  PC decision (minimal-valuation enumeration over |U| = 2):";
  line "  %-10s %-14s %-14s" "atoms" "time (ms)" "verdict";
  List.iter
    (fun k ->
      let q = chain k in
      let t0 = Sys.time () in
      let verdict = Correctness.Parallel_correctness.decide q (policy k) in
      let dt = (Sys.time () -. t0) *. 1000.0 in
      line "  %-10d %-14.2f %-14s" k dt
        (match verdict with Ok () -> "correct" | Error _ -> "violated"))
    [ 1; 2; 3; 4; 5; 6 ];
  line "  transfer decision (Pi^p_3: one more quantifier alternation):";
  line "  %-10s %-14s %-14s" "atoms" "time (ms)" "transfers";
  List.iter
    (fun k ->
      let q = chain k and q' = chain k in
      let t0 = Sys.time () in
      let r = Correctness.Transfer.transfers q q' in
      let dt = (Sys.time () -. t0) *. 1000.0 in
      line "  %-10d %-14.2f %-14b" k dt r)
    [ 1; 2; 3 ];
  line "  shape: exponential in the number of variables — the completeness";
  line "  levels bite — while remaining practical as static analysis."

(* ------------------------------------------------------------------ *)
(* E8: eventual consistency and coordination-freeness (Section 5)      *)

let e8 () =
  section "E8: transducer networks — consistency across runs (Section 5)";
  let graph =
    Relational.Instance.of_string
      "E(1,2). E(2,3). E(3,1). E(3,4). E(4,5). E(5,3). E(1,4)"
  in
  let p = 3 in
  let distributions =
    [
      Transducer.Horizontal.round_robin ~p graph;
      Transducer.Horizontal.full_replication ~p graph;
      Transducer.Horizontal.random_split ~rng:(Random.State.make [| 8 |]) ~p graph;
    ]
  in
  let triangles = Cq.Eval.eval Cq.Examples.triangles_distinct in
  let open_triangles = Cq.Eval.eval Cq.Examples.open_triangle in
  let fact_policy =
    Distribution.Policy.make
      ~universe:(Relational.Instance.adom graph)
      ~name:"hash-facts" ~nodes:(Distribution.Node.range p)
      (fun n f -> Relational.Fact.hash f mod p = n)
  in
  let bc_policy =
    Distribution.Policy.broadcast_all
      ~universe:(Relational.Instance.adom graph) ~name:"bc" ~p ()
  in
  line "  %-34s %-12s %s" "program" "consistent" "coordination-free";
  let row name make ideal_make expected dists =
    let consistent =
      Result.is_ok (Transducer.Calm.consistent ~make ~expected dists)
    in
    let free =
      Result.is_ok
        (Transducer.Calm.coordination_free ~make:ideal_make ~expected
           (Transducer.Horizontal.full_replication ~p graph))
    in
    line "  %-34s %-12b %b" name consistent free
  in
  let mono_tri = Transducer.Programs.monotone_broadcast ~name:"t" ~eval:triangles in
  row "triangles / naive broadcast"
    (fun d -> Transducer.Network.create mono_tri d)
    (fun d -> Transducer.Network.create mono_tri d)
    (triangles graph) distributions;
  let mono_open =
    Transducer.Programs.monotone_broadcast ~name:"o" ~eval:open_triangles
  in
  row "open-tri / naive broadcast"
    (fun d -> Transducer.Network.create mono_open d)
    (fun d -> Transducer.Network.create mono_open d)
    (open_triangles graph)
    [ Transducer.Horizontal.round_robin ~p graph ];
  let coord = Transducer.Programs.coordinated ~name:"c" ~eval:open_triangles in
  row "open-tri / coordinated"
    (fun d -> Transducer.Network.create coord d)
    (fun d -> Transducer.Network.create coord d)
    (open_triangles graph) distributions;
  let aware = Transducer.Programs.open_triangle_policy_aware ~name:"pa" in
  row "open-tri / policy-aware (F1)"
    (fun d -> Transducer.Network.create ~policy:fact_policy aware d)
    (fun d -> Transducer.Network.create ~policy:bc_policy aware d)
    (open_triangles graph)
    [ Transducer.Horizontal.by_policy fact_policy graph ];
  line "  expected: naive broadcast is consistent + coordination-free only";
  line "  for the monotone query; coordination computes the rest but is not";
  line "  coordination-free; policy-awareness recovers it for Mdistinct (CALM)."

(* ------------------------------------------------------------------ *)
(* E9: broadcast economy (Section 6, [37])                             *)

let e9 () =
  section "E9: broadcasting economy — messages shipped per strategy ([37])";
  let rng = Random.State.make [| 9 |] in
  let graph = Relational.Generate.random_graph ~rng ~nodes:12 ~edges:40 () in
  let noise =
    Relational.Generate.random_relation ~rng ~rel:"Noise" ~arity:2 ~size:40
      ~domain:12 ()
  in
  let input = Relational.Instance.union graph noise in
  let p = 4 in
  let triangles = Cq.Eval.eval Cq.Examples.triangles_distinct in
  let relevant rels i =
    Relational.Instance.filter (fun f -> List.mem (Relational.Fact.rel f) rels) i
  in
  let run name program =
    let net =
      Transducer.Network.create program
        (Transducer.Horizontal.round_robin ~p input)
    in
    let out = Transducer.Scheduler.drain ~schedule:Transducer.Scheduler.Fifo net in
    let ok = Relational.Instance.equal out (triangles input) in
    line "  %-30s data msgs %-6d control msgs %-6d correct %b" name
      (Transducer.Network.data_deliveries net)
      (Transducer.Network.deliveries net - Transducer.Network.data_deliveries net)
      ok
  in
  run "naive broadcast (all facts)"
    (Transducer.Programs.monotone_broadcast ~name:"naive" ~eval:triangles);
  let base = Transducer.Programs.monotone_broadcast ~name:"rel" ~eval:triangles in
  let query_relevant =
    {
      base with
      Transducer.Program.step =
        (fun ctx ~local ~memory event ->
          base.Transducer.Program.step ctx
            ~local:(relevant [ "E" ] local)
            ~memory event);
    }
  in
  run "query-relevant broadcast" query_relevant;
  (* The semi-join-filtered strategy needs a full CQ without self-joins:
     run the three-relation triangle on an R/S/T rendering of the same
     data plus the distractors. *)
  let rst_input =
    Relational.Instance.union (Mpc.Workload.triangle_from_graph graph) noise
  in
  let rst_triangles = Cq.Eval.eval Cq.Examples.q2_triangle in
  let run_rst name program =
    let net =
      Transducer.Network.create program
        (Transducer.Horizontal.round_robin ~p rst_input)
    in
    let out = Transducer.Scheduler.drain ~schedule:Transducer.Scheduler.Fifo net in
    let ok = Relational.Instance.equal out (rst_triangles rst_input) in
    line "  %-30s data msgs %-6d control msgs %-6d correct %b" name
      (Transducer.Network.data_deliveries net)
      (Transducer.Network.deliveries net - Transducer.Network.data_deliveries net)
      ok
  in
  run_rst "naive broadcast (R,S,T)"
    (Transducer.Programs.monotone_broadcast ~name:"naive-rst" ~eval:rst_triangles);
  run_rst "semi-join filtered ([37])"
    (Transducer.Programs.semijoin_broadcast ~name:"econ-rst"
       ~query:Cq.Examples.q2_triangle);
  run "coordinated (control overhead)"
    (Transducer.Programs.coordinated ~name:"coord" ~eval:triangles);
  line "  shape: filtering (by query relevance, then by semi-join";
  line "  compatibility) cuts the data shipped — the direction of";
  line "  Ketsman–Neven's economical strategies; coordination instead adds";
  line "  control messages on top of all the data."

(* ------------------------------------------------------------------ *)
(* E10: large intermediate results (Chu–Balazinska–Suciu [26])         *)

let e10 () =
  section "E10: HyperCube wins on large intermediates, loses on small ([26])";
  let m = 3000 in
  let p = 27 in
  let k_query = Cq.Parser.query "K(x,y,z) <- R(x,y), S(y,z)" in
  line "  triangle, m = %d per relation, p = %d, density sweep:" m p;
  line "  %-8s %-14s %-10s %-16s %-16s %s" "domain" "|R join S|" "|out|"
    "cascade comm" "hypercube comm" "winner";
  List.iter
    (fun domain ->
      let rng = Random.State.make [| domain |] in
      let i = Mpc.Workload.triangle_skew_free ~rng ~m ~domain in
      let intermediate =
        Relational.Instance.cardinal (Cq.Eval.eval k_query i)
      in
      let out, casc = Mpc.Multi_round.cascade_triangle ~executor:(exec ()) ~p i in
      let _, hc, _ =
        Mpc.Hypercube.run ~materialize:false ~executor:(exec ()) ~p Cq.Examples.q2_triangle i
      in
      let c_comm = Mpc.Stats.total_communication casc
      and h_comm = Mpc.Stats.total_communication hc in
      line "  %-8d %-14d %-10d %-16d %-16d %s" domain intermediate
        (Relational.Instance.cardinal out)
        c_comm h_comm
        (if h_comm < c_comm then "hypercube" else "cascade"))
    [ 100; 300; 1000; 5000 ];
  line "  shape: dense inputs blow up the cascade's intermediate |R ⋈ S|";
  line "  while HyperCube's cost stays at ~3m·p^(1/3); on sparse/selective";
  line "  inputs the replication makes HyperCube the loser — the crossover";
  line "  of [26].";
  line "";
  (* Local computation: the worst-case optimal generic join vs the
     binary backtracking evaluator on a skewed triangle whose
     intermediate join is quadratic but whose output is tiny. *)
  let rng = Random.State.make [| 26 |] in
  let skewed =
    Mpc.Workload.triangle_y_skew ~rng ~m:1000 ~domain:1000 ~heavy_fraction:1.0
  in
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (r, (Sys.time () -. t0) *. 1000.0)
  in
  let r1, t_bt = time (fun () -> Cq.Eval.eval Cq.Examples.q2_triangle skewed) in
  let r2, t_gj =
    time (fun () -> Cq.Generic_join.eval Cq.Examples.q2_triangle skewed)
  in
  line "  local evaluation on a fully skewed triangle (m = 1000, output %d):"
    (Relational.Instance.cardinal r1);
  line "  binary backtracking: %8.1f ms;  generic join: %8.1f ms;  equal: %b"
    t_bt t_gj
    (Relational.Instance.equal r1 r2);
  line "  shape: the worst-case optimal join avoids the quadratic";
  line "  intermediate — the local algorithm [26] pairs with HyperCube."

(* ------------------------------------------------------------------ *)
(* E11: multi-round vs one-round on tree-like CQs over matching DBs    *)

let e11 () =
  section
    "E11: chains on matching databases — rounds buy load (Section 3.2, [20])";
  let m = 4000 in
  let p = 16 in
  line "  chain queries on matching databases (every value occurs once),";
  line "  m = %d per relation, p = %d:" m p;
  line "  %-10s %-8s %-14s %-10s %-14s %-16s" "chain len" "tau*"
    "1-rnd load" "rounds" "GYM max load" "1-rnd theory";
  List.iter
    (fun k ->
      (* Matching database: R_i = {(j + (i-1)m, j + i·m)}. *)
      let i =
        List.fold_left
          (fun acc idx ->
            Relational.Instance.union acc
              (Relational.Instance.of_facts
                 (List.init m (fun j ->
                      Relational.Fact.of_ints
                        (Printf.sprintf "R%d" idx)
                        [ j + ((idx - 1) * m); j + (idx * m) ]))))
          Relational.Instance.empty
          (List.init k (fun x -> x + 1))
      in
      let body =
        List.init k (fun j -> Printf.sprintf "R%d(x%d,x%d)" (j + 1) j (j + 1))
      in
      let q =
        Cq.Parser.query
          (Printf.sprintf "H(x0,x%d) <- %s" k (String.concat ", " body))
      in
      let tau = Cq.Hypergraph.tau_star q in
      let _, hc, _ = Mpc.Hypercube.run ~materialize:false ~executor:(exec ()) ~p q i in
      let _, gym = Mpc.Yannakakis.gym ~executor:(exec ()) ~p q i in
      let total = Relational.Instance.cardinal i in
      line "  %-10d %-8.1f %-14d %-10d %-14d %-16.0f" k tau
        (Mpc.Stats.max_load hc)
        (Mpc.Stats.rounds gym)
        (Mpc.Stats.max_load gym)
        (float_of_int total
        /. Float.pow (float_of_int p) (1.0 /. tau)))
    [ 2; 3; 4; 5 ];
  line "  shape: one-round load degrades as m/p^(1/ceil(k/2)) with the chain";
  line "  length (tau* grows), while the multi-round Yannakakis passes keep";
  line "  the per-round load near m/p — the trade-off behind the paper's";
  line "  nearly matching multi-round bounds on matching databases."

(* ------------------------------------------------------------------ *)
(* E12: interned engine vs the pre-interning reference engine          *)

let e12 () =
  section
    "E12: interned storage + compiled plans vs the reference engine";
  let scale n = if !smoke then max 1 (n / 20) else n in
  let time f =
    let t0 = Runtime.Metrics.now () in
    let r = f () in
    (r, 1000.0 *. (Runtime.Metrics.now () -. t0))
  in
  let report label old_ms new_ms =
    line "  %-44s old %8.1f ms   new %8.1f ms   %5.1fx" label old_ms new_ms
      (old_ms /. new_ms)
  in
  (* Transitive closure, semi-naive, on a random graph an order of
     magnitude beyond what fig2/timings exercise. *)
  let rng = Random.State.make [| 12 |] in
  let nodes = scale 500 and edges = scale 1000 in
  let graph = Relational.Generate.random_graph ~rng ~nodes ~edges () in
  let tc = Datalog.Canned.transitive_closure in
  let old_r, old_ms =
    time (fun () ->
        Datalog.Eval.run_reference ~strategy:Datalog.Eval.Seminaive tc graph)
  in
  let new_r, new_ms =
    time (fun () ->
        Datalog.Eval.run ~strategy:Datalog.Eval.Seminaive tc graph)
  in
  line "  TC over random graph: %d nodes, %d edge samples, |TC| = %d" nodes
    edges
    (Relational.Instance.cardinal
       (Relational.Instance.filter
          (fun f -> Relational.Fact.rel f = "TC")
          new_r));
  check "TC(random): interned result = reference result"
    (Relational.Instance.equal old_r new_r);
  report "TC random graph (seminaive)" old_ms new_ms;
  metric "tc_random_old_ms" old_ms;
  metric "tc_random_new_ms" new_ms;
  metric "tc_random_speedup" (old_ms /. new_ms);
  (* Path chain: maximal round count for the fixpoint, so the per-round
     index-rebuild cost of the reference engine dominates. *)
  let n = scale 128 in
  let chain =
    Relational.Instance.of_facts
      (List.init (max 1 (n - 1)) (fun i ->
           Relational.Fact.of_ints "E" [ i; i + 1 ]))
  in
  let old_r, old_ms =
    time (fun () ->
        Datalog.Eval.run_reference ~strategy:Datalog.Eval.Seminaive tc chain)
  in
  let new_r, new_ms =
    time (fun () ->
        Datalog.Eval.run ~strategy:Datalog.Eval.Seminaive tc chain)
  in
  check
    (Printf.sprintf "TC(path, n = %d): interned result = reference result" n)
    (Relational.Instance.equal old_r new_r);
  report "TC path chain (seminaive)" old_ms new_ms;
  metric "tc_chain_old_ms" old_ms;
  metric "tc_chain_new_ms" new_ms;
  metric "tc_chain_speedup" (old_ms /. new_ms);
  let naive_r, naive_ms =
    time (fun () -> Datalog.Eval.run ~strategy:Datalog.Eval.Naive tc chain)
  in
  check "TC(path): naive = seminaive on the interned engine"
    (Relational.Instance.equal naive_r new_r);
  metric "tc_chain_naive_new_ms" naive_ms;
  (* Triangle join, local evaluation, 10x the e3/e9 workload. *)
  let m = scale 40000 in
  let rng = Random.State.make [| 112 |] in
  let tri = Mpc.Workload.triangle_skew_free ~rng ~m ~domain:m in
  let old_r, old_ms =
    time (fun () -> Cq.Eval.Reference.eval Cq.Examples.q2_triangle tri)
  in
  let new_r, new_ms =
    time (fun () -> Cq.Eval.eval Cq.Examples.q2_triangle tri)
  in
  line "  triangle: m = %d per relation, %d triangles" m
    (Relational.Instance.cardinal new_r);
  check "triangle: compiled plan result = reference result"
    (Relational.Instance.equal old_r new_r);
  report "triangle join (local eval)" old_ms new_ms;
  metric "triangle_old_ms" old_ms;
  metric "triangle_new_ms" new_ms;
  metric "triangle_speedup" (old_ms /. new_ms);
  (* Same workload through the full MPC simulator on both backends: the
     load statistics must be bit-identical — the engine swap may only
     change wall clock. *)
  let p = 8 in
  let tri = Mpc.Workload.triangle_skew_free ~rng ~m:(scale 20000) ~domain:(scale 20000) in
  let (r_seq, s_seq, _), seq_ms =
    time (fun () ->
        Mpc.Hypercube.run ~executor:Runtime.Executor.sequential ~p
          Cq.Examples.q2_triangle tri)
  in
  let pool = Runtime.Pool.create ~domains:4 () in
  let (r_pool, s_pool, _), pool_ms =
    time (fun () ->
        Mpc.Hypercube.run ~executor:(Runtime.Executor.pool pool) ~p
          Cq.Examples.q2_triangle tri)
  in
  Runtime.Pool.shutdown pool;
  check "hypercube: results equal, stats bit-identical (seq vs pool)"
    (Relational.Instance.equal r_seq r_pool && s_seq = s_pool);
  line "  hypercube p = %d: seq %.1f ms, pool(4) %.1f ms" p seq_ms pool_ms;
  metric "hypercube_seq_ms" seq_ms;
  metric "hypercube_pool_ms" pool_ms;
  line
    "  shape: identical outputs and load stats. The win is largest where\n\
    \  work is repeated — fixpoints re-deriving millions of duplicates,\n\
    \  repeated evaluation over a warm index; a one-shot join evaluates\n\
    \  ~10x faster on a warm index but pays the interning toll up front,\n\
    \  landing near parity end-to-end."

(* ------------------------------------------------------------------ *)
(* E13: recovery overhead under deterministic fault plans              *)

(* Seed and spec for the chaos row of e13, settable from the command
   line so CI can sweep seeds (--fault-seed=N, --faults=SPEC). *)
let fault_seed = ref 1
let faults_spec = ref "chaos"

let e13 () =
  section "E13: checkpoint/replay recovery overhead under fault plans";
  let scale n = if !smoke then max 10 (n / 10) else n in
  let seed = !fault_seed in
  let rng () = Random.State.make [| 13 |] in
  let join_i = Mpc.Workload.join_skew_free ~m:(scale 2000) in
  let tri_i =
    Mpc.Workload.triangle_skew_free ~rng:(rng ()) ~m:(scale 1200)
      ~domain:(scale 400)
  in
  let skew_i =
    Mpc.Workload.triangle_y_skew ~rng:(rng ()) ~m:(scale 1200)
      ~domain:(scale 400) ~heavy_fraction:0.3
  in
  let chain_q = Cq.Parser.query "H(x0,x3) <- R1(x0,x1), R2(x1,x2), R3(x2,x3)" in
  let chain_i =
    Mpc.Workload.acyclic_chain ~rng:(rng ()) ~m:(scale 1500) ~domain:(scale 500)
      ~rels:[ "R1"; "R2"; "R3" ]
  in
  let algorithms =
    [
      ( "repartition",
        join_i,
        fun ~faults ->
          Mpc.Repartition_join.run ~executor:(exec ()) ~faults ~p:16 join_i );
      ( "grid",
        join_i,
        fun ~faults -> Mpc.Grid_join.run ~executor:(exec ()) ~faults ~p:16 join_i
      );
      ( "hypercube",
        tri_i,
        fun ~faults ->
          let r, s, _ =
            Mpc.Hypercube.run ~executor:(exec ()) ~faults ~p:8
              Cq.Examples.q2_triangle tri_i
          in
          (r, s) );
      ( "cascade",
        tri_i,
        fun ~faults ->
          Mpc.Multi_round.cascade_triangle ~executor:(exec ()) ~faults ~p:8 tri_i
      );
      ( "skew-resilient",
        skew_i,
        fun ~faults ->
          let r, s, _ =
            Mpc.Multi_round.skew_resilient_triangle ~executor:(exec ()) ~faults
              ~p:8 skew_i
          in
          (r, s) );
      ( "gym",
        chain_i,
        fun ~faults ->
          Mpc.Yannakakis.gym ~executor:(exec ()) ~faults ~p:8 chain_q chain_i );
      ( "gym-ghd",
        tri_i,
        fun ~faults ->
          let r, s, _ =
            Mpc.Gym_ghd.run ~executor:(exec ()) ~faults ~p:8
              Cq.Examples.q2_triangle tri_i
          in
          (r, s) );
    ]
  in
  let crash_rates = [ 0.05; 0.1; 0.2 ] in
  let chaos_plan =
    try Faults.Plan.of_string ~seed !faults_spec
    with Invalid_argument msg ->
      line "  bad --faults spec (%s); falling back to chaos" msg;
      Faults.Plan.make ~seed Faults.Plan.chaos
  in
  let chaos_plan =
    if Faults.Plan.is_none chaos_plan then Faults.Plan.make ~seed Faults.Plan.chaos
    else chaos_plan
  in
  line "  fault seed %d; plans: zero, crash rates {%s} (+transient), %a" seed
    (String.concat ", " (List.map (Printf.sprintf "%.2f") crash_rates))
    Faults.Plan.pp chaos_plan;
  List.iter
    (fun (name, input, run) ->
      let m = Relational.Instance.cardinal input in
      let clean_out, clean_stats = run ~faults:Faults.Plan.none in
      metric_stats (name ^ "_clean") ~m clean_stats;
      line "  %-14s p=%d rounds=%d max_load=%d total_comm=%d (clean)" name
        clean_stats.Mpc.Stats.p
        (Mpc.Stats.rounds clean_stats)
        (Mpc.Stats.max_load clean_stats)
        (Mpc.Stats.total_communication clean_stats);
      (* The faulty code path with a zero spec must be a byte-identical
         no-op: fault injection that is off costs nothing. *)
      let zero_out, zero_stats = run ~faults:(Faults.Plan.make ~seed Faults.Plan.zero) in
      check
        (Printf.sprintf "%s: zero-fault plan output and stats byte-identical"
           name)
        (Relational.Instance.equal clean_out zero_out
        && Fmt.str "%a" Mpc.Stats.pp zero_stats
           = Fmt.str "%a" Mpc.Stats.pp clean_stats);
      let faulty key label plan =
        let out, stats = run ~faults:plan in
        check
          (Printf.sprintf "%s under %s: output and clean loads bit-identical"
             name label)
          (Relational.Instance.equal clean_out out
          && stats.Mpc.Stats.rounds = clean_stats.Mpc.Stats.rounds);
        let total = Mpc.Stats.total_communication stats in
        let rload = Mpc.Stats.recovery_load stats in
        let overhead =
          if total = 0 then 1.0
          else float_of_int (total + rload) /. float_of_int total
        in
        line
          "    %-10s recovery: rounds=%d/%d load=%d crashes=%d retries=%d  \
           comm overhead %.2fx"
          label
          (Mpc.Stats.recovery_rounds stats)
          (Mpc.Stats.rounds stats) rload (Mpc.Stats.crashes stats)
          (Mpc.Stats.retries stats) overhead;
        metric (Printf.sprintf "%s_%s_recovery_rounds" name key)
          (float_of_int (Mpc.Stats.recovery_rounds stats));
        metric (Printf.sprintf "%s_%s_recovery_load" name key)
          (float_of_int rload);
        metric (Printf.sprintf "%s_%s_crashes" name key)
          (float_of_int (Mpc.Stats.crashes stats));
        metric (Printf.sprintf "%s_%s_retries" name key)
          (float_of_int (Mpc.Stats.retries stats));
        metric (Printf.sprintf "%s_%s_comm_overhead" name key) overhead
      in
      List.iteri
        (fun i rate ->
          faulty
            (Printf.sprintf "crash%02d" (int_of_float ((rate *. 100.0) +. 0.5)))
            (Printf.sprintf "crash=%.2f" rate)
            (Faults.Plan.make ~seed
               { Faults.Plan.zero with crash = rate; transient = rate });
          ignore i)
        crash_rates;
      faulty "chaos" "chaos" chaos_plan)
    algorithms;
  line
    "  shape: recovered outputs and per-round loads match the clean run\n\
    \  exactly; repair traffic grows with the crash rate and with the\n\
    \  number of rounds exposed to it (multi-round plans replay more)."

(* ------------------------------------------------------------------ *)

(* E14: job-level recovery — what a durable cross-round checkpoint
   costs (none vs in-memory vs on-disk store), and what speculative
   straggler re-execution saves at increasing straggle rates. *)

type e14_algo =
  ?job:Jobs.Supervisor.t ->
  faults:Faults.Plan.t ->
  unit ->
  Relational.Instance.t * Mpc.Stats.t

let e14 () =
  section "E14: checkpoint overhead and speculative straggler mitigation";
  let scale n = if !smoke then max 10 (n / 10) else n in
  let seed = !fault_seed in
  let rng () = Random.State.make [| 14 |] in
  let tri_i =
    Mpc.Workload.triangle_skew_free ~rng:(rng ()) ~m:(scale 1200)
      ~domain:(scale 400)
  in
  let chain_q = Cq.Parser.query "H(x0,x3) <- R1(x0,x1), R2(x1,x2), R3(x2,x3)" in
  let chain_i =
    Mpc.Workload.acyclic_chain ~rng:(rng ()) ~m:(scale 1500) ~domain:(scale 500)
      ~rels:[ "R1"; "R2"; "R3" ]
  in
  let reps = if !smoke then 1 else 3 in
  (* Median wall clock over [reps] runs, in milliseconds; one untimed
     warm-up first so page faults and GC growth don't land on whichever
     variant happens to run first. *)
  let timed f =
    let once () =
      let t0 = Runtime.Metrics.now () in
      let v = f () in
      (v, 1000.0 *. (Runtime.Metrics.now () -. t0))
    in
    ignore (f ());
    let runs = List.init reps (fun _ -> once ()) in
    let ts = List.sort compare (List.map snd runs) in
    (fst (List.hd runs), List.nth ts (reps / 2))
  in
  let algorithms : (string * e14_algo) list =
    [
      ( "cascade",
        fun ?job ~faults () ->
          Mpc.Multi_round.cascade_triangle ~executor:(exec ()) ~faults ?job
            ~p:8 tri_i );
      ( "gym",
        fun ?job ~faults () ->
          Mpc.Yannakakis.gym ~executor:(exec ()) ~faults ?job ~p:8 chain_q
            chain_i );
      ( "hypercube",
        fun ?job ~faults () ->
          let r, s, _ =
            Mpc.Hypercube.run ~executor:(exec ()) ~faults ?job ~p:8
              Cq.Examples.q2_triangle tri_i
          in
          (r, s) );
    ]
  in
  (* -- Checkpoint overhead: none vs in-memory vs on-disk store. ----- *)
  let ckpt_dir =
    Filename.concat (Filename.get_temp_dir_name ()) "lamp_bench_e14_ckpt"
  in
  (try Sys.mkdir ckpt_dir 0o755 with Sys_error _ -> ());
  line "  checkpoint stores: none, in-memory, on-disk (%s); median of %d"
    ckpt_dir reps;
  List.iter
    (fun (name, (run : e14_algo)) ->
      let (clean_out, _), t_none = timed (fun () -> run ~faults:Faults.Plan.none ()) in
      let with_store store =
        (* A fresh job per repetition: each run checkpoints from round 0
           and the last job's counters describe exactly one run. *)
        let last = ref None in
        let (out, _), t =
          timed (fun () ->
              let job = Jobs.Supervisor.create ~store name in
              last := Some job;
              run ~job ~faults:Faults.Plan.none ())
        in
        (out, t, Option.get !last)
      in
      let mem_out, t_mem, mem_job = with_store (Jobs.Store.in_memory ()) in
      let disk_store = Jobs.Store.on_disk ckpt_dir in
      let disk_out, t_disk, disk_job = with_store disk_store in
      Jobs.Store.clear disk_store ~job:name;
      check
        (Printf.sprintf "%s: checkpointed outputs bit-identical" name)
        (Relational.Instance.equal clean_out mem_out
        && Relational.Instance.equal clean_out disk_out);
      let pct base t = 100.0 *. ((t /. base) -. 1.0) in
      line
        "  %-10s none %6.1f ms   mem %6.1f ms (%+5.1f%%)   disk %6.1f ms \
         (%+5.1f%%)   %d ckpts, %d B"
        name t_none t_mem (pct t_none t_mem) t_disk (pct t_none t_disk)
        disk_job.Jobs.Supervisor.checkpoints
        disk_job.Jobs.Supervisor.checkpoint_bytes;
      metric (name ^ "_ckpt_none_ms") t_none;
      metric (name ^ "_ckpt_mem_ms") t_mem;
      metric (name ^ "_ckpt_disk_ms") t_disk;
      metric (name ^ "_ckpt_bytes")
        (float_of_int mem_job.Jobs.Supervisor.checkpoint_bytes);
      metric (name ^ "_ckpt_rounds")
        (float_of_int disk_job.Jobs.Supervisor.checkpoints))
    algorithms;
  (* -- Speculation win at increasing straggle rates. ----------------- *)
  let straggle_rates = [ 0.05; 0.1; 0.2 ] in
  let budget = 0.0002 in
  line "  speculation budget %.1f ms; straggle rates {%s}" (budget *. 1000.0)
    (String.concat ", " (List.map (Printf.sprintf "%.2f") straggle_rates));
  (* p=16: enough per-round tasks that the stragglers' sleeps dominate
     scheduler noise on both backends. *)
  let clean_out, _ =
    Mpc.Multi_round.cascade_triangle ~executor:(exec ()) ~p:16 tri_i
  in
  List.iter
    (fun rate ->
      let key = Printf.sprintf "spec_rate%02d" (int_of_float ((rate *. 100.0) +. 0.5)) in
      let run faults () =
        Mpc.Multi_round.cascade_triangle ~executor:(exec ()) ~faults ~p:16 tri_i
      in
      let unmitigated =
        Faults.Plan.make ~seed { Faults.Plan.zero with straggle = rate }
      in
      let mitigated =
        Faults.Plan.make ~seed
          { Faults.Plan.zero with straggle = rate; speculate = budget }
      in
      (* Minimum over the repetitions, not the median: the injected
         sleeps are deterministic and scheduler noise is strictly
         additive, so the minimum isolates the stall difference. *)
      let timed_min f =
        let once () =
          let t0 = Runtime.Metrics.now () in
          let v = f () in
          (v, 1000.0 *. (Runtime.Metrics.now () -. t0))
        in
        ignore (f ());
        let runs = List.init (max reps 5) (fun _ -> once ()) in
        (fst (List.hd runs), List.fold_left min infinity (List.map snd runs))
      in
      let (slow_out, _), t_slow = timed_min (run unmitigated) in
      let ((fast_out, fast_stats), t_fast) = timed_min (run mitigated) in
      check
        (Printf.sprintf "straggle=%.2f: outputs bit-identical with and \
                         without speculation" rate)
        (Relational.Instance.equal clean_out slow_out
        && Relational.Instance.equal clean_out fast_out);
      let saved_pct =
        if t_slow > 0.0 then 100.0 *. (t_slow -. t_fast) /. t_slow else 0.0
      in
      line
        "    straggle=%.2f  unmitigated %6.1f ms   speculated %6.1f ms   \
         saved %5.1f%%   backups won %d"
        rate t_slow t_fast saved_pct
        (Mpc.Stats.speculations fast_stats);
      metric (key ^ "_unmitigated_ms") t_slow;
      metric (key ^ "_mitigated_ms") t_fast;
      metric (key ^ "_saved_pct") saved_pct;
      metric (key ^ "_speculations")
        (float_of_int (Mpc.Stats.speculations fast_stats)))
    straggle_rates;
  line
    "  shape: checkpoints cost single-digit percent (the snapshot is one\n\
    \  linear serialization per round; the disk store adds an atomic\n\
    \  rename); speculation's saving grows with the straggle rate as more\n\
    \  long stalls are cut to the budget."

(* ------------------------------------------------------------------ *)
(* E15: lamp.serve — query service under concurrent loopback load      *)

(* A fleet of client threads, every one holding an open connection at
   the same time, hammers one server over a Unix socket: ad-hoc
   executes that all resolve in the prepared-plan cache after the
   first compile of each query text. Reported: p50/p95/p99 request
   latency, throughput, cache hit rate, and the two invariants the
   serving layer promises — responses bit-identical to direct library
   evaluation, and a drain that leaks neither sessions nor pooled
   engine handles. *)
let e15 () =
  section "E15: query service under concurrent loopback load";
  let clients = if !smoke then 100 else 1024 in
  let per_client = if !smoke then 4 else 8 in
  let rng = Random.State.make [| 15 |] in
  let inst = Mpc.Workload.triangle_skew_free ~rng ~m:120 ~domain:60 in
  let queries =
    [
      "H(x,y,z) <- R(x,y), S(y,z), T(z,x)";
      "H(x,y,z) <- R(x,y), S(y,z)";
      "H(x,z) <- R(x,y), T(y,z)";
    ]
  in
  let sock name =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lamp_e15_%s_%d.sock" name (Unix.getpid ()))
  in
  let unlink path = try Unix.unlink path with Unix.Unix_error _ -> () in
  (* connect(2) on a Unix socket fails with EAGAIN/ECONNREFUSED while
     the listen backlog is full; under a thousand simultaneous opens
     that is expected, so retry briefly instead of counting it. *)
  let connect_retry path =
    let rec go n =
      match Serve.Client.connect_unix ~path () with
      | c -> c
      | exception Serve.Client.Connection_lost _ when n > 0 ->
        Thread.delay 0.01;
        go (n - 1)
    in
    go 500
  in
  let encode i =
    let w = Jobs.Codec.writer () in
    Jobs.Codec.w_instance w i;
    Jobs.Codec.contents w
  in
  (* -- Backend bit-identity spot check. ----------------------------- *)
  (* The same requests through a sequential- and a pool-backed server
     must yield byte-identical result encodings, and identical MPC
     statistics for distributed modes. *)
  let spot name executor =
    let server = Serve.Server.create ~executor () in
    Serve.Server.add_instance server ~name:"bench" inst;
    let path = sock ("spot_" ^ name) in
    Serve.Server.listen_unix server ~path;
    Fun.protect
      ~finally:(fun () ->
        Serve.Server.stop server;
        unlink path)
      (fun () ->
        let c = Serve.Client.connect_unix ~path () in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            let locals =
              List.map
                (fun q ->
                  encode (fst (Serve.Client.execute c ~instance:"bench" (Adhoc q))))
                queries
            in
            let hc, hc_stats =
              Serve.Client.execute c ~instance:"bench"
                ~mode:(Hypercube { p = 4 }) (Adhoc (List.hd queries))
            in
            (locals, encode hc, hc_stats)))
  in
  let pool2 = Runtime.Pool.create ~domains:2 () in
  let seq_l, seq_hc, seq_st = spot "seq" Runtime.Executor.sequential in
  let pool_l, pool_hc, pool_st = spot "pool" (Runtime.Executor.pool pool2) in
  Runtime.Pool.shutdown pool2;
  check "seq and pool backends serve byte-identical responses"
    (List.for_all2 String.equal seq_l pool_l
    && String.equal seq_hc pool_hc
    && seq_st = pool_st);
  (* -- Concurrent load. --------------------------------------------- *)
  let was_enabled = Obs.Trace.is_enabled () in
  Obs.Trace.set_enabled true;
  let lat_h = Obs.Trace.histogram "e15.latency_us" in
  let config =
    {
      Serve.Server.default_config with
      max_sessions = clients + 8;
      max_inflight = clients;
      handle_pool = 4;
    }
  in
  let server = Serve.Server.create ~config ~executor:(exec ()) () in
  Serve.Server.add_instance server ~name:"bench" inst;
  let path = sock "load" in
  Serve.Server.listen_unix server ~path;
  let expected =
    List.map (fun q -> (q, Cq.Eval.eval (Cq.Parser.query q) inst)) queries
  in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let connected = ref 0 in
  let go = ref false in
  let mismatches = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let client_thread i =
    match connect_retry path with
    | exception _ ->
      Atomic.incr errors;
      Mutex.protect m (fun () -> incr connected)
    | c ->
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          ignore (Serve.Client.hello ~client:(string_of_int i) c);
          (* Barrier: every connection is open before any load starts,
             so the server really holds [clients] concurrent sessions. *)
          Mutex.lock m;
          incr connected;
          while not !go do
            Condition.wait cv m
          done;
          Mutex.unlock m;
          for r = 0 to per_client - 1 do
            let q, want = List.nth expected ((i + r) mod List.length expected) in
            let t0 = Unix.gettimeofday () in
            match Serve.Client.execute c ~instance:"bench" (Adhoc q) with
            | got, _ ->
              Obs.Trace.observe lat_h
                (int_of_float (1e6 *. (Unix.gettimeofday () -. t0)));
              if not (Relational.Instance.equal want got) then
                Atomic.incr mismatches
            | exception _ -> Atomic.incr errors
          done)
  in
  let threads = List.init clients (fun i -> Thread.create client_thread i) in
  while Mutex.protect m (fun () -> !connected) < clients do
    Thread.delay 0.01
  done;
  (* A control client confirms peak concurrency over the wire itself. *)
  let control = connect_retry path in
  let peak = (Serve.Client.stats control).Serve.Wire.sessions in
  check
    (Printf.sprintf "%d clients concurrently connected at the barrier" clients)
    (peak >= clients);
  metric "clients" (float_of_int clients);
  metric "peak_sessions" (float_of_int peak);
  let t0 = Unix.gettimeofday () in
  Mutex.lock m;
  go := true;
  Condition.broadcast cv;
  Mutex.unlock m;
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let s = Serve.Client.stats control in
  Serve.Client.close control;
  let total = clients * per_client in
  let hits = s.plan_cache_hits and misses = s.plan_cache_misses in
  let hit_rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  check "responses bit-identical to direct evaluation"
    (Atomic.get mismatches = 0 && Atomic.get errors = 0);
  check "no request rejected or throttled" (s.rejected = 0 && s.throttled = 0);
  check "plan-cache hit rate above 99% after warmup" (hit_rate > 0.99);
  let lat = Obs.Trace.histogram_snapshot lat_h in
  metric "requests" (float_of_int total);
  metric "throughput_rps" (float_of_int total /. wall);
  metric "cache_hit_rate" hit_rate;
  metric_percentiles "latency_us" lat;
  let qw =
    Obs.Trace.histogram_snapshot (Obs.Trace.histogram "serve.queue_wait_us")
  in
  metric_percentiles "queue_wait_us" qw;
  line
    "  %d clients x %d requests: %.0f req/s   latency p50 %.0f us  p95 %.0f \
     us  p99 %.0f us"
    clients per_client
    (float_of_int total /. wall)
    (Obs.Trace.percentile lat 0.50)
    (Obs.Trace.percentile lat 0.95)
    (Obs.Trace.percentile lat 0.99);
  line "  plan cache: %d hits / %d misses (%.2f%% hit rate)   engine queue \
        wait p99 %.0f us"
    hits misses (100.0 *. hit_rate)
    (Obs.Trace.percentile qw 0.99);
  Serve.Server.stop server;
  let final = Serve.Server.stats server in
  check "drain: no session or pooled handle survives shutdown"
    (final.sessions = 0
    && List.for_all (fun (_, in_use, idle) -> in_use = 0 && idle = 0)
         final.handle_pools);
  unlink path;
  Obs.Trace.set_enabled was_enabled;
  line
    "  shape: every execute after the first compile of each query text is a\n\
    \  cache hit, so the service amortizes planning exactly like a prepared\n\
    \  statement; the engine serializes evaluation, so tail latency tracks\n\
    \  queue depth while throughput tracks single-query cost."

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches (one per experiment family)                 *)

let timings () =
  section "Timings (Bechamel, monotonic clock)";
  let open Bechamel in
  let rng = Random.State.make [| 10 |] in
  let tri_workload = Mpc.Workload.triangle_skew_free ~rng ~m:500 ~domain:200 in
  let graph = Relational.Generate.random_graph ~rng ~nodes:30 ~edges:120 () in
  let universe = [ Relational.Value.str "a"; Relational.Value.str "b" ] in
  let policy =
    Distribution.Policy.make
      ~universe:(Relational.Value.set_of_list universe)
      ~name:"hash" ~nodes:[ 0; 1 ]
      (fun n f -> Relational.Fact.hash f mod 2 = n)
  in
  let chain k =
    let body =
      List.init k (fun j -> Printf.sprintf "R%d(x%d,x%d)" j j (j + 1))
    in
    Cq.Parser.query
      (Printf.sprintf "H(x0,x%d) <- %s" k (String.concat ", " body))
  in
  let chain_instance =
    Mpc.Workload.acyclic_chain ~rng ~m:500 ~domain:200 ~rels:[ "R1"; "R2"; "R3" ]
  in
  let chain_q = Cq.Parser.query "H(x0,x3) <- R1(x0,x1), R2(x1,x2), R3(x2,x3)" in
  let tests =
    Test.make_grouped ~name:"lamp"
      [
        Test.make ~name:"fig1/transfer-matrix"
          (Staged.stage (fun () ->
               ignore
                 (Correctness.Transfer.transfer_matrix
                    [
                      Cq.Examples.q1_example_4_11;
                      Cq.Examples.q2_example_4_11;
                      Cq.Examples.q3_example_4_11;
                      Cq.Examples.q4_example_4_11;
                    ])));
        Test.make ~name:"fig2/classify-comp-tc"
          (Staged.stage (fun () ->
               ignore
                 (Datalog.Eval.query Datalog.Canned.complement_tc ~output:"OUT"
                    graph)));
        Test.make ~name:"e1/repartition-join"
          (Staged.stage (fun () ->
               ignore
                 (Mpc.Repartition_join.run ~executor:(exec ()) ~p:8
                    (Mpc.Workload.join_skew_free ~m:500))));
        Test.make ~name:"e2/grid-join"
          (Staged.stage (fun () ->
               ignore
                 (Mpc.Grid_join.run ~executor:(exec ()) ~p:16
                    (Mpc.Workload.join_skew_free ~m:500))));
        Test.make ~name:"e3/hypercube-triangle"
          (Staged.stage (fun () ->
               ignore
                 (Mpc.Hypercube.run ~executor:(exec ()) ~p:8
                    Cq.Examples.q2_triangle tri_workload)));
        Test.make ~name:"e4/skew-resilient-triangle"
          (Staged.stage (fun () ->
               ignore
                 (Mpc.Multi_round.skew_resilient_triangle ~executor:(exec ())
                    ~p:8 tri_workload)));
        Test.make ~name:"e5/share-optimizer"
          (Staged.stage (fun () ->
               ignore
                 (Mpc.Shares.optimize ~objective:Mpc.Shares.Max_load ~p:64
                    ~sizes:(fun _ -> 1000)
                    Cq.Examples.q2_triangle)));
        Test.make ~name:"e6/yannakakis-chain"
          (Staged.stage (fun () ->
               ignore (Mpc.Yannakakis.eval_acyclic chain_q chain_instance)));
        Test.make ~name:"e7/pc-decide-chain4"
          (Staged.stage (fun () ->
               ignore (Correctness.Parallel_correctness.decide (chain 4) policy)));
        Test.make ~name:"e7/transfer-chain3"
          (Staged.stage (fun () ->
               ignore (Correctness.Transfer.transfers (chain 3) (chain 3))));
        Test.make ~name:"e8/transducer-triangles"
          (Staged.stage
             (let eval = Cq.Eval.eval Cq.Examples.triangles_distinct in
              fun () ->
                let net =
                  Transducer.Network.create
                    (Transducer.Programs.monotone_broadcast ~name:"t" ~eval)
                    (Transducer.Horizontal.round_robin ~p:3 graph)
                in
                ignore (Transducer.Scheduler.drain ~schedule:Transducer.Scheduler.Fifo net)));
        Test.make ~name:"e9/cq-triangle-eval"
          (Staged.stage (fun () ->
               ignore (Cq.Eval.eval Cq.Examples.q2_triangle tri_workload)));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, stats) ->
      match Analyze.OLS.estimates stats with
      | Some (est :: _) -> line "  %-38s %14.0f ns/run" name est
      | _ -> line "  %-38s (no estimate)" name)
    rows

(* ------------------------------------------------------------------ *)
(* E16: worst-case-optimal joins — local race + distributed schedules  *)

let e16 () =
  section
    "E16: worst-case-optimal joins vs binary plans (local and distributed)";
  let scale n = if !smoke then max 20 (n / 40) else n in
  let time f =
    let t0 = Runtime.Metrics.now () in
    let r = f () in
    (r, 1000.0 *. (Runtime.Metrics.now () -. t0))
  in
  let equal = Relational.Instance.equal in
  (* Local race: seed value-level oracle vs interned binary plan vs
     interned WCOJ, all bit-identical by construction. *)
  let race key label ?(reference = true) q inst =
    let rb, b_ms = time (fun () -> Cq.Eval.eval q inst) in
    let rw, w_ms = time (fun () -> Cq.Eval.eval ~strategy:Cq.Eval.Wcoj q inst) in
    check (label ^ ": wcoj result = binary result") (equal rb rw);
    if reference then begin
      let rr, r_ms = time (fun () -> Cq.Eval.Reference.eval q inst) in
      check (label ^ ": binary result = seed reference result") (equal rr rb);
      metric (key ^ "_reference_ms") r_ms
    end;
    line "  %-34s binary %8.1f ms   wcoj %8.1f ms   %5.1fx   (|Q(I)| = %d)"
      label b_ms w_ms (b_ms /. w_ms)
      (Relational.Instance.cardinal rb);
    metric (key ^ "_binary_ms") b_ms;
    metric (key ^ "_wcoj_ms") w_ms;
    metric (key ^ "_wcoj_speedup") (b_ms /. w_ms);
    rb
  in
  let rng = Random.State.make [| 16 |] in
  (* Triangle: uniform graph, then the canonical y-skew hub input where
     every binary order materializes the quadratic R ⋈ S blowup. *)
  let tri_uni =
    Mpc.Workload.relations_from_pairs ~rels:[ "R"; "S"; "T" ]
      (Mpc.Workload.graph_pairs ~rng ~m:(scale 12000)
         ~domain:(max 10 (scale 2400)))
  in
  ignore (race "tri_uniform" "triangle, uniform graph" Cq.Examples.q2_triangle tri_uni);
  let tri_skew =
    Mpc.Workload.triangle_y_skew ~rng ~m:(scale 20000)
      ~domain:(max 10 (scale 4000)) ~heavy_fraction:0.2
  in
  let tri_skew_r =
    race "tri_skew" "triangle, y-skew hub (largest)" Cq.Examples.q2_triangle
      tri_skew
  in
  (* 4-cycle: a dense uniform graph and a Zipf graph with hubs in every
     column; both make the pairwise intermediates quadratic. *)
  let cyc_uni =
    Mpc.Workload.relations_from_pairs ~rels:[ "R"; "S"; "T"; "U" ]
      (Mpc.Workload.graph_pairs ~rng ~m:(scale 8000) ~domain:(max 10 (scale 400)))
  in
  ignore
    (race "cyc_uniform" "4-cycle, dense uniform" ~reference:false
       Cq.Examples.q_four_cycle cyc_uni);
  let cyc_pairs =
    Mpc.Workload.zipf_pairs ~rng ~m:(scale 12000) ~domain:(max 10 (scale 2400))
      ~s:1.2
  in
  let cyc_zipf =
    Mpc.Workload.relations_from_pairs ~rels:[ "R"; "S"; "T"; "U" ] cyc_pairs
  in
  let cyc_zipf_r =
    race "cyc_zipf" "4-cycle, Zipf graph (largest)" ~reference:false
      Cq.Examples.q_four_cycle cyc_zipf
  in
  (* 4-clique on a dense graph: ρ* = 2, the AGM bound m² against the
     m³-ish binary intermediates. *)
  let k4 =
    Mpc.Workload.clique_from_pairs ~k:4
      (Mpc.Workload.graph_pairs ~rng ~m:(scale 6000) ~domain:(max 10 (scale 300)))
  in
  ignore
    (race "clique4" "4-clique, dense graph" ~reference:false
       (Cq.Examples.q_clique 4) k4);
  (* Distributed: one-round HyperCube (binary and WCOJ local eval — the
     load statistics must be bit-identical, only compute changes) vs the
     KST multi-round heavy/light schedule, on the skewed inputs. *)
  let p = 8 in
  let m_tri =
    List.fold_left
      (fun acc rel ->
        max acc
          (Relational.Tuple.Set.cardinal (Relational.Instance.tuples tri_skew rel)))
      1 [ "R"; "S"; "T" ]
  in
  let (hc_b, hcs_b, _), hc_b_ms =
    time (fun () ->
        Mpc.Hypercube.run ~executor:(exec ()) ~p Cq.Examples.q2_triangle
          tri_skew)
  in
  let (hc_w, hcs_w, _), hc_w_ms =
    time (fun () ->
        Mpc.Hypercube.run ~strategy:Cq.Eval.Wcoj ~executor:(exec ()) ~p
          Cq.Examples.q2_triangle tri_skew)
  in
  check "hypercube: wcoj local eval — same result, bit-identical stats"
    (equal hc_b hc_w && hcs_b = hcs_w);
  check "hypercube: result = local result" (equal hc_b tri_skew_r);
  let (kst_r, kst_s, combos), kst_ms =
    time (fun () ->
        Mpc.Kst.run ~executor:(exec ()) ~p Cq.Examples.q2_triangle tri_skew)
  in
  check "kst: result = local result" (equal kst_r tri_skew_r);
  check "kst: heavy configurations planned on the skewed input" (combos > 0);
  let hc_load = Mpc.Stats.max_load hcs_w and kst_load = Mpc.Stats.max_load kst_s in
  check "kst: max load within 3x of hypercube's on the skewed input"
    (kst_load <= 3 * hc_load);
  line
    "  triangle y-skew, p = %d: hypercube max load %d (binary %.1f ms, wcoj \
     %.1f ms), kst max load %d (%d configs, %.1f ms)"
    p hc_load hc_b_ms hc_w_ms kst_load combos kst_ms;
  metric_stats "e16_hypercube_skew" ~m:m_tri hcs_w;
  metric_stats "e16_kst_skew" ~m:m_tri kst_s;
  metric "e16_kst_combos" (float_of_int combos);
  metric "e16_hypercube_binary_ms" hc_b_ms;
  metric "e16_hypercube_wcoj_ms" hc_w_ms;
  metric "e16_kst_ms" kst_ms;
  (* The same two schedules on the Zipf 4-cycle. *)
  let (hc4, hcs4, _), _ =
    time (fun () ->
        Mpc.Hypercube.run ~strategy:Cq.Eval.Wcoj ~executor:(exec ()) ~p
          Cq.Examples.q_four_cycle cyc_zipf)
  in
  let (kst4, ksts4, combos4), _ =
    time (fun () ->
        Mpc.Kst.run ~executor:(exec ()) ~p Cq.Examples.q_four_cycle cyc_zipf)
  in
  check "4-cycle: hypercube+wcoj = local result" (equal hc4 cyc_zipf_r);
  check "4-cycle: kst = local result" (equal kst4 cyc_zipf_r);
  let m4 = List.length cyc_pairs in
  metric_stats "e16_hypercube_cyc" ~m:m4 hcs4;
  metric_stats "e16_kst_cyc" ~m:m4 ksts4;
  metric "e16_kst_cyc_combos" (float_of_int combos4);
  line
    "  4-cycle Zipf, p = %d: hypercube max load %d, kst max load %d (%d \
     configs)"
    p (Mpc.Stats.max_load hcs4) (Mpc.Stats.max_load ksts4) combos4;
  line
    "  shape: the binary plans pay the quadratic intermediate on every\n\
    \  cyclic query once hubs appear; the WCOJ plan's work tracks the\n\
    \  AGM bound, and KST restores balanced per-server load where the\n\
    \  one-round HyperCube is skew-bound."

(* ------------------------------------------------------------------ *)
(* E17: lamp.obs v2 — sketch accuracy, skew reports, live scrape      *)

let e17 () =
  section "E17: one-pass sketches, per-round skew reports, live scrape";
  let n = if !smoke then 20_000 else 200_000 in
  let rng = Random.State.make [| 17 |] in
  (* -- Count-Min / SpaceSaving / reservoir vs exact, on Zipf ids. ----
     The stream is materialized first so the reservoir determinism
     check can replay it. *)
  let domain = 5000 in
  let draw = Relational.Generate.zipf_sampler ~rng ~n:domain ~s:1.2 in
  let stream = Array.init n (fun _ -> draw ()) in
  let exact = Hashtbl.create domain in
  Array.iter
    (fun id ->
      Hashtbl.replace exact id
        (1 + Option.value ~default:0 (Hashtbl.find_opt exact id)))
    stream;
  let truth id = Option.value ~default:0 (Hashtbl.find_opt exact id) in
  let exact_sorted =
    Hashtbl.fold (fun id c acc -> (c, -id) :: acc) exact []
    |> List.sort (fun a b -> compare b a)
    |> List.map (fun (c, nid) -> (-nid, c))
  in
  let epsilon = 0.005 and delta = 0.01 in
  let cm = Obs.Sketch.Cm.create ~epsilon ~delta () in
  let topk = Obs.Sketch.Topk.create ~capacity:64 () in
  let res = Obs.Sketch.Reservoir.create ~capacity:256 () in
  Array.iter
    (fun id ->
      Obs.Sketch.Cm.add cm id;
      Obs.Sketch.Topk.offer topk id;
      Obs.Sketch.Reservoir.offer res id)
    stream;
  let bound = Obs.Sketch.Cm.error_bound cm in
  let one_sided = ref true and over_bound = ref 0 and max_err = ref 0 in
  let sum_err = ref 0 and distinct = ref 0 in
  Hashtbl.iter
    (fun id c ->
      incr distinct;
      let est = Obs.Sketch.Cm.estimate cm id in
      if est < c then one_sided := false;
      let err = est - c in
      if err > bound then incr over_bound;
      if err > !max_err then max_err := err;
      sum_err := !sum_err + err)
    exact;
  check "cm: estimates never undercount (one-sided error)" !one_sided;
  check
    (Printf.sprintf "cm: error <= eps*m = %d on >= 99%% of the %d keys" bound
       !distinct)
    (float_of_int !over_bound <= 0.01 *. float_of_int !distinct);
  let top10 = List.filteri (fun i _ -> i < 10) exact_sorted in
  check "cm: the true top-10 keys estimate within the bound"
    (List.for_all
       (fun (id, c) -> Obs.Sketch.Cm.estimate cm id - c <= bound)
       top10);
  metric "cm_width" (float_of_int (Obs.Sketch.Cm.width cm));
  metric "cm_depth" (float_of_int (Obs.Sketch.Cm.depth cm));
  metric "cm_error_bound" (float_of_int bound);
  metric "cm_max_err" (float_of_int !max_err);
  metric "cm_mean_err" (float_of_int !sum_err /. float_of_int !distinct);
  (* SpaceSaving: any key above total/capacity is guaranteed caught;
     the Zipf head towers over that, so the true top-5 must be there,
     with counts sandwiched by the per-entry overestimate bound. *)
  let ss = Obs.Sketch.Topk.top topk 16 in
  let ss_ids = List.map (fun (id, _, _) -> id) ss in
  let top5 = List.filteri (fun i _ -> i < 5) exact_sorted in
  check "spacesaving: true top-5 all monitored in top-16"
    (List.for_all (fun (id, _) -> List.mem id ss_ids) top5);
  check "spacesaving: count sandwich est - err <= truth <= est"
    (List.for_all
       (fun (id, est, err) ->
         let c = truth id in
         est - err <= c && c <= est)
       ss);
  (* Reservoir: bounded, fed by the whole stream, deterministic. *)
  check "reservoir: saw the stream, kept its capacity"
    (Obs.Sketch.Reservoir.seen res = n
    && List.length (Obs.Sketch.Reservoir.contents res) = 256);
  let res2 = Obs.Sketch.Reservoir.create ~capacity:256 () in
  Array.iter (Obs.Sketch.Reservoir.offer res2) stream;
  check "reservoir: identical stream, identical sample (deterministic)"
    (Obs.Sketch.Reservoir.contents res = Obs.Sketch.Reservoir.contents res2);
  line "  cm %dx%d on %d zipf draws: bound %d, max err %d, mean err %.2f"
    (Obs.Sketch.Cm.width cm) (Obs.Sketch.Cm.depth cm) n bound !max_err
    (float_of_int !sum_err /. float_of_int !distinct);
  (* -- Per-round skew report on a Zipf join, vs exact degrees. ------
     Repartition routes every fact exactly once, keyed on y, so the
     received stream the coordinator sketches is exactly the input:
     the report's top keys must be the true heavy hitters, and its
     estimated max load must track the measured per-server load. *)
  let m_join = if !smoke then 4_000 else 40_000 in
  let p = 16 in
  let draw_y = Relational.Generate.zipf_sampler ~rng ~n:1000 ~s:1.5 in
  let join_inst =
    Relational.Instance.of_facts
      (List.concat
         (List.init m_join (fun i ->
              [
                Relational.Fact.of_list "R"
                  [
                    Relational.Value.int (1_000_000 + i);
                    Relational.Value.int (draw_y ());
                  ];
                Relational.Fact.of_list "S"
                  [
                    Relational.Value.int (draw_y ());
                    Relational.Value.int (2_000_000 + i);
                  ];
              ])))
  in
  (* Exact occurrence count of every value across the delivered facts —
     the quantity the sketch estimates. *)
  let occ = Hashtbl.create 4096 in
  List.iter
    (fun f ->
      List.iter
        (fun v ->
          let k = Relational.Value.to_string v in
          Hashtbl.replace occ k
            (1 + Option.value ~default:0 (Hashtbl.find_opt occ k)))
        (Relational.Tuple.to_list (Relational.Fact.args f)))
    (Relational.Instance.facts join_inst);
  let exact_top =
    Hashtbl.fold (fun k c acc -> (c, k) :: acc) occ []
    |> List.sort (fun a b -> compare b a)
  in
  Obs.Sketch.reset ();
  Obs.Sketch.set_enabled true;
  (* materialize:false — the heavy key's output is quadratic in its
     degree, and the report is entirely about the communication phase. *)
  let _, rj_stats =
    Mpc.Repartition_join.run ~materialize:false ~executor:(exec ()) ~p
      join_inst
  in
  Obs.Sketch.set_enabled false;
  (match Obs.Sketch.latest () with
  | None -> check "skew report recorded for the round" false
  | Some r ->
    check "skew report recorded for the round"
      (r.round = 1 && r.label = "repartition" && r.p = p);
    check "report relations cover the delivered facts"
      (List.fold_left (fun acc (_, c) -> acc + c) 0 r.rels
       = r.total_received
      && List.mem_assoc "R" r.rels && List.mem_assoc "S" r.rels);
    let report_keys = List.map fst r.top in
    let true_top3 =
      List.filteri (fun i _ -> i < 3) exact_top |> List.map snd
    in
    check "report top-5 contains the true top-3 heavy keys"
      (List.for_all (fun k -> List.mem k report_keys) true_top3);
    check "report estimates within the cm bound of exact degrees"
      (List.for_all
         (fun (k, est) ->
           match Hashtbl.find_opt occ k with
           | None -> false
           | Some c -> est >= c && est - c <= r.error_bound)
         r.top);
    let measured = Mpc.Stats.max_load rj_stats in
    check "report max_received = measured max load"
      (r.max_received = measured);
    (* The heavy server also carries its hash-share of light keys, so
       the estimate may sit below the measurement by up to ~2m/p. *)
    let slack = r.error_bound + (2 * ((r.total_received / r.p) + 1)) in
    check "est max load tracks measured load within cm bound + fair share"
      (abs (r.est_max_load - measured) <= slack);
    let eps_measured = Mpc.Stats.epsilon ~m:r.m rj_stats in
    metric "skew_epsilon" eps_measured;
    metric "skew_target_load"
      (Mpc.Stats.target_load ~m:r.m ~p:r.p ~epsilon:eps_measured);
    metric "skew_est_max_load" (float_of_int r.est_max_load);
    metric "skew_measured_max_load" (float_of_int measured);
    metric "skew_error_bound" (float_of_int r.error_bound);
    line "  zipf join, p = %d: measured max %d, report estimate %d (+-%d)" p
      measured r.est_max_load r.error_bound);
  (* -- Telemetry on/off bit-identity, e16-style. -------------------- *)
  let encode i =
    let w = Jobs.Codec.writer () in
    Jobs.Codec.w_instance w i;
    Jobs.Codec.contents w
  in
  let tri =
    Mpc.Workload.relations_from_pairs ~rels:[ "R"; "S"; "T" ]
      (Mpc.Workload.zipf_pairs ~rng ~m:(if !smoke then 500 else 5000)
         ~domain:500 ~s:1.1)
  in
  let run_tri () =
    Mpc.Hypercube.run ~executor:(exec ()) ~p:8 Cq.Examples.q2_triangle tri
  in
  let r_off, s_off, _ = run_tri () in
  Obs.Trace.set_mode (Ring 4096);
  Obs.Trace.set_enabled true;
  Obs.Sketch.set_enabled true;
  let r_on, s_on, _ = run_tri () in
  let scrape_t0 = Unix.gettimeofday () in
  let exposition = Obs.Export.openmetrics () in
  let scrape_us = 1e6 *. (Unix.gettimeofday () -. scrape_t0) in
  Obs.Trace.set_enabled false;
  Obs.Trace.set_mode Full;
  Obs.Sketch.set_enabled false;
  check "telemetry on: triangle result and Stats.t bit-identical"
    (String.equal (encode r_off) (encode r_on) && s_off = s_on);
  (* -- Scrape: structurally valid OpenMetrics, parseable back. ------ *)
  let samples = Obs.Export.parse_openmetrics exposition in
  check "openmetrics: terminated by # EOF"
    (String.length exposition >= 6
    && String.sub exposition (String.length exposition - 6) 6 = "# EOF\n");
  let value name =
    List.find_map
      (fun (s, _, v) -> if String.equal s name then Some v else None)
      samples
  in
  let bucket_inf name =
    List.find_map
      (fun (s, labels, v) ->
        if String.equal s (name ^ "_bucket")
           && List.assoc_opt "le" labels = Some "+Inf"
        then Some v
        else None)
      samples
  in
  (* Histogram invariant: the +Inf cumulative bucket equals _count,
     for every exposed histogram family. *)
  let hist_bases =
    List.filter_map
      (fun (s, _, _) ->
        if String.length s > 6 && Filename.check_suffix s "_count" then
          Some (String.sub s 0 (String.length s - 6))
        else None)
      samples
    |> List.sort_uniq compare
    |> List.filter (fun base -> bucket_inf base <> None)
  in
  check
    (Printf.sprintf "openmetrics: +Inf bucket = count on all %d histograms"
       (List.length hist_bases))
    (hist_bases <> []
    && List.for_all
         (fun base -> bucket_inf base = value (base ^ "_count"))
         hist_bases);
  check "openmetrics: skew gauges exposed from the latest report"
    (value "lamp_skew_round" <> None
    && value "lamp_skew_est_max_load" <> None);
  metric "exposition_bytes" (float_of_int (String.length exposition));
  metric "exposition_samples" (float_of_int (List.length samples));
  metric "scrape_us" scrape_us;
  line "  scrape: %d bytes, %d samples, %.0f us" (String.length exposition)
    (List.length samples) scrape_us;
  line
    "  shape: the sketches give the coordinator a per-round skew verdict\n\
    \  for the price of a scan it already does — the report names the\n\
    \  keys a skew-resilient schedule would split, bounds their degrees\n\
    \  within eps*m, and the whole telemetry path stays invisible to the\n\
    \  measured Stats.t."

(* ------------------------------------------------------------------ *)
(* E18: the serve path under deterministic wire faults                 *)

let e18 () =
  section "E18: hostile network — chaos proxy, retries, idempotency, shedding";
  (* Every fig1/e1–e5 query family is driven twice: once over a clean
     in-process connection, once through the chaos proxy under a
     seeded wire-fault plan; both must produce byte-identical result
     encodings and identical Stats.t, however many resets, corrupted
     frames, stalls and refused connects the plan injects. *)
  let seeds =
    if !smoke then [ !fault_seed ]
    else [ !fault_seed; !fault_seed + 1; !fault_seed + 2 ]
  in
  (* The test instance mirrors test_serve's: binary R/S/T for the join
     and triangle families (e1–e3), unary S/T and R-loops so fig1's
     boolean queries are satisfiable. *)
  let inst =
    let facts = ref [] in
    let add f = facts := f :: !facts in
    let n = if !smoke then 14 else 20 in
    for i = 0 to n - 1 do
      add (Relational.Fact.of_list "R"
             [ Relational.Value.int i; Relational.Value.int ((i + 1) mod n) ]);
      add (Relational.Fact.of_list "S"
             [ Relational.Value.int i; Relational.Value.int ((i + 3) mod n) ]);
      add (Relational.Fact.of_list "T"
             [ Relational.Value.int ((i * 7) mod n); Relational.Value.int i ]);
      add (Relational.Fact.of_list "T" [ Relational.Value.int i ]);
      add (Relational.Fact.of_list "S" [ Relational.Value.int i ])
    done;
    add (Relational.Fact.of_list "R"
           [ Relational.Value.int 5; Relational.Value.int 5 ]);
    Relational.Instance.of_facts !facts
  in
  let local_queries =
    [
      ("fig1_q1", "H() <- S(x), R(x,x), T(x)");
      ("fig1_q2", "H() <- R(x,x), T(x)");
      ("fig1_q3", "H() <- S(x), R(x,y), T(y)");
      ("fig1_q4", "H() <- R(x,y), T(y)");
      ("e0_join", "H(x,y,z) <- R(x,y), S(y,z)");
      ("e3_triangle", "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
    ]
  in
  let triangle_q = "H(x,y,z) <- R(x,y), S(y,z), T(z,x)" in
  let encode i =
    let w = Jobs.Codec.writer () in
    Jobs.Codec.w_instance w i;
    Jobs.Codec.contents w
  in
  (* Ground truth straight from the library, Stats.t included. *)
  let expected_local =
    List.map
      (fun (name, q) -> (name, encode (Cq.Eval.eval (Cq.Parser.query q) inst)))
      local_queries
  in
  let exp_hc =
    let r, s, _ = Mpc.Hypercube.run ~executor:(exec ()) ~p:4
        (Cq.Parser.query triangle_q) inst in
    (encode r, s)
  in
  let exp_rep =
    let r, s = Mpc.Repartition_join.run ~executor:(exec ()) ~p:3 inst in
    (encode r, s)
  in
  let exp_grid =
    let r, s = Mpc.Grid_join.run ~executor:(exec ()) ~p:4 inst in
    (encode r, s)
  in
  let sock tag =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lamp_e18_%s_%d.sock" tag (Unix.getpid ()))
  in
  let unlink path = try Unix.unlink path with Unix.Unix_error _ -> () in
  (* The fault-plan matrix: each row exercises a distinct failure
     domain of the proxy. Probabilities are chosen so a 12-attempt
     retry budget survives every row with overwhelming margin while
     still forcing plenty of re-execution. *)
  let plans =
    let base =
      [
        ("clean", Faults.Net.zero);
        ("cuts", { Faults.Net.zero with reset = 0.25; truncate = 0.25 });
        ("corrupt", { Faults.Net.zero with flip = 0.5 });
        ("refuse+delay",
         { Faults.Net.zero with refuse = 0.3; accept_delay = 0.5 });
        ("slow", { Faults.Net.zero with stall = 0.5; trickle = 0.5 });
        ("chaos", Faults.Net.chaos);
      ]
    in
    if !smoke then
      List.filter (fun (n, _) -> List.mem n [ "clean"; "cuts"; "chaos" ]) base
    else base
  in
  let mismatches = ref 0 and dup_ingests = ref 0 in
  let total_retries = ref 0 and round = ref 0 in
  let injected = Hashtbl.create 8 in
  List.iter
    (fun seed ->
      List.iter
        (fun (plan_name, spec) ->
          incr round;
          let tag = Printf.sprintf "s%d_%s" seed plan_name in
          let config =
            { Serve.Server.default_config with read_timeout_s = Some 5.0 }
          in
          let server =
            Serve.Server.create ~config ~executor:(exec ()) ()
          in
          Serve.Server.add_instance server ~name:"bench" inst;
          let upath = sock (tag ^ "_up") in
          Serve.Server.listen_unix server ~path:upath;
          let ppath = sock (tag ^ "_px") in
          let proxy =
            Faults.Net.Proxy.start
              ~plan:(Faults.Net.make ~seed spec)
              ~listen:(ADDR_UNIX ppath) ~upstream:(ADDR_UNIX upath) ()
          in
          let r =
            Serve.Resilient.create
              ~config:
                {
                  Serve.Resilient.default_config with
                  max_attempts = 12;
                  seed;
                  budget_s = Some 60.0;
                }
              ~client:("chaos-" ^ tag)
              (fun () ->
                Serve.Client.connect_unix ~timeout_s:3.0 ~path:ppath ())
          in
          Fun.protect
            ~finally:(fun () ->
              Serve.Resilient.close r;
              Faults.Net.Proxy.stop proxy;
              Serve.Server.stop server;
              unlink ppath;
              unlink upath)
            (fun () ->
              let miss name got want =
                if not (String.equal got want) then begin
                  incr mismatches;
                  line "  MISMATCH: seed %d plan %s %s" seed plan_name name
                end
              in
              List.iter
                (fun (name, q) ->
                  let got, _ =
                    Serve.Resilient.execute r ~instance:"bench" (Adhoc q)
                  in
                  miss name (encode got) (List.assoc name expected_local))
                local_queries;
              let check_mode name mode (want, want_st) =
                let got, st =
                  Serve.Resilient.execute r ~instance:"bench" ~mode
                    (Adhoc triangle_q)
                in
                miss name (encode got) want;
                if st <> Some want_st then begin
                  incr mismatches;
                  line "  MISMATCH: seed %d plan %s %s Stats.t" seed plan_name
                    name
                end
              in
              check_mode "e3_hypercube" (Hypercube { p = 4 }) exp_hc;
              check_mode "e1_repartition" (Repartition { p = 3 }) exp_rep;
              check_mode "e2_grid" (Grid { p = 4 }) exp_grid;
              (* Keyed ingest, exactly once per logical op: a retried
                 keyed ingest must replay the original count. Facts are
                 unique per round so each round's first execution
                 reports exactly 2 additions. *)
              let fresh =
                [
                  Relational.Fact.of_list "R"
                    [
                      Relational.Value.int (1000 + (10 * !round));
                      Relational.Value.int (1001 + (10 * !round));
                    ];
                  Relational.Fact.of_list "S"
                    [
                      Relational.Value.int (1001 + (10 * !round));
                      Relational.Value.int (1002 + (10 * !round));
                    ];
                ]
              in
              let added = Serve.Resilient.ingest r ~instance:"bench" fresh in
              if added <> 2 then begin
                incr dup_ingests;
                line "  DUPLICATE-INGEST: seed %d plan %s added=%d (want 2)"
                  seed plan_name added
              end;
              total_retries := !total_retries + Serve.Resilient.retries r;
              List.iter
                (fun (kind, n) ->
                  Hashtbl.replace injected kind
                    (n + Option.value ~default:0
                           (Hashtbl.find_opt injected kind)))
                (Faults.Net.Proxy.injected proxy)))
        plans)
    seeds;
  let injected_total =
    Hashtbl.fold (fun _ n acc -> acc + n) injected 0
  in
  check
    (Printf.sprintf
       "chaos-proxied results bit-identical over %d seed x plan rounds"
       !round)
    (!mismatches = 0);
  check "keyed ingests applied exactly once despite forced retries"
    (!dup_ingests = 0);
  check "the proxy injected real faults" (injected_total > 0);
  check "faults forced client retries" (!total_retries > 0);
  metric "rounds" (float_of_int !round);
  metric "retries" (float_of_int !total_retries);
  metric "injected_faults" (float_of_int injected_total);
  Hashtbl.iter
    (fun kind n -> metric ("injected_" ^ kind) (float_of_int n))
    injected;
  line "  %d rounds, %d retries, %d faults injected (%s)" !round
    !total_retries injected_total
    (String.concat ", "
       (List.sort compare
          (Hashtbl.fold
             (fun k n acc -> Printf.sprintf "%s %d" k n :: acc)
             injected [])));
  (* -- Overload: graceful degradation under a request storm. -------- *)
  (* A sub-zero queue-wait watermark puts the server deep past its
     admission point from the first request (every estimate, even a
     0 us uncontended one, exceeds it — the storm runs at far beyond
     2x the watermark by construction), so it must shed with typed
     retry hints, keep the control plane live, and keep every
     surviving probe-admitted request correct. Latching the shed state
     deterministically is the point: the assertion below is about the
     degradation machinery, not about winning a timing race. *)
  let storm_clients = if !smoke then 4 else 8 in
  let storm_reqs = if !smoke then 8 else 25 in
  let config =
    {
      Serve.Server.default_config with
      shed_queue_us = Some (-1.0);
      shed_retry_after_s = 0.002;
      max_inflight = storm_clients + 4;
      max_sessions = storm_clients + 4;
    }
  in
  let server = Serve.Server.create ~config ~executor:(exec ()) () in
  Serve.Server.add_instance server ~name:"bench" inst;
  let spath = sock "storm" in
  Serve.Server.listen_unix server ~path:spath;
  let was_enabled = Obs.Trace.is_enabled () in
  Obs.Trace.set_enabled true;
  let lat_h = Obs.Trace.histogram "e18.storm_latency_us" in
  let storm_mismatch = Atomic.make 0 and storm_err = Atomic.make 0 in
  let expected_storm = Cq.Eval.eval (Cq.Parser.query triangle_q) inst in
  let unhealthy = Atomic.make 0 in
  let stop_probe = Atomic.make false in
  (* A control client probes health throughout the storm: shedding
     must never take the control plane down. *)
  let prober =
    Thread.create
      (fun () ->
        let c = Serve.Client.connect_unix ~timeout_s:5.0 ~path:spath () in
        ignore (Serve.Client.hello ~client:"probe" c);
        while not (Atomic.get stop_probe) do
          (try if not (Serve.Client.health c) then Atomic.incr unhealthy
           with _ -> Atomic.incr unhealthy);
          Thread.delay 0.01
        done;
        Serve.Client.close c)
      ()
  in
  let storm_thread i =
    let r =
      Serve.Resilient.create
        ~config:
          {
            Serve.Resilient.default_config with
            max_attempts = 50;
            seed = 100 + i;
            budget_s = Some 60.0;
          }
        ~client:(Printf.sprintf "storm%d" i)
        (fun () -> Serve.Client.connect_unix ~timeout_s:10.0 ~path:spath ())
    in
    Fun.protect
      ~finally:(fun () -> Serve.Resilient.close r)
      (fun () ->
        for _ = 1 to storm_reqs do
          let t0 = Unix.gettimeofday () in
          match Serve.Resilient.execute r ~instance:"bench" (Adhoc triangle_q)
          with
          | got, _ ->
            Obs.Trace.observe lat_h
              (int_of_float (1e6 *. (Unix.gettimeofday () -. t0)));
            if not (Relational.Instance.equal expected_storm got) then
              Atomic.incr storm_mismatch
          | exception _ -> Atomic.incr storm_err
        done)
  in
  let threads = List.init storm_clients (fun i -> Thread.create storm_thread i) in
  List.iter Thread.join threads;
  Atomic.set stop_probe true;
  Thread.join prober;
  let s = Serve.Server.stats server in
  check "server shed load past the watermark" (s.shed > 0);
  check "control plane stayed live through the storm"
    (Atomic.get unhealthy = 0);
  check "every admitted request was answered correctly"
    (Atomic.get storm_mismatch = 0 && Atomic.get storm_err = 0);
  let lat = Obs.Trace.histogram_snapshot lat_h in
  let p99 = Obs.Trace.percentile lat 0.99 in
  check "storm p99 bounded by the retry budget" (p99 < 60.0 *. 1e6);
  metric "storm_shed" (float_of_int s.shed);
  metric "storm_requests" (float_of_int (storm_clients * storm_reqs));
  metric_percentiles "storm_latency_us" lat;
  line
    "  storm: %d clients x %d requests, %d shed (typed retry hints), \
     latency p50 %.0f us p99 %.0f us"
    storm_clients storm_reqs s.shed
    (Obs.Trace.percentile lat 0.50)
    p99;
  Serve.Server.stop server;
  unlink spath;
  Obs.Trace.set_enabled was_enabled;
  line
    "  shape: determinism survives the hostile network — the fault plan is\n\
    \  a pure function of (seed, connection, direction), the checksum turns\n\
    \  corruption into typed connection loss, idempotency keys turn\n\
    \  at-least-once retries into exactly-once effects, and overload turns\n\
    \  into typed backpressure instead of collapse."

(* ------------------------------------------------------------------ *)

(* E19: durable-storage hardening — a crash-point recovery matrix (a
   simulated power cut at every injected I/O point of every round's
   checkpoint save), kill/resume under sustained slot corruption
   (checksums catch it, recovery falls back a generation), fsck
   precision/recall on hand-corrupted slots, and what the fsync'd
   two-generation store costs vs no checkpointing at all. *)

let e19 () =
  section "E19: disk faults, checkpoint generations, crash-point recovery";
  let scale n = if !smoke then max 10 (n / 10) else n in
  let seed = !fault_seed in
  let rng () = Random.State.make [| 19 |] in
  let tri_i =
    Mpc.Workload.triangle_skew_free ~rng:(rng ()) ~m:(scale 1200)
      ~domain:(scale 400)
  in
  let chain_q = Cq.Parser.query "H(x0,x3) <- R1(x0,x1), R2(x1,x2), R3(x2,x3)" in
  let chain_i =
    Mpc.Workload.acyclic_chain ~rng:(rng ()) ~m:(scale 1500) ~domain:(scale 500)
      ~rels:[ "R1"; "R2"; "R3" ]
  in
  let algorithms : (string * e14_algo) list =
    [
      ( "cascade",
        fun ?job ~faults () ->
          Mpc.Multi_round.cascade_triangle ~executor:(exec ()) ~faults ?job
            ~p:8 tri_i );
      ( "gym",
        fun ?job ~faults () ->
          Mpc.Yannakakis.gym ~executor:(exec ()) ~faults ?job ~p:8 chain_q
            chain_i );
      ( "hypercube",
        fun ?job ~faults () ->
          let r, s, _ =
            Mpc.Hypercube.run ~executor:(exec ()) ~faults ?job ~p:8
              Cq.Examples.q2_triangle tri_i
          in
          (r, s) );
    ]
  in
  let base_dir =
    Filename.concat (Filename.get_temp_dir_name ()) "lamp_bench_e19"
  in
  (try Sys.mkdir base_dir 0o755 with Sys_error _ -> ());
  let dir_counter = ref 0 in
  let fresh_dir () =
    incr dir_counter;
    Filename.concat base_dir (string_of_int !dir_counter)
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ()
    end
  in
  (* How many checkpoints the algorithm writes: every save is a
     possible crash site. *)
  let rounds_of (run : e14_algo) name =
    let job = Jobs.Supervisor.create ~store:(Jobs.Store.in_memory ()) name in
    ignore (run ~job ~faults:Faults.Plan.none ());
    job.Jobs.Supervisor.checkpoints
  in
  let points =
    [
      ("torn:0.25", Faults.Disk.Torn_write 0.25);
      ("torn:0.75", Faults.Disk.Torn_write 0.75);
      ("pre-rename", Faults.Disk.Before_rename);
      ("post-rename", Faults.Disk.After_rename);
    ]
  in
  let corruption_plans =
    [
      ("rot", { Faults.Disk.zero with rot = 0.6 });
      ("truncate", { Faults.Disk.zero with truncate = 0.5 });
      ("enospc", { Faults.Disk.zero with enospc = 0.7 });
      ("litter", { Faults.Disk.zero with litter = 0.8 });
      ("chaos", Faults.Disk.chaos);
    ]
  in
  line "  fault seed %d; crash points {%s}; corruption plans {%s}" seed
    (String.concat ", " (List.map fst points))
    (String.concat ", " (List.map fst corruption_plans));
  List.iter
    (fun (name, (run : e14_algo)) ->
      let oracle_out, oracle_stats = run ~faults:Faults.Plan.none () in
      let rounds = rounds_of run name in
      (* -- Crash-point matrix: die inside every save, resume clean. -- *)
      let cells = ref 0 and ok = ref 0 and crashed = ref 0 in
      for r = 1 to rounds do
        List.iter
          (fun (_, point) ->
            incr cells;
            let dir = fresh_dir () in
            let plan =
              Faults.Disk.make ~seed
                { Faults.Disk.zero with crash = Some (r, point) }
            in
            let store = Jobs.Store.on_disk ~faults:plan dir in
            let job = Jobs.Supervisor.create ~store name in
            (match run ~job ~faults:Faults.Plan.none () with
            | _ -> ()
            | exception Jobs.Io.Crashed _ ->
              incr crashed;
              (* The "reboot": a fresh store on the same directory, the
                 one-shot crash disarmed — it already fired. *)
              let store = Jobs.Store.on_disk dir in
              let job = Jobs.Supervisor.create ~resume:true ~store name in
              let out, stats = run ~job ~faults:Faults.Plan.none () in
              if
                Relational.Instance.equal oracle_out out
                && stats = oracle_stats
              then incr ok);
            rm_rf dir)
          points
      done;
      check
        (Printf.sprintf
           "%s: all %d crash-point cells (%d rounds x %d points) resume \
            bit-identical"
           name !cells rounds (List.length points))
        (!crashed = !cells && !ok = !cells);
      metric (name ^ "_crash_cells") (float_of_int !cells);
      (* -- Kill/resume with the store under sustained corruption. ---- *)
      let cells2 = ref 0 and ok2 = ref 0 in
      let fallbacks = ref 0 and lost = ref 0 and injected = ref [] in
      List.iter
        (fun (_, spec) ->
          let plan = Faults.Disk.make ~seed spec in
          for r = 1 to rounds do
            incr cells2;
            let dir = fresh_dir () in
            let store = Jobs.Store.on_disk ~faults:plan dir in
            let job =
              Jobs.Supervisor.create ~kill_after_round:r ~store name
            in
            (match run ~job ~faults:Faults.Plan.none () with
            | _ -> ()
            | exception Jobs.Supervisor.Killed _ ->
              (* Resume through the SAME faulty store: recovery has to
                 verify checksums and fall back generations while the
                 plan keeps damaging fresh saves. *)
              let job = Jobs.Supervisor.create ~resume:true ~store name in
              let out, stats = run ~job ~faults:Faults.Plan.none () in
              fallbacks := !fallbacks + Jobs.Store.fallbacks store;
              lost := !lost + Jobs.Store.lost store;
              List.iter
                (fun (k, v) ->
                  injected :=
                    (k, v + Option.value ~default:0 (List.assoc_opt k !injected))
                    :: List.remove_assoc k !injected)
                (Jobs.Store.injected store);
              if
                Relational.Instance.equal oracle_out out
                && stats = oracle_stats
              then incr ok2);
            rm_rf dir
          done)
        corruption_plans;
      check
        (Printf.sprintf
           "%s: all %d corrupted kill/resume cells converge bit-identical"
           name !cells2)
        (!ok2 = !cells2);
      line
        "    %-10s %d generation fallbacks, %d restarts from scratch; \
         injected {%s}"
        name !fallbacks !lost
        (String.concat ", "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s:%d" k v)
              (List.sort compare !injected)));
      metric (name ^ "_corrupt_cells") (float_of_int !cells2);
      metric (name ^ "_fallbacks") (float_of_int !fallbacks);
      metric (name ^ "_lost") (float_of_int !lost))
    algorithms;
  (* -- fsck precision/recall on hand-corrupted slots. ---------------- *)
  let dir = fresh_dir () in
  let store = Jobs.Store.on_disk dir in
  let payload j r = Printf.sprintf "%s-round-%d-" j r ^ String.make 64 'x' in
  let jobs = [ "alpha"; "beta"; "gamma" ] in
  List.iter
    (fun j ->
      Jobs.Store.save store ~job:j ~round:1 (payload j 1);
      Jobs.Store.save store ~job:j ~round:2 (payload j 2))
    jobs;
  let all_ok reports =
    reports <> []
    && List.for_all
         (fun r ->
           match r.Jobs.Store.verdict with `Ok _ -> true | _ -> false)
         reports
  in
  check "fsck on a clean directory: zero false positives"
    (all_ok (Jobs.Store.fsck dir));
  let rewrite path f =
    let ic = open_in_bin path in
    let raw = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let b = Bytes.of_string raw in
    f b;
    let oc = open_out_bin path in
    output_bytes oc b;
    close_out oc
  in
  let file j = Filename.concat dir (j ^ ".ckpt") in
  (* Flipped byte mid-payload, truncated header, zeroed generation
     field (bytes 24-31: after the 16-byte magic string and the 8-byte
     version), plus planted tmp litter. *)
  rewrite (file "alpha") (fun b ->
      let o = Bytes.length b / 2 in
      Bytes.set b o (Char.chr (Char.code (Bytes.get b o) lxor 0x40)));
  Unix.truncate (file "beta") 10;
  rewrite (file "gamma") (fun b -> Bytes.fill b 24 8 '\000');
  let oc = open_out_bin (Filename.concat dir "alpha.ckpt.tmp.9") in
  output_string oc "stale";
  close_out oc;
  let corrupted = [ "alpha.ckpt"; "beta.ckpt"; "gamma.ckpt" ] in
  let reports = Jobs.Store.fsck dir in
  let undetected =
    List.filter
      (fun f ->
        match
          List.find_opt (fun r -> r.Jobs.Store.file = f) reports
        with
        | Some { Jobs.Store.verdict = `Ok _; _ } | None -> true
        | Some _ -> false)
      corrupted
  in
  List.iter (fun f -> line "  CORRUPT-UNDETECTED %s" f) undetected;
  check "fsck flags every injected corruption" (undetected = []);
  let false_positives =
    List.filter
      (fun r ->
        match r.Jobs.Store.verdict with
        | `Ok _ | `Stale -> false
        | _ -> not (List.mem r.Jobs.Store.file corrupted))
      reports
  in
  check "fsck zero false positives on undamaged generations"
    (false_positives = []);
  check "fsck --repair leaves a healthy directory"
    (Jobs.Store.healthy (Jobs.Store.fsck ~repair:true dir)
    && all_ok (Jobs.Store.fsck dir));
  let store2 = Jobs.Store.on_disk dir in
  check "repaired slots load a good generation bit-identically"
    (List.for_all
       (fun j ->
         match Jobs.Store.load store2 ~job:j with
         | Some (r, p) -> (r = 1 || r = 2) && p = payload j r
         | None -> false)
       jobs);
  metric "fsck_corruptions" (float_of_int (List.length corrupted));
  metric "fsck_undetected" (float_of_int (List.length undetected));
  metric "fsck_false_positives" (float_of_int (List.length false_positives));
  rm_rf dir;
  (* -- Overhead: what the fsync'd two-generation store costs. -------- *)
  let reps = if !smoke then 1 else 3 in
  let timed f =
    let once () =
      let t0 = Runtime.Metrics.now () in
      let v = f () in
      (v, 1000.0 *. (Runtime.Metrics.now () -. t0))
    in
    ignore (f ());
    let runs = List.init reps (fun _ -> once ()) in
    let ts = List.sort compare (List.map snd runs) in
    (fst (List.hd runs), List.nth ts (reps / 2))
  in
  line "  checkpoint overhead: none vs fsync'd disk vs disk under chaos \
        (median of %d)" reps;
  List.iter
    (fun (name, (run : e14_algo)) ->
      let (clean_out, _), t_none =
        timed (fun () -> run ~faults:Faults.Plan.none ())
      in
      let with_store mkstore =
        let last = ref None in
        let (out, _), t =
          timed (fun () ->
              let store = mkstore () in
              let job = Jobs.Supervisor.create ~store name in
              last := Some store;
              run ~job ~faults:Faults.Plan.none ())
        in
        (out, t, Option.get !last)
      in
      let dir = fresh_dir () in
      let disk_out, t_disk, _ = with_store (fun () -> Jobs.Store.on_disk dir) in
      rm_rf dir;
      let dir = fresh_dir () in
      let chaos = Faults.Disk.make ~seed Faults.Disk.chaos in
      let chaos_out, t_chaos, chaos_store =
        with_store (fun () -> Jobs.Store.on_disk ~faults:chaos dir)
      in
      rm_rf dir;
      check
        (Printf.sprintf "%s: checkpointed outputs bit-identical (synced, \
                         chaos)" name)
        (Relational.Instance.equal clean_out disk_out
        && Relational.Instance.equal clean_out chaos_out);
      let pct base t =
        if base > 0.0 then 100.0 *. ((t /. base) -. 1.0) else 0.0
      in
      line
        "  %-10s none %6.1f ms   disk+fsync %6.1f ms (%+5.1f%%)   \
         disk+chaos %6.1f ms (%+5.1f%%)   injected {%s}"
        name t_none t_disk (pct t_none t_disk) t_chaos (pct t_none t_chaos)
        (String.concat ", "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s:%d" k v)
              (Jobs.Store.injected chaos_store)));
      metric (name ^ "_ckpt_none_ms") t_none;
      metric (name ^ "_ckpt_disk_ms") t_disk;
      metric (name ^ "_ckpt_chaos_ms") t_chaos)
    algorithms;
  (try Sys.rmdir base_dir with Sys_error _ -> ());
  line
    "  shape: every crash point inside a save is survivable — the slot\n\
    \  directory always holds a verifiable generation (fsync'd rename,\n\
    \  verified retention), recovery refuses unverified bytes and falls\n\
    \  back a generation instead, and fsck's checksum sweep flags exactly\n\
    \  the damaged files; the price is fsyncs on the checkpoint path."

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("e10", e10);
    ("e11", e11);
    ("e12", e12);
    ("e13", e13);
    ("e14", e14);
    ("e15", e15);
    ("e16", e16);
    ("e17", e17);
    ("e18", e18);
    ("e19", e19);
  ]

(* One parser for every [--key=value] flag: the key names its handler
   below, so adding a flag is one table row, not another hand-counted
   [String.sub]. *)
let kv_flag key a =
  let prefix = "--" ^ key ^ "=" in
  if String.starts_with ~prefix a then
    Some (String.sub a (String.length prefix) (String.length a - String.length prefix))
  else None

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let want_timings = List.mem "--timings" args in
  let backend = ref "seq" in
  let domains = ref None in
  let json = ref None in
  let trace_out = ref None in
  let jsonl_out = ref None in
  let flags =
    [
      ("backend", fun v -> backend := v);
      ( "domains",
        fun v ->
          match int_of_string_opt v with
          | Some n -> domains := Some n
          | None -> line "ignoring malformed --domains=%s" v );
      ("json", fun v -> json := Some v);
      ( "fault-seed",
        fun v ->
          match int_of_string_opt v with
          | Some n -> fault_seed := n
          | None -> line "ignoring malformed --fault-seed=%s" v );
      ("faults", fun v -> faults_spec := v);
      ("trace", fun v -> trace_out := Some v);
      ("jsonl", fun v -> jsonl_out := Some v);
    ]
  in
  let selected =
    List.filter
      (fun a ->
        match List.find_map (fun (k, set) -> Option.map set (kv_flag k a)) flags with
        | Some () -> false
        | None ->
          if a = "--smoke" then begin
            smoke := true;
            false
          end
          else a <> "--timings" && a <> "--")
      args
  in
  let pool =
    match !backend with
    | "seq" -> None
    | "pool" ->
      let pool = Runtime.Pool.create ?domains:!domains () in
      executor := Runtime.Executor.pool pool;
      Some pool
    | other ->
      line "unknown backend %S (expected seq or pool)" other;
      exit 2
  in
  line "backend: %s (%d worker%s)"
    (Runtime.Executor.backend_name (exec ()))
    (Runtime.Executor.workers (exec ()))
    (if Runtime.Executor.workers (exec ()) = 1 then "" else "s");
  Runtime.Metrics.set_enabled want_timings;
  if !trace_out <> None || !jsonl_out <> None then Obs.Trace.set_enabled true;
  let to_run =
    if selected = [] then experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> Some (name, f)
          | None ->
            line "unknown experiment %S (available: %s, --timings)" name
              (String.concat ", " (List.map fst experiments));
            None)
        selected
  in
  List.iter
    (fun (name, f) ->
      Runtime.Metrics.reset ();
      current_exp := name;
      recorded := (name, ref []) :: !recorded;
      let t0 = Runtime.Metrics.now () in
      Obs.Trace.span ~cat:"bench" name f;
      let wall = 1000.0 *. (Runtime.Metrics.now () -. t0) in
      metric "wall_ms" wall;
      current_exp := "";
      if want_timings then
        line "  [%s wall %.0f ms; engine: %a]" name wall
          Runtime.Metrics.pp_summary
          (Runtime.Metrics.summary ()))
    to_run;
  if want_timings then timings ();
  Option.iter Runtime.Pool.shutdown pool;
  Option.iter write_json !json;
  Option.iter
    (fun path ->
      Obs.Export.write_chrome path;
      line "wrote %s" path)
    !trace_out;
  Option.iter
    (fun path ->
      Obs.Export.write_jsonl path;
      line "wrote %s" path)
    !jsonl_out;
  line ""
