type t = {
  rate : float;
  burst : float;
  clock : unit -> float;
  mutex : Mutex.t;
  mutable tokens : float;
  mutable last : float;
}

let create ?(clock = Unix.gettimeofday) ~rate ~burst () =
  if not (rate > 0.0) then invalid_arg "Quota.create: rate must be > 0";
  if not (burst >= 1.0) then invalid_arg "Quota.create: burst must be >= 1";
  { rate; burst; clock; mutex = Mutex.create (); tokens = burst; last = clock () }

(* Lazy refill: tokens accrue on observation, so an idle bucket costs
   nothing. Clock jumps grant no free capacity in either direction: a
   backwards step (ntp) refills nothing but still resyncs [last] —
   otherwise every refill until the clock re-passed the old mark would
   be skipped, freezing the bucket — and a huge forward jump (or an
   [infinity] clock) is clamped at [burst], never an overflowing token
   count. *)
let refill t =
  let now = t.clock () in
  let dt = now -. t.last in
  if dt > 0.0 then
    t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.rate));
  (* nan from an insane clock would poison every later comparison;
     keep the previous mark instead. *)
  if not (Float.is_nan now) then t.last <- now

let try_take ?(cost = 1.0) t =
  Mutex.protect t.mutex (fun () ->
      refill t;
      if t.tokens >= cost then begin
        t.tokens <- t.tokens -. cost;
        true
      end
      else false)

let tokens t =
  Mutex.protect t.mutex (fun () ->
      refill t;
      t.tokens)
