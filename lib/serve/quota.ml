type t = {
  rate : float;
  burst : float;
  clock : unit -> float;
  mutex : Mutex.t;
  mutable tokens : float;
  mutable last : float;
}

let create ?(clock = Unix.gettimeofday) ~rate ~burst () =
  if not (rate > 0.0) then invalid_arg "Quota.create: rate must be > 0";
  if not (burst >= 1.0) then invalid_arg "Quota.create: burst must be >= 1";
  { rate; burst; clock; mutex = Mutex.create (); tokens = burst; last = clock () }

(* Lazy refill: tokens accrue on observation, so an idle bucket costs
   nothing. A clock running backwards (ntp step) refills nothing rather
   than debiting. *)
let refill t =
  let now = t.clock () in
  let dt = now -. t.last in
  if dt > 0.0 then begin
    t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.rate));
    t.last <- now
  end

let try_take ?(cost = 1.0) t =
  Mutex.protect t.mutex (fun () ->
      refill t;
      if t.tokens >= cost then begin
        t.tokens <- t.tokens -. cost;
        true
      end
      else false)

let tokens t =
  Mutex.protect t.mutex (fun () ->
      refill t;
      t.tokens)
