(** Token-bucket rate limiting, one bucket per client.

    A bucket holds up to [burst] tokens and refills continuously at
    [rate] tokens per second; each admitted request spends one token.
    A client that stays below [rate] requests/second is never
    throttled, and may burst [burst] requests instantly after an idle
    spell — the standard shape for smoothing the load generator's
    request storms without starving interactive clients.

    The clock is injectable so tests drive time deterministically, and
    the bucket is hardened against clock jumps: a backwards step
    refills nothing (but resyncs, so refills resume immediately), and
    an arbitrarily large forward jump clamps at [burst] — never a free
    burst beyond it, never an overflow. *)

type t

val create : ?clock:(unit -> float) -> rate:float -> burst:float -> unit -> t
(** [clock] defaults to [Unix.gettimeofday]. The bucket starts full.
    @raise Invalid_argument unless [rate > 0] and [burst >= 1]. *)

val try_take : ?cost:float -> t -> bool
(** Spend [cost] tokens (default 1): [true] and debits on success,
    [false] (and no debit) when the bucket holds fewer than [cost].
    Thread-safe. *)

val tokens : t -> float
(** Current token count after refill — for stats, not for decisions
    (racy by the time the caller looks). *)
