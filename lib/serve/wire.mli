(** The wire protocol of lamp.serve.

    Every message is one {e frame}: an 8-byte big-endian payload length
    followed by the payload, a {!Lamp_jobs.Codec} encoding of a
    {!request} or {!response}. Framing and payload reuse the checkpoint
    codec deliberately: its decoders treat input as untrusted (length
    prefixes are validated before allocation, malformed bytes raise
    {!Lamp_jobs.Codec.Corrupt}, never crash), which is exactly the
    contract a network-facing parser needs.

    Encodings are canonical — the payload bytes are a pure function of
    the message value — so the equivalence tests can compare raw frames,
    and the property tests can round-trip random messages. *)

val protocol_version : int
(** Bumped on any incompatible change to the frame or message layout.
    {!Hello} carries the client's copy; the server rejects mismatches. *)

val max_frame : int
(** Upper bound on a payload length (256 MiB). A frame header
    announcing more is treated as corrupt before any allocation. *)

(** {1 Messages} *)

(** How an {!Execute} request runs the query. [Local] is the
    single-server compiled-plan engine, bit-identical to
    [Cq.Eval.eval]. The MPC modes simulate the paper's one-round
    algorithms on [p] servers and return their {!Lamp_mpc.Stats.t};
    [Repartition] and [Grid] run those algorithms' fixed queries
    (Examples 3.1(1a) and 3.1(1b)) and ignore the request's plan. *)
type mode =
  | Local
  | Hypercube of { p : int }
  | Repartition of { p : int }
  | Grid of { p : int }

(** A prepared plan id returned by {!Prepare}, or the query text
    compiled (through the same cache) on the fly. *)
type plan_ref =
  | Id of int
  | Adhoc of string

type request =
  | Hello of { client : string; version : int }
      (** First request of a session: names the client (the quota key)
          and checks protocol compatibility. *)
  | Prepare of { instance : string; query : string }
      (** Compile [query] against the named instance once; later
          {!Execute}s reference the returned id. Idempotent: the same
          query text on the same instance returns the cached plan. *)
  | Execute of { instance : string; plan : plan_ref; mode : mode }
  | Ingest of { instance : string; facts : Lamp_relational.Fact.t list }
      (** Batch-load facts; bumps the instance version, retiring pooled
          engine handles and cached plans built on the old contents. *)
  | Stats
  | Health

type error_code =
  | Bad_request  (** Unknown instance/plan id, parse error, bad frame. *)
  | Rejected  (** Admission control: too many requests in flight. *)
  | Throttled  (** The client's token bucket is empty. *)
  | Failed  (** The engine raised; the message carries the exception. *)

type server_stats = {
  sessions : int;  (** Connected sessions, including the asker. *)
  active_requests : int;  (** Requests past admission, not yet answered. *)
  executor_in_flight : int;  (** {!Lamp_runtime.Executor.in_flight}. *)
  pool_workers : int;  (** Executor workers (1 on seq). *)
  plan_cache_size : int;
  plan_cache_hits : int;
  plan_cache_misses : int;
  handle_pools : (string * int * int) list;
      (** Per instance: (name, handles in use, idle handles). *)
  requests_served : int;
  rejected : int;
  throttled : int;
}

type response =
  | Hello_ok of { server : string; version : int }
  | Prepared of { id : int; cached : bool; atoms : int }
      (** [cached] is true on a plan-cache hit; [atoms] is the number
          of join steps of the compiled plan. *)
  | Batch of Lamp_relational.Fact.t list
      (** One chunk of an {!Execute} result; zero or more precede
          {!Done}. Facts arrive in canonical (sorted-set) order. *)
  | Done of { facts : int; stats : Lamp_mpc.Stats.t option }
      (** Terminates an {!Execute} stream. [facts] is the total across
          batches, a framing cross-check; [stats] is the MPC load
          accounting ([None] for [Local] mode). *)
  | Ingested of { added : int }
  | Stats_reply of server_stats
  | Healthy
  | Error of { code : error_code; message : string }

(** {1 Codecs}

    Pure encode/decode, exposed for the property tests; the framed I/O
    below wraps them. Decoders raise {!Lamp_jobs.Codec.Corrupt} on
    malformed input and verify the whole payload is consumed. *)

val request_to_string : request -> string
val request_of_string : string -> request
val response_to_string : response -> string
val response_of_string : string -> response

(** {1 Framed I/O}

    Blocking reads/writes on a connected socket. Short reads and writes
    are retried; EOF mid-frame raises {!Closed}; a frame header
    announcing a negative or oversized payload raises
    {!Lamp_jobs.Codec.Corrupt}. *)

exception Closed
(** The peer closed the connection (EOF on a frame boundary or
    mid-frame). *)

val read_frame : Unix.file_descr -> string
val write_frame : Unix.file_descr -> string -> unit
val read_request : Unix.file_descr -> request
val write_request : Unix.file_descr -> request -> unit
val read_response : Unix.file_descr -> response
val write_response : Unix.file_descr -> response -> unit
