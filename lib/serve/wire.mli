(** The wire protocol of lamp.serve.

    Every message is one {e frame}: a 16-byte header — the payload
    length and a checksum of the payload, both 8-byte big-endian —
    followed by the payload, a {!Lamp_jobs.Codec} encoding of a
    {!request} or {!response}. Framing and payload reuse the checkpoint
    codec deliberately: its decoders treat input as untrusted (length
    prefixes are validated before allocation, malformed bytes raise
    {!Lamp_jobs.Codec.Corrupt}, never crash), which is exactly the
    contract a network-facing parser needs. The checksum detects any
    single-byte corruption of the payload in flight; a mismatch is
    connection-fatal, because a damaged stream cannot be resynced.

    Encodings are canonical — the payload bytes are a pure function of
    the message value — so the equivalence tests can compare raw frames,
    and the property tests can round-trip random messages. *)

val protocol_version : int
(** Bumped on any incompatible change to the frame or message layout.
    {!Hello} carries the client's copy; the server {e negotiates}: a
    session speaks [min (client, server)] as long as the client's
    version is at least {!min_protocol_version}, and the negotiated
    version comes back in {!Hello_ok}. Version 3 added the {!Keyed}
    idempotency envelope, the [Overloaded]/[Corrupt_frame] error codes
    and the dedup/shed/reap stats counters; version 2 added {!Metrics},
    {!Trace_dump}, the {!Traced} envelope and the [uptime_s] stats
    field. Old clients keep working because none of the newer messages
    appear on their sessions, and newer error codes downgrade to the
    closest older code. *)

val min_protocol_version : int
(** Oldest client version the server still accepts (currently 1). *)

val max_frame : int
(** Default upper bound on a payload length (256 MiB). A frame header
    announcing more raises {!Too_large} {e before} any allocation — a
    hostile length prefix can never force a giant buffer. Servers can
    lower it per config ([?max_len] on the framed reads). *)

(** {1 Messages} *)

(** How an {!Execute} request runs the query. [Local] is the
    single-server compiled-plan engine, bit-identical to
    [Cq.Eval.eval]. The MPC modes simulate the paper's one-round
    algorithms on [p] servers and return their {!Lamp_mpc.Stats.t};
    [Repartition] and [Grid] run those algorithms' fixed queries
    (Examples 3.1(1a) and 3.1(1b)) and ignore the request's plan. *)
type mode =
  | Local
  | Hypercube of { p : int }
  | Repartition of { p : int }
  | Grid of { p : int }

(** A prepared plan id returned by {!Prepare}, or the query text
    compiled (through the same cache) on the fly. *)
type plan_ref =
  | Id of int
  | Adhoc of string

type request =
  | Hello of { client : string; version : int }
      (** First request of a session: names the client (the quota key)
          and checks protocol compatibility. *)
  | Prepare of { instance : string; query : string }
      (** Compile [query] against the named instance once; later
          {!Execute}s reference the returned id. Idempotent: the same
          query text on the same instance returns the cached plan. *)
  | Execute of { instance : string; plan : plan_ref; mode : mode }
  | Ingest of { instance : string; facts : Lamp_relational.Fact.t list }
      (** Batch-load facts; bumps the instance version, retiring pooled
          engine handles and cached plans built on the old contents. *)
  | Stats
  | Health
  | Metrics
      (** Live telemetry scrape: the server answers {!Metrics_reply}
          with an OpenMetrics text snapshot ([Obs.Export.openmetrics]).
          Protocol version 2. *)
  | Trace_dump of { limit : int }
      (** The most recent [limit] completed server-side spans, newest
          last ({!Trace_reply}). Protocol version 2. *)
  | Traced of { trace : int; span : int; req : request }
      (** Client-side trace propagation: wraps any non-[Traced] request
          with the caller's trace and span ids so the server's span for
          the work links back to the client's. Decoders reject a nested
          [Traced]. Protocol version 2. *)
  | Keyed of { key : int; req : request }
      (** Idempotency envelope: [key] identifies one {e logical} engine
          op (prepare/execute/ingest). A client retrying after a
          connection loss re-sends the same key; the server's dedup
          window (keyed by client name and [key]) replays the recorded
          responses instead of re-executing, so a retried ingest applies
          exactly once. Decoders reject [Hello], [Traced] or another
          [Keyed] inside; the canonical nesting is [Traced{Keyed{op}}].
          Protocol version 3. *)

type error_code =
  | Bad_request  (** Unknown instance/plan id, parse error, bad frame. *)
  | Rejected  (** Admission control: too many requests in flight. *)
  | Throttled  (** The client's token bucket is empty. *)
  | Failed  (** The engine raised; the message carries the exception. *)
  | Overloaded of { retry_after_s : float }
      (** Load shedding: queue wait is past the server's watermark and
          this request was low-priority work. The client should back
          off at least [retry_after_s] seconds; resilient clients honor
          it as a floor on their next retry delay. Downgrades to
          [Throttled] on pre-v3 sessions. *)
  | Corrupt_frame
      (** The server could not decode the client's frame (checksum
          mismatch, bad length, malformed payload) and is hanging up;
          safe to retry on a fresh connection. Downgrades to
          [Bad_request] on pre-v3 sessions. *)

type server_stats = {
  sessions : int;  (** Connected sessions, including the asker. *)
  active_requests : int;  (** Requests past admission, not yet answered. *)
  executor_in_flight : int;  (** {!Lamp_runtime.Executor.in_flight}. *)
  pool_workers : int;  (** Executor workers (1 on seq). *)
  plan_cache_size : int;
  plan_cache_hits : int;
  plan_cache_misses : int;
  handle_pools : (string * int * int) list;
      (** Per instance: (name, handles in use, idle handles). *)
  requests_served : int;
  rejected : int;
  throttled : int;
  uptime_s : float;
      (** Seconds since the server was created. Added in protocol
          version 2; a v1 session's encoding omits it (decoded as 0). *)
  deduped : int;
      (** Keyed requests answered from the dedup window instead of
          re-executed. Protocol version 3 (0 on older sessions). *)
  shed : int;
      (** Requests rejected with [Overloaded] while load shedding.
          Protocol version 3 (0 on older sessions). *)
  reaped : int;
      (** Sessions torn down by a read/write deadline, the idle
          timeout or the stalled-connection reaper. Protocol version 3
          (0 on older sessions). *)
}

type span_info = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;  (** Domain/thread id the span ran on. *)
  sp_t : float;  (** Start, seconds since the trace clock's origin. *)
  sp_dur : float;  (** Duration in seconds. *)
}
(** One completed server-side span, as shipped by {!Trace_reply}. *)

type response =
  | Hello_ok of { server : string; version : int }
  | Prepared of { id : int; cached : bool; atoms : int }
      (** [cached] is true on a plan-cache hit; [atoms] is the number
          of join steps of the compiled plan. *)
  | Batch of Lamp_relational.Fact.t list
      (** One chunk of an {!Execute} result; zero or more precede
          {!Done}. Facts arrive in canonical (sorted-set) order. *)
  | Done of { facts : int; stats : Lamp_mpc.Stats.t option }
      (** Terminates an {!Execute} stream. [facts] is the total across
          batches, a framing cross-check; [stats] is the MPC load
          accounting ([None] for [Local] mode). *)
  | Ingested of { added : int }
  | Stats_reply of server_stats
  | Healthy
  | Error of { code : error_code; message : string }
  | Metrics_reply of string
      (** OpenMetrics text exposition of the server's live metrics. *)
  | Trace_reply of span_info list
      (** Recent completed server spans, oldest first. *)

(** {1 Codecs}

    Pure encode/decode, exposed for the property tests; the framed I/O
    below wraps them. Decoders raise {!Lamp_jobs.Codec.Corrupt} on
    malformed input and verify the whole payload is consumed. *)

val request_to_string : request -> string
val request_of_string : string -> request

val response_to_string : ?version:int -> response -> string
(** [version] (default {!protocol_version}) is the session's negotiated
    protocol version; it selects the {!server_stats} layout (v1 has no
    [uptime_s]). Requests need no version: every request tag a client
    can send is fixed by the client's own version. *)

val response_of_string : ?version:int -> string -> response

(** {1 Framed I/O}

    Blocking reads/writes on a connected socket. Short reads and writes
    are retried; EOF mid-frame raises {!Closed}; a frame header
    announcing a negative payload or one whose checksum does not match
    raises {!Lamp_jobs.Codec.Corrupt}; a length past the limit raises
    {!Too_large} before any allocation.

    Every operation takes an optional {e absolute} [deadline] (a
    [Unix.gettimeofday] timestamp): when the socket is not ready by
    then, {!Timed_out} is raised and the frame is torn — the connection
    must be abandoned, not reused.

    {b Global side effect — SIGPIPE.} The first framed {e write} in a
    process sets the {e process-wide} SIGPIPE disposition to
    [Signal_ignore] (OCaml's [Unix] module exposes no per-write
    [MSG_NOSIGNAL]), so a write after the peer's FIN surfaces as
    [EPIPE] → {!Closed} instead of killing the process. This replaces
    whatever disposition the embedding application had installed: a
    host that relies on SIGPIPE termination (e.g. one whose stdout is
    piped) must reinstall its handler {e after} the first wire write.
    The overwrite happens once per process and is never undone. *)

exception Closed
(** The peer closed or reset the connection (EOF or ECONNRESET/EPIPE on
    a frame boundary or mid-frame). *)

exception Timed_out
(** An I/O deadline passed mid-frame; the stream position is
    unknown and the connection must be dropped. *)

exception Too_large of {
  len : int;  (** The announced payload length. *)
  limit : int;  (** The limit it exceeded. *)
}
(** A frame header announced a payload larger than the configured
    limit. Raised before allocating anything. *)

val checksum : string -> int
(** The frame checksum: a 63-bit FNV-style polynomial fold. Any
    single-byte change at any position changes the digest. Exposed for
    the property tests. *)

val wait_readable : ?timeout_s:float -> Unix.file_descr -> bool
(** Blocks until the descriptor is readable (true) or [timeout_s]
    elapses (false; never with no timeout). EINTR-safe. *)

val read_frame : ?max_len:int -> ?deadline:float -> Unix.file_descr -> string
(** [max_len] defaults to {!max_frame}. *)

val write_frame : ?deadline:float -> Unix.file_descr -> string -> unit

val read_request :
  ?max_len:int -> ?deadline:float -> Unix.file_descr -> request

val write_request : ?deadline:float -> Unix.file_descr -> request -> unit

val read_response :
  ?version:int -> ?max_len:int -> ?deadline:float -> Unix.file_descr ->
  response

val write_response :
  ?version:int -> ?deadline:float -> Unix.file_descr -> response -> unit
