(** The wire protocol of lamp.serve.

    Every message is one {e frame}: an 8-byte big-endian payload length
    followed by the payload, a {!Lamp_jobs.Codec} encoding of a
    {!request} or {!response}. Framing and payload reuse the checkpoint
    codec deliberately: its decoders treat input as untrusted (length
    prefixes are validated before allocation, malformed bytes raise
    {!Lamp_jobs.Codec.Corrupt}, never crash), which is exactly the
    contract a network-facing parser needs.

    Encodings are canonical — the payload bytes are a pure function of
    the message value — so the equivalence tests can compare raw frames,
    and the property tests can round-trip random messages. *)

val protocol_version : int
(** Bumped on any incompatible change to the frame or message layout.
    {!Hello} carries the client's copy; the server {e negotiates}: a
    session speaks [min (client, server)] as long as the client's
    version is at least {!min_protocol_version}, and the negotiated
    version comes back in {!Hello_ok}. Version 2 added {!Metrics},
    {!Trace_dump}, the {!Traced} envelope and the [uptime_s] stats
    field; v1 clients keep working because none of those appear on a
    v1 session. *)

val min_protocol_version : int
(** Oldest client version the server still accepts (currently 1). *)

val max_frame : int
(** Upper bound on a payload length (256 MiB). A frame header
    announcing more is treated as corrupt before any allocation. *)

(** {1 Messages} *)

(** How an {!Execute} request runs the query. [Local] is the
    single-server compiled-plan engine, bit-identical to
    [Cq.Eval.eval]. The MPC modes simulate the paper's one-round
    algorithms on [p] servers and return their {!Lamp_mpc.Stats.t};
    [Repartition] and [Grid] run those algorithms' fixed queries
    (Examples 3.1(1a) and 3.1(1b)) and ignore the request's plan. *)
type mode =
  | Local
  | Hypercube of { p : int }
  | Repartition of { p : int }
  | Grid of { p : int }

(** A prepared plan id returned by {!Prepare}, or the query text
    compiled (through the same cache) on the fly. *)
type plan_ref =
  | Id of int
  | Adhoc of string

type request =
  | Hello of { client : string; version : int }
      (** First request of a session: names the client (the quota key)
          and checks protocol compatibility. *)
  | Prepare of { instance : string; query : string }
      (** Compile [query] against the named instance once; later
          {!Execute}s reference the returned id. Idempotent: the same
          query text on the same instance returns the cached plan. *)
  | Execute of { instance : string; plan : plan_ref; mode : mode }
  | Ingest of { instance : string; facts : Lamp_relational.Fact.t list }
      (** Batch-load facts; bumps the instance version, retiring pooled
          engine handles and cached plans built on the old contents. *)
  | Stats
  | Health
  | Metrics
      (** Live telemetry scrape: the server answers {!Metrics_reply}
          with an OpenMetrics text snapshot ([Obs.Export.openmetrics]).
          Protocol version 2. *)
  | Trace_dump of { limit : int }
      (** The most recent [limit] completed server-side spans, newest
          last ({!Trace_reply}). Protocol version 2. *)
  | Traced of { trace : int; span : int; req : request }
      (** Client-side trace propagation: wraps any non-[Traced] request
          with the caller's trace and span ids so the server's span for
          the work links back to the client's. Decoders reject a nested
          [Traced]. Protocol version 2. *)

type error_code =
  | Bad_request  (** Unknown instance/plan id, parse error, bad frame. *)
  | Rejected  (** Admission control: too many requests in flight. *)
  | Throttled  (** The client's token bucket is empty. *)
  | Failed  (** The engine raised; the message carries the exception. *)

type server_stats = {
  sessions : int;  (** Connected sessions, including the asker. *)
  active_requests : int;  (** Requests past admission, not yet answered. *)
  executor_in_flight : int;  (** {!Lamp_runtime.Executor.in_flight}. *)
  pool_workers : int;  (** Executor workers (1 on seq). *)
  plan_cache_size : int;
  plan_cache_hits : int;
  plan_cache_misses : int;
  handle_pools : (string * int * int) list;
      (** Per instance: (name, handles in use, idle handles). *)
  requests_served : int;
  rejected : int;
  throttled : int;
  uptime_s : float;
      (** Seconds since the server was created. Added in protocol
          version 2; a v1 session's encoding omits it (decoded as 0). *)
}

type span_info = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;  (** Domain/thread id the span ran on. *)
  sp_t : float;  (** Start, seconds since the trace clock's origin. *)
  sp_dur : float;  (** Duration in seconds. *)
}
(** One completed server-side span, as shipped by {!Trace_reply}. *)

type response =
  | Hello_ok of { server : string; version : int }
  | Prepared of { id : int; cached : bool; atoms : int }
      (** [cached] is true on a plan-cache hit; [atoms] is the number
          of join steps of the compiled plan. *)
  | Batch of Lamp_relational.Fact.t list
      (** One chunk of an {!Execute} result; zero or more precede
          {!Done}. Facts arrive in canonical (sorted-set) order. *)
  | Done of { facts : int; stats : Lamp_mpc.Stats.t option }
      (** Terminates an {!Execute} stream. [facts] is the total across
          batches, a framing cross-check; [stats] is the MPC load
          accounting ([None] for [Local] mode). *)
  | Ingested of { added : int }
  | Stats_reply of server_stats
  | Healthy
  | Error of { code : error_code; message : string }
  | Metrics_reply of string
      (** OpenMetrics text exposition of the server's live metrics. *)
  | Trace_reply of span_info list
      (** Recent completed server spans, oldest first. *)

(** {1 Codecs}

    Pure encode/decode, exposed for the property tests; the framed I/O
    below wraps them. Decoders raise {!Lamp_jobs.Codec.Corrupt} on
    malformed input and verify the whole payload is consumed. *)

val request_to_string : request -> string
val request_of_string : string -> request

val response_to_string : ?version:int -> response -> string
(** [version] (default {!protocol_version}) is the session's negotiated
    protocol version; it selects the {!server_stats} layout (v1 has no
    [uptime_s]). Requests need no version: every request tag a client
    can send is fixed by the client's own version. *)

val response_of_string : ?version:int -> string -> response

(** {1 Framed I/O}

    Blocking reads/writes on a connected socket. Short reads and writes
    are retried; EOF mid-frame raises {!Closed}; a frame header
    announcing a negative or oversized payload raises
    {!Lamp_jobs.Codec.Corrupt}. *)

exception Closed
(** The peer closed the connection (EOF on a frame boundary or
    mid-frame). *)

val read_frame : Unix.file_descr -> string
val write_frame : Unix.file_descr -> string -> unit
val read_request : Unix.file_descr -> request
val write_request : Unix.file_descr -> request -> unit
val read_response : ?version:int -> Unix.file_descr -> response
val write_response : ?version:int -> Unix.file_descr -> response -> unit
