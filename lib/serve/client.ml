module Instance = Lamp_relational.Instance

type t = {
  fd : Unix.file_descr;
  mutable closed : bool;
  (* Negotiated protocol version; starts optimistic at our own and is
     settled by {!hello} (both peers default to the same version, so a
     session that skips hello still agrees with a same-build server). *)
  mutable version : int;
  (* Per-request deadline budget, set at connect time. *)
  timeout_s : float option;
  (* This connection's trace id and the next span id under it; carried
     by the [Traced] envelope on every v2 work request so server-side
     spans link back to the caller. *)
  trace : int;
  mutable next_span : int;
}

exception Server_error of Wire.error_code * string
exception Protocol_error of string
exception Connection_lost of string
exception Timed_out of string

let proto fmt = Format.kasprintf (fun s -> raise (Protocol_error s)) fmt

(* Process-unique trace ids: the pid distinguishes processes, the
   counter distinguishes connections within one. *)
let trace_counter = Atomic.make 1

let fresh_trace () =
  (Unix.getpid () lsl 24) lxor Atomic.fetch_and_add trace_counter 1

(* Once a frame is torn — peer gone mid-stream, deadline passed, bytes
   that fail the checksum — the connection's framing is unknowable, so
   the client value is dead: mark, close, raise the typed error. *)
let dead t e =
  t.closed <- true;
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  raise e

let errno_name = Unix.error_message

(* Run one I/O step, mapping every transport-level failure to the
   typed exceptions. [Codec.Corrupt] from a framed read means the
   checksum or the layout disagreed with the peer — corruption in
   flight, not a caller bug — and is connection-fatal too. *)
let io t label f =
  try f () with
  | Wire.Closed -> dead t (Connection_lost (label ^ ": connection closed"))
  | Wire.Timed_out -> dead t (Timed_out (label ^ ": deadline exceeded"))
  | Unix.Unix_error
      ( (( ECONNRESET | EPIPE | ETIMEDOUT | ECONNABORTED | ENOTCONN
         | EHOSTUNREACH | ENETDOWN | ENETUNREACH | ENETRESET ) as errno),
        _,
        _ ) ->
    dead t (Connection_lost (label ^ ": " ^ errno_name errno))
  | Lamp_jobs.Codec.Corrupt msg ->
    dead t (Connection_lost (label ^ ": corrupt frame: " ^ msg))
  | Wire.Too_large { len; limit } ->
    (* A response frame claiming more than the limit means the length
       header itself is corrupt — the stream is unframed, same as a
       checksum mismatch. *)
    dead t
      (Connection_lost
         (Printf.sprintf "%s: corrupt frame: length %d exceeds %d" label len
            limit))

let connect ?timeout_s fd addr =
  match Unix.connect fd addr with
  | () ->
    {
      fd;
      closed = false;
      version = Wire.protocol_version;
      timeout_s;
      trace = fresh_trace ();
      next_span = 0;
    }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (match e with
    | Unix.Unix_error
        ( (( ECONNREFUSED | ECONNRESET | ETIMEDOUT | ENOENT | EAGAIN
           | EHOSTUNREACH | ENETUNREACH | ENETDOWN ) as errno),
          _,
          _ ) ->
      (* Transient connect failures (including a not-yet-bound Unix
         socket path) map to the typed error so resilient callers can
         retry the connect like any other loss. *)
      raise (Connection_lost ("connect: " ^ errno_name errno))
    | e -> raise e)

let connect_unix ?timeout_s ~path () =
  connect ?timeout_s
    (Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0)
    (ADDR_UNIX path)

let connect_tcp ?timeout_s ?(host = "127.0.0.1") ~port () =
  connect ?timeout_s
    (Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0)
    (ADDR_INET (Unix.inet_addr_of_string host, port))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let closed t = t.closed

let deadline t =
  Option.map (fun s -> Unix.gettimeofday () +. s) t.timeout_s

let check_open t =
  if t.closed then raise (Connection_lost "client is closed")

(* One request/response exchange under a single absolute deadline. *)
let roundtrip t req =
  check_open t;
  let dl = deadline t in
  io t "request" (fun () -> Wire.write_request ?deadline:dl t.fd req);
  match
    io t "response" (fun () ->
        Wire.read_response ~version:t.version ?deadline:dl t.fd)
  with
  | Error { code; message } -> raise (Server_error (code, message))
  | resp -> resp

(* Wrap a work request in the trace envelope on a v2 session. Scrape
   ops ({!metrics}, {!trace_dump}) stay unwrapped: the scraper should
   read the trace, not add to it. *)
let traced t req =
  if t.version >= 2 then begin
    let span = t.next_span in
    t.next_span <- span + 1;
    Wire.Traced { trace = t.trace; span; req }
  end
  else req

(* The idempotency envelope, inside [Traced]: v3 sessions only (an old
   server would reject the unknown tag, so the key is silently dropped
   on a downgraded session — re-execution semantics, as before v3). *)
let keyed t ?key req =
  match key with
  | Some k when t.version >= 3 -> Wire.Keyed { key = k; req }
  | _ -> req

let hello ?(client = "anon") ?(version = Wire.protocol_version) t =
  match roundtrip t (Hello { client; version }) with
  | Hello_ok { server; version = negotiated } ->
    if negotiated > version || negotiated < 1 then
      proto "server negotiated protocol %d, client offered %d" negotiated
        version;
    t.version <- negotiated;
    server
  | _ -> proto "expected Hello_ok"

type prepared = {
  id : int;
  cached : bool;
  atoms : int;
}

let prepare ?key t ~instance ~query =
  match roundtrip t (traced t (keyed t ?key (Prepare { instance; query }))) with
  | Prepared { id; cached; atoms } -> { id; cached; atoms }
  | _ -> proto "expected Prepared"

(* Collect Batch* Done. The first response comes through [roundtrip],
   so a leading Error raises there; Errors can also terminate the
   stream mid-way. The whole stream shares one deadline: a server (or
   chaos proxy) trickling batches forever cannot pin the caller. *)
let execute ?key t ~instance ?(mode = Wire.Local) plan =
  check_open t;
  let dl = deadline t in
  io t "request" (fun () ->
      Wire.write_request ?deadline:dl t.fd
        (traced t (keyed t ?key (Execute { instance; plan; mode }))));
  let read () =
    io t "response" (fun () ->
        Wire.read_response ~version:t.version ?deadline:dl t.fd)
  in
  let rec collect acc = function
    | Wire.Batch facts -> collect (List.rev_append facts acc) (read ())
    | Wire.Done { facts; stats } ->
      let got = List.length acc in
      if got <> facts then
        proto "result stream announced %d facts, carried %d" facts got;
      (Instance.of_facts acc, stats)
    | Wire.Error { code; message } -> raise (Server_error (code, message))
    | _ -> proto "expected Batch or Done"
  in
  collect [] (read ())

let ingest ?key t ~instance facts =
  match roundtrip t (traced t (keyed t ?key (Ingest { instance; facts }))) with
  | Ingested { added } -> added
  | _ -> proto "expected Ingested"

let stats t =
  match roundtrip t (traced t Wire.Stats) with
  | Stats_reply s -> s
  | _ -> proto "expected Stats_reply"

let health t =
  match roundtrip t (traced t Wire.Health) with
  | Healthy -> true
  | _ -> false

let metrics t =
  match roundtrip t Wire.Metrics with
  | Metrics_reply text -> text
  | _ -> proto "expected Metrics_reply"

let trace_dump ?(limit = 256) t =
  match roundtrip t (Wire.Trace_dump { limit }) with
  | Trace_reply spans -> spans
  | _ -> proto "expected Trace_reply"

let version t = t.version
let trace_id t = t.trace
