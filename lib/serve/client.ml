module Instance = Lamp_relational.Instance

type t = {
  fd : Unix.file_descr;
  mutable closed : bool;
}

exception Server_error of Wire.error_code * string
exception Protocol_error of string

let proto fmt = Format.kasprintf (fun s -> raise (Protocol_error s)) fmt

let connect fd addr =
  match Unix.connect fd addr with
  | () -> { fd; closed = false }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect_unix ~path =
  connect (Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0) (ADDR_UNIX path)

let connect_tcp ?(host = "127.0.0.1") ~port () =
  connect
    (Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0)
    (ADDR_INET (Unix.inet_addr_of_string host, port))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let roundtrip t req =
  if t.closed then proto "client is closed";
  Wire.write_request t.fd req;
  match Wire.read_response t.fd with
  | Error { code; message } -> raise (Server_error (code, message))
  | resp -> resp

let hello ?(client = "anon") t =
  match
    roundtrip t (Hello { client; version = Wire.protocol_version })
  with
  | Hello_ok { server; version } ->
    if version <> Wire.protocol_version then
      proto "server speaks protocol %d, client %d" version
        Wire.protocol_version;
    server
  | _ -> proto "expected Hello_ok"

type prepared = {
  id : int;
  cached : bool;
  atoms : int;
}

let prepare t ~instance ~query =
  match roundtrip t (Prepare { instance; query }) with
  | Prepared { id; cached; atoms } -> { id; cached; atoms }
  | _ -> proto "expected Prepared"

(* Collect Batch* Done. The first response comes through [roundtrip],
   so a leading Error raises there; Errors can also terminate the
   stream mid-way. *)
let execute t ~instance ?(mode = Wire.Local) plan =
  let first = roundtrip t (Execute { instance; plan; mode }) in
  let rec collect acc = function
    | Wire.Batch facts ->
      collect (List.rev_append facts acc) (Wire.read_response t.fd)
    | Wire.Done { facts; stats } ->
      let got = List.length acc in
      if got <> facts then
        proto "result stream announced %d facts, carried %d" facts got;
      (Instance.of_facts acc, stats)
    | Wire.Error { code; message } -> raise (Server_error (code, message))
    | _ -> proto "expected Batch or Done"
  in
  collect [] first

let ingest t ~instance facts =
  match roundtrip t (Ingest { instance; facts }) with
  | Ingested { added } -> added
  | _ -> proto "expected Ingested"

let stats t =
  match roundtrip t Stats with
  | Stats_reply s -> s
  | _ -> proto "expected Stats_reply"

let health t =
  match roundtrip t Health with
  | Healthy -> true
  | _ -> false
