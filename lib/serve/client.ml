module Instance = Lamp_relational.Instance

type t = {
  fd : Unix.file_descr;
  mutable closed : bool;
  (* Negotiated protocol version; starts optimistic at our own and is
     settled by {!hello} (both peers default to the same version, so a
     session that skips hello still agrees with a same-build server). *)
  mutable version : int;
  (* This connection's trace id and the next span id under it; carried
     by the [Traced] envelope on every v2 work request so server-side
     spans link back to the caller. *)
  trace : int;
  mutable next_span : int;
}

exception Server_error of Wire.error_code * string
exception Protocol_error of string

let proto fmt = Format.kasprintf (fun s -> raise (Protocol_error s)) fmt

(* Process-unique trace ids: the pid distinguishes processes, the
   counter distinguishes connections within one. *)
let trace_counter = Atomic.make 1

let fresh_trace () =
  (Unix.getpid () lsl 24) lxor Atomic.fetch_and_add trace_counter 1

let connect fd addr =
  match Unix.connect fd addr with
  | () ->
    {
      fd;
      closed = false;
      version = Wire.protocol_version;
      trace = fresh_trace ();
      next_span = 0;
    }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect_unix ~path =
  connect (Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0) (ADDR_UNIX path)

let connect_tcp ?(host = "127.0.0.1") ~port () =
  connect
    (Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0)
    (ADDR_INET (Unix.inet_addr_of_string host, port))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let roundtrip t req =
  if t.closed then proto "client is closed";
  Wire.write_request t.fd req;
  match Wire.read_response ~version:t.version t.fd with
  | Error { code; message } -> raise (Server_error (code, message))
  | resp -> resp

(* Wrap a work request in the trace envelope on a v2 session. Scrape
   ops ({!metrics}, {!trace_dump}) stay unwrapped: the scraper should
   read the trace, not add to it. *)
let traced t req =
  if t.version >= 2 then begin
    let span = t.next_span in
    t.next_span <- span + 1;
    Wire.Traced { trace = t.trace; span; req }
  end
  else req

let hello ?(client = "anon") ?(version = Wire.protocol_version) t =
  match roundtrip t (Hello { client; version }) with
  | Hello_ok { server; version = negotiated } ->
    if negotiated > version || negotiated < 1 then
      proto "server negotiated protocol %d, client offered %d" negotiated
        version;
    t.version <- negotiated;
    server
  | _ -> proto "expected Hello_ok"

type prepared = {
  id : int;
  cached : bool;
  atoms : int;
}

let prepare t ~instance ~query =
  match roundtrip t (traced t (Prepare { instance; query })) with
  | Prepared { id; cached; atoms } -> { id; cached; atoms }
  | _ -> proto "expected Prepared"

(* Collect Batch* Done. The first response comes through [roundtrip],
   so a leading Error raises there; Errors can also terminate the
   stream mid-way. *)
let execute t ~instance ?(mode = Wire.Local) plan =
  let first = roundtrip t (traced t (Execute { instance; plan; mode })) in
  let rec collect acc = function
    | Wire.Batch facts ->
      collect (List.rev_append facts acc)
        (Wire.read_response ~version:t.version t.fd)
    | Wire.Done { facts; stats } ->
      let got = List.length acc in
      if got <> facts then
        proto "result stream announced %d facts, carried %d" facts got;
      (Instance.of_facts acc, stats)
    | Wire.Error { code; message } -> raise (Server_error (code, message))
    | _ -> proto "expected Batch or Done"
  in
  collect [] first

let ingest t ~instance facts =
  match roundtrip t (traced t (Ingest { instance; facts })) with
  | Ingested { added } -> added
  | _ -> proto "expected Ingested"

let stats t =
  match roundtrip t (traced t Wire.Stats) with
  | Stats_reply s -> s
  | _ -> proto "expected Stats_reply"

let health t =
  match roundtrip t (traced t Wire.Health) with
  | Healthy -> true
  | _ -> false

let metrics t =
  match roundtrip t Wire.Metrics with
  | Metrics_reply text -> text
  | _ -> proto "expected Metrics_reply"

let trace_dump ?(limit = 256) t =
  match roundtrip t (Wire.Trace_dump { limit }) with
  | Trace_reply spans -> spans
  | _ -> proto "expected Trace_reply"

let version t = t.version
let trace_id t = t.trace
