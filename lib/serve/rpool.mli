(** A generic blocking resource pool (modeled on caqti's [pool.ml]):
    bounded creation, reuse of idle resources, validation on checkout,
    idle eviction, drain on shutdown.

    The serving layer keeps one pool of engine handles per instance: a
    handle (an interned-tuple [Cq.Plan.Db] plus its lazily built column
    indexes) is expensive to rebuild and must never be shared between
    two concurrent requests, exactly the profile of a pooled database
    connection. Checkout re-validates, so handles made stale by an
    {e ingest} (version bump) are disposed instead of reused.

    All operations are thread-safe; {!use} blocks when the pool is at
    capacity with every resource checked out. *)

type 'a t

exception Draining
(** Raised by {!use} once {!drain} has begun. *)

val create :
  ?max_size:int ->
  ?validate:('a -> bool) ->
  ?dispose:('a -> unit) ->
  (unit -> 'a) ->
  'a t
(** [create ~max_size alloc] pools resources built by [alloc].
    [max_size] (default 8) bounds live resources (idle + in use);
    [validate] (default [fun _ -> true]) is checked on checkout — a
    stale resource is disposed and replaced; [dispose] (default
    [ignore]) releases a resource on eviction, invalidation, failure or
    drain. [alloc] runs outside the pool lock.
    @raise Invalid_argument on [max_size < 1]. *)

val use : 'a t -> ('a -> 'b) -> 'b
(** [use p f] checks a resource out, runs [f] on it and returns it to
    the idle set. If [f] raises, the resource is disposed rather than
    returned (its state is unknown) and the exception is re-raised.
    Blocks while [max_size] resources are all in use.
    @raise Draining once {!drain} has begun. *)

val trim : 'a t -> keep:int -> unit
(** Disposes idle resources beyond [keep] — idle eviction for a pool
    that burst above its steady-state needs. In-use resources are
    untouched. *)

val drain : 'a t -> unit
(** Disposes every idle resource, waits for in-use resources to be
    returned and disposes them too; subsequent {!use} raises
    {!Draining}. Idempotent. After drain, [size p = 0] — the leak check
    of the serve smoke test. *)

val size : 'a t -> int
(** Live resources: idle + in use. *)

val in_use : 'a t -> int
val idle : 'a t -> int

val created : 'a t -> int
(** Cumulative resources ever built — [created - size] have been
    disposed. *)
