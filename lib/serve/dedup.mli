(** The idempotency-key dedup window.

    One logical client op (a {!Wire.request.Keyed} envelope) maps to
    one entry keyed by (client name, key). The first execution claims
    the entry, runs, and {!commit}s its recorded responses; any retry
    of the same key — typically after the chaos of a connection loss,
    when the client cannot know whether the op executed — {!acquire}s
    a [`Replay] and answers from the record instead of re-executing.
    An ingest therefore applies {e exactly once} no matter how many
    times the client has to re-send it.

    Entries survive until [capacity] later completions evict them
    (oldest finished first); in-flight (pending) entries are never
    evicted, and a concurrent retry of a pending key blocks until the
    first execution commits or aborts. Only {e successful} completions
    are recorded — a failed attempt {!abort}s so the retry really
    re-executes.

    Client names and keys are both client-chosen, so a (client, key)
    collision — a restarted client whose counter starts over, a second
    process sharing a name — is possible and must never replay another
    operation's recording. Every entry therefore carries a [digest] of
    the request it was recorded for; {!acquire} with the same key but a
    different digest answers [`Mismatch], which the server types as a
    bad request instead of silently returning the wrong responses. *)

type t

type token
(** A claimed pending entry; must be resolved with {!commit} or
    {!abort} exactly once. *)

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val acquire :
  t -> client:string -> key:int -> digest:int ->
  [ `Replay of Wire.response list | `Run of token | `Mismatch ]
(** [`Replay rs]: this op already completed; answer with [rs] (counted
    by {!hits}). [`Run tok]: the caller owns the execution. Blocks
    while another session is executing the same key {e with the same
    digest}; [`Mismatch]: the key exists (pending or finished) but was
    claimed for a different request — reject, never replay. [digest]
    is any collision-resistant-enough fingerprint of the inner request
    (the server uses {!Wire.checksum} of its encoding). *)

val commit : t -> token -> Wire.response list -> unit
(** Record the op's responses (in send order) and wake waiting
    retries. *)

val abort : t -> token -> unit
(** The execution failed or was shed: drop the entry so a retry
    re-executes. *)

val hits : t -> int
(** Replays served so far. *)

val length : t -> int
(** Entries currently held (pending + finished). *)
