(** A bounded LRU cache keyed by string fingerprints.

    The serving layer keys it by (instance, canonical query text):
    thousands of sessions issuing the same query share one compiled
    {!Lamp_cq.Plan}, so compilation cost is paid once per distinct
    query — the prepared-statement economics of a database server.
    Hit/miss/eviction counters feed the [stats] endpoint and the e15
    cache-hit-rate acceptance bar.

    Thread-safe. {!find_or_add} runs the builder under the cache lock:
    two sessions racing on the same fresh fingerprint compile once, and
    the compile itself is cheap relative to a pooled checkout. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 128) bounds entries; inserting beyond it evicts
    the least-recently-used entry.
    @raise Invalid_argument on [capacity < 1]. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a * bool
(** [find_or_add c key build] returns [(v, true)] on a hit and
    [(build (), false)] on a miss, caching the built value. A raising
    [build] caches nothing. Both paths refresh the entry's recency. *)

val find : 'a t -> string -> 'a option
(** Lookup without building; counts as hit or miss and refreshes
    recency on hit. *)

val remove_if : 'a t -> (string -> bool) -> int
(** Drops every entry whose key satisfies the predicate — ingest
    invalidation sweeps one instance's plans. Returns how many were
    dropped (counted as evictions). *)

val length : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
