(** Reconnecting retry client: {!Client} hardened for hostile networks.

    A [Resilient.t] wraps a connect thunk instead of one connection.
    Every operation runs under a bounded, seeded retry policy
    ({!Lamp_runtime.Executor.with_retry} with
    {!Lamp_runtime.Executor.exponential_backoff}): when an attempt
    fails with a {e retryable} error — {!Client.Connection_lost},
    {!Client.Timed_out}, a server [Overloaded] (whose [retry_after_s]
    floors the next sleep) or [Corrupt_frame] reply, and optionally
    [Rejected] — the wrapper reconnects, re-runs {!Client.hello} under
    the same stable client name, and re-issues the request.

    Re-issuing is safe because every {!prepare}/{!execute}/{!ingest}
    carries an idempotency key drawn from a per-wrapper counter: the
    key is allocated {e once per logical operation} and re-sent
    verbatim on every retry of it, so the server's dedup window
    (keyed by client name) replays the recorded response instead of
    executing twice. A keyed ingest that is retried five times still
    counts its facts exactly once. The counter's high bits are a
    per-wrapper nonce (overridable with [?key_nonce]), so a restarted
    process that reuses a client name draws from a fresh key range
    instead of colliding with the dead process's entries still in the
    server's window — and the server cross-checks every replay against
    a digest of the request, so even a colliding key yields a typed
    error, never another operation's response.

    The exactly-once contract needs the wire to carry the key, which
    protocol version 3 introduced. On a session negotiated below v3
    the key cannot be sent, so {!ingest} — the one non-idempotent op —
    {e refuses to retry} a transport failure that may have already
    applied: the original {!Client.Connection_lost}/{!Client.Timed_out}
    propagates rather than silently degrading to at-least-once.
    Idempotent ops (and failures proven to precede the send, e.g. a
    failed reconnect) retry as usual.

    All failure handling is deterministic given the seed: the backoff
    schedule is a pure function of [(seed, attempt)], and no attempt
    ever sleeps less than the server's [retry_after_s] hint.

    Thread-safety: a wrapper serializes its operations under an
    internal lock (one underlying connection), so sharing one across
    threads is safe but not concurrent — give each session its own, as
    with {!Client}. *)

type config = {
  max_attempts : int;  (** Total attempts per operation (>= 1). *)
  seed : int;  (** Seeds the deterministic backoff jitter. *)
  base_delay_s : float;  (** First retry delay. *)
  max_delay_s : float;  (** Cap on the exponential schedule. *)
  budget_s : float option;
      (** Cumulative sleep budget across one operation's retries; a
          retry that would exceed it propagates the failure instead. *)
  retry_rejected : bool;
      (** Also retry [Rejected] (quota) errors. Off by default: pacing
          out a quota rejection is a policy decision, not a transport
          recovery. *)
}

val default_config : config
(** 5 attempts, seed 1, 1ms base / 250ms cap, 10s budget,
    [retry_rejected = false]. *)

type t

val create :
  ?config:config ->
  ?client:string ->
  ?hello_version:int ->
  ?key_nonce:int ->
  (unit -> Client.t) ->
  t
(** [create connect] wraps the thunk; no connection is made until the
    first operation. [client] (default ["resilient"]) is the stable
    session name sent in {!Client.hello} on every (re)connect — it is
    the server's dedup-window key, so two wrappers sharing a name also
    share a replay window. [hello_version] lets tests pin an older
    protocol. [key_nonce] (masked to 30 bits) pins the idempotency-key
    range; by default it is drawn from time-and-pid entropy so
    restarted wrappers do not reuse keys — pass it explicitly when a
    test needs reproducible keys.
    @raise Invalid_argument on a non-positive [max_attempts] or a
    negative delay. *)

val prepare : t -> instance:string -> query:string -> Client.prepared

val execute :
  t ->
  instance:string ->
  ?mode:Wire.mode ->
  Wire.plan_ref ->
  Lamp_relational.Instance.t * Lamp_mpc.Stats.t option

val ingest : t -> instance:string -> Lamp_relational.Fact.t list -> int
(** Keyed, retried variants of the {!Client} operations: identical
    results, at-most-once server-side effects per logical call. On a
    pre-v3 session (no key on the wire), [ingest] does not retry a
    transport failure that may have reached the server — the typed
    error propagates (see the module preamble). *)

val stats : t -> Wire.server_stats
val health : t -> bool
val metrics : t -> string
val trace_dump : ?limit:int -> t -> Wire.span_info list
(** Read-only operations, retried but unkeyed (idempotent by
    nature). *)

val retries : t -> int
(** Retry attempts performed so far across all operations — the
    chaos benches assert this is non-zero under fault plans that
    force re-execution. *)

val close : t -> unit
(** Close the current connection, if any. The wrapper may be reused: a
    later operation reconnects. *)
