(** The lamp query server.

    One process serves named instances over Unix-domain or TCP sockets
    speaking {!Wire}. Each accepted connection gets a session thread;
    session threads block on socket I/O (releasing the OCaml runtime
    lock) and take a server-wide {e engine lock} to run queries — the
    interning tables and [Cq.Plan.Db] handles are not thread-safe, so
    executions are serialized and parallelism {e within} an execution
    comes from the {!Lamp_runtime.Executor} passed at creation. The
    time a request spends waiting on the engine lock is recorded in the
    ["serve.queue_wait_us"] histogram.

    Resources are governed as a database server would: per-instance
    {!Rpool}s of engine handles (an interned DB with its lazily built
    indexes) reused across requests and retired when an ingest bumps
    the instance version; a {!Cache} of compiled plans keyed by
    (instance, canonical query) shared by all sessions; admission
    control fast-rejecting work past [max_inflight]; and per-client
    token-bucket {!Quota}s.

    Responses are bit-identical to direct library calls: [Local] mode
    mirrors [Cq.Eval.eval]'s compiled-plan path, the MPC modes call the
    same [Mpc.*] entry points the CLI does. *)

type config = {
  name : string;  (** Reported in [Hello_ok]. *)
  max_sessions : int;  (** Connections beyond this are rejected. *)
  max_inflight : int;
      (** Requests past admission at once; excess gets [Error
          Rejected] immediately (fast-reject, no queueing). *)
  handle_pool : int;  (** Max pooled engine handles per instance. *)
  plan_cache : int;  (** Plan cache capacity. *)
  batch : int;  (** Facts per [Batch] frame when streaming results. *)
  quota : (float * float) option;
      (** Per-client token bucket as [(rate, burst)]; [None] disables
          throttling. *)
  strategy : Lamp_cq.Eval.strategy;
      (** Plan backend prepared plans compile to: [Binary] (the seed
          join-order plan) or [Wcoj] (worst-case-optimal). Both produce
          bit-identical results over the same column indexes. *)
  max_frame : int;
      (** Per-session cap on an incoming frame's payload length,
          checked before any allocation; a hostile length prefix gets
          [Error Corrupt_frame] and a hangup. Default
          {!Wire.max_frame}. *)
  read_timeout_s : float option;
      (** Deadline for a {e started} request frame to finish arriving
          (defeats slow-loris trickle); the idle wait between requests
          is governed by [idle_timeout_s]. [None] waits forever.
          Default 30 s. *)
  write_timeout_s : float option;
      (** Deadline for each response write; a peer that stops draining
          its socket is cut loose instead of pinning the session.
          Default 30 s. *)
  idle_timeout_s : float option;
      (** How long a session may sit between requests before it is
          reaped. [None] (default) keeps idle sessions forever. *)
  reap_after_s : float option;
      (** Stalled-connection reaper: a background thread shuts down
          any session without I/O activity for this long, {e including}
          one stuck mid-request — the cap must exceed the longest
          legitimate request. [None] (default) disables the reaper. *)
  dedup_window : int;
      (** Capacity of the idempotency-key window ({!Dedup}): how many
          completed keyed ops are remembered for replay. [0] disables
          deduplication (keyed requests execute unconditionally).
          Default 1024. Every entry is bound to a digest of the request
          it recorded; a replay whose request differs (a reused key) is
          refused with [Bad_request] instead of answered with the other
          op's responses. *)
  dedup_max_bytes : int;
      (** Cap on the encoded size of one dedup record (default 1 MiB).
          A keyed op whose responses exceed it completes normally but
          is {e not} recorded — a retry re-executes instead of
          replaying — so keyed queries with large result streams cannot
          pin up to [dedup_window] result sets in server memory. *)
  shed_queue_us : float option;
      (** Load-shedding watermark on the queue-wait EWMA
          (microseconds waiting for the engine lock). Past it the
          server answers engine ops with [Error Overloaded] — health,
          stats and scrapes still serve — until the estimate decays
          below half the watermark. [None] (default) disables
          shedding. *)
  shed_retry_after_s : float;
      (** The [retry_after_s] hint carried by shed responses
          (default 0.05). *)
}

val default_config : config
(** [{ name = "lamp"; max_sessions = 1024; max_inflight = 64;
      handle_pool = 4; plan_cache = 128; batch = 512; quota = None;
      strategy = Binary; max_frame = Wire.max_frame;
      read_timeout_s = Some 30.0; write_timeout_s = Some 30.0;
      idle_timeout_s = None; reap_after_s = None; dedup_window = 1024;
      dedup_max_bytes = 1 lsl 20; shed_queue_us = None;
      shed_retry_after_s = 0.05 }] *)

type t

val create : ?config:config -> executor:Lamp_runtime.Executor.t -> unit -> t
(** The executor runs MPC simulations and must outlive the server. *)

val add_instance : t -> name:string -> Lamp_relational.Instance.t -> unit
(** Registers (or replaces) a served instance. Replacing bumps the
    version, retiring pooled handles and cached plans. *)

val instance : t -> string -> Lamp_relational.Instance.t option
(** Current contents of a served instance (ingests included). *)

val listen_unix : t -> path:string -> unit
(** Binds a Unix-domain socket (unlinking a stale one) and starts
    accepting. *)

val listen_tcp : ?host:string -> t -> port:int -> int
(** Binds [host] (default ["127.0.0.1"]) and starts accepting; returns
    the bound port, which is the OS's pick when [port = 0]. *)

val stats : t -> Wire.server_stats

val stop : t -> unit
(** Closes listeners, shuts down live sessions, waits for session
    threads to exit, then drains every handle pool — after [stop],
    every pool reports size 0 (the smoke test's leak check).
    Idempotent. The executor is the caller's to dispose. *)
