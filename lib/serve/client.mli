(** Blocking client for the lamp query server.

    One connection per client value; calls are synchronous
    request/response exchanges and a client value must not be shared
    between threads without external locking (the load generator gives
    each concurrent session its own connection, as real drivers do).

    Server-signalled failures ({!Wire.Error} responses) raise
    {!Server_error}; a reply that violates the protocol (wrong response
    kind, batch count mismatch) raises {!Protocol_error}.

    {2 Failure typing}

    Transport-level failures never escape as raw [Unix.Unix_error]:
    mid-stream resets, broken pipes and kernel timeouts
    ([ECONNRESET]/[EPIPE]/[ETIMEDOUT]/…), a peer that closed between
    frames, and bytes that fail the frame checksum all raise
    {!Connection_lost}; a per-request deadline (set at connect time via
    [?timeout_s]) that expires raises {!Timed_out}. Both are
    {e connection-fatal}: the framing state is unknowable afterwards,
    so the client value is marked {!closed} and the socket shut. A
    caller that wants to continue reconnects — {!Resilient} packages
    that loop. *)

type t

exception Server_error of Wire.error_code * string
exception Protocol_error of string

exception Connection_lost of string
(** The transport failed: reset/EOF mid-frame, transient connect
    failure, or in-flight corruption (frame checksum mismatch, or a
    length header past the frame limit). The
    client is closed; the operation may or may not have executed
    server-side — re-issue it under an idempotency [?key] to make the
    retry safe. *)

exception Timed_out of string
(** The per-request deadline ([?timeout_s] at connect) expired. The
    client is closed (a reply may still be in flight on the wire, so
    the framing is out of sync). *)

val connect_unix : ?timeout_s:float -> path:string -> unit -> t
val connect_tcp : ?timeout_s:float -> ?host:string -> port:int -> unit -> t
(** [host] defaults to ["127.0.0.1"]. [timeout_s] is the per-request
    deadline applied to every later call on this client (whole
    request/response exchange, including all batches of a streamed
    result); omitted means wait forever. Transient connect failures
    ([ECONNREFUSED], a not-yet-bound socket path, …) raise
    {!Connection_lost}. *)

val hello : ?client:string -> ?version:int -> t -> string
(** Identifies the session (the server's quota key; default ["anon"])
    and negotiates the protocol version: the session then speaks
    [min (client, server)]. [version] (default
    {!Wire.protocol_version}) lets tests impersonate an older client;
    returns the server's name. On a v2 session every later work request
    is wrapped in {!Wire.Traced} with this connection's trace id. *)

val version : t -> int
(** The negotiated protocol version (own version before {!hello}). *)

val trace_id : t -> int
(** This connection's trace id, carried by the {!Wire.Traced}
    envelopes. *)

type prepared = {
  id : int;  (** Pass as [Wire.Id id] to {!execute}. *)
  cached : bool;  (** The server already had this plan compiled. *)
  atoms : int;  (** Join steps of the compiled plan. *)
}

val prepare : ?key:int -> t -> instance:string -> query:string -> prepared

val execute :
  ?key:int ->
  t ->
  instance:string ->
  ?mode:Wire.mode ->
  Wire.plan_ref ->
  Lamp_relational.Instance.t * Lamp_mpc.Stats.t option
(** Runs the plan ([mode] defaults to [Local]), collecting the streamed
    batches into an instance. The MPC modes also return the run's load
    statistics, exactly the [Stats.t] the library call yields. *)

val ingest :
  ?key:int -> t -> instance:string -> Lamp_relational.Fact.t list -> int
(** Returns how many facts were new.

    On {!prepare}/{!execute}/{!ingest}, [?key] is an idempotency key:
    on a v3 session the request is wrapped in {!Wire.Keyed} and the
    server deduplicates — re-sending the same [(client, key)] after a
    {!Connection_lost} or {!Timed_out} replays the recorded response
    instead of executing again, so a retried keyed ingest counts its
    facts exactly once. Keys must be unique per logical operation
    within a client name's dedup window; on a pre-v3 session the key
    is dropped (plain at-least-once semantics). *)

val stats : t -> Wire.server_stats
val health : t -> bool
(** [false] only on a server that answers but declares itself sick —
    connection errors raise as usual. *)

val metrics : t -> string
(** Live telemetry scrape: the server's current metrics as OpenMetrics
    text (parse with [Obs.Export.parse_openmetrics]). Requires a v2
    session. *)

val trace_dump : ?limit:int -> t -> Wire.span_info list
(** The server's most recent completed spans, oldest first ([limit]
    defaults to 256). Empty unless the server runs with tracing on.
    Requires a v2 session. *)

val close : t -> unit
(** Idempotent. *)

val closed : t -> bool
(** [true] once {!close} was called or a connection-fatal failure
    ({!Connection_lost}/{!Timed_out}) tore the session down. *)
