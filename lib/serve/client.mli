(** Blocking client for the lamp query server.

    One connection per client value; calls are synchronous
    request/response exchanges and a client value must not be shared
    between threads without external locking (the load generator gives
    each concurrent session its own connection, as real drivers do).

    Server-signalled failures ({!Wire.Error} responses) raise
    {!Server_error}; a reply that violates the protocol (wrong response
    kind, batch count mismatch) raises {!Protocol_error}. *)

type t

exception Server_error of Wire.error_code * string
exception Protocol_error of string

val connect_unix : path:string -> t
val connect_tcp : ?host:string -> port:int -> unit -> t
(** [host] defaults to ["127.0.0.1"]. *)

val hello : ?client:string -> ?version:int -> t -> string
(** Identifies the session (the server's quota key; default ["anon"])
    and negotiates the protocol version: the session then speaks
    [min (client, server)]. [version] (default
    {!Wire.protocol_version}) lets tests impersonate an older client;
    returns the server's name. On a v2 session every later work request
    is wrapped in {!Wire.Traced} with this connection's trace id. *)

val version : t -> int
(** The negotiated protocol version (own version before {!hello}). *)

val trace_id : t -> int
(** This connection's trace id, carried by the {!Wire.Traced}
    envelopes. *)

type prepared = {
  id : int;  (** Pass as [Wire.Id id] to {!execute}. *)
  cached : bool;  (** The server already had this plan compiled. *)
  atoms : int;  (** Join steps of the compiled plan. *)
}

val prepare : t -> instance:string -> query:string -> prepared

val execute :
  t ->
  instance:string ->
  ?mode:Wire.mode ->
  Wire.plan_ref ->
  Lamp_relational.Instance.t * Lamp_mpc.Stats.t option
(** Runs the plan ([mode] defaults to [Local]), collecting the streamed
    batches into an instance. The MPC modes also return the run's load
    statistics, exactly the [Stats.t] the library call yields. *)

val ingest : t -> instance:string -> Lamp_relational.Fact.t list -> int
(** Returns how many facts were new. *)

val stats : t -> Wire.server_stats
val health : t -> bool
(** [false] only on a server that answers but declares itself sick —
    connection errors raise as usual. *)

val metrics : t -> string
(** Live telemetry scrape: the server's current metrics as OpenMetrics
    text (parse with [Obs.Export.parse_openmetrics]). Requires a v2
    session. *)

val trace_dump : ?limit:int -> t -> Wire.span_info list
(** The server's most recent completed spans, oldest first ([limit]
    defaults to 256). Empty unless the server runs with tracing on.
    Requires a v2 session. *)

val close : t -> unit
(** Idempotent. *)
