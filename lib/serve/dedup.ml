(* The idempotency-key dedup window. One entry per (client, key): a
   keyed op that completed successfully keeps its recorded responses
   until capacity evicts it; a retry of the same logical op replays
   those responses instead of re-executing. In-flight entries are
   Pending so a concurrent retry (the first attempt's connection died
   but its session thread is still executing) blocks and then replays,
   rather than racing a second execution of the same ingest. *)

type state =
  | Pending
  | Finished of Wire.response list

type token = string * int

type t = {
  lock : Mutex.t;
  done_cond : Condition.t;
  capacity : int;
  entries : (token, state) Hashtbl.t;
  (* Completion order; only Finished entries are queued for eviction. *)
  order : token Queue.t;
  mutable hits : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Dedup.create: capacity < 1";
  {
    lock = Mutex.create ();
    done_cond = Condition.create ();
    capacity;
    entries = Hashtbl.create (min capacity 64);
    order = Queue.create ();
    hits = 0;
  }

let acquire t ~client ~key =
  let k = (client, key) in
  Mutex.protect t.lock (fun () ->
      let rec claim () =
        match Hashtbl.find_opt t.entries k with
        | Some (Finished rs) ->
          t.hits <- t.hits + 1;
          `Replay rs
        | Some Pending ->
          (* First execution still running; wait for its verdict. An
             abort removes the entry and we claim the re-execution. *)
          Condition.wait t.done_cond t.lock;
          claim ()
        | None ->
          Hashtbl.replace t.entries k Pending;
          `Run k
      in
      claim ())

let commit t token responses =
  Mutex.protect t.lock (fun () ->
      Hashtbl.replace t.entries token (Finished responses);
      Queue.push token t.order;
      (* Evict oldest finished entries past capacity; pendings are not
         in [order] and never evicted. *)
      while Queue.length t.order > t.capacity do
        let old = Queue.pop t.order in
        match Hashtbl.find_opt t.entries old with
        | Some (Finished _) -> Hashtbl.remove t.entries old
        | Some Pending | None -> ()
      done;
      Condition.broadcast t.done_cond)

let abort t token =
  Mutex.protect t.lock (fun () ->
      (match Hashtbl.find_opt t.entries token with
      | Some Pending -> Hashtbl.remove t.entries token
      | Some (Finished _) | None -> ());
      Condition.broadcast t.done_cond)

let hits t = Mutex.protect t.lock (fun () -> t.hits)
let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.entries)
