(* The idempotency-key dedup window. One entry per (client, key): a
   keyed op that completed successfully keeps its recorded responses
   until capacity evicts it; a retry of the same logical op replays
   those responses instead of re-executing. In-flight entries are
   Pending so a concurrent retry (the first attempt's connection died
   but its session thread is still executing) blocks and then replays,
   rather than racing a second execution of the same ingest.

   Every entry also carries a digest of the request it was recorded
   for. Client names are self-reported and keys are client-allocated,
   so a colliding (client, key) — a restarted client reusing its
   counter, or two processes sharing a name — must never be answered
   with another operation's recording: a digest mismatch surfaces as
   [`Mismatch] and the server types it as a bad request. *)

type state =
  | Pending of int
  | Finished of int * Wire.response list

type token = (string * int) * int

type t = {
  lock : Mutex.t;
  done_cond : Condition.t;
  capacity : int;
  entries : (string * int, state) Hashtbl.t;
  (* Completion order; only Finished entries are queued for eviction. *)
  order : (string * int) Queue.t;
  mutable hits : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Dedup.create: capacity < 1";
  {
    lock = Mutex.create ();
    done_cond = Condition.create ();
    capacity;
    entries = Hashtbl.create (min capacity 64);
    order = Queue.create ();
    hits = 0;
  }

let acquire t ~client ~key ~digest =
  let k = (client, key) in
  Mutex.protect t.lock (fun () ->
      let rec claim () =
        match Hashtbl.find_opt t.entries k with
        | Some (Finished (d, rs)) when d = digest ->
          t.hits <- t.hits + 1;
          `Replay rs
        | Some (Finished _) ->
          (* The key was recorded for a different request: replaying
             would hand this caller someone else's answer. *)
          `Mismatch
        | Some (Pending d) when d <> digest -> `Mismatch
        | Some (Pending _) ->
          (* First execution still running; wait for its verdict. An
             abort removes the entry and we claim the re-execution. *)
          Condition.wait t.done_cond t.lock;
          claim ()
        | None ->
          Hashtbl.replace t.entries k (Pending digest);
          `Run (k, digest)
      in
      claim ())

let commit t ((k, digest) : token) responses =
  Mutex.protect t.lock (fun () ->
      Hashtbl.replace t.entries k (Finished (digest, responses));
      Queue.push k t.order;
      (* Evict oldest finished entries past capacity; pendings are not
         in [order] and never evicted. *)
      while Queue.length t.order > t.capacity do
        let old = Queue.pop t.order in
        match Hashtbl.find_opt t.entries old with
        | Some (Finished _) -> Hashtbl.remove t.entries old
        | Some (Pending _) | None -> ()
      done;
      Condition.broadcast t.done_cond)

let abort t ((k, _) : token) =
  Mutex.protect t.lock (fun () ->
      (match Hashtbl.find_opt t.entries k with
      | Some (Pending _) -> Hashtbl.remove t.entries k
      | Some (Finished _) | None -> ());
      Condition.broadcast t.done_cond)

let hits t = Mutex.protect t.lock (fun () -> t.hits)
let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.entries)
