(* LRU via a monotone stamp per entry: on access an entry takes the
   next stamp; eviction scans for the minimum. The scan is O(capacity),
   fine for the dozens-of-plans caches this serves — no intrusive list
   needed. *)

type 'a entry = {
  value : 'a;
  mutable stamp : int;
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 128) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  {
    capacity;
    tbl = Hashtbl.create 64;
    mutex = Mutex.create ();
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let touch t e =
  t.clock <- t.clock + 1;
  e.stamp <- t.clock

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (k, e.stamp))
      t.tbl None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1
  | None -> ()

let find_or_add t key build =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        t.hits <- t.hits + 1;
        touch t e;
        (e.value, true)
      | None ->
        t.misses <- t.misses + 1;
        let v = build () in
        if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
        let e = { value = v; stamp = 0 } in
        touch t e;
        Hashtbl.replace t.tbl key e;
        (v, false))

let find t key =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        t.hits <- t.hits + 1;
        touch t e;
        Some e.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let remove_if t pred =
  Mutex.protect t.mutex (fun () ->
      let doomed =
        Hashtbl.fold (fun k _ acc -> if pred k then k :: acc else acc) t.tbl []
      in
      List.iter (Hashtbl.remove t.tbl) doomed;
      let n = List.length doomed in
      t.evictions <- t.evictions + n;
      n)

let length t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.tbl)
let hits t = Mutex.protect t.mutex (fun () -> t.hits)
let misses t = Mutex.protect t.mutex (fun () -> t.misses)
let evictions t = Mutex.protect t.mutex (fun () -> t.evictions)
