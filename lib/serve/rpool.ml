(* Invariant: [size] counts live resources, [idle] holds the free ones,
   so [in_use = size - List.length idle]. Waiters block on [cond],
   signalled whenever a resource is returned or disposed (both free
   capacity). Allocation happens outside the lock — a slot is reserved
   first ([size] incremented), released again if the allocator raises —
   so a slow [alloc] never stalls checkouts of already-live handles. *)

type 'a t = {
  alloc : unit -> 'a;
  validate : 'a -> bool;
  dispose : 'a -> unit;
  max_size : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable idle_q : 'a list;
  mutable size : int;
  mutable created : int;
  mutable draining : bool;
}

exception Draining

let create ?(max_size = 8) ?(validate = fun _ -> true) ?(dispose = ignore)
    alloc =
  if max_size < 1 then invalid_arg "Rpool.create: max_size < 1";
  {
    alloc;
    validate;
    dispose;
    max_size;
    mutex = Mutex.create ();
    cond = Condition.create ();
    idle_q = [];
    size = 0;
    created = 0;
    draining = false;
  }

(* Dispose outside the lock: user callbacks must not run under it. *)
let dispose_all t rs = List.iter (fun r -> try t.dispose r with _ -> ()) rs

let rec checkout t =
  Mutex.lock t.mutex;
  if t.draining then begin
    Mutex.unlock t.mutex;
    raise Draining
  end;
  match t.idle_q with
  | r :: rest ->
    t.idle_q <- rest;
    Mutex.unlock t.mutex;
    if t.validate r then r
    else begin
      (* Stale (e.g. built against a retired instance version):
         dispose, free the slot, try again. *)
      dispose_all t [ r ];
      Mutex.lock t.mutex;
      t.size <- t.size - 1;
      Condition.signal t.cond;
      Mutex.unlock t.mutex;
      checkout t
    end
  | [] ->
    if t.size < t.max_size then begin
      t.size <- t.size + 1;
      t.created <- t.created + 1;
      Mutex.unlock t.mutex;
      match t.alloc () with
      | r -> r
      | exception e ->
        Mutex.lock t.mutex;
        t.size <- t.size - 1;
        t.created <- t.created - 1;
        Condition.signal t.cond;
        Mutex.unlock t.mutex;
        raise e
    end
    else begin
      Condition.wait t.cond t.mutex;
      Mutex.unlock t.mutex;
      checkout t
    end

let release t r ~ok =
  Mutex.lock t.mutex;
  if ok && not t.draining then begin
    t.idle_q <- r :: t.idle_q;
    Condition.signal t.cond;
    Mutex.unlock t.mutex
  end
  else begin
    t.size <- t.size - 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    dispose_all t [ r ]
  end

let use t f =
  let r = checkout t in
  match f r with
  | v ->
    release t r ~ok:true;
    v
  | exception e ->
    release t r ~ok:false;
    raise e

let trim t ~keep =
  if keep < 0 then invalid_arg "Rpool.trim: keep < 0";
  Mutex.lock t.mutex;
  let rec split n = function
    | rest when n = 0 -> ([], rest)
    | [] -> ([], [])
    | r :: rest ->
      let kept, evicted = split (n - 1) rest in
      (r :: kept, evicted)
  in
  let kept, evicted = split keep t.idle_q in
  t.idle_q <- kept;
  t.size <- t.size - List.length evicted;
  if evicted <> [] then Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  dispose_all t evicted

let drain t =
  Mutex.lock t.mutex;
  t.draining <- true;
  let rec go () =
    let idle = t.idle_q in
    t.idle_q <- [];
    t.size <- t.size - List.length idle;
    if idle <> [] then begin
      Mutex.unlock t.mutex;
      dispose_all t idle;
      Mutex.lock t.mutex
    end;
    if t.size > 0 then begin
      (* In-use resources: their release sees [draining] and disposes,
         decrementing [size] and waking us. *)
      Condition.wait t.cond t.mutex;
      go ()
    end
  in
  go ();
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let size t = Mutex.protect t.mutex (fun () -> t.size)
let idle t = Mutex.protect t.mutex (fun () -> List.length t.idle_q)

let in_use t =
  Mutex.protect t.mutex (fun () -> t.size - List.length t.idle_q)

let created t = Mutex.protect t.mutex (fun () -> t.created)
