module Executor = Lamp_runtime.Executor

type config = {
  max_attempts : int;
  seed : int;
  base_delay_s : float;
  max_delay_s : float;
  budget_s : float option;
  retry_rejected : bool;
}

let default_config =
  {
    max_attempts = 5;
    seed = 1;
    base_delay_s = 0.001;
    max_delay_s = 0.25;
    budget_s = Some 10.0;
    retry_rejected = false;
  }

type t = {
  config : config;
  connect : unit -> Client.t;
  client_name : string;
  hello_version : int option;
  mutex : Mutex.t;
  (* The live session, re-established lazily after a fatal failure. *)
  mutable conn : Client.t option;
  (* Idempotency keys: one monotone counter per wrapper, seeded with a
     per-wrapper nonce in the high bits, so each logical operation gets
     a fresh key and every retry of that operation re-sends the same
     one — and a restarted process sharing a client name lands in a
     different key range instead of replaying the old process's dedup
     entries. *)
  mutable next_key : int;
  (* Negotiated protocol version of the current (or most recent)
     session, once a hello has succeeded. *)
  mutable session_version : int option;
  retries : int Atomic.t;
}

let create ?(config = default_config) ?(client = "resilient")
    ?hello_version ?key_nonce connect =
  if config.max_attempts < 1 then
    invalid_arg "Resilient.create: max_attempts must be >= 1";
  if config.base_delay_s < 0.0 || config.max_delay_s < 0.0 then
    invalid_arg "Resilient.create: negative delay";
  let nonce =
    (match key_nonce with
    | Some n -> n
    | None ->
      (* Time-and-pid entropy, not the seeded streams: the nonce must
         differ across process restarts, which is exactly what seeded
         determinism would forbid. Keys never influence results, only
         which dedup entries two wrappers could collide on — and the
         server's digest check turns any residual collision into a
         typed error, not a wrong answer. *)
      Random.State.bits (Random.State.make_self_init ()))
    land 0x3FFFFFFF
  in
  {
    config;
    connect;
    client_name = client;
    hello_version;
    mutex = Mutex.create ();
    conn = None;
    next_key = nonce lsl 32;
    session_version = None;
    retries = Atomic.make 0;
  }

let retries t = Atomic.get t.retries

(* The server-suggested floor for the next sleep. *)
let hint = function
  | Client.Server_error (Overloaded { retry_after_s }, _) ->
    Some retry_after_s
  | _ -> None

(* The live session, (re)connecting and re-identifying as needed. The
   client name is stable across reconnects, so the server's dedup
   window keeps recognizing this wrapper's keys. *)
let session t =
  match t.conn with
  | Some c when not (Client.closed c) -> c
  | _ ->
    (match t.conn with Some c -> Client.close c | None -> ());
    let c = t.connect () in
    (match
       match t.hello_version with
       | Some version -> Client.hello ~client:t.client_name ~version c
       | None -> Client.hello ~client:t.client_name c
     with
    | (_ : string) -> ()
    | exception e ->
      Client.close c;
      raise e);
    t.session_version <- Some (Client.version c);
    t.conn <- Some c;
    c

let fresh_key t =
  let k = t.next_key in
  t.next_key <- k + 1;
  k

(* Run [f] against the live session under the retry policy. Each
   attempt reconnects if the previous one tore the session down; the
   backoff schedule is seeded, so a given wrapper retries on the same
   deterministic cadence every run.

   A failure is worth another attempt when the transport broke, when
   the server asked us to back off ([Overloaded]), or when it could
   not even decode our frame ([Corrupt_frame] — the op never ran).
   Rejected (quota) errors are retryable only by configuration.
   For a transport failure after the op may have reached the server,
   [exactly_once] demands the session's idempotency key made the
   re-execution safe: on a session negotiated below protocol 3 the
   key was silently dropped, so retrying there could double-apply —
   the failure propagates instead of degrading to at-least-once. *)
let run ?(exactly_once = false) t f =
  Mutex.protect t.mutex (fun () ->
      let delay =
        Executor.exponential_backoff ~base:t.config.base_delay_s
          ~max_delay:t.config.max_delay_s ~seed:t.config.seed ()
      in
      let sent = ref false in
      let retryable = function
        | Client.Connection_lost _ | Client.Timed_out _ ->
          (not exactly_once)
          || (not !sent)
          || (match t.session_version with
             | Some v -> v >= 3
             | None -> false)
        | Client.Server_error ((Overloaded _ | Corrupt_frame), _) -> true
        | Client.Server_error (Rejected, _) -> t.config.retry_rejected
        | _ -> false
      in
      Executor.with_retry ~max_attempts:t.config.max_attempts ~delay
        ?budget:t.config.budget_s ~hint
        ~backoff:(fun _ -> Atomic.incr t.retries)
        ~retryable
        (fun ~attempt:_ ->
          sent := false;
          let c = session t in
          (* Past this point the request may reach the wire: a
             transport failure no longer proves the op did not run. *)
          sent := true;
          f c))

let prepare t ~instance ~query =
  let key = fresh_key t in
  run t (fun c -> Client.prepare ~key c ~instance ~query)

let execute t ~instance ?mode plan =
  let key = fresh_key t in
  run t (fun c -> Client.execute ~key c ~instance ?mode plan)

let ingest t ~instance facts =
  let key = fresh_key t in
  (* The one non-idempotent op: prepare and execute re-run to the same
     observable state, an unkeyed ingest does not. *)
  run ~exactly_once:true t (fun c -> Client.ingest ~key c ~instance facts)

let stats t = run t Client.stats
let health t = run t Client.health
let metrics t = run t Client.metrics
let trace_dump ?limit t = run t (fun c -> Client.trace_dump ?limit c)

let close t =
  Mutex.protect t.mutex (fun () ->
      match t.conn with
      | Some c ->
        t.conn <- None;
        Client.close c
      | None -> ())
