module Trace = Lamp_obs.Trace
module Metrics = Lamp_obs.Metrics
module Export = Lamp_obs.Export
module Instance = Lamp_relational.Instance
module Intern = Lamp_relational.Intern
module Tuple = Lamp_relational.Tuple
module Plan = Lamp_cq.Plan
module Wcoj = Lamp_cq.Wcoj
module Eval = Lamp_cq.Eval
module Parser = Lamp_cq.Parser
module Ast = Lamp_cq.Ast
module Executor = Lamp_runtime.Executor

type config = {
  name : string;
  max_sessions : int;
  max_inflight : int;
  handle_pool : int;
  plan_cache : int;
  batch : int;
  quota : (float * float) option;
  strategy : Eval.strategy;
  max_frame : int;
  read_timeout_s : float option;
  write_timeout_s : float option;
  idle_timeout_s : float option;
  reap_after_s : float option;
  dedup_window : int;
  dedup_max_bytes : int;
  shed_queue_us : float option;
  shed_retry_after_s : float;
}

let default_config =
  {
    name = "lamp";
    max_sessions = 1024;
    max_inflight = 64;
    handle_pool = 4;
    plan_cache = 128;
    batch = 512;
    quota = None;
    strategy = Eval.Binary;
    max_frame = Wire.max_frame;
    read_timeout_s = Some 30.0;
    write_timeout_s = Some 30.0;
    idle_timeout_s = None;
    reap_after_s = None;
    dedup_window = 1024;
    dedup_max_bytes = 1 lsl 20;
    shed_queue_us = None;
    shed_retry_after_s = 0.05;
  }

(* An engine handle: the interned-tuple view of an instance plus its
   lazily built column indexes. Building one replays the whole
   instance through the interner, so handles are pooled and reused;
   [built_version] retires them after an ingest. *)
type handle = {
  db : Plan.Db.t;
  built_version : int;
}

type inst = {
  mutable data : Instance.t;
  mutable version : int;
  handles : handle Rpool.t;
}

(* A prepared plan, compiled for whichever backend the server was
   configured with; both fold the same column indexes and produce the
   same head-tuple set. *)
type compiled =
  | Pbinary of Plan.t
  | Pwcoj of Wcoj.t

type plan_entry = {
  pe_id : int;
  pe_instance : string;
  pe_ast : Ast.t;
  pe_plan : compiled;
}

let compiled_atoms = function
  | Pbinary p -> Plan.atom_count p
  | Pwcoj w -> Wcoj.atom_count w

type t = {
  config : config;
  executor : Executor.t;
  (* Serializes all engine work (parse/compile/eval/ingest): the
     process-global interning tables and Db handles are not
     thread-safe. Sessions overlap on socket I/O, not on evaluation. *)
  engine : Mutex.t;
  (* Protects the registries and session bookkeeping below. Leaf locks
     (Rpool, Cache, Quota) may be taken under [engine] but never the
     other way round. *)
  lock : Mutex.t;
  session_exit : Condition.t;
  instances : (string, inst) Hashtbl.t;
  plans : (int, plan_entry) Hashtbl.t;
  mutable next_plan : int;
  plan_cache : plan_entry Cache.t;
  quotas : (string, Quota.t) Hashtbl.t;
  mutable listeners : Unix.file_descr list;
  mutable acceptors : Thread.t list;
  (* Each session's last-activity timestamp, for the reaper. *)
  session_fds : (Unix.file_descr, float ref) Hashtbl.t;
  mutable session_count : int;
  mutable stopped : bool;
  active : int Atomic.t;
  served : int Atomic.t;
  rejected : int Atomic.t;
  throttled : int Atomic.t;
  started : float;
  dedup : Dedup.t option;
  deduped_n : int Atomic.t;
  shed_n : int Atomic.t;
  reaped_n : int Atomic.t;
  shedding : bool Atomic.t;
  shed_probe : int Atomic.t;
  qwait_ewma_us : float Atomic.t;
  mutable reaper : Thread.t option;
}

let requests_c = Trace.counter "serve.requests"
let rejected_c = Trace.counter "serve.rejected"
let throttled_c = Trace.counter "serve.throttled"
let deduped_c = Trace.counter "serve.deduped"
let shed_c = Trace.counter "serve.shed"
let reaped_c = Trace.counter "serve.reaped"
let queue_wait_h = Trace.histogram "serve.queue_wait_us"
let request_h = Trace.histogram "serve.request_us"

let () =
  Metrics.describe ~kind:Metrics.Counter
    ~help:"Requests received, including rejected and throttled ones"
    "serve.requests";
  Metrics.describe ~kind:Metrics.Counter
    ~help:"Requests refused by admission control" "serve.rejected";
  Metrics.describe ~kind:Metrics.Counter
    ~help:"Requests refused by a client's token bucket" "serve.throttled";
  Metrics.describe ~kind:Metrics.Counter
    ~help:"Keyed requests answered from the dedup window instead of \
           re-executed"
    "serve.deduped";
  Metrics.describe ~kind:Metrics.Counter
    ~help:"Requests rejected with Overloaded while load shedding"
    "serve.shed";
  Metrics.describe ~kind:Metrics.Counter
    ~help:"Sessions torn down by a deadline, idle timeout or the reaper"
    "serve.reaped";
  Metrics.describe ~kind:Metrics.Histogram
    ~help:"Wait for the engine lock, microseconds" "serve.queue_wait_us";
  Metrics.describe ~kind:Metrics.Histogram
    ~help:"Request handling end to end, microseconds" "serve.request_us"

(* Live gauges for the scrape endpoint. Callback-backed: evaluated at
   snapshot time, so they are always current and cost nothing between
   scrapes. Registered per [create]; with several servers in one
   process the most recent registration wins, which is the serving
   process shape (one server) anyway. *)
let register_gauges t =
  Metrics.register_callback "serve.sessions" (fun () ->
      float_of_int (Mutex.protect t.lock (fun () -> t.session_count)));
  Metrics.register_callback "serve.active_requests" (fun () ->
      float_of_int (Atomic.get t.active));
  Metrics.register_callback "serve.executor_in_flight" (fun () ->
      float_of_int (Executor.in_flight t.executor));
  Metrics.register_callback "serve.plan_cache_size" (fun () ->
      float_of_int (Cache.length t.plan_cache));
  Metrics.register_callback "serve.pool_in_use" (fun () ->
      float_of_int
        (Mutex.protect t.lock (fun () ->
             Hashtbl.fold
               (fun _ i acc -> acc + Rpool.in_use i.handles)
               t.instances 0)));
  Metrics.register_callback "serve.uptime_s" (fun () ->
      Unix.gettimeofday () -. t.started);
  Metrics.register_callback "serve.shedding" (fun () ->
      if Atomic.get t.shedding then 1.0 else 0.0);
  Metrics.register_callback "serve.queue_wait_ewma_us" (fun () ->
      Atomic.get t.qwait_ewma_us)

(* The stalled-connection reaper: shuts down any session whose last
   I/O activity is older than [reap_after_s]. The session thread's
   blocked read then fails and the session unwinds through its normal
   cleanup. The limit is a hard staleness cap — it must exceed the
   longest legitimate request (engine time included).

   The shutdown runs while [t.lock] is held: a session removes itself
   from [session_fds] (under the lock) {e before} closing its fd, so a
   descriptor still in the table cannot be concurrently closed — and
   its number cannot be reused by a fresh connection between the
   staleness check and the shutdown. Shutting down after releasing the
   lock would race exactly that reuse and could sever a healthy new
   session. *)
let reaper_loop t limit =
  let rec loop () =
    if not (Mutex.protect t.lock (fun () -> t.stopped)) then begin
      Thread.delay 0.25;
      let now = Unix.gettimeofday () in
      Mutex.protect t.lock (fun () ->
          Hashtbl.iter
            (fun fd last ->
              if now -. !last > limit then begin
                Atomic.incr t.reaped_n;
                Trace.incr reaped_c;
                try Unix.shutdown fd SHUTDOWN_ALL
                with Unix.Unix_error _ -> ()
              end)
            t.session_fds);
      loop ()
    end
  in
  loop ()

let create ?(config = default_config) ~executor () =
  if config.max_sessions < 1 then invalid_arg "Server: max_sessions < 1";
  if config.max_inflight < 0 then invalid_arg "Server: max_inflight < 0";
  if config.batch < 1 then invalid_arg "Server: batch < 1";
  if config.max_frame < 1 then invalid_arg "Server: max_frame < 1";
  if config.dedup_max_bytes < 1 then
    invalid_arg "Server: dedup_max_bytes < 1";
  if config.shed_retry_after_s < 0.0 then
    invalid_arg "Server: shed_retry_after_s < 0";
  let t = {
    config;
    executor;
    engine = Mutex.create ();
    lock = Mutex.create ();
    session_exit = Condition.create ();
    instances = Hashtbl.create 8;
    plans = Hashtbl.create 64;
    next_plan = 1;
    plan_cache = Cache.create ~capacity:config.plan_cache ();
    quotas = Hashtbl.create 16;
    listeners = [];
    acceptors = [];
    session_fds = Hashtbl.create 64;
    session_count = 0;
    stopped = false;
    active = Atomic.make 0;
    served = Atomic.make 0;
    rejected = Atomic.make 0;
    throttled = Atomic.make 0;
    started = Unix.gettimeofday ();
    dedup =
      (if config.dedup_window > 0 then
         Some (Dedup.create ~capacity:config.dedup_window)
       else None);
    deduped_n = Atomic.make 0;
    shed_n = Atomic.make 0;
    reaped_n = Atomic.make 0;
    shedding = Atomic.make false;
    shed_probe = Atomic.make 0;
    qwait_ewma_us = Atomic.make 0.0;
    reaper = None;
  } in
  register_gauges t;
  (match config.reap_after_s with
  | Some limit when limit > 0.0 ->
    t.reaper <- Some (Thread.create (fun () -> reaper_loop t limit) ())
  | _ -> ());
  t

let add_instance t ~name data =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.instances name with
      | Some inst ->
        inst.data <- data;
        inst.version <- inst.version + 1
      | None ->
        (* The pool's callbacks need the instance record they live in;
           tie the knot through a cell. *)
        let cell = ref None in
        let get () = Option.get !cell in
        let handles =
          Rpool.create ~max_size:t.config.handle_pool
            ~validate:(fun h -> h.built_version = (get ()).version)
            (fun () ->
              let i = get () in
              { db = Plan.Db.of_instance i.data; built_version = i.version })
        in
        let inst = { data; version = 0; handles } in
        cell := Some inst;
        Hashtbl.replace t.instances name inst)

let instance t name =
  Mutex.protect t.lock (fun () ->
      Option.map (fun i -> i.data) (Hashtbl.find_opt t.instances name))

let find_instance t name =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.instances name)

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)

exception Reply of Wire.error_code * string

let bad fmt = Format.kasprintf (fun s -> raise (Reply (Bad_request, s))) fmt

let usecs s = int_of_float (s *. 1e6)

(* Queue-wait EWMA drives load shedding: entered past the watermark,
   exited (with hysteresis) below half of it. Updates race benignly —
   a lost update skews the estimate by one sample. *)
let note_queue_wait t w_us =
  let w = float_of_int w_us in
  let e = Atomic.get t.qwait_ewma_us in
  let e' = if e <= 0.0 then w else (0.8 *. e) +. (0.2 *. w) in
  Atomic.set t.qwait_ewma_us e';
  match t.config.shed_queue_us with
  | Some mark ->
    if e' > mark then Atomic.set t.shedding true
    else if e' < mark *. 0.5 then Atomic.set t.shedding false
  | None -> ()

let with_engine t f =
  let t0 = Unix.gettimeofday () in
  Mutex.lock t.engine;
  let w_us = usecs (Unix.gettimeofday () -. t0) in
  Trace.observe queue_wait_h w_us;
  note_queue_wait t w_us;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.engine) f

(* Graceful degradation: past the watermark, low-priority work (the
   engine ops) is refused with a typed retry hint while control-plane
   ops (health, stats, scrapes) keep answering. One probe in eight is
   admitted so the wait estimate can decay and shedding can exit once
   the queue drains. *)
let shed_check t =
  if t.config.shed_queue_us <> None && Atomic.get t.shedding then begin
    let n = Atomic.fetch_and_add t.shed_probe 1 in
    if n mod 8 <> 0 then begin
      Atomic.incr t.shed_n;
      Trace.incr shed_c;
      raise
        (Reply
           ( Overloaded { retry_after_s = t.config.shed_retry_after_s },
             "server overloaded; retry after backoff" ))
    end
  end

let get_inst t name =
  match find_instance t name with
  | Some i -> i
  | None -> bad "unknown instance %S" name

(* Canonical fingerprint: the pretty-printed parse, not the raw text,
   so formatting variants of one query share a cache entry. *)
let fingerprint ~instance ast = instance ^ "\000" ^ Fmt.str "%a" Ast.pp ast

let parse_query q =
  try Parser.query q with Parser.Parse_error m -> bad "parse error: %s" m

(* Compile under the engine lock, against a pooled handle's counts
   (join-order estimates only — the result set is order-independent). *)
let prepare_plan t inst ~instance ast =
  let key = fingerprint ~instance ast in
  Cache.find_or_add t.plan_cache key (fun () ->
      let plan =
        Rpool.use inst.handles (fun h ->
            match t.config.strategy with
            | Eval.Binary -> Pbinary (Plan.make ~counts:(Plan.Db.count h.db) ast)
            | Eval.Wcoj -> Pwcoj (Wcoj.make ~counts:(Plan.Db.count h.db) ast))
      in
      let id =
        Mutex.protect t.lock (fun () ->
            let id = t.next_plan in
            t.next_plan <- id + 1;
            id)
      in
      let entry = { pe_id = id; pe_instance = instance; pe_ast = ast; pe_plan = plan } in
      Mutex.protect t.lock (fun () -> Hashtbl.replace t.plans id entry);
      entry)

let resolve_plan t inst ~instance = function
  | Wire.Id id -> (
    match Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.plans id) with
    | None -> bad "unknown plan id %d" id
    | Some e when e.pe_instance <> instance ->
      bad "plan %d belongs to instance %S" id e.pe_instance
    | Some e -> e)
  | Wire.Adhoc q ->
    (* Ad-hoc executions go through the same cache: after warmup even
       clients that never Prepare hit compiled plans. *)
    fst (prepare_plan t inst ~instance (parse_query q))

(* Mirrors Cq.Eval.eval_idx: fold the compiled plan, then build the
   result instance from the head-tuple set — byte-for-byte the library
   result, whichever backend the plan was compiled for. *)
let eval_local entry (h : handle) =
  let rel, tuples =
    match entry.pe_plan with
    | Pbinary plan ->
      ( Plan.head_rel plan,
        Plan.fold plan h.db
          (fun regs acc -> Plan.head_tuple plan regs :: acc)
          [] )
    | Pwcoj plan ->
      ( Wcoj.head_rel plan,
        Wcoj.fold plan h.db
          (fun regs acc -> Wcoj.head_tuple plan regs :: acc)
          [] )
  in
  match tuples with
  | [] -> Instance.empty
  | _ ->
    Instance.of_tuple_set rel
      (Tuple.Set.of_list (List.rev_map Intern.untuple tuples))

let execute t ~instance plan_ref mode =
  let inst = get_inst t instance in
  with_engine t (fun () ->
      match mode with
      | Wire.Local ->
        let entry = resolve_plan t inst ~instance plan_ref in
        let result = Rpool.use inst.handles (eval_local entry) in
        (result, None)
      | Wire.Hypercube { p } ->
        if p < 1 then bad "hypercube: p must be >= 1";
        let entry = resolve_plan t inst ~instance plan_ref in
        let result, stats, _shares =
          Lamp_mpc.Hypercube.run ~executor:t.executor ~p entry.pe_ast
            inst.data
        in
        (result, Some stats)
      | Wire.Repartition { p } ->
        if p < 1 then bad "repartition: p must be >= 1";
        let result, stats =
          Lamp_mpc.Repartition_join.run ~executor:t.executor ~p inst.data
        in
        (result, Some stats)
      | Wire.Grid { p } ->
        if p < 1 then bad "grid: p must be >= 1";
        let result, stats =
          Lamp_mpc.Grid_join.run ~executor:t.executor ~p inst.data
        in
        (result, Some stats))

let ingest t ~instance facts =
  let inst = get_inst t instance in
  with_engine t (fun () ->
      let before = Instance.cardinal inst.data in
      inst.data <- Instance.union inst.data (Instance.of_facts facts);
      inst.version <- inst.version + 1;
      (* Handles built on the old contents fail validation at their
         next checkout; plans compiled with stale counts are dropped so
         re-preparation sees fresh cardinalities. *)
      let prefix = instance ^ "\000" in
      ignore
        (Cache.remove_if t.plan_cache (fun k ->
             String.length k >= String.length prefix
             && String.sub k 0 (String.length prefix) = prefix));
      Instance.cardinal inst.data - before)

let stats t =
  let handle_pools =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold
          (fun name i acc ->
            (name, Rpool.in_use i.handles, Rpool.idle i.handles) :: acc)
          t.instances [])
    |> List.sort compare
  in
  {
    Wire.sessions = Mutex.protect t.lock (fun () -> t.session_count);
    active_requests = Atomic.get t.active;
    executor_in_flight = Executor.in_flight t.executor;
    pool_workers = Executor.workers t.executor;
    plan_cache_size = Cache.length t.plan_cache;
    plan_cache_hits = Cache.hits t.plan_cache;
    plan_cache_misses = Cache.misses t.plan_cache;
    handle_pools;
    requests_served = Atomic.get t.served;
    rejected = Atomic.get t.rejected;
    throttled = Atomic.get t.throttled;
    uptime_s = Unix.gettimeofday () -. t.started;
    deduped = Atomic.get t.deduped_n;
    shed = Atomic.get t.shed_n;
    reaped = Atomic.get t.reaped_n;
  }

let quota_allows t client =
  match t.config.quota with
  | None -> true
  | Some (rate, burst) ->
    let bucket =
      Mutex.protect t.lock (fun () ->
          match Hashtbl.find_opt t.quotas client with
          | Some b -> b
          | None ->
            let b = Quota.create ~rate ~burst () in
            Hashtbl.replace t.quotas client b;
            b)
    in
    Quota.try_take bucket

(* Admission: claim a slot with one fetch-and-add; over-claims are
   rolled back and fast-rejected, so a full server answers cheaply
   instead of queueing unboundedly. *)
let with_admission t f =
  let n = Atomic.fetch_and_add t.active 1 in
  if n >= t.config.max_inflight then begin
    Atomic.decr t.active;
    Atomic.incr t.rejected;
    Trace.incr rejected_c;
    raise (Reply (Rejected, "server at max in-flight requests"))
  end;
  Fun.protect ~finally:(fun () -> Atomic.decr t.active) f

let stream_result t reply result stats =
  let total = Instance.cardinal result in
  let flush batch = if batch <> [] then reply (Wire.Batch (List.rev batch)) in
  let pending, count =
    Instance.fold
      (fun fact (batch, n) ->
        if n = t.config.batch then begin
          flush batch;
          ([ fact ], 1)
        end
        else (fact :: batch, n + 1))
      result ([], 0)
  in
  ignore count;
  flush pending;
  reply (Wire.Done { facts = total; stats })

let span_info_of_event : Trace.event -> Wire.span_info option = function
  | Trace.Span { name; cat; tid; t; dur; args = _ } ->
    Some { Wire.sp_name = name; sp_cat = cat; sp_tid = tid; sp_t = t; sp_dur = dur }
  | Trace.Instant _ | Trace.Sample _ -> None

(* [version] is the session's negotiated protocol version; every
   response on the session is encoded with it, so a v1 client gets
   v1-layout replies. Responses carry the write deadline: a peer that
   stops draining its socket times the session out instead of pinning
   it forever. Inside a [Keyed] execution every reply is also recorded
   for the dedup window. *)
let handle_request t fd version client req =
  Trace.incr requests_c;
  let t0 = Unix.gettimeofday () in
  let recording = ref None in
  let oversized = ref false in
  let reply resp =
    (match !recording with
    | Some (acc, bytes) ->
      (* A dedup record pins its responses in server memory for up to
         [dedup_window] completions, so its size must be bounded by
         policy, not by [max_frame]. Past the cap the recording is
         dropped and the keyed wrapper aborts instead of committing:
         a retry of a huge result re-executes rather than replaying. *)
      bytes :=
        !bytes + String.length (Wire.response_to_string ~version:!version resp);
      if !bytes > t.config.dedup_max_bytes then begin
        recording := None;
        oversized := true
      end
      else acc := resp :: !acc
    | None -> ());
    let deadline =
      Option.map
        (fun s -> Unix.gettimeofday () +. s)
        t.config.write_timeout_s
    in
    Wire.write_response ~version:!version ?deadline fd resp
  in
  (try
     let rec go (req : Wire.request) =
       match req with
       | Hello { client = name; version = v } ->
         if v < Wire.min_protocol_version then
           reply
             (Error
                {
                  code = Bad_request;
                  message =
                    Printf.sprintf
                      "protocol version %d, server speaks %d..%d" v
                      Wire.min_protocol_version Wire.protocol_version;
                })
         else begin
           client := name;
           (* Speak the older of the two dialects for the rest of the
              session; the client learns the choice from the reply. *)
           version := min v Wire.protocol_version;
           reply
             (Hello_ok { server = t.config.name; version = !version })
         end
       | Health -> reply Healthy
       | Stats -> reply (Stats_reply (stats t))
       | Metrics -> reply (Metrics_reply (Export.openmetrics ()))
       | Trace_dump { limit } ->
         let limit = max 0 (min limit 10_000) in
         let spans =
           List.filter_map span_info_of_event (Trace.recent ~limit ())
         in
         reply (Trace_reply spans)
       | Traced { trace; span; req = inner } -> (
         match inner with
         | Traced _ -> bad "nested Traced request"
         | _ ->
           (* The server-side span for the work, linked to the caller's
              trace so a client span and its server span correlate in
              one timeline. *)
           Trace.span ~cat:"serve"
             ~args:
               [
                 ("trace", Trace.Int trace);
                 ("span", Trace.Int span);
                 ("client", Trace.Str !client);
               ]
             "serve.request"
             (fun () -> go inner))
       | Keyed { key; req = inner } -> (
         match inner with
         | Keyed _ | Traced _ | Hello _ -> bad "malformed Keyed request"
         | _ -> (
           match t.dedup with
           | None -> go inner
           | Some dedup -> (
             (* The digest ties the window entry to this request's
                bytes: a colliding (client, key) — client names are
                self-reported and keys client-allocated — can never be
                answered with another operation's recording. *)
             let digest = Wire.checksum (Wire.request_to_string inner) in
             match Dedup.acquire dedup ~client:!client ~key ~digest with
             | `Replay rs ->
               (* The op already ran to completion (possibly on a
                  session whose connection the client lost): answer
                  with the recorded responses, execute nothing. *)
               Atomic.incr t.deduped_n;
               Trace.incr deduped_c;
               List.iter reply rs
             | `Mismatch ->
               bad "idempotency key %d re-used for a different request"
                 key
             | `Run token -> (
               let acc = ref [] in
               oversized := false;
               recording := Some (acc, ref 0);
               match go inner with
               | () ->
                 recording := None;
                 if !oversized then Dedup.abort dedup token
                 else Dedup.commit dedup token (List.rev !acc)
               | exception e ->
                 (* Only successful completions are recorded: the
                    retry of a shed or failed attempt re-executes. *)
                 recording := None;
                 Dedup.abort dedup token;
                 raise e))))
       | Prepare { instance; query } ->
         shed_check t;
         if not (quota_allows t !client) then begin
           Atomic.incr t.throttled;
           Trace.incr throttled_c;
           raise (Reply (Throttled, "client quota exhausted"))
         end;
         with_admission t (fun () ->
             let ast = parse_query query in
             let inst = get_inst t instance in
             let entry, cached =
               with_engine t (fun () -> prepare_plan t inst ~instance ast)
             in
             Atomic.incr t.served;
             reply
               (Prepared
                  {
                    id = entry.pe_id;
                    cached;
                    atoms = compiled_atoms entry.pe_plan;
                  }))
       | Execute { instance; plan; mode } ->
         shed_check t;
         if not (quota_allows t !client) then begin
           Atomic.incr t.throttled;
           Trace.incr throttled_c;
           raise (Reply (Throttled, "client quota exhausted"))
         end;
         with_admission t (fun () ->
             let result, mpc_stats = execute t ~instance plan mode in
             Atomic.incr t.served;
             (* Stream outside the engine lock: the result instance is
                immutable, so slow clients only hold their own socket. *)
             stream_result t reply result mpc_stats)
       | Ingest { instance; facts } ->
         shed_check t;
         if not (quota_allows t !client) then begin
           Atomic.incr t.throttled;
           Trace.incr throttled_c;
           raise (Reply (Throttled, "client quota exhausted"))
         end;
         with_admission t (fun () ->
             let added = ingest t ~instance facts in
             Atomic.incr t.served;
             reply (Ingested { added }))
     in
     go req
   with
  | Reply (code, message) -> reply (Error { code; message })
  | Rpool.Draining ->
    reply (Error { code = Rejected; message = "server shutting down" })
  | Wire.Closed as e -> raise e
  | Wire.Timed_out as e -> raise e
  | e -> reply (Error { code = Failed; message = Printexc.to_string e }));
  Trace.observe request_h (usecs (Unix.gettimeofday () -. t0))

(* ------------------------------------------------------------------ *)
(* Sessions and listeners                                              *)

let session_enter t fd =
  let last = ref (Unix.gettimeofday ()) in
  let admitted =
    Mutex.protect t.lock (fun () ->
        if t.stopped then false
        else begin
          t.session_count <- t.session_count + 1;
          Hashtbl.replace t.session_fds fd last;
          t.session_count <= t.config.max_sessions
        end)
  in
  (admitted, last)

let session_leave t fd =
  Mutex.protect t.lock (fun () ->
      t.session_count <- t.session_count - 1;
      Hashtbl.remove t.session_fds fd;
      Condition.broadcast t.session_exit)

let note_reaped t =
  Atomic.incr t.reaped_n;
  Trace.incr reaped_c

let session t fd =
  let admitted, last = session_enter t fd in
  Fun.protect
    ~finally:(fun () ->
      session_leave t fd;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      if not admitted then
        try
          Wire.write_response fd
            (Error { code = Rejected; message = "server at max sessions" })
        with _ -> ()
      else begin
        let client = ref "anon" in
        let version = ref Wire.protocol_version in
        let rdeadline () =
          Option.map
            (fun s -> Unix.gettimeofday () +. s)
            t.config.read_timeout_s
        in
        let hangup_with code message =
          try
            Wire.write_response ~version:!version fd (Error { code; message })
          with _ -> ()
        in
        let rec loop () =
          (* Two timers guard the read: the idle timeout bounds the
             wait for a request to {e start} (cheap select, no
             deadline mid-frame), the read deadline bounds how long a
             started frame may take to arrive (defeats slow-loris
             trickle). *)
          match Wire.wait_readable ?timeout_s:t.config.idle_timeout_s fd with
          | false -> note_reaped t
          | true -> (
            last := Unix.gettimeofday ();
            match
              Wire.read_request ~max_len:t.config.max_frame
                ?deadline:(rdeadline ()) fd
            with
            | req ->
              handle_request t fd version client req;
              last := Unix.gettimeofday ();
              loop ()
            | exception Wire.Closed -> ()
            | exception Wire.Timed_out ->
              (* The frame never finished arriving: a stalled or
                 trickling peer. The stream is torn; hang up. *)
              note_reaped t
            | exception Wire.Too_large { len; limit } ->
              hangup_with Corrupt_frame
                (Printf.sprintf "frame length %d exceeds limit %d" len limit)
            | exception Lamp_jobs.Codec.Corrupt msg ->
              (* A corrupt frame leaves the stream unframed; answer once
                 and hang up rather than guess at a resync point. *)
              hangup_with Corrupt_frame ("corrupt frame: " ^ msg)
            | exception Unix.Unix_error _ -> ())
        in
        (* [handle_request] itself only lets [Closed] (peer hung up
           mid-response), a write deadline and socket errors escape. *)
        try loop () with
        | Wire.Closed | Unix.Unix_error _ -> ()
        | Wire.Timed_out -> note_reaped t
      end)

(* Poll with a timeout rather than block in accept: on Linux a thread
   blocked in accept(2) is NOT woken when another thread closes the
   listening fd, so a blocking acceptor would hang [stop]. The listener
   is created before any session, so its fd number is far below
   select's FD_SETSIZE; session sockets never go through select. *)
let acceptor t listen_fd =
  let rec loop () =
    if not (Mutex.protect t.lock (fun () -> t.stopped)) then begin
      match Unix.select [ listen_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ ->
        (match Unix.accept ~cloexec:true listen_fd with
        | fd, _ -> ignore (Thread.create (fun () -> session t fd) ())
        | exception
            Unix.Unix_error
              ((EAGAIN | EWOULDBLOCK | ECONNABORTED | EINTR), _, _) ->
          ()
        | exception Unix.Unix_error ((EBADF | EINVAL), _, _) ->
          (* Listener closed by [stop]; the guard above exits. *)
          ()
        | exception Unix.Unix_error _ ->
          (* e.g. EMFILE under fd pressure: back off, retry. *)
          Thread.delay 0.01);
        loop ()
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
      | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> loop ()
    end
  in
  loop ()

let start_listener t fd =
  Mutex.protect t.lock (fun () ->
      if t.stopped then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        invalid_arg "Server: stopped"
      end;
      t.listeners <- fd :: t.listeners;
      t.acceptors <- Thread.create (fun () -> acceptor t fd) () :: t.acceptors)

let listen_unix t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (try
     Unix.bind fd (ADDR_UNIX path);
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  start_listener t fd

let listen_tcp ?(host = "127.0.0.1") t ~port =
  let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd SO_REUSEADDR true;
     Unix.bind fd (ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let bound =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | ADDR_UNIX _ -> assert false
  in
  start_listener t fd;
  bound

let stop t =
  let listeners =
    Mutex.protect t.lock (fun () ->
        if t.stopped then []
        else begin
          t.stopped <- true;
          let ls = t.listeners in
          t.listeners <- [];
          (* Shut sessions down at the socket: their blocking reads
             return EOF and the session threads unwind; each closes its
             own fd. Done under the lock for the same reason as the
             reaper: an fd still in the table cannot be closed (and its
             number reused) concurrently. *)
          Hashtbl.iter
            (fun fd _ ->
              try Unix.shutdown fd SHUTDOWN_ALL with Unix.Unix_error _ -> ())
            t.session_fds;
          ls
        end)
  in
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  Mutex.protect t.lock (fun () ->
      while t.session_count > 0 do
        Condition.wait t.session_exit t.lock
      done);
  let acceptors = t.acceptors in
  t.acceptors <- [];
  List.iter Thread.join acceptors;
  (match t.reaper with
  | Some th ->
    t.reaper <- None;
    Thread.join th
  | None -> ());
  let pools =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold (fun _ i acc -> i.handles :: acc) t.instances [])
  in
  List.iter Rpool.drain pools
