module Codec = Lamp_jobs.Codec
module Stats = Lamp_mpc.Stats

(* Version 3 (this revision) adds the [Keyed] idempotency envelope,
   the [Overloaded]/[Corrupt_frame] error codes and the dedup/shed/reap
   counters in [server_stats]; version 2 added wire-level trace
   propagation (the [Traced] request envelope), the live-telemetry ops
   ([Metrics], [Trace_dump]) and an uptime field in [server_stats].
   Old clients keep working: the server negotiates [min client server]
   at hello time and encodes that session's responses in the negotiated
   layout ([?version] on the response codecs), downgrading the v3 error
   codes to their closest older equivalent. *)
let protocol_version = 3
let min_protocol_version = 1
let max_frame = 256 * 1024 * 1024

type mode =
  | Local
  | Hypercube of { p : int }
  | Repartition of { p : int }
  | Grid of { p : int }

type plan_ref =
  | Id of int
  | Adhoc of string

type request =
  | Hello of { client : string; version : int }
  | Prepare of { instance : string; query : string }
  | Execute of { instance : string; plan : plan_ref; mode : mode }
  | Ingest of { instance : string; facts : Lamp_relational.Fact.t list }
  | Stats
  | Health
  | Metrics
  | Trace_dump of { limit : int }
  | Traced of { trace : int; span : int; req : request }
  | Keyed of { key : int; req : request }

type error_code =
  | Bad_request
  | Rejected
  | Throttled
  | Failed
  | Overloaded of { retry_after_s : float }
  | Corrupt_frame

type server_stats = {
  sessions : int;
  active_requests : int;
  executor_in_flight : int;
  pool_workers : int;
  plan_cache_size : int;
  plan_cache_hits : int;
  plan_cache_misses : int;
  handle_pools : (string * int * int) list;
  requests_served : int;
  rejected : int;
  throttled : int;
  uptime_s : float;
  deduped : int;
  shed : int;
  reaped : int;
}

type span_info = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_t : float;
  sp_dur : float;
}

type response =
  | Hello_ok of { server : string; version : int }
  | Prepared of { id : int; cached : bool; atoms : int }
  | Batch of Lamp_relational.Fact.t list
  | Done of { facts : int; stats : Lamp_mpc.Stats.t option }
  | Ingested of { added : int }
  | Stats_reply of server_stats
  | Healthy
  | Error of { code : error_code; message : string }
  | Metrics_reply of string
  | Trace_reply of span_info list

(* Codecs. Every variant gets a one-character tag; unknown tags raise
   Corrupt with the offending byte, like the checkpoint codecs. *)

let w_mode b = function
  | Local -> Codec.w_char b 'l'
  | Hypercube { p } ->
    Codec.w_char b 'h';
    Codec.w_int b p
  | Repartition { p } ->
    Codec.w_char b 'r';
    Codec.w_int b p
  | Grid { p } ->
    Codec.w_char b 'g';
    Codec.w_int b p

let r_mode r =
  match Codec.r_char r with
  | 'l' -> Local
  | 'h' -> Hypercube { p = Codec.r_int r }
  | 'r' -> Repartition { p = Codec.r_int r }
  | 'g' -> Grid { p = Codec.r_int r }
  | c -> raise (Codec.Corrupt (Printf.sprintf "bad mode tag %C" c))

let w_plan_ref b = function
  | Id id ->
    Codec.w_char b 'i';
    Codec.w_int b id
  | Adhoc q ->
    Codec.w_char b 'a';
    Codec.w_string b q

let r_plan_ref r =
  match Codec.r_char r with
  | 'i' -> Id (Codec.r_int r)
  | 'a' -> Adhoc (Codec.r_string r)
  | c -> raise (Codec.Corrupt (Printf.sprintf "bad plan-ref tag %C" c))

let rec w_request b = function
  | Hello { client; version } ->
    Codec.w_char b 'h';
    Codec.w_string b client;
    Codec.w_int b version
  | Prepare { instance; query } ->
    Codec.w_char b 'p';
    Codec.w_string b instance;
    Codec.w_string b query
  | Execute { instance; plan; mode } ->
    Codec.w_char b 'x';
    Codec.w_string b instance;
    w_plan_ref b plan;
    w_mode b mode
  | Ingest { instance; facts } ->
    Codec.w_char b 'g';
    Codec.w_string b instance;
    Codec.w_list b Codec.w_fact facts
  | Stats -> Codec.w_char b 's'
  | Health -> Codec.w_char b '?'
  | Metrics -> Codec.w_char b 'm'
  | Trace_dump { limit } ->
    Codec.w_char b 't';
    Codec.w_int b limit
  | Traced { trace; span; req } ->
    Codec.w_char b 'T';
    Codec.w_int b trace;
    Codec.w_int b span;
    w_request b req
  | Keyed { key; req } ->
    Codec.w_char b 'K';
    Codec.w_int b key;
    w_request b req

let rec r_request r =
  match Codec.r_char r with
  | 'h' ->
    let client = Codec.r_string r in
    Hello { client; version = Codec.r_int r }
  | 'p' ->
    let instance = Codec.r_string r in
    Prepare { instance; query = Codec.r_string r }
  | 'x' ->
    let instance = Codec.r_string r in
    let plan = r_plan_ref r in
    Execute { instance; plan; mode = r_mode r }
  | 'g' ->
    let instance = Codec.r_string r in
    Ingest { instance; facts = Codec.r_list r Codec.r_fact }
  | 's' -> Stats
  | '?' -> Health
  | 'm' -> Metrics
  | 't' -> Trace_dump { limit = Codec.r_int r }
  | 'T' ->
    let trace = Codec.r_int r in
    let span = Codec.r_int r in
    (* One trace envelope per request: a nested [Traced] is malformed,
       not merely unusual — reject it like any other bad frame. The
       canonical nesting order is Traced{Keyed{op}}. *)
    (match r_request r with
    | Traced _ -> raise (Codec.Corrupt "nested Traced request")
    | req -> Traced { trace; span; req })
  | 'K' ->
    let key = Codec.r_int r in
    (* An idempotency key marks one re-executable engine op. Envelopes
       and session-level requests inside it are malformed. *)
    (match r_request r with
    | Keyed _ -> raise (Codec.Corrupt "nested Keyed request")
    | Traced _ -> raise (Codec.Corrupt "Traced inside Keyed request")
    | Hello _ -> raise (Codec.Corrupt "Hello inside Keyed request")
    | req -> Keyed { key; req })
  | c -> raise (Codec.Corrupt (Printf.sprintf "bad request tag %C" c))

(* The v3 error codes downgrade on old sessions to the closest code the
   client can decode: Overloaded is a transient capacity refusal like
   Throttled, a corrupt frame is a malformed request. *)
let w_error_code ~version b = function
  | Bad_request -> Codec.w_char b 'b'
  | Rejected -> Codec.w_char b 'j'
  | Throttled -> Codec.w_char b 't'
  | Failed -> Codec.w_char b 'f'
  | Overloaded { retry_after_s } ->
    if version >= 3 then begin
      Codec.w_char b 'o';
      Codec.w_float b retry_after_s
    end
    else Codec.w_char b 't'
  | Corrupt_frame -> if version >= 3 then Codec.w_char b 'c' else Codec.w_char b 'b'

let r_error_code r =
  match Codec.r_char r with
  | 'b' -> Bad_request
  | 'j' -> Rejected
  | 't' -> Throttled
  | 'f' -> Failed
  | 'o' -> Overloaded { retry_after_s = Codec.r_float r }
  | 'c' -> Corrupt_frame
  | c -> raise (Codec.Corrupt (Printf.sprintf "bad error tag %C" c))

let w_mpc_stats b (s : Stats.t) =
  Codec.w_int b s.p;
  Codec.w_int b s.initial_max;
  Codec.w_list b Stats.w_round_stats s.rounds;
  Codec.w_list b Stats.w_recovery s.recoveries

let r_mpc_stats r : Stats.t =
  let p = Codec.r_int r in
  let initial_max = Codec.r_int r in
  let rounds = Codec.r_list r Stats.r_round_stats in
  let recoveries = Codec.r_list r Stats.r_recovery in
  { p; initial_max; rounds; recoveries }

let w_pool_row b (name, in_use, idle) =
  Codec.w_string b name;
  Codec.w_int b in_use;
  Codec.w_int b idle

let r_pool_row r =
  let name = Codec.r_string r in
  let in_use = Codec.r_int r in
  (name, in_use, Codec.r_int r)

(* [server_stats] is the one message whose layout changed across
   protocol versions: v1 has no uptime field, v2 none of the
   dedup/shed/reap counters. The codecs take the negotiated session
   version so an old client still decodes what a newer server sends it
   (and the tests can round-trip all layouts). *)
let w_server_stats ~version b s =
  Codec.w_int b s.sessions;
  Codec.w_int b s.active_requests;
  Codec.w_int b s.executor_in_flight;
  Codec.w_int b s.pool_workers;
  Codec.w_int b s.plan_cache_size;
  Codec.w_int b s.plan_cache_hits;
  Codec.w_int b s.plan_cache_misses;
  Codec.w_list b w_pool_row s.handle_pools;
  Codec.w_int b s.requests_served;
  Codec.w_int b s.rejected;
  Codec.w_int b s.throttled;
  if version >= 2 then Codec.w_float b s.uptime_s;
  if version >= 3 then begin
    Codec.w_int b s.deduped;
    Codec.w_int b s.shed;
    Codec.w_int b s.reaped
  end

let r_server_stats ~version r =
  let sessions = Codec.r_int r in
  let active_requests = Codec.r_int r in
  let executor_in_flight = Codec.r_int r in
  let pool_workers = Codec.r_int r in
  let plan_cache_size = Codec.r_int r in
  let plan_cache_hits = Codec.r_int r in
  let plan_cache_misses = Codec.r_int r in
  let handle_pools = Codec.r_list r r_pool_row in
  let requests_served = Codec.r_int r in
  let rejected = Codec.r_int r in
  let throttled = Codec.r_int r in
  let uptime_s = if version >= 2 then Codec.r_float r else 0.0 in
  let deduped = if version >= 3 then Codec.r_int r else 0 in
  let shed = if version >= 3 then Codec.r_int r else 0 in
  let reaped = if version >= 3 then Codec.r_int r else 0 in
  {
    sessions;
    active_requests;
    executor_in_flight;
    pool_workers;
    plan_cache_size;
    plan_cache_hits;
    plan_cache_misses;
    handle_pools;
    requests_served;
    rejected;
    throttled;
    uptime_s;
    deduped;
    shed;
    reaped;
  }

let w_span_info b s =
  Codec.w_string b s.sp_name;
  Codec.w_string b s.sp_cat;
  Codec.w_int b s.sp_tid;
  Codec.w_float b s.sp_t;
  Codec.w_float b s.sp_dur

let r_span_info r =
  let sp_name = Codec.r_string r in
  let sp_cat = Codec.r_string r in
  let sp_tid = Codec.r_int r in
  let sp_t = Codec.r_float r in
  let sp_dur = Codec.r_float r in
  { sp_name; sp_cat; sp_tid; sp_t; sp_dur }

let w_response ~version b = function
  | Hello_ok { server; version = v } ->
    Codec.w_char b 'H';
    Codec.w_string b server;
    Codec.w_int b v
  | Prepared { id; cached; atoms } ->
    Codec.w_char b 'P';
    Codec.w_int b id;
    Codec.w_bool b cached;
    Codec.w_int b atoms
  | Batch facts ->
    Codec.w_char b 'B';
    Codec.w_list b Codec.w_fact facts
  | Done { facts; stats } ->
    Codec.w_char b 'D';
    Codec.w_int b facts;
    Codec.w_option b w_mpc_stats stats
  | Ingested { added } ->
    Codec.w_char b 'G';
    Codec.w_int b added
  | Stats_reply s ->
    Codec.w_char b 'S';
    w_server_stats ~version b s
  | Healthy -> Codec.w_char b 'O'
  | Error { code; message } ->
    Codec.w_char b 'E';
    w_error_code ~version b code;
    Codec.w_string b message
  | Metrics_reply text ->
    Codec.w_char b 'M';
    Codec.w_string b text
  | Trace_reply spans ->
    Codec.w_char b 'T';
    Codec.w_list b w_span_info spans

let r_response ~version r =
  match Codec.r_char r with
  | 'H' ->
    let server = Codec.r_string r in
    Hello_ok { server; version = Codec.r_int r }
  | 'P' ->
    let id = Codec.r_int r in
    let cached = Codec.r_bool r in
    Prepared { id; cached; atoms = Codec.r_int r }
  | 'B' -> Batch (Codec.r_list r Codec.r_fact)
  | 'D' ->
    let facts = Codec.r_int r in
    Done { facts; stats = Codec.r_option r r_mpc_stats }
  | 'G' -> Ingested { added = Codec.r_int r }
  | 'S' -> Stats_reply (r_server_stats ~version r)
  | 'O' -> Healthy
  | 'E' ->
    let code = r_error_code r in
    Error { code; message = Codec.r_string r }
  | 'M' -> Metrics_reply (Codec.r_string r)
  | 'T' -> Trace_reply (Codec.r_list r r_span_info)
  | c -> raise (Codec.Corrupt (Printf.sprintf "bad response tag %C" c))

let encode w v =
  let b = Codec.writer () in
  w b v;
  Codec.contents b

let decode rd s =
  let r = Codec.reader s in
  let v = rd r in
  Codec.r_end r;
  v

let request_to_string = encode w_request
let request_of_string = decode r_request

let response_to_string ?(version = protocol_version) resp =
  encode (w_response ~version) resp

let response_of_string ?(version = protocol_version) s =
  decode (r_response ~version) s

(* Framed I/O. The frame header is 16 bytes: the payload length and a
   checksum of the payload, both 8-byte big-endian. The checksum is a
   63-bit FNV-style polynomial fold; multiplication wraps mod 2^63, and
   16777619 is odd, so any single-byte change at any position changes
   the digest — a chaos-proxy byte flip can never smuggle a
   valid-looking but different message past the decoder. A mismatch is
   indistinguishable from desync, so it is connection-fatal
   ([Codec.Corrupt]); the peer hangs up and a resilient client retries
   on a fresh connection. *)

exception Closed
exception Timed_out
exception Too_large of { len : int; limit : int }

let checksum s =
  let h = ref 0x100001b3 in
  for i = 0 to String.length s - 1 do
    h := (!h * 16777619) + Char.code (String.unsafe_get s i)
  done;
  !h land max_int

(* Block until [fd] is ready, or the absolute [deadline] passes. *)
let rec wait_fd fd ~for_read ~deadline =
  let timeout = deadline -. Unix.gettimeofday () in
  if timeout <= 0.0 then raise Timed_out;
  let rs, ws = if for_read then ([ fd ], []) else ([], [ fd ]) in
  match Unix.select rs ws [] timeout with
  | [], [], _ -> raise Timed_out
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    wait_fd fd ~for_read ~deadline

let wait_readable ?timeout_s fd =
  match timeout_s with
  | None ->
    let rec go () =
      match Unix.select [ fd ] [] [] (-1.0) with
      | [], _, _ -> go ()
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  | Some s -> (
    let deadline = Unix.gettimeofday () +. s in
    try
      wait_fd fd ~for_read:true ~deadline;
      true
    with Timed_out -> false)

(* POSIX raises SIGPIPE on a write after the peer has shut its read
   side, and the default disposition terminates the process — the
   EPIPE handler below would never run. Ignored once, on the first
   write, so a vanished peer surfaces as [Closed] instead. *)
let sigpipe_ignored =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let rec write_all ?deadline fd s off len =
  Lazy.force sigpipe_ignored;
  if len > 0 then begin
    (match deadline with
    | Some d -> wait_fd fd ~for_read:false ~deadline:d
    | None -> ());
    match Unix.write_substring fd s off len with
    | n -> write_all ?deadline fd s (off + n) (len - n)
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      raise Closed
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      write_all ?deadline fd s off len
  end

let read_all ?deadline fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off < len then begin
      (match deadline with
      | Some d -> wait_fd fd ~for_read:true ~deadline:d
      | None -> ());
      match Unix.read fd buf off (len - off) with
      | 0 -> raise Closed
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> raise Closed
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0;
  Bytes.unsafe_to_string buf

let read_frame ?max_len ?deadline fd =
  let header = read_all ?deadline fd 16 in
  let r = Codec.reader header in
  let len = Codec.r_int r in
  let sum = Codec.r_int r in
  let limit = match max_len with Some m -> m | None -> max_frame in
  if len < 0 then
    raise (Codec.Corrupt (Printf.sprintf "negative frame length %d" len));
  if len > limit then raise (Too_large { len; limit });
  let payload = read_all ?deadline fd len in
  if checksum payload <> sum then
    raise
      (Codec.Corrupt
         (Printf.sprintf "frame checksum mismatch (%d bytes)" len));
  payload

let write_frame ?deadline fd payload =
  let b = Codec.writer () in
  Codec.w_int b (String.length payload);
  Codec.w_int b (checksum payload);
  let header = Codec.contents b in
  (* One buffer per frame so header and payload reach the socket in a
     single write when it is not full — sessions interleave whole
     frames, never partial ones. *)
  let msg = header ^ payload in
  write_all ?deadline fd msg 0 (String.length msg)

let read_request ?max_len ?deadline fd =
  request_of_string (read_frame ?max_len ?deadline fd)

let write_request ?deadline fd req =
  write_frame ?deadline fd (request_to_string req)

let read_response ?version ?max_len ?deadline fd =
  response_of_string ?version (read_frame ?max_len ?deadline fd)

let write_response ?version ?deadline fd resp =
  write_frame ?deadline fd (response_to_string ?version resp)
