(** LAMP — Logical Aspects of Massively Parallel and distributed
    systems.

    Umbrella module re-exporting every subsystem of the reproduction of
    Neven, PODS 2016. The layering mirrors the paper:

    - {!Obs}: tracing, counters and exporters — the observability layer
      everything else reports into (zero-cost when disabled);
    - {!Faults}: seeded deterministic fault plans — crash-stop, message
      drop/duplication/reordering, stragglers, transient task faults —
      injected into the simulators below (zero-cost when off);
    - {!Jobs}: durable checkpoints and round-indexed job supervision —
      the kill/resume, straggler-speculation and survivor-rebalancing
      layer every multi-round algorithm runs under;
    - {!Runtime}: the multicore execution engine — domain pool,
      work-stealing deques, the executor the simulators run on;
    - {!Relational}: facts, instances, active domains (Section 2);
    - {!Lp}: the simplex solver behind fractional edge packings;
    - {!Cq}: conjunctive queries, minimal valuations, containment,
      hypergraphs (Sections 2 and 4);
    - {!Distribution}: distribution policies and one-round distributed
      evaluation (Section 4.1);
    - {!Correctness}: parallel-correctness and transfer (Section 4);
    - {!Mpc}: the MPC simulator and its algorithms — repartition and
      grid joins, Shares/HyperCube, multi-round plans, Yannakakis/GYM
      (Section 3);
    - {!Serve}: the networked query service — wire protocol, resource
      pooling, prepared-plan cache, admission control — serving the CQ
      and MPC engines to concurrent clients;
    - {!Mapreduce}: the MapReduce formalization and its MPC translation
      (Section 3);
    - {!Datalog}: stratified and well-founded Datalog, connectivity,
      monotonicity classes (Section 5.3);
    - {!Transducer}: relational transducer networks and the CALM
      hierarchy (Sections 5.1–5.2). *)

module Obs = struct
  module Trace = Lamp_obs.Trace
  module Metrics = Lamp_obs.Metrics
  module Sketch = Lamp_obs.Sketch
  module Export = Lamp_obs.Export
end

module Faults = struct
  module Plan = Lamp_faults.Plan
  module Net = Lamp_faults.Net
  module Disk = Lamp_faults.Disk
end

module Jobs = struct
  module Codec = Lamp_jobs.Codec
  module Io = Lamp_jobs.Io
  module Store = Lamp_jobs.Store
  module Supervisor = Lamp_jobs.Supervisor
end

module Runtime = struct
  module Deque = Lamp_runtime.Deque
  module Pool = Lamp_runtime.Pool
  module Executor = Lamp_runtime.Executor
  module Metrics = Lamp_runtime.Metrics
end

module Relational = struct
  module Value = Lamp_relational.Value
  module Intern = Lamp_relational.Intern
  module Tuple = Lamp_relational.Tuple
  module Fact = Lamp_relational.Fact
  module Schema = Lamp_relational.Schema
  module Instance = Lamp_relational.Instance
  module Adom = Lamp_relational.Adom
  module Generate = Lamp_relational.Generate
end

module Lp = struct
  module Simplex = Lamp_lp.Simplex
  module Packing = Lamp_lp.Packing
end

module Cq = struct
  module Ast = Lamp_cq.Ast
  module Parser = Lamp_cq.Parser
  module Valuation = Lamp_cq.Valuation
  module Plan = Lamp_cq.Plan
  module Index = Lamp_cq.Index
  module Eval = Lamp_cq.Eval
  module Generic_join = Lamp_cq.Generic_join
  module Wcoj = Lamp_cq.Wcoj
  module Minimal = Lamp_cq.Minimal
  module Containment = Lamp_cq.Containment
  module Hypergraph = Lamp_cq.Hypergraph
  module Decomposition = Lamp_cq.Decomposition
  module Scale = Lamp_cq.Scale
  module Examples = Lamp_cq.Examples
end

module Distribution = struct
  module Node = Lamp_distribution.Node
  module Grid = Lamp_distribution.Grid
  module Policy = Lamp_distribution.Policy
  module Distributed = Lamp_distribution.Distributed
end

module Correctness = struct
  module Saturation = Lamp_correctness.Saturation
  module Parallel_correctness = Lamp_correctness.Parallel_correctness
  module Transfer = Lamp_correctness.Transfer
  module Negation = Lamp_correctness.Negation
end

module Mpc = struct
  module Stats = Lamp_mpc.Stats
  module Cluster = Lamp_mpc.Cluster
  module Skew = Lamp_mpc.Skew
  module Repartition_join = Lamp_mpc.Repartition_join
  module Grid_join = Lamp_mpc.Grid_join
  module Shares = Lamp_mpc.Shares
  module Hypercube = Lamp_mpc.Hypercube
  module Multi_round = Lamp_mpc.Multi_round
  module Kst = Lamp_mpc.Kst
  module Yannakakis = Lamp_mpc.Yannakakis
  module Gym_ghd = Lamp_mpc.Gym_ghd
  module Workload = Lamp_mpc.Workload
end

module Serve = struct
  module Wire = Lamp_serve.Wire
  module Rpool = Lamp_serve.Rpool
  module Quota = Lamp_serve.Quota
  module Cache = Lamp_serve.Cache
  module Dedup = Lamp_serve.Dedup
  module Server = Lamp_serve.Server
  module Client = Lamp_serve.Client
  module Resilient = Lamp_serve.Resilient
end

module Mapreduce = struct
  module Job = Lamp_mapreduce.Job
  module Jobs = Lamp_mapreduce.Jobs
  module Recursive = Lamp_mapreduce.Recursive
end

module Ra = struct
  module Relation = Lamp_ra.Relation
  module Algebra = Lamp_ra.Algebra
  module To_mapreduce = Lamp_ra.To_mapreduce
end

module Datalog = struct
  module Program = Lamp_datalog.Program
  module Stratify = Lamp_datalog.Stratify
  module Eval = Lamp_datalog.Eval
  module Wellfounded = Lamp_datalog.Wellfounded
  module Connectivity = Lamp_datalog.Connectivity
  module Classify = Lamp_datalog.Classify
  module Invention = Lamp_datalog.Invention
  module Canned = Lamp_datalog.Canned
end

module Transducer = struct
  module Program = Lamp_transducer.Program
  module Network = Lamp_transducer.Network
  module Scheduler = Lamp_transducer.Scheduler
  module Programs = Lamp_transducer.Programs
  module Horizontal = Lamp_transducer.Horizontal
  module Calm = Lamp_transducer.Calm
end
