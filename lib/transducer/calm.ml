open Lamp_relational

type failure = {
  description : string;
  got : Instance.t;
  expected : Instance.t;
}

let pp_failure ppf f =
  Fmt.pf ppf "%s: got %a, expected %a" f.description Instance.pp f.got
    Instance.pp f.expected

let default_schedules =
  [
    Scheduler.Random_fair 1;
    Scheduler.Random_fair 2;
    Scheduler.Random_fair 42;
    Scheduler.Fifo;
    Scheduler.Lifo;
  ]

let schedule_name = function
  | Scheduler.Random_fair s -> Fmt.str "random(%d)" s
  | Scheduler.Fifo -> "fifo"
  | Scheduler.Lifo -> "lifo"
  | Scheduler.Adversary plan ->
    Fmt.str "adversary(%d)" (Lamp_faults.Plan.seed plan)

(* Eventual consistency over a family of runs: every schedule and every
   supplied distribution must end with exactly the expected output. *)
let consistent ?(schedules = default_schedules) ~make ~expected distributions =
  let check_one dist_idx dist schedule =
    let net = make dist in
    let got = Scheduler.drain ~schedule net in
    if Instance.equal got expected then Ok ()
    else
      Error
        {
          description =
            Fmt.str "distribution %d under %s" dist_idx (schedule_name schedule);
          got;
          expected;
        }
  in
  let rec over_dists i = function
    | [] -> Ok ()
    | dist :: rest ->
      let rec over_schedules = function
        | [] -> over_dists (i + 1) rest
        | s :: more -> (
          match check_one i dist s with
          | Ok () -> over_schedules more
          | Error f -> Error f)
      in
      over_schedules schedules
  in
  over_dists 0 distributions

(* Coordination-freeness witness: on the ideal distribution the program
   must compute the query without reading a single message. *)
let coordination_free ~make ~expected ideal =
  let net = make ideal in
  let got = Scheduler.run_silent net in
  if Instance.equal got expected then Ok ()
  else Error { description = "silent run on ideal distribution"; got; expected }
