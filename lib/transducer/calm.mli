(** Harness for the CALM properties of Section 5.2.

    A transducer network computes a query when {e every} run on {e
    every} network and horizontal distribution outputs exactly the query
    answer (eventual consistency); it is coordination-free when some
    ideal distribution lets it do so without reading any messages. These
    checks drive the Figure 2 reproduction. *)

open Lamp_relational

type failure = {
  description : string;
  got : Instance.t;
  expected : Instance.t;
}

val pp_failure : failure Fmt.t

val default_schedules : Scheduler.schedule list

val schedule_name : Scheduler.schedule -> string
(** Short display name ("random(1)", "fifo", "adversary(7)", …). *)

val consistent :
  ?schedules:Scheduler.schedule list ->
  make:(Instance.t array -> Network.t) ->
  expected:Instance.t ->
  Instance.t array list ->
  (unit, failure) result
(** Checks that every (distribution, schedule) combination quiesces with
    exactly the expected output. *)

val coordination_free :
  make:(Instance.t array -> Network.t) ->
  expected:Instance.t ->
  Instance.t array ->
  (unit, failure) result
(** Checks the defining property on a given ideal distribution
    (typically {!Horizontal.full_replication}). *)
