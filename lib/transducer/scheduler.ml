open Lamp_relational
module Plan = Lamp_faults.Plan

type schedule =
  | Random_fair of int  (** Seeded random node and message choice. *)
  | Fifo  (** Round-robin nodes, oldest message first. *)
  | Lifo  (** Round-robin nodes, newest message first. *)
  | Adversary of Plan.t
      (** Seeded delivery adversary: duplicates and reorders buffered
          messages (never drops — eventual delivery is the model's one
          guarantee). *)

let adversary seed =
  Adversary
    (Plan.make ~seed { Plan.zero with duplicate = 0.3; delay = 0.2; reorder = true })

(* One heartbeat to every node; reports whether anything changed
   (memory, output, or new messages). *)
let heartbeat_sweep net =
  let before_out = Network.output net in
  let before_mem =
    Array.to_list
      (Array.init (Network.size net) (fun i -> (Network.node net i).Network.memory))
  in
  let before_msgs = Network.messages_in_flight net in
  for i = 0 to Network.size net - 1 do
    Network.heartbeat net i
  done;
  let changed_mem =
    List.exists2
      (fun before i -> not (Instance.equal before i.Network.memory))
      before_mem
      (Array.to_list
         (Array.init (Network.size net) (fun i -> Network.node net i)))
  in
  (not (Instance.equal before_out (Network.output net)))
  || changed_mem
  || Network.messages_in_flight net <> before_msgs

exception
  Did_not_quiesce of {
    transitions : int;
    in_flight : int;
  }

let () =
  Printexc.register_printer (function
    | Did_not_quiesce { transitions; in_flight } ->
      Some
        (Fmt.str
           "Did_not_quiesce { transitions = %d; in_flight = %d }" transitions
           in_flight)
    | _ -> None)

(* A fair run to quiescence: messages are delivered according to the
   schedule (heartbeats interleaved), and the run ends when no messages
   are in flight and a final heartbeat sweep changes nothing. *)
let drain ?(schedule = Random_fair 0) ?(max_transitions = 200_000) net =
  let rng =
    match schedule with
    | Random_fair seed -> Some (Random.State.make [| seed |])
    | Adversary plan -> Some (Random.State.make [| Plan.seed plan; 0xade |])
    | Fifo | Lifo -> None
  in
  (* The adversary's duplication budget: termination needs the number of
     injected copies bounded — each delivery consumes one message, so
     in-flight counts strictly decrease once the budget is spent. *)
  let dup_budget = ref (match schedule with Adversary _ -> 128 | _ -> 0) in
  let dup_p =
    match schedule with Adversary plan -> (Plan.spec plan).Plan.duplicate | _ -> 0.0
  in
  let transitions = ref 0 in
  let tick () =
    incr transitions;
    if !transitions > max_transitions then
      raise
        (Did_not_quiesce
           {
             transitions = !transitions - 1;
             in_flight = Network.messages_in_flight net;
           })
  in
  (* Initial heartbeats trigger the programs' first broadcasts. *)
  let rec initial () =
    tick ();
    if heartbeat_sweep net then initial ()
  in
  initial ();
  let nodes_with_mail () =
    List.filter
      (fun i -> (Network.node net i).Network.inbox <> [])
      (List.init (Network.size net) (fun i -> i))
  in
  let rec deliver_all robin =
    match nodes_with_mail () with
    | [] -> ()
    | candidates ->
      tick ();
      (match rng with
      | Some rng ->
        let i = List.nth candidates (Random.State.int rng (List.length candidates)) in
        let n = Network.node net i in
        let len = List.length n.Network.inbox in
        let k =
          match schedule with
          | Adversary _ ->
            (* Adversarial delay/reorder: half the time pick the newest
               buffered message (starving the oldest), otherwise any. *)
            if Random.State.bool rng then len - 1 else Random.State.int rng len
          | _ -> Random.State.int rng len
        in
        (* Duplication: re-enqueue a copy of the chosen message before
           delivering it — the copy arrives again, later and possibly
           interleaved differently. Appending leaves index [k] valid. *)
        if !dup_budget > 0 && Random.State.float rng 1.0 < dup_p then begin
          decr dup_budget;
          n.Network.inbox <- n.Network.inbox @ [ List.nth n.Network.inbox k ]
        end;
        Network.deliver net i k;
        (* Occasional spontaneous heartbeats keep runs fair. *)
        if Random.State.int rng 4 = 0 then
          Network.heartbeat net (Random.State.int rng (Network.size net))
      | None ->
        let i = List.nth candidates (robin mod List.length candidates) in
        let n = Network.node net i in
        let k =
          match schedule with
          | Lifo -> List.length n.Network.inbox - 1
          | _ -> 0
        in
        Network.deliver net i k);
      deliver_all (robin + 1)
  in
  let rec settle () =
    deliver_all 0;
    (* Quiescence: buffers empty; heartbeats may still produce work
       (e.g. trigger late broadcasts), in which case we keep going. *)
    tick ();
    let changed = heartbeat_sweep net in
    if changed || Network.messages_in_flight net > 0 then settle ()
  in
  settle ();
  Network.output net

(* Like heartbeat_sweep, but ignores message-count changes: unread
   buffers are irrelevant to silent quiescence. *)
let heartbeat_sweep_no_mail net =
  let before_out = Network.output net in
  let before_mem =
    Array.to_list
      (Array.init (Network.size net) (fun i -> (Network.node net i).Network.memory))
  in
  for i = 0 to Network.size net - 1 do
    Network.heartbeat net i
  done;
  let changed_mem =
    List.exists2
      (fun before i -> not (Instance.equal before i.Network.memory))
      before_mem
      (Array.to_list
         (Array.init (Network.size net) (fun i -> Network.node net i)))
  in
  (not (Instance.equal before_out (Network.output net))) || changed_mem

(* A run in which no node ever reads a message: the defining experiment
   of coordination-freeness. Nodes may broadcast (the messages pile up
   unread) and act on heartbeats only. *)
let run_silent ?(max_sweeps = 1000) net =
  let rec go n =
    if n > max_sweeps then
      raise
        (Did_not_quiesce
           { transitions = n - 1; in_flight = Network.messages_in_flight net });
    if heartbeat_sweep_no_mail net then go (n + 1)
  in
  go 0;
  Network.output net
