(** Schedulers for transducer networks.

    A run is an infinite fair sequence of transitions; finitely many of
    them matter because computations are generic and inputs finite, so
    the schedulers below run to {e quiescence}: no messages in flight
    and a full heartbeat sweep changing nothing. Randomized and
    adversarial (FIFO/LIFO/{!Adversary}) message orders realize the
    model's arbitrary message delay. *)

open Lamp_relational

type schedule =
  | Random_fair of int  (** Seeded random node and message choice. *)
  | Fifo  (** Round-robin nodes, oldest message first. *)
  | Lifo  (** Round-robin nodes, newest message first. *)
  | Adversary of Lamp_faults.Plan.t
      (** The delivery adversary: random delivery that additionally
          {e duplicates} buffered messages (with the plan's [duplicate]
          probability, under a bounded budget so runs terminate) and
          adversarially reorders (preferring the newest message, so old
          ones starve as long as fairness allows). It never drops a
          message — eventual delivery is the one guarantee of the model
          — making it exactly the nondeterminism the CALM theorem
          quantifies over: coordination-free programs converge to the
          same output under it. *)

val adversary : int -> schedule
(** [adversary seed] is an {!Adversary} with a default plan
    (duplicate 0.3, delay 0.2, reorder). *)

exception
  Did_not_quiesce of {
    transitions : int;  (** Transitions consumed before giving up. *)
    in_flight : int;  (** Messages still buffered at that point. *)
  }
(** The transition budget ran out before quiescence — either the budget
    is too small for the input, or the program genuinely diverges. *)

val heartbeat_sweep : Network.t -> bool
(** Heartbeats every node once; true when any memory, output, or buffer
    changed. *)

val drain :
  ?schedule:schedule -> ?max_transitions:int -> Network.t -> Instance.t
(** Runs the network to quiescence and returns the union of outputs —
    the eventually consistent answer of the run.
    @raise Did_not_quiesce beyond [max_transitions] (default 200000). *)

val run_silent : ?max_sweeps:int -> Network.t -> Instance.t
(** Heartbeat-only run: no node ever reads its buffer. The
    coordination-freeness witness: a program is coordination-free on an
    ideal distribution when this equals the query answer. *)
