(** Opt-in engine instrumentation: per-round wall-clock, tasks executed
    and steals, recorded next to (never inside) the model's load
    statistics. A thin shim over [lamp.obs]: the summary store here
    serves the [--timings] output, and every recorded round is also
    forwarded to the obs trace (category ["runtime"]) when tracing is
    on. Disabled by default so the simulator's hot path pays a single
    atomic read. All functions are safe from any domain. *)

type round = {
  label : string;
  wall_s : float;
  tasks : int;
  steals : int;
}

type summary = {
  rounds : int;
  total_wall_s : float;
  total_tasks : int;
  total_steals : int;
}

val set_enabled : bool -> unit
(** Enables the summary store. The obs trace has its own switch
    ({!Lamp_obs.Trace.set_enabled}); {!is_enabled} reports either. *)

val is_enabled : unit -> bool
(** True when round records are wanted — for the summary store, the
    trace, or both. *)

val reset : unit -> unit

val record : ?t0:float -> round -> unit
(** No-op unless enabled. [t0] (in {!now}'s clock) positions the round
    in the trace; it defaults to [now () - wall_s]. *)

val rounds : unit -> round list
(** Recorded rounds, oldest first. *)

val summary : unit -> summary
val now : unit -> float
(** Wall-clock seconds (for metering regions). *)

val pp_summary : summary Fmt.t
