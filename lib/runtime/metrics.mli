(** Opt-in engine instrumentation: per-round wall-clock, tasks executed
    and steals, recorded next to (never inside) the model's load
    statistics. Disabled by default so the simulator's hot path pays a
    single ref read. All functions are main-domain only. *)

type round = {
  label : string;
  wall_s : float;
  tasks : int;
  steals : int;
}

type summary = {
  rounds : int;
  total_wall_s : float;
  total_tasks : int;
  total_steals : int;
}

val set_enabled : bool -> unit
val is_enabled : unit -> bool
val reset : unit -> unit

val record : round -> unit
(** No-op unless enabled. *)

val rounds : unit -> round list
(** Recorded rounds, oldest first. *)

val summary : unit -> summary
val now : unit -> float
(** Wall-clock seconds (for metering regions). *)

val pp_summary : summary Fmt.t
