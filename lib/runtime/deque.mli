(** A work-stealing double-ended queue.

    One domain — the owner — pushes and pops at the bottom (LIFO, for
    locality); any other domain steals from the top (FIFO, taking the
    oldest and typically largest-grained task). Every operation is
    protected by the deque's own mutex, so contention is local to one
    worker's queue and never global to the pool. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner operation: enqueue at the bottom. *)

val pop : 'a t -> 'a option
(** Owner operation: dequeue the most recently pushed item. *)

val steal : 'a t -> 'a option
(** Thief operation: dequeue the oldest item. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
