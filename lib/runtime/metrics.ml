(* Lightweight, opt-in instrumentation. The simulator's load statistics
   are part of the model (deterministic, backend-independent); these
   are about the engine itself — wall-clock, tasks, steals — and are
   collected globally so call sites deep in the algorithms need no
   extra plumbing. Recording is main-domain only (rounds are submitted
   from one domain), so plain refs suffice. *)

type round = {
  label : string;
  wall_s : float;
  tasks : int;
  steals : int;
}

type summary = {
  rounds : int;
  total_wall_s : float;
  total_tasks : int;
  total_steals : int;
}

let enabled = ref false
let recorded = ref []

let set_enabled b = enabled := b
let is_enabled () = !enabled
let reset () = recorded := []
let record r = if !enabled then recorded := r :: !recorded
let rounds () = List.rev !recorded

let summary () =
  List.fold_left
    (fun acc r ->
      {
        rounds = acc.rounds + 1;
        total_wall_s = acc.total_wall_s +. r.wall_s;
        total_tasks = acc.total_tasks + r.tasks;
        total_steals = acc.total_steals + r.steals;
      })
    { rounds = 0; total_wall_s = 0.0; total_tasks = 0; total_steals = 0 }
    !recorded

let now () = Unix.gettimeofday ()

let pp_summary ppf s =
  Fmt.pf ppf "%d rounds, %.1f ms in the engine, %d tasks, %d steals"
    s.rounds (1000.0 *. s.total_wall_s) s.total_tasks s.total_steals
