(* Engine instrumentation, now a shim over lamp.obs. The simulator's
   load statistics are part of the model (deterministic,
   backend-independent); these are about the engine itself —
   wall-clock, tasks, steals. The store is an atomic flag plus a
   mutex-protected list, so recording is safe from any domain (the
   pre-obs version was main-domain only); when full tracing is on,
   every round is additionally forwarded to the trace as a span on the
   "runtime" category, whether or not the summary store is enabled. *)

module Trace = Lamp_obs.Trace

type round = {
  label : string;
  wall_s : float;
  tasks : int;
  steals : int;
}

type summary = {
  rounds : int;
  total_wall_s : float;
  total_tasks : int;
  total_steals : int;
}

let enabled = Atomic.make false
let mutex = Mutex.create ()
let recorded = ref []

let set_enabled b = Atomic.set enabled b

(* Round recording is wanted either for the summary (--timings) or for
   the trace (--trace/--profile); call sites gate their bookkeeping on
   this. *)
let is_enabled () = Atomic.get enabled || Trace.is_enabled ()

let reset () = Mutex.protect mutex (fun () -> recorded := [])

let record ?t0 r =
  if Atomic.get enabled then
    Mutex.protect mutex (fun () -> recorded := r :: !recorded);
  if Trace.is_enabled () then
    let t0 = match t0 with Some t -> t | None -> Trace.now () -. r.wall_s in
    Trace.emit_span ~cat:"runtime"
      ~args:[ ("tasks", Trace.Int r.tasks); ("steals", Trace.Int r.steals) ]
      ~name:r.label ~t0 ~dur:r.wall_s ()

let rounds () = Mutex.protect mutex (fun () -> List.rev !recorded)

let summary () =
  List.fold_left
    (fun acc r ->
      {
        rounds = acc.rounds + 1;
        total_wall_s = acc.total_wall_s +. r.wall_s;
        total_tasks = acc.total_tasks + r.tasks;
        total_steals = acc.total_steals + r.steals;
      })
    { rounds = 0; total_wall_s = 0.0; total_tasks = 0; total_steals = 0 }
    (rounds ())

let now () = Trace.now ()

let pp_summary ppf s =
  Fmt.pf ppf "%d rounds, %.1f ms in the engine, %d tasks, %d steals"
    s.rounds (1000.0 *. s.total_wall_s) s.total_tasks s.total_steals
