type backend =
  | Sequential of int ref  (* inline task counter *)
  | Pool_backend of Pool.t

type t = {
  backend : backend;
  chunk : int option;
}

let sequential = { backend = Sequential (ref 0); chunk = None }
let pool ?chunk p = { backend = Pool_backend p; chunk }

let workers t =
  match t.backend with Sequential _ -> 1 | Pool_backend p -> Pool.size p

let backend_name t =
  match t.backend with Sequential _ -> "seq" | Pool_backend _ -> "pool"

(* At most 4 chunks per worker: enough slack for stealing to rebalance
   skewed per-index costs, few enough that per-task locking stays
   negligible. *)
let chunk_size t ~chunk ~n =
  match chunk, t.chunk with
  | Some c, _ | None, Some c ->
    if c < 1 then invalid_arg "Executor: chunk must be >= 1";
    c
  | None, None -> max 1 ((n + (4 * workers t) - 1) / (4 * workers t))

let parallel_for t ?chunk ~n f =
  if n > 0 then
    match t.backend with
    | Sequential count ->
      count := !count + 1;
      for i = 0 to n - 1 do
        f ~worker:0 i
      done
    | Pool_backend p ->
      let c = chunk_size t ~chunk ~n in
      let tasks = (n + c - 1) / c in
      Pool.run p ~tasks (fun ~worker k ->
          let hi = min n ((k + 1) * c) in
          for i = k * c to hi - 1 do
            f ~worker i
          done)

let map_array t ?chunk ~n f =
  let out = Array.make n None in
  parallel_for t ?chunk ~n (fun ~worker:_ i -> out.(i) <- Some (f i));
  Array.map (function Some x -> x | None -> assert false) out

let map_reduce t ?chunk ~n ~map ~combine init =
  if n <= 0 then init
  else begin
    let c = chunk_size t ~chunk ~n in
    let tasks = (n + c - 1) / c in
    let fold_range k =
      let hi = min n ((k + 1) * c) in
      let acc = ref (map (k * c)) in
      for i = (k * c) + 1 to hi - 1 do
        acc := combine !acc (map i)
      done;
      !acc
    in
    let partials =
      match t.backend with
      | Sequential count ->
        count := !count + 1;
        Array.init tasks fold_range
      | Pool_backend p ->
        let out = Array.make tasks None in
        Pool.run p ~tasks (fun ~worker:_ k -> out.(k) <- Some (fold_range k));
        Array.map (function Some x -> x | None -> assert false) out
    in
    Array.fold_left combine init partials
  end

let retry_counter = Lamp_obs.Trace.counter "runtime.retries"

let with_retry ?(max_attempts = 4) ?(backoff = ignore) ~retryable f =
  if max_attempts < 1 then invalid_arg "Executor.with_retry: max_attempts < 1";
  let rec go attempt =
    try f ~attempt
    with e when retryable e && attempt < max_attempts ->
      Lamp_obs.Trace.incr retry_counter;
      backoff attempt;
      go (attempt + 1)
  in
  go 1

type counters = {
  tasks : int;
  steals : int;
}

let counters t =
  match t.backend with
  | Sequential count -> { tasks = !count; steals = 0 }
  | Pool_backend p -> { tasks = Pool.tasks_run p; steals = Pool.steals p }
