type seq_state = {
  batches : int ref;  (* inline task counter *)
  active : int Atomic.t;  (* indices of the running batch not yet done *)
}

type backend =
  | Sequential of seq_state
  | Pool_backend of Pool.t

type t = {
  backend : backend;
  chunk : int option;
}

let sequential =
  { backend = Sequential { batches = ref 0; active = Atomic.make 0 };
    chunk = None }

let pool ?chunk p = { backend = Pool_backend p; chunk }

let workers t =
  match t.backend with Sequential _ -> 1 | Pool_backend p -> Pool.size p

let backend_name t =
  match t.backend with Sequential _ -> "seq" | Pool_backend _ -> "pool"

(* At most 4 chunks per worker: enough slack for stealing to rebalance
   skewed per-index costs, few enough that per-task locking stays
   negligible. *)
let chunk_size t ~chunk ~n =
  match chunk, t.chunk with
  | Some c, _ | None, Some c ->
    if c < 1 then invalid_arg "Executor: chunk must be >= 1";
    c
  | None, None -> max 1 ((n + (4 * workers t) - 1) / (4 * workers t))

(* The sequential gauge counts remaining indices of the running batch,
   mirroring [Pool.in_flight]; a monitoring thread (the serve stats
   endpoint) reads it concurrently, hence the [Fun.protect] so a raising
   task cannot leave the gauge stuck non-zero. *)
let seq_batch s ~n body =
  incr s.batches;
  Atomic.set s.active n;
  Fun.protect
    ~finally:(fun () -> Atomic.set s.active 0)
    (fun () ->
      body (fun () -> Atomic.decr s.active))

let parallel_for t ?chunk ~n f =
  if n > 0 then
    match t.backend with
    | Sequential s ->
      seq_batch s ~n (fun done_one ->
          for i = 0 to n - 1 do
            f ~worker:0 i;
            done_one ()
          done)
    | Pool_backend p ->
      let c = chunk_size t ~chunk ~n in
      let tasks = (n + c - 1) / c in
      Pool.run p ~tasks (fun ~worker k ->
          let hi = min n ((k + 1) * c) in
          for i = k * c to hi - 1 do
            f ~worker i
          done)

let map_array t ?chunk ~n f =
  let out = Array.make n None in
  parallel_for t ?chunk ~n (fun ~worker:_ i -> out.(i) <- Some (f i));
  Array.map (function Some x -> x | None -> assert false) out

let map_reduce t ?chunk ~n ~map ~combine init =
  if n <= 0 then init
  else begin
    let c = chunk_size t ~chunk ~n in
    let tasks = (n + c - 1) / c in
    let fold_range k =
      let hi = min n ((k + 1) * c) in
      let acc = ref (map (k * c)) in
      for i = (k * c) + 1 to hi - 1 do
        acc := combine !acc (map i)
      done;
      !acc
    in
    let partials =
      match t.backend with
      | Sequential s ->
        seq_batch s ~n:tasks (fun done_one ->
            Array.init tasks (fun k ->
                let r = fold_range k in
                done_one ();
                r))
      | Pool_backend p ->
        let out = Array.make tasks None in
        Pool.run p ~tasks (fun ~worker:_ k -> out.(k) <- Some (fold_range k));
        Array.map (function Some x -> x | None -> assert false) out
    in
    Array.fold_left combine init partials
  end

module Cancel = struct
  type t = bool Atomic.t

  exception Cancelled

  let create () = Atomic.make false
  let cancel t = Atomic.set t true
  let cancelled = Atomic.get
  let guard t = if Atomic.get t then raise Cancelled
end

let retry_counter = Lamp_obs.Trace.counter "runtime.retries"
let speculation_counter = Lamp_obs.Trace.counter "runtime.speculations"

(* splitmix64-style mixer for the deterministic backoff jitter; local
   so lamp.runtime does not depend on lamp.faults. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let unit_float ~seed k =
  let h =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L)
         (Int64.of_int k))
  in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let exponential_backoff ?(base = 0.001) ?(factor = 2.0) ?(max_delay = 0.1)
    ?(jitter = 0.5) ~seed () =
  if base < 0.0 || factor < 1.0 || max_delay < 0.0 || jitter < 0.0 then
    invalid_arg "Executor.exponential_backoff: negative parameter";
  fun attempt ->
    let raw = base *. (factor ** float_of_int (attempt - 1)) in
    let capped = Float.min raw max_delay in
    capped *. (1.0 +. (jitter *. unit_float ~seed attempt))

let with_retry ?(max_attempts = 4) ?(backoff = ignore) ?delay ?budget
    ?(hint = fun (_ : exn) -> None) ~retryable f =
  if max_attempts < 1 then invalid_arg "Executor.with_retry: max_attempts < 1";
  (match budget with
  | Some b when b < 0.0 -> invalid_arg "Executor.with_retry: budget < 0"
  | _ -> ());
  (* The sleep before the next attempt: the schedule's delay, floored
     by any server-suggested retry-after the failed attempt carried
     (an [Overloaded {retry_after_s}] style hint). *)
  let effective_delay e attempt =
    let d = match delay with Some d -> d attempt | None -> 0.0 in
    match hint e with Some h when h > d -> h | _ -> d
  in
  let slept = ref 0.0 in
  let rec go attempt =
    try f ~attempt
    with
    | e
      when retryable e
           && attempt < max_attempts
           &&
           (* a retry whose backoff sleep would exceed the budget is
              abandoned: the exception propagates instead *)
           (match budget with
           | Some b -> !slept +. effective_delay e attempt <= b
           | None -> true)
    ->
      Lamp_obs.Trace.incr retry_counter;
      backoff attempt;
      let s = effective_delay e attempt in
      if s > 0.0 then Unix.sleepf s;
      slept := !slept +. s;
      go (attempt + 1)
  in
  go 1

type 'a speculation = {
  value : 'a;
  winner : [ `Primary | `Backup ];
  waited : float;
  saved : float;
}

let speculate ~deadline ~stall ~tie f =
  if deadline < 0.0 || stall < 0.0 then
    invalid_arg "Executor.speculate: negative duration";
  let primary_wins =
    stall < deadline || (stall = deadline && tie = `Primary)
  in
  if primary_wins then begin
    let cancel = Cancel.create () in
    if stall > 0.0 then Unix.sleepf stall;
    { value = f ~cancel; winner = `Primary; waited = stall; saved = 0.0 }
  end
  else begin
    (* The primary passed its deadline: cancel it and run the backup
       copy. The work itself is deterministic, so the backup computes
       the same value the primary would have — only sooner. *)
    let primary = Cancel.create () in
    Cancel.cancel primary;
    let cancel = Cancel.create () in
    if deadline > 0.0 then Unix.sleepf deadline;
    Lamp_obs.Trace.incr speculation_counter;
    {
      value = f ~cancel;
      winner = `Backup;
      waited = deadline;
      saved = stall -. deadline;
    }
  end

type counters = {
  tasks : int;
  steals : int;
}

let counters t =
  match t.backend with
  | Sequential s -> { tasks = !(s.batches); steals = 0 }
  | Pool_backend p -> { tasks = Pool.tasks_run p; steals = Pool.steals p }

let in_flight t =
  match t.backend with
  | Sequential s -> Atomic.get s.active
  | Pool_backend p -> Pool.in_flight p

let backend_pool t =
  match t.backend with Sequential _ -> None | Pool_backend p -> Some p
