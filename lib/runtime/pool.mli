(** A fixed pool of domains executing batches of indexed tasks.

    [create ~domains:n ()] builds a pool of [n] workers: the calling
    domain participates as worker 0 and [n - 1] further domains are
    spawned. Each worker owns a {!Deque}; idle workers steal from the
    others, so imbalanced batches (e.g. servers with very different
    local loads) still spread across the pool.

    Batches are synchronous: {!run} returns only once every task has
    finished. If any task raises, the first exception (in completion
    order) is re-raised by {!run} after the batch has drained; remaining
    tasks of a failing batch are skipped, not run. Only one batch can be
    in flight at a time, and only from the domain that created the
    pool — tasks must not themselves call {!run}. *)

type t

val create : ?domains:int -> unit -> t
(** [domains] defaults to [Domain.recommended_domain_count ()]. It is
    clamped below by 1; values above [128] are refused (the OCaml
    runtime degrades badly there).
    @raise Invalid_argument on [domains < 1] or [domains > 128]. *)

val size : t -> int
(** Number of workers, including the calling domain. *)

val run : t -> tasks:int -> (worker:int -> int -> unit) -> unit
(** [run pool ~tasks f] executes [f ~worker k] for every
    [k = 0 .. tasks - 1] across the pool and waits for completion.
    [worker] is the index (in [0 .. size - 1]) of the worker executing
    the task.
    @raise Invalid_argument if the pool has been shut down. *)

val tasks_run : t -> int
(** Cumulative number of tasks executed since creation. *)

val steals : t -> int
(** Cumulative number of tasks a worker took from another worker's
    deque. *)

val in_flight : t -> int
(** Tasks of the current batch not yet completed — 0 whenever no batch
    is running. One atomic load; safe from any thread or domain, which
    is what lets a server's stats endpoint observe a busy pool without
    touching its mutex. *)

val shutdown : t -> unit
(** Terminates and joins every spawned domain. Idempotent. After
    shutdown, {!run} raises. *)
