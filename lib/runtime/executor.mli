(** The execution backend of the simulator: where per-server work runs.

    An executor is either [Sequential] — everything on the calling
    domain, the seed behaviour — or a {!Pool} of domains. The
    combinators below are deterministic across backends: results are
    assembled in index order, so any computation whose per-index work is
    pure (and, for {!map_reduce}, whose [combine] is associative)
    produces identical values on both. The MPC simulator relies on this
    to keep its load statistics bit-identical whatever the backend. *)

type t

val sequential : t
(** Runs every combinator inline on the calling domain. *)

val pool : ?chunk:int -> Pool.t -> t
(** Runs combinators on the pool. [chunk] fixes the number of
    consecutive indices grouped into one pool task; by default a batch
    of [n] indices is cut into at most [4 × workers] chunks. *)

val workers : t -> int
(** 1 for {!sequential}, the pool size otherwise. *)

val backend_name : t -> string
(** ["seq"] or ["pool"]. *)

val parallel_for : t -> ?chunk:int -> n:int -> (worker:int -> int -> unit) -> unit
(** [parallel_for e ~n f] runs [f ~worker i] for [i = 0 .. n - 1].
    [worker < workers e] identifies the executing worker, for
    per-worker accumulators. Blocks until all indices are done;
    re-raises the first task exception. *)

val map_array : t -> ?chunk:int -> n:int -> (int -> 'a) -> 'a array
(** [map_array e ~n f] is [| f 0; …; f (n - 1) |], computed across the
    backend. *)

val map_reduce :
  t -> ?chunk:int -> n:int -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) ->
  'a -> 'a
(** [map_reduce e ~n ~map ~combine init] folds [combine] over
    [map 0 … map (n - 1)] starting from [init], always associating in
    index order. [combine] must be associative for the result to be
    chunking-independent. *)

(** {1 Cancellation} *)

(** Cooperative cancellation tokens: one atomic flag per token. A
    cancelled computation is not preempted — it observes the flag at
    its next {!Cancel.guard} and unwinds with {!Cancel.Cancelled}.
    Used by {!speculate} to abandon a straggling primary copy. *)
module Cancel : sig
  type t

  exception Cancelled

  val create : unit -> t
  val cancel : t -> unit
  val cancelled : t -> bool

  val guard : t -> unit
  (** @raise Cancelled iff the token has been cancelled. *)
end

(** {1 Retry} *)

val exponential_backoff :
  ?base:float ->
  ?factor:float ->
  ?max_delay:float ->
  ?jitter:float ->
  seed:int ->
  unit ->
  int ->
  float
(** [exponential_backoff ~seed ()] is a delay schedule for
    {!with_retry}'s [delay]: attempt [k] waits
    [min (base·factor^(k-1)) max_delay] seconds, inflated by a
    deterministic jitter in [\[0, jitter)] drawn by hashing
    [(seed, k)] — the same seed always yields the same delays, so
    retried runs remain reproducible while distinct seeds decorrelate
    (no thundering herd). Defaults: [base = 1ms], [factor = 2],
    [max_delay = 100ms], [jitter = 0.5].
    @raise Invalid_argument on a negative parameter or [factor < 1]. *)

val with_retry :
  ?max_attempts:int ->
  ?backoff:(int -> unit) ->
  ?delay:(int -> float) ->
  ?budget:float ->
  ?hint:(exn -> float option) ->
  retryable:(exn -> bool) ->
  (attempt:int -> 'a) ->
  'a
(** [with_retry ~retryable f] runs [f ~attempt:1]; when it raises an
    exception accepted by [retryable] it is retried — [backoff] (called
    with the failed attempt number; default none) then [f ~attempt:k] —
    up to [max_attempts] (default 4) total attempts, after which the
    exception propagates. Non-retryable exceptions propagate
    immediately. Retries bump the ["runtime.retries"] trace counter.

    [delay] (e.g. {!exponential_backoff}) is slept between attempts;
    [budget] caps the {e cumulative} sleep: a retry whose delay would
    push the total past the budget is abandoned and the exception
    propagates — a straggling task fails fast instead of blocking its
    round indefinitely.

    [hint] extracts a server-suggested minimum wait from the failed
    attempt's exception (e.g. an [Overloaded {retry_after_s}] serve
    error): when present it {e floors} the next sleep — the schedule's
    delay is used unless the hint is larger — and counts against the
    budget like any other sleep.

    Deterministic as long as [f], [backoff], [delay] and [hint] are:
    no clocks or randomness are involved. Use inside a pool task to
    absorb transient faults without poisoning the batch. *)

(** {1 Speculative execution} *)

type 'a speculation = {
  value : 'a;
  winner : [ `Primary | `Backup ];
  waited : float;  (** seconds actually spent stalled *)
  saved : float;  (** stall time the backup avoided (0 on [`Primary]) *)
}

val speculate :
  deadline:float ->
  stall:float ->
  tie:[ `Primary | `Backup ] ->
  (cancel:Cancel.t -> 'a) ->
  'a speculation
(** Deterministic straggler mitigation. The primary copy of a task is
    known (from the fault plan) to stall for [stall] seconds; the
    scheduler is only willing to wait [deadline]. If the primary beats
    the deadline ([stall < deadline], or equality with [tie =
    `Primary]) it runs after its stall, as without mitigation.
    Otherwise the primary's cancellation token is cancelled and a
    backup copy runs after waiting only [deadline] — because the task
    body is pure, the backup returns the value the primary would have,
    [stall - deadline] seconds sooner. The winner is decided by
    comparison and the seed-ordered [tie], never by racing wall
    clocks, so seq and pool backends agree bit-for-bit. Backup wins
    bump the ["runtime.speculations"] trace counter.
    @raise Invalid_argument on a negative duration. *)

type counters = {
  tasks : int;  (** tasks executed since the executor was created *)
  steals : int;  (** work-stealing events (0 on [Sequential]) *)
}

val counters : t -> counters
(** Cumulative instrumentation counters; subtract two snapshots to
    meter a region. *)

val in_flight : t -> int
(** Indices of the currently running batch not yet completed, 0 when
    idle. Readable from any thread or domain (one atomic load), so a
    serving layer's admission control and stats endpoint can observe a
    busy executor without synchronizing with it. On {!sequential} the
    gauge only moves while a combinator runs on another thread — reading
    it from the same thread always yields 0 or the remaining count of
    the batch that is interrupted by the read. *)

val backend_pool : t -> Pool.t option
(** The underlying pool, [None] for {!sequential}. Gives stats
    endpoints access to {!Pool.tasks_run}/{!Pool.steals} attribution
    without widening this interface further. *)
