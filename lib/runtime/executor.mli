(** The execution backend of the simulator: where per-server work runs.

    An executor is either [Sequential] — everything on the calling
    domain, the seed behaviour — or a {!Pool} of domains. The
    combinators below are deterministic across backends: results are
    assembled in index order, so any computation whose per-index work is
    pure (and, for {!map_reduce}, whose [combine] is associative)
    produces identical values on both. The MPC simulator relies on this
    to keep its load statistics bit-identical whatever the backend. *)

type t

val sequential : t
(** Runs every combinator inline on the calling domain. *)

val pool : ?chunk:int -> Pool.t -> t
(** Runs combinators on the pool. [chunk] fixes the number of
    consecutive indices grouped into one pool task; by default a batch
    of [n] indices is cut into at most [4 × workers] chunks. *)

val workers : t -> int
(** 1 for {!sequential}, the pool size otherwise. *)

val backend_name : t -> string
(** ["seq"] or ["pool"]. *)

val parallel_for : t -> ?chunk:int -> n:int -> (worker:int -> int -> unit) -> unit
(** [parallel_for e ~n f] runs [f ~worker i] for [i = 0 .. n - 1].
    [worker < workers e] identifies the executing worker, for
    per-worker accumulators. Blocks until all indices are done;
    re-raises the first task exception. *)

val map_array : t -> ?chunk:int -> n:int -> (int -> 'a) -> 'a array
(** [map_array e ~n f] is [| f 0; …; f (n - 1) |], computed across the
    backend. *)

val map_reduce :
  t -> ?chunk:int -> n:int -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) ->
  'a -> 'a
(** [map_reduce e ~n ~map ~combine init] folds [combine] over
    [map 0 … map (n - 1)] starting from [init], always associating in
    index order. [combine] must be associative for the result to be
    chunking-independent. *)

val with_retry :
  ?max_attempts:int ->
  ?backoff:(int -> unit) ->
  retryable:(exn -> bool) ->
  (attempt:int -> 'a) ->
  'a
(** [with_retry ~retryable f] runs [f ~attempt:1]; when it raises an
    exception accepted by [retryable] it is retried — [backoff] (called
    with the failed attempt number; default none) then [f ~attempt:k] —
    up to [max_attempts] (default 4) total attempts, after which the
    exception propagates. Non-retryable exceptions propagate
    immediately. Retries bump the ["runtime.retries"] trace counter.
    Deterministic as long as [f] and [backoff] are: no clocks or
    randomness are involved. Use inside a pool task to absorb transient
    faults without poisoning the batch. *)

type counters = {
  tasks : int;  (** tasks executed since the executor was created *)
  steals : int;  (** work-stealing events (0 on [Sequential]) *)
}

val counters : t -> counters
(** Cumulative instrumentation counters; subtract two snapshots to
    meter a region. *)
