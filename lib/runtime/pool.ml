(* One deque per worker; the submitting domain is worker 0 and helps
   drain its own batch. All batch bookkeeping (epoch, remaining count,
   first failure) lives behind one mutex, but the task queues do not:
   workers touch only their own deque's lock, or a victim's when
   stealing.

   Publication safety: [run] writes [batch_fn] before pushing any task,
   and every task reaches a worker through a deque mutex, so the
   lock-free read of [batch_fn] in [exec] is ordered after the write by
   the deque's lock — a worker can never observe a task of the new
   batch paired with the function of an old one. *)

type t = {
  size : int;
  deques : int Deque.t array;
  mutex : Mutex.t;
  work : Condition.t;
  done_ : Condition.t;
  mutable epoch : int;
  mutable remaining : int;
  mutable batch_fn : (worker:int -> int -> unit) option;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable stopped : bool;
  executed : int Atomic.t array;
  stolen : int Atomic.t array;
  inflight : int Atomic.t;
  mutable domains : unit Domain.t list;
}

let size t = t.size

let take_task t w =
  match Deque.pop t.deques.(w) with
  | Some _ as r -> r
  | None ->
    let rec try_steal k =
      if k >= t.size then None
      else
        let victim = (w + k) mod t.size in
        match Deque.steal t.deques.(victim) with
        | Some _ as r ->
          Atomic.incr t.stolen.(w);
          r
        | None -> try_steal (k + 1)
    in
    try_steal 1

let exec t w k =
  Mutex.lock t.mutex;
  let skip = t.failure <> None in
  let fn = t.batch_fn in
  Mutex.unlock t.mutex;
  (if not skip then
     match fn with
     | None -> ()
     | Some f -> (
       try
         f ~worker:w k;
         Atomic.incr t.executed.(w)
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mutex;
         if t.failure = None then t.failure <- Some (e, bt);
         Mutex.unlock t.mutex));
  Atomic.decr t.inflight;
  Mutex.lock t.mutex;
  t.remaining <- t.remaining - 1;
  if t.remaining = 0 then Condition.broadcast t.done_;
  Mutex.unlock t.mutex

let rec worker_loop t w seen_epoch =
  match take_task t w with
  | Some k ->
    exec t w k;
    worker_loop t w seen_epoch
  | None ->
    Mutex.lock t.mutex;
    if t.stopped then Mutex.unlock t.mutex
    else if t.epoch <> seen_epoch then begin
      let e = t.epoch in
      Mutex.unlock t.mutex;
      worker_loop t w e
    end
    else begin
      Condition.wait t.work t.mutex;
      let e = t.epoch in
      Mutex.unlock t.mutex;
      worker_loop t w e
    end

let create ?domains () =
  let n =
    match domains with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  in
  if n < 1 then invalid_arg "Pool.create: domains must be >= 1";
  if n > 128 then invalid_arg "Pool.create: more than 128 domains";
  let t =
    {
      size = n;
      deques = Array.init n (fun _ -> Deque.create ());
      mutex = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      epoch = 0;
      remaining = 0;
      batch_fn = None;
      failure = None;
      stopped = false;
      executed = Array.init n (fun _ -> Atomic.make 0);
      stolen = Array.init n (fun _ -> Atomic.make 0);
      inflight = Atomic.make 0;
      domains = [];
    }
  in
  t.domains <-
    List.init (n - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1) t.epoch));
  t

let run t ~tasks f =
  if tasks < 0 then invalid_arg "Pool.run: negative task count";
  if tasks = 0 then ()
  else begin
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool has been shut down"
    end;
    if t.batch_fn <> None then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: a batch is already in flight"
    end;
    t.batch_fn <- Some f;
    t.failure <- None;
    t.remaining <- tasks;
    (* The gauge mirrors [remaining] but is readable without the
       mutex, from any thread or domain (the serve layer's stats
       endpoint polls it). *)
    Atomic.set t.inflight tasks;
    t.epoch <- t.epoch + 1;
    Mutex.unlock t.mutex;
    for k = 0 to tasks - 1 do
      Deque.push t.deques.(k mod t.size) k
    done;
    Mutex.lock t.mutex;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* The submitter is worker 0: drain what it can reach, then wait for
       the in-flight remainder. *)
    let rec help () =
      match take_task t 0 with
      | Some k ->
        exec t 0 k;
        help ()
      | None -> ()
    in
    help ();
    Mutex.lock t.mutex;
    while t.remaining > 0 do
      Condition.wait t.done_ t.mutex
    done;
    let failure = t.failure in
    t.batch_fn <- None;
    t.failure <- None;
    Mutex.unlock t.mutex;
    match failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let sum counters = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 counters
let tasks_run t = sum t.executed
let steals t = sum t.stolen
let in_flight t = Atomic.get t.inflight

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopped then Mutex.unlock t.mutex
  else begin
    t.stopped <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end
