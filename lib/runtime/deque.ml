(* Two-stack deque under a per-deque mutex: [top] holds the oldest
   items head-first (steal end), [bottom] the newest head-first (owner
   end). An empty end borrows the whole other stack, reversed — the
   classic amortized-O(1) rotation. A lock per deque is all the
   scalability the pool needs: the owner almost always finds its lock
   uncontended, and thieves only touch a victim's lock, never a global
   one. *)

type 'a t = {
  mutex : Mutex.t;
  mutable top : 'a list;
  mutable bottom : 'a list;
  mutable len : int;
}

let create () = { mutex = Mutex.create (); top = []; bottom = []; len = 0 }

let with_lock t f =
  Mutex.lock t.mutex;
  let r = f () in
  Mutex.unlock t.mutex;
  r

let push t x =
  with_lock t (fun () ->
      t.bottom <- x :: t.bottom;
      t.len <- t.len + 1)

let pop t =
  with_lock t (fun () ->
      match t.bottom with
      | x :: rest ->
        t.bottom <- rest;
        t.len <- t.len - 1;
        Some x
      | [] -> (
        match List.rev t.top with
        | x :: rest ->
          t.top <- [];
          t.bottom <- rest;
          t.len <- t.len - 1;
          Some x
        | [] -> None))

let steal t =
  with_lock t (fun () ->
      match t.top with
      | x :: rest ->
        t.top <- rest;
        t.len <- t.len - 1;
        Some x
      | [] -> (
        match List.rev t.bottom with
        | x :: rest ->
          t.bottom <- [];
          t.top <- rest;
          t.len <- t.len - 1;
          Some x
        | [] -> None))

let length t = with_lock t (fun () -> t.len)
let is_empty t = length t = 0
