(** Durable checkpoint store: one slot per job, two generations deep.

    Each job keeps a current slot — saving round [k+1] supersedes
    round [k] — plus the previous generation, retained at every save
    so recovery always has a fallback when the freshest slot is
    damaged. A slot holds a monotonically increasing generation
    number, the completed-round number and an opaque payload (produced
    by the job's snapshot function, typically via {!Codec}), under a
    magic/version header and an MD5 checksum of everything before it.

    Two backends share the interface: {!in_memory} (a hashtable, for
    tests and benchmarks) and {!on_disk} (files under a directory, all
    traffic through the {!Io} shim). The durability contract of the
    disk backend:

    - {b Atomic, synced saves.} Slot bytes go to a tmp file which is
      fsynced before being renamed over the slot; the directory is
      fsynced around the rename. A power cut leaves the previous
      checkpoint or the new one — never a torn slot under the slot's
      name, and never a rename that quietly un-happens later.
    - {b Verified retention.} Before the rename, the old slot is kept
      as [<job>.ckpt.prev] — but only when it verifies (or was written
      clean by this process), so a bit-rotted current generation is
      never allowed to overwrite the last good fallback.
    - {b Verified recovery.} {!load} fully validates a slot (checksum,
      header, job identity) before trusting it; a damaged current
      generation falls back to the previous one, which is promoted
      back to the slot name. Recovery I/O is never fault-injected.
      Only when no generation verifies does {!load} report the job as
      unstarted — checkpoints are recomputable, so the job restarts
      from round 0 and still produces bit-identical output.
    - {b Litter sweep.} Stale [*.ckpt.tmp*] files (crash leftovers)
      are swept when the store opens, counted in the
      ["store.tmp_swept"] counter. *)

exception Torn of {
  job : string;
  path : string;
  offset : int;  (** Bytes actually present (the slot ends early). *)
}
(** The slot ends mid-field — the torn/short-read case. *)

exception Corrupt of {
  job : string;
  path : string;
  reason : string;
}
(** The slot is structurally wrong: bad magic, unreadable version,
    checksum mismatch, or it belongs to a different job. *)

type t

val in_memory : unit -> t

val on_disk : ?faults:Lamp_faults.Disk.t -> string -> t
(** [on_disk dir] stores each job's checkpoint as [dir/<job>.ckpt]
    (job names are sanitized to a filesystem-safe form), with the
    previous generation at [dir/<job>.ckpt.prev]. Creates [dir] if
    needed and sweeps stale tmp litter. [faults] routes all slot
    traffic through a deterministic {!Lamp_faults.Disk} plan — saves
    may tear, lose their rename, rot, truncate, hit [ENOSPC] (retried
    internally with the plan's sleep hint) or plant litter, exactly as
    the plan draws.
    @raise Sys_error if the directory cannot be created. *)

val save : t -> job:string -> round:int -> string -> unit
(** [save store ~job ~round payload] atomically replaces [job]'s slot,
    bumping its generation and retaining the verified previous one.
    Under a crash plan this may raise {!Io.Crashed} mid-save — the
    files are left exactly as the simulated power cut would. *)

val load : t -> job:string -> (int * string) option
(** Latest trustworthy [(round, payload)] for [job]: the current
    generation if it verifies, else the previous one (promoted back to
    the slot), else [None]. Never raises on damaged slots and never
    returns unverified bytes. *)

val verify : t -> job:string -> (int * int) option
(** Full validation of [job]'s {e current} slot without fallback:
    [(generation, round)] when it verifies, [None] when absent.
    @raise Torn on a short slot.
    @raise Corrupt on a structurally damaged one. *)

val clear : t -> job:string -> unit
(** Drops [job]'s slot, previous generation and tmp; starting a fresh
    (non-resuming) run does this so a stale checkpoint cannot leak
    into it. *)

val pp : t Fmt.t

(** {1 Recovery instrumentation} *)

val swept : t -> int
(** Stale tmp files removed when this store opened. *)

val fallbacks : t -> int
(** Loads that had to fall back to (and promote) the previous
    generation. Also counted in the ["store.fallbacks"] counter. *)

val lost : t -> int
(** Loads that found slot files but no verifiable generation — the job
    restarts from scratch. Also in the ["store.lost"] counter. *)

val injected : t -> (string * int) list
(** Faults the {!Io} shim actually applied, per kind (empty without a
    plan). *)

(** {1 fsck} *)

type report = {
  file : string;  (** Basename within the scanned directory. *)
  kind : [ `Slot | `Previous | `Tmp ];
  verdict :
    [ `Ok of int * int  (** generation, round *)
    | `Torn of int  (** bytes present *)
    | `Corrupt of string
    | `Stale  (** tmp litter *) ];
  action :
    [ `None
    | `Swept  (** litter removed *)
    | `Promoted  (** good previous generation copied over a bad slot *)
    | `Pruned  (** bad previous generation removed (slot is good) *)
    | `Flagged  (** damaged with no good generation to repair from *) ];
}

val fsck : ?repair:bool -> string -> report list
(** Scans a checkpoint directory and validates every slot, previous
    generation and tmp file, sorted by file name. With [repair]:
    sweeps litter, promotes a good previous generation over a damaged
    slot, prunes a damaged previous generation behind a good slot;
    a slot with no good generation at all is only ever flagged — fsck
    never deletes the last copy of anything. All fsck I/O bypasses
    fault injection. *)

val healthy : report list -> bool
(** No damage left behind: every entry either verified [`Ok] or was
    repaired ([`Swept]/[`Promoted]/[`Pruned]). *)

val pp_report : report Fmt.t
