(** Durable checkpoint store: one latest snapshot per job.

    Each job keeps a single slot — saving round [k+1] supersedes round
    [k]. A slot holds the completed-round number and an opaque payload
    (produced by the job's snapshot function, typically via {!Codec}).

    Two backends share the interface: {!in_memory} (a hashtable, for
    tests and benchmarks) and {!on_disk} (one file per job under a
    directory). Disk writes are atomic — payloads are written to a
    temp file and [rename]d over the slot, so a crash mid-write leaves
    either the previous checkpoint or the new one, never a torn file.
    Disk slots carry a magic/version/job header; {!load} rejects
    mismatched versions or a file saved under a different job name. *)

type t

val in_memory : unit -> t

val on_disk : string -> t
(** [on_disk dir] stores each job's checkpoint as [dir/<job>.ckpt]
    (job names are sanitized to a filesystem-safe form). Creates
    [dir] if needed.
    @raise Sys_error if the directory cannot be created. *)

val save : t -> job:string -> round:int -> string -> unit
(** [save store ~job ~round payload] atomically replaces [job]'s slot. *)

val load : t -> job:string -> (int * string) option
(** Latest [(round, payload)] for [job]; [None] if never saved (or
    cleared).
    @raise Codec.Corrupt on a damaged or mismatched disk slot. *)

val clear : t -> job:string -> unit
(** Drops [job]'s slot; starting a fresh (non-resuming) run does this
    so a stale checkpoint cannot leak into it. *)

val pp : t Fmt.t
